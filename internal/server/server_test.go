package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func newTestServer(t *testing.T, widths ...int) *Server {
	t.Helper()
	return newSourceServer(t, RouteSourceAuto, widths...)
}

// newSourceServer builds a server pinned to one route data plane; tests
// that assert cache semantics pass RouteSourceCache explicitly.
func newSourceServer(t *testing.T, source string, widths ...int) *Server {
	t.Helper()
	m := mesh.MustNew(widths...)
	s, err := New(Config{Mesh: m, Orders: routing.UniformAscending(m.Dims(), 2), RouteSource: source})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitGeneration polls until the live epoch reaches gen.
func waitGeneration(t *testing.T, s *Server, gen uint64) *Epoch {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if e := s.Epoch(); e.Generation >= gen {
			return e
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch stuck at generation %d, want >= %d (last error %q)",
				s.Epoch().Generation, gen, s.LastError())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGenerationZeroRoutes(t *testing.T) {
	s := newSourceServer(t, RouteSourceCache, 8, 8)
	ans := s.Route(mesh.C(0, 0), mesh.C(7, 7))
	if !ans.Found || ans.Generation != 0 || ans.Cached {
		t.Fatalf("pristine route: %+v", ans)
	}
	if ans.Route.Hops() != 14 {
		t.Errorf("corner-to-corner hops = %d, want 14", ans.Route.Hops())
	}
	// Same query again: served from the epoch cache, same answer.
	again := s.Route(mesh.C(0, 0), mesh.C(7, 7))
	if !again.Cached || !again.Found || again.Route != ans.Route {
		t.Errorf("second query not cached: %+v", again)
	}
	if got := s.Metrics().CacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := s.Metrics().Queries.Load(); got != 2 {
		t.Errorf("queries = %d, want 2", got)
	}
}

func TestSelfRouteAndRejections(t *testing.T) {
	s := newTestServer(t, 8, 8)
	if ans := s.Route(mesh.C(3, 3), mesh.C(3, 3)); !ans.Found || ans.Route.Hops() != 0 {
		t.Errorf("self route: %+v", ans)
	}
	// Out-of-mesh endpoints answer gracefully rather than panicking on
	// Index — this is the guard in Server.Route.
	for _, bad := range []mesh.Coord{mesh.C(8, 0), mesh.C(-1, 2), mesh.C(1, 2, 3)} {
		if ans := s.Route(bad, mesh.C(0, 0)); ans.Found || ans.Reason == "" {
			t.Errorf("src %v: %+v", bad, ans)
		}
		if ans := s.Route(mesh.C(0, 0), bad); ans.Found || ans.Reason == "" {
			t.Errorf("dst %v: %+v", bad, ans)
		}
	}
}

func TestFaultReportSwapsEpoch(t *testing.T) {
	s := newTestServer(t, 8, 8)
	if err := s.ReportFaults([]mesh.Coord{mesh.C(3, 3), mesh.C(4, 4)}, nil); err != nil {
		t.Fatal(err)
	}
	e := waitGeneration(t, s, 1)
	if e.Faults.NumNodeFaults() != 2 {
		t.Fatalf("epoch faults = %d, want 2", e.Faults.NumNodeFaults())
	}
	// Faulty endpoints are rejected with a reason, not an error.
	if ans := s.Route(mesh.C(3, 3), mesh.C(0, 0)); ans.Found || !strings.Contains(ans.Reason, "faulty") {
		t.Errorf("faulty src: %+v", ans)
	}
	// Lamb endpoints likewise (the epoch knows its lambs).
	for _, lamb := range e.Lambs {
		ans := s.Route(lamb, mesh.C(0, 0))
		if ans.Found || !strings.Contains(ans.Reason, "lamb") {
			t.Errorf("lamb src %v: %+v", lamb, ans)
		}
	}
	// Survivors still route, now at the new generation.
	ans := s.Route(mesh.C(0, 0), mesh.C(7, 7))
	if !ans.Found || ans.Generation != e.Generation {
		t.Errorf("survivor route after swap: %+v", ans)
	}
	// The path avoids the faults.
	for _, c := range ans.Route.Path {
		if e.Faults.NodeFaulty(c) {
			t.Errorf("route passes through fault %v", c)
		}
	}
}

func TestLinkFaultReport(t *testing.T) {
	s := newTestServer(t, 8, 8)
	err := s.ReportFaults(nil, []mesh.Link{{From: mesh.C(2, 2), Dim: 0, Dir: 1}})
	if err != nil {
		t.Fatal(err)
	}
	e := waitGeneration(t, s, 1)
	if e.Faults.NumLinkFaults() != 1 {
		t.Fatalf("link faults = %d, want 1", e.Faults.NumLinkFaults())
	}
}

func TestReportValidation(t *testing.T) {
	s := newTestServer(t, 8, 8)
	if err := s.ReportFaults([]mesh.Coord{mesh.C(9, 9)}, nil); err == nil {
		t.Error("out-of-mesh node fault accepted")
	}
	if err := s.ReportFaults(nil, []mesh.Link{{From: mesh.C(7, 7), Dim: 0, Dir: 1}}); err == nil {
		t.Error("headless link fault accepted")
	}
	if err := s.ReportFaults(nil, []mesh.Link{{From: mesh.C(1, 1), Dim: 0, Dir: 2}}); err == nil {
		t.Error("bad link direction accepted")
	}
	if got := s.Epoch().Generation; got != 0 {
		t.Errorf("invalid reports advanced generation to %d", got)
	}
}

func TestInitialFaults(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(2, 5), mesh.C(5, 2))
	s, err := New(Config{Mesh: m, Orders: routing.UniformAscending(2, 2), InitialFaults: f})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := s.Epoch()
	if e.Generation != 1 || e.Faults.NumNodeFaults() != 2 {
		t.Fatalf("initial epoch: generation %d, faults %d", e.Generation, e.Faults.NumNodeFaults())
	}
	// The caller's fault set was snapshotted, not captured.
	f.AddNode(mesh.C(0, 7))
	if s.Epoch().Faults.NumNodeFaults() != 2 {
		t.Error("epoch shares the caller's fault set")
	}
}

func TestOldEpochServesDuringRecompute(t *testing.T) {
	s := newTestServer(t, 8, 8)
	entered := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock() // let Close's wait succeed even if the test bails early
	var hookOnce sync.Once
	s.testHookPrePublish = func() {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	if err := s.ReportFaults([]mesh.Coord{mesh.C(4, 4)}, nil); err != nil {
		t.Fatal(err)
	}
	<-entered
	// The recompute has finished but the swap is held back: queries must
	// still be answered — from the old epoch — without blocking.
	done := make(chan Answer, 1)
	go func() { done <- s.Route(mesh.C(0, 0), mesh.C(7, 7)) }()
	select {
	case ans := <-done:
		if !ans.Found || ans.Generation != 0 {
			t.Errorf("query during recompute: %+v", ans)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("route query blocked behind a fault recompute")
	}
	unblock()
	e := waitGeneration(t, s, 1)
	ans := s.Route(mesh.C(0, 0), mesh.C(7, 7))
	if !ans.Found || ans.Generation != e.Generation {
		t.Errorf("query after swap: %+v", ans)
	}
}

func TestCoalescedReports(t *testing.T) {
	s := newTestServer(t, 12, 12)
	entered := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()
	var hookOnce sync.Once
	s.testHookPrePublish = func() {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	// First report starts a recompute; the rest arrive while it runs and
	// must coalesce into one more batch.
	if err := s.ReportFaults([]mesh.Coord{mesh.C(2, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 3; i <= 7; i++ {
		if err := s.ReportFaults([]mesh.Coord{mesh.C(i, i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	unblock()
	// Generation 2 = initial report + one coalesced batch of five.
	e := waitGeneration(t, s, 2)
	if e.Generation != 2 {
		t.Errorf("generation = %d, want 2 (reports not coalesced)", e.Generation)
	}
	if e.Faults.NumNodeFaults() != 6 {
		t.Errorf("faults = %d, want 6", e.Faults.NumNodeFaults())
	}
	if got := s.Metrics().Recomputes.Load(); got != 2 {
		t.Errorf("recomputes = %d, want 2", got)
	}
}

func TestKeepLambsMonotone(t *testing.T) {
	m := mesh.MustNew(12, 12)
	s, err := New(Config{Mesh: m, Orders: routing.UniformAscending(2, 2), KeepLambs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ReportFaults([]mesh.Coord{mesh.C(5, 5), mesh.C(6, 5), mesh.C(5, 6)}, nil); err != nil {
		t.Fatal(err)
	}
	e1 := waitGeneration(t, s, 1)
	if err := s.ReportFaults([]mesh.Coord{mesh.C(9, 2)}, nil); err != nil {
		t.Fatal(err)
	}
	e2 := waitGeneration(t, s, 2)
	for _, lamb := range e1.Lambs {
		if !e2.Faults.NodeFaulty(lamb) && !e2.IsLamb(lamb) {
			t.Errorf("lamb %v from generation 1 demoted despite KeepLambs", lamb)
		}
	}
}

func TestEpochImmutableAcrossSwap(t *testing.T) {
	s := newTestServer(t, 8, 8)
	old := s.Epoch()
	if err := s.ReportFaults([]mesh.Coord{mesh.C(4, 4)}, nil); err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s, 1)
	// The superseded epoch still answers as of its snapshot: (4,4) was
	// good at generation 0, so a route to it through the old epoch exists.
	if r, reason := old.route(s.Orders(), mesh.C(0, 0), mesh.C(4, 4)); r == nil {
		t.Errorf("old epoch mutated by swap: %s", reason)
	}
	if old.Faults.NumNodeFaults() != 0 {
		t.Errorf("old epoch fault set mutated: %d faults", old.Faults.NumNodeFaults())
	}
}
