package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"lambmesh/internal/campaign"
)

// campaignUsage documents the subcommand (shown on -h and flag errors).
const campaignUsage = `usage: lambsim campaign [flags]

Runs a Monte Carlo reliability campaign over a grid of mesh sizes, fault
models, and fault processes, streaming per-point aggregates —
P(k-round-connected) with Wilson intervals, expected lamb counts with
confidence intervals and quantiles. Results are byte-identical at any
-workers value; with -checkpoint set, an interrupted campaign resumes
bit-for-bit via -resume.

Grid flags (comma-separated lists; the grid is their cross product):
  -mesh     mesh sizes, e.g. 8x8,16x16,4x4x4      (default 8x8)
  -topology mesh | torus | hypercube               (default mesh)
  -model    fault models: node, link, mixed        (default node)
  -process  fault processes                        (default fixed:3)
              fixed:N           exactly N faults per trial
              mtbf:T,theta      Binomial(sites, 1-exp(-T/theta))
              weibull:T,eta,beta  Binomial(sites, 1-exp(-(T/eta)^beta))
`

// campaignMain runs the campaign subcommand; its exit code is main's.
func campaignMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprint(stderr, campaignUsage)
		fmt.Fprintln(stderr, "\nOther flags:")
		fs.PrintDefaults()
	}
	var (
		meshFlag  = fs.String("mesh", "8x8", "mesh sizes (comma-separated, e.g. 8x8,4x4x4)")
		topoFlag  = fs.String("topology", "mesh", "network family for every grid mesh: mesh, torus, hypercube (widths all 2)")
		modelFlag = fs.String("model", "node", "fault models (comma-separated: node,link,mixed)")
		procFlag  = fs.String("process", "fixed:3", "fault processes (comma-separated specs)")
		k         = fs.Int("k", 2, "routing rounds (k-round connectivity target)")
		trials    = fs.Int64("trials", 1000, "trials per grid point")
		seed      = fs.Int64("seed", 1, "campaign seed (trial t of point g uses par.TrialSeed(seed, g, t))")
		workers   = fs.Int("workers", 0, "worker goroutines (0 = NumCPU); any value gives identical results")
		shard     = fs.Int("shard", 0, "trials per scheduler shard (0 = default; part of the campaign identity)")
		ckpt      = fs.String("checkpoint", "", "checkpoint file (enables periodic snapshots and -resume)")
		every     = fs.Duration("every", 30*time.Second, "checkpoint interval")
		resume    = fs.Bool("resume", false, "resume from -checkpoint instead of starting fresh")
		duration  = fs.Duration("duration", 0, "pause the campaign after this much wall time (0 = run to completion)")
		format    = fs.String("format", "table", "output format: table | csv | json")
		timing    = fs.Bool("timing", false, "include measured recovery-latency columns (not byte-deterministic)")
		quiet     = fs.Bool("q", false, "suppress live progress on stderr")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := campaign.Spec{
		Topology:  *topoFlag,
		K:         *k,
		Trials:    *trials,
		Seed:      *seed,
		ShardSize: *shard,
		Workers:   *workers,
	}
	var err error
	if spec.Meshes, err = parseMeshList(*meshFlag); err == nil {
		if spec.Models, err = parseModelList(*modelFlag); err == nil {
			spec.Procs, err = parseProcList(*procFlag)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "lambsim campaign: %v\n", err)
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "lambsim campaign: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "lambsim campaign: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT pauses the campaign: in-flight shards drain, the state
	// checkpoints (when -checkpoint is set), and the partial result prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := campaign.Opts{
		Checkpoint: *ckpt,
		Every:      *every,
		Resume:     *resume,
		Duration:   *duration,
	}
	if !*quiet {
		opts.Progress = stderr
	}
	res, err := campaign.Run(ctx, spec, opts)
	if err != nil {
		fmt.Fprintf(stderr, "lambsim campaign: %v\n", err)
		return 1
	}

	out, err := res.Render(*format, *timing)
	if err != nil {
		fmt.Fprintf(stderr, "lambsim campaign: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, out)
	if !res.Complete {
		if *ckpt != "" {
			fmt.Fprintf(stderr, "lambsim campaign: paused; resume with -checkpoint %s -resume\n", *ckpt)
		} else {
			fmt.Fprintln(stderr, "lambsim campaign: paused; no -checkpoint was set, progress is lost")
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "lambsim campaign: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "lambsim campaign: %v\n", err)
			return 1
		}
	}
	return 0
}

// parseMeshList parses "8x8,4x4x4" into width slices.
func parseMeshList(s string) ([][]int, error) {
	var meshes [][]int
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var widths []int
		for _, part := range strings.Split(name, "x") {
			w, err := strconv.Atoi(part)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad mesh %q (want e.g. 8x8)", name)
			}
			widths = append(widths, w)
		}
		meshes = append(meshes, widths)
	}
	if len(meshes) == 0 {
		return nil, fmt.Errorf("no meshes given")
	}
	return meshes, nil
}

// parseModelList parses "node,mixed" into models.
func parseModelList(s string) ([]campaign.Model, error) {
	var models []campaign.Model
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := campaign.ParseModel(name)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("no fault models given")
	}
	return models, nil
}

// parseProcList parses "fixed:3,mtbf:100,1000" into process specs. The
// separator between specs is a comma followed by a process name, so the
// commas inside a spec's parameters don't need escaping.
func parseProcList(s string) ([]campaign.ProcSpec, error) {
	var procs []campaign.ProcSpec
	for _, tok := range splitProcs(s) {
		ps, err := parseProc(tok)
		if err != nil {
			return nil, err
		}
		procs = append(procs, ps)
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("no fault processes given")
	}
	return procs, nil
}

// splitProcs splits a -process value on the commas that start a new spec.
func splitProcs(s string) []string {
	var out []string
	cur := ""
	for _, tok := range strings.Split(s, ",") {
		t := strings.TrimSpace(tok)
		if t == "" {
			continue
		}
		name, _, _ := strings.Cut(t, ":")
		switch name {
		case "fixed", "mtbf", "weibull":
			if cur != "" {
				out = append(out, cur)
			}
			cur = t
		default:
			if cur == "" {
				out = append(out, t) // let parseProc report the error
				continue
			}
			cur += "," + t
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// parseProc parses one process spec: fixed:N, mtbf:T,theta, or
// weibull:T,eta,beta.
func parseProc(s string) (campaign.ProcSpec, error) {
	name, rest, _ := strings.Cut(s, ":")
	nums := strings.Split(rest, ",")
	parse := func(i int) (float64, error) {
		if i >= len(nums) {
			return 0, fmt.Errorf("bad process %q: missing parameter", s)
		}
		return strconv.ParseFloat(strings.TrimSpace(nums[i]), 64)
	}
	switch name {
	case "fixed":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n < 0 {
			return campaign.ProcSpec{}, fmt.Errorf("bad process %q (want fixed:N)", s)
		}
		return campaign.ProcSpec{Proc: campaign.ProcFixed, Count: n}, nil
	case "mtbf":
		t, err1 := parse(0)
		theta, err2 := parse(1)
		if err1 != nil || err2 != nil || len(nums) != 2 {
			return campaign.ProcSpec{}, fmt.Errorf("bad process %q (want mtbf:T,theta)", s)
		}
		return campaign.ProcSpec{Proc: campaign.ProcMTBF, Mission: t, Theta: theta}, nil
	case "weibull":
		t, err1 := parse(0)
		eta, err2 := parse(1)
		beta, err3 := parse(2)
		if err1 != nil || err2 != nil || err3 != nil || len(nums) != 3 {
			return campaign.ProcSpec{}, fmt.Errorf("bad process %q (want weibull:T,eta,beta)", s)
		}
		return campaign.ProcSpec{Proc: campaign.ProcWeibull, Mission: t, Eta: eta, Beta: beta}, nil
	}
	return campaign.ProcSpec{}, fmt.Errorf("unknown fault process %q (fixed, mtbf, weibull)", name)
}
