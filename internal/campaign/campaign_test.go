package campaign

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testSpec is a small but non-trivial campaign: 2 meshes x 2 models x 2
// processes, multiple shards per point.
func testSpec() Spec {
	return Spec{
		Meshes: [][]int{{5, 5}, {4, 4}},
		Models: []Model{ModelNode, ModelMixed},
		Procs: []ProcSpec{
			{Proc: ProcFixed, Count: 3},
			{Proc: ProcMTBF, Mission: 50, Theta: 400},
		},
		K:         2,
		Trials:    24,
		Seed:      42,
		ShardSize: 8,
	}
}

// strip removes the non-deterministic members (measured wall times) so the
// remainder can be byte-compared.
func strip(t *testing.T, r *Result) string {
	t.Helper()
	c := *r
	c.Elapsed = 0
	c.TrialsRun = 0 // per-run metadata, not part of the campaign's result
	c.Points = append([]PointResult(nil), r.Points...)
	for i := range c.Points {
		c.Points[i].Agg.Recovery = Welford{}
	}
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestRunDeterministicAcrossWorkers is the campaign's core guarantee:
// byte-identical results at any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var ref string
	for _, workers := range []int{1, 2, 4} {
		spec := testSpec()
		spec.Workers = workers
		res, err := Run(context.Background(), spec, Opts{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Complete {
			t.Fatalf("workers=%d: campaign incomplete", workers)
		}
		if res.TrialsRun != spec.Trials*int64(spec.Points()) {
			t.Fatalf("workers=%d: ran %d trials, want %d", workers, res.TrialsRun, spec.Trials*int64(spec.Points()))
		}
		s := strip(t, res)
		if ref == "" {
			ref = s
		} else if s != ref {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

// TestRunAggregates sanity-checks the aggregated statistics of a completed
// campaign.
func TestRunAggregates(t *testing.T) {
	spec := testSpec()
	spec.Workers = 2
	res, err := Run(context.Background(), spec, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != spec.Points() {
		t.Fatalf("%d point results, want %d", len(res.Points), spec.Points())
	}
	for i, p := range res.Points {
		a := &p.Agg
		if a.Trials != spec.Trials {
			t.Fatalf("point %d: %d trials, want %d", i, a.Trials, spec.Trials)
		}
		if a.Connected < 0 || a.Connected > a.Trials {
			t.Fatalf("point %d: connected %d outside [0,%d]", i, a.Connected, a.Trials)
		}
		if a.Lambs.N != spec.Trials || a.Faults.N != spec.Trials || a.Recovery.N != spec.Trials {
			t.Fatalf("point %d: accumulator counts %+v", i, a)
		}
		if p.Proc.Proc == ProcFixed && a.Faults.Mean != float64(p.Proc.Count) {
			t.Fatalf("point %d: fixed process mean faults %v, want %d", i, a.Faults.Mean, p.Proc.Count)
		}
		if a.Lambs.Mean < 0 {
			t.Fatalf("point %d: negative mean lambs", i)
		}
		// Zero lambs <=> connected, so the zero bin must match.
		if a.LambHist.Zero != a.Connected {
			t.Fatalf("point %d: hist zero bin %d, connected %d", i, a.LambHist.Zero, a.Connected)
		}
	}
}

// TestCheckpointRoundTrip saves a mid-campaign snapshot, resumes from it,
// and requires the final result to be byte-identical to the uninterrupted
// run.
func TestCheckpointRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.Workers = 2

	ref, err := Run(context.Background(), spec, Opts{})
	if err != nil {
		t.Fatal(err)
	}

	// Build the exact mid-campaign state the merger would have at cursor C:
	// shards [0, C) folded in shard order.
	const cut = 7 // mid-point, not a point boundary
	pts, ms, err := buildGrid(&spec)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorker(ms)
	aggs := make([]PointAgg, len(pts))
	spp := spec.shardsPerPoint()
	var agg PointAgg
	for s := int64(0); s < cut; s++ {
		if err := w.runShard(&spec, pts, s, &agg); err != nil {
			t.Fatal(err)
		}
		aggs[s/spp].Merge(&agg)
	}
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	if err := saveCheckpoint(path, &spec, cut, aggs); err != nil {
		t.Fatal(err)
	}

	res, err := Run(context.Background(), spec, Opts{Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("resumed campaign incomplete")
	}
	if want := spec.Trials*int64(spec.Points()) - cut*int64(spec.ShardSize); res.TrialsRun != want {
		t.Fatalf("resumed run executed %d trials, want %d", res.TrialsRun, want)
	}
	if strip(t, res) != strip(t, ref) {
		t.Fatal("resumed result differs from uninterrupted run")
	}

	// The completed campaign's checkpoint can itself resume: a no-op run.
	res2, err := Run(context.Background(), spec, Opts{Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TrialsRun != 0 || !res2.Complete {
		t.Fatalf("no-op resume ran %d trials, complete=%v", res2.TrialsRun, res2.Complete)
	}
	if strip(t, res2) != strip(t, ref) {
		t.Fatal("no-op resume differs from uninterrupted run")
	}
}

// TestPauseAndResume exercises the duration-pause path end to end: a run
// whose deadline has already passed merges nothing, checkpoints, and a
// resume completes the campaign identically.
func TestPauseAndResume(t *testing.T) {
	spec := testSpec()
	spec.Workers = 2
	ref, err := Run(context.Background(), spec, Opts{})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	paused, err := Run(context.Background(), spec, Opts{Checkpoint: path, Duration: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if paused.Complete {
		t.Fatal("nanosecond-deadline run should pause")
	}

	res, err := Run(context.Background(), spec, Opts{Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("resumed campaign incomplete")
	}
	if strip(t, res) != strip(t, ref) {
		t.Fatal("paused+resumed result differs from uninterrupted run")
	}
}

// TestCancelledContext checks a cancelled context pauses rather than fails.
func TestCancelledContext(t *testing.T) {
	spec := testSpec()
	spec.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, spec, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("cancelled run should be incomplete")
	}
}

// TestCheckpointValidation covers the mismatch errors.
func TestCheckpointValidation(t *testing.T) {
	spec := testSpec()
	pts, _, err := buildGrid(&spec)
	if err != nil {
		t.Fatal(err)
	}
	aggs := make([]PointAgg, len(pts))
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := saveCheckpoint(path, &spec, 0, aggs); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path, &spec); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	other := spec
	other.Seed++
	if _, err := loadCheckpoint(path, &other); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("seed change should invalidate the checkpoint, got %v", err)
	}
	// Workers is not identity: changing it must NOT invalidate.
	wk := spec
	wk.Workers = 7
	if _, err := loadCheckpoint(path, &wk); err != nil {
		t.Fatalf("worker count should not be part of the identity: %v", err)
	}
	if _, err := loadCheckpoint(filepath.Join(t.TempDir(), "missing"), &spec); err == nil {
		t.Fatal("missing checkpoint should error")
	}
	if _, err := loadCheckpoint("", &spec); err == nil {
		t.Fatal("empty path should error")
	}
}

// TestSpecValidation covers buildGrid's input checks.
func TestSpecValidation(t *testing.T) {
	base := testSpec()
	for name, mut := range map[string]func(*Spec){
		"empty meshes": func(s *Spec) { s.Meshes = nil },
		"empty models": func(s *Spec) { s.Models = nil },
		"empty procs":  func(s *Spec) { s.Procs = nil },
		"k zero":       func(s *Spec) { s.K = 0 },
		"no trials":    func(s *Spec) { s.Trials = 0 },
		"bad mesh":     func(s *Spec) { s.Meshes = [][]int{{0, 4}} },
		"bad proc":     func(s *Spec) { s.Procs = []ProcSpec{{Proc: ProcMTBF, Theta: -1, Mission: 1}} },
		// Failure probability so high the half-population cap would cut
		// off most of the count distribution: rejected, not truncated.
		"truncating proc": func(s *Spec) { s.Procs = []ProcSpec{{Proc: ProcMTBF, Theta: 1, Mission: 1e9}} },
	} {
		spec := base
		mut(&spec)
		if _, err := Run(context.Background(), spec, Opts{}); err == nil {
			t.Fatalf("%s: Run should reject the spec", name)
		}
	}
}

// TestProgressOutput checks the live progress line and final summary reach
// the writer.
func TestProgressOutput(t *testing.T) {
	spec := testSpec()
	spec.Workers = 1
	spec.Meshes = spec.Meshes[:1]
	spec.Models = spec.Models[:1]
	spec.Procs = spec.Procs[:1]
	var sb strings.Builder
	if _, err := Run(context.Background(), spec, Opts{Progress: &sb}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "trials/sec") {
		t.Fatalf("progress output missing summary: %q", sb.String())
	}
}

// TestRender smoke-tests every output format.
func TestRender(t *testing.T) {
	spec := testSpec()
	spec.Workers = 2
	res, err := Run(context.Background(), spec, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	table, err := res.Render("table", false)
	if err != nil || !strings.Contains(table, "P(conn)") {
		t.Fatalf("table render: %v\n%s", err, table)
	}
	if strings.Contains(table, "rec_ms") {
		t.Fatal("recovery columns must be gated behind timing")
	}
	timed, err := res.Render("table", true)
	if err != nil || !strings.Contains(timed, "rec_ms") {
		t.Fatalf("timing render: %v", err)
	}
	csv, err := res.Render("csv", false)
	if err != nil || !strings.Contains(csv, "5x5") {
		t.Fatalf("csv render: %v\n%s", err, csv)
	}
	js, err := res.Render("json", false)
	if err != nil || !strings.Contains(js, "\"points\"") {
		t.Fatalf("json render: %v", err)
	}
	if _, err := res.Render("bogus", false); err == nil {
		t.Fatal("unknown format should error")
	}
}
