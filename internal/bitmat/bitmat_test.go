package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the O(n^3) reference product.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			for k := 0; k < a.Cols(); k++ {
				if a.Get(i, k) && b.Get(k, j) {
					out.Set(i, j)
					break
				}
			}
		}
	}
	return out
}

func randomMatrix(rows, cols int, density float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				m.Set(i, j)
			}
		}
	}
	return m
}

func TestSetGetClear(t *testing.T) {
	m := New(3, 130) // spans multiple words
	if m.Get(2, 129) {
		t.Error("fresh matrix should be zero")
	}
	m.Set(2, 129)
	m.Set(0, 0)
	m.Set(1, 63)
	m.Set(1, 64)
	if !m.Get(2, 129) || !m.Get(0, 0) || !m.Get(1, 63) || !m.Get(1, 64) {
		t.Error("Set/Get failed")
	}
	if m.Ones() != 4 {
		t.Errorf("Ones = %d", m.Ones())
	}
	m.Clear(1, 63)
	if m.Get(1, 63) || m.Ones() != 3 {
		t.Error("Clear failed")
	}
}

func TestBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access should panic")
		}
	}()
	New(2, 2).Get(2, 0)
}

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		p := 1 + rng.Intn(70)
		q := 1 + rng.Intn(70)
		r := 1 + rng.Intn(70)
		a := randomMatrix(p, q, rng.Float64(), rng)
		b := randomMatrix(q, r, rng.Float64(), rng)
		got := a.Mul(b)
		want := naiveMul(a, b)
		if !got.Equal(want) {
			t.Fatalf("trial %d: product mismatch (%dx%d * %dx%d)", trial, p, q, q, r)
		}
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(1+rng.Intn(40), 1+rng.Intn(40), 0.2, rng)
		b := randomMatrix(a.Cols(), 1+rng.Intn(40), 0.2, rng)
		c := randomMatrix(b.Cols(), 1+rng.Intn(40), 0.2, rng)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		if !left.Equal(right) {
			t.Fatalf("trial %d: (AB)C != A(BC)", trial)
		}
		if !MulChain(a, b, c).Equal(left) {
			t.Fatalf("trial %d: MulChain mismatch", trial)
		}
	}
}

// MulParallel must be bit-identical to Mul for every worker count.
func TestMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(90)
		q := 1 + rng.Intn(90)
		r := 1 + rng.Intn(90)
		a := randomMatrix(p, q, rng.Float64(), rng)
		b := randomMatrix(q, r, rng.Float64(), rng)
		want := a.Mul(b)
		for _, workers := range []int{-1, 0, 1, 2, 3, 8} {
			if got := a.MulParallel(b, workers); !got.Equal(want) {
				t.Fatalf("trial %d workers %d: MulParallel mismatch", trial, workers)
			}
		}
	}
}

// MulChainParallel must match the step-by-step Mul chain for every worker
// count and chain length, despite the scratch-pair reuse.
func TestMulChainParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		ms := make([]*Matrix, n)
		prev := 1 + rng.Intn(40)
		for i := range ms {
			next := 1 + rng.Intn(40)
			ms[i] = randomMatrix(prev, next, 0.3, rng)
			prev = next
		}
		want := ms[0]
		for _, m := range ms[1:] {
			want = want.Mul(m)
		}
		for _, workers := range []int{1, 2, 5} {
			got := MulChainParallel(workers, ms...)
			if !got.Equal(want) {
				t.Fatalf("trial %d workers %d: chain of %d mismatch", trial, workers, n)
			}
		}
	}
}

// The chain's scratch buffers must never alias its inputs: after the chain,
// re-multiplying the (unchanged) inputs must give the same answer.
func TestMulChainDoesNotCorruptInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(30, 40, 0.3, rng)
	b := randomMatrix(40, 30, 0.3, rng)
	c := randomMatrix(30, 20, 0.3, rng)
	aw, bw, cw := a.Clone(), b.Clone(), c.Clone()
	first := MulChain(a, b, c)
	if !a.Equal(aw) || !b.Equal(bw) || !c.Equal(cw) {
		t.Fatal("MulChain mutated an input")
	}
	if again := MulChain(a, b, c); !again.Equal(first) {
		t.Fatal("MulChain not reproducible")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched product should panic")
		}
	}()
	New(2, 3).Mul(New(4, 2))
}

func TestFromRowsAndString(t *testing.T) {
	m := FromRows([][]bool{{true, false}, {false, true}})
	if m.String() != "1 0\n0 1\n" {
		t.Errorf("String = %q", m.String())
	}
	if m.Density() != 0.5 {
		t.Errorf("Density = %v", m.Density())
	}
	if m.AllOnes() {
		t.Error("not all ones")
	}
	one := FromRows([][]bool{{true, true}})
	if !one.AllOnes() {
		t.Error("AllOnes failed")
	}
}

func TestZeroRowsCols(t *testing.T) {
	m := FromRows([][]bool{
		{true, true, true},
		{true, false, true},
		{true, true, false},
	})
	rows := m.ZeroRows()
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 2 {
		t.Errorf("ZeroRows = %v", rows)
	}
	cols := m.ZeroCols()
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Errorf("ZeroCols = %v", cols)
	}
	full := FromRows([][]bool{{true}, {true}})
	if full.ZeroRows() != nil || full.ZeroCols() != nil {
		t.Error("full matrix has no zero rows/cols")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0)
	c := m.Clone()
	c.Set(1, 1)
	if m.Get(1, 1) {
		t.Error("Clone aliases")
	}
	if !c.Get(0, 0) {
		t.Error("Clone lost bits")
	}
}

func TestOrRowInto(t *testing.T) {
	a := FromRows([][]bool{{true, false, true}})
	b := New(2, 3)
	a.OrRowInto(0, b, 1)
	if !b.Get(1, 0) || b.Get(1, 1) || !b.Get(1, 2) || b.Get(0, 0) {
		t.Error("OrRowInto wrong")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := New(0, 0)
	if m.Ones() != 0 || m.Density() != 0 || !m.AllOnes() {
		t.Error("empty matrix invariants")
	}
	// Product with empty inner dimension.
	a := New(3, 0)
	b := New(0, 4)
	p := a.Mul(b)
	if p.Rows() != 3 || p.Cols() != 4 || p.Ones() != 0 {
		t.Error("empty inner product wrong")
	}
}

// testing/quick property: Boolean products distribute over entry-wise OR in
// the left operand: (A or B) C == AC or BC.
func TestMulDistributesOverOrQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	orMat := func(a, b *Matrix) *Matrix {
		out := a.Clone()
		for i := 0; i < b.Rows(); i++ {
			b.OrRowInto(i, out, i)
		}
		return out
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := 1+r.Intn(30), 1+r.Intn(30), 1+r.Intn(30)
		a := randomMatrix(p, q, 0.3, rng)
		b := randomMatrix(p, q, 0.3, rng)
		c := randomMatrix(q, s, 0.3, rng)
		left := orMat(a, b).Mul(c)
		right := orMat(a.Mul(c), b.Mul(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Multiplying by an identity matrix is the identity.
func TestMulIdentityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := 1+r.Intn(40), 1+r.Intn(40)
		a := randomMatrix(p, q, 0.4, rng)
		id := New(q, q)
		for i := 0; i < q; i++ {
			id.Set(i, i)
		}
		return a.Mul(id).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
