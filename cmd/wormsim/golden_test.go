package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/golden/<name>, or rewrites the
// file when the test runs with -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with 'go test -run TestGolden -update ./...'): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenOutputs pins the exact bytes of every output format, static and
// live. The output is documented to be a pure function of the flags, so any
// diff here is either an intentional format change (regenerate with -update)
// or a determinism regression.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"static-table.txt", smallArgs("-sweep", "-rates", "0.01,0.05")},
		{"static-csv.txt", smallArgs("-sweep", "-rates", "0.01,0.05", "-format", "csv")},
		{"static-json.txt", smallArgs("-sweep", "-rates", "0.01,0.05", "-format", "json")},
		{"live-table.txt", smallArgs("-fault-schedule", "testdata/schedule.txt")},
		{"live-csv.txt", smallArgs("-fault-schedule", "testdata/schedule.txt", "-format", "csv")},
		{"live-json.txt", smallArgs("-fault-schedule", "testdata/schedule.txt", "-format", "json")},
		{"strategy-ring-table.txt", smallArgs("-strategy", "ring", "-sweep", "-rates", "0.01,0.05")},
		{"strategy-ring-csv.txt", smallArgs("-strategy", "ring", "-sweep", "-rates", "0.01,0.05", "-format", "csv")},
		{"strategy-ring-json.txt", smallArgs("-strategy", "ring", "-sweep", "-rates", "0.01,0.05", "-format", "json")},
		{"strategy-adaptive-table.txt", smallArgs("-strategy", "adaptive", "-sweep", "-rates", "0.01,0.05")},
		{"strategy-adaptive-csv.txt", smallArgs("-strategy", "adaptive", "-sweep", "-rates", "0.01,0.05", "-format", "csv")},
		{"strategy-adaptive-json.txt", smallArgs("-strategy", "adaptive", "-sweep", "-rates", "0.01,0.05", "-format", "json")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			checkGolden(t, tc.name, []byte(runWormsim(t, tc.args)))
		})
	}
}
