package viz

import (
	"strings"
	"testing"

	"lambmesh/internal/mesh"
)

func TestRenderBasic(t *testing.T) {
	m := mesh.MustNew(4, 3)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(1, 1))
	out, err := Render(f, []mesh.Coord{mesh.C(3, 2)}, Marks{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 3 node rows + 2 edge rows.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "X") {
		t.Errorf("fault row missing X:\n%s", out)
	}
	if !strings.Contains(lines[5], "L") {
		t.Errorf("lamb row missing L:\n%s", out)
	}
	if strings.Count(out, "X") != 1 || strings.Count(out, "L") != 1 {
		t.Errorf("wrong mark counts:\n%s", out)
	}
	if strings.Count(out, "o") != 10 {
		t.Errorf("want 10 good nodes, got %d:\n%s", strings.Count(out, "o"), out)
	}
}

func TestRenderLinkFaults(t *testing.T) {
	m := mesh.MustNew(3, 3)
	f := mesh.NewFaultSet(m)
	f.AddLink(mesh.Link{From: mesh.C(0, 0), Dim: 0, Dir: 1})
	f.AddLink(mesh.Link{From: mesh.C(1, 1), Dim: 1, Dir: 1})
	out, err := Render(f, nil, Marks{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-/-") {
		t.Errorf("broken horizontal edge missing:\n%s", out)
	}
	if !strings.Contains(out, "/") {
		t.Errorf("broken vertical edge missing:\n%s", out)
	}
}

func TestRenderExtraMarks(t *testing.T) {
	m := mesh.MustNew(3, 3)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(0, 0))
	out, err := Render(f, nil, Marks{Extra: map[int64]rune{
		m.Index(mesh.C(1, 1)): 'S',
		m.Index(mesh.C(0, 0)): 'Q', // fault wins over extra
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "S") {
		t.Errorf("extra mark missing:\n%s", out)
	}
	if strings.Contains(out, "Q") {
		t.Errorf("fault should win over extra mark:\n%s", out)
	}
}

func TestRenderRejectsNon2D(t *testing.T) {
	m := mesh.MustNew(3, 3, 3)
	if _, err := Render(mesh.NewFaultSet(m), nil, Marks{}); err == nil {
		t.Error("3D Render should fail")
	}
}

func TestRenderSlice(t *testing.T) {
	m := mesh.MustNew(3, 3, 3)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(1, 1, 2))
	out, err := RenderSlice(f, []mesh.Coord{mesh.C(0, 0, 2)}, 0, 1, mesh.C(0, 0, 2), Marks{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "X") != 1 || strings.Count(out, "L") != 1 {
		t.Errorf("slice marks wrong:\n%s", out)
	}
	// A different slice hides the fault.
	out2, err := RenderSlice(f, nil, 0, 1, mesh.C(0, 0, 0), Marks{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "X") {
		t.Errorf("fault leaked into wrong slice:\n%s", out2)
	}
	if _, err := RenderSlice(f, nil, 1, 1, mesh.C(0, 0, 0), Marks{}); err == nil {
		t.Error("equal dims should fail")
	}
}
