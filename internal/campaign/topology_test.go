package campaign

import (
	"context"
	"testing"
)

// topoSpec shrinks testSpec to one mesh per run so the generic (torus)
// solve stays fast.
func topoSpec(topology string, widths []int) Spec {
	return Spec{
		Meshes:    [][]int{widths},
		Models:    []Model{ModelNode, ModelMixed},
		Procs:     []ProcSpec{{Proc: ProcFixed, Count: 3}},
		Topology:  topology,
		K:         2,
		Trials:    24,
		Seed:      42,
		ShardSize: 8,
	}
}

// TestTopologyRunDeterministicAcrossWorkers extends the campaign's core
// guarantee — byte-identical results at any worker count — to the torus and
// hypercube grids.
func TestTopologyRunDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		topology string
		widths   []int
	}{
		{"torus", []int{5, 5}},
		{"hypercube", []int{2, 2, 2, 2}},
	}
	for _, tc := range cases {
		var ref string
		for _, workers := range []int{1, 2, 4} {
			spec := topoSpec(tc.topology, tc.widths)
			spec.Workers = workers
			res, err := Run(context.Background(), spec, Opts{})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.topology, workers, err)
			}
			if !res.Complete {
				t.Fatalf("%s workers=%d: campaign incomplete", tc.topology, workers)
			}
			s := strip(t, res)
			if ref == "" {
				ref = s
			} else if s != ref {
				t.Fatalf("%s workers=%d: results differ from workers=1", tc.topology, workers)
			}
		}
	}
}

// TestTopologySpecValidation: unsupported topologies and malformed shapes
// fail buildGrid with a clear error.
func TestTopologySpecValidation(t *testing.T) {
	bad := []Spec{
		topoSpec("fullmesh", []int{12}),
		topoSpec("klein-bottle", []int{4, 4}),
		topoSpec("hypercube", []int{2, 3, 2}),
	}
	for _, spec := range bad {
		if _, err := Run(context.Background(), spec, Opts{}); err == nil {
			t.Errorf("topology %q meshes %v: campaign ran, want an error", spec.Topology, spec.Meshes)
		}
	}
	// "mesh" and "" are the same campaign.
	if specKey(&Spec{Topology: "mesh"}) != specKey(&Spec{}) {
		t.Error(`spec keys of Topology "mesh" and "" differ`)
	}
}

// TestTopologySpecKeyBackCompat pins the spec key of a topology-less spec to
// its pre-topology value, so checkpoints recorded before the Topology field
// existed still resume.
func TestTopologySpecKeyBackCompat(t *testing.T) {
	spec := Spec{
		Meshes:    [][]int{{5, 5}, {4, 4}},
		Models:    []Model{ModelNode, ModelMixed},
		Procs:     []ProcSpec{{Proc: ProcFixed, Count: 3}, {Proc: ProcMTBF, Mission: 50, Theta: 400}},
		K:         2,
		Trials:    24,
		Seed:      42,
		ShardSize: 8,
	}
	key := specKey(&spec)
	withTopo := spec
	withTopo.Topology = "mesh"
	if got := specKey(&withTopo); got != key {
		t.Fatalf(`Topology "mesh" changed the spec key: %s != %s`, got, key)
	}
	withTopo.Topology = "torus"
	if got := specKey(&withTopo); got == key {
		t.Fatal("torus campaign shares its spec key with the mesh campaign")
	}
}
