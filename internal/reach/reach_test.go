package reach

import (
	"math/rand"
	"sort"
	"testing"

	"lambmesh/internal/bitmat"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func paperExample() *mesh.FaultSet {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10))
	return f
}

// sortByRep reorders rows/cols of a matrix so sets appear in mesh-index
// order of their representatives — the order the paper numbers S_1..S_9 and
// D_1..D_7 in.
func paperOrder(rc *Reachability) (rowPerm, colPerm []int) {
	m := rc.Oracle.Mesh()
	rowPerm = make([]int, rc.Sigma[0].Len())
	for i := range rowPerm {
		rowPerm[i] = i
	}
	sort.Slice(rowPerm, func(a, b int) bool {
		return m.Index(rc.Sigma[0].Sets[rowPerm[a]].Rep) < m.Index(rc.Sigma[0].Sets[rowPerm[b]].Rep)
	})
	// DESs are numbered first-coordinate-major in the paper (their shapes
	// fix the leading coordinates), so sort lexicographically from dim 0.
	last := len(rc.Delta) - 1
	colPerm = make([]int, rc.Delta[last].Len())
	for j := range colPerm {
		colPerm[j] = j
	}
	sort.Slice(colPerm, func(a, b int) bool {
		ra := rc.Delta[last].Sets[colPerm[a]].Rep
		rb := rc.Delta[last].Sets[colPerm[b]].Rep
		for i := range ra {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return false
	})
	return rowPerm, colPerm
}

func permuted(mat *bitmat.Matrix, rowPerm, colPerm []int) *bitmat.Matrix {
	out := bitmat.New(len(rowPerm), len(colPerm))
	for i, pi := range rowPerm {
		for j, pj := range colPerm {
			if mat.Get(pi, pj) {
				out.Set(i, j)
			}
		}
	}
	return out
}

// Table 1 of the paper: the 9x7 one-round reachability matrix R for the
// 12x12 example.
func TestPaperTable1(t *testing.T) {
	f := paperExample()
	rc, err := Compute(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	rowPerm, colPerm := paperOrder(rc)
	got := permuted(rc.R[0], rowPerm, colPerm)
	b := func(s string) []bool {
		out := make([]bool, len(s))
		for i := range s {
			out[i] = s[i] == '1'
		}
		return out
	}
	want := bitmat.FromRows([][]bool{
		b("1101010"), // S1
		b("1000000"), // S2
		b("0001010"), // S3
		b("1011010"), // S4
		b("1011000"), // S5
		b("1011001"), // S6
		b("1010000"), // S7
		b("0000001"), // S8
		b("1010101"), // S9
	})
	if !got.Equal(want) {
		t.Errorf("R mismatch.\ngot:\n%v\nwant:\n%v", got, want)
	}
}

// Table 2 of the paper: the two-round matrix R^(2) = R I R.
func TestPaperTable2(t *testing.T) {
	f := paperExample()
	rc, err := Compute(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	rowPerm, colPerm := paperOrder(rc)
	got := permuted(rc.RK, rowPerm, colPerm)
	b := func(s string) []bool {
		out := make([]bool, len(s))
		for i := range s {
			out[i] = s[i] == '1'
		}
		return out
	}
	want := bitmat.FromRows([][]bool{
		b("1111111"), // S1
		b("1111111"), // S2
		b("1111011"), // S3
		b("1111111"), // S4
		b("1111111"), // S5
		b("1111111"), // S6
		b("1111111"), // S7
		b("1011101"), // S8
		b("1111111"), // S9
	})
	if !got.Equal(want) {
		t.Errorf("R^(2) mismatch.\ngot:\n%v\nwant:\n%v", got, want)
	}
}

// With a uniform ordering, per-round structures must be shared, matching the
// paper's note that R_1 = R_2 = ... for identical rounds.
func TestUniformRoundsShared(t *testing.T) {
	f := paperExample()
	rc, err := Compute(f, routing.UniformAscending(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rc.R[0] != rc.R[1] || rc.R[1] != rc.R[2] {
		t.Error("uniform rounds should share R")
	}
	if rc.Sigma[0] != rc.Sigma[1] || rc.Delta[0] != rc.Delta[2] {
		t.Error("uniform rounds should share partitions")
	}
	if rc.I[0] != rc.I[1] {
		t.Error("uniform rounds should share I")
	}
}

// Fault-free mesh: R^(k) is the all-ones 1x1 matrix.
func TestNoFaults(t *testing.T) {
	m := mesh.MustNew(6, 6)
	f := mesh.NewFaultSet(m)
	rc, err := Compute(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rc.RK.Rows() != 1 || rc.RK.Cols() != 1 || !rc.RK.AllOnes() {
		t.Errorf("fault-free RK = %v", rc.RK)
	}
}

// Property test: the matrix-product R^(k) agrees entry-for-entry with the
// O(N^2) spanning-tree reference, over random meshes, fault sets, round
// counts, and (mixed) orderings.
func TestMatchesSpanningTreeReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][]int{{6, 6}, {5, 4}, {4, 4, 3}, {3, 3, 3}}
	for trial := 0; trial < 25; trial++ {
		m := mesh.MustNew(shapes[trial%len(shapes)]...)
		f := mesh.RandomNodeFaults(m, 1+rng.Intn(5), rng)
		if rng.Intn(2) == 0 {
			for i := 0; i < 2; i++ {
				c := m.CoordOf(rng.Int63n(m.Nodes()))
				dim := rng.Intn(m.Dims())
				dir := 1 - 2*rng.Intn(2)
				if _, ok := m.Neighbor(c, dim, dir); ok {
					f.AddLink(mesh.Link{From: c, Dim: dim, Dir: dir})
				}
			}
		}
		k := 1 + rng.Intn(3)
		orders := make(routing.MultiOrder, k)
		for i := range orders {
			orders[i] = routing.Order(rng.Perm(m.Dims()))
		}
		rc, err := Compute(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		ref := ReferenceRK(rc.Oracle, orders, rc.Sigma[0], rc.Delta[k-1])
		if !rc.RK.Equal(ref) {
			t.Fatalf("trial %d (%v, k=%d, orders=%v, faults=%v): matrix product disagrees with spanning tree.\nproduct:\n%v\nreference:\n%v",
				trial, m, k, orders, f.SortedNodeFaults(), rc.RK, ref)
		}
	}
}

// R^(k) can only gain ones as k grows (more rounds reach more).
func TestMonotoneInRounds(t *testing.T) {
	f := paperExample()
	prevOnes := -1
	for k := 1; k <= 3; k++ {
		rc, err := Compute(f, routing.UniformAscending(2, k))
		if err != nil {
			t.Fatal(err)
		}
		ones := rc.RK.Ones()
		if prevOnes >= 0 && ones < prevOnes {
			t.Errorf("k=%d has %d ones, fewer than k-1's %d", k, ones, prevOnes)
		}
		prevOnes = ones
	}
}

func TestInvalidOrderRejected(t *testing.T) {
	f := paperExample()
	if _, err := Compute(f, routing.MultiOrder{{0, 0}}); err == nil {
		t.Error("invalid ordering should be rejected")
	}
}

// The sweep method must produce exactly the same R^(k) as the matrix
// method, over random meshes, fault mixes, and round counts.
func TestSweepRKMatchesMatrixRK(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	shapes := [][]int{{8, 8}, {6, 5, 4}, {4, 4, 4}}
	for trial := 0; trial < 15; trial++ {
		m := mesh.MustNew(shapes[trial%len(shapes)]...)
		f := mesh.RandomNodeFaults(m, 1+rng.Intn(8), rng)
		mesh.RandomLinkFaults(f, rng.Intn(4), rng)
		k := 1 + rng.Intn(2)
		orders := routing.UniformAscending(m.Dims(), k)
		matrix, err := Compute(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		sweep, err := ComputeWithSweep(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.RK.Equal(sweep.RK) {
			t.Fatalf("trial %d: sweep RK disagrees with matrix RK\nmatrix:\n%v\nsweep:\n%v",
				trial, matrix.RK, sweep.RK)
		}
	}
}

func TestSweepTorusRejected(t *testing.T) {
	m, _ := mesh.NewTorus(4, 4)
	if _, err := ComputeWithSweep(mesh.NewFaultSet(m), routing.UniformAscending(2, 2)); err == nil {
		t.Error("torus should be rejected")
	}
}
