package core

import (
	"lambmesh/internal/reach"
	"lambmesh/internal/vcover"
)

// Solver owns every piece of scratch the lamb pipeline needs — partition
// arenas, the reachability matrix pool and chain double-buffer, the
// vertex-cover flow network, and the index/weight buffers of the WVC
// reductions — so that repeated Lamb1/Lamb2/ExactLamb calls stop allocating
// once the buffers reach the working-set size. That steady state is exactly
// where the pipeline runs hot: a Reconfigurer recomputing on every fault
// epoch, a lambd server swapping epochs, or a simulation worker running
// thousands of trials.
//
// The lamb sets produced are byte-identical to the package-level one-shot
// functions (which are themselves thin wrappers over a throwaway Solver):
// scratch reuse changes where intermediates live, never what they hold.
//
// A Solver is NOT safe for concurrent use — hold one per goroutine (the
// internal matrix fills still parallelize across cfg.workers; those workers
// allocate nothing and write disjoint rows). Results returned by a Solver
// own their memory (lamb coordinates are cloned out of the arenas) and stay
// valid forever; the intermediate Reachability attached under
// WithReachability is kept valid by detaching the scratch that backs it.
type Solver struct {
	rs reach.Scratch
	vs vcover.Scratch

	// Lamb1 buffers: zero rows/cols of R^(k), popcount scratch, bipartite
	// graph backing.
	zr, zc    []int
	colCounts []int
	bg        vcover.Bipartite

	// Lamb2 buffers: intersection vertices, forced flags, general graph
	// backing.
	verts  []intersection
	forced []bool
	gg     vcover.General

	// phases is the phase split of the last Lamb1 call (observability; the
	// lambs themselves are independent of it).
	phases PhaseTimes
}

// LastPhases returns the phase split of the most recent Lamb1 call.
func (s *Solver) LastPhases() PhaseTimes { return s.phases }

// intersection identifies the nonempty SES x DES intersection u_{i,j} of the
// Lamb2 reduction.
type intersection struct {
	i, j int
}

// NewSolver returns an empty Solver. Buffers grow on demand and are retained
// between calls.
func NewSolver() *Solver {
	return &Solver{}
}

// growInt64s reslices b to n int64s, reallocating only on growth. Entries
// are not zeroed; callers overwrite every index.
func growInt64s(b []int64, n int) []int64 {
	if cap(b) < n {
		return make([]int64, n)
	}
	return b[:n]
}

// growBools reslices b to n zeroed bools, reallocating only on growth.
func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// growLists reslices ls to n empty-but-capacitated []int entries,
// reallocating the spine only on growth. Inner slices keep their backing
// arrays, so adjacency lists rebuilt every call stop allocating once each
// slot has seen its deepest list.
func growLists(ls [][]int, n int) [][]int {
	if cap(ls) < n {
		ls = append(ls[:cap(ls)], make([][]int, n-cap(ls))...)
	}
	ls = ls[:n]
	for i := range ls {
		ls[i] = ls[i][:0]
	}
	return ls
}
