package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lambmesh/internal/mesh"
)

// TestConcurrentLoad is the acceptance test for the epoch-swap design: N
// concurrent clients hammer POST /v1/route while a reporter streams fault
// reports in. Every query must be answered (HTTP 200 with a well-formed
// body — graceful rejection counts, transport errors and 5xxs do not),
// and the generations observed by each client must never decrease. Run
// with -race, which is what CI does.
func TestConcurrentLoad(t *testing.T) {
	s := newTestServer(t, 12, 12)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients   = 8
		queries   = 60
		faultWave = 6 // interior diagonal nodes reported one at a time
	)

	var wg sync.WaitGroup
	errc := make(chan error, clients+1)

	// Fault reporter: streams one report at a time, mid-load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < faultWave; i++ {
			body, _ := json.Marshal(FaultReport{Nodes: []string{fmt.Sprintf("(%d,%d)", 3+i, 4+i)}})
			resp, err := http.Post(ts.URL+"/v1/faults", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- fmt.Errorf("fault report %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errc <- fmt.Errorf("fault report %d: status %d", i, resp.StatusCode)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			lastGen := uint64(0)
			for q := 0; q < queries; q++ {
				src := fmt.Sprintf("(%d,%d)", rng.Intn(12), rng.Intn(12))
				dst := fmt.Sprintf("(%d,%d)", rng.Intn(12), rng.Intn(12))
				body, _ := json.Marshal(RouteRequest{Src: src, Dst: dst})
				resp, err := http.Post(ts.URL+"/v1/route", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- fmt.Errorf("client %d query %d: %v", id, q, err)
					return
				}
				var rr RouteResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decodeErr != nil {
					errc <- fmt.Errorf("client %d query %d %s->%s: status %d, decode %v",
						id, q, src, dst, resp.StatusCode, decodeErr)
					return
				}
				if !rr.Found && rr.Reason == "" {
					errc <- fmt.Errorf("client %d: rejection with no reason: %+v", id, rr)
					return
				}
				if rr.Generation < lastGen {
					errc <- fmt.Errorf("client %d: generation went backwards: %d after %d",
						id, rr.Generation, lastGen)
					return
				}
				lastGen = rr.Generation
			}
		}(c)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// All reports eventually land; coalescing means generation is between
	// 1 and faultWave.
	e := waitGeneration(t, s, 1)
	deadline := time.Now().Add(10 * time.Second)
	for e.Faults.NumNodeFaults() < faultWave {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d faults folded in", e.Faults.NumNodeFaults(), faultWave)
		}
		time.Sleep(time.Millisecond)
		e = s.Epoch()
	}
	if e.Generation > faultWave {
		t.Errorf("generation %d exceeds %d reports", e.Generation, faultWave)
	}

	// With the dust settled, any two survivors of the final epoch route.
	var survivors []mesh.Coord
	e.Faults.Mesh().ForEachNode(func(c mesh.Coord) {
		if !e.Faults.NodeFaulty(c) && !e.IsLamb(c) {
			survivors = append(survivors, c.Clone())
		}
	})
	pairs := [][2]mesh.Coord{
		{survivors[0], survivors[len(survivors)-1]},
		{survivors[len(survivors)/2], survivors[0]},
	}
	for _, p := range pairs {
		if ans := s.Route(p[0], p[1]); !ans.Found {
			t.Errorf("survivors %v -> %v unroutable: %s", p[0], p[1], ans.Reason)
		}
	}

	// The counters the acceptance criteria name must be non-zero.
	m := s.Metrics()
	if m.Queries.Load() < clients*queries {
		t.Errorf("queries = %d, want >= %d", m.Queries.Load(), clients*queries)
	}
	if m.Recomputes.Load() == 0 {
		t.Error("no recomputes recorded")
	}
	if m.RoutesFound.Load() == 0 {
		t.Error("no routes found under load")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(page), "lambd_queries_total 0") ||
		strings.Contains(string(page), "lambd_recomputes_total 0") {
		t.Errorf("/metrics shows zero counters after load:\n%s", page)
	}
}

// TestCacheConcurrency hammers one epoch's cache from many goroutines to
// exercise the sharded locking under -race.
func TestCacheConcurrency(t *testing.T) {
	s := newSourceServer(t, RouteSourceCache, 10, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				src := mesh.C(rng.Intn(10), rng.Intn(10))
				dst := mesh.C(rng.Intn(10), rng.Intn(10))
				if ans := s.Route(src, dst); !ans.Found {
					t.Errorf("fault-free mesh rejected %v->%v: %s", src, dst, ans.Reason)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if hits := s.Metrics().CacheHits.Load(); hits == 0 {
		t.Error("no cache hits across 2400 queries on 100 nodes")
	}
}
