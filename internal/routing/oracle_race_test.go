package routing

import (
	"math/rand"
	"sync"
	"testing"

	"lambmesh/internal/mesh"
)

// The parallel reach kernels query one Oracle from many goroutines; this
// test exercises that pattern so `go test -race` proves the oracle is
// read-only after construction, and cross-checks every concurrent answer
// against a serially computed reference.
func TestOracleConcurrentQueries(t *testing.T) {
	m := mesh.MustNew(12, 12, 12)
	rng := rand.New(rand.NewSource(11))
	f := mesh.RandomNodeFaults(m, 80, rng)
	f.AddLink(mesh.Link{From: mesh.C(1, 1, 1), Dim: 0, Dir: 1})
	f.AddLink(mesh.Link{From: mesh.C(5, 5, 5), Dim: 2, Dir: -1})
	o := NewOracle(f)
	pi := Ascending(3)
	orders := UniformAscending(3, 2)

	type query struct{ v, w mesh.Coord }
	queries := make([]query, 400)
	for i := range queries {
		queries[i] = query{
			v: mesh.C(rng.Intn(12), rng.Intn(12), rng.Intn(12)),
			w: mesh.C(rng.Intn(12), rng.Intn(12), rng.Intn(12)),
		}
	}
	want := make([]bool, len(queries))
	for i, q := range queries {
		want[i] = o.ReachOne(pi, q.v, q.w)
	}
	wantSet := o.ReachableSetOne(pi, mesh.C(0, 0, 0))
	wantSweep := o.ReachKSetSweep(orders, mesh.C(0, 0, 0))

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, q := range queries {
				if got := o.ReachOne(pi, q.v, q.w); got != want[i] {
					errs <- "ReachOne diverged under concurrency"
					return
				}
			}
			set := o.ReachableSetOne(pi, mesh.C(0, 0, 0))
			for i := range set {
				if set[i] != wantSet[i] {
					errs <- "ReachableSetOne diverged under concurrency"
					return
				}
			}
			sweep := o.ReachKSetSweep(orders, mesh.C(0, 0, 0))
			for i := range sweep {
				if sweep[i] != wantSweep[i] {
					errs <- "ReachKSetSweep diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
