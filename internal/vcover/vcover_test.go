package vcover

import (
	"math/rand"
	"testing"
)

// bruteBipartite enumerates all covers of a small bipartite graph.
func bruteBipartite(g *Bipartite) int64 {
	p, q := len(g.LeftWeight), len(g.RightWeight)
	best := int64(1) << 62
	for lm := 0; lm < 1<<p; lm++ {
		for rm := 0; rm < 1<<q; rm++ {
			ok := true
			for i, ns := range g.Edges {
				for _, j := range ns {
					if lm&(1<<i) == 0 && rm&(1<<j) == 0 {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				continue
			}
			var w int64
			for i := 0; i < p; i++ {
				if lm&(1<<i) != 0 {
					w += g.LeftWeight[i]
				}
			}
			for j := 0; j < q; j++ {
				if rm&(1<<j) != 0 {
					w += g.RightWeight[j]
				}
			}
			if w < best {
				best = w
			}
		}
	}
	return best
}

// bruteGeneral enumerates all covers of a small general graph.
func bruteGeneral(g *General) int64 {
	n := len(g.Weight)
	best := int64(1) << 62
	for mask := 0; mask < 1<<n; mask++ {
		pick := make([]bool, n)
		for v := 0; v < n; v++ {
			pick[v] = mask&(1<<v) != 0
		}
		if g.ValidateGeneral(pick) != nil {
			continue
		}
		if w := g.WeightOf(pick); w < best {
			best = w
		}
	}
	return best
}

// The paper's Figure 10 instance: vertices s3, s8 (weights 2, 1) and d2, d5,
// d6 (weights 9, 1, 6); edges s3-d5, s8-d2, s8-d6. Minimum cover is
// {s8, d5} with weight 2.
func TestPaperFigure10(t *testing.T) {
	g := &Bipartite{
		LeftWeight:  []int64{2, 1},        // s3, s8
		RightWeight: []int64{9, 1, 6},     // d2, d5, d6
		Edges:       [][]int{{1}, {0, 2}}, // s3-d5; s8-d2, s8-d6
	}
	c := SolveBipartite(g)
	if err := g.Validate(c); err != nil {
		t.Fatal(err)
	}
	if c.Weight != 2 {
		t.Errorf("weight = %d, want 2", c.Weight)
	}
	if !c.Left[1] || !c.Right[1] || c.Left[0] || c.Right[0] || c.Right[2] {
		t.Errorf("cover = %+v, want {s8, d5}", c)
	}
}

func TestBipartiteEmpty(t *testing.T) {
	g := &Bipartite{LeftWeight: []int64{3}, RightWeight: []int64{4}, Edges: [][]int{nil}}
	c := SolveBipartite(g)
	if c.Weight != 0 || c.Left[0] || c.Right[0] {
		t.Errorf("edgeless graph needs empty cover, got %+v", c)
	}
}

func TestBipartiteMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(5)
		q := 1 + rng.Intn(5)
		g := &Bipartite{
			LeftWeight:  make([]int64, p),
			RightWeight: make([]int64, q),
			Edges:       make([][]int, p),
		}
		for i := range g.LeftWeight {
			g.LeftWeight[i] = int64(1 + rng.Intn(9))
		}
		for j := range g.RightWeight {
			g.RightWeight[j] = int64(1 + rng.Intn(9))
		}
		for i := 0; i < p; i++ {
			for j := 0; j < q; j++ {
				if rng.Float64() < 0.4 {
					g.Edges[i] = append(g.Edges[i], j)
				}
			}
		}
		c := SolveBipartite(g)
		if err := g.Validate(c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := bruteBipartite(g); c.Weight != want {
			t.Fatalf("trial %d: weight %d, brute %d (graph %+v)", trial, c.Weight, want, g)
		}
	}
}

func TestExactMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		g := &General{Weight: make([]int64, n), Adj: make([][]int, n)}
		for v := range g.Weight {
			g.Weight[v] = int64(1 + rng.Intn(9))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.Adj[u] = append(g.Adj[u], v)
				}
			}
		}
		pick := SolveExact(g)
		if err := g.ValidateGeneral(pick); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, want := g.WeightOf(pick), bruteGeneral(g); got != want {
			t.Fatalf("trial %d: exact weight %d, brute %d", trial, got, want)
		}
	}
}

func TestApprox2Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		g := &General{Weight: make([]int64, n), Adj: make([][]int, n)}
		for v := range g.Weight {
			g.Weight[v] = int64(1 + rng.Intn(9))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					g.Adj[u] = append(g.Adj[u], v)
				}
			}
		}
		pick := Approx2(g)
		if err := g.ValidateGeneral(pick); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := g.WeightOf(pick)
		opt := bruteGeneral(g)
		if got > 2*opt {
			t.Fatalf("trial %d: approx weight %d exceeds 2x optimum %d", trial, got, opt)
		}
	}
}

func TestApprox2ZeroInitialWeight(t *testing.T) {
	g := &General{Weight: []int64{0, 5}, Adj: [][]int{{1}, nil}}
	pick := Approx2(g)
	if err := g.ValidateGeneral(pick); err != nil {
		t.Fatal(err)
	}
	if !pick[0] || pick[1] {
		t.Errorf("pick = %v; free vertex should cover", pick)
	}
}

func TestGeneralDuplicateEdges(t *testing.T) {
	// The same edge listed from both endpoints must count once.
	g := &General{Weight: []int64{1, 1}, Adj: [][]int{{1}, {0}}}
	if got := len(g.edgeList()); got != 1 {
		t.Errorf("edgeList has %d edges, want 1", got)
	}
	pick := SolveExact(g)
	if g.WeightOf(pick) != 1 {
		t.Errorf("weight = %d, want 1", g.WeightOf(pick))
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop should panic")
		}
	}()
	g := &General{Weight: []int64{1}, Adj: [][]int{{0}}}
	g.edgeList()
}

// The adversarial star: exact picks the hub, approx may pick leaves, but
// never more than twice the hub's weight.
func TestStar(t *testing.T) {
	n := 6
	g := &General{Weight: make([]int64, n), Adj: make([][]int, n)}
	g.Weight[0] = 3
	for v := 1; v < n; v++ {
		g.Weight[v] = 1
		g.Adj[0] = append(g.Adj[0], v)
	}
	exact := SolveExact(g)
	if got := g.WeightOf(exact); got != 3 {
		t.Errorf("exact star weight = %d, want 3", got)
	}
	approx := Approx2(g)
	if err := g.ValidateGeneral(approx); err != nil {
		t.Fatal(err)
	}
	if got := g.WeightOf(approx); got > 6 {
		t.Errorf("approx star weight = %d > 2x opt", got)
	}
}
