package mesh

import (
	"fmt"
	"strconv"
	"strings"
)

// Coord is a node position in a d-dimensional mesh. Coordinate i ranges over
// [0, n_i) where n_i is the width of dimension i. Dimensions are 0-indexed
// internally; the paper's dimension 1 is our dimension 0 (its X).
type Coord []int

// Clone returns an independent copy of c.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Equal reports whether c and o name the same node.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// L1 returns the L1 (Manhattan) distance between c and o, which must have
// the same dimensionality.
func (c Coord) L1(o Coord) int {
	d := 0
	for i := range c {
		d += abs(c[i] - o[i])
	}
	return d
}

// String renders the coordinate in the paper's "(x,y,z)" style.
func (c Coord) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	b.WriteByte(')')
	return b.String()
}

// ParseCoord parses a coordinate written as "x,y,z" or "(x,y,z)".
func ParseCoord(s string) (Coord, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	if s == "" {
		return nil, fmt.Errorf("mesh: empty coordinate")
	}
	parts := strings.Split(s, ",")
	c := make(Coord, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("mesh: bad coordinate %q: %v", s, err)
		}
		c[i] = v
	}
	return c, nil
}

// C is a convenience constructor: C(1,2,3) == Coord{1,2,3}.
func C(vs ...int) Coord { return Coord(vs) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
