package main

import (
	"strings"
	"testing"
)

// TestTopologyGoldenOutputs pins the -topology output bytes the same way
// TestGoldenOutputs pins the mesh ones. Regenerate with
// 'go test -run TestTopologyGolden -update ./cmd/wormsim'.
func TestTopologyGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		// Torus lamb: k=2 rounds need 2k=4 dateline VC pairs.
		{"topo-torus-table.txt", smallArgs("-topology", "torus", "-vcs", "4", "-sweep", "-rates", "0.01,0.05")},
		{"topo-torus-csv.txt", smallArgs("-topology", "torus", "-vcs", "4", "-sweep", "-rates", "0.01,0.05", "-format", "csv")},
		{"topo-torus-json.txt", smallArgs("-topology", "torus", "-vcs", "4", "-sweep", "-rates", "0.01,0.05", "-format", "json")},
		{"topo-hypercube-table.txt", smallArgs("-topology", "hypercube", "-mesh", "2x2x2x2", "-faults", "2", "-sweep", "-rates", "0.01,0.05")},
		{"topo-hypercube-csv.txt", smallArgs("-topology", "hypercube", "-mesh", "2x2x2x2", "-faults", "2", "-sweep", "-rates", "0.01,0.05", "-format", "csv")},
		{"topo-hypercube-json.txt", smallArgs("-topology", "hypercube", "-mesh", "2x2x2x2", "-faults", "2", "-sweep", "-rates", "0.01,0.05", "-format", "json")},
		{"topo-fullmesh-table.txt", smallArgs("-topology", "fullmesh", "-mesh", "12", "-strategy", "direct", "-vcs", "1", "-faults", "4", "-sweep", "-rates", "0.01,0.05")},
		{"topo-fullmesh-json.txt", smallArgs("-topology", "fullmesh", "-mesh", "12", "-strategy", "direct", "-vcs", "1", "-faults", "4", "-sweep", "-rates", "0.01,0.05", "-format", "json")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			checkGolden(t, tc.name, []byte(runWormsim(t, tc.args)))
		})
	}
}

// TestTopologyFlagValidation covers the -topology/-strategy/-mesh interplay
// rejected at parse time.
func TestTopologyFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{smallArgs("-topology", "klein-bottle"), "unknown topology"},
		{smallArgs("-topology", "fullmesh", "-mesh", "12"), "requires -strategy direct"},
		{smallArgs("-strategy", "direct"), "requires -topology fullmesh"},
	}
	for _, tc := range cases {
		if _, err := parseConfig(tc.args); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseConfig(%v) err = %v, want substring %q", tc.args, err, tc.want)
		}
	}
}

// TestTopologyRunValidation covers the shape and VC checks that surface at
// run time (topology construction and the strategy MinVCs gate).
func TestTopologyRunValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{smallArgs("-topology", "hypercube", "-mesh", "2x3x2"), "every width to be 2"},
		{smallArgs("-topology", "fullmesh", "-mesh", "4x3", "-strategy", "direct"), "takes a node count"},
		{smallArgs("-topology", "torus", "-vcs", "2"), "needs at least 4 VCs"},
	}
	for _, tc := range cases {
		cfg, err := parseConfig(tc.args)
		if err != nil {
			t.Fatalf("parseConfig(%v): %v", tc.args, err)
		}
		if err := run(cfg, nopWriter{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) err = %v, want substring %q", tc.args, err, tc.want)
		}
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
