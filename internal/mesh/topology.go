package mesh

import "fmt"

// Topology abstracts the network substrate the routing, wormhole, and
// campaign layers consume: a set of nodes addressed by Coord over a *Mesh
// coordinate grid, plus the directed links between them. Meshes, tori, and
// hypercubes implement it directly on *Mesh; FullMesh layers all-to-all
// links over a one-dimensional grid. The contract every implementation must
// honor:
//
//   - Grid() is the coordinate substrate: Index/CoordOf/Contains and node
//     enumeration are always delegated to it, so node identity is uniform
//     across topologies.
//   - ChannelID is a dense bijection from valid links to [0, NumChannels());
//     the wormhole simulator's flat channel-state arrays index by it.
//   - LinkHead(l) returns the head node of l and reports whether l is a
//     valid link of the topology. It is the single source of truth for link
//     validity (AddLink, Usable, and fault-file parsing all route through
//     it).
//   - BasePath is the canonical fault-oblivious dimension-ordered path; it
//     pins the serialization-independent notion of "the default route" that
//     tests compare against.
//   - Tag is the stable serialization token ("mesh", "torus", "hypercube",
//     "fullmesh") used by fault files and checkpoint keys.
type Topology interface {
	// Grid returns the coordinate substrate the topology addresses nodes on.
	Grid() *Mesh
	// Tag returns the stable serialization token for fault files.
	Tag() string
	// NumChannels returns the number of directed physical channels.
	NumChannels() int
	// ChannelID returns the dense id of a valid directed link in
	// [0, NumChannels()). Behavior on invalid links is undefined.
	ChannelID(l Link) int
	// LinkHead returns the head node of l and whether l is a valid link.
	LinkHead(l Link) (Coord, bool)
	// Distance returns the minimum hop count between two nodes.
	Distance(a, b Coord) int
	// ForEachLink calls fn for every outgoing link of node from, in a
	// deterministic order (ascending dimension, then direction -1 before +1
	// on grids; ascending delta on full meshes).
	ForEachLink(from Coord, fn func(l Link))
	// BasePath returns the canonical dimension-ordered fault-oblivious path
	// from a to b, inclusive of both endpoints.
	BasePath(a, b Coord) []Coord
	// String renders a human-readable name, e.g. "M_2(8x8)", "T_2(6x6)",
	// "Q_4", "K_12".
	String() string
}

// TopologyNames lists the accepted -topology spellings, in flag-help order.
func TopologyNames() []string { return []string{"mesh", "torus", "hypercube", "fullmesh"} }

// --- *Mesh as a Topology (mesh, torus, hypercube) ---

// Grid returns the mesh itself: meshes are their own coordinate substrate.
func (m *Mesh) Grid() *Mesh { return m }

// Tag returns the topology's serialization token: "torus" for tori,
// "hypercube" for meshes built with NewHypercube, "mesh" otherwise.
func (m *Mesh) Tag() string {
	if m.torus {
		return "torus"
	}
	if m.kind != "" {
		return m.kind
	}
	return "mesh"
}

// NumChannels returns the dense channel-space size 2dN. Boundary nodes of a
// non-torus mesh leave some ids unused; the id space stays contiguous so
// per-channel arrays index without per-node offsets.
func (m *Mesh) NumChannels() int { return int(m.n) * len(m.widths) * 2 }

// ChannelID returns (Index(From)*d + Dim)*2 + dirBit, the layout the
// wormhole simulator has always used for meshes (so mesh channel ids are
// byte-identical to the pre-Topology code).
func (m *Mesh) ChannelID(l Link) int {
	dirBit := 0
	if l.Dir > 0 {
		dirBit = 1
	}
	return (int(m.Index(l.From))*len(m.widths)+l.Dim)*2 + dirBit
}

// LinkHead returns the head of l, requiring Dir in {+1, -1} and (off a
// torus) the head to exist.
func (m *Mesh) LinkHead(l Link) (Coord, bool) {
	if l.Dir != 1 && l.Dir != -1 {
		return nil, false
	}
	if l.Dim < 0 || l.Dim >= len(m.widths) || !m.Contains(l.From) {
		return nil, false
	}
	return m.Neighbor(l.From, l.Dim, l.Dir)
}

// Distance returns the L1 distance (with per-dimension wrap on a torus).
func (m *Mesh) Distance(a, b Coord) int {
	d := 0
	for i := range a {
		delta := a[i] - b[i]
		if delta < 0 {
			delta = -delta
		}
		if m.torus {
			if wrap := m.widths[i] - delta; wrap < delta {
				delta = wrap
			}
		}
		d += delta
	}
	return d
}

// ForEachLink enumerates the outgoing links of from: per dimension,
// direction -1 then +1, skipping boundary non-links on non-torus meshes.
func (m *Mesh) ForEachLink(from Coord, fn func(l Link)) {
	for dim := range m.widths {
		for _, dir := range []int{-1, 1} {
			if _, ok := m.Neighbor(from, dim, dir); ok {
				fn(Link{From: from, Dim: dim, Dir: dir})
			}
		}
	}
}

// BasePath walks dimensions in ascending order; on a torus each dimension
// takes the minimal direction, ties broken toward +1 (the same convention as
// routing.Path).
func (m *Mesh) BasePath(a, b Coord) []Coord {
	path := []Coord{a.Clone()}
	cur := a.Clone()
	for dim := range m.widths {
		for cur[dim] != b[dim] {
			dir := 1
			if !m.torus {
				if b[dim] < cur[dim] {
					dir = -1
				}
			} else {
				w := m.widths[dim]
				fwd := ((b[dim]-cur[dim])%w + w) % w
				if w-fwd < fwd {
					dir = -1
				}
			}
			next, ok := m.Neighbor(cur, dim, dir)
			if !ok {
				panic(fmt.Sprintf("mesh: BasePath fell off %v at %v", m, cur))
			}
			cur = next
			path = append(path, cur.Clone())
		}
	}
	return path
}

// --- FullMesh ---

// FullMesh is the complete network K_N: every ordered pair of distinct nodes
// has a dedicated directed link, so any packet can go direct (one hop) or
// via a single intermediate (two hops) — the topology Cano et al. (HOTI25)
// show routes deadlock-free with zero extra virtual channels, which makes it
// the natural contrast point for the k-VC cost the lamb method pays.
//
// The coordinate substrate is the one-dimensional torus T_1(N), so node i is
// Coord{i} and the link from i to j is encoded with the clockwise delta:
// Link{From: Coord{i}, Dim: 0, Dir: (j-i) mod N}, delta in [1, N-1]. The
// torus substrate makes Link.To and Neighbor resolve delta steps by
// wrapping, so links round-trip through all grid-based code unchanged.
type FullMesh struct {
	grid *Mesh
	n    int
}

// NewFullMesh returns the complete network on n nodes, n >= 3.
func NewFullMesh(n int) (*FullMesh, error) {
	if n < 3 {
		return nil, fmt.Errorf("mesh: full mesh needs at least 3 nodes, got %d", n)
	}
	grid, err := NewTorus(n)
	if err != nil {
		return nil, err
	}
	return &FullMesh{grid: grid, n: n}, nil
}

// MustNewFullMesh is NewFullMesh but panics on error.
func MustNewFullMesh(n int) *FullMesh {
	fm, err := NewFullMesh(n)
	if err != nil {
		panic(err)
	}
	return fm
}

// Nodes returns N.
func (fm *FullMesh) Nodes() int64 { return int64(fm.n) }

// Grid returns the T_1(N) coordinate substrate.
func (fm *FullMesh) Grid() *Mesh { return fm.grid }

// Tag returns "fullmesh".
func (fm *FullMesh) Tag() string { return "fullmesh" }

// NumChannels returns N(N-1), one directed channel per ordered node pair.
func (fm *FullMesh) NumChannels() int { return fm.n * (fm.n - 1) }

// ChannelID returns from*(N-1) + (delta-1): each node owns a contiguous
// block of N-1 outgoing channels ordered by clockwise delta.
func (fm *FullMesh) ChannelID(l Link) int {
	return int(fm.grid.Index(l.From))*(fm.n-1) + (l.Dir - 1)
}

// LinkHead accepts Dim 0 and any delta Dir in [1, N-1].
func (fm *FullMesh) LinkHead(l Link) (Coord, bool) {
	if l.Dim != 0 || l.Dir < 1 || l.Dir >= fm.n || !fm.grid.Contains(l.From) {
		return nil, false
	}
	return fm.grid.Neighbor(l.From, 0, l.Dir)
}

// Distance is 0 or 1: every pair of distinct nodes is adjacent.
func (fm *FullMesh) Distance(a, b Coord) int {
	if a.Equal(b) {
		return 0
	}
	return 1
}

// ForEachLink enumerates the N-1 outgoing links of from in ascending delta.
func (fm *FullMesh) ForEachLink(from Coord, fn func(l Link)) {
	for delta := 1; delta < fm.n; delta++ {
		fn(Link{From: from, Dim: 0, Dir: delta})
	}
}

// BasePath is the direct link.
func (fm *FullMesh) BasePath(a, b Coord) []Coord {
	if a.Equal(b) {
		return []Coord{a.Clone()}
	}
	return []Coord{a.Clone(), b.Clone()}
}

// Delta returns the link delta from node a to node b, panicking if a == b.
func (fm *FullMesh) Delta(a, b Coord) int {
	delta := ((b[0] - a[0]) % fm.n + fm.n) % fm.n
	if delta == 0 {
		panic(fmt.Sprintf("mesh: no link from %v to itself", a))
	}
	return delta
}

// String renders "K_N".
func (fm *FullMesh) String() string { return fmt.Sprintf("K_%d", fm.n) }
