package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no dims should fail")
	}
	if _, err := New(1, 4); err == nil {
		t.Error("width 1 should fail")
	}
	if _, err := New(0); err == nil {
		t.Error("width 0 should fail")
	}
	m, err := New(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 60 {
		t.Errorf("Nodes() = %d, want 60", m.Nodes())
	}
	if m.Dims() != 3 {
		t.Errorf("Dims() = %d, want 3", m.Dims())
	}
}

func TestNewCube(t *testing.T) {
	m, err := NewCube(3, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 32768 {
		t.Errorf("M_3(32) has %d nodes, want 32768", m.Nodes())
	}
	if got := m.String(); got != "M_3(32x32x32)" {
		t.Errorf("String() = %q", got)
	}
	// Hypercube special case.
	h, err := NewCube(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 32 {
		t.Errorf("hypercube Q_5 has %d nodes, want 32", h.Nodes())
	}
}

func TestBisectionWidth(t *testing.T) {
	cases := []struct {
		widths []int
		want   int64
	}{
		{[]int{32, 32}, 32},
		{[]int{32, 32, 32}, 1024},
		{[]int{181, 181}, 181},
		{[]int{10, 10, 10}, 100},
		{[]int{4, 8}, 4}, // N / max width
	}
	for _, c := range cases {
		m := MustNew(c.widths...)
		if got := m.BisectionWidth(); got != c.want {
			t.Errorf("%v bisection = %d, want %d", m, got, c.want)
		}
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	m := MustNew(3, 5, 2, 7)
	var i int64
	m.ForEachNode(func(c Coord) {
		if got := m.Index(c); got != i {
			t.Fatalf("Index(%v) = %d, want %d", c, got, i)
		}
		if back := m.CoordOf(i); !back.Equal(c) {
			t.Fatalf("CoordOf(%d) = %v, want %v", i, back, c)
		}
		i++
	})
	if i != m.Nodes() {
		t.Fatalf("ForEachNode visited %d nodes, want %d", i, m.Nodes())
	}
}

func TestIndexQuick(t *testing.T) {
	m := MustNew(9, 4, 11)
	f := func(a, b, c uint) bool {
		co := Coord{int(a % 9), int(b % 4), int(c % 11)}
		return m.CoordOf(m.Index(co)).Equal(co)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileIndex(t *testing.T) {
	m := MustNew(6, 7, 8)
	// Same profile iff coords agree everywhere except the skipped dim.
	a := Coord{2, 3, 4}
	b := Coord{5, 3, 4}
	c := Coord{2, 3, 5}
	if m.ProfileIndex(a, 0) != m.ProfileIndex(b, 0) {
		t.Error("a and b differ only in dim 0; profiles should match")
	}
	if m.ProfileIndex(a, 0) == m.ProfileIndex(c, 0) {
		t.Error("a and c differ in dim 2; dim-0 profiles should differ")
	}
	if m.ProfileIndex(a, 2) == m.ProfileIndex(b, 2) {
		t.Error("a and b differ in dim 0; dim-2 profiles should differ")
	}
}

func TestNeighborMesh(t *testing.T) {
	m := MustNew(4, 4)
	if _, ok := m.Neighbor(Coord{0, 2}, 0, -1); ok {
		t.Error("mesh should have no neighbor off the edge")
	}
	n, ok := m.Neighbor(Coord{0, 2}, 0, 1)
	if !ok || !n.Equal(Coord{1, 2}) {
		t.Errorf("Neighbor = %v, %v", n, ok)
	}
}

func TestNeighborTorus(t *testing.T) {
	m, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := m.Neighbor(Coord{0, 2}, 0, -1)
	if !ok || !n.Equal(Coord{3, 2}) {
		t.Errorf("torus wrap Neighbor = %v, %v; want (3,2)", n, ok)
	}
	n, ok = m.Neighbor(Coord{3, 2}, 0, 1)
	if !ok || !n.Equal(Coord{0, 2}) {
		t.Errorf("torus wrap Neighbor = %v, %v; want (0,2)", n, ok)
	}
}

func TestCoordHelpers(t *testing.T) {
	a := C(1, 2, 3)
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone should not alias")
	}
	if a.L1(C(4, 0, 3)) != 5 {
		t.Errorf("L1 = %d, want 5", a.L1(C(4, 0, 3)))
	}
	if a.Equal(C(1, 2)) {
		t.Error("different dims should not be Equal")
	}
	if a.String() != "(1,2,3)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestParseCoord(t *testing.T) {
	for _, s := range []string{"1,2,3", "(1,2,3)", " ( 1 , 2 , 3 ) "} {
		c, err := ParseCoord(s)
		if err != nil {
			t.Fatalf("ParseCoord(%q): %v", s, err)
		}
		if !c.Equal(C(1, 2, 3)) {
			t.Errorf("ParseCoord(%q) = %v", s, c)
		}
	}
	for _, s := range []string{"", "a,b", "1,,2"} {
		if _, err := ParseCoord(s); err == nil {
			t.Errorf("ParseCoord(%q) should fail", s)
		}
	}
}

func TestFaultSetNodes(t *testing.T) {
	m := MustNew(12, 12)
	f := NewFaultSet(m)
	f.AddNodes(C(9, 1), C(11, 6), C(10, 10))
	f.AddNode(C(9, 1)) // duplicate is a no-op
	if f.NumNodeFaults() != 3 {
		t.Errorf("NumNodeFaults = %d, want 3", f.NumNodeFaults())
	}
	if f.Count() != 3 {
		t.Errorf("Count = %d, want 3", f.Count())
	}
	if !f.NodeFaulty(C(11, 6)) || f.NodeFaulty(C(0, 0)) {
		t.Error("NodeFaulty wrong")
	}
	if f.GoodNodes() != 144-3 {
		t.Errorf("GoodNodes = %d", f.GoodNodes())
	}
}

func TestFaultSetLinks(t *testing.T) {
	m := MustNew(4, 4)
	f := NewFaultSet(m)
	l := Link{From: C(1, 1), Dim: 0, Dir: 1}
	f.AddLink(l)
	f.AddLink(l) // duplicate
	if f.NumLinkFaults() != 1 {
		t.Errorf("NumLinkFaults = %d, want 1", f.NumLinkFaults())
	}
	if !f.LinkFaulty(l) {
		t.Error("link should be faulty")
	}
	rev := Link{From: C(2, 1), Dim: 0, Dir: -1}
	if f.LinkFaulty(rev) {
		t.Error("reverse direction should be independent")
	}
	if f.Usable(l) {
		t.Error("faulty link is not usable")
	}
	if !f.Usable(rev) {
		t.Error("reverse link should be usable")
	}
	// A link incident to a faulty node is unusable even if not in F_L.
	f.AddNode(C(2, 1))
	if f.Usable(rev) {
		t.Error("link from faulty node should be unusable")
	}
	if f.Usable(Link{From: C(3, 1), Dim: 0, Dir: -1}) {
		t.Error("link into faulty node should be unusable")
	}
}

func TestLinkTo(t *testing.T) {
	m := MustNew(4, 4)
	l := Link{From: C(1, 2), Dim: 1, Dir: -1}
	if !l.To(m).Equal(C(1, 1)) {
		t.Errorf("To = %v", l.To(m))
	}
}

func TestSliceNodes(t *testing.T) {
	m := MustNew(12, 12)
	f := NewFaultSet(m)
	f.AddNodes(C(9, 1), C(11, 6), C(10, 10))
	got := f.SliceNodes(1, 1) // slice y=1 projecting away dim 1
	if len(got) != 1 || !got[0].Equal(C(9)) {
		t.Errorf("SliceNodes(1,1) = %v, want [(9)]", got)
	}
	if got := f.SliceNodes(1, 3); len(got) != 0 {
		t.Errorf("SliceNodes(1,3) = %v, want empty", got)
	}
	got = f.SliceNodes(0, 10)
	if len(got) != 1 || !got[0].Equal(C(10)) {
		t.Errorf("SliceNodes(0,10) = %v, want [(10)]", got)
	}
}

func TestRandomNodeFaults(t *testing.T) {
	m := MustNew(8, 8, 8)
	rng := rand.New(rand.NewSource(42))
	f := RandomNodeFaults(m, 50, rng)
	if f.NumNodeFaults() != 50 {
		t.Fatalf("got %d faults, want 50", f.NumNodeFaults())
	}
	// Distinctness is implied by NumNodeFaults (map-backed), but check
	// coordinates are in range.
	for _, c := range f.NodeFaults() {
		if !m.Contains(c) {
			t.Errorf("fault %v outside mesh", c)
		}
	}
	// Determinism: same seed, same faults.
	f2 := RandomNodeFaults(m, 50, rand.New(rand.NewSource(42)))
	a, b := f.SortedNodeFaults(), f2.SortedNodeFaults()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed produced different faults")
		}
	}
}

func TestClone(t *testing.T) {
	m := MustNew(4, 4)
	f := NewFaultSet(m)
	f.AddNode(C(1, 1))
	f.AddLink(Link{From: C(0, 0), Dim: 0, Dir: 1})
	g := f.Clone()
	g.AddNode(C(2, 2))
	if f.NodeFaulty(C(2, 2)) {
		t.Error("Clone should not alias")
	}
	if !g.NodeFaulty(C(1, 1)) || !g.LinkFaulty(Link{From: C(0, 0), Dim: 0, Dir: 1}) {
		t.Error("Clone lost faults")
	}
}

func TestRandomLinkFaults(t *testing.T) {
	m := MustNew(6, 6)
	rng := rand.New(rand.NewSource(4))
	f := NewFaultSet(m)
	f.AddNode(C(3, 3))
	RandomLinkFaults(f, 12, rng)
	if f.NumLinkFaults() != 12 {
		t.Fatalf("got %d link faults", f.NumLinkFaults())
	}
	for _, l := range f.LinkFaults() {
		if f.NodeFaulty(l.From) || f.NodeFaulty(l.To(m)) {
			t.Errorf("link %v touches a faulty node", l)
		}
		if !m.Contains(l.From) {
			t.Errorf("link tail %v outside mesh", l.From)
		}
	}
	if f.Count() != 13 {
		t.Errorf("Count = %d", f.Count())
	}
}
