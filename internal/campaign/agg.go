package campaign

import "math"

// Streaming aggregation: a campaign retains no per-trial results. Each
// metric folds into a Welford accumulator (mean/variance in one pass,
// numerically stable) plus a fixed-bin log histogram (quantiles), and
// success counts feed Wilson score intervals. All of it merges: shard
// aggregates combine associatively, and the scheduler merges them in shard
// order — a fixed order — so the floating-point results are byte-identical
// at any worker count.

// Welford is a one-pass mean/variance accumulator (Welford's algorithm;
// merged pairs use the Chan et al. parallel update).
type Welford struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (x - w.Mean)
}

// Merge folds another accumulator in. Merge order affects the low-order
// float bits, so the scheduler always merges in shard order.
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := w.N + o.N
	d := o.Mean - w.Mean
	w.Mean += d * float64(o.N) / float64(n)
	w.M2 += o.M2 + d*d*float64(w.N)*float64(o.N)/float64(n)
	w.N = n
}

// Variance returns the sample variance (n-1 denominator); 0 for n < 2.
func (w *Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N-1)
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval on the mean.
func (w *Welford) CI95() float64 {
	if w.N < 2 {
		return 0
	}
	return 1.959963984540054 * math.Sqrt(w.Variance()/float64(w.N))
}

// Histogram bins: value v > 0 lands in bin floor((log10(v)+histShift) *
// histPerDecade), covering 1e-12 .. 1e6 with 16 log-spaced bins per decade.
// Zero values are counted apart. Everything is integer counts, so merges are
// exact regardless of order.
const (
	histPerDecade = 16
	histShift     = 12 // decades below 1.0 covered
	histBins      = (histShift + 6) * histPerDecade
)

// Hist is a fixed-bin log histogram for non-negative observations.
type Hist struct {
	Zero  int64           `json:"zero"`
	Count int64           `json:"count"`
	Bins  [histBins]int64 `json:"bins"`
}

func histBin(v float64) int {
	b := int(math.Floor((math.Log10(v) + histShift) * histPerDecade))
	if b < 0 {
		return 0
	}
	if b >= histBins {
		return histBins - 1
	}
	return b
}

// Add folds one observation in. Negative values are clamped to zero.
func (h *Hist) Add(v float64) {
	h.Count++
	if v <= 0 {
		h.Zero++
		return
	}
	h.Bins[histBin(v)]++
}

// Merge folds another histogram in; exact in any order.
func (h *Hist) Merge(o *Hist) {
	h.Zero += o.Zero
	h.Count += o.Count
	for i := range h.Bins {
		h.Bins[i] += o.Bins[i]
	}
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1): the
// geometric midpoint of the bin holding the ceil(q*Count)-th observation
// (0 for the zero bin). Log-spaced bins bound the relative error by the bin
// width (~15% per bin at 16 bins/decade).
func (h *Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	if target <= h.Zero {
		return 0
	}
	seen := h.Zero
	for b := 0; b < histBins; b++ {
		seen += h.Bins[b]
		if seen >= target {
			return math.Pow(10, (float64(b)+0.5)/histPerDecade-histShift)
		}
	}
	return 0
}

// Wilson returns the 95% Wilson score interval for a binomial proportion
// with `successes` out of `n` trials. Unlike the normal approximation it
// behaves at the boundaries (0 or n successes), where campaign
// P(k-round-connected) estimates usually live.
func Wilson(successes, n int64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// PointAgg is the full streaming aggregate of one grid point. Recovery
// carries wall-clock seconds of the per-trial lamb recompute; it is
// measured (not derived from the seed), so it is reported separately and
// excluded from the byte-determinism guarantee (see DESIGN.md §12).
type PointAgg struct {
	Trials    int64   `json:"trials"`
	Connected int64   `json:"connected"` // trials with zero lambs
	Lambs     Welford `json:"lambs"`
	LambHist  Hist    `json:"lamb_hist"`
	Faults    Welford `json:"faults"`
	Recovery  Welford `json:"recovery"`
}

// Merge folds another point aggregate in (shard order matters for the
// Welford members; the scheduler guarantees it).
func (a *PointAgg) Merge(b *PointAgg) {
	a.Trials += b.Trials
	a.Connected += b.Connected
	a.Lambs.Merge(b.Lambs)
	a.LambHist.Merge(&b.LambHist)
	a.Faults.Merge(b.Faults)
	a.Recovery.Merge(b.Recovery)
}

// reset zeroes the aggregate in place (shard reuse).
func (a *PointAgg) reset() {
	*a = PointAgg{}
}
