package faultring

import (
	"fmt"
	"testing"

	"lambmesh/internal/mesh"
)

// FuzzRectangularize drives Build and Route over random fault sets and
// checks the structural invariants the bake-off relies on:
//
//   - Build is deterministic;
//   - the blocked set is exactly the union of the regions (monotone: every
//     fault and every inactivated node is in a region, nothing else is);
//   - every region contains at least one original fault, so no node is
//     sacrificed to a phantom region;
//   - region 1-expansions are pairwise disjoint (rings never overlap);
//   - no faulty link survives with two active endpoints (promotion);
//   - a sampled set of active pairs routes successfully exactly when BFS
//     over the active subgraph connects them, and every returned path is
//     contiguous, active-only, and avoids faulty links.
func FuzzRectangularize(f *testing.F) {
	f.Add([]byte{5, 5})                                  // empty fault set
	f.Add([]byte{8, 8, 3, 3, 0, 4, 4, 0})                // diagonal pair
	f.Add([]byte{8, 8, 3, 3, 0, 3, 5, 0, 3, 7, 0})       // gap chain
	f.Add([]byte{6, 9, 2, 2, 3, 2, 2, 7, 4, 4, 11})      // node + link mix
	f.Add([]byte{4, 12, 0, 0, 0, 1, 0, 0, 2, 0, 0, 3, 0, 0}) // full band
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		w := 3 + int(data[0])%8
		h := 3 + int(data[1])%8
		m := mesh.MustNew(w, h)
		fs := mesh.NewFaultSet(m)
		for i, n := 2, 0; i+2 < len(data) && n < 24; i, n = i+3, n+1 {
			x, y, kind := int(data[i])%w, int(data[i+1])%h, data[i+2]
			c := mesh.C(x, y)
			if kind%4 == 3 {
				dir := 1
				if (kind/8)%2 == 1 {
					dir = -1
				}
				l := mesh.Link{From: c, Dim: int(kind/4) % 2, Dir: dir}
				if _, ok := m.Neighbor(c, l.Dim, l.Dir); ok {
					fs.AddLink(l)
				}
			} else {
				fs.AddNode(c)
			}
		}
		if fs.NumNodeFaults() == int(m.Nodes()) {
			return
		}

		mod, err := Build(fs)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		mod2, err := Build(fs)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if fmt.Sprint(mod.Regions) != fmt.Sprint(mod2.Regions) ||
			fmt.Sprint(mod.Inactivated) != fmt.Sprint(mod2.Inactivated) ||
			mod.PromotedLinks != mod2.PromotedLinks {
			t.Fatalf("Build not deterministic: %v vs %v", mod, mod2)
		}

		// Blocked set == union of regions, and each region holds a fault.
		inRegion := func(c mesh.Coord) bool {
			_, ok := mod.regionAt(c)
			return ok
		}
		m.ForEachNode(func(c mesh.Coord) {
			if mod.Blocked(c) != inRegion(c) {
				t.Fatalf("node %v: blocked=%v but inRegion=%v", c, mod.Blocked(c), inRegion(c))
			}
		})
		for _, c := range fs.NodeFaults() {
			if !mod.Blocked(c) {
				t.Fatalf("fault %v not blocked", c)
			}
		}
		for _, r := range mod.Regions {
			hasFault := false
			r.ForEach(func(c mesh.Coord) {
				if fs.NodeFaulty(c) {
					hasFault = true
				}
				for _, l := range fs.LinkFaults() {
					if l.From.Equal(c) {
						hasFault = true
					}
				}
			})
			if !hasFault {
				t.Fatalf("region %v contains no fault", r)
			}
		}
		for i := 0; i < len(mod.Regions); i++ {
			for j := i + 1; j < len(mod.Regions); j++ {
				if expand(mod.Regions[i], 1).Intersects(expand(mod.Regions[j], 1)) {
					t.Fatalf("rings of %v and %v overlap", mod.Regions[i], mod.Regions[j])
				}
			}
		}
		for _, l := range fs.LinkFaults() {
			if mod.Active(l.From) && mod.Active(l.To(m)) {
				t.Fatalf("faulty link %v kept two active endpoints", l)
			}
		}

		// BFS components over the active subgraph. Since no faulty link has
		// two active endpoints, plain active-adjacency is the usable graph.
		comp := make([]int, m.Nodes())
		for i := range comp {
			comp[i] = -1
		}
		next := 0
		var queue []int64
		var active []mesh.Coord
		m.ForEachNode(func(c mesh.Coord) {
			if !mod.Active(c) {
				return
			}
			active = append(active, c.Clone())
			start := m.Index(c)
			if comp[start] >= 0 {
				return
			}
			comp[start] = next
			queue = append(queue[:0], start)
			for len(queue) > 0 {
				idx := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				cc := m.CoordOf(idx)
				for dim := 0; dim < 2; dim++ {
					for _, dir := range []int{-1, 1} {
						nb, ok := m.Neighbor(cc, dim, dir)
						if !ok || mod.Blocked(nb) {
							continue
						}
						ni := m.Index(nb)
						if comp[ni] < 0 {
							comp[ni] = next
							queue = append(queue, ni)
						}
					}
				}
			}
			next++
		})

		// Sample up to 12 active nodes evenly and route all ordered pairs.
		sample := active
		if len(sample) > 12 {
			step := len(active) / 12
			sample = sample[:0]
			for i := 0; i < len(active) && len(sample) < 12; i += step {
				sample = append(sample, active[i])
			}
		}
		for _, src := range sample {
			for _, dst := range sample {
				if src.Equal(dst) {
					continue
				}
				path, ok, err := mod.Route(src, dst)
				if err != nil {
					t.Fatalf("Route(%v, %v): %v", src, dst, err)
				}
				connected := comp[m.Index(src)] == comp[m.Index(dst)]
				if ok != connected {
					t.Fatalf("Route(%v, %v) ok=%v but BFS connected=%v", src, dst, ok, connected)
				}
				if !ok {
					continue
				}
				if len(path) > 4*w*h {
					t.Fatalf("path %v -> %v absurdly long: %d nodes", src, dst, len(path))
				}
				if !path[0].Equal(src) || !path[len(path)-1].Equal(dst) {
					t.Fatalf("path %v does not span %v -> %v", path, src, dst)
				}
				for i := 1; i < len(path); i++ {
					if path[i-1].L1(path[i]) != 1 {
						t.Fatalf("non-unit step %v -> %v", path[i-1], path[i])
					}
					if mod.Blocked(path[i]) {
						t.Fatalf("path visits blocked %v", path[i])
					}
					if !fs.Usable(linkForStep(path[i-1], path[i])) {
						t.Fatalf("path uses unusable link %v -> %v", path[i-1], path[i])
					}
				}
			}
		}
	})
}
