// Command benchcheck validates the shape of BENCH_lamb.json, the perf
// trajectory file scripts/bench.sh emits. CI runs `scripts/bench.sh
// --check` (which execs this) so the bench harness and its output format
// cannot rot silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchEntry struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type benchFile struct {
	Schema     string             `json:"schema"`
	Date       string             `json:"date"`
	GoVersion  string             `json:"go"`
	NumCPU     int                `json:"num_cpu"`
	Benchtime  string             `json:"benchtime"`
	Benchmarks []benchEntry       `json:"benchmarks"`
	Speedup    map[string]float64 `json:"speedup"`
}

// requiredBenchmarks are the hot-path benchmarks the issue tracks; each must
// appear at workers=1, and (when the recording machine had >1 CPU) at
// workers=NumCPU too.
var requiredBenchmarks = []string{
	"BenchmarkFig17Trial",
	"BenchmarkFig18Trial",
	"BenchmarkBitmatMul",
	"BenchmarkSec5LambSet",
}

func main() {
	file := flag.String("file", "BENCH_lamb.json", "bench JSON file to validate")
	flag.Parse()
	if err := check(*file); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %s OK\n", *file)
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("%s: not valid JSON: %v", path, err)
	}
	if bf.Schema != "lambmesh-bench/v1" {
		return fmt.Errorf("%s: schema %q, want lambmesh-bench/v1", path, bf.Schema)
	}
	if bf.NumCPU < 1 {
		return fmt.Errorf("%s: num_cpu %d", path, bf.NumCPU)
	}
	if bf.Date == "" || bf.GoVersion == "" {
		return fmt.Errorf("%s: missing date or go version", path)
	}
	seen := map[string]map[int]bool{}
	for i, b := range bf.Benchmarks {
		if b.Name == "" || b.Workers < 1 || b.NsPerOp <= 0 {
			return fmt.Errorf("%s: benchmarks[%d] malformed: %+v", path, i, b)
		}
		if seen[b.Name] == nil {
			seen[b.Name] = map[int]bool{}
		}
		if seen[b.Name][b.Workers] {
			return fmt.Errorf("%s: duplicate entry %s workers=%d", path, b.Name, b.Workers)
		}
		seen[b.Name][b.Workers] = true
	}
	for _, name := range requiredBenchmarks {
		if !seen[name][1] {
			return fmt.Errorf("%s: missing %s at workers=1", path, name)
		}
		if bf.NumCPU > 1 && !seen[name][bf.NumCPU] {
			return fmt.Errorf("%s: missing %s at workers=%d (NumCPU)", path, name, bf.NumCPU)
		}
	}
	if bf.NumCPU > 1 && len(bf.Speedup) == 0 {
		return fmt.Errorf("%s: num_cpu %d but no speedup map", path, bf.NumCPU)
	}
	return nil
}
