// Torus demonstrates the Section 7 extensions: the lamb method on a torus
// (wrap-around links), on a binary hypercube, with per-node values, and
// with predetermined lambs.
//
//	go run ./examples/torus
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lambmesh"
)

func main() {
	torusDemo()
	hypercubeDemo()
	valuesDemo()
	predeterminedDemo()
}

// torusDemo: the same fault pattern that forces a lamb on a mesh needs none
// on a torus, because wrap-around links give the cut-off corner a way out.
func torusDemo() {
	fmt.Println("== torus vs mesh ==")
	faultsFor := func(m *lambmesh.Mesh) *lambmesh.FaultSet {
		f := lambmesh.NewFaultSet(m)
		f.AddNodes(lambmesh.C(1, 0), lambmesh.C(0, 1), lambmesh.C(1, 1))
		return f
	}
	mm, err := lambmesh.NewMesh(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	meshRes, err := lambmesh.FindLambSet(faultsFor(mm), lambmesh.TwoRoundXY())
	if err != nil {
		log.Fatal(err)
	}
	tm, err := lambmesh.NewTorus(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	torusRes, err := lambmesh.FindLambSetTorus(faultsFor(tm), lambmesh.TwoRoundXY())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh  M_2(6):  corner (0,0) cut off -> lambs %v\n", meshRes.Lambs)
	fmt.Printf("torus T_2(6):  wrap links rescue it -> lambs %v\n\n", torusRes.Lambs)
}

// hypercubeDemo: a hypercube is the mesh M_d(2), so the fast rectangular
// algorithm applies directly.
func hypercubeDemo() {
	fmt.Println("== hypercube Q_5 ==")
	m, err := lambmesh.NewCube(5, 2)
	if err != nil {
		log.Fatal(err)
	}
	f := lambmesh.RandomNodeFaults(m, 3, rand.New(rand.NewSource(7)))
	orders := lambmesh.UniformAscending(5, 2)
	res, err := lambmesh.FindLambSet(f, orders)
	if err != nil {
		log.Fatal(err)
	}
	if err := lambmesh.VerifyLambSet(f, orders, res.Lambs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q_5 with faults %v -> lambs %v (verified)\n\n", f.SortedNodeFaults(), res.Lambs)
}

// valuesDemo: nodes carry utilities; the solver sacrifices cheap nodes.
func valuesDemo() {
	fmt.Println("== per-node values ==")
	m, err := lambmesh.NewMesh(12, 12)
	if err != nil {
		log.Fatal(err)
	}
	f := lambmesh.NewFaultSet(m)
	f.AddNodes(lambmesh.C(9, 1), lambmesh.C(11, 6), lambmesh.C(10, 10))
	// Default choice would sacrifice (11,10) and (10,11); make them
	// precious (say, all 100 processors good) and the alternative sets
	// nearly worthless.
	values := map[int64]int64{
		m.Index(lambmesh.C(11, 10)): 100,
		m.Index(lambmesh.C(10, 11)): 100,
		m.Index(lambmesh.C(10, 1)):  0,
		m.Index(lambmesh.C(11, 1)):  0,
		m.Index(lambmesh.C(9, 0)):   0,
	}
	res, err := lambmesh.FindLambSet(f, lambmesh.TwoRoundXY(), lambmesh.WithValues(values))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with values, the lamb set shifts to %v\n\n", res.Lambs)
}

// predeterminedDemo: reconfiguration after new faults can keep the old
// lambs in place.
func predeterminedDemo() {
	fmt.Println("== predetermined lambs across reconfiguration ==")
	m, err := lambmesh.NewMesh(12, 12)
	if err != nil {
		log.Fatal(err)
	}
	f := lambmesh.NewFaultSet(m)
	f.AddNodes(lambmesh.C(9, 1), lambmesh.C(11, 6), lambmesh.C(10, 10))
	first, err := lambmesh.FindLambSet(f, lambmesh.TwoRoundXY())
	if err != nil {
		log.Fatal(err)
	}
	// A new fault arrives; recompute, keeping the previous lambs lambs.
	f2 := f.Clone()
	f2.AddNode(lambmesh.C(4, 4))
	second, err := lambmesh.FindLambSet(f2, lambmesh.TwoRoundXY(),
		lambmesh.WithPredetermined(first.Lambs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first lamb set:  %v\n", first.Lambs)
	fmt.Printf("after new fault: %v (superset, as Section 7 suggests)\n", second.Lambs)
}
