// Package mesh models d-dimensional mesh-connected networks — the topology
// substrate of Ho & Stockmeyer, "A New Approach to Fault-Tolerant Wormhole
// Routing for Mesh-Connected Parallel Computers" (IPDPS 2002).
//
// A mesh M_d(n_1,...,n_d) has nodes (v_1,...,v_d) with 0 <= v_i < n_i and a
// pair of directed links between every two nodes at L1 distance 1
// (Definition 2.1 of the paper). The package also supports the torus variant
// of Section 7, which adds wrap-around links in every dimension.
//
// Node and link fault sets (Definition 2.4) live here too: a fault set is
// F = (F_N, F_L) with F_N a set of nodes and F_L a set of *directed* links,
// so a link may fail in only one direction.
package mesh

import "fmt"

// Mesh describes a d-dimensional mesh (or torus) topology. The zero value is
// not usable; construct with New, NewCube, or NewTorus.
type Mesh struct {
	widths  []int
	strides []int64 // strides[i] = product of widths[0..i-1]
	n       int64   // total number of nodes
	torus   bool
	// kind overrides the serialization tag for specializations that are
	// structurally plain meshes ("hypercube"); empty for ordinary meshes.
	kind string
}

// New returns the mesh M_d(widths[0], ..., widths[d-1]). Every width must be
// at least 2 (Definition 2.1).
func New(widths ...int) (*Mesh, error) {
	return build(widths, false)
}

// NewTorus returns the d-dimensional torus with the given widths: the mesh
// plus wrap-around links between coordinate n_i-1 and 0 in each dimension i
// (Section 7 of the paper).
func NewTorus(widths ...int) (*Mesh, error) {
	return build(widths, true)
}

// NewCube returns M_d(n): the d-dimensional mesh with all widths equal to n.
// With n == 2 this is the d-dimensional binary hypercube.
func NewCube(d, n int) (*Mesh, error) {
	w := make([]int, d)
	for i := range w {
		w[i] = n
	}
	return New(w...)
}

// NewHypercube returns Q_d, the d-dimensional binary hypercube
// M_d(2,...,2), carrying the "hypercube" topology tag (Section 7 treats
// hypercubes as width-2 meshes, so the rectangular lamb algorithms apply
// unchanged; only the name and serialization differ).
func NewHypercube(d int) (*Mesh, error) {
	if d < 1 {
		return nil, fmt.Errorf("mesh: hypercube needs at least one dimension, got %d", d)
	}
	w := make([]int, d)
	for i := range w {
		w[i] = 2
	}
	m, err := New(w...)
	if err != nil {
		return nil, err
	}
	m.kind = "hypercube"
	return m, nil
}

// MustNew is New but panics on error; for tests and examples with constant
// dimensions.
func MustNew(widths ...int) *Mesh {
	m, err := New(widths...)
	if err != nil {
		panic(err)
	}
	return m
}

func build(widths []int, torus bool) (*Mesh, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("mesh: need at least one dimension")
	}
	m := &Mesh{
		widths:  append([]int(nil), widths...),
		strides: make([]int64, len(widths)),
		torus:   torus,
	}
	m.n = 1
	for i, w := range widths {
		if w < 2 {
			return nil, fmt.Errorf("mesh: width of dimension %d is %d; must be >= 2", i, w)
		}
		m.strides[i] = m.n
		m.n *= int64(w)
	}
	return m, nil
}

// Dims returns d, the number of dimensions.
func (m *Mesh) Dims() int { return len(m.widths) }

// Width returns the width n_i of dimension i.
func (m *Mesh) Width(i int) int { return m.widths[i] }

// Widths returns a copy of all widths.
func (m *Mesh) Widths() []int { return append([]int(nil), m.widths...) }

// Nodes returns N, the total number of nodes.
func (m *Mesh) Nodes() int64 { return m.n }

// Stride returns the linear-index stride of dimension i: incrementing
// coordinate i by one moves the Index by Stride(i). Exposed so hot query
// paths can walk indices incrementally instead of materializing coordinates.
func (m *Mesh) Stride(i int) int64 { return m.strides[i] }

// Torus reports whether the topology has wrap-around links.
func (m *Mesh) Torus() bool { return m.torus }

// BisectionWidth returns the number of node faults required to cut the mesh
// into two roughly equal halves. Following Section 8 of the paper, for
// M_d(n) this is n^(d-1); in general it is N divided by the largest width.
func (m *Mesh) BisectionWidth() int64 {
	maxW := 0
	for _, w := range m.widths {
		if w > maxW {
			maxW = w
		}
	}
	return m.n / int64(maxW)
}

// Contains reports whether c is a node of the mesh.
func (m *Mesh) Contains(c Coord) bool {
	if len(c) != len(m.widths) {
		return false
	}
	for i, v := range c {
		if v < 0 || v >= m.widths[i] {
			return false
		}
	}
	return true
}

// Index converts a coordinate to its linear index in [0, Nodes()).
// The first dimension varies fastest. Panics if c is out of range.
func (m *Mesh) Index(c Coord) int64 {
	if !m.Contains(c) {
		panic(fmt.Sprintf("mesh: coordinate %v outside %v", c, m))
	}
	var idx int64
	for i, v := range c {
		idx += int64(v) * m.strides[i]
	}
	return idx
}

// CoordOf converts a linear index back to a coordinate.
func (m *Mesh) CoordOf(idx int64) Coord {
	c := make(Coord, len(m.widths))
	m.CoordInto(idx, c)
	return c
}

// CoordInto converts a linear index to a coordinate in place: the
// allocation-free form of CoordOf for trial loops that reuse one scratch
// coordinate. dst must have length Dims().
func (m *Mesh) CoordInto(idx int64, dst Coord) {
	if idx < 0 || idx >= m.n {
		panic(fmt.Sprintf("mesh: index %d outside [0,%d)", idx, m.n))
	}
	for i, w := range m.widths {
		dst[i] = int(idx % int64(w))
		idx /= int64(w)
	}
}

// ProfileIndex returns a value that uniquely identifies c among all nodes
// that agree with c on every dimension except skipDim. It is the linear
// index of c with coordinate skipDim forced to zero. Routing fault indexes
// key on this.
func (m *Mesh) ProfileIndex(c Coord, skipDim int) int64 {
	var idx int64
	for i, v := range c {
		if i == skipDim {
			continue
		}
		idx += int64(v) * m.strides[i]
	}
	return idx
}

// Neighbor returns the neighbor of c one step along dimension dim in
// direction dir (+1 or -1), and whether such a neighbor exists. On a torus
// the step wraps around.
func (m *Mesh) Neighbor(c Coord, dim, dir int) (Coord, bool) {
	v := c[dim] + dir
	w := m.widths[dim]
	if v < 0 || v >= w {
		if !m.torus {
			return nil, false
		}
		v = ((v % w) + w) % w
	}
	out := c.Clone()
	out[dim] = v
	return out, true
}

// ForEachNode calls fn for every node of the mesh in index order. The Coord
// passed to fn is reused between calls; clone it if it must be retained.
func (m *Mesh) ForEachNode(fn func(c Coord)) {
	c := make(Coord, len(m.widths))
	for {
		fn(c)
		i := 0
		for ; i < len(c); i++ {
			c[i]++
			if c[i] < m.widths[i] {
				break
			}
			c[i] = 0
		}
		if i == len(c) {
			return
		}
	}
}

// String renders the mesh as, e.g., "M_3(32x32x32)", "T_2(8x8)" for a
// torus, or "Q_4" for a hypercube.
func (m *Mesh) String() string {
	if m.kind == "hypercube" {
		return fmt.Sprintf("Q_%d", len(m.widths))
	}
	kind := "M"
	if m.torus {
		kind = "T"
	}
	s := fmt.Sprintf("%s_%d(", kind, len(m.widths))
	for i, w := range m.widths {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(w)
	}
	return s + ")"
}
