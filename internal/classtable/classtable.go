// Package classtable is the class-based O(1) route data plane of the lambd
// serving layer. The paper's central compression (Section 6.1): whether w is
// (k,F,pi)-reachable from v depends only on the SES equivalence class of v
// (under pi_1) and the DES class of w (under pi_k) — at most
// ((2d-1)f+1)^2 class pairs, versus N^2 node pairs. A Table materializes
// that insight as a serving structure built once per epoch:
//
//   - classify src and dst in O(d log f) via the sorted fault-interval
//     trees of partition.Classifier;
//   - read one bit of the S x D k-round reachability matrix to answer
//     "is there a route?";
//   - for 2-round routings, read the class pair's slot — the precomputed
//     list of via cells (nonempty intersections of a round-1 DES with a
//     round-2 SES, within which *every* node is a feasible intermediate) —
//     and pick the concrete via minimizing the concrete pair's hop count.
//
// Every step is independent of the mesh size N, and a warm Lookup performs
// zero heap allocations. Route answers are byte-identical to the per-pair
// routing.ChooseRoute the epoch cache used to memoize: feasibility of a via
// u for (src,dst) depends only on (DES_pi1(u), SES_pi2(u)) — a cell — so
// minimizing hops over the cell union with lowest-linear-index tie-breaking
// reproduces ChooseRoute's deterministic scan exactly.
//
// Supported configurations: meshes (not tori) with k <= 2 rounds — the
// paper's simulated configurations and lambd's default. Callers fall back
// to the per-pair path for anything else (ErrUnsupported).
package classtable

import (
	"errors"
	"sync/atomic"

	"lambmesh/internal/bitmat"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/partition"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// ErrUnsupported marks a configuration the class table cannot serve (torus
// topology, or more than two routing rounds). Callers should fall back to
// per-pair routing.
var ErrUnsupported = errors.New("classtable: only meshes with k <= 2 rounds are supported")

// Supported reports whether New would accept the configuration.
func Supported(m *mesh.Mesh, orders routing.MultiOrder) bool {
	k := orders.Rounds()
	return !m.Torus() && k >= 1 && k <= 2
}

// viaCell is one nonempty intersection of a round-1 DES with a round-2 SES.
// Every node of the box is interchangeable as an intermediate: feasibility
// of src -> u -> dst depends only on (des1, ses2) (Lemma 4.1 applied to
// both rounds).
type viaCell struct {
	box  rect.Rect
	des1 int32 // DES class under pi_1
	ses2 int32 // SES class under pi_2
}

// pairVias is a slot's payload: the indices (into Table.cells) of the cells
// feasible for one (SES, DES) class pair. Immutable once published.
type pairVias struct {
	cells []int32
}

// Table is the compressed routing table for one frozen fault set. It is
// immutable after New apart from the lazily filled slots, which are
// published through atomic pointers — Lookup is safe for unlimited
// concurrent use.
type Table struct {
	m      *mesh.Mesh
	orders routing.MultiOrder
	k      int
	d      int

	sesSets []partition.Set // SES partition of pi_1 (row classes)
	desSets []partition.Set // DES partition of pi_k (column classes)
	sesCls  *partition.Classifier
	desCls  *partition.Classifier

	// rk is the k-round class reachability matrix: rk(i,j) == 1 iff every
	// node of SES i can k-round-reach every node of DES j.
	rk *bitmat.Matrix

	// Two-round machinery (nil/empty when k == 1).
	r1     *bitmat.Matrix  // |Sigma_1| x |Delta_1| one-round matrix of pi_1
	r2     *bitmat.Matrix  // |Sigma_2| x |Delta_2| one-round matrix of pi_2
	d1Sets []partition.Set // Delta_1 sets indexing r1's columns and cells' des1
	s2Sets []partition.Set // Sigma_2 sets indexing r2's rows and cells' ses2
	cells  []viaCell
	// slots[i*len(desSets)+j] caches the feasible-cell list of class pair
	// (i,j). Filled on first use; concurrent fillers compute identical
	// lists, so last-write-wins publication is benign.
	slots []atomic.Pointer[pairVias]
	// hits counts pair-lookups per slot; NewFrom ranks its eager prefill by
	// the previous epoch's counters so the hot working set is warm first.
	hits []atomic.Uint32

	filled    atomic.Int64 // slots published so far (stats only)
	warmSlots int64        // slots carried over or prefilled at build time
	warmHits  atomic.Int64 // pair-lookups that found their slot already filled
	coldFills atomic.Int64 // pair-lookups that had to fill their slot
}

// New builds the class table for fault set f and the k-round ordering,
// using up to workers goroutines for the matrix fills (<= 0 means NumCPU).
// The fault set is captured by reference and must not be mutated afterwards
// — the same contract as routing.NewOracle.
func New(f *mesh.FaultSet, orders routing.MultiOrder, workers int) (*Table, error) {
	m := f.Mesh()
	if !Supported(m, orders) {
		return nil, ErrUnsupported
	}
	if err := orders.Validate(m.Dims()); err != nil {
		return nil, err
	}
	workers = par.Clamp(workers)
	o := routing.NewOracle(f)
	k := orders.Rounds()
	t := &Table{m: m, orders: orders, k: k, d: m.Dims()}

	pi1 := orders[0]
	sigma1, err := partition.SES(f, pi1)
	if err != nil {
		return nil, err
	}
	delta1, err := partition.DES(f, pi1)
	if err != nil {
		return nil, err
	}
	t.sesSets = sigma1.Sets
	t.r1 = oneRound(o, pi1, sigma1.Sets, delta1.Sets, workers)

	if k == 1 {
		t.desSets = delta1.Sets
		t.rk = t.r1
	} else {
		pi2 := orders[1]
		sigma2, delta2 := sigma1, delta1
		if !pi2.Equal(pi1) {
			if sigma2, err = partition.SES(f, pi2); err != nil {
				return nil, err
			}
			if delta2, err = partition.DES(f, pi2); err != nil {
				return nil, err
			}
			t.r2 = oneRound(o, pi2, sigma2.Sets, delta2.Sets, workers)
		} else {
			t.r2 = t.r1
		}
		t.desSets = delta2.Sets
		t.d1Sets = delta1.Sets
		t.s2Sets = sigma2.Sets

		// Enumerate the via cells and the intersection matrix I in one
		// pass; cells are ordered by (des1, ses2) so every build is
		// deterministic regardless of worker count.
		im := bitmat.New(len(delta1.Sets), len(sigma2.Sets))
		for a, ds := range delta1.Sets {
			for b, ss := range sigma2.Sets {
				if !ds.Rect.Intersects(ss.Rect) {
					continue
				}
				im.Set(a, b)
				t.cells = append(t.cells, viaCell{
					box:  ds.Rect.Intersect(ss.Rect),
					des1: int32(a),
					ses2: int32(b),
				})
			}
		}
		t.rk = bitmat.MulChainParallel(workers, t.r1, im, t.r2)
		t.slots = make([]atomic.Pointer[pairVias], len(t.sesSets)*len(t.desSets))
		t.hits = make([]atomic.Uint32, len(t.slots))
	}

	if t.sesCls, err = partition.NewClassifier(m, t.sesSets, pi1); err != nil {
		return nil, err
	}
	// DESs are found as SESs of the reversed ordering, so their rects are
	// ascending-canonical in the reversed working order.
	if t.desCls, err = partition.NewClassifier(m, t.desSets, orders[k-1].Reverse()); err != nil {
		return nil, err
	}
	return t, nil
}

// oneRound fills the 1-round class reachability matrix R(i,j) =
// "representative of SES i pi-reaches representative of DES j" (Lemma 4.1
// lifts this to every member pair). Rows fill in parallel; the oracle is
// read-only, so the result is identical for any worker count.
func oneRound(o *routing.Oracle, pi routing.Order, sigma, delta []partition.Set, workers int) *bitmat.Matrix {
	r := bitmat.New(len(sigma), len(delta))
	par.Do(workers, len(sigma), func(i int) {
		for j := range delta {
			if o.ReachOne(pi, sigma[i].Rep, delta[j].Rep) {
				r.Set(i, j)
			}
		}
	})
	return r
}

// Mesh returns the topology the table routes on.
func (t *Table) Mesh() *mesh.Mesh { return t.m }

// Orders returns the k-round ordering the table was built for.
func (t *Table) Orders() routing.MultiOrder { return t.orders }

// Code classifies a Lookup outcome.
type Code uint8

const (
	// CodeFound: a fault-free k-round route exists; Result carries it.
	CodeFound Code = iota
	// CodeNoRoute: both endpoints are good but no fault-free route exists.
	CodeNoRoute
	// CodeSrcFault: src is faulty (belongs to no SES).
	CodeSrcFault
	// CodeDstFault: dst is faulty (belongs to no DES).
	CodeDstFault
)

// Result is one allocation-free route answer. Via (when NVias == 1) aliases
// the Scratch's buffer: it is valid until the Scratch's next Lookup and
// must be cloned to be retained.
type Result struct {
	Found bool
	Code  Code
	NVias int
	Via   mesh.Coord
	Hops  int
	Turns int
}

// Clone returns a copy of r whose Via no longer aliases any Scratch buffer,
// so it stays valid after the Scratch's next Lookup (or its return to a
// pool). Callers that retain a Result past the lifetime of the Scratch they
// passed to Lookup must Clone it first.
func (r Result) Clone() Result {
	if r.Via != nil {
		r.Via = r.Via.Clone()
	}
	return r
}

// Scratch holds the per-goroutine buffers of the query path, so a warm
// Lookup allocates nothing. The zero value is ready; a Scratch must not be
// shared between concurrent Lookups.
type Scratch struct {
	via  []int
	cand []int
	cur  []int
}

func (q *Scratch) grow(d int) {
	if cap(q.via) < d {
		q.via = make([]int, d)
		q.cand = make([]int, d)
		q.cur = make([]int, d)
	}
	q.via = q.via[:d]
	q.cand = q.cand[:d]
	q.cur = q.cur[:d]
}

// ClassOf returns the SES and DES class indices of c (-1 where c is
// faulty). Exposed for tests and stats; Lookup inlines the same walk.
func (t *Table) ClassOf(c mesh.Coord) (ses, des int) {
	return t.sesCls.Classify(c), t.desCls.Classify(c)
}

// Classes returns the class-pair dimensions (|SES partition|, |DES
// partition|).
func (t *Table) Classes() (ses, des int) { return len(t.sesSets), len(t.desSets) }

// Lookup answers a route query for good endpoints src and dst, both of
// which must lie inside the mesh (the caller checks containment — indexes
// here would panic like mesh.Index does). The route policy is byte-
// identical to routing.ChooseRoute with a nil rng: minimal total hops,
// ties broken toward the lowest linear node index.
//
// Result.Via aliases q's buffers: it is valid only until the next call
// that reuses the same Scratch. Callers that need the via longer must
// Clone it.
func (t *Table) Lookup(src, dst mesh.Coord, q *Scratch) Result {
	i := t.sesCls.Classify(src)
	if i < 0 {
		return Result{Code: CodeSrcFault}
	}
	j := t.desCls.Classify(dst)
	if j < 0 {
		return Result{Code: CodeDstFault}
	}
	if !t.rk.Get(i, j) {
		return Result{Code: CodeNoRoute}
	}
	q.grow(t.d)
	if t.k == 1 {
		hops, turns := t.walk(src, dst, nil, q)
		return Result{Found: true, Code: CodeFound, Hops: hops, Turns: turns}
	}
	t.bestVia(i, j, src, dst, q)
	hops, turns := t.walk(src, dst, q.via, q)
	return Result{Found: true, Code: CodeFound, NVias: 1, Via: mesh.Coord(q.via), Hops: hops, Turns: turns}
}

// pairCells returns the feasible-cell list of class pair (i,j), computing
// and publishing it on first use. Concurrent first uses race benignly: the
// computation is deterministic, so every contender publishes an identical
// list. It also maintains the per-slot hit counter (NewFrom's prefill
// ranking) and the warm/cold counters behind the post-swap warm-hit ratio.
func (t *Table) pairCells(i, j int) []int32 {
	s := i*len(t.desSets) + j
	t.hits[s].Add(1)
	slot := &t.slots[s]
	if p := slot.Load(); p != nil {
		t.warmHits.Add(1)
		return p.cells
	}
	list := t.scanCells(i, j)
	slot.Store(&pairVias{cells: list})
	t.filled.Add(1)
	t.coldFills.Add(1)
	return list
}

// scanCells computes the feasible-cell list of class pair (i,j) by scanning
// every via cell. Deterministic: ascending in cell index.
func (t *Table) scanCells(i, j int) []int32 {
	list := make([]int32, 0, 8)
	for ci := range t.cells {
		c := &t.cells[ci]
		if t.r1.Get(i, int(c.des1)) && t.r2.Get(int(c.ses2), j) {
			list = append(list, int32(ci))
		}
	}
	return list
}

// bestVia writes into q.via the feasible intermediate minimizing
// L1(src,u) + L1(u,dst), breaking ties toward the lowest linear index —
// routing.ChooseRoute's exact policy. The per-cell minimum is separable by
// dimension: within one box the cost of dimension dim is minimized by
// clamping the [src,dst] span into the box's interval, and the lowest-index
// minimizer takes the smallest admissible value in every dimension.
func (t *Table) bestVia(i, j int, src, dst mesh.Coord, q *Scratch) {
	bestCost := -1
	var bestIdx int64
	for _, ci := range t.pairCells(i, j) {
		c := &t.cells[ci]
		cost := 0
		var idx int64
		for dim := 0; dim < t.d; dim++ {
			lo, hi := c.box[dim].Lo, c.box[dim].Hi
			l, h := src[dim], dst[dim]
			if l > h {
				l, h = h, l
			}
			var v int
			switch {
			case hi < l:
				v = hi
				cost += (l - hi) + (h - hi)
			case lo > h:
				v = lo
				cost += (lo - l) + (lo - h)
			default:
				v = max(lo, l)
				cost += h - l
			}
			q.cand[dim] = v
			idx += int64(v) * t.m.Stride(dim)
		}
		if bestCost < 0 || cost < bestCost || (cost == bestCost && idx < bestIdx) {
			bestCost, bestIdx = cost, idx
			q.via, q.cand = q.cand, q.via
		}
	}
	if bestCost < 0 {
		// rk said reachable, so the cell list cannot be empty.
		panic("classtable: reachable class pair with no via cells")
	}
}

// walk accumulates the hop count and turn count of the dimension-ordered
// route src -> (via ->) dst without materializing the path. A turn is a
// change of travel dimension between consecutive hops, the same quantity
// routing.CountTurns reads off a materialized path (direction reversals
// within one dimension do not count, matching stepDim there).
func (t *Table) walk(src, dst, via mesh.Coord, q *Scratch) (hops, turns int) {
	copy(q.cur, src)
	runs, lastDim := 0, -1
	segment := func(pi routing.Order, target mesh.Coord) {
		for _, dim := range pi {
			d := target[dim] - q.cur[dim]
			if d == 0 {
				continue
			}
			if d < 0 {
				d = -d
			}
			hops += d
			if dim != lastDim {
				runs++
				lastDim = dim
			}
			q.cur[dim] = target[dim]
		}
	}
	if via == nil {
		segment(t.orders[0], dst)
	} else {
		segment(t.orders[0], via)
		segment(t.orders[1], dst)
	}
	if runs > 0 {
		turns = runs - 1
	}
	return hops, turns
}

// RouteOf materializes the full route the way the per-pair path did:
// byte-identical Vias and Path to routing.ChooseRoute. It allocates (the
// path is O(hops) long); the binary wire protocol sends Lookup results
// instead and lets clients materialize.
func (t *Table) RouteOf(src, dst mesh.Coord, q *Scratch) (*routing.Route, Code) {
	res := t.Lookup(src, dst, q)
	if !res.Found {
		return nil, res.Code
	}
	if t.k == 1 {
		return &routing.Route{Path: routing.Path(t.m, t.orders[0], src, dst)}, CodeFound
	}
	via := res.Via.Clone()
	return &routing.Route{
		Vias: []mesh.Coord{via},
		Path: routing.PathK(t.m, t.orders, src, dst, []mesh.Coord{via}),
	}, CodeFound
}

// Stats describes the table's size — the empirical side of the
// ((2d-1)f+1)^2 compression bound.
type Stats struct {
	SESs        int   // |Sigma_1|: row classes
	DESs        int   // |Delta_k|: column classes
	Pairs       int   // SESs * DESs: slots in the compressed table
	Cells       int   // nonempty DES_1 x SES_2 via cells (k == 2)
	FilledSlots int   // class pairs whose via list has been demanded
	WarmSlots   int64 // slots filled at build time by NewFrom carry-over
	WarmHits    int64 // pair-lookups served from an already-filled slot
	ColdFills   int64 // pair-lookups that paid a first-use slot fill
	Bytes       int64 // approximate resident size of the table
}

// Stats returns the table's current size. FilledSlots and Bytes grow as
// lazy slots fill; everything else is fixed at build time.
func (t *Table) Stats() Stats {
	s := Stats{
		SESs:        len(t.sesSets),
		DESs:        len(t.desSets),
		Pairs:       len(t.sesSets) * len(t.desSets),
		Cells:       len(t.cells),
		FilledSlots: int(t.filled.Load()),
		WarmSlots:   t.warmSlots,
		WarmHits:    t.warmHits.Load(),
		ColdFills:   t.coldFills.Load(),
	}
	b := int64(t.sesCls.MemBytes() + t.desCls.MemBytes())
	b += int64((len(t.sesSets) + len(t.desSets)) * (t.d*16 + t.d*8 + 32)) // Set: rect intervals + rep coord + headers
	b += matBytes(t.rk)
	if t.k == 2 {
		if t.r1 != t.rk {
			b += matBytes(t.r1)
		}
		if t.r2 != t.r1 {
			b += matBytes(t.r2)
		}
		b += int64(len(t.cells)) * int64(t.d*16+24)
		b += int64(len(t.slots)) * 8
		b += int64(len(t.hits)) * 4
		for i := range t.slots {
			if p := t.slots[i].Load(); p != nil {
				b += int64(len(p.cells))*4 + 24
			}
		}
	}
	s.Bytes = b
	return s
}

func matBytes(m *bitmat.Matrix) int64 {
	if m == nil {
		return 0
	}
	return int64((m.Cols()+63)/64) * 8 * int64(m.Rows())
}
