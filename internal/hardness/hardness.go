// Package hardness implements the NP-hardness reduction of Section 9 of Ho
// & Stockmeyer (IPDPS 2002): from vertex cover on a graph G to the
// (3,2)-lamb problem on M_3(n).
//
// The construction associates a "column" (2i, *, 2i) of the mesh with every
// vertex u_i (including an added isolated vertex u_0). Y-levels of the mesh
// are planes of two kinds: a *column plane* keeps only the column nodes
// alive inside the internal region [0,2|V|-1] x [0,2|V|-1]; a *non-edge
// plane* for each non-adjacent pair (u_i, u_j) additionally keeps a ring of
// path nodes connecting the two columns' outlets and the external region.
// The reachability properties (Section 9, properties 1-3) then make lamb
// sets correspond to vertex covers: columns of non-covered vertices must
// pairwise 2-reach, which is possible exactly when no edge joins them.
//
// The package exposes the construction plus both directions of the
// correspondence, so tests can machine-check the reduction that underlies
// Theorem 9.1 / Theorem 9.4.
package hardness

import (
	"fmt"

	"lambmesh/internal/mesh"
)

// PlaneKind distinguishes the two Y-plane flavors.
type PlaneKind int

const (
	// ColumnPlane keeps only the diagonal column nodes alive internally.
	ColumnPlane PlaneKind = iota
	// NonEdgePlane additionally carries outlets and path nodes for one
	// non-adjacent vertex pair.
	NonEdgePlane
)

// Plane describes one Y-level of the construction.
type Plane struct {
	Kind PlaneKind
	// I, J are the vertex indices of the non-edge this plane realizes
	// (valid for NonEdgePlane).
	I, J int
}

// Construction is the instantiated reduction for a graph.
type Construction struct {
	// NumVertices is |V| including the isolated helper vertex u_0 at
	// index 0; the caller's vertices are shifted up by one.
	NumVertices int
	Mesh        *mesh.Mesh
	Faults      *mesh.FaultSet
	Planes      []Plane
	// adj is the symmetric adjacency over the shifted vertex set.
	adj [][]bool
	// pathNodes are the good internal non-column nodes (outlet ring / exit
	// paths), which the vertex-cover-to-lamb direction always sacrifices.
	pathNodes []mesh.Coord
}

// Build instantiates the Section 9 construction for the given undirected
// graph (adjacency lists over vertices 0..n-1; i<j pairs suffice). An
// isolated vertex is prepended as u_0, exactly as in the proof. extraPlanes
// pads the mesh with additional column planes; the proof takes the padding
// huge to drive the approximation argument, while tests keep it minimal.
func Build(adjList [][]int, extraPlanes int) (*Construction, error) {
	nv := len(adjList) + 1 // +1 for u_0
	if nv < 2 {
		return nil, fmt.Errorf("hardness: need at least one graph vertex")
	}
	adj := make([][]bool, nv)
	for i := range adj {
		adj[i] = make([]bool, nv)
	}
	for u, ns := range adjList {
		for _, v := range ns {
			if v < 0 || v >= len(adjList) || v == u {
				return nil, fmt.Errorf("hardness: bad edge (%d,%d)", u, v)
			}
			adj[u+1][v+1] = true
			adj[v+1][u+1] = true
		}
	}

	// Planes: a column plane between (and around) consecutive non-edge
	// planes, then pad so n >= 2|V|.
	var planes []Plane
	planes = append(planes, Plane{Kind: ColumnPlane})
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			if !adj[i][j] {
				planes = append(planes,
					Plane{Kind: NonEdgePlane, I: i, J: j},
					Plane{Kind: ColumnPlane})
			}
		}
	}
	// External nodes live at x or z >= 2|V|, so the width must strictly
	// exceed the internal region.
	for len(planes) < 2*nv+1+extraPlanes {
		planes = append(planes, Plane{Kind: ColumnPlane})
	}

	n := len(planes)
	m, err := mesh.New(n, n, n)
	if err != nil {
		return nil, err
	}
	c := &Construction{
		NumVertices: nv,
		Mesh:        m,
		Planes:      planes,
		adj:         adj,
	}
	c.Faults = mesh.NewFaultSet(m)
	internal := 2 * nv
	for y, pl := range planes {
		good := func(x, z int) bool {
			if x == z && x%2 == 0 && x/2 < nv {
				return true // column node
			}
			if pl.Kind != NonEdgePlane {
				return false
			}
			lo, hi := 2*pl.I, 2*pl.J
			// Path nodes: the two L-shaped crossings plus exit rows and
			// columns out to the external region (see Figure 28).
			if (z == lo || z == hi) && x >= lo && x < internal {
				return true
			}
			if (x == lo || x == hi) && z >= lo && z < internal {
				return true
			}
			return false
		}
		for x := 0; x < internal; x++ {
			for z := 0; z < internal; z++ {
				if !good(x, z) {
					c.Faults.AddNode(mesh.C(x, y, z))
				} else if !(x == z && x%2 == 0 && x/2 < nv) {
					c.pathNodes = append(c.pathNodes, mesh.C(x, y, z))
				}
			}
		}
	}
	return c, nil
}

// HasEdge reports adjacency between (shifted) vertices i and j.
func (c *Construction) HasEdge(i, j int) bool { return c.adj[i][j] }

// ColumnNodes returns the nodes of column i: (2i, y, 2i) for every level y.
func (c *Construction) ColumnNodes(i int) []mesh.Coord {
	out := make([]mesh.Coord, 0, c.Mesh.Width(1))
	for y := 0; y < c.Mesh.Width(1); y++ {
		out = append(out, mesh.C(2*i, y, 2*i))
	}
	return out
}

// IsOutlet reports whether node v is an outlet: a column node lying in a
// non-edge plane for its column.
func (c *Construction) IsOutlet(v mesh.Coord) bool {
	i, ok := c.columnOf(v)
	if !ok {
		return false
	}
	pl := c.Planes[v[1]]
	return pl.Kind == NonEdgePlane && (pl.I == i || pl.J == i)
}

// columnOf returns the column index of a column node.
func (c *Construction) columnOf(v mesh.Coord) (int, bool) {
	if v[0] == v[2] && v[0]%2 == 0 && v[0]/2 < c.NumVertices {
		return v[0] / 2, true
	}
	return 0, false
}

// IsExternal reports whether v lies outside the internal region.
func (c *Construction) IsExternal(v mesh.Coord) bool {
	return v[0] >= 2*c.NumVertices || v[2] >= 2*c.NumVertices
}

// PathNodes returns the good internal nodes that are neither column nodes
// nor external (outlets excluded: outlets are column nodes).
func (c *Construction) PathNodes() []mesh.Coord { return c.pathNodes }

// LambSetFromCover realizes the proof's Lambda*: all nodes of column i for
// every covered vertex, plus all path nodes. If cover covers the graph,
// the result is a (2, XYZ)-lamb set.
func (c *Construction) LambSetFromCover(cover []bool) []mesh.Coord {
	var lambs []mesh.Coord
	for i, inC := range cover {
		if inC {
			lambs = append(lambs, c.ColumnNodes(i)...)
		}
	}
	lambs = append(lambs, c.pathNodes...)
	return lambs
}

// CoverFromLambSet extracts the vertex set C with u_i in C iff every
// non-outlet node of column i is a lamb — the proof's decoding direction.
// If lambs is a lamb set, the result is a vertex cover.
func (c *Construction) CoverFromLambSet(lambs []mesh.Coord) []bool {
	lambIdx := make(map[int64]struct{}, len(lambs))
	for _, v := range lambs {
		lambIdx[c.Mesh.Index(v)] = struct{}{}
	}
	cover := make([]bool, c.NumVertices)
	for i := 0; i < c.NumVertices; i++ {
		all := true
		for _, v := range c.ColumnNodes(i) {
			if c.IsOutlet(v) {
				continue
			}
			if _, ok := lambIdx[c.Mesh.Index(v)]; !ok {
				all = false
				break
			}
		}
		cover[i] = all
	}
	return cover
}

// IsVertexCover checks the decoded set against the (shifted) graph.
func (c *Construction) IsVertexCover(cover []bool) bool {
	for i := 0; i < c.NumVertices; i++ {
		for j := i + 1; j < c.NumVertices; j++ {
			if c.adj[i][j] && !cover[i] && !cover[j] {
				return false
			}
		}
	}
	return true
}
