package server

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"lambmesh/internal/mesh"
)

// metricValue extracts the first sample of the named metric from a
// Prometheus text page, -1 if absent.
func metricValue(t *testing.T, page, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(page)
	if m == nil {
		return -1
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// The epoch swap carries the class table's working set forward: slots the
// previous epoch served stay warm across the swap, the recompute runs
// incrementally, and /metrics reports the phase split and warm-hit ratio.
func TestEpochSwapWarmStart(t *testing.T) {
	s, ts := startHTTP(t, 8, 8)
	if s.RouteSource() != RouteSourceClassTable {
		t.Skip("class table unsupported in this configuration")
	}
	if err := s.ReportFaults([]mesh.Coord{mesh.C(3, 3)}, nil); err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s, 1)
	// Exercise the epoch so its table has a working set to migrate.
	for si := 0; si < 8; si++ {
		for di := 0; di < 8; di++ {
			s.Route(mesh.C(si, 0), mesh.C(di, 7))
		}
	}
	if err := s.ReportFaults([]mesh.Coord{mesh.C(6, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s, 2)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	page := string(raw)

	if v := metricValue(t, page, "lambd_recomputes_incremental_total"); v != 1 {
		t.Errorf("incremental recomputes = %v, want 1 (gen 1 cold, gen 2 patched)", v)
	}
	if v := metricValue(t, page, "lambd_classtable_warm_slots"); v <= 0 {
		t.Errorf("warm slots = %v, want > 0 after an exercised swap", v)
	}
	for _, phase := range []string{"partition", "reach", "vcover", "table"} {
		if !strings.Contains(page, `lambd_recompute_phase_seconds{phase="`+phase+`"}`) {
			t.Errorf("missing phase %q in:\n%s", phase, page)
		}
	}
	if v := metricValue(t, page, "lambd_recompute_phase_seconds"); v < 0 {
		t.Error("phase gauges absent")
	}

	// Queries against the migrated working set are warm hits.
	for si := 0; si < 8; si++ {
		s.Route(mesh.C(si, 0), mesh.C(si, 7))
	}
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	page = string(raw2)
	if v := metricValue(t, page, "lambd_classtable_warm_hits_total"); v <= 0 {
		t.Errorf("warm hits = %v, want > 0", v)
	}
	if v := metricValue(t, page, "lambd_classtable_warm_hit_ratio"); v <= 0 || v > 1 {
		t.Errorf("warm hit ratio = %v", v)
	}
}

// Route answers must be identical across a warm swap: pin a sample of
// pre-swap answers and re-ask after the swap on the unchanged region.
func TestEpochSwapAnswersConsistent(t *testing.T) {
	s, _ := startHTTP(t, 8, 8)
	if err := s.ReportFaults([]mesh.Coord{mesh.C(3, 3)}, nil); err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s, 1)
	type pin struct {
		src, dst mesh.Coord
		hops     int
		found    bool
	}
	var pins []pin
	for si := 0; si < 8; si++ {
		src, dst := mesh.C(si, 0), mesh.C(7-si, 7)
		a := s.Route(src, dst)
		hops := 0
		if a.Found {
			hops = a.Route.Hops()
		}
		pins = append(pins, pin{src, dst, hops, a.Found})
	}
	// A far-corner fault leaves these routes' regions untouched.
	if err := s.ReportFaults(nil, []mesh.Link{{From: mesh.C(0, 0), Dim: 0, Dir: 1}}); err != nil {
		t.Fatal(err)
	}
	waitGeneration(t, s, 2)
	for _, p := range pins {
		a := s.Route(p.src, p.dst)
		if a.Found != p.found {
			t.Fatalf("route %v->%v found flipped across swap", p.src, p.dst)
		}
		if a.Found && a.Route.Hops() != p.hops {
			t.Fatalf("route %v->%v hops %d != %d across swap", p.src, p.dst, a.Route.Hops(), p.hops)
		}
	}
}

// The phase metrics render in WriteTo even before any recompute ran.
func TestMetricsPhaseRendering(t *testing.T) {
	var m Metrics
	m.PhasePartitionNanos.Store(int64(2 * time.Millisecond))
	m.RecomputesIncremental.Store(3)
	var b strings.Builder
	m.WriteTo(&b, 1, time.Second, 0)
	page := b.String()
	if !strings.Contains(page, `lambd_recompute_phase_seconds{phase="partition"} 0.002`) {
		t.Errorf("partition phase missing:\n%s", page)
	}
	if !strings.Contains(page, "lambd_recomputes_incremental_total 3") {
		t.Errorf("incremental counter missing:\n%s", page)
	}
}
