// Torus demonstrates the Section 7 extensions: the lamb method on a torus
// (wrap-around links), on a binary hypercube, the Topology interface that
// unifies the network families, per-node values, and predetermined lambs.
//
//	go run ./examples/torus
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strings"

	"lambmesh"
)

func main() {
	for _, demo := range []func(io.Writer) error{
		torusDemo, hypercubeDemo, topologyDemo, valuesDemo, predeterminedDemo,
	} {
		if err := demo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// torusDemo: the same fault pattern that forces a lamb on a mesh needs none
// on a torus, because wrap-around links give the cut-off corner a way out.
func torusDemo(w io.Writer) error {
	fmt.Fprintln(w, "== torus vs mesh ==")
	faultsFor := func(m *lambmesh.Mesh) *lambmesh.FaultSet {
		f := lambmesh.NewFaultSet(m)
		f.AddNodes(lambmesh.C(1, 0), lambmesh.C(0, 1), lambmesh.C(1, 1))
		return f
	}
	mm, err := lambmesh.NewMesh(6, 6)
	if err != nil {
		return err
	}
	meshRes, err := lambmesh.FindLambSet(faultsFor(mm), lambmesh.TwoRoundXY())
	if err != nil {
		return err
	}
	tm, err := lambmesh.NewTorus(6, 6)
	if err != nil {
		return err
	}
	torusRes, err := lambmesh.FindLambSetTorus(faultsFor(tm), lambmesh.TwoRoundXY())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "mesh  M_2(6):  corner (0,0) cut off -> lambs %v\n", meshRes.Lambs)
	fmt.Fprintf(w, "torus T_2(6):  wrap links rescue it -> lambs %v\n\n", torusRes.Lambs)
	return nil
}

// hypercubeDemo: a hypercube is the width-2 mesh M_d(2), so the fast
// rectangular algorithm applies directly.
func hypercubeDemo(w io.Writer) error {
	fmt.Fprintln(w, "== hypercube Q_5 ==")
	m, err := lambmesh.NewHypercube(5)
	if err != nil {
		return err
	}
	f := lambmesh.RandomNodeFaults(m, 3, rand.New(rand.NewSource(7)))
	orders := lambmesh.UniformAscending(5, 2)
	res, err := lambmesh.FindLambSet(f, orders)
	if err != nil {
		return err
	}
	if err := lambmesh.VerifyLambSet(f, orders, res.Lambs); err != nil {
		return err
	}
	fmt.Fprintf(w, "%v with faults %v -> lambs %v (verified)\n\n",
		m, f.SortedNodeFaults(), res.Lambs)
	return nil
}

// topologyDemo: every network family sits behind the same Topology
// interface — channel layout, distance, and a serialization format that
// round-trips fault configurations between tools.
func topologyDemo(w io.Writer) error {
	fmt.Fprintln(w, "== the Topology interface ==")
	mm, err := lambmesh.NewMesh(6, 6)
	if err != nil {
		return err
	}
	tm, err := lambmesh.NewTorus(6, 6)
	if err != nil {
		return err
	}
	hc, err := lambmesh.NewHypercube(5)
	if err != nil {
		return err
	}
	km, err := lambmesh.NewFullMesh(12)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(11))
	for _, topo := range []lambmesh.Topology{mm, tm, hc, km} {
		g := topo.Grid()
		a, b := g.CoordOf(0), g.CoordOf(g.Nodes()-1)
		f := lambmesh.NewFaultSetOn(topo)
		f.AddNode(g.CoordOf(rng.Int63n(g.Nodes())))
		var buf strings.Builder
		if err := lambmesh.WriteFaults(&buf, f); err != nil {
			return err
		}
		header := ""
		for _, line := range strings.Split(buf.String(), "\n") {
			if line != "" && !strings.HasPrefix(line, "#") {
				header = line
				break
			}
		}
		fmt.Fprintf(w, "%-9s %-8v  channels %4d  dist(%v,%v) = %d  serialized %q\n",
			topo.Tag(), topo, topo.NumChannels(), a, b, topo.Distance(a, b), header)
	}
	fmt.Fprintln(w)
	return nil
}

// valuesDemo: nodes carry utilities; the solver sacrifices cheap nodes.
func valuesDemo(w io.Writer) error {
	fmt.Fprintln(w, "== per-node values ==")
	m, err := lambmesh.NewMesh(12, 12)
	if err != nil {
		return err
	}
	f := lambmesh.NewFaultSet(m)
	f.AddNodes(lambmesh.C(9, 1), lambmesh.C(11, 6), lambmesh.C(10, 10))
	// Default choice would sacrifice (11,10) and (10,11); make them
	// precious (say, all 100 processors good) and the alternative sets
	// nearly worthless.
	values := map[int64]int64{
		m.Index(lambmesh.C(11, 10)): 100,
		m.Index(lambmesh.C(10, 11)): 100,
		m.Index(lambmesh.C(10, 1)):  0,
		m.Index(lambmesh.C(11, 1)):  0,
		m.Index(lambmesh.C(9, 0)):   0,
	}
	res, err := lambmesh.FindLambSet(f, lambmesh.TwoRoundXY(), lambmesh.WithValues(values))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "with values, the lamb set shifts to %v\n\n", res.Lambs)
	return nil
}

// predeterminedDemo: reconfiguration after new faults can keep the old
// lambs in place.
func predeterminedDemo(w io.Writer) error {
	fmt.Fprintln(w, "== predetermined lambs across reconfiguration ==")
	m, err := lambmesh.NewMesh(12, 12)
	if err != nil {
		return err
	}
	f := lambmesh.NewFaultSet(m)
	f.AddNodes(lambmesh.C(9, 1), lambmesh.C(11, 6), lambmesh.C(10, 10))
	first, err := lambmesh.FindLambSet(f, lambmesh.TwoRoundXY())
	if err != nil {
		return err
	}
	// A new fault arrives; recompute, keeping the previous lambs lambs.
	f2 := f.Clone()
	f2.AddNode(lambmesh.C(4, 4))
	second, err := lambmesh.FindLambSet(f2, lambmesh.TwoRoundXY(),
		lambmesh.WithPredetermined(first.Lambs))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "first lamb set:  %v\n", first.Lambs)
	fmt.Fprintf(w, "after new fault: %v (superset, as Section 7 suggests)\n", second.Lambs)
	return nil
}
