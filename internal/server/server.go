package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lambmesh/internal/classtable"
	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// Route sources a Config may name. Auto resolves to the class table when
// the configuration supports it and to the legacy cache otherwise.
const (
	RouteSourceAuto       = ""
	RouteSourceClassTable = "classtable"
	RouteSourceCache      = "cache"
)

// Config parameterizes a Server.
type Config struct {
	Mesh   *mesh.Mesh
	Orders routing.MultiOrder
	// KeepLambs forces monotone lamb sets across generations (Section 7
	// predetermined-lamb extension).
	KeepLambs bool
	// InitialFaults seeds generation 1 with already-known faults. May be
	// nil. The set is copied; the caller keeps ownership.
	InitialFaults *mesh.FaultSet
	// Workers bounds the worker pool the background recompute runs its
	// reachability kernels on; <= 0 means NumCPU. A faster recompute
	// directly shrinks the window during which queries are served from the
	// stale (pre-fault) epoch. The lamb set is identical for any value.
	Workers int
	// RouteSource selects the query data plane: RouteSourceClassTable
	// serves from the per-epoch compressed (SES, DES) class table,
	// RouteSourceCache from the legacy per-pair sharded cache, and
	// RouteSourceAuto (the default) picks the class table whenever the
	// configuration supports it. Answers are byte-identical either way —
	// the flag exists for A/B benchmarking and as an escape hatch.
	RouteSource string
}

// Server is the route control plane. The live configuration is an *Epoch
// behind an atomic pointer; see the package comment for the swap protocol.
//
// Ownership rules that make the data race-free:
//   - epoch: readers atomically load; only the worker stores.
//   - recon (the Reconfigurer and its evolving fault set): touched only by
//     the worker goroutine, never by handlers.
//   - pending fault reports: guarded by mu; handlers append, the worker
//     drains.
type Server struct {
	orders      routing.MultiOrder
	mesh        *mesh.Mesh
	metrics     Metrics
	routeSource string // resolved: RouteSourceClassTable or RouteSourceCache
	workers     int

	// scratch pools per-query classtable buffers so the table path stays
	// allocation-free on the compact (wire) route.
	scratch sync.Pool

	epoch atomic.Pointer[Epoch]

	mu       sync.Mutex
	recon    *core.Reconfigurer
	pendingN []mesh.Coord
	pendingL []mesh.Link
	lastErr  string // last recompute failure, surfaced in /v1/config

	kick chan struct{} // capacity 1: wake the worker
	quit chan struct{}
	done chan struct{}

	// testHookPrePublish, when set, runs in the worker after a recompute
	// finishes but before the new epoch is published. Tests use it to
	// observe that queries keep serving the old epoch mid-swap.
	testHookPrePublish func()
}

// New builds and starts a server. The background recompute worker runs
// until Close. If cfg.InitialFaults is non-empty, generation 1 (with its
// lamb set) is computed synchronously before New returns, so the first
// query already sees it.
func New(cfg Config) (*Server, error) {
	if cfg.Mesh == nil {
		return nil, fmt.Errorf("server: nil mesh")
	}
	recon, err := core.NewReconfigurer(cfg.Mesh, cfg.Orders, cfg.KeepLambs)
	if err != nil {
		return nil, err
	}
	recon.Workers = cfg.Workers
	source := cfg.RouteSource
	switch source {
	case RouteSourceAuto:
		if classtable.Supported(cfg.Mesh, cfg.Orders) {
			source = RouteSourceClassTable
		} else {
			source = RouteSourceCache
		}
	case RouteSourceClassTable:
		if !classtable.Supported(cfg.Mesh, cfg.Orders) {
			return nil, fmt.Errorf("server: route source %q: %w", source, classtable.ErrUnsupported)
		}
	case RouteSourceCache:
	default:
		return nil, fmt.Errorf("server: unknown route source %q", source)
	}
	s := &Server{
		orders:      cfg.Orders,
		mesh:        cfg.Mesh,
		routeSource: source,
		workers:     cfg.Workers,
		recon:       recon,
		kick:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	s.scratch.New = func() any { return new(classtable.Scratch) }
	// Generation 0: the pristine mesh, no faults, no lambs.
	s.epoch.Store(s.newEpoch(mesh.NewFaultSet(cfg.Mesh), nil, 0, time.Now(), nil))
	if cfg.InitialFaults != nil && cfg.InitialFaults.Count() > 0 {
		nodes := append([]mesh.Coord(nil), cfg.InitialFaults.NodeFaults()...)
		links := append([]mesh.Link(nil), cfg.InitialFaults.LinkFaults()...)
		if err := s.recompute(nodes, links); err != nil {
			return nil, fmt.Errorf("server: initial lamb computation: %w", err)
		}
	}
	go s.worker()
	return s, nil
}

// Close stops the background worker and waits for it to exit. Pending
// fault reports that have not started recomputing are dropped.
func (s *Server) Close() {
	close(s.quit)
	<-s.done
}

// newEpoch freezes a configuration under the server's resolved route
// source and worker budget, carrying the class table's warm slots over
// from prev (nil for the first epoch).
func (s *Server) newEpoch(f *mesh.FaultSet, lambs []mesh.Coord, gen uint64, now time.Time, prev *classtable.Table) *Epoch {
	return newEpoch(f, lambs, gen, now, s.orders, s.workers, s.routeSource == RouteSourceClassTable, prev)
}

// Epoch returns the live configuration. The result is immutable; callers
// may hold it as long as they like (superseded epochs simply become
// garbage once the last reader drops them).
func (s *Server) Epoch() *Epoch { return s.epoch.Load() }

// RouteSource returns the resolved data plane: RouteSourceClassTable or
// RouteSourceCache.
func (s *Server) RouteSource() string { return s.routeSource }

// Metrics returns the server's counter set.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Mesh returns the (immutable) topology the server routes on.
func (s *Server) Mesh() *mesh.Mesh { return s.mesh }

// Orders returns the k-round dimension ordering in force.
func (s *Server) Orders() routing.MultiOrder { return s.orders }

// LastError returns the most recent recompute failure ("" if none).
func (s *Server) LastError() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Answer is one route query result, stamped with the generation that
// produced it. Found=false with a Reason is a normal answer — the query
// itself never fails once it parses.
type Answer struct {
	Found      bool
	Route      *routing.Route
	Reason     string
	Generation uint64
	Cached     bool
}

// Route answers a query against the live epoch, consulting and filling
// the epoch's route cache. It takes no locks beyond the cache shard's and
// never blocks on reconfiguration.
func (s *Server) Route(src, dst mesh.Coord) Answer {
	e := s.Epoch()
	s.metrics.Queries.Add(1)
	ans := Answer{Generation: e.Generation}
	if !e.Faults.Mesh().Contains(src) || !e.Faults.Mesh().Contains(dst) {
		// Out-of-mesh coordinates cannot be cache keys (Index panics).
		if msg := e.endpointErr("src", src); msg != "" {
			ans.Reason = msg
		} else {
			ans.Reason = e.endpointErr("dst", dst)
		}
		s.metrics.RoutesRejected.Add(1)
		return ans
	}
	if e.Table != nil {
		q := s.scratch.Get().(*classtable.Scratch)
		r, reason := e.tableRoute(s.orders, src, dst, q)
		s.scratch.Put(q)
		s.observe(&cacheEntry{route: r, reason: reason}, &ans)
		return ans
	}
	k := pairKey{e.Faults.Mesh().Index(src), e.Faults.Mesh().Index(dst)}
	if ce, ok := e.cache.get(k); ok {
		s.metrics.CacheHits.Add(1)
		ans.Cached = true
		s.observe(ce, &ans)
		return ans
	}
	r, reason := e.route(s.orders, src, dst)
	ce := &cacheEntry{route: r, reason: reason}
	e.cache.put(k, ce)
	s.observe(ce, &ans)
	return ans
}

func (s *Server) observe(ce *cacheEntry, ans *Answer) {
	if ce.route != nil {
		ans.Found = true
		ans.Route = ce.route
		if !ans.Cached {
			s.metrics.ObserveRoute(ce.route.Hops())
		}
		return
	}
	ans.Reason = ce.reason
	if !ans.Cached {
		s.metrics.RoutesRejected.Add(1)
	}
}

// ReportFaults validates and enqueues newly detected faults, waking the
// recompute worker, and returns immediately — it never waits for the new
// epoch. Reports arriving while a recompute runs coalesce into one batch.
// Already-known faults are accepted and deduplicated by the fault set.
func (s *Server) ReportFaults(nodes []mesh.Coord, links []mesh.Link) error {
	for _, c := range nodes {
		if !s.mesh.Contains(c) {
			return fmt.Errorf("server: fault %v outside mesh %v", c, s.mesh)
		}
	}
	for _, l := range links {
		if !s.mesh.Contains(l.From) {
			return fmt.Errorf("server: link tail %v outside mesh %v", l.From, s.mesh)
		}
		if l.Dir != 1 && l.Dir != -1 {
			return fmt.Errorf("server: link %v: direction must be +1 or -1", l)
		}
		if _, ok := s.mesh.Neighbor(l.From, l.Dim, l.Dir); !ok {
			return fmt.Errorf("server: link %v has no head in %v", l, s.mesh)
		}
	}
	s.mu.Lock()
	for _, c := range nodes {
		s.pendingN = append(s.pendingN, c.Clone())
	}
	for _, l := range links {
		s.pendingL = append(s.pendingL, mesh.Link{From: l.From.Clone(), Dim: l.Dim, Dir: l.Dir})
	}
	s.mu.Unlock()
	s.metrics.FaultReports.Add(1)
	s.metrics.FaultsAdded.Add(int64(len(nodes) + len(links)))
	select {
	case s.kick <- struct{}{}:
	default: // worker already has a wakeup queued
	}
	return nil
}

// worker is the single goroutine allowed to touch the Reconfigurer and to
// store epochs. One wakeup drains every report queued so far (and any that
// arrive during the recompute are picked up by the next loop iteration),
// so a burst of n reports costs far fewer than n recomputes.
func (s *Server) worker() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			return
		case <-s.kick:
		}
		for {
			s.mu.Lock()
			nodes, links := s.pendingN, s.pendingL
			s.pendingN, s.pendingL = nil, nil
			s.mu.Unlock()
			if len(nodes) == 0 && len(links) == 0 {
				break
			}
			if err := s.recompute(nodes, links); err != nil {
				s.mu.Lock()
				s.lastErr = err.Error()
				s.mu.Unlock()
			}
			select {
			case <-s.quit:
				return
			default:
			}
		}
	}
}

// recompute folds the faults into the Reconfigurer, rebuilds the lamb
// set, and publishes the next epoch. On error the previous epoch stays
// live and the faults remain folded into the Reconfigurer (they are real;
// a later successful recompute covers them).
func (s *Server) recompute(nodes []mesh.Coord, links []mesh.Link) error {
	start := time.Now()
	res, err := s.recon.AddFaults(nodes, links)
	s.metrics.RecomputeNanos.Add(int64(time.Since(start)))
	if err != nil {
		s.metrics.RecomputeErrs.Add(1)
		return err
	}
	if hook := s.testHookPrePublish; hook != nil {
		hook()
	}
	prev := s.Epoch().Table
	tableStart := time.Now()
	next := s.newEpoch(s.recon.Faults(), res.Lambs, uint64(s.recon.Generation()), time.Now(), prev)
	s.epoch.Store(next)
	// Publish the phase split of the swap we just finished: where the last
	// reconfiguration spent its time, and whether the solve was incremental.
	ph := s.recon.LastPhases()
	s.metrics.PhasePartitionNanos.Store(int64(ph.Partition))
	s.metrics.PhaseReachNanos.Store(int64(ph.Reach))
	s.metrics.PhaseVCoverNanos.Store(int64(ph.VCover))
	s.metrics.PhaseTableNanos.Store(int64(time.Since(tableStart)))
	if ph.Incremental {
		s.metrics.RecomputesIncremental.Add(1)
	}
	s.metrics.Recomputes.Add(1)
	s.mu.Lock()
	s.lastErr = ""
	s.mu.Unlock()
	return nil
}
