// Command wormsim runs open-loop injection-rate workloads through the
// flit-level wormhole simulator: it computes a lamb set for a faulty mesh,
// drives a synthetic traffic pattern at one or more injection rates, and
// reports accepted throughput and packet latency for the lamb-routed faulty
// mesh next to a fault-free baseline.
//
// Usage:
//
//	wormsim -mesh 16x16 -faults 10 -rate 0.02 -pattern uniform
//	wormsim -mesh 16x16 -faults 10 -sweep -rates 0.005,0.01,0.02,0.05,0.1
//	        -trials 4 -format csv
//	wormsim -mesh 16x16 -faults 8 -rate 0.02 -fault-schedule events.txt
//	wormsim -mesh 16x16 -faults 8 -rate 0.02 -mtbf 400
//	wormsim -mesh 16x16 -faults 10 -rate 0.02 -strategy ring
//	wormsim -topology torus -mesh 8x8 -vcs 4 -faults 6 -rate 0.02
//	wormsim -topology hypercube -mesh 2x2x2x2 -faults 2 -rate 0.02
//	wormsim -topology fullmesh -mesh 12 -strategy direct -vcs 1 -faults 4
//
// -strategy selects the routing data plane: lamb (the paper's scheme, the
// default), ring (the Boppana–Chalasani fault-ring baseline; reports
// sacrificed nodes instead of lambs), adaptive (negative-first turn
// model), or direct (full-mesh direct/one-hop-indirect routing). Each
// strategy runs against the same fault draw but its own seed stream, with
// the fault-free baseline routed by the same strategy.
//
// -topology selects the network: mesh (default), torus (lamb only; needs
// -vcs >= 2k for the dateline VC pairs), hypercube (-mesh widths all 2),
// or fullmesh (-mesh N; requires -strategy direct, runs on a single VC).
//
// With -fault-schedule or -mtbf the lamb case becomes a live run: the
// scheduled (or randomly drawn) faults strike mid-simulation, the lamb set
// is recomputed on the fly, killed worms are retransmitted, and the output
// gains recovery columns (reconfigurations, dropped worms, retransmits,
// lost packets, recovery latency). The baseline stays clean.
//
// Output is a pure function of the flags: at a fixed -seed the bytes are
// identical for any -workers value, so sweeps are safe to diff across
// machines and CI runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

// cliConfig is the parsed, validated flag set; run is a pure function of it.
type cliConfig struct {
	topology string
	widths   []int
	nFaults  int
	k        int
	vcs      int
	buffer   int
	seed     int64

	pattern wormhole.Pattern
	hotspot float64
	packet  int
	warmup  int
	measure int
	drain   int
	trials  int
	workers int

	sweep    bool
	rates    []float64
	baseline bool
	format   string
	strategy string

	schedule wormhole.FaultSchedule
	mtbf     float64
}

// live reports whether the run injects faults mid-simulation.
func (c *cliConfig) live() bool { return !c.schedule.Empty() || c.mtbf > 0 }

// defaultSweepRates spans light load to past saturation for small meshes.
var defaultSweepRates = []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}

func parseConfig(args []string) (*cliConfig, error) {
	fs := flag.NewFlagSet("wormsim", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		topoFlag    = fs.String("topology", "mesh", "network topology: mesh, torus, hypercube, fullmesh")
		meshFlag    = fs.String("mesh", "16x16", "mesh widths, e.g. 16x16 or 8x8x8 (hypercube: all 2; fullmesh: node count N)")
		nFaults     = fs.Int("faults", 10, "random node faults")
		k           = fs.Int("k", 2, "routing rounds")
		vcs         = fs.Int("vcs", 2, "virtual channels per link")
		buffer      = fs.Int("buffer", 2, "per-VC buffer depth (flits)")
		seed        = fs.Int64("seed", 1, "rng seed (fault draw and workloads)")
		patternFlag = fs.String("pattern", "uniform", "traffic pattern: uniform, transpose, bitcomp, hotspot")
		hotspot     = fs.Float64("hotspot", 0.2, "hotspot pattern: fraction of traffic aimed at the hotspot node")
		packet      = fs.Int("packet", 8, "packet length (flits)")
		warmup      = fs.Int("warmup", 300, "warm-up cycles (simulated, not sampled)")
		measure     = fs.Int("measure", 600, "measurement window (cycles)")
		drain       = fs.Int("drain", 0, "drain bound (cycles); 0 means 4x measure")
		trials      = fs.Int("trials", 3, "independent trials per rate point")
		workers     = fs.Int("workers", 0, "worker pool size; 0 means NumCPU (does not change output)")
		sweep       = fs.Bool("sweep", false, "sweep a list of rates instead of a single point")
		ratesFlag   = fs.String("rates", "", "comma-separated injection rates for -sweep (default a built-in ramp)")
		rate        = fs.Float64("rate", 0.02, "injection rate, packets/node/cycle (single-point mode)")
		baseline    = fs.Bool("baseline", true, "also run the fault-free mesh as a baseline")
		format      = fs.String("format", "table", "output format: table, csv, json")
		schedFlag   = fs.String("fault-schedule", "", "fault-schedule file: faults injected mid-run into the lamb case (baseline stays clean)")
		mtbf        = fs.Float64("mtbf", 0, "mean cycles between random mid-run node faults in the lamb case; 0 disables")
		strategy    = fs.String("strategy", "lamb", "routing strategy: lamb, ring (Boppana-Chalasani fault rings), adaptive (negative-first), direct (full mesh only)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := &cliConfig{
		nFaults: *nFaults, k: *k, vcs: *vcs, buffer: *buffer, seed: *seed,
		hotspot: *hotspot, packet: *packet, warmup: *warmup, measure: *measure,
		drain: *drain, trials: *trials, workers: *workers,
		sweep: *sweep, baseline: *baseline, format: *format,
	}
	var err error
	if cfg.widths, err = parseWidths(*meshFlag); err != nil {
		return nil, err
	}
	if cfg.pattern, err = wormhole.ParsePattern(*patternFlag); err != nil {
		return nil, err
	}
	switch *format {
	case "table", "csv", "json":
	default:
		return nil, fmt.Errorf("unknown format %q (want table, csv, or json)", *format)
	}
	cfg.strategy = *strategy
	if _, err := wormhole.StrategyIndex(cfg.strategy); err != nil {
		return nil, err
	}
	cfg.topology = *topoFlag
	known := false
	for _, n := range mesh.TopologyNames() {
		known = known || n == cfg.topology
	}
	if !known {
		return nil, fmt.Errorf("unknown topology %q (want one of %v)", cfg.topology, mesh.TopologyNames())
	}
	// The direct strategy and the full-mesh topology define each other.
	if cfg.topology == "fullmesh" && cfg.strategy != "direct" {
		return nil, fmt.Errorf("-topology fullmesh requires -strategy direct")
	}
	if cfg.strategy == "direct" && cfg.topology != "fullmesh" {
		return nil, fmt.Errorf("-strategy direct requires -topology fullmesh")
	}
	if *sweep {
		cfg.rates = defaultSweepRates
		if *ratesFlag != "" {
			if cfg.rates, err = parseRates(*ratesFlag); err != nil {
				return nil, err
			}
		}
	} else {
		cfg.rates = []float64{*rate}
	}
	for _, r := range cfg.rates {
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("injection rate %v outside (0, 1]", r)
		}
	}
	if cfg.k < 1 || cfg.vcs < 1 || cfg.packet < 1 || cfg.trials < 1 ||
		cfg.warmup < 0 || cfg.measure < 1 || cfg.nFaults < 0 {
		return nil, fmt.Errorf("k, vcs, packet, trials must be >= 1; warmup, faults >= 0; measure >= 1")
	}
	if *mtbf < 0 {
		return nil, fmt.Errorf("negative -mtbf %v", *mtbf)
	}
	cfg.mtbf = *mtbf
	if *schedFlag != "" {
		if cfg.schedule, err = wormhole.ReadScheduleFile(*schedFlag); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

func parseWidths(s string) ([]int, error) {
	var widths []int
	cur := 0
	seen := false
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			cur = cur*10 + int(r-'0')
			seen = true
		case r == 'x' && seen:
			widths = append(widths, cur)
			cur, seen = 0, false
		default:
			return nil, fmt.Errorf("bad mesh spec %q", s)
		}
	}
	if !seen {
		return nil, fmt.Errorf("bad mesh spec %q", s)
	}
	return append(widths, cur), nil
}

func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q in -rates", p)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// sweepRow is one (case, rate) result, flattened for csv/json emission.
type sweepRow struct {
	Case      string  `json:"case"` // "lamb" or "baseline"
	Rate      float64 `json:"rate"`
	Offered   float64 `json:"offeredFlitRate"`
	Accepted  float64 `json:"acceptedFlitRate"`
	MeanLat   float64 `json:"meanLatency"`
	P99Lat    float64 `json:"p99Latency"`
	MaxLat    int     `json:"maxLatency"`
	Delivered float64 `json:"deliveredFraction"`
	Saturated bool    `json:"saturated"`
	Deadlock  bool    `json:"deadlocked"`
	VCUtil    string  `json:"vcMeanUtil"` // space-joined per-VC means

	// Mid-run recovery aggregates; all zero unless the run is live.
	Reconfigs    int     `json:"reconfigurations"`
	DroppedWorms int     `json:"droppedWorms"`
	Retransmits  int     `json:"retransmits"`
	Lost         int     `json:"lostPackets"`
	MeanRecovery float64 `json:"meanRecoveryLatency"`
	Unrecovered  int     `json:"unrecovered"`
}

// report is the full JSON document; table/csv emit only the rows. Strategy
// and Sacrificed are set only by -strategy ring|adaptive|direct runs, and
// Topology only by non-mesh -topology runs (omitempty keeps the default
// lamb-on-mesh JSON byte-identical to earlier releases).
type report struct {
	Topology   string     `json:"topology,omitempty"`
	Mesh       string     `json:"mesh"`
	Faults     int        `json:"faults"`
	Lambs      int        `json:"lambs"`
	Survivors  int        `json:"survivors"`
	Rounds     int        `json:"rounds"`
	VCs        int        `json:"vcs"`
	Pattern    string     `json:"pattern"`
	Packet     int        `json:"packetFlits"`
	Trials     int        `json:"trials"`
	Seed       int64      `json:"seed"`
	Live       bool       `json:"live"` // mid-run fault injection active
	Strategy   string     `json:"strategy,omitempty"`
	Sacrificed int        `json:"sacrificed,omitempty"`
	Rows       []sweepRow `json:"rows"`
}

// buildTopology constructs the network from -topology and -mesh. The mesh
// case goes through mesh.New exactly as before the flag existed.
func buildTopology(cfg *cliConfig) (mesh.Topology, error) {
	switch cfg.topology {
	case "torus":
		return mesh.NewTorus(cfg.widths...)
	case "hypercube":
		for _, w := range cfg.widths {
			if w != 2 {
				return nil, fmt.Errorf("-topology hypercube needs every width to be 2 (e.g. -mesh 2x2x2x2), got %v", cfg.widths)
			}
		}
		return mesh.NewHypercube(len(cfg.widths))
	case "fullmesh":
		if len(cfg.widths) != 1 {
			return nil, fmt.Errorf("-topology fullmesh takes a node count (e.g. -mesh 12), got %v", cfg.widths)
		}
		return mesh.NewFullMesh(cfg.widths[0])
	default:
		return mesh.New(cfg.widths...)
	}
}

func run(cfg *cliConfig, w io.Writer) error {
	// Tori go through the strategy path even for lamb: the lamb strategy
	// dispatches to the generic (TorusLamb) reconfigurer and its MinVCs
	// check enforces the 2k dateline VC requirement.
	if cfg.strategy != "lamb" || cfg.topology == "torus" {
		return runStrategy(cfg, w)
	}
	topo, err := buildTopology(cfg)
	if err != nil {
		return err
	}
	m := topo.Grid()
	// The fault draw gets its own rng: sweep cells reseed from (seed, rate,
	// trial), so consuming here cannot shift workload randomness.
	faults := mesh.RandomNodeFaultsOn(topo, cfg.nFaults, rand.New(rand.NewSource(cfg.seed)))
	orders := routing.UniformAscending(m.Dims(), cfg.k)
	res, err := core.Lamb1(faults, orders)
	if err != nil {
		return err
	}

	spec := wormhole.SweepSpec{
		Rates:           cfg.rates,
		Trials:          cfg.trials,
		Pattern:         cfg.pattern,
		PacketFlits:     cfg.packet,
		HotspotFraction: cfg.hotspot,
		Warmup:          cfg.warmup,
		Measure:         cfg.measure,
		Drain:           cfg.drain,
		Net: wormhole.Config{
			VirtualChannels: cfg.vcs,
			BufferDepth:     cfg.buffer,
			StallCycles:     2000,
			MaxCycles:       5_000_000,
		},
		Seed:    cfg.seed,
		Workers: cfg.workers,
	}

	rep := report{
		Mesh:      fmt.Sprint(topo),
		Faults:    faults.Count(),
		Lambs:     res.NumLambs(),
		Survivors: int(res.Survivors(faults)),
		Rounds:    cfg.k,
		VCs:       cfg.vcs,
		Pattern:   cfg.pattern.String(),
		Packet:    cfg.packet,
		Trials:    cfg.trials,
		Seed:      cfg.seed,
		Live:      cfg.live(),
	}
	if cfg.topology != "mesh" {
		rep.Topology = cfg.topology
	}
	// Mid-run faults strike the lamb case only: the baseline stays the
	// clean fault-free reference the recovery numbers are read against.
	lambSpec := spec
	lambSpec.Schedule = cfg.schedule
	lambSpec.MTBF = cfg.mtbf
	lamb, err := wormhole.RunSweep(faults, orders, res.Lambs, lambSpec)
	if err != nil {
		return err
	}
	rep.Rows = appendRows(rep.Rows, "lamb", lamb)
	if cfg.baseline {
		free := mesh.NewFaultSet(m)
		base, err := wormhole.RunSweep(free, orders, nil, spec)
		if err != nil {
			return err
		}
		rep.Rows = appendRows(rep.Rows, "baseline", base)
	}
	return render(w, cfg.format, rep)
}

// runStrategy is the -strategy ring|adaptive path: the same sweep harness
// as run, routed through a RouteStrategy instead of the lamb data plane.
// Each strategy draws from its own TrialSeed stream block (StrategyStream),
// so cross-strategy comparisons at one seed are independent samples, and
// the fault draw is shared, so they face the identical fault set. The
// baseline runs the same strategy on the fault-free mesh — a strategy's
// fault-free behavior is its own reference, not lamb's.
func runStrategy(cfg *cliConfig, w io.Writer) error {
	topo, err := buildTopology(cfg)
	if err != nil {
		return err
	}
	m := topo.Grid()
	faults := mesh.RandomNodeFaultsOn(topo, cfg.nFaults, rand.New(rand.NewSource(cfg.seed)))
	orders := routing.UniformAscending(m.Dims(), cfg.k)
	stream, err := wormhole.StrategyIndex(cfg.strategy)
	if err != nil {
		return err
	}
	builder, err := wormhole.NewStrategyBuilder(cfg.strategy, orders)
	if err != nil {
		return err
	}
	strat, err := builder(faults)
	if err != nil {
		return err
	}
	if cfg.vcs < strat.MinVCs() {
		return fmt.Errorf("strategy %s needs at least %d VCs (got -vcs %d)",
			cfg.strategy, strat.MinVCs(), cfg.vcs)
	}

	spec := wormhole.SweepSpec{
		Rates:           cfg.rates,
		Trials:          cfg.trials,
		Pattern:         cfg.pattern,
		PacketFlits:     cfg.packet,
		HotspotFraction: cfg.hotspot,
		Warmup:          cfg.warmup,
		Measure:         cfg.measure,
		Drain:           cfg.drain,
		Net: wormhole.Config{
			VirtualChannels: cfg.vcs,
			BufferDepth:     cfg.buffer,
			StallCycles:     2000,
			MaxCycles:       5_000_000,
		},
		Seed:           cfg.seed,
		Workers:        cfg.workers,
		Strategy:       builder,
		StrategyStream: stream,
	}

	rep := report{
		Mesh:       fmt.Sprint(topo),
		Faults:     faults.Count(),
		Survivors:  len(wormhole.Survivors(faults, strat.Sacrificed())),
		Rounds:     cfg.k,
		VCs:        cfg.vcs,
		Pattern:    cfg.pattern.String(),
		Packet:     cfg.packet,
		Trials:     cfg.trials,
		Seed:       cfg.seed,
		Live:       cfg.live(),
		Strategy:   cfg.strategy,
		Sacrificed: len(strat.Sacrificed()),
	}
	if cfg.topology != "mesh" {
		rep.Topology = cfg.topology
	}
	faultySpec := spec
	faultySpec.Schedule = cfg.schedule
	faultySpec.MTBF = cfg.mtbf
	faulty, err := wormhole.RunSweep(faults, orders, nil, faultySpec)
	if err != nil {
		return err
	}
	rep.Rows = appendRows(rep.Rows, cfg.strategy, faulty)
	if cfg.baseline {
		free := mesh.NewFaultSetOn(topo)
		base, err := wormhole.RunSweep(free, orders, nil, spec)
		if err != nil {
			return err
		}
		rep.Rows = appendRows(rep.Rows, "baseline", base)
	}
	return render(w, cfg.format, rep)
}

func appendRows(rows []sweepRow, name string, points []wormhole.SweepPoint) []sweepRow {
	for _, p := range points {
		util := make([]string, len(p.VCMeanUtil))
		for v, u := range p.VCMeanUtil {
			util[v] = strconv.FormatFloat(u, 'f', 4, 64)
		}
		rows = append(rows, sweepRow{
			Case: name, Rate: p.Rate,
			Offered: p.OfferedFlitRate, Accepted: p.AcceptedFlitRate,
			MeanLat: p.MeanLatency, P99Lat: p.P99Latency, MaxLat: p.MaxLatency,
			Delivered: p.DeliveredFraction, Saturated: p.Saturated,
			Deadlock: p.Deadlocked, VCUtil: strings.Join(util, " "),
			Reconfigs: p.Reconfigurations, DroppedWorms: p.DroppedWorms,
			Retransmits: p.Retransmits, Lost: p.LostPackets,
			MeanRecovery: p.MeanRecoveryLatency, Unrecovered: p.Unrecovered,
		})
	}
	return rows
}

func render(w io.Writer, format string, rep report) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case "csv":
		header := "case,rate,offered,accepted,mean_latency,p99_latency,max_latency,delivered,saturated,deadlocked,vc_mean_util"
		if rep.Live {
			header += ",reconfigs,dropped_worms,retransmits,lost,mean_recovery,unrecovered"
		}
		fmt.Fprintln(w, header)
		for _, r := range rep.Rows {
			fmt.Fprintf(w, "%s,%g,%.6f,%.6f,%.3f,%.1f,%d,%.4f,%t,%t,%s",
				r.Case, r.Rate, r.Offered, r.Accepted, r.MeanLat, r.P99Lat,
				r.MaxLat, r.Delivered, r.Saturated, r.Deadlock,
				strings.ReplaceAll(r.VCUtil, " ", "|"))
			if rep.Live {
				fmt.Fprintf(w, ",%d,%d,%d,%d,%.1f,%d",
					r.Reconfigs, r.DroppedWorms, r.Retransmits, r.Lost,
					r.MeanRecovery, r.Unrecovered)
			}
			fmt.Fprintln(w)
		}
		return nil
	default: // table
		if rep.Strategy != "" {
			fmt.Fprintf(w, "mesh %s, strategy %s, %d faults, %d sacrificed, %d survivors, %d VCs, pattern %s, %d-flit packets, %d trials, seed %d\n",
				rep.Mesh, rep.Strategy, rep.Faults, rep.Sacrificed, rep.Survivors, rep.VCs,
				rep.Pattern, rep.Packet, rep.Trials, rep.Seed)
		} else {
			fmt.Fprintf(w, "mesh %s, %d faults, %d lambs, %d survivors, %d rounds on %d VCs, pattern %s, %d-flit packets, %d trials, seed %d\n",
				rep.Mesh, rep.Faults, rep.Lambs, rep.Survivors, rep.Rounds, rep.VCs,
				rep.Pattern, rep.Packet, rep.Trials, rep.Seed)
		}
		header := fmt.Sprintf("%-9s %8s %9s %9s %10s %8s %7s %9s %5s %5s",
			"case", "rate", "offered", "accepted", "mean_lat", "p99_lat", "max_lat", "delivered", "sat", "dead")
		if rep.Live {
			header += fmt.Sprintf(" %8s %7s %7s %5s %9s %6s",
				"reconfig", "dropped", "retrans", "lost", "recovery", "unrec")
		}
		fmt.Fprintln(w, header)
		for _, r := range rep.Rows {
			fmt.Fprintf(w, "%-9s %8g %9.5f %9.5f %10.2f %8.1f %7d %9.4f %5t %5t",
				r.Case, r.Rate, r.Offered, r.Accepted, r.MeanLat, r.P99Lat,
				r.MaxLat, r.Delivered, r.Saturated, r.Deadlock)
			if rep.Live {
				fmt.Fprintf(w, " %8d %7d %7d %5d %9.1f %6d",
					r.Reconfigs, r.DroppedWorms, r.Retransmits, r.Lost,
					r.MeanRecovery, r.Unrecovered)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
}

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormsim:", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wormsim:", err)
		os.Exit(1)
	}
}
