// Command lambsim regenerates the tables and figures of Ho & Stockmeyer
// (IPDPS 2002). Run it with no flags to execute every experiment at the
// default trial count, or select experiments with -exp.
//
// Usage:
//
//	lambsim [-exp id1,id2|all] [-trials n] [-seed s] [-list]
//
// The paper uses 1000 trials per data point (10000 for the Section 3
// rare-lamb check); -trials 1000 reproduces that scale. Heavier experiments
// automatically divide the trial count (shown in each table header).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lambmesh/internal/sim"
)

func main() {
	// Subcommands sit in front of the classic flag interface; bare
	// `lambsim [flags]` still runs the paper's experiments.
	if len(os.Args) > 1 && os.Args[1] == "campaign" {
		os.Exit(campaignMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		trials  = flag.Int("trials", 100, "baseline trials per data point (paper: 1000)")
		seed    = flag.Int64("seed", 1, "base RNG seed; trial t uses seed+t")
		workers = flag.Int("workers", 0, "trial parallelism (0 = NumCPU)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		format  = flag.String("format", "text", "output format: text | md | csv")
	)
	flag.Parse()
	render, err := rendererFor(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lambsim: %v\n", err)
		os.Exit(2)
	}

	if *list {
		listExperiments(os.Stdout)
		return
	}

	cfg := sim.Config{Trials: *trials, Seed: *seed, Workers: *workers}
	selected, err := selectExperiments(*expFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lambsim: %v\n", err)
		os.Exit(2)
	}

	runExperiments(os.Stdout, os.Stderr, render, selected, cfg, *format)
}

// runExperiments renders each experiment's table to w. Timing goes to logw
// (stderr in main), keeping w a pure function of the flags — the golden
// tests pin its bytes.
func runExperiments(w, logw io.Writer, render func(*sim.Table) string,
	selected []sim.Experiment, cfg sim.Config, format string) {
	for _, e := range selected {
		start := time.Now()
		tab := e.Run(cfg)
		fmt.Fprintln(w, render(tab))
		if format == "text" {
			fmt.Fprintf(logw, "(%s finished in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
}

// rendererFor maps a -format value to a table renderer.
func rendererFor(format string) (func(*sim.Table) string, error) {
	switch format {
	case "text":
		return func(t *sim.Table) string { return t.Render() }, nil
	case "md":
		return func(t *sim.Table) string { return t.Markdown() }, nil
	case "csv":
		return func(t *sim.Table) string { return t.CSV() }, nil
	default:
		return nil, fmt.Errorf("unknown -format %q", format)
	}
}

// listExperiments writes the -list output: one id and title per line.
func listExperiments(w io.Writer) {
	for _, e := range sim.Registry() {
		fmt.Fprintf(w, "%-14s %s\n", e.ID, e.Title)
	}
}

// selectExperiments resolves a -exp value ("all" or comma-separated ids)
// against the registry.
func selectExperiments(expFlag string) ([]sim.Experiment, error) {
	if expFlag == "all" {
		return sim.Registry(), nil
	}
	var selected []sim.Experiment
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(id)
		e, ok := sim.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		selected = append(selected, e)
	}
	return selected, nil
}
