// Package faultring is the Boppana–Chalasani fault-ring baseline as a full
// routing data plane: arbitrary node and link faults on a 2D mesh are
// rectangularized — good nodes are iteratively inactivated until every
// fault region is a rectangle and no two fault rings (the one-step good
// boundary around a region) overlap — and messages then follow e-cube (XY)
// base paths with deterministic detours along the rings.
//
// It supersedes internal/blockfault, the abstract inactivation-counting
// sketch used by the abl-blockfault experiment, in three ways that matter
// for a head-to-head bake-off against lamb routing:
//
//   - link faults are supported, by sacrificing the link's tail node so the
//     region machinery sees only node blocks (counted in PromotedLinks);
//   - the inactivated node set is materialized, not just counted, so the
//     wormhole engine can exclude sacrificed nodes from traffic endpoints;
//   - ring detours use fixed orientations (X-phase detours over the +y side
//     of a ring, Y-phase detours over the -x side, falling back to the
//     opposite side at a mesh edge) rather than nearest-side detours, and
//     paths are backtrack-trimmed so a worm turns at the detour's sidestep
//     column instead of overshooting into the blocked column and retracing.
//     Same-side detouring keeps the channel sets of opposite-direction flows
//     around a ring disjoint (their crossings use opposite directed channels
//     of the ring columns), and trimming removes the one coupling that
//     defeats this — a retraced approach leg joins the e-cube row channels
//     to the ring cycle. Together with the f-cube2-style message-class VC
//     split in internal/wormhole this removes the single-ring wait cycles
//     that nearest-side detouring admits; deadlock freedom of the full
//     discipline is checked empirically (channel-dependency acyclicity per
//     workload, plus the engine watchdog), not proved.
//
// A pair of active nodes is unreachable exactly when some rectangularized
// region spans the full mesh width across the travel axis (a full band cuts
// the mesh in two); Route reports that as ok=false rather than an error, so
// callers can account explicitly for pairs the scheme cannot serve.
package faultring

import (
	"fmt"

	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
)

// Message classes in the f-cube2 tradition, determined by the relative
// position of the destination. Column-first: a message with any x
// displacement is WE or EW; pure-column messages are NS or SN.
const (
	ClassWE = iota // dst strictly east of src (+x)
	ClassEW        // dst strictly west of src (-x)
	ClassNS        // same column, dst south of src (-y)
	ClassSN        // same column, dst north of src (+y)
)

// Class returns the message class of a (src, dst) pair.
func Class(src, dst mesh.Coord) int {
	switch {
	case dst[0] > src[0]:
		return ClassWE
	case dst[0] < src[0]:
		return ClassEW
	case dst[1] < src[1]:
		return ClassNS
	default:
		return ClassSN
	}
}

// Model is the rectangularized fault structure plus everything Route needs.
type Model struct {
	Mesh   *mesh.Mesh
	Faults *mesh.FaultSet
	// Regions are the rectangular fault regions, disjoint and with disjoint
	// fault rings (no two one-step expansions intersect), in deterministic
	// discovery order.
	Regions []rect.Rect
	// Inactivated lists the good nodes sacrificed to rectangularize the
	// regions (including promoted link tails), ascending by node index.
	// These nodes neither process nor route — the ring scheme's analogue of
	// the paper's lambs, except strictly worse: a lamb still routes.
	Inactivated []mesh.Coord
	// PromotedLinks counts faulty links absorbed by sacrificing their tail
	// node (links already dead via a blocked endpoint are not counted).
	PromotedLinks int

	blocked []bool // dense by node index: faulty or inactivated
}

// Build rectangularizes fault set f. The fixpoint is: bound each
// 4-connected component of blocked nodes by its rectangle, merge rectangles
// whose one-step expansions intersect (their rings would share nodes), fill
// the rectangles — inactivating any good nodes inside — and repeat until
// nothing changes. The blocked set grows monotonically, so this terminates.
func Build(f *mesh.FaultSet) (*Model, error) {
	m := f.Mesh()
	if m.Dims() != 2 {
		return nil, fmt.Errorf("faultring: the fault-ring baseline is defined for 2D meshes, not %v", m)
	}
	if m.Torus() {
		return nil, fmt.Errorf("faultring: meshes only")
	}
	mod := &Model{Mesh: m, Faults: f, blocked: make([]bool, m.Nodes())}
	for _, c := range f.NodeFaults() {
		mod.blocked[m.Index(c)] = true
	}
	// Absorb link faults: a faulty link whose endpoints are both still
	// usable has no representation in the block model, so its tail is
	// sacrificed. Insertion order makes the choice deterministic.
	for _, l := range f.LinkFaults() {
		if mod.blocked[m.Index(l.From)] || mod.blocked[m.Index(l.To(m))] {
			continue
		}
		mod.blocked[m.Index(l.From)] = true
		mod.PromotedLinks++
	}

	for {
		regions := componentBoxes(m, mod.blocked)
		mergeOverlapping(regions, &regions)
		changed := false
		for _, r := range regions {
			r.ForEach(func(c mesh.Coord) {
				if idx := m.Index(c); !mod.blocked[idx] {
					mod.blocked[idx] = true
					changed = true
				}
			})
		}
		if !changed {
			mod.Regions = regions
			break
		}
	}
	for idx := int64(0); idx < m.Nodes(); idx++ {
		if mod.blocked[idx] {
			if c := m.CoordOf(idx); !f.NodeFaulty(c) {
				mod.Inactivated = append(mod.Inactivated, c)
			}
		}
	}
	return mod, nil
}

// componentBoxes returns the bounding rectangle of every 4-connected
// component of blocked nodes, in ascending order of the component's lowest
// node index.
func componentBoxes(m *mesh.Mesh, blocked []bool) []rect.Rect {
	seen := make([]bool, len(blocked))
	var boxes []rect.Rect
	var stack []int64
	for start := int64(0); start < int64(len(blocked)); start++ {
		if !blocked[start] || seen[start] {
			continue
		}
		box := rect.Point(m.CoordOf(start))
		seen[start] = true
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c := m.CoordOf(idx)
			for dim := 0; dim < 2; dim++ {
				if c[dim] < box[dim].Lo {
					box[dim].Lo = c[dim]
				}
				if c[dim] > box[dim].Hi {
					box[dim].Hi = c[dim]
				}
				for _, dir := range []int{-1, 1} {
					nb, ok := m.Neighbor(c, dim, dir)
					if !ok {
						continue
					}
					ni := m.Index(nb)
					if blocked[ni] && !seen[ni] {
						seen[ni] = true
						stack = append(stack, ni)
					}
				}
			}
		}
		boxes = append(boxes, box)
	}
	return boxes
}

// mergeOverlapping merges rectangles whose one-step expansions intersect
// into their bounding box, to a fixpoint (the blockfault merge rule).
func mergeOverlapping(regions []rect.Rect, out *[]rect.Rect) {
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				if expand(regions[i], 1).Intersects(expand(regions[j], 1)) {
					regions[i] = boundingBox(regions[i], regions[j])
					regions = append(regions[:j], regions[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	*out = regions
}

// expand grows a box by delta in every direction (may exceed the mesh;
// used only for intersection tests).
func expand(r rect.Rect, delta int) rect.Rect {
	out := make(rect.Rect, len(r))
	for i, iv := range r {
		out[i] = rect.Interval{Lo: iv.Lo - delta, Hi: iv.Hi + delta}
	}
	return out
}

func boundingBox(a, b rect.Rect) rect.Rect {
	out := make(rect.Rect, len(a))
	for i := range a {
		lo, hi := a[i].Lo, a[i].Hi
		if b[i].Lo < lo {
			lo = b[i].Lo
		}
		if b[i].Hi > hi {
			hi = b[i].Hi
		}
		out[i] = rect.Interval{Lo: lo, Hi: hi}
	}
	return out
}

// Blocked reports whether node c is faulty or inactivated.
func (mod *Model) Blocked(c mesh.Coord) bool { return mod.blocked[mod.Mesh.Index(c)] }

// Active reports whether node c can process and route.
func (mod *Model) Active(c mesh.Coord) bool { return !mod.Blocked(c) }

// regionAt returns the region containing c, if any.
func (mod *Model) regionAt(c mesh.Coord) (rect.Rect, bool) {
	for _, r := range mod.Regions {
		if r.Contains(c) {
			return r, true
		}
	}
	return nil, false
}

// Route returns the full node path from src to dst under XY routing with
// ring detours, or ok=false when a full-band region disconnects the pair.
// Both endpoints must be active. The route is deterministic: detours take
// the +y side of a ring in the X phase and the -x side in the Y phase,
// falling back to the opposite side when the ring would leave the mesh,
// except that a detour ending inside the region's travel-axis span (the
// destination column or row abuts the region) exits on the side facing the
// destination. The final path is backtrack-trimmed (see simplify), so a
// worm whose destination column is blocked turns at the detour's sidestep
// column rather than visiting the destination column first.
func (mod *Model) Route(src, dst mesh.Coord) ([]mesh.Coord, bool, error) {
	if mod.Blocked(src) || mod.Blocked(dst) {
		return nil, false, fmt.Errorf("faultring: endpoint inside a fault region (%v -> %v)", src, dst)
	}
	path := []mesh.Coord{src.Clone()}
	cur := src.Clone()
	var ok bool
	for dim := 0; dim < 2; dim++ {
		path, cur, ok = mod.correct(path, cur, dst, dim)
		if !ok {
			return nil, false, nil
		}
	}
	return simplify(path), true, nil
}

// simplify removes backtracks (a -> b -> a collapses to a) until none
// remain. Backtracks arise at a phase boundary: the X phase delivers the
// head to the destination column, the first Y-phase detour sidesteps west,
// and the sidestep leg retraces the eastward approach. The worm must
// instead turn at the sidestep column, because the retraced hops are not
// just wasted — they couple the e-cube approach channels into the ring's
// detour channels, and that coupling closes channel-dependency cycles
// between opposite-direction flows sharing a ring side (found empirically
// by the cross-strategy property suite).
func simplify(path []mesh.Coord) []mesh.Coord {
	out := path[:0]
	for _, c := range path {
		if len(out) >= 2 && out[len(out)-2].Equal(c) {
			out = out[:len(out)-1]
			continue
		}
		out = append(out, c)
	}
	return out
}

// correct advances cur along dim to dst[dim], detouring around regions.
func (mod *Model) correct(path []mesh.Coord, cur, dst mesh.Coord, dim int) ([]mesh.Coord, mesh.Coord, bool) {
	for cur[dim] != dst[dim] {
		dir := 1
		if dst[dim] < cur[dim] {
			dir = -1
		}
		next := cur.Clone()
		next[dim] += dir
		if r, hit := mod.regionAt(next); hit {
			var ok bool
			path, cur, ok = mod.detour(path, cur, dst, r, dim, dir)
			if !ok {
				return path, cur, false
			}
			continue
		}
		cur = next
		path = append(path, cur.Clone())
	}
	return path, cur, true
}

// detour walks around region r along its ring. Every node it visits lies on
// the ring of r (within the one-step expansion, outside the region), which
// is active by construction: rings are disjoint from every other region.
func (mod *Model) detour(path []mesh.Coord, cur, dst mesh.Coord, r rect.Rect, dim, dir int) ([]mesh.Coord, mesh.Coord, bool) {
	other := 1 - dim
	n := mod.Mesh.Width(other)
	lowSide, highSide := r[other].Lo-1, r[other].Hi+1
	walk := func(d, target int) {
		for cur[d] != target {
			step := 1
			if target < cur[d] {
				step = -1
			}
			cur = cur.Clone()
			cur[d] += step
			path = append(path, cur.Clone())
		}
	}

	if r[dim].Contains(dst[dim]) {
		// The target coordinate lies inside the region's span: stop on the
		// ring side facing dst (dst is active, so it sits strictly on one
		// side, which also keeps the side inside the mesh) and leave the
		// rest to the next phase.
		side := highSide
		if dst[other] < r[other].Lo {
			side = lowSide
		}
		walk(other, side)
		walk(dim, dst[dim])
		return path, cur, true
	}

	// Fixed orientation: X-phase crossings ride the +y side, Y-phase
	// crossings the -x side; a ring truncated by the mesh edge flips.
	pref, alt := highSide, lowSide
	if dim == 1 {
		pref, alt = lowSide, highSide
	}
	side := pref
	if side < 0 || side > n-1 {
		side = alt
		if side < 0 || side > n-1 {
			// The region spans the full mesh width: a band with no way
			// around, so the far side is genuinely disconnected.
			return path, cur, false
		}
	}
	// dst[dim] lies strictly past the region (the Contains case above), so
	// the exit column/row exists inside the mesh.
	exit := r[dim].Hi + 1
	if dir < 0 {
		exit = r[dim].Lo - 1
	}
	orig := cur[other]
	walk(other, side)
	walk(dim, exit)
	walk(other, orig)
	return path, cur, true
}
