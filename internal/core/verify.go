package core

import (
	"fmt"

	"lambmesh/internal/mesh"
	"lambmesh/internal/reach"
	"lambmesh/internal/routing"
)

// VerifyLambSet checks that lambs is a valid (k,F,pi)-lamb set
// (Definition 2.6): every lamb is a good node, and for every pair of
// survivor nodes v, w (good, not lambs) v can (k,F,pi)-reach w. The check
// runs through the SES/DES algebra using Lemma 5.2 — Λ is a lamb set iff
// for every zero entry R^(k)(i,j) either S_i ⊆ Λ or D_j ⊆ Λ — so it costs
// O(poly(d,k,f) + |Λ|), not O(N^2).
func VerifyLambSet(f *mesh.FaultSet, orders routing.MultiOrder, lambs []mesh.Coord) error {
	m := f.Mesh()
	lambIdx := make(map[int64]struct{}, len(lambs))
	for _, c := range lambs {
		if !m.Contains(c) {
			return fmt.Errorf("core: lamb %v outside mesh", c)
		}
		if f.NodeFaulty(c) {
			return fmt.Errorf("core: lamb %v is a faulty node", c)
		}
		idx := m.Index(c)
		if _, dup := lambIdx[idx]; dup {
			return fmt.Errorf("core: lamb %v listed twice", c)
		}
		lambIdx[idx] = struct{}{}
	}
	rc, err := reach.Compute(f, orders)
	if err != nil {
		return err
	}
	sigma := rc.Sigma[0]
	delta := rc.Delta[len(rc.Delta)-1]
	inLambs := func(c mesh.Coord) bool {
		_, ok := lambIdx[m.Index(c)]
		return ok
	}
	for i := 0; i < rc.RK.Rows(); i++ {
		for j := 0; j < rc.RK.Cols(); j++ {
			if rc.RK.Get(i, j) {
				continue
			}
			if sigma.Sets[i].Rect.All(inLambs) || delta.Sets[j].Rect.All(inLambs) {
				continue
			}
			return fmt.Errorf("core: not a lamb set: some survivor in SES %v cannot %d-reach some survivor in DES %v",
				sigma.Sets[i].Rect.StringIn(m), orders.Rounds(), delta.Sets[j].Rect.StringIn(m))
		}
	}
	return nil
}

// VerifyLambSetBrute re-checks a lamb set against the raw Definition 2.6 by
// enumerating all survivor pairs with the spanning-tree reachability
// reference. O(N^2) and then some — tests on small meshes only. It is
// deliberately independent of the partition/matrix machinery.
func VerifyLambSetBrute(f *mesh.FaultSet, orders routing.MultiOrder, lambs []mesh.Coord) error {
	m := f.Mesh()
	o := routing.NewOracle(f)
	lambIdx := make(map[int64]struct{}, len(lambs))
	for _, c := range lambs {
		if f.NodeFaulty(c) {
			return fmt.Errorf("core: lamb %v is faulty", c)
		}
		lambIdx[m.Index(c)] = struct{}{}
	}
	var survivors []mesh.Coord
	m.ForEachNode(func(c mesh.Coord) {
		if f.NodeFaulty(c) {
			return
		}
		if _, isLamb := lambIdx[m.Index(c)]; isLamb {
			return
		}
		survivors = append(survivors, c.Clone())
	})
	for _, v := range survivors {
		set := o.ReachKSet(orders, v)
		for _, w := range survivors {
			if !set[m.Index(w)] {
				return fmt.Errorf("core: survivor %v cannot %d-reach survivor %v", v, orders.Rounds(), w)
			}
		}
	}
	return nil
}
