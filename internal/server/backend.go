package server

import (
	"lambmesh/internal/classtable"
	"lambmesh/internal/mesh"
	"lambmesh/internal/wire"
)

// WireBackend adapts the server to the binary route protocol. The returned
// backend is safe for concurrent use; wire.Serve calls it once per
// in-flight request.
func (s *Server) WireBackend() wire.Backend { return wireBackend{s} }

type wireBackend struct{ s *Server }

func (b wireBackend) Dims() int { return b.s.mesh.Dims() }

func (b wireBackend) Query(src, dst []int, ans *wire.Answer) {
	b.s.routeCompact(mesh.Coord(src), mesh.Coord(dst), ans)
}

// routeCompact is Route's compact twin for the wire protocol: the same
// answers and the same metrics, but written into the caller's reused Answer
// instead of materializing a Route (no path, no reason strings). With the
// class table live, the only allocation is the cloned via coordinate that
// detaches the answer from the pooled lookup scratch.
func (s *Server) routeCompact(src, dst mesh.Coord, ans *wire.Answer) {
	e := s.Epoch()
	s.metrics.Queries.Add(1)
	via := ans.Via[:0]
	*ans = wire.Answer{Gen: e.Generation, Via: via}
	m := e.Faults.Mesh()
	if !m.Contains(src) || e.Faults.NodeFaulty(src) || e.IsLamb(src) {
		ans.Code = wire.CodeBadSrc
		s.metrics.RoutesRejected.Add(1)
		return
	}
	if !m.Contains(dst) || e.Faults.NodeFaulty(dst) || e.IsLamb(dst) {
		ans.Code = wire.CodeBadDst
		s.metrics.RoutesRejected.Add(1)
		return
	}
	if e.Table != nil {
		q := s.scratch.Get().(*classtable.Scratch)
		res := e.Table.Lookup(src, dst, q)
		if !res.Found {
			// Faulty endpoints were rejected above, so the only remaining
			// miss is an unreachable pair.
			s.scratch.Put(q)
			ans.Code = wire.CodeNoRoute
			s.metrics.RoutesRejected.Add(1)
			return
		}
		// res.Via aliases q; detach it before the scratch goes back to the
		// pool, where a concurrent query would overwrite it.
		res = res.Clone()
		s.scratch.Put(q)
		ans.Code = wire.CodeFound
		ans.Hops, ans.Turns, ans.NVias = res.Hops, res.Turns, res.NVias
		ans.Via = append(ans.Via, res.Via...)
		s.metrics.ObserveRoute(ans.Hops)
		return
	}
	// Legacy data plane: the per-pair sharded cache.
	k := pairKey{m.Index(src), m.Index(dst)}
	ce, cached := e.cache.get(k)
	if cached {
		s.metrics.CacheHits.Add(1)
	} else {
		r, reason := e.route(s.orders, src, dst)
		ce = &cacheEntry{route: r, reason: reason}
		e.cache.put(k, ce)
	}
	if ce.route == nil {
		ans.Code = wire.CodeNoRoute
		if !cached {
			s.metrics.RoutesRejected.Add(1)
		}
		return
	}
	ans.Code = wire.CodeFound
	ans.Hops, ans.Turns = ce.route.Hops(), ce.route.Turns()
	ans.NVias = len(ce.route.Vias)
	for _, v := range ce.route.Vias {
		ans.Via = append(ans.Via, v...)
	}
	if !cached {
		s.metrics.ObserveRoute(ans.Hops)
	}
}
