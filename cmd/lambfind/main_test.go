package main

import (
	"os"
	"path/filepath"
	"testing"

	"lambmesh/internal/mesh"
)

func TestParseMesh(t *testing.T) {
	m, err := parseMesh("12x8", false)
	if err != nil || m.Dims() != 2 || m.Width(0) != 12 || m.Width(1) != 8 {
		t.Fatalf("parseMesh: %v %v", m, err)
	}
	tor, err := parseMesh("5x5", true)
	if err != nil || !tor.Torus() {
		t.Fatalf("torus parse: %v %v", tor, err)
	}
	for _, bad := range []string{"", "ax3", "3x", "1x5"} {
		if _, err := parseMesh(bad, false); err == nil {
			t.Errorf("parseMesh(%q) should fail", bad)
		}
	}
}

func TestLoadFaultsInline(t *testing.T) {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	if err := loadFaults(f, "(9,1);(11,6); # comment", ""); err != nil {
		t.Fatal(err)
	}
	if f.NumNodeFaults() != 2 {
		t.Errorf("loaded %d faults", f.NumNodeFaults())
	}
	if err := loadFaults(f, "(99,0)", ""); err == nil {
		t.Error("out-of-mesh fault should fail")
	}
	if err := loadFaults(f, "nope", ""); err == nil {
		t.Error("junk should fail")
	}
}

func TestLoadFaultsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faults.txt")
	if err := os.WriteFile(path, []byte("# header\n3,4\n\n(5,6)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	if err := loadFaults(f, "", path); err != nil {
		t.Fatal(err)
	}
	if f.NumNodeFaults() != 2 || !f.NodeFaulty(mesh.C(3, 4)) || !f.NodeFaulty(mesh.C(5, 6)) {
		t.Errorf("file faults wrong: %v", f.SortedNodeFaults())
	}
	if err := loadFaults(f, "", filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestPct(t *testing.T) {
	if pct(1, 0) != 0 {
		t.Error("pct with zero denominator")
	}
	if pct(1, 2) != 50 {
		t.Error("pct wrong")
	}
}
