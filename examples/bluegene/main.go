// Bluegene runs the scenario that motivated the paper: a 32x32x32 3D mesh
// (the initial Blue Gene organization) with a few percent of random node
// faults, two virtual channels, and two rounds of XYZ routing. It finds the
// lamb set, verifies it, and compares against the paper's headline numbers
// (average 67.6 lambs at 3% faults — under 7% of the faults and 0.21% of
// the machine).
//
//	go run ./examples/bluegene [-percent 3.0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"lambmesh"
)

func main() {
	percent := flag.Float64("percent", 3.0, "percentage of random node faults")
	seed := flag.Int64("seed", 1, "fault placement seed")
	flag.Parse()

	m, err := lambmesh.NewCube(3, 32)
	if err != nil {
		log.Fatal(err)
	}
	numFaults := int(math.Round(float64(m.Nodes()) * *percent / 100))
	faults := lambmesh.RandomNodeFaults(m, numFaults, rand.New(rand.NewSource(*seed)))
	orders := lambmesh.TwoRoundXYZ()

	fmt.Printf("machine:  %v (%d nodes, bisection width %d)\n", m, m.Nodes(), m.BisectionWidth())
	fmt.Printf("faults:   %d random nodes (%.2f%%)\n", numFaults, *percent)

	start := time.Now()
	res, err := lambmesh.FindLambSet(faults, orders)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("lambs:    %d  (%.3f%% of nodes, %.1f%% of faults)\n",
		res.NumLambs(),
		100*float64(res.NumLambs())/float64(m.Nodes()),
		100*float64(res.NumLambs())/float64(numFaults))
	fmt.Printf("survivors: %d nodes keep full service\n", res.Survivors(faults))
	fmt.Printf("algebra:  %d SESs, %d DESs, %d/%d relevant, cover weight %d\n",
		res.Stats.NumSES, res.Stats.NumDES,
		res.Stats.RelevantSES, res.Stats.RelevantDES, res.Stats.CoverWeight)
	fmt.Printf("time:     %.3fs (independent of mesh size; polynomial in faults)\n", elapsed.Seconds())

	if err := lambmesh.VerifyLambSet(faults, orders, res.Lambs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: all survivors mutually reachable in 2 rounds of XYZ")
	if *percent == 3.0 {
		fmt.Println("\npaper reference (Figure 18): average 67.6 lambs over 1000 trials,")
		fmt.Println("0.206% of nodes, 6.88% additional damage.")
	}

	if res.NumLambs() > 0 {
		fmt.Printf("\nfirst lambs: %v\n", res.Lambs[:min(5, len(res.Lambs))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
