package blockfault

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func TestBuildSingleFault(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(3, 3))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Regions) != 1 || mod.Inactivated != 0 {
		t.Errorf("regions=%v inactivated=%d", mod.Regions, mod.Inactivated)
	}
	if !mod.Blocked(mesh.C(3, 3)) || mod.Blocked(mesh.C(2, 3)) {
		t.Error("Blocked wrong")
	}
}

func TestBuildMergesNearbyFaults(t *testing.T) {
	m := mesh.MustNew(10, 10)
	f := mesh.NewFaultSet(m)
	// Diagonal neighbors with overlapping rings: must merge into one 2x2
	// region, inactivating the 2 good corners.
	f.AddNodes(mesh.C(3, 3), mesh.C(4, 4))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Regions) != 1 {
		t.Fatalf("regions = %v, want 1 merged box", mod.Regions)
	}
	if mod.Inactivated != 2 {
		t.Errorf("inactivated = %d, want 2", mod.Inactivated)
	}
	// A gap-1 pair (the node between is on both rings) must also merge,
	// inactivating that node.
	f2 := mesh.NewFaultSet(m)
	f2.AddNodes(mesh.C(1, 1), mesh.C(3, 1))
	mod2, err := Build(f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod2.Regions) != 1 || mod2.Inactivated != 1 {
		t.Errorf("regions=%d inactivated=%d, want 1 region, 1 inactivated", len(mod2.Regions), mod2.Inactivated)
	}
	// A gap-2 pair has disjoint rings and stays separate.
	f2b := mesh.NewFaultSet(m)
	f2b.AddNodes(mesh.C(1, 1), mesh.C(4, 1))
	mod2b, err := Build(f2b)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod2b.Regions) != 2 || mod2b.Inactivated != 0 {
		t.Errorf("gap-2: regions=%d inactivated=%d, want 2 regions", len(mod2b.Regions), mod2b.Inactivated)
	}
	// Far-apart faults stay separate.
	f3 := mesh.NewFaultSet(m)
	f3.AddNodes(mesh.C(1, 1), mesh.C(7, 7))
	mod3, err := Build(f3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod3.Regions) != 2 || mod3.Inactivated != 0 {
		t.Errorf("far faults: regions=%d inactivated=%d", len(mod3.Regions), mod3.Inactivated)
	}
}

func TestBuildValidation(t *testing.T) {
	m3 := mesh.MustNew(4, 4, 4)
	if _, err := Build(mesh.NewFaultSet(m3)); err == nil {
		t.Error("3D should be rejected")
	}
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddLink(mesh.Link{From: mesh.C(0, 0), Dim: 0, Dir: 1})
	if _, err := Build(f); err == nil {
		t.Error("link faults should be rejected")
	}
}

func TestRouteXYNoFaults(t *testing.T) {
	m := mesh.MustNew(8, 8)
	mod, err := Build(mesh.NewFaultSet(m))
	if err != nil {
		t.Fatal(err)
	}
	p, err := mod.RouteXY(mesh.C(1, 1), mesh.C(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	if routing.PathLen(p) != 8 {
		t.Errorf("hops = %d, want 8", routing.PathLen(p))
	}
	if routing.CountTurns(p) != 1 {
		t.Errorf("turns = %d, want 1", routing.CountTurns(p))
	}
}

func TestRouteXYDetour(t *testing.T) {
	m := mesh.MustNew(9, 9)
	f := mesh.NewFaultSet(m)
	// A 3-wide wall across the middle of the route's row.
	f.AddNodes(mesh.C(4, 3), mesh.C(4, 4), mesh.C(4, 5))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mod.RouteXY(mesh.C(0, 4), mesh.C(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p {
		if mod.Blocked(c) {
			t.Fatalf("path enters region at %v", c)
		}
	}
	if !p[len(p)-1].Equal(mesh.C(8, 4)) {
		t.Fatalf("path ends at %v", p[len(p)-1])
	}
	// The detour costs extra turns over the fault-free single turn.
	if routing.CountTurns(p) < 3 {
		t.Errorf("expected a multi-turn detour, got %d turns", routing.CountTurns(p))
	}
}

// Destination column blocked at the crossing row: the overshoot case.
func TestRouteXYOvershootCase(t *testing.T) {
	m := mesh.MustNew(9, 9)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(4, 4))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	// X phase from (0,4) toward x=4 hits the region whose span contains
	// dst x; route must not ping-pong.
	p, err := mod.RouteXY(mesh.C(0, 4), mesh.C(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	last := p[len(p)-1]
	if !last.Equal(mesh.C(4, 8)) {
		t.Fatalf("path ends at %v", last)
	}
	for _, c := range p {
		if mod.Blocked(c) {
			t.Fatalf("path enters region at %v", c)
		}
	}
}

func TestRouteXYEndpointInRegion(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(3, 3), mesh.C(4, 4)) // merges; (3,4) inactivated
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.RouteXY(mesh.C(3, 4), mesh.C(0, 0)); err == nil {
		t.Error("inactivated source should be rejected")
	}
	if _, err := mod.RouteXY(mesh.C(0, 0), mesh.C(4, 3)); err == nil {
		t.Error("inactivated destination should be rejected")
	}
}

func TestRouteXYWallSpanningMesh(t *testing.T) {
	m := mesh.MustNew(5, 5)
	f := mesh.NewFaultSet(m)
	for y := 0; y < 5; y++ {
		f.AddNode(mesh.C(2, y))
	}
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.RouteXY(mesh.C(0, 0), mesh.C(4, 0)); err == nil {
		t.Error("full wall should make the pair unroutable")
	}
}

// Randomized: routes between random active pairs stay legal and terminate.
func TestRouteXYRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := mesh.MustNew(16, 16)
	for trial := 0; trial < 40; trial++ {
		f := mesh.RandomNodeFaults(m, 1+rng.Intn(8), rng)
		mod, err := Build(f)
		if err != nil {
			t.Fatal(err)
		}
		var active []mesh.Coord
		m.ForEachNode(func(c mesh.Coord) {
			if !mod.Blocked(c) {
				active = append(active, c.Clone())
			}
		})
		for pair := 0; pair < 30; pair++ {
			src := active[rng.Intn(len(active))]
			dst := active[rng.Intn(len(active))]
			p, err := mod.RouteXY(src, dst)
			if err != nil {
				// Legitimate only if a region touches an edge on the way;
				// with few faults on 16x16 this is rare but possible.
				continue
			}
			if !p[0].Equal(src) || !p[len(p)-1].Equal(dst) {
				t.Fatalf("trial %d: endpoints wrong", trial)
			}
			for i := 1; i < len(p); i++ {
				if p[i].L1(p[i-1]) != 1 {
					t.Fatalf("trial %d: non-adjacent step %v -> %v", trial, p[i-1], p[i])
				}
				if mod.Blocked(p[i]) {
					t.Fatalf("trial %d: path enters a region at %v", trial, p[i])
				}
			}
		}
	}
}

// The paper's motivation: ring detours can cost Theta(n) turns, while
// 2-round dimension-ordered routing never exceeds 2d-1 = 3.
func TestManyTurnsVersusDOR(t *testing.T) {
	m := mesh.MustNew(17, 17)
	f := mesh.NewFaultSet(m)
	// A staircase of separated blocks, each forcing its own detour.
	for i := 0; i < 4; i++ {
		f.AddNode(mesh.C(3+3*i, 6))
	}
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mod.RouteXY(mesh.C(0, 6), mesh.C(16, 6))
	if err != nil {
		t.Fatal(err)
	}
	if routing.CountTurns(p) < 4*4 {
		t.Errorf("staircase detours should cost >= 16 turns, got %d", routing.CountTurns(p))
	}
}
