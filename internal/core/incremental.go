package core

import (
	"time"

	"lambmesh/internal/bitmat"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/partition"
	"lambmesh/internal/reach"
	"lambmesh/internal/routing"
)

// PhaseTimes splits one lamb recomputation into pipeline phases, the
// latency breakdown lambd's /metrics exposes. The lamb set itself is
// independent of how the time divides.
type PhaseTimes struct {
	Partition time.Duration // SES/DES partition construction or maintenance
	Reach     time.Duration // oracle + R/I fills (or patches) + R^(k) chain
	VCover    time.Duration // zero rows/cols, WVC min-cut, result assembly
	Total     time.Duration
	// Incremental reports whether the delta-patch path produced the result
	// (false: full from-scratch pipeline).
	Incremental bool
}

// DefaultIncrementalThreshold is the fault-delta size above which AddFaults
// abandons the incremental patch and recomputes from scratch. Patch cost
// grows with the delta (every surviving R entry is re-checked against each
// new fault) while the full pipeline's cost is delta-independent, so large
// batches are cheaper cold; 32 keeps the patch comfortably on the winning
// side for the single-fault and small-burst events reconfiguration sees.
const DefaultIncrementalThreshold = 32

// incRound is the warm state of one distinct per-round ordering: the
// incremental partition finders, the current partitions, classifiers over
// them (to locate a new set inside the *previous* partition), and the
// current one-round matrix with its double buffer.
type incRound struct {
	pi                 routing.Order
	sigmaInc, deltaInc *partition.Incremental
	sigma, delta       *partition.Partition
	sigmaCls, deltaCls *partition.Classifier
	r, rSpare          *bitmat.Matrix
}

// incState is the Reconfigurer's carry-over between generations.
type incState struct {
	rounds  []*incRound // distinct orderings, first-appearance order
	roundOf []*incRound // per round t (aliases rounds entries)

	// I-matrix pair deduplication, mirroring reach.ComputeScratch: iof[t]
	// indexes ims for round gap t; ipairT[di] is the first such t.
	iof    []int
	ipairT []int
	ims    []*bitmat.Matrix

	chain   [2]*bitmat.Matrix
	chainMs []*bitmat.Matrix

	rowOld, colOld []int // new-set -> old-set index scratch
}

// warmInc (re)builds the incremental carry-over from a just-completed full
// solve: fresh incremental partition finders replay the entire fault set
// (deterministic, so their partitions match rc's), classifiers index the
// resulting sets, and the one-round matrices are cloned out of rc (the
// originals live in solver scratch and will be recycled). A nil result
// state simply means the next AddFaults goes through the full pipeline.
func (r *Reconfigurer) warmInc(rc *reach.Reachability) {
	r.inc = nil
	m := r.faults.Mesh()
	k := r.orders.Rounds()
	st := &incState{roundOf: make([]*incRound, k)}
	byKey := map[string]*incRound{}
	for t := 0; t < k; t++ {
		key := r.orders[t].String()
		rd := byKey[key]
		if rd == nil {
			rd = &incRound{pi: r.orders[t]}
			var err error
			if rd.sigmaInc, err = partition.NewIncremental(m, rd.pi, partition.Source); err != nil {
				return
			}
			if rd.deltaInc, err = partition.NewIncremental(m, rd.pi, partition.Destination); err != nil {
				return
			}
			rd.sigma = rd.sigmaInc.Update(r.faults.NodeFaults(), r.faults.LinkFaults())
			rd.delta = rd.deltaInc.Update(r.faults.NodeFaults(), r.faults.LinkFaults())
			// The incremental finders must agree with the full pipeline's
			// partitions — both are deterministic on the same fault set.
			if rd.sigma.Len() != rc.R[t].Rows() || rd.delta.Len() != rc.R[t].Cols() {
				return
			}
			rd.r = rc.R[t].Clone()
			if rd.sigmaCls, err = partition.NewClassifier(m, rd.sigma.Sets, rd.pi); err != nil {
				return
			}
			if rd.deltaCls, err = partition.NewClassifier(m, rd.delta.Sets, rd.pi.Reverse()); err != nil {
				return
			}
			byKey[key] = rd
			st.rounds = append(st.rounds, rd)
		}
		st.roundOf[t] = rd
	}
	st.iof = make([]int, k-1)
	ipair := map[[2]string]int{}
	for t := 0; t < k-1; t++ {
		key := [2]string{r.orders[t].String(), r.orders[t+1].String()}
		di, ok := ipair[key]
		if !ok {
			di = len(st.ims)
			ipair[key] = di
			st.ims = append(st.ims, nil)
			st.ipairT = append(st.ipairT, t)
		}
		st.iof[t] = di
	}
	r.inc = st
}

// incrementalSolve recomputes the lamb set after a small fault delta by
// patching the warm state instead of rebuilding it:
//
//   - Partitions: each per-round SES/DES partition is maintained by its
//     partition.Incremental, which recomputes only the top-level slices the
//     delta dirties.
//   - One-round matrices: fault growth is monotone and the new partition
//     refines the old, so each new representative classifies into exactly
//     one old set (it is good under the new faults, hence under the old).
//     Where the old entry is 0, the new entry is 0 (reachability only
//     shrinks). Where it is 1, Lemma 4.1 says the old-set member pair — in
//     particular the new representative pair — had a fault-free
//     dimension-ordered path; that unique path stays fault-free iff it
//     avoids the delta, an O(|delta| d) geometric test with no oracle.
//   - I matrices and the R^(k) chain are rebuilt from the patched parts
//     (they are a small fraction of the full pipeline), and the WVC tail is
//     the byte-identical shared lamb1FromReach.
//
// Any defensive invariant miss falls back to the full pipeline, which also
// re-warms the state.
func (r *Reconfigurer) incrementalSolve(dn []mesh.Coord, dl []mesh.Link, opts []Option) (*Result, error) {
	cfg := buildConfig(opts)
	if err := validateConfig(r.faults, cfg); err != nil {
		return nil, err
	}
	if cfg.sweep || cfg.keepReach {
		// The patch path neither sweeps nor hands out its internal matrices.
		return r.fullSolve(opts)
	}
	st := r.inc
	workers := par.Clamp(cfg.workers)
	start := time.Now()

	type prevRound struct {
		sigmaCls, deltaCls *partition.Classifier
		r                  *bitmat.Matrix
	}
	prev := make([]prevRound, len(st.rounds))
	for n, rd := range st.rounds {
		prev[n] = prevRound{rd.sigmaCls, rd.deltaCls, rd.r}
		rd.sigma = rd.sigmaInc.Update(dn, dl)
		rd.delta = rd.deltaInc.Update(dn, dl)
	}
	partElapsed := time.Since(start)

	for n, rd := range st.rounds {
		S, D := rd.sigma.Len(), rd.delta.Len()
		st.rowOld = growInts(st.rowOld, S)
		st.colOld = growInts(st.colOld, D)
		for i := 0; i < S; i++ {
			if st.rowOld[i] = prev[n].sigmaCls.Classify(rd.sigma.Sets[i].Rep); st.rowOld[i] < 0 {
				return r.fullSolve(opts)
			}
		}
		for j := 0; j < D; j++ {
			if st.colOld[j] = prev[n].deltaCls.Classify(rd.delta.Sets[j].Rep); st.colOld[j] < 0 {
				return r.fullSolve(opts)
			}
		}
		nr := rd.rSpare.Reset(S, D)
		oldR := prev[n].r
		pi, sigma, delta := rd.pi, rd.sigma, rd.delta
		rowOld, colOld := st.rowOld, st.colOld
		par.Do(workers, S, func(i int) {
			v := sigma.Sets[i].Rep
			io := rowOld[i]
			for j := 0; j < D; j++ {
				if !oldR.Get(io, colOld[j]) {
					continue
				}
				if !pathHitsFaults(pi, v, delta.Sets[j].Rep, dn, dl) {
					nr.Set(i, j)
				}
			}
		})
		rd.r, rd.rSpare = nr, prev[n].r
		var err error
		if rd.sigmaCls, err = partition.NewClassifier(r.faults.Mesh(), sigma.Sets, pi); err != nil {
			return r.fullSolve(opts)
		}
		if rd.deltaCls, err = partition.NewClassifier(r.faults.Mesh(), delta.Sets, pi.Reverse()); err != nil {
			return r.fullSolve(opts)
		}
	}

	// Rebuild the (cheap) intersection matrices and the R^(k) chain over
	// the patched parts, with the same pair deduplication as the full path.
	k := r.orders.Rounds()
	for di := range st.ims {
		t := st.ipairT[di]
		dlt, sg := st.roundOf[t].delta, st.roundOf[t+1].sigma
		im := st.ims[di].Reset(dlt.Len(), sg.Len())
		st.ims[di] = im
		par.Do(workers, dlt.Len(), func(j int) {
			dj := dlt.Sets[j]
			for i2, s2 := range sg.Sets {
				if dj.Rect.Intersects(s2.Rect) {
					im.Set(j, i2)
				}
			}
		})
	}
	rc := &reach.Reachability{
		Orders: r.orders,
		Sigma:  make([]*partition.Partition, k),
		Delta:  make([]*partition.Partition, k),
		R:      make([]*bitmat.Matrix, k),
		I:      make([]*bitmat.Matrix, k-1),
	}
	for t := 0; t < k; t++ {
		rc.Sigma[t] = st.roundOf[t].sigma
		rc.Delta[t] = st.roundOf[t].delta
		rc.R[t] = st.roundOf[t].r
	}
	st.chainMs = append(st.chainMs[:0], rc.R[0])
	for t := 0; t < k-1; t++ {
		rc.I[t] = st.ims[st.iof[t]]
		st.chainMs = append(st.chainMs, rc.I[t], rc.R[t+1])
	}
	rc.RK = bitmat.MulChainScratch(workers, &st.chain, st.chainMs...)
	reachElapsed := time.Since(start) - partElapsed

	res, err := r.solver.lamb1FromReach(r.faults, r.orders, cfg, rc)
	if err != nil {
		return nil, err
	}
	total := time.Since(start)
	r.phases = PhaseTimes{
		Partition:   partElapsed,
		Reach:       reachElapsed,
		VCover:      total - partElapsed - reachElapsed,
		Total:       total,
		Incremental: true,
	}
	return res, nil
}

// fullSolve runs the from-scratch pipeline and re-warms the incremental
// state from its intermediates.
func (r *Reconfigurer) fullSolve(opts []Option) (*Result, error) {
	cfg := buildConfig(opts)
	if err := validateConfig(r.faults, cfg); err != nil {
		return nil, err
	}
	start := time.Now()
	rc, err := reach.ComputeScratch(r.faults, r.orders, cfg.workers, &r.solver.rs)
	if err != nil {
		r.inc = nil
		return nil, err
	}
	reachElapsed := time.Since(start)
	res, err := r.solver.lamb1FromReach(r.faults, r.orders, cfg, rc)
	if err != nil {
		r.inc = nil
		return nil, err
	}
	part := time.Duration(r.solver.rs.PartitionNanos)
	r.phases = PhaseTimes{
		Partition: part,
		Reach:     reachElapsed - part,
		VCover:    time.Since(start) - reachElapsed,
		Total:     time.Since(start),
	}
	if r.IncrementalThreshold > 0 {
		r.warmInc(rc)
	} else {
		r.inc = nil
	}
	return res, nil
}

// pathHitsFaults reports whether the pi-ordered path v -> w traverses any
// of the given node or link faults. O((|nodes| + |links|) d).
func pathHitsFaults(pi routing.Order, v, w mesh.Coord, nodes []mesh.Coord, links []mesh.Link) bool {
	for _, x := range nodes {
		if nodeOnPath(pi, v, w, x) {
			return true
		}
	}
	for _, l := range links {
		if linkOnPath(pi, v, w, l) {
			return true
		}
	}
	return false
}

// nodeOnPath reports whether x lies on the dimension-ordered path v -> w
// under pi: for some segment t, x agrees with w on the already-corrected
// dimensions pi[0..t-1], with v on the not-yet-corrected pi[t+1..], and its
// pi[t] coordinate lies within the segment's span (endpoints inclusive).
func nodeOnPath(pi routing.Order, v, w, x mesh.Coord) bool {
	d := len(pi)
	pw := 0 // longest prefix of pi on which x matches w
	for pw < d && x[pi[pw]] == w[pi[pw]] {
		pw++
	}
	sv := d // smallest s with x matching v on pi[s..d-1]
	for sv > 0 && x[pi[sv-1]] == v[pi[sv-1]] {
		sv--
	}
	for t := 0; t <= pw && t < d; t++ {
		if sv > t+1 {
			continue
		}
		dim := pi[t]
		lo, hi := v[dim], w[dim]
		if lo > hi {
			lo, hi = hi, lo
		}
		if x[dim] >= lo && x[dim] <= hi {
			return true
		}
	}
	return false
}

// linkOnPath reports whether the path traverses the directed link l: the
// path travels l.Dim in l's direction, the tail agrees with w before that
// segment and with v after it, and the tail coordinate is one of the
// positions the segment departs from.
func linkOnPath(pi routing.Order, v, w mesh.Coord, l mesh.Link) bool {
	d := len(pi)
	t := 0
	for t < d && pi[t] != l.Dim {
		t++
	}
	if t == d {
		return false
	}
	dim := l.Dim
	if v[dim] == w[dim] {
		return false // empty segment: no travel along dim
	}
	dir := 1
	if w[dim] < v[dim] {
		dir = -1
	}
	if l.Dir != dir {
		return false
	}
	for s := 0; s < t; s++ {
		if l.From[pi[s]] != w[pi[s]] {
			return false
		}
	}
	for s := t + 1; s < d; s++ {
		if l.From[pi[s]] != v[pi[s]] {
			return false
		}
	}
	c := l.From[dim]
	if dir > 0 {
		return c >= v[dim] && c < w[dim]
	}
	return c <= v[dim] && c > w[dim]
}

// growInts reslices b to n ints, reallocating only on growth. Entries are
// not zeroed; callers overwrite every index.
func growInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}
