package wormhole

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// DirectStrategy is the zero-VC contrast point for the lamb method's k-VC
// cost, on the full-mesh topology (Cano et al., HOTI25): every pair of
// nodes has a dedicated link, so a packet goes direct when its link is
// usable and otherwise detours through one intermediate node. Deadlock
// freedom needs no virtual channels at all — the only worms that occupy two
// channels are the two-hop detours s -> w -> d, and the intermediate is
// always chosen with index(w) > index(s), so every channel dependency goes
// from a lower tail index to a strictly higher one and the dependency graph
// per VC class is a DAG. When more than one VC is provisioned anyway, a
// whole worm rides one randomly drawn class (like the adaptive strategy),
// which only splits the DAG further.
//
// The price of the discipline is explicit: a source with no usable direct
// link and no usable higher-index intermediate reports the pair
// unreachable, and the workload generator counts it.
type DirectStrategy struct {
	f  *mesh.FaultSet
	fm *mesh.FullMesh
}

// NewDirectStrategy builds the strategy; f must live on a full-mesh
// topology.
func NewDirectStrategy(f *mesh.FaultSet) (*DirectStrategy, error) {
	fm, ok := f.Topology().(*mesh.FullMesh)
	if !ok {
		return nil, fmt.Errorf("wormhole: direct routing requires the full-mesh topology, not %v", f.Topology())
	}
	return &DirectStrategy{f: f, fm: fm}, nil
}

func (s *DirectStrategy) Name() string             { return "direct" }
func (s *DirectStrategy) Faults() *mesh.FaultSet   { return s.f }
func (s *DirectStrategy) Sacrificed() []mesh.Coord { return nil }
func (s *DirectStrategy) MinVCs() int              { return 1 }

// link returns the dedicated link from a to b (distinct nodes).
func (s *DirectStrategy) link(a, b mesh.Coord) mesh.Link {
	return mesh.Link{From: a.Clone(), Dim: 0, Dir: s.fm.Delta(a, b)}
}

func (s *DirectStrategy) Route(src, dst mesh.Coord, id, length, injectAt, vcs int, rng *rand.Rand) (*Message, bool, error) {
	if src.Equal(dst) {
		return nil, false, fmt.Errorf("wormhole: zero-hop route %v -> %v", src, dst)
	}
	vc := 0
	if vcs > 1 && rng != nil {
		vc = rng.Intn(vcs)
	}
	var path []mesh.Coord
	if s.f.Usable(s.link(src, dst)) {
		path = []mesh.Coord{src, dst}
	} else {
		// One-hop detour: usable intermediates with index strictly above the
		// source's, in ascending index order (so the rng draw is
		// deterministic for a given fault configuration).
		m := s.f.Mesh()
		var cands []mesh.Coord
		for idx := m.Index(src) + 1; idx < m.Nodes(); idx++ {
			w := m.CoordOf(idx)
			if w.Equal(dst) || s.f.NodeFaulty(w) {
				continue
			}
			if s.f.Usable(s.link(src, w)) && s.f.Usable(s.link(w, dst)) {
				cands = append(cands, w)
			}
		}
		if len(cands) == 0 {
			return nil, false, nil
		}
		w := cands[0]
		if rng != nil {
			w = cands[rng.Intn(len(cands))]
		}
		path = []mesh.Coord{src, w, dst}
	}
	msg := &Message{
		ID:       id,
		Src:      src.Clone(),
		Dst:      dst.Clone(),
		Length:   length,
		InjectAt: injectAt,
	}
	for i := 1; i < len(path); i++ {
		msg.Hops = append(msg.Hops, Hop{Link: s.link(path[i-1], path[i]), VC: vc})
	}
	msg.PathHops = len(msg.Hops)
	msg.PathTurns = routing.CountTurns(path)
	return msg, true, nil
}

func (s *DirectStrategy) AddFaults(nodes []mesh.Coord, links []mesh.Link) error {
	for _, c := range nodes {
		s.f.AddNode(c)
	}
	for _, l := range links {
		s.f.AddLink(l)
	}
	return nil
}
