package routing

import (
	"sort"

	"lambmesh/internal/mesh"
)

// Oracle answers 1-round dimension-ordered reachability queries in the
// presence of a fault set (Definition 2.5(1)). A query costs O(d log f)
// time: the pi-route from v to w is d axis-aligned segments, and each
// segment asks "is there a fault on this line interval?" against a
// per-dimension index of the faults, built once in O(d f log f).
//
// The oracle is safe for concurrent use after construction: NewOracle is
// the only writer of the per-dimension fault indexes, and every query method
// (ReachOne, ReachableSetOne, the sweeps, ReachK*) only reads them and the
// (itself immutable) fault set. The parallel reachability kernels in
// internal/reach depend on this guarantee — callers who mutate a FaultSet
// must build a fresh Oracle rather than reuse one across the mutation.
type Oracle struct {
	m *mesh.Mesh
	f *mesh.FaultSet

	// nodeIdx[dim][profile] lists, sorted, the dim-coordinates of node
	// faults whose remaining coordinates have the given profile index.
	nodeIdx []map[int64][]int
	// posLink/negLink[dim][profile] list the tail dim-coordinates of faulty
	// links pointing in the +/- direction along dim.
	posLink []map[int64][]int
	negLink []map[int64][]int

	// free recycles the value slices of a previous index across Rebuild
	// calls so steady-state reindexing stays allocation-free.
	free [][]int
}

// NewOracle indexes fault set f for reachability queries.
func NewOracle(f *mesh.FaultSet) *Oracle {
	o := &Oracle{}
	o.Rebuild(f)
	return o
}

// Rebuild re-indexes the oracle for fault set f, reusing the previous
// index's map buckets and value slices: the steady-state form of NewOracle
// for trial loops that redraw faults millions of times. The concurrency
// guarantee above covers only the quiescent index — callers must make sure
// no reader is in flight while Rebuild runs.
func (o *Oracle) Rebuild(f *mesh.FaultSet) {
	m := f.Mesh()
	d := m.Dims()
	o.m, o.f = m, f
	if len(o.nodeIdx) != d {
		o.nodeIdx = make([]map[int64][]int, d)
		o.posLink = make([]map[int64][]int, d)
		o.negLink = make([]map[int64][]int, d)
		for j := 0; j < d; j++ {
			o.nodeIdx[j] = make(map[int64][]int)
			o.posLink[j] = make(map[int64][]int)
			o.negLink[j] = make(map[int64][]int)
		}
	} else {
		for j := 0; j < d; j++ {
			o.recycle(o.nodeIdx[j])
			o.recycle(o.posLink[j])
			o.recycle(o.negLink[j])
		}
	}
	for _, c := range f.NodeFaults() {
		for j := 0; j < d; j++ {
			o.put(o.nodeIdx[j], m.ProfileIndex(c, j), c[j])
		}
	}
	for _, l := range f.LinkFaults() {
		p := m.ProfileIndex(l.From, l.Dim)
		if l.Dir > 0 {
			o.put(o.posLink[l.Dim], p, l.From[l.Dim])
		} else {
			o.put(o.negLink[l.Dim], p, l.From[l.Dim])
		}
	}
	for j := 0; j < d; j++ {
		for _, idx := range []map[int64][]int{o.nodeIdx[j], o.posLink[j], o.negLink[j]} {
			for _, lst := range idx {
				sort.Ints(lst)
			}
		}
	}
}

// put appends v to idx[p], seeding new profile entries from the recycle
// pool so Rebuild converges to zero allocations.
func (o *Oracle) put(idx map[int64][]int, p int64, v int) {
	lst, ok := idx[p]
	if !ok && len(o.free) > 0 {
		lst = o.free[len(o.free)-1][:0]
		o.free = o.free[:len(o.free)-1]
	}
	idx[p] = append(lst, v)
}

// recycle harvests the value slices of idx into the free pool and empties
// the map in place (clear keeps the buckets).
func (o *Oracle) recycle(idx map[int64][]int) {
	for _, lst := range idx {
		if cap(lst) > 0 {
			o.free = append(o.free, lst[:0])
		}
	}
	clear(idx)
}

// Mesh returns the oracle's topology.
func (o *Oracle) Mesh() *mesh.Mesh { return o.m }

// Faults returns the oracle's fault set.
func (o *Oracle) Faults() *mesh.FaultSet { return o.f }

// ReachOne reports whether w is (F,pi)-reachable from v: whether the unique
// pi-ordered route from v to w visits no faulty node and traverses no faulty
// link. In particular both v and w must be good.
//
// The route position is tracked as an incremental linear index rather than a
// materialized coordinate: each dimension appears in pi exactly once, so when
// dim comes up the current position still has v's coordinate there, and the
// profile index of the segment's line is idx - v[dim]*Stride(dim). This keeps
// the query allocation-free — it runs millions of times per lamb computation.
func (o *Oracle) ReachOne(pi Order, v, w mesh.Coord) bool {
	if o.f.NodeFaulty(v) || o.f.NodeFaulty(w) {
		return false
	}
	idx := o.m.Index(v)
	for _, dim := range pi {
		a, b := v[dim], w[dim]
		if a == b {
			continue
		}
		stride := o.m.Stride(dim)
		if !o.segmentClear(idx-int64(a)*stride, dim, a, b) {
			return false
		}
		idx += int64(b-a) * stride
	}
	return true
}

// segmentClear reports whether the route segment along dim from coordinate a
// to b (at the line identified by profile index p) avoids all node and link
// faults. On a torus the segment takes the minimal direction, breaking ties
// toward +.
func (o *Oracle) segmentClear(p int64, dim, a, b int) bool {
	nodes := o.nodeIdx[dim][p]
	if !o.m.Torus() {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if anyIn(nodes, lo, hi) {
			return false
		}
		if b > a {
			return !anyIn(o.posLink[dim][p], a, b-1)
		}
		return !anyIn(o.negLink[dim][p], b+1, a)
	}
	n := o.m.Width(dim)
	dpos := ((b-a)%n + n) % n
	if dpos <= n-dpos { // + direction (ties go +)
		if anyInCircular(nodes, a, b, n) {
			return false
		}
		return !anyInCircular(o.posLink[dim][p], a, mod(b-1, n), n)
	}
	// - direction: nodes visited are a, a-1, ..., b; tails of -links used
	// are a, a-1, ..., b+1.
	if anyInCircular(nodes, b, a, n) {
		return false
	}
	return !anyInCircular(o.negLink[dim][p], mod(b+1, n), a, n)
}

// anyIn reports whether the sorted list has a value in [lo, hi].
func anyIn(sorted []int, lo, hi int) bool {
	if len(sorted) == 0 || lo > hi {
		return false
	}
	i := sort.SearchInts(sorted, lo)
	return i < len(sorted) && sorted[i] <= hi
}

// anyInCircular reports whether the sorted list has a value in the circular
// range from lo to hi (inclusive, walking in the + direction, mod n).
func anyInCircular(sorted []int, lo, hi, n int) bool {
	if len(sorted) == 0 {
		return false
	}
	if lo <= hi {
		return anyIn(sorted, lo, hi)
	}
	return anyIn(sorted, lo, n-1) || anyIn(sorted, 0, hi)
}

func mod(x, n int) int { return ((x % n) + n) % n }

// ReachableSetOne returns, indexed by linear node index, whether each node of
// the mesh is (F,pi)-reachable from v. This is the O(N d log f) reference
// used by tests and by the generic-topology path; the production algorithm
// never enumerates N nodes.
func (o *Oracle) ReachableSetOne(pi Order, v mesh.Coord) []bool {
	out := make([]bool, o.m.Nodes())
	if o.f.NodeFaulty(v) {
		return out
	}
	o.m.ForEachNode(func(w mesh.Coord) {
		out[o.m.Index(w)] = o.ReachOne(pi, v, w)
	})
	return out
}

// ReachK reports whether w is (k,F,pi-vector)-reachable from v
// (Definition 2.5(2)) by explicit dynamic programming over rounds. The cost
// is O(k N^2 d log f); it exists as a reference implementation for tests and
// small generic topologies.
func (o *Oracle) ReachK(orders MultiOrder, v, w mesh.Coord) bool {
	set := o.ReachKSet(orders, v)
	return set[o.m.Index(w)]
}

// ReachKSet returns, indexed by linear node index, whether each node is
// (k,F,pi-vector)-reachable from v. Reference implementation; O(k N^2)
// reachability queries.
func (o *Oracle) ReachKSet(orders MultiOrder, v mesh.Coord) []bool {
	cur := o.ReachableSetOne(orders[0], v)
	for t := 1; t < len(orders); t++ {
		next := make([]bool, o.m.Nodes())
		o.m.ForEachNode(func(u mesh.Coord) {
			if !cur[o.m.Index(u)] {
				return
			}
			uu := u.Clone()
			o.m.ForEachNode(func(w mesh.Coord) {
				i := o.m.Index(w)
				if !next[i] && o.ReachOne(orders[t], uu, w) {
					next[i] = true
				}
			})
		})
		cur = next
	}
	return cur
}
