package routing

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
)

// Path materializes the unique pi-ordered route from v to w as the full node
// sequence, starting at v and ending at w. On a torus each segment takes the
// minimal direction, ties toward +. The route is returned whether or not it
// is fault-free; use Oracle.ReachOne to test validity.
func Path(m *mesh.Mesh, pi Order, v, w mesh.Coord) []mesh.Coord {
	path := []mesh.Coord{v.Clone()}
	cur := v.Clone()
	for _, dim := range pi {
		a, b := cur[dim], w[dim]
		if a == b {
			continue
		}
		dir := 1
		if !m.Torus() {
			if b < a {
				dir = -1
			}
		} else {
			n := m.Width(dim)
			dpos := ((b-a)%n + n) % n
			if dpos > n-dpos {
				dir = -1
			}
		}
		for cur[dim] != b {
			next, ok := m.Neighbor(cur, dim, dir)
			if !ok {
				panic(fmt.Sprintf("routing: route from %v to %v fell off %v", v, w, m))
			}
			cur = next
			path = append(path, cur.Clone())
		}
	}
	return path
}

// PathK concatenates the per-round pi_t-routes through the given
// intermediate nodes: vias must have length k-1 for a k-round ordering. The
// result includes every node visited, once per visit (a node may repeat if
// rounds cross).
func PathK(m *mesh.Mesh, orders MultiOrder, v, w mesh.Coord, vias []mesh.Coord) []mesh.Coord {
	if len(vias) != len(orders)-1 {
		panic(fmt.Sprintf("routing: %d-round route needs %d intermediates, got %d",
			len(orders), len(orders)-1, len(vias)))
	}
	stops := make([]mesh.Coord, 0, len(orders)+1)
	stops = append(stops, v)
	stops = append(stops, vias...)
	stops = append(stops, w)
	var full []mesh.Coord
	for t := 0; t < len(orders); t++ {
		seg := Path(m, orders[t], stops[t], stops[t+1])
		if t > 0 {
			seg = seg[1:] // the round's start repeats the previous round's end
		}
		full = append(full, seg...)
	}
	return full
}

// CountTurns returns the number of times the path changes direction — the
// quantity the Blue Gene requirement (iv) of Section 1 asks to minimize. A
// 1-round dimension-ordered route has at most d-1 turns; a k-round route at
// most kd-1.
func CountTurns(path []mesh.Coord) int {
	turns := 0
	prevDim := -1
	for i := 1; i < len(path); i++ {
		dim := stepDim(path[i-1], path[i])
		if prevDim != -1 && dim != prevDim {
			turns++
		}
		prevDim = dim
	}
	return turns
}

// PathLen returns the number of hops (links traversed) in the path.
func PathLen(path []mesh.Coord) int { return len(path) - 1 }

func stepDim(a, b mesh.Coord) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// Route is a fault-free k-round route: the chosen intermediate nodes and the
// materialized node path.
type Route struct {
	Vias []mesh.Coord // k-1 intermediate nodes (round handoff points)
	Path []mesh.Coord // full node sequence from source to destination
}

// Hops returns the route length in links.
func (r *Route) Hops() int { return PathLen(r.Path) }

// Turns returns the number of direction changes on the route.
func (r *Route) Turns() int { return CountTurns(r.Path) }

// ChooseRoute picks a fault-free k-round route from v to w, using the
// heuristic the paper suggests (Section 2.1): among feasible intermediate
// nodes, choose one giving a shortest total route, breaking ties uniformly
// at random (rng may be nil for deterministic first-best). Only k = 1 and
// k = 2 are supported — the cases the paper simulates. Returns false if no
// fault-free route exists.
//
// The search enumerates candidate intermediates, so it costs O(N d log f);
// it serves traffic generation for the wormhole simulator, not the lamb
// algorithm (which never routes).
func ChooseRoute(o *Oracle, orders MultiOrder, v, w mesh.Coord, rng *rand.Rand) (*Route, bool) {
	m := o.Mesh()
	switch len(orders) {
	case 1:
		if !o.ReachOne(orders[0], v, w) {
			return nil, false
		}
		return &Route{Path: Path(m, orders[0], v, w)}, true
	case 2:
		bestLen := -1
		var best []mesh.Coord // tied best intermediates
		m.ForEachNode(func(u mesh.Coord) {
			if !o.ReachOne(orders[0], v, u) || !o.ReachOne(orders[1], u, w) {
				return
			}
			l := v.L1(u) + u.L1(w)
			if m.Torus() {
				l = len(Path(m, orders[0], v, u)) + len(Path(m, orders[1], u, w)) - 2
			}
			switch {
			case bestLen == -1 || l < bestLen:
				bestLen = l
				best = best[:0]
				best = append(best, u.Clone())
			case l == bestLen:
				best = append(best, u.Clone())
			}
		})
		if bestLen == -1 {
			return nil, false
		}
		via := best[0]
		if rng != nil {
			via = best[rng.Intn(len(best))]
		}
		return &Route{
			Vias: []mesh.Coord{via},
			Path: PathK(m, orders, v, w, []mesh.Coord{via}),
		}, true
	default:
		panic(fmt.Sprintf("routing: ChooseRoute supports 1 or 2 rounds, got %d", len(orders)))
	}
}
