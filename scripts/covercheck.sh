#!/usr/bin/env bash
# covercheck.sh — per-package statement coverage with a floor on the
# simulation layers.
#
# Runs `go test -cover` over every package, prints a per-package table
# (appended to $GITHUB_STEP_SUMMARY as Markdown when CI provides one), and
# fails if internal/mesh, internal/sim, internal/wormhole,
# internal/classtable, internal/server, internal/campaign, or
# internal/faultring — the packages this repo's topologies, experiments,
# the serving data plane, the reliability campaigns, and the bake-off
# baseline stand on — drop below the floor.
#
# Usage:
#   scripts/covercheck.sh           # default 70% floor
#   MIN_COVER=80 scripts/covercheck.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_COVER="${MIN_COVER:-70}"
GATED='lambmesh/internal/mesh lambmesh/internal/sim lambmesh/internal/wormhole lambmesh/internal/classtable lambmesh/internal/server lambmesh/internal/campaign lambmesh/internal/faultring'

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# One pass over all packages; test failures fail the script via pipefail.
go test -count=1 -cover ./... | tee "$TMP"

{
    echo "### Coverage"
    echo
    echo "| package | coverage |"
    echo "|---|---|"
    awk '$1 == "ok" {
        cov = "n/a"
        for (i = 2; i <= NF; i++)
            if ($i == "coverage:") cov = $(i+1)
        printf "| %s | %s |\n", $2, cov
    }' "$TMP"
} >>"${GITHUB_STEP_SUMMARY:-/dev/null}"

fail=0
for pkg in $GATED; do
    cov="$(awk -v p="$pkg" '$1 == "ok" && $2 == p {
        for (i = 2; i <= NF; i++)
            if ($i == "coverage:") { sub(/%$/, "", $(i+1)); print $(i+1) }
    }' "$TMP")"
    if [ -z "$cov" ]; then
        echo "covercheck: no coverage reported for $pkg" >&2
        fail=1
        continue
    fi
    if awk -v c="$cov" -v m="$MIN_COVER" 'BEGIN { exit !(c < m) }'; then
        echo "covercheck: $pkg coverage $cov% is below the $MIN_COVER% floor" >&2
        fail=1
    else
        echo "covercheck: $pkg coverage $cov% (floor $MIN_COVER%)" >&2
    fi
done
exit "$fail"
