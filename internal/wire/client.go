package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"
)

// Client is one connection speaking the binary route protocol. It is not
// safe for concurrent use; open one Client per goroutine (the protocol is
// cheap enough that connections are the unit of parallelism).
//
// The pipelined API is Send / Flush / Recv: responses arrive in request
// order, so a caller may issue many Sends before draining with Recvs.
// Route is the one-shot convenience wrapper.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	header  []byte
	payload []byte
	out     []byte
}

// Dial connects to a wire server. A zero timeout means no limit; a
// positive one bounds the dial and every subsequent Send/Recv.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	var (
		conn net.Conn
		err  error
	)
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (ownership transfers; Close
// closes it).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, connBufSize),
		bw:      bufio.NewWriterSize(conn, connBufSize),
		header:  make([]byte, HeaderLen),
		payload: make([]byte, 0, 256),
		out:     make([]byte, 0, 256),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Send enqueues one route request. The frame may sit in the client's
// buffer until Flush (or until the buffer fills).
func (c *Client) Send(src, dst []int) error {
	var err error
	if c.out, err = AppendRouteReq(c.out[:0], src, dst); err != nil {
		return err
	}
	_, err = c.bw.Write(c.out)
	return err
}

// Flush pushes every buffered request to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads the next response into ans (reusing ans.Via). A server error
// frame is returned as a Go error; the connection is then unusable.
func (c *Client) Recv(ans *Answer) error {
	if _, err := io.ReadFull(c.br, c.header); err != nil {
		return err
	}
	typ, n, err := parseHeader(c.header)
	if err != nil {
		return err
	}
	if cap(c.payload) < n {
		c.payload = make([]byte, n)
	}
	c.payload = c.payload[:n]
	if _, err := io.ReadFull(c.br, c.payload); err != nil {
		return err
	}
	switch typ {
	case TRouteResp:
		return ParseRouteResp(c.payload, ans)
	case TError:
		return fmt.Errorf("wire: server error: %s", c.payload)
	}
	return fmt.Errorf("wire: unexpected frame type %d", typ)
}

// Route sends one request and waits for its response.
func (c *Client) Route(src, dst []int, ans *Answer) error {
	if err := c.Send(src, dst); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	return c.Recv(ans)
}
