package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lambmesh/internal/wormhole"
)

func TestParseWidths(t *testing.T) {
	got, err := parseWidths("16x16")
	if err != nil || len(got) != 2 || got[0] != 16 || got[1] != 16 {
		t.Fatalf("parseWidths: %v %v", got, err)
	}
	got, err = parseWidths("8x4x2")
	if err != nil || len(got) != 3 || got[2] != 2 {
		t.Fatalf("parseWidths 3D: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "8x", "x8", "8y8", "a"} {
		if _, err := parseWidths(bad); err == nil {
			t.Errorf("parseWidths(%q) should fail", bad)
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates("0.01, 0.05,0.2")
	if err != nil || len(got) != 3 || got[1] != 0.05 {
		t.Fatalf("parseRates: %v %v", got, err)
	}
	if _, err := parseRates("0.01,oops"); err == nil {
		t.Fatal("parseRates should reject non-numeric entries")
	}
}

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.sweep || len(cfg.rates) != 1 || cfg.rates[0] != 0.02 {
		t.Fatalf("default mode should be a single 0.02 point: %+v", cfg)
	}
	if cfg.pattern != wormhole.PatternUniform || cfg.format != "table" {
		t.Fatalf("default pattern/format wrong: %+v", cfg)
	}
}

func TestParseConfigPatternSelection(t *testing.T) {
	for name, want := range map[string]wormhole.Pattern{
		"uniform":   wormhole.PatternUniform,
		"transpose": wormhole.PatternTranspose,
		"bitcomp":   wormhole.PatternBitComplement,
		"hotspot":   wormhole.PatternHotspot,
	} {
		cfg, err := parseConfig([]string{"-pattern", name})
		if err != nil {
			t.Fatalf("pattern %q: %v", name, err)
		}
		if cfg.pattern != want {
			t.Fatalf("pattern %q parsed as %v", name, cfg.pattern)
		}
	}
}

func TestParseConfigSweepRates(t *testing.T) {
	cfg, err := parseConfig([]string{"-sweep"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.rates) != len(defaultSweepRates) {
		t.Fatalf("-sweep without -rates should use the default ramp: %v", cfg.rates)
	}
	cfg, err = parseConfig([]string{"-sweep", "-rates", "0.01,0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.rates) != 2 || cfg.rates[1] != 0.1 {
		t.Fatalf("-rates not honored: %v", cfg.rates)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-pattern", "zipf"},             // unknown pattern
		{"-rate", "0"},                   // rate out of range (low)
		{"-rate", "1.5"},                 // rate out of range (high)
		{"-sweep", "-rates", "0.1,-0.2"}, // sweep rate out of range
		{"-sweep", "-rates", "abc"},      // unparsable rate
		{"-mesh", "16y16"},               // bad mesh spec
		{"-format", "xml"},               // unknown format
		{"-trials", "0"},                 // no trials
		{"-measure", "0"},                // empty window
		{"-strategy", "ecube"},           // unknown strategy
		{"-nosuchflag"},                  // flag package error path
	} {
		if _, err := parseConfig(args); err == nil {
			t.Errorf("parseConfig(%v) should fail", args)
		}
	}
}

// smallArgs keeps end-to-end runs fast: a tiny mesh and short windows.
func smallArgs(extra ...string) []string {
	return append([]string{
		"-mesh", "8x8", "-faults", "3", "-seed", "7",
		"-warmup", "50", "-measure", "150", "-trials", "2", "-packet", "4",
	}, extra...)
}

func runWormsim(t *testing.T, args []string) string {
	t.Helper()
	cfg, err := parseConfig(args)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunTableOutput(t *testing.T) {
	out := runWormsim(t, smallArgs())
	if !strings.Contains(out, "mesh M_2(8x8)") || !strings.Contains(out, "lamb") ||
		!strings.Contains(out, "baseline") {
		t.Fatalf("table output missing expected sections:\n%s", out)
	}
}

func TestRunCSVOutput(t *testing.T) {
	out := runWormsim(t, smallArgs("-sweep", "-rates", "0.01,0.05", "-format", "csv"))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 2 rates x 2 cases.
	if len(lines) != 5 {
		t.Fatalf("want 5 csv lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "case,rate,offered,accepted") {
		t.Fatalf("bad csv header: %q", lines[0])
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n != 10 {
			t.Fatalf("csv row has %d commas, want 10: %q", n, line)
		}
	}
	if !strings.HasPrefix(lines[1], "lamb,0.01,") || !strings.HasPrefix(lines[3], "baseline,0.01,") {
		t.Fatalf("csv rows out of order:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	out := runWormsim(t, smallArgs("-format", "json", "-baseline=false"))
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, out)
	}
	if rep.Mesh != "M_2(8x8)" || rep.Faults != 3 || len(rep.Rows) != 1 {
		t.Fatalf("unexpected json report: %+v", rep)
	}
	if rep.Rows[0].Case != "lamb" || rep.Rows[0].Delivered != 1 {
		t.Fatalf("light-load lamb row should deliver everything: %+v", rep.Rows[0])
	}
}

// TestRunByteIdenticalAcrossWorkers is the CLI half of the determinism
// acceptance criterion: same seed, different -workers, same bytes.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	var outs []string
	for _, workers := range []string{"1", "2", "4"} {
		outs = append(outs, runWormsim(t,
			smallArgs("-sweep", "-rates", "0.01,0.08", "-format", "csv", "-workers", workers)))
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("output differs across -workers:\n%q\n%q\n%q", outs[0], outs[1], outs[2])
	}
}

// TestRunStrategyReport checks the -strategy path end to end: the JSON
// report carries the strategy name, rows are labeled with it, and the ring
// strategy errors out rather than running with fewer VCs than its
// discipline needs.
func TestRunStrategyReport(t *testing.T) {
	out := runWormsim(t, smallArgs("-strategy", "adaptive", "-format", "json", "-baseline=false"))
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, out)
	}
	if rep.Strategy != "adaptive" || len(rep.Rows) != 1 || rep.Rows[0].Case != "adaptive" {
		t.Fatalf("strategy report mislabeled: %+v", rep)
	}
	if rep.Lambs != 0 {
		t.Fatalf("strategy report should not count lambs: %+v", rep)
	}

	cfg, err := parseConfig(smallArgs("-strategy", "ring", "-vcs", "1"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err == nil || !strings.Contains(err.Error(), "at least 2 VCs") {
		t.Fatalf("ring with 1 VC should be rejected, got %v", err)
	}
}

// TestRunStrategyByteIdenticalAcrossWorkers extends the CLI determinism
// check to the strategy data planes.
func TestRunStrategyByteIdenticalAcrossWorkers(t *testing.T) {
	for _, strategy := range []string{"ring", "adaptive"} {
		var outs []string
		for _, workers := range []string{"1", "4"} {
			outs = append(outs, runWormsim(t, smallArgs(
				"-strategy", strategy, "-sweep", "-rates", "0.01,0.08",
				"-format", "csv", "-workers", workers)))
		}
		if outs[0] != outs[1] {
			t.Fatalf("%s output differs across -workers:\n%q\n%q", strategy, outs[0], outs[1])
		}
	}
}

func TestRunSweepSaturates(t *testing.T) {
	out := runWormsim(t, smallArgs("-sweep", "-rates", "0.005,0.3", "-format", "csv", "-baseline=false"))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 csv lines:\n%s", out)
	}
	if !strings.Contains(lines[1], ",false,") {
		t.Fatalf("light rate should not be saturated: %q", lines[1])
	}
	if !strings.Contains(lines[2], ",true,") {
		t.Fatalf("0.3 packets/node/cycle should saturate: %q", lines[2])
	}
}
