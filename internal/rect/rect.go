// Package rect implements rectangular node sets — the "rectangular
// abbreviations" of Section 6.1 of Ho & Stockmeyer (IPDPS 2002). A
// rectangular set is written in the paper as, e.g., (*, [l,r], c): each
// coordinate is either unconstrained (*), an interval, or a constant. Here
// every coordinate is an inclusive interval; * and constants are the
// degenerate cases [0, n-1] and [c, c].
//
// The SES/DES partition algorithm emits only sets of the special shapes
// (*,...,*,[l,r],c,...,c) and (c,...,c,[l,r],*,...,*), but the type is
// general: intersections of an SES with a DES (needed by the general-graph
// reduction of Section 6.3.2) are arbitrary boxes.
package rect

import (
	"fmt"
	"strings"

	"lambmesh/internal/mesh"
)

// Interval is an inclusive range [Lo, Hi] of coordinate values.
type Interval struct {
	Lo, Hi int
}

// Len returns the number of values in the interval (0 if empty).
func (iv Interval) Len() int {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int) bool { return iv.Lo <= v && v <= iv.Hi }

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: max(iv.Lo, o.Lo), Hi: min(iv.Hi, o.Hi)}
}

// Rect is a d-dimensional box of nodes: the cartesian product of one
// interval per dimension. An empty interval in any dimension makes the whole
// box empty.
type Rect []Interval

// Full returns the box covering every node of m.
func Full(m *mesh.Mesh) Rect {
	r := make(Rect, m.Dims())
	for i := range r {
		r[i] = Interval{0, m.Width(i) - 1}
	}
	return r
}

// Point returns the single-node box {c}.
func Point(c mesh.Coord) Rect {
	r := make(Rect, len(c))
	for i, v := range c {
		r[i] = Interval{v, v}
	}
	return r
}

// Clone returns an independent copy.
func (r Rect) Clone() Rect { return append(Rect(nil), r...) }

// Size returns the number of nodes in the box.
func (r Rect) Size() int64 {
	n := int64(1)
	for _, iv := range r {
		n *= int64(iv.Len())
	}
	return n
}

// Empty reports whether the box has no nodes.
func (r Rect) Empty() bool { return r.Size() == 0 }

// Contains reports whether node c lies in the box.
func (r Rect) Contains(c mesh.Coord) bool {
	if len(c) != len(r) {
		return false
	}
	for i, iv := range r {
		if !iv.Contains(c[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of two boxes (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	if len(r) != len(o) {
		panic("rect: dimension mismatch")
	}
	out := make(Rect, len(r))
	for i := range r {
		out[i] = r[i].Intersect(o[i])
	}
	return out
}

// IntersectionSize returns |r ∩ o| in O(d) time without materializing the
// intersection box.
func (r Rect) IntersectionSize(o Rect) int64 {
	if len(r) != len(o) {
		panic("rect: dimension mismatch")
	}
	n := int64(1)
	for i := range r {
		lo := max(r[i].Lo, o[i].Lo)
		hi := min(r[i].Hi, o[i].Hi)
		if hi < lo {
			return 0
		}
		n *= int64(hi - lo + 1)
	}
	return n
}

// Intersects reports whether two boxes share a node, in O(d) time without
// materializing the intersection (the intersection-matrix test of
// Section 6.2).
func (r Rect) Intersects(o Rect) bool {
	if len(r) != len(o) {
		panic("rect: dimension mismatch")
	}
	for i := range r {
		if max(r[i].Lo, o[i].Lo) > min(r[i].Hi, o[i].Hi) {
			return false
		}
	}
	return true
}

// MinCorner returns the lexicographically smallest node of the box. Panics
// if the box is empty.
func (r Rect) MinCorner() mesh.Coord {
	if r.Empty() {
		panic("rect: MinCorner of empty box")
	}
	c := make(mesh.Coord, len(r))
	for i, iv := range r {
		c[i] = iv.Lo
	}
	return c
}

// ForEach calls fn for every node of the box in lexicographic order (first
// dimension fastest). The Coord is reused between calls.
func (r Rect) ForEach(fn func(c mesh.Coord)) {
	if r.Empty() {
		return
	}
	c := r.MinCorner()
	for {
		fn(c)
		i := 0
		for ; i < len(c); i++ {
			c[i]++
			if c[i] <= r[i].Hi {
				break
			}
			c[i] = r[i].Lo
		}
		if i == len(c) {
			return
		}
	}
}

// All reports whether pred holds for every node of the box, stopping at the
// first failure. An empty box satisfies All vacuously.
func (r Rect) All(pred func(c mesh.Coord) bool) bool {
	if r.Empty() {
		return true
	}
	c := r.MinCorner()
	for {
		if !pred(c) {
			return false
		}
		i := 0
		for ; i < len(c); i++ {
			c[i]++
			if c[i] <= r[i].Hi {
				break
			}
			c[i] = r[i].Lo
		}
		if i == len(c) {
			return true
		}
	}
}

// Nodes materializes the box as a coordinate list. Intended for tests and
// small sets; prefer ForEach elsewhere.
func (r Rect) Nodes() []mesh.Coord {
	out := make([]mesh.Coord, 0, r.Size())
	r.ForEach(func(c mesh.Coord) { out = append(out, c.Clone()) })
	return out
}

// Permute returns the box with dimensions reordered so that output dimension
// i is input dimension perm[i]. It is the inverse companion of coordinate
// permutation used to reduce general dimension-ordered routings to the
// ascending order.
func (r Rect) Permute(perm []int) Rect {
	out := make(Rect, len(r))
	for i, p := range perm {
		out[i] = r[p]
	}
	return out
}

// String renders the box in the paper's style against mesh m, writing "*"
// for a full dimension and a bare constant for a single value, e.g.
// "(*,[2,5],7)".
func (r Rect) StringIn(m *mesh.Mesh) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, iv := range r {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case iv.Lo == 0 && iv.Hi == m.Width(i)-1:
			b.WriteByte('*')
		case iv.Lo == iv.Hi:
			fmt.Fprintf(&b, "%d", iv.Lo)
		default:
			fmt.Fprintf(&b, "[%d,%d]", iv.Lo, iv.Hi)
		}
	}
	b.WriteByte(')')
	return b.String()
}

func (r Rect) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, iv := range r {
		if i > 0 {
			b.WriteByte(',')
		}
		if iv.Lo == iv.Hi {
			fmt.Fprintf(&b, "%d", iv.Lo)
		} else {
			fmt.Fprintf(&b, "[%d,%d]", iv.Lo, iv.Hi)
		}
	}
	b.WriteByte(')')
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
