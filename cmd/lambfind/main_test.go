package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func TestParseMesh(t *testing.T) {
	m, err := parseMesh("12x8", false)
	if err != nil || m.Dims() != 2 || m.Width(0) != 12 || m.Width(1) != 8 {
		t.Fatalf("parseMesh: %v %v", m, err)
	}
	tor, err := parseMesh("5x5", true)
	if err != nil || !tor.Torus() {
		t.Fatalf("torus parse: %v %v", tor, err)
	}
	for _, bad := range []string{"", "ax3", "3x", "1x5"} {
		if _, err := parseMesh(bad, false); err == nil {
			t.Errorf("parseMesh(%q) should fail", bad)
		}
	}
}

func TestLoadFaultsInline(t *testing.T) {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	if err := loadFaults(f, "(9,1);(11,6); # comment", ""); err != nil {
		t.Fatal(err)
	}
	if f.NumNodeFaults() != 2 {
		t.Errorf("loaded %d faults", f.NumNodeFaults())
	}
	if err := loadFaults(f, "(99,0)", ""); err == nil {
		t.Error("out-of-mesh fault should fail")
	}
	if err := loadFaults(f, "nope", ""); err == nil {
		t.Error("junk should fail")
	}
}

func TestLoadFaultsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faults.txt")
	if err := os.WriteFile(path, []byte("# header\n3,4\n\n(5,6)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	if err := loadFaults(f, "", path); err != nil {
		t.Fatal(err)
	}
	if f.NumNodeFaults() != 2 || !f.NodeFaulty(mesh.C(3, 4)) || !f.NodeFaulty(mesh.C(5, 6)) {
		t.Errorf("file faults wrong: %v", f.SortedNodeFaults())
	}
	if err := loadFaults(f, "", filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should fail")
	}
}

// -workers must not change the lamb set: workers=2 (and 0 = all CPUs) give
// exactly the nodes workers=1 gives, for every mesh algorithm.
func TestWorkersFlagSameLambSet(t *testing.T) {
	m := mesh.MustNew(16, 16)
	f := mesh.RandomNodeFaults(m, 12, rand.New(rand.NewSource(42)))
	orders := routing.UniformAscending(2, 2)
	for _, algo := range []string{"lamb1", "lamb2", "exact"} {
		base, err := computeLamb(core.NewSolver(), f, orders, algo, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", algo, err)
		}
		for _, workers := range []int{2, 0} {
			got, err := computeLamb(core.NewSolver(), f, orders, algo, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo, workers, err)
			}
			if !reflect.DeepEqual(got.Lambs, base.Lambs) {
				t.Errorf("%s: workers=%d lamb set %v != workers=1 %v",
					algo, workers, got.Lambs, base.Lambs)
			}
		}
	}
}

func TestComputeLambUnknownAlgo(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	if _, err := computeLamb(core.NewSolver(), f, routing.UniformAscending(2, 2), "nope", 1); err == nil {
		t.Error("unknown algo should fail")
	}
}

func TestPct(t *testing.T) {
	if pct(1, 0) != 0 {
		t.Error("pct with zero denominator")
	}
	if pct(1, 2) != 50 {
		t.Error("pct wrong")
	}
}
