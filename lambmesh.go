// Package lambmesh is a Go implementation of the fault-tolerant wormhole
// routing method of Ho & Stockmeyer, "A New Approach to Fault-Tolerant
// Wormhole Routing for Mesh-Connected Parallel Computers" (IPDPS 2002).
//
// Instead of routing around faults, the method sacrifices a few good nodes
// — "lambs" — that keep forwarding traffic but no longer send or receive.
// Lambs are chosen so that every remaining good node (a "survivor") can
// reach every other in k rounds of deterministic, deadlock-free
// dimension-ordered routing, using only k virtual channels (k = 2 in the
// Blue Gene setting that motivated the paper).
//
// Quick start:
//
//	m, _ := lambmesh.NewMesh(32, 32, 32)
//	faults := lambmesh.NewFaultSet(m)
//	faults.AddNode(lambmesh.C(9, 1, 4))
//	res, _ := lambmesh.FindLambSet(faults, lambmesh.TwoRoundXYZ())
//	fmt.Println(res.Lambs) // nodes to demote to pure routers
//
// The heavy lifting lives in the internal packages: internal/partition
// (SES/DES partitions), internal/reach (k-round reachability matrices),
// internal/vcover + internal/maxflow (weighted vertex cover), internal/core
// (the Lamb1/Lamb2 reductions), internal/wormhole (a flit-level network
// simulator), internal/blockfault (the fault-ring baseline), and
// internal/analysis + internal/sim (the paper's bounds and every
// table/figure experiment). This package re-exports the public workflow.
package lambmesh

import (
	"io"
	"math/rand"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// Core topology types.
type (
	// Mesh is a d-dimensional mesh, torus, or hypercube grid.
	Mesh = mesh.Mesh
	// Topology abstracts a network family (mesh, torus, hypercube, full
	// mesh) behind neighbor enumeration, channel indexing, canonical base
	// paths, and a serialization tag.
	Topology = mesh.Topology
	// FullMesh is the complete network K_N (every pair directly linked).
	FullMesh = mesh.FullMesh
	// Coord is a node position.
	Coord = mesh.Coord
	// Link is a directed link between neighboring nodes.
	Link = mesh.Link
	// FaultSet is a set of faulty nodes and directed links.
	FaultSet = mesh.FaultSet
)

// Routing types.
type (
	// Order is a 1-round dimension ordering (a permutation of dimensions).
	Order = routing.Order
	// MultiOrder is a k-round ordering, one Order per round.
	MultiOrder = routing.MultiOrder
	// Oracle answers fault-avoiding reachability queries.
	Oracle = routing.Oracle
	// Route is a fault-free k-round route with chosen intermediates.
	Route = routing.Route
)

// Lamb computation types.
type (
	// Result is a computed lamb set with statistics.
	Result = core.Result
	// Stats carries partition and cover sizes.
	Stats = core.Stats
	// Option customizes a computation (values, predetermined lambs).
	Option = core.Option
	// WVCMode selects the vertex-cover solver for the general reduction.
	WVCMode = core.WVCMode
	// GenericProblem is the topology-agnostic lamb problem of Section 7.
	GenericProblem = core.GenericProblem
	// GenericResult is its solution over integer node ids.
	GenericResult = core.GenericResult
	// Reconfigurer drives the roll-back/reconfigure loop of Section 1.
	Reconfigurer = core.Reconfigurer
	// Solver owns reusable scratch for repeated lamb computations.
	Solver = core.Solver
)

// WVC solver modes for FindLambSetGeneral.
const (
	ApproxWVC = core.ApproxWVC
	ExactWVC  = core.ExactWVC
)

// NewMesh returns the mesh M_d(widths...).
func NewMesh(widths ...int) (*Mesh, error) { return mesh.New(widths...) }

// NewTorus returns the torus with wrap-around links.
func NewTorus(widths ...int) (*Mesh, error) { return mesh.NewTorus(widths...) }

// NewCube returns M_d(n), all widths equal (a hypercube when n = 2).
func NewCube(d, n int) (*Mesh, error) { return mesh.NewCube(d, n) }

// NewHypercube returns the binary hypercube Q_d (widths all 2, serialized
// under the "hypercube" tag).
func NewHypercube(d int) (*Mesh, error) { return mesh.NewHypercube(d) }

// NewFullMesh returns the complete network K_n.
func NewFullMesh(n int) (*FullMesh, error) { return mesh.NewFullMesh(n) }

// TopologyNames lists the topology serialization tags ("mesh", "torus",
// "hypercube", "fullmesh") in CLI-flag order.
func TopologyNames() []string { return mesh.TopologyNames() }

// NewFaultSet returns an empty fault set for m.
func NewFaultSet(m *Mesh) *FaultSet { return mesh.NewFaultSet(m) }

// NewFaultSetOn returns an empty fault set living on any topology; link
// validation follows the topology's LinkHead.
func NewFaultSetOn(t Topology) *FaultSet { return mesh.NewFaultSetOn(t) }

// RandomNodeFaults draws count distinct random node faults.
func RandomNodeFaults(m *Mesh, count int, rng *rand.Rand) *FaultSet {
	return mesh.RandomNodeFaults(m, count, rng)
}

// C builds a coordinate: C(1,2,3).
func C(vs ...int) Coord { return mesh.C(vs...) }

// ParseCoord parses "x,y,z" or "(x,y,z)".
func ParseCoord(s string) (Coord, error) { return mesh.ParseCoord(s) }

// Ascending returns the e-cube ordering (0,1,...,d-1): XY in 2D, XYZ in 3D.
func Ascending(d int) Order { return routing.Ascending(d) }

// Uniform returns k rounds of the same ordering.
func Uniform(o Order, k int) MultiOrder { return routing.Uniform(o, k) }

// UniformAscending returns k rounds of the ascending ordering.
func UniformAscending(d, k int) MultiOrder { return routing.UniformAscending(d, k) }

// TwoRoundXY is the paper's 2D simulation configuration: XYXY.
func TwoRoundXY() MultiOrder { return routing.UniformAscending(2, 2) }

// TwoRoundXYZ is the paper's 3D configuration: XYZXYZ.
func TwoRoundXYZ() MultiOrder { return routing.UniformAscending(3, 2) }

// NewOracle indexes a fault set for O(d log f) reachability queries.
func NewOracle(f *FaultSet) *Oracle { return routing.NewOracle(f) }

// ChooseRoute picks a fault-free k-round route (k <= 2), shortest first,
// ties broken by rng (nil for deterministic).
func ChooseRoute(o *Oracle, orders MultiOrder, src, dst Coord, rng *rand.Rand) (*Route, bool) {
	return routing.ChooseRoute(o, orders, src, dst, rng)
}

// FindLambSet runs Lamb1 (Section 6.3.1): the production algorithm — exact
// bipartite WVC via min-cut, guaranteed within twice the minimum lamb set,
// in time O(k d^3 f^3 + |lambs|) independent of the mesh size.
func FindLambSet(f *FaultSet, orders MultiOrder, opts ...Option) (*Result, error) {
	return core.Lamb1(f, orders, opts...)
}

// NewSolver returns a reusable Solver: it owns the scratch memory of the
// whole lamb pipeline, so callers computing lamb sets repeatedly (per fault
// epoch, per trial) should hold one per goroutine and call its
// Lamb1/Lamb2/ExactLamb methods. Results are byte-identical to the one-shot
// functions; only the allocation behavior differs.
func NewSolver() *Solver { return core.NewSolver() }

// FindLambSetGeneral runs Lamb2 (Section 6.3.2): the general-graph
// reduction. With ExactWVC the result is a minimum lamb set (exponential
// worst case); with ApproxWVC a linear-time 2-approximation.
func FindLambSetGeneral(f *FaultSet, orders MultiOrder, mode WVCMode, opts ...Option) (*Result, error) {
	return core.Lamb2(f, orders, mode, opts...)
}

// FindOptimalLambSet returns a minimum-size lamb set (Corollary 6.10).
// Exponential worst-case time; use for small fault sets and validation.
func FindOptimalLambSet(f *FaultSet, orders MultiOrder, opts ...Option) (*Result, error) {
	return core.ExactLamb(f, orders, opts...)
}

// FindLambSetGeneric solves the lamb problem on an arbitrary finite
// topology from its 1-round reachability relation (Section 7). O(k N^2).
func FindLambSetGeneric(p *GenericProblem) (*GenericResult, error) {
	return core.GenericLamb(p)
}

// FindLambSetTorus solves the lamb problem on a torus (or mesh) through
// the generic machinery, using dimension-ordered routing with minimal
// wrap-around direction per hop.
func FindLambSetTorus(f *FaultSet, orders MultiOrder) (*Result, error) {
	return core.TorusLamb(f, orders)
}

// VerifyLambSet checks Definition 2.6 through the SES/DES algebra in time
// polynomial in the number of faults.
func VerifyLambSet(f *FaultSet, orders MultiOrder, lambs []Coord) error {
	return core.VerifyLambSet(f, orders, lambs)
}

// NewReconfigurer starts the roll-back/reconfigure loop (Section 1): fold
// in newly detected faults with AddFaults and get a fresh verified lamb set
// each generation. With keepLambs, lamb sets only grow (old lambs persist
// unless they fail outright).
func NewReconfigurer(m *Mesh, orders MultiOrder, keepLambs bool) (*Reconfigurer, error) {
	return core.NewReconfigurer(m, orders, keepLambs)
}

// NewGenericReconfigurer is the reconfiguration loop over the generic
// (TorusLamb) solve: it accepts tori, at O(k N^2) per generation instead of
// the rectangular pipeline's fault-polynomial cost.
func NewGenericReconfigurer(m *Mesh, orders MultiOrder, keepLambs bool) (*Reconfigurer, error) {
	return core.NewGenericReconfigurer(m, orders, keepLambs)
}

// WriteFaults serializes a fault set in the line-oriented lambmesh fault
// format ("mesh 12x12" / "node 9,1" / "link 1,1 0 +1"). The format is what
// cmd/lambfind's -fault-file and cmd/lambd's -load consume, so fault
// configurations round-trip between diagnostics runs and the daemon.
func WriteFaults(w io.Writer, f *FaultSet) error { return mesh.WriteFaults(w, f) }

// ReadFaults parses the WriteFaults format, reconstructing the mesh and
// its fault set.
func ReadFaults(r io.Reader) (*FaultSet, error) { return mesh.ReadFaults(r) }

// WithValues, WithPredetermined, and WithReachability are the Section 7
// extensions; see internal/core for semantics.
func WithValues(values map[int64]int64) Option { return core.WithValues(values) }

// WithPredetermined forces the given good nodes into the lamb set.
func WithPredetermined(nodes []Coord) Option { return core.WithPredetermined(nodes) }

// WithReachability retains the SES/DES partitions and matrices on the
// Result for inspection.
func WithReachability() Option { return core.WithReachability() }

// WithSweepReachability switches R^(k) computation to the footnote-7
// spanning-tree sweep, O(k d^2 f N) — preferable when f is large relative
// to the mesh size. The lamb set is identical.
func WithSweepReachability() Option { return core.WithSweepReachability() }

// WithWorkers bounds the worker pool the reachability kernels run on;
// n <= 0 (the default) means all CPUs. The lamb set is bit-identical for
// any worker count — the knob only trades wall-clock time for CPU share.
func WithWorkers(n int) Option { return core.WithWorkers(n) }
