package partition

import (
	"fmt"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// Validate checks that p is a correct SES (or DES) partition for the fault
// set behind the oracle: the sets are pairwise disjoint, they cover exactly
// the good nodes, every set member is good, each representative belongs to
// its set, and every set satisfies the equivalence property of
// Definition 4.1 (checked against the reachability oracle by comparing each
// member's reachability vector with the representative's).
//
// Cost is O(|good nodes| * N) oracle queries — this is a reference checker
// for tests and small meshes, not part of the production algorithm.
func Validate(p *Partition, o *routing.Oracle) error {
	m := o.Mesh()
	f := o.Faults()
	covered := make([]bool, m.Nodes())
	for si, s := range p.Sets {
		if s.Rect.Empty() {
			return fmt.Errorf("%v set %d is empty", p.Kind, si)
		}
		if !s.Rect.Contains(s.Rep) {
			return fmt.Errorf("%v set %d: representative %v outside %v", p.Kind, si, s.Rep, s.Rect)
		}
		var err error
		s.Rect.ForEach(func(c mesh.Coord) {
			if err != nil {
				return
			}
			if f.NodeFaulty(c) {
				err = fmt.Errorf("%v set %d contains faulty node %v", p.Kind, si, c)
				return
			}
			idx := m.Index(c)
			if covered[idx] {
				err = fmt.Errorf("%v sets overlap at %v", p.Kind, c)
				return
			}
			covered[idx] = true
		})
		if err != nil {
			return err
		}
	}
	var nGood int64
	m.ForEachNode(func(c mesh.Coord) {
		if covered[m.Index(c)] != !f.NodeFaulty(c) {
			nGood = -1
		}
	})
	if nGood == -1 {
		return fmt.Errorf("%v partition does not cover exactly the good nodes", p.Kind)
	}
	// Equivalence property, per set, against the representative.
	for si, s := range p.Sets {
		repVec := profileOf(o, p, s.Rep)
		var err error
		s.Rect.ForEach(func(c mesh.Coord) {
			if err != nil {
				return
			}
			vec := profileOf(o, p, c.Clone())
			for i := range vec {
				if vec[i] != repVec[i] {
					err = fmt.Errorf("%v set %d (%v): member %v and rep %v disagree on node %v",
						p.Kind, si, s.Rect, c, s.Rep, m.CoordOf(int64(i)))
					return
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// profileOf returns the reachability vector that defines equivalence: as a
// source for SES partitions, as a destination for DES partitions.
func profileOf(o *routing.Oracle, p *Partition, c mesh.Coord) []bool {
	m := o.Mesh()
	out := make([]bool, m.Nodes())
	if p.Kind == Source {
		return o.ReachableSetOne(p.Order, c)
	}
	m.ForEachNode(func(v mesh.Coord) {
		out[m.Index(v)] = o.ReachOne(p.Order, v, c)
	})
	return out
}

// ExactClasses computes the SEC (kind == Source) or DEC (kind ==
// Destination) partition of Remark 4.1 by brute force: good nodes are
// grouped by their full reachability vector. It returns the groups as node
// lists. O(N^2) oracle queries; reference only. The result is the unique
// minimum-size SES/DES partition, so len(ExactClasses(...)) lower-bounds any
// partition the algorithm produces.
func ExactClasses(o *routing.Oracle, pi routing.Order, kind Kind) [][]mesh.Coord {
	m := o.Mesh()
	f := o.Faults()
	groups := make(map[string][]mesh.Coord)
	var keys []string
	m.ForEachNode(func(c mesh.Coord) {
		if f.NodeFaulty(c) {
			return
		}
		var vec []bool
		if kind == Source {
			vec = o.ReachableSetOne(pi, c)
		} else {
			vec = make([]bool, m.Nodes())
			cc := c.Clone()
			m.ForEachNode(func(v mesh.Coord) {
				vec[m.Index(v)] = o.ReachOne(pi, v, cc)
			})
		}
		key := make([]byte, len(vec))
		for i, b := range vec {
			if b {
				key[i] = 1
			}
		}
		k := string(key)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], c.Clone())
	})
	out := make([][]mesh.Coord, 0, len(groups))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}
