package sim

import (
	"fmt"
	"math/rand"
	"time"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func init() {
	extraRegistry = append(extraRegistry,
		Experiment{ID: "increconf", Title: "incremental reconfiguration: AddFaults wall-clock vs fault-delta size, patch vs full pipeline", Weight: 10, Run: runIncReconfig},
	)
}

// runIncReconfig measures what the incremental AddFaults path buys: the
// wall-clock stall of folding a delta-sized fault batch into a warm
// Reconfigurer, against recomputing the identical configuration from
// scratch (IncrementalThreshold disabled). The solver rows time AddFaults
// in isolation at the Figure 17 data point; the live rows run the wormhole
// traffic engine through a mid-run fault event and report the recompute
// stall the event charged (EventRecovery.RecomputeTime) — the host-side
// latency a reconfiguration adds on top of the in-network recovery cycles.
// Both modes produce byte-identical lamb sets (pinned in internal/core);
// only the stall differs. Like abl-sptree, the table reports wall-clock,
// so renders are not comparable across runs.
func runIncReconfig(cfg Config) *Table {
	trials := scaledTrials(cfg, 10)
	t := &Table{ID: "increconf",
		Title: fmt.Sprintf("AddFaults stall, incremental patch vs full recompute (%d trials/point, mean wall-clock)", trials),
		Paper: "Section 1: reconfiguration cost depends on f, not N; monotone fault growth lets successive recomputes share almost all work",
		Columns: []string{"scenario", "delta", "incremental (us)", "full (us)", "speedup"},
	}

	// Solver rows: M_2(32) with a 31-fault base configuration. Each trial
	// rebuilds the warm generation outside the timed region, then times one
	// delta-sized AddFaults per mode.
	m := mesh.MustNew(32, 32)
	orders := routing.UniformAscending(2, 2)
	for _, delta := range []int{1, 4, 16} {
		var incSum, fullSum time.Duration
		for ti := 0; ti < trials; ti++ {
			rng := rand.New(rand.NewSource(par.TrialSeed(cfg.Seed, 0, ti)))
			all := mesh.RandomNodeFaults(m, 31+delta, rng).NodeFaults()
			seed, batch := all[:31], all[31:]
			incSum += timeAddFaults(m, orders, seed, batch, true)
			fullSum += timeAddFaults(m, orders, seed, batch, false)
		}
		addStallRow(t, "solver M_2(32) f=31", delta, incSum, fullSum, trials)
	}

	// Live rows: uniform traffic at rate 0.01 with 8 initial faults, a
	// 2-node event at the midpoint of the measurement window — the
	// worm-recovery scenario, instrumented for the recompute stall.
	for _, widths := range [][]int{{16, 16}, {8, 8, 8}} {
		lm := mesh.MustNew(widths...)
		var incSum, fullSum time.Duration
		for ti := 0; ti < trials; ti++ {
			incSum += liveRecomputeStall(lm, par.TrialSeed(cfg.Seed, 0, ti), true)
			fullSum += liveRecomputeStall(lm, par.TrialSeed(cfg.Seed, 0, ti), false)
		}
		addStallRow(t, fmt.Sprintf("live %v rate 0.01", lm), 2, incSum, fullSum, trials)
	}
	return t
}

func addStallRow(t *Table, scenario string, delta int, incSum, fullSum time.Duration, trials int) {
	incUS := float64(incSum.Microseconds()) / float64(trials)
	fullUS := float64(fullSum.Microseconds()) / float64(trials)
	speedup := "n/a"
	if incUS > 0 {
		speedup = fmt.Sprintf("%.1fx", fullUS/incUS)
	}
	t.AddRow(scenario, fmt.Sprint(delta),
		fmt.Sprintf("%.0f", incUS), fmt.Sprintf("%.0f", fullUS), speedup)
}

// timeAddFaults builds a Reconfigurer warm at the seed faults, then times
// folding the batch in — incrementally or, with the threshold disabled,
// through the full pipeline.
func timeAddFaults(m *mesh.Mesh, orders routing.MultiOrder, seed, batch []mesh.Coord, incremental bool) time.Duration {
	rec, err := core.NewReconfigurer(m, orders, false)
	if err != nil {
		panic(err)
	}
	rec.Workers = 1 // serial: the stall itself is what the row reports
	if !incremental {
		rec.IncrementalThreshold = 0
	}
	if _, err := rec.AddFaults(seed, nil); err != nil {
		panic(err)
	}
	start := time.Now()
	if _, err := rec.AddFaults(batch, nil); err != nil {
		panic(err)
	}
	return time.Since(start)
}

// liveRecomputeStall runs one live traffic trial with a scheduled 2-node
// event and returns the recompute stall the event charged.
func liveRecomputeStall(m *mesh.Mesh, seed int64, incremental bool) time.Duration {
	const warmup, measure = 200, 500
	rng := rand.New(rand.NewSource(seed))
	fs := mesh.RandomNodeFaults(m, 8, rng)
	orders := routing.UniformAscending(m.Dims(), 2)
	rec, err := core.NewReconfigurer(m, orders, true)
	if err != nil {
		panic(err)
	}
	rec.Workers = 1
	if !incremental {
		rec.IncrementalThreshold = 0
	}
	if _, err := rec.AddFaults(fs.NodeFaults(), nil); err != nil {
		panic(err)
	}
	// The event: two fresh node faults, drawn from the trial seed.
	var nodes []mesh.Coord
	for len(nodes) < 2 {
		c := m.CoordOf(rng.Int63n(m.Nodes()))
		dup := rec.Faults().NodeFaulty(c)
		for _, p := range nodes {
			dup = dup || p.Equal(c)
		}
		if !dup {
			nodes = append(nodes, c)
		}
	}
	o := routing.NewOracle(rec.Faults())
	packets, err := wormhole.GenerateWorkload(o, orders, rec.Lambs(), wormhole.WorkloadSpec{
		Pattern:     wormhole.PatternUniform,
		Rate:        0.01,
		PacketFlits: 8,
		Cycles:      warmup + measure,
	}, wormhole.DefaultConfig().VirtualChannels, rng)
	if err != nil {
		panic(err)
	}
	eng, err := wormhole.NewLiveEngine(wormhole.EngineConfig{
		Net:           wormhole.DefaultConfig(),
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		Nodes:         len(wormhole.Survivors(rec.Faults(), rec.Lambs())),
	}, wormhole.LiveConfig{
		Schedule:  wormhole.FaultSchedule{Events: []wormhole.FaultEvent{{Cycle: warmup + measure/2, Nodes: nodes}}},
		Reconf:    rec,
		Orders:    orders,
		RouteSeed: rng.Int63(),
	}, packets)
	if err != nil {
		panic(err)
	}
	res, err := eng.RunLive()
	if err != nil {
		panic(err)
	}
	var stall time.Duration
	for _, ev := range res.RecoveryEvents {
		stall += ev.RecomputeTime
	}
	return stall
}
