package campaign

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestWelfordMatchesBatch checks the streaming mean/variance against a
// naive two-pass recompute over the same data.
func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			// Mix of scales so numerical stability matters.
			xs[i] = rng.NormFloat64()*math.Pow(10, float64(rng.Intn(6)-3)) + 50
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		if math.Abs(w.Mean-mean) > 1e-9*math.Max(1, math.Abs(mean)) {
			t.Fatalf("trial %d: stream mean %v, batch %v", trial, w.Mean, mean)
		}
		if n >= 2 {
			v := m2 / float64(n-1)
			if math.Abs(w.Variance()-v) > 1e-6*math.Max(1, v) {
				t.Fatalf("trial %d: stream var %v, batch %v", trial, w.Variance(), v)
			}
		}
	}
}

// TestWelfordMergeMatchesBatch splits a stream at random points, folds each
// chunk separately, merges in order, and checks against the batch values.
func TestWelfordMergeMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 10
		}
		var merged Welford
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(n-lo)
			var chunk Welford
			for _, x := range xs[lo:hi] {
				chunk.Add(x)
			}
			merged.Merge(chunk)
			lo = hi
		}
		var whole Welford
		for _, x := range xs {
			whole.Add(x)
		}
		if merged.N != whole.N {
			t.Fatalf("trial %d: merged n %d, whole %d", trial, merged.N, whole.N)
		}
		if math.Abs(merged.Mean-whole.Mean) > 1e-9*math.Max(1, math.Abs(whole.Mean)) {
			t.Fatalf("trial %d: merged mean %v, whole %v", trial, merged.Mean, whole.Mean)
		}
		if math.Abs(merged.Variance()-whole.Variance()) > 1e-6*math.Max(1, whole.Variance()) {
			t.Fatalf("trial %d: merged var %v, whole %v", trial, merged.Variance(), whole.Variance())
		}
	}
}

// TestHistQuantiles checks histogram quantiles against exact order
// statistics: a log-binned estimate must land within one bin's relative
// width of the true value.
func TestHistQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(5000)
		xs := make([]float64, n)
		var h Hist
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64() * 3)
			h.Add(xs[i])
		}
		sort.Float64s(xs)
		binWidth := math.Pow(10, 1.0/histPerDecade) // multiplicative bin width
		for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
			idx := int(math.Ceil(q*float64(n))) - 1
			exact := xs[idx]
			est := h.Quantile(q)
			if est < exact/binWidth || est > exact*binWidth {
				t.Fatalf("trial %d q=%v: estimate %v outside one bin of exact %v", trial, q, est, exact)
			}
		}
	}
}

// TestHistZeroAndMerge covers the zero bin and exactness of merges.
func TestHistZeroAndMerge(t *testing.T) {
	var a, b, whole Hist
	vals := []float64{0, 0, 1, 2.5, 1000, 0.001, 0}
	for i, v := range vals {
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatalf("merged histogram differs from streamed: %+v vs %+v", a, whole)
	}
	if whole.Zero != 3 || whole.Count != int64(len(vals)) {
		t.Fatalf("zero/count wrong: %+v", whole)
	}
	if q := whole.Quantile(0.01); q != 0 {
		t.Fatalf("q0.01 should hit the zero bin, got %v", q)
	}
}

// TestWilson spot-checks the score interval.
func TestWilson(t *testing.T) {
	lo, hi := Wilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("no-data interval should be [0,1], got [%v,%v]", lo, hi)
	}
	// 0/10 successes: lo must be exactly 0, hi well above 0.
	lo, hi = Wilson(0, 10)
	if lo != 0 || hi < 0.2 || hi > 0.4 {
		t.Fatalf("Wilson(0,10) = [%v,%v], want [0, ~0.28]", lo, hi)
	}
	// 50/100: symmetric around 0.5, roughly ±0.098.
	lo, hi = Wilson(50, 100)
	if math.Abs(lo-0.4038) > 0.005 || math.Abs(hi-0.5962) > 0.005 {
		t.Fatalf("Wilson(50,100) = [%v,%v]", lo, hi)
	}
	// Interval always contains the point estimate.
	for n := int64(1); n <= 30; n++ {
		for s := int64(0); s <= n; s++ {
			lo, hi := Wilson(s, n)
			p := float64(s) / float64(n)
			if p < lo-1e-12 || p > hi+1e-12 {
				t.Fatalf("Wilson(%d,%d) = [%v,%v] excludes %v", s, n, lo, hi, p)
			}
		}
	}
}

// TestPointAggMerge checks that PointAgg.Merge folds every member.
func TestPointAggMerge(t *testing.T) {
	var a, b PointAgg
	a.Trials, a.Connected = 3, 1
	a.Lambs.Add(2)
	a.LambHist.Add(2)
	a.Faults.Add(4)
	a.Recovery.Add(0.001)
	b.Trials, b.Connected = 2, 2
	b.Lambs.Add(0)
	b.LambHist.Add(0)
	b.Faults.Add(1)
	b.Recovery.Add(0.002)
	a.Merge(&b)
	if a.Trials != 5 || a.Connected != 3 {
		t.Fatalf("counts wrong after merge: %+v", a)
	}
	if a.Lambs.N != 2 || a.LambHist.Count != 2 || a.Faults.N != 2 || a.Recovery.N != 2 {
		t.Fatalf("accumulators not merged: %+v", a)
	}
	a.reset()
	if a != (PointAgg{}) {
		t.Fatalf("reset left state: %+v", a)
	}
}
