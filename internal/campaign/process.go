package campaign

import (
	"fmt"
	"math"

	"lambmesh/internal/mesh"
)

// Model selects what kind of component fails in a trial.
type Model int

const (
	ModelNode Model = iota // node (router+PE) faults only
	ModelLink              // directed link faults only
	ModelMixed             // each fault is a node or a link with equal odds
)

func (m Model) String() string {
	switch m {
	case ModelNode:
		return "node"
	case ModelLink:
		return "link"
	case ModelMixed:
		return "mixed"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// ParseModel parses a -model flag value.
func ParseModel(s string) (Model, error) {
	switch s {
	case "node":
		return ModelNode, nil
	case "link":
		return ModelLink, nil
	case "mixed":
		return ModelMixed, nil
	}
	return 0, fmt.Errorf("campaign: unknown fault model %q (node, link, mixed)", s)
}

// Process selects how the per-trial fault count is drawn.
type Process int

const (
	// ProcFixed draws exactly Count faults every trial — the paper's own
	// simulation fault process (Section 8).
	ProcFixed Process = iota
	// ProcMTBF models exponential lifetimes: over a mission of T hours a
	// component with mean time between failures Theta fails with
	// p = 1 - exp(-T/Theta), independently; the trial's fault count is
	// Binomial(N, p).
	ProcMTBF
	// ProcWeibull models Weibull lifetimes with scale Eta and shape Beta:
	// p = 1 - exp(-(T/Eta)^Beta). Beta > 1 captures wear-out, Beta < 1
	// infant mortality; Beta = 1 reduces to ProcMTBF.
	ProcWeibull
)

func (p Process) String() string {
	switch p {
	case ProcFixed:
		return "fixed"
	case ProcMTBF:
		return "mtbf"
	case ProcWeibull:
		return "weibull"
	}
	return fmt.Sprintf("process(%d)", int(p))
}

// ProcSpec is one fault process of the campaign grid.
type ProcSpec struct {
	Proc Process `json:"proc"`
	// Count is the exact per-trial fault count (ProcFixed only).
	Count int `json:"count,omitempty"`
	// Mission is the mission length T in hours (ProcMTBF, ProcWeibull).
	Mission float64 `json:"mission,omitempty"`
	// Theta is the MTBF in hours (ProcMTBF).
	Theta float64 `json:"theta,omitempty"`
	// Eta and Beta are the Weibull scale (hours) and shape (ProcWeibull).
	Eta  float64 `json:"eta,omitempty"`
	Beta float64 `json:"beta,omitempty"`
}

func (ps ProcSpec) String() string {
	switch ps.Proc {
	case ProcFixed:
		return fmt.Sprintf("fixed(f=%d)", ps.Count)
	case ProcMTBF:
		return fmt.Sprintf("mtbf(T=%g,theta=%g)", ps.Mission, ps.Theta)
	case ProcWeibull:
		return fmt.Sprintf("weibull(T=%g,eta=%g,beta=%g)", ps.Mission, ps.Eta, ps.Beta)
	}
	return ps.Proc.String()
}

// FailProb returns the per-component failure probability over the mission.
func (ps ProcSpec) FailProb() (float64, error) {
	switch ps.Proc {
	case ProcFixed:
		return 0, fmt.Errorf("campaign: fixed process has no failure probability")
	case ProcMTBF:
		if ps.Theta <= 0 || ps.Mission < 0 {
			return 0, fmt.Errorf("campaign: mtbf needs theta > 0 and mission >= 0")
		}
		return 1 - math.Exp(-ps.Mission/ps.Theta), nil
	case ProcWeibull:
		if ps.Eta <= 0 || ps.Beta <= 0 || ps.Mission < 0 {
			return 0, fmt.Errorf("campaign: weibull needs eta, beta > 0 and mission >= 0")
		}
		return 1 - math.Exp(-math.Pow(ps.Mission/ps.Eta, ps.Beta)), nil
	}
	return 0, fmt.Errorf("campaign: unknown process %v", ps.Proc)
}

// sampler draws the per-trial fault count for one grid point in O(log n)
// with zero allocation: the Binomial(N, p) inverse CDF is precomputed once
// per point (the batch amortization), and each trial spends one uniform on
// a binary search of it.
type sampler struct {
	fixed int // ProcFixed: the constant count (cum/counts empty)
	// counts[i] is a fault count, cum[i] the CDF up to and including it.
	// Only the numerically relevant window around the mean is tabulated.
	counts []int
	cum    []float64
}

// maxTruncTail is the largest Binomial tail mass the maxCount cap may
// silently absorb — at most one trial in ten thousand draws the capped
// count instead of its true one, invisible next to Monte Carlo noise.
// Above it the capped draw would visibly diverge from the declared fault
// process, so newSampler rejects the spec instead.
const maxTruncTail = 1e-4

// newSampler builds the per-point sampler. n is the number of failure
// sites (nodes for ModelNode, directed links for ModelLink, their sum for
// ModelMixed); maxCount caps the draw so a trial can never exceed the
// drawable population. Specs whose mission failure probability puts more
// than maxTruncTail of the count distribution above the cap are rejected:
// truncating that much mass would simulate a different process than the
// one declared.
func newSampler(ps ProcSpec, n int64, maxCount int) (*sampler, error) {
	if ps.Proc == ProcFixed {
		if ps.Count < 0 || ps.Count > maxCount {
			return nil, fmt.Errorf("campaign: fixed fault count %d outside [0,%d]", ps.Count, maxCount)
		}
		return &sampler{fixed: ps.Count}, nil
	}
	p, err := ps.FailProb()
	if err != nil {
		return nil, err
	}
	s := &sampler{}
	if tail := s.tabulate(n, p, maxCount); tail > maxTruncTail {
		return nil, fmt.Errorf("campaign: %v puts %.3g of its fault-count mass above %d faults (half the %d drawable sites); capping there would misrepresent the declared process — lower the mission time or failure probability", ps, tail, maxCount, n)
	}
	return s, nil
}

// tabulate builds the inverse-CDF table of Binomial(n, p), truncated to
// counts with non-negligible mass (and to maxCount). Log-space recurrence
// keeps the probabilities from underflowing at large n. It returns the
// probability mass the maxCount cap cut off (the window truncation at
// mean+12σ is negligible by construction), which the last table entry
// absorbs.
func (s *sampler) tabulate(n int64, p float64, maxCount int) float64 {
	if p <= 0 || n == 0 {
		s.counts = append(s.counts, 0)
		s.cum = append(s.cum, 1)
		return 0
	}
	if p >= 1 {
		c := int(n)
		tail := 0.0
		if c > maxCount {
			c = maxCount
			tail = 1 // the whole point mass at n sits above the cap
		}
		s.counts = append(s.counts, c)
		s.cum = append(s.cum, 1)
		return tail
	}
	// log pmf(0) = n log(1-p); pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p).
	logOdds := math.Log(p) - math.Log1p(-p)
	lp := float64(n) * math.Log1p(-p)
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	hi := int64(math.Ceil(mean + 12*sd + 8))
	if hi > n {
		hi = n
	}
	if hi > int64(maxCount) {
		hi = int64(maxCount)
	}
	total := 0.0
	for k := int64(0); k <= hi; k++ {
		pmf := math.Exp(lp)
		if pmf > 1e-18 || k == hi {
			total += pmf
			s.counts = append(s.counts, int(k))
			s.cum = append(s.cum, total)
		}
		lp += math.Log(float64(n-k)/float64(k+1)) + logOdds
	}
	// Normalize so the last entry absorbs the truncated tail exactly.
	for i := range s.cum {
		s.cum[i] /= total
	}
	s.cum[len(s.cum)-1] = 1
	tail := 1 - total
	if tail < 0 {
		tail = 0
	}
	return tail
}

// draw spends one uniform from r and returns the trial's fault count.
func (s *sampler) draw(r *rng) int {
	if len(s.cum) == 0 {
		return s.fixed
	}
	u := r.float64()
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.counts[lo]
}

// drawFaults fills f with count faults of the given model, using only r's
// deterministic stream and the caller's scratch coordinates. If the count
// exceeds what the mesh can still absorb — reachable only under ModelMixed,
// whose site population counts links that node faults kill as a side
// effect — the draw stops when the last node dies (the mesh is saturated:
// with every node faulty neither a node nor a link draw can ever succeed)
// instead of rejection-sampling forever; callers observe the placed count
// via f.Count(). All paths reuse f's backing storage (mesh.FaultSet.Reset
// contract), so the steady-state cost is allocation-free.
func drawFaults(m *mesh.Mesh, f *mesh.FaultSet, model Model, count int, r *rng, c, head mesh.Coord) {
	f.Reset()
	liveNodes := m.Nodes()
	for f.Count() < count {
		if liveNodes == 0 {
			return
		}
		kind := model
		if model == ModelMixed {
			if r.next()&1 == 0 {
				kind = ModelNode
			} else {
				kind = ModelLink
			}
		}
		if kind == ModelNode {
			m.CoordInto(r.intn(m.Nodes()), c)
			if f.NodeFaulty(c) {
				continue
			}
			f.AddNode(c)
			liveNodes--
			continue
		}
		// Link fault: a random tail, dimension, and direction; retry until
		// the head exists and neither endpoint is already node-faulty
		// (links incident to faulty nodes are implicitly dead).
		m.CoordInto(r.intn(m.Nodes()), c)
		dim := int(r.intn(int64(m.Dims())))
		dir := 1 - 2*int(r.intn(2))
		v := c[dim] + dir
		if v < 0 || v >= m.Width(dim) {
			if !m.Torus() {
				continue
			}
			w := m.Width(dim)
			v = ((v % w) + w) % w
		}
		copy(head, c)
		head[dim] = v
		if f.NodeFaulty(c) || f.NodeFaulty(head) {
			continue
		}
		l := mesh.Link{From: c, Dim: dim, Dir: dir}
		if f.LinkFaulty(l) {
			continue
		}
		f.AddLink(l)
	}
}
