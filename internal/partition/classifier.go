package partition

import (
	"fmt"
	"sort"

	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// Classifier answers "which SES (or DES) does this node belong to?" in
// O(d log f) time. It exploits the shape guarantee of Find-SES-Partition
// (Section 6.1): in working coordinates w[t] = c[order[t]], every set is
// (*,...,*,[l,r],c,...,c) — so classification is a walk down a d-level
// search tree keyed on the working dimensions from last to first. At each
// level the node's coordinate value either falls in a clean run interval
// (the set is decided immediately: all lower dimensions are unconstrained)
// or equals a dirty slice constant (descend into that slice's subtree) or
// hits neither (the node is faulty — the partition covers exactly the good
// nodes). Each level has at most 2f+1 entries, so a lookup costs
// O(d log f), independent of the mesh size.
type Classifier struct {
	m     *mesh.Mesh
	order routing.Order // working order: depth t dispatches on order[d-1-t]
	root  clsNode
}

// clsNode is one level of the search tree: disjoint value intervals of the
// dispatch dimension, sorted by Lo.
type clsNode struct {
	entries []clsEntry
}

// clsEntry maps an inclusive value interval of the dispatch dimension to
// either a leaf set (set >= 0; every lower working dimension is the full
// width, so membership is decided) or a child subtree (set < 0; the
// interval is a single dirty slice value).
type clsEntry struct {
	lo, hi int
	set    int32
	child  *clsNode
}

// NewClassifier indexes the sets of a partition whose working order is
// workOrder (the 1-round ordering for SESs, its reverse for DESs — the same
// permutation find computes in).
func NewClassifier(m *mesh.Mesh, sets []Set, workOrder routing.Order) (*Classifier, error) {
	c := &Classifier{m: m, order: workOrder}
	for idx, s := range sets {
		if err := c.insert(&c.root, 0, s.Rect, int32(idx)); err != nil {
			return nil, err
		}
	}
	if err := c.finish(&c.root, 0); err != nil {
		return nil, err
	}
	return c, nil
}

// insert places set idx (rect in original coordinates) at depth, descending
// through its trailing working-dimension constants.
func (c *Classifier) insert(n *clsNode, depth int, r rect.Rect, idx int32) error {
	d := c.m.Dims()
	dim := c.order[d-1-depth]
	lo, hi := r[dim].Lo, r[dim].Hi
	// A set is a leaf at this level iff every lower working dimension is
	// unconstrained (full width) — the canonical (*,...,*,[l,r],c,...,c)
	// split point.
	leaf := true
	for t := 0; t < d-1-depth; t++ {
		ldim := c.order[t]
		if r[ldim].Lo != 0 || r[ldim].Hi != c.m.Width(ldim)-1 {
			leaf = false
			break
		}
	}
	if leaf {
		n.entries = append(n.entries, clsEntry{lo: lo, hi: hi, set: idx})
		return nil
	}
	if lo != hi {
		return fmt.Errorf("partition: set %d has interval [%d,%d] above constrained dims (not partition-shaped)", idx, lo, hi)
	}
	for i := range n.entries {
		e := &n.entries[i]
		if e.child != nil && e.lo == lo {
			return c.insert(e.child, depth+1, r, idx)
		}
	}
	child := &clsNode{}
	n.entries = append(n.entries, clsEntry{lo: lo, hi: lo, set: -1, child: child})
	return c.insert(child, depth+1, r, idx)
}

// finish sorts every level and verifies the intervals are disjoint (a
// guarantee the partition provides; checked here so a malformed input fails
// loudly at build time rather than misclassifying at query time).
func (c *Classifier) finish(n *clsNode, depth int) error {
	sort.Slice(n.entries, func(i, j int) bool { return n.entries[i].lo < n.entries[j].lo })
	for i := 1; i < len(n.entries); i++ {
		if n.entries[i].lo <= n.entries[i-1].hi {
			return fmt.Errorf("partition: overlapping intervals [%d,%d] and [%d,%d] at depth %d",
				n.entries[i-1].lo, n.entries[i-1].hi, n.entries[i].lo, n.entries[i].hi, depth)
		}
	}
	for i := range n.entries {
		if ch := n.entries[i].child; ch != nil {
			if err := c.finish(ch, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// Classify returns the index of the set containing co, or -1 if co belongs
// to no set (i.e. co is faulty). Allocation-free.
func (c *Classifier) Classify(co mesh.Coord) int {
	n := &c.root
	d := len(c.order)
	for depth := 0; depth < d; depth++ {
		v := co[c.order[d-1-depth]]
		es := n.entries
		// Binary search for the entry with lo <= v <= hi.
		i, j := 0, len(es)
		for i < j {
			h := (i + j) / 2
			if es[h].hi < v {
				i = h + 1
			} else {
				j = h
			}
		}
		if i == len(es) || es[i].lo > v {
			return -1
		}
		e := &es[i]
		if e.set >= 0 {
			return int(e.set)
		}
		n = e.child
	}
	return -1
}

// MemBytes estimates the classifier's memory footprint.
func (c *Classifier) MemBytes() int {
	return c.nodeBytes(&c.root)
}

func (c *Classifier) nodeBytes(n *clsNode) int {
	const entrySize = 32 // two ints, an int32 (padded), a pointer
	b := len(n.entries) * entrySize
	for i := range n.entries {
		if ch := n.entries[i].child; ch != nil {
			b += 24 + c.nodeBytes(ch) // node header + subtree
		}
	}
	return b
}
