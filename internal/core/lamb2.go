package core

import (
	"fmt"

	"lambmesh/internal/mesh"
	"lambmesh/internal/reach"
	"lambmesh/internal/routing"
	"lambmesh/internal/vcover"
)

// WVCMode selects the weighted-vertex-cover solver used by the
// general-graph reduction of Lamb2.
type WVCMode int

const (
	// ApproxWVC uses the Bar-Yehuda & Even linear-time 2-approximation, so
	// Lamb2 is a polynomial-time 2-approximation (Theorem 6.9 with r = 2).
	ApproxWVC WVCMode = iota
	// ExactWVC uses branch-and-bound, so Lamb2 returns an optimally small
	// lamb set (Theorem 6.9 with r = 1) at exponential worst-case cost.
	ExactWVC
)

func (m WVCMode) String() string {
	if m == ExactWVC {
		return "exact"
	}
	return "approx2"
}

// maxGeneralVertices caps the size of the general-graph reduction: its
// vertex set is the nonempty SES x DES intersections, up to O((df)^2) of
// them, and edges are found by an O(V^2) scan. Past this size the caller
// should use Lamb1.
const maxGeneralVertices = 8000

// Lamb2 finds a lamb set by the general-graph reduction of Section 6.3.2:
// one vertex per nonempty intersection S_i ∩ D_j with weight |S_i ∩ D_j|,
// and an edge between u_{i,j} and u_{i',j'} iff R^(k)(i,j') = 0 or
// R^(k)(i',j) = 0. A minimum-weight vertex cover of this graph yields a
// minimum-size lamb set; an r-approximate cover yields an r-approximate
// lamb set (Theorem 6.9).
//
// Like Lamb1, the package-level Lamb2 wraps a throwaway Solver.
func Lamb2(f *mesh.FaultSet, orders routing.MultiOrder, mode WVCMode, opts ...Option) (*Result, error) {
	return NewSolver().Lamb2(f, orders, mode, opts...)
}

// Lamb2 is the package-level Lamb2 drawing every intermediate from the
// Solver's scratch. The returned Result owns its memory.
func (s *Solver) Lamb2(f *mesh.FaultSet, orders routing.MultiOrder, mode WVCMode, opts ...Option) (*Result, error) {
	cfg := buildConfig(opts)
	if err := validateConfig(f, cfg); err != nil {
		return nil, err
	}
	rc, err := reach.ComputeScratch(f, orders, cfg.workers, &s.rs)
	if err != nil {
		return nil, err
	}
	sigma := rc.Sigma[0]
	delta := rc.Delta[len(rc.Delta)-1]
	m := f.Mesh()
	pre := cfg.predeterminedIndex(m)

	// Vertices: nonempty intersections.
	verts := s.verts[:0]
	for i, se := range sigma.Sets {
		for j, d := range delta.Sets {
			if se.Rect.Intersects(d.Rect) {
				verts = append(verts, intersection{i, j})
			}
		}
	}
	s.verts = verts
	if len(verts) > maxGeneralVertices {
		return nil, fmt.Errorf("core: general reduction has %d vertices (cap %d); use Lamb1 for large instances",
			len(verts), maxGeneralVertices)
	}

	// The edge rule with (i',j') = (i,j) degenerates to a self-loop: if
	// R^(k)(i,j) = 0, two nodes inside the same intersection cannot reach
	// each other, so u_{i,j} is forced into every cover. Handle forced
	// vertices up front — this also preserves optimality, because any lamb
	// set must contain such an intersection entirely.
	s.forced = growBools(s.forced, len(verts))
	forced := s.forced
	for u, vv := range verts {
		if !rc.RK.Get(vv.i, vv.j) {
			forced[u] = true
		}
	}

	g := &s.gg
	g.Weight = growInt64s(g.Weight, len(verts))
	g.Adj = growLists(g.Adj, len(verts))
	for u, vv := range verts {
		g.Weight[u] = setWeight(m, sigma.Sets[vv.i].Rect.Intersect(delta.Sets[vv.j].Rect), cfg, pre)
	}
	for u := 0; u < len(verts); u++ {
		if forced[u] {
			continue
		}
		for v := u + 1; v < len(verts); v++ {
			if forced[v] {
				continue
			}
			a, b := verts[u], verts[v]
			if !rc.RK.Get(a.i, b.j) || !rc.RK.Get(b.i, a.j) {
				g.Adj[u] = append(g.Adj[u], v)
			}
		}
	}

	var pick []bool
	switch mode {
	case ExactWVC:
		pick = vcover.SolveExact(g)
	case ApproxWVC:
		pick = s.vs.Approx2(g)
	default:
		return nil, fmt.Errorf("core: unknown WVC mode %d", mode)
	}
	for u := range pick {
		if forced[u] {
			pick[u] = true
		}
	}

	st := Stats{
		Faults:      f.Count(),
		NumSES:      sigma.Len(),
		NumDES:      delta.Len(),
		RelevantSES: len(rc.RK.ZeroRows()),
		RelevantDES: len(rc.RK.ZeroCols()),
		CoverWeight: g.WeightOf(pick),
	}
	res := newResult(m, orders, cfg, st, rc, func(emit func(mesh.Coord)) {
		for u, p := range pick {
			if p {
				sigma.Sets[verts[u].i].Rect.Intersect(delta.Sets[verts[u].j].Rect).ForEach(emit)
			}
		}
	})
	if cfg.keepReach {
		s.rs.Detach()
	}
	return res, nil
}

// ExactLamb returns a minimum-size lamb set (Corollary 6.10): Lamb2 with an
// exact WVC solver. Exponential worst-case time; intended for small fault
// sets and for validating the approximation quality of Lamb1 in tests and
// ablations.
func ExactLamb(f *mesh.FaultSet, orders routing.MultiOrder, opts ...Option) (*Result, error) {
	return Lamb2(f, orders, ExactWVC, opts...)
}

// ExactLamb is the Solver form of the package-level ExactLamb.
func (s *Solver) ExactLamb(f *mesh.FaultSet, orders routing.MultiOrder, opts ...Option) (*Result, error) {
	return s.Lamb2(f, orders, ExactWVC, opts...)
}
