// Package viz renders 2D meshes as ASCII diagrams in the style of the
// paper's Figures 1, 2 and 9: a grid of nodes with faults, lambs, and
// optional highlighted sets marked. The origin (0,0) is drawn at the top
// left, matching the paper's convention.
package viz

import (
	"fmt"
	"strings"

	"lambmesh/internal/mesh"
)

// Marks assigns a rune to node classes. Zero values get defaults.
type Marks struct {
	Good  rune // default 'o'
	Fault rune // default 'X'
	Lamb  rune // default 'L'
	// Extra marks specific nodes (by linear index) with custom runes, e.g.
	// SES members or a route; it wins over Good/Lamb but not Fault.
	Extra map[int64]rune
}

func (mk Marks) defaults() Marks {
	if mk.Good == 0 {
		mk.Good = 'o'
	}
	if mk.Fault == 0 {
		mk.Fault = 'X'
	}
	if mk.Lamb == 0 {
		mk.Lamb = 'L'
	}
	return mk
}

// Render draws a 2D mesh with its faults and lamb set. Link faults are
// drawn by breaking the corresponding edge ('/' replaces '-' or '|'). Only
// 2D meshes are supported; higher dimensions should render one slice at a
// time via RenderSlice.
func Render(f *mesh.FaultSet, lambs []mesh.Coord, mk Marks) (string, error) {
	m := f.Mesh()
	if m.Dims() != 2 {
		return "", fmt.Errorf("viz: Render needs a 2D mesh; use RenderSlice for %dD", m.Dims())
	}
	mk = mk.defaults()
	lambIdx := make(map[int64]struct{}, len(lambs))
	for _, c := range lambs {
		lambIdx[m.Index(c)] = struct{}{}
	}

	nx, ny := m.Width(0), m.Width(1)
	var b strings.Builder
	// Column header.
	b.WriteString("    ")
	for x := 0; x < nx; x++ {
		fmt.Fprintf(&b, "%-4d", x)
	}
	b.WriteByte('\n')
	for y := 0; y < ny; y++ {
		fmt.Fprintf(&b, "%3d ", y)
		for x := 0; x < nx; x++ {
			c := mesh.C(x, y)
			b.WriteRune(nodeRune(f, c, lambIdx, mk))
			if x < nx-1 {
				b.WriteString(hEdge(f, c))
			}
		}
		b.WriteByte('\n')
		if y < ny-1 {
			b.WriteString("    ")
			for x := 0; x < nx; x++ {
				b.WriteString(vEdge(f, mesh.C(x, y)))
				if x < nx-1 {
					b.WriteString("   ")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

// RenderSlice draws the 2D slice of a higher-dimensional mesh obtained by
// fixing every coordinate except dimX and dimY to the values in fix.
func RenderSlice(f *mesh.FaultSet, lambs []mesh.Coord, dimX, dimY int, fix mesh.Coord, mk Marks) (string, error) {
	m := f.Mesh()
	if dimX == dimY || dimX >= m.Dims() || dimY >= m.Dims() {
		return "", fmt.Errorf("viz: bad slice dims %d,%d", dimX, dimY)
	}
	mk = mk.defaults()
	lambIdx := make(map[int64]struct{}, len(lambs))
	for _, c := range lambs {
		lambIdx[m.Index(c)] = struct{}{}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slice with %v fixed except dims %d,%d\n", fix, dimX, dimY)
	for y := 0; y < m.Width(dimY); y++ {
		for x := 0; x < m.Width(dimX); x++ {
			c := fix.Clone()
			c[dimX], c[dimY] = x, y
			b.WriteRune(nodeRune(f, c, lambIdx, mk))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func nodeRune(f *mesh.FaultSet, c mesh.Coord, lambIdx map[int64]struct{}, mk Marks) rune {
	m := f.Mesh()
	if f.NodeFaulty(c) {
		return mk.Fault
	}
	if r, ok := mk.Extra[m.Index(c)]; ok {
		return r
	}
	if _, isLamb := lambIdx[m.Index(c)]; isLamb {
		return mk.Lamb
	}
	return mk.Good
}

// hEdge renders the horizontal edge leaving c in +X: "---" when both
// directions are usable, "-/-" when at least one direction failed.
func hEdge(f *mesh.FaultSet, c mesh.Coord) string {
	fwd := mesh.Link{From: c, Dim: 0, Dir: 1}
	back := mesh.Link{From: fwd.To(f.Mesh()), Dim: 0, Dir: -1}
	if f.LinkFaulty(fwd) || f.LinkFaulty(back) {
		return "-/-"
	}
	return "---"
}

// vEdge renders the vertical edge below c: "|" or "/" on link fault.
func vEdge(f *mesh.FaultSet, c mesh.Coord) string {
	fwd := mesh.Link{From: c, Dim: 1, Dir: 1}
	back := mesh.Link{From: fwd.To(f.Mesh()), Dim: 1, Dir: -1}
	if f.LinkFaulty(fwd) || f.LinkFaulty(back) {
		return "/"
	}
	return "|"
}
