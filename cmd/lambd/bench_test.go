package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"lambmesh/internal/wire"
)

// refusedURL returns an http base URL that refuses connections.
func refusedURL(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return "http://" + addr
}

// TestClientExitNonZeroOnRefused is the satellite fix: every client
// subcommand must exit non-zero when the daemon is unreachable.
func TestClientExitNonZeroOnRefused(t *testing.T) {
	url := refusedURL(t)
	for _, args := range [][]string{
		{"route", "-addr", url, "-src", "0,0", "-dst", "1,1"},
		{"faults", "-addr", url, "-nodes", "(1,1)"},
		{"config", "-addr", url},
		{"metrics", "-addr", url},
		{"bench", "-addr", url, "-duration", "100ms"},
	} {
		args = append(args, "-timeout", "2s")
		_, errOut, code := runCmd(t, args...)
		if code == 0 {
			t.Errorf("%s against a refused port exited 0", args[0])
		}
		if errOut == "" {
			t.Errorf("%s printed no error", args[0])
		}
	}
}

// TestMetricsNonOKStatus: a non-2xx /metrics page is an error, not a
// silently copied body with exit 0.
func TestMetricsNonOKStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	out, errOut, code := runCmd(t, "metrics", "-addr", ts.URL)
	if code != 1 || !strings.Contains(errOut, "HTTP 500") {
		t.Errorf("metrics on 500: exit %d, out %q, err %q", code, out, errOut)
	}
}

// startWire serves the daemon's binary protocol on an ephemeral port.
func startWire(t *testing.T, s interface{ WireBackend() wire.Backend }) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go wire.Serve(l, s.WireBackend())
	return l.Addr().String()
}

func TestBenchSubcommand(t *testing.T) {
	s, url := startDaemon(t, "8x8", "")
	wireAddr := startWire(t, s)

	for _, tc := range [][]string{
		{"bench", "-addr", url, "-proto", "http", "-conns", "2", "-duration", "150ms"},
		{"bench", "-addr", url, "-proto", "wire", "-wire-addr", wireAddr,
			"-conns", "2", "-pipeline", "8", "-duration", "150ms"},
		{"bench", "-addr", url, "-proto", "wire", "-wire-addr", wireAddr,
			"-mix", "hotspot", "-duration", "100ms"},
	} {
		out, errOut, code := runCmd(t, tc...)
		if code != 0 {
			t.Fatalf("%v: exit %d: %s", tc, code, errOut)
		}
		if !strings.Contains(out, "qps") || !strings.Contains(out, "latency p50") {
			t.Errorf("%v: output %q", tc, out)
		}
		// Closed-loop on a fault-free mesh: every response is a found route.
		if strings.Contains(out, "(0 found") {
			t.Errorf("%v: no routes found: %q", tc, out)
		}
	}
}

// The -json summary: a machine-readable QPS/latency dump whose counters
// reconcile with the run.
func TestBenchJSONSummary(t *testing.T) {
	s, url := startDaemon(t, "8x8", "")
	wireAddr := startWire(t, s)
	path := t.TempDir() + "/bench.json"
	out, errOut, code := runCmd(t, "bench", "-addr", url, "-proto", "wire",
		"-wire-addr", wireAddr, "-conns", "2", "-duration", "150ms", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "summary written to") {
		t.Errorf("output %q", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sum benchSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("summary does not parse: %v\n%s", err, raw)
	}
	if sum.Proto != "wire" || sum.Mesh != "8x8" || sum.Conns != 2 {
		t.Errorf("summary header: %+v", sum)
	}
	if sum.Responses == 0 || sum.QPS <= 0 || sum.Found != sum.Responses {
		t.Errorf("summary counters: %+v", sum)
	}
	if len(sum.HistCounts) != len(sum.HistBoundsUS)+1 {
		t.Fatalf("histogram shape: %d counts for %d bounds", len(sum.HistCounts), len(sum.HistBoundsUS))
	}
	var histTotal int64
	for _, c := range sum.HistCounts {
		histTotal += c
	}
	if histTotal != int64(sum.Samples) {
		t.Errorf("histogram holds %d samples, want %d", histTotal, sum.Samples)
	}
	if sum.LatencyUS["p50"] <= 0 || sum.LatencyUS["max"] < sum.LatencyUS["p99"] {
		t.Errorf("percentiles: %v", sum.LatencyUS)
	}
}

func TestBenchFlagValidation(t *testing.T) {
	for _, tc := range [][]string{
		{"bench", "-proto", "carrier-pigeon"},
		{"bench", "-mix", "bursty"},
		{"bench", "-conns", "0"},
		{"bench", "-pipeline", "0"},
	} {
		if _, _, code := runCmd(t, tc...); code == 0 {
			t.Errorf("%v exited 0", tc)
		}
	}
}

// TestDefaultWireAddr pins the host derivation.
func TestDefaultWireAddr(t *testing.T) {
	got, err := defaultWireAddr("http://example.com:9999")
	if err != nil || got != "example.com:8081" {
		t.Errorf("defaultWireAddr: %q, %v", got, err)
	}
	if _, err := defaultWireAddr(":::"); err == nil {
		t.Error("garbage base URL accepted")
	}
}
