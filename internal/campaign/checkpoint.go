package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Checkpoint format (DESIGN.md §12): a JSON snapshot of the campaign's
// merged state. Because the scheduler merges shards into a contiguous
// prefix, the whole resumable state is tiny and exact — the per-point
// aggregates over shards [0, Cursor) plus the cursor itself. Trials of
// shards past the cursor (including any that finished out of order before a
// pause) are simply re-run on resume from their deterministic seeds, so a
// resumed campaign is bit-for-bit the campaign that was never interrupted.
//
// Snapshots are atomic: written to <path>.tmp in full, fsynced, then
// renamed over <path>. A crash mid-write leaves the previous snapshot
// intact.

// The schema tag also versions the trial-seed derivation (par.TrialSeed):
// aggregates snapshotted under one derivation cannot be continued under
// another, so changing it bumps the version. v2 = splitmix64-mixed seeds.
const checkpointSchema = "lambmesh-campaign-checkpoint/v2"

type checkpoint struct {
	Schema string `json:"schema"`
	// SpecKey fingerprints the campaign identity (grid, trials, seed,
	// shard size, k); resuming with a different spec is an error, not a
	// silent corruption.
	SpecKey string     `json:"spec_key"`
	Cursor  int64      `json:"cursor"`
	Aggs    []PointAgg `json:"aggs"`
}

// specKey fingerprints every Spec field that defines the campaign's
// results. Workers is deliberately excluded (any worker count produces the
// same results).
func specKey(spec *Spec) string {
	// Topology is canonicalized ("mesh" == "") and omitted when empty, so
	// pre-topology checkpoints keep their spec keys.
	canon := struct {
		Meshes    [][]int    `json:"meshes"`
		Models    []Model    `json:"models"`
		Procs     []ProcSpec `json:"procs"`
		Topology  string     `json:"topology,omitempty"`
		K         int        `json:"k"`
		Trials    int64      `json:"trials"`
		Seed      int64      `json:"seed"`
		ShardSize int        `json:"shard_size"`
	}{spec.Meshes, spec.Models, spec.Procs, spec.topology(), spec.K, spec.Trials, spec.Seed, spec.shardSize()}
	raw, err := json.Marshal(canon)
	if err != nil {
		panic(fmt.Sprintf("campaign: spec not marshalable: %v", err))
	}
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%016x", h.Sum64())
}

// saveCheckpoint atomically snapshots the merged prefix state.
func saveCheckpoint(path string, spec *Spec, cursor int64, aggs []PointAgg) error {
	cp := checkpoint{
		Schema:  checkpointSchema,
		SpecKey: specKey(spec),
		Cursor:  cursor,
		Aggs:    aggs,
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: checkpoint rename: %w", err)
	}
	return nil
}

// loadCheckpoint reads a snapshot and validates it against spec.
func loadCheckpoint(path string, spec *Spec) (*checkpoint, error) {
	if path == "" {
		return nil, fmt.Errorf("campaign: -resume needs a checkpoint path")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: resume: %w", err)
	}
	var cp checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, fmt.Errorf("campaign: %s: not a valid checkpoint: %w", filepath.Base(path), err)
	}
	if cp.Schema != checkpointSchema {
		return nil, fmt.Errorf("campaign: %s: schema %q, want %s", filepath.Base(path), cp.Schema, checkpointSchema)
	}
	if key := specKey(spec); cp.SpecKey != key {
		return nil, fmt.Errorf("campaign: %s was recorded for a different campaign (spec key %s, this spec %s)", filepath.Base(path), cp.SpecKey, key)
	}
	if cp.Cursor < 0 || cp.Cursor > spec.TotalShards() {
		return nil, fmt.Errorf("campaign: %s: cursor %d outside [0,%d]", filepath.Base(path), cp.Cursor, spec.TotalShards())
	}
	if len(cp.Aggs) != spec.Points() {
		return nil, fmt.Errorf("campaign: %s: %d point aggregates, spec has %d points", filepath.Base(path), len(cp.Aggs), spec.Points())
	}
	return &cp, nil
}
