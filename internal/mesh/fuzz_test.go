package mesh

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFaults checks the fault-file format's round-trip invariant on
// arbitrary input: whatever ReadFaults accepts, WriteFaults must serialize
// to a canonical form that re-parses to the same fault set (witnessed by a
// byte-identical second serialization).
func FuzzReadFaults(f *testing.F) {
	f.Add("mesh 4x4\nnode 1,2\nlink 0,0 1 +1\n")
	f.Add("torus 8x8\n# comment line\n\nnode 7,7\nnode 0,0\n")
	f.Add("mesh 2x2x2\nlink 0,0,0 2 -1\nnode 1,1,1\n")
	f.Add("mesh 16x16\n")
	f.Add("node 1,1\nmesh 4x4\n") // node before mesh: must error
	f.Fuzz(func(t *testing.T, input string) {
		fs, err := ReadFaults(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; we fuzz for panics and round-trip
		}
		var first bytes.Buffer
		if err := WriteFaults(&first, fs); err != nil {
			t.Fatalf("WriteFaults on accepted input: %v", err)
		}
		fs2, err := ReadFaults(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, first.String())
		}
		if fs2.NumNodeFaults() != fs.NumNodeFaults() || fs2.NumLinkFaults() != fs.NumLinkFaults() {
			t.Fatalf("round-trip changed fault counts: %d/%d -> %d/%d",
				fs.NumNodeFaults(), fs.NumLinkFaults(), fs2.NumNodeFaults(), fs2.NumLinkFaults())
		}
		var second bytes.Buffer
		if err := WriteFaults(&second, fs2); err != nil {
			t.Fatalf("WriteFaults on round-tripped set: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not canonical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
	})
}
