package wormhole

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// Pattern names a synthetic traffic pattern in the Dally–Seitz evaluation
// tradition: every survivor node generates packets whose destinations
// follow the pattern. On a faulty mesh a pattern's nominal destination may
// be dead (faulty or a lamb); those draws fall back to a uniform-random
// survivor so the offered load stays what the injection rate promises.
type Pattern int

const (
	// PatternUniform draws destinations uniformly among the other survivors.
	PatternUniform Pattern = iota
	// PatternTranspose sends (v_1,...,v_d) to (v_d,...,v_1) — the classic
	// matrix-transpose permutation, adversarial for dimension-ordered
	// routing because it concentrates turns on the diagonal.
	PatternTranspose
	// PatternBitComplement sends v_i to n_i-1-v_i in every dimension, so
	// all traffic crosses the mesh center.
	PatternBitComplement
	// PatternHotspot sends a fixed fraction of the traffic (HotspotFraction)
	// to one survivor near the mesh center and the rest uniformly.
	PatternHotspot
)

var patternNames = map[string]Pattern{
	"uniform":   PatternUniform,
	"transpose": PatternTranspose,
	"bitcomp":   PatternBitComplement,
	"hotspot":   PatternHotspot,
}

// PatternNames lists the accepted ParsePattern spellings, in flag-help order.
func PatternNames() []string { return []string{"uniform", "transpose", "bitcomp", "hotspot"} }

// ParsePattern maps a flag value to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	p, ok := patternNames[s]
	if !ok {
		return 0, fmt.Errorf("wormhole: unknown traffic pattern %q (want one of %v)", s, PatternNames())
	}
	return p, nil
}

func (p Pattern) String() string {
	for name, q := range patternNames {
		if q == p {
			return name
		}
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Survivors lists the traffic endpoints of a configured faulty mesh: the
// good nodes that are not lambs. Lambs stay functional for routing through,
// but by definition send and receive no traffic of their own.
func Survivors(f *mesh.FaultSet, lambs []mesh.Coord) []mesh.Coord {
	m := f.Mesh()
	lambIdx := make(map[int64]struct{}, len(lambs))
	for _, c := range lambs {
		lambIdx[m.Index(c)] = struct{}{}
	}
	var survivors []mesh.Coord
	m.ForEachNode(func(c mesh.Coord) {
		if f.NodeFaulty(c) {
			return
		}
		if _, isLamb := lambIdx[m.Index(c)]; isLamb {
			return
		}
		survivors = append(survivors, c.Clone())
	})
	return survivors
}

// WorkloadSpec describes an open-loop injection workload: every survivor
// node flips a Bernoulli coin each cycle of the injection horizon and, on
// heads, generates one packet addressed by the pattern.
type WorkloadSpec struct {
	Pattern Pattern
	// Rate is the injection probability per survivor node per cycle, in
	// packets (the offered load in flits/node/cycle is Rate*PacketFlits).
	// Must lie in (0, 1].
	Rate float64
	// PacketFlits is the fixed packet length.
	PacketFlits int
	// Cycles is the injection horizon: packets are generated for cycles
	// [0, Cycles). The engine's warm-up plus measurement window.
	Cycles int
	// HotspotFraction is the probability a PatternHotspot packet goes to
	// the hotspot node; 0 means the 0.2 default. Ignored by other patterns.
	HotspotFraction float64
}

// workloadDest picks a packet destination for src under the spec's pattern.
// survivorAt maps node index -> survivor (nil for faults and lambs).
func workloadDest(m *mesh.Mesh, spec WorkloadSpec, src mesh.Coord,
	survivors []mesh.Coord, survivorAt []mesh.Coord, hotspot mesh.Coord, rng *rand.Rand) mesh.Coord {
	uniform := func() mesh.Coord {
		for {
			dst := survivors[rng.Intn(len(survivors))]
			if !dst.Equal(src) {
				return dst
			}
		}
	}
	nominal := func(dst mesh.Coord) mesh.Coord {
		if !m.Contains(dst) || dst.Equal(src) {
			return uniform()
		}
		if s := survivorAt[m.Index(dst)]; s != nil {
			return s
		}
		return uniform()
	}
	switch spec.Pattern {
	case PatternTranspose:
		dst := make(mesh.Coord, len(src))
		for i, v := range src {
			dst[len(src)-1-i] = v
		}
		return nominal(dst)
	case PatternBitComplement:
		dst := make(mesh.Coord, len(src))
		for i, v := range src {
			dst[i] = m.Width(i) - 1 - v
		}
		return nominal(dst)
	case PatternHotspot:
		frac := spec.HotspotFraction
		if frac <= 0 {
			frac = 0.2
		}
		if !src.Equal(hotspot) && rng.Float64() < frac {
			return hotspot
		}
		return uniform()
	default:
		return uniform()
	}
}

// hotspotNode deterministically picks the survivor closest to the mesh
// center (ties broken by lowest node index), so hotspot workloads are
// reproducible from the fault configuration alone.
func hotspotNode(m *mesh.Mesh, survivors []mesh.Coord) mesh.Coord {
	center := make(mesh.Coord, m.Dims())
	for i := range center {
		center[i] = m.Width(i) / 2
	}
	best := survivors[0]
	bestDist := best.L1(center)
	for _, c := range survivors[1:] {
		if d := c.L1(center); d < bestDist || (d == bestDist && m.Index(c) < m.Index(best)) {
			best, bestDist = c, d
		}
	}
	return best
}

// GenerateWorkload draws the full open-loop workload up front: one pass
// over (cycle, survivor) in deterministic order, a Bernoulli trial per
// pair, and a fault-free k-round route per generated packet. Pre-drawing
// the workload keeps the engine's cycle loop allocation-free and makes a
// trial a pure function of the rng seed. Packets are returned in
// generation order (ascending InjectAt; at most one per node per cycle).
//
// This is the lamb-strategy specialization of GenerateStrategyWorkload,
// kept for the many callers that hold an (oracle, orders, lambs) triple;
// both consume the rng stream identically.
func GenerateWorkload(o *routing.Oracle, orders routing.MultiOrder, lambs []mesh.Coord,
	spec WorkloadSpec, vcs int, rng *rand.Rand) ([]*Message, error) {
	msgs, _, err := GenerateStrategyWorkload(lambView(o, orders, lambs), spec, vcs, rng)
	return msgs, err
}

// GenerateStrategyWorkload draws the open-loop workload through an
// arbitrary RouteStrategy. The draw order matches GenerateWorkload exactly
// (Bernoulli coin, pattern destination, route with random tie-breaks), so
// the lamb strategy reproduces the legacy byte stream. Strategies that can
// leave survivor pairs unreachable (fault rings across a full band, the
// negative-first turn model around hostile clusters) get the nominal
// destination redrawn uniformly a bounded number of times; a packet whose
// redraws all fail is skipped and counted in the second return value, so
// callers can report explicitly what the scheme could not serve.
func GenerateStrategyWorkload(s RouteStrategy, spec WorkloadSpec, vcs int,
	rng *rand.Rand) ([]*Message, int, error) {
	if spec.Rate <= 0 || spec.Rate > 1 {
		return nil, 0, fmt.Errorf("wormhole: injection rate %v outside (0, 1]", spec.Rate)
	}
	if spec.PacketFlits < 1 {
		return nil, 0, fmt.Errorf("wormhole: packet length %d flits", spec.PacketFlits)
	}
	if spec.Cycles < 1 {
		return nil, 0, fmt.Errorf("wormhole: injection horizon %d cycles", spec.Cycles)
	}
	f := s.Faults()
	m := f.Mesh()
	survivors := Survivors(f, s.Sacrificed())
	if len(survivors) < 2 {
		return nil, 0, fmt.Errorf("wormhole: fewer than two survivors")
	}
	survivorAt := make([]mesh.Coord, m.Nodes())
	for _, c := range survivors {
		survivorAt[m.Index(c)] = c
	}
	hotspot := hotspotNode(m, survivors)

	expected := int(spec.Rate*float64(len(survivors)*spec.Cycles)) + 1
	msgs := make([]*Message, 0, expected)
	id := 0
	unreachable := 0
	for cycle := 0; cycle < spec.Cycles; cycle++ {
		for _, src := range survivors {
			if rng.Float64() >= spec.Rate {
				continue
			}
			dst := workloadDest(m, spec, src, survivors, survivorAt, hotspot, rng)
			var msg *Message
			// With fewer VCs than rounds a route may revisit a (link, VC)
			// pair, which would self-deadlock; redraw the route (its random
			// tie-breaks give a different via) a bounded number of times.
			attempt, redraws := 0, 0
			for {
				var ok bool
				var err error
				msg, ok, err = s.Route(src, dst, id, spec.PacketFlits, cycle, vcs, rng)
				if err != nil {
					return nil, 0, err
				}
				if !ok {
					// Unreachable under this strategy: redraw the destination
					// uniformly; give the packet up after a bounded number of
					// tries (e.g. src walled off entirely).
					redraws++
					if redraws > 20 {
						msg = nil
						unreachable++
						break
					}
					dst = survivors[rng.Intn(len(survivors))]
					for dst.Equal(src) {
						dst = survivors[rng.Intn(len(survivors))]
					}
					continue
				}
				if !hasVCReuse(m, msg) {
					break
				}
				if attempt >= 50 {
					return nil, 0, fmt.Errorf("wormhole: could not draw a self-overlap-free route with %d VCs", vcs)
				}
				attempt++
			}
			if msg == nil {
				continue
			}
			msgs = append(msgs, msg)
			id++
		}
	}
	return msgs, unreachable, nil
}
