package wormhole

import (
	"math/rand"
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// The adversarial 4-worm ring has a dependency cycle with 1 shared VC, and
// none with one VC per round — the static counterpart of the dynamic
// deadlock tests.
func TestDependencyCycleMatchesDeadlock(t *testing.T) {
	o := freeOracle(3, 3)
	m := o.Mesh()

	one := NewChannelDependencies(m, ringMessages(t, o, 1))
	if cycle, found := one.FindCycle(); !found {
		t.Error("1-VC ring should have a dependency cycle")
	} else if cycle == "" {
		t.Error("cycle description empty")
	}

	two := NewChannelDependencies(m, ringMessages(t, o, 2))
	if cycle, found := two.FindCycle(); found {
		t.Errorf("2-VC ring should be acyclic, found %s", cycle)
	}
}

// Theorem check (Dally & Seitz + the paper's Section 1 claim): for ANY
// random traffic routed with k rounds on k virtual channels, the channel
// dependency graph is acyclic — so the discipline is deadlock-free
// independent of buffer sizes and message lengths.
func TestKRoundsOnKVCsAlwaysAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 12; trial++ {
		widths := [][]int{{8, 8}, {5, 5, 5}}[trial%2]
		m := mesh.MustNew(widths...)
		f := mesh.RandomNodeFaults(m, 2+rng.Intn(6), rng)
		k := 1 + rng.Intn(2)
		orders := routing.UniformAscending(m.Dims(), k)
		res, err := core.Lamb1(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		o := routing.NewOracle(f)
		msgs, err := GenerateTraffic(o, orders, res.Lambs, TrafficSpec{
			Messages: 80, MinFlits: 1, MaxFlits: 8,
		}, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		cd := NewChannelDependencies(m, msgs)
		if cycle, found := cd.FindCycle(); found {
			t.Fatalf("trial %d (%v, k=%d): dependency cycle in k-VC traffic: %s", trial, m, k, cycle)
		}
		if cd.Channels() == 0 {
			t.Fatalf("trial %d: no channels recorded", trial)
		}
	}
}

// Under-provisioned random traffic (2 rounds on 1 VC) frequently creates
// cycles — run a few seeds and require at least one.
func TestUnderProvisionedOftenCyclic(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	orders := routing.UniformAscending(2, 2)
	o := routing.NewOracle(f)
	found := false
	for seed := int64(0); seed < 5 && !found; seed++ {
		rng := rand.New(rand.NewSource(seed))
		msgs, err := GenerateTraffic(o, orders, nil, TrafficSpec{
			Messages: 60, MinFlits: 1, MaxFlits: 4,
		}, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		cd := NewChannelDependencies(m, msgs)
		if _, cyc := cd.FindCycle(); cyc {
			found = true
		}
	}
	if !found {
		t.Error("expected at least one dependency cycle across seeds with 1 VC")
	}
}

func TestEmptyDependencies(t *testing.T) {
	m := mesh.MustNew(4, 4)
	cd := NewChannelDependencies(m, nil)
	if _, found := cd.FindCycle(); found {
		t.Error("empty graph cannot have a cycle")
	}
	if cd.Channels() != 0 {
		t.Error("empty graph has channels")
	}
}
