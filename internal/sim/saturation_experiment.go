package sim

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func init() {
	extraRegistry = append(extraRegistry,
		Experiment{ID: "worm-saturation", Title: "wormhole saturation sweep: latency vs injection rate, lambs vs fault-free (open-loop methodology)", Weight: 10, Run: runWormSaturation},
	)
}

// runWormSaturation sweeps open-loop injection rates on M_2(16) with 8
// random node faults and compares the lamb-routed faulty mesh to the
// fault-free baseline: the standard latency-vs-rate curve, swept into
// saturation. Both meshes run the same 2-round/2-VC discipline and the
// same uniform traffic pattern.
func runWormSaturation(cfg Config) *Table {
	trials := scaledTrials(cfg, 10)
	m := mesh.MustNew(16, 16)
	fs := mesh.RandomNodeFaults(m, 8, rand.New(rand.NewSource(cfg.Seed)))
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(fs, orders)
	if err != nil {
		panic(err)
	}
	spec := wormhole.SweepSpec{
		Rates:       []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1},
		Trials:      trials,
		Pattern:     wormhole.PatternUniform,
		PacketFlits: 8,
		Warmup:      200,
		Measure:     500,
		Net:         wormhole.DefaultConfig(),
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	}
	lamb, err := wormhole.RunSweep(fs, orders, res.Lambs, spec)
	if err != nil {
		panic(err)
	}
	base, err := wormhole.RunSweep(mesh.NewFaultSet(m), orders, nil, spec)
	if err != nil {
		panic(err)
	}

	t := &Table{ID: "worm-saturation",
		Title:   fmt.Sprintf("saturation sweep on M_2(16), 8 faults, uniform 8-flit packets, 2 VCs (%d trials/point)", trials),
		Paper:   "Section 1 requirements: wormhole routing with one VC per round; the open-loop latency-vs-rate curve is the standard evaluation",
		Columns: []string{"rate", "lamb accepted", "lamb avg lat", "lamb p99", "lamb sat", "base accepted", "base avg lat", "base p99", "base sat"},
	}
	for i, lp := range lamb {
		bp := base[i]
		t.AddRow(fmt.Sprint(lp.Rate),
			fmt.Sprintf("%.4f", lp.AcceptedFlitRate), F(lp.MeanLatency), F(lp.P99Latency), fmt.Sprint(lp.Saturated),
			fmt.Sprintf("%.4f", bp.AcceptedFlitRate), F(bp.MeanLatency), F(bp.P99Latency), fmt.Sprint(bp.Saturated))
	}
	return t
}
