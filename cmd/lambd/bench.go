package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/url"
	"os"
	"sort"
	"sync"
	"time"

	"lambmesh"
	"lambmesh/internal/server"
	"lambmesh/internal/wire"
)

// benchResult aggregates one connection's closed-loop run.
type benchResult struct {
	responses int64
	found     int64
	rejected  int64
	err       error
	samples   []time.Duration // per-request latency, capped at sampleCap
}

const sampleCap = 1 << 16 // latency samples kept per connection

// cmdBench is the load generator: it discovers the daemon's topology via
// /v1/config, then drives the HTTP/JSON or binary route protocol closed-
// loop from -conns connections until -duration elapses, and reports
// achieved QPS plus latency percentiles. The wire protocol additionally
// pipelines -pipeline requests per connection.
func cmdBench(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	addr, timeout := clientFlags(fs)
	var (
		proto    = fs.String("proto", "wire", "protocol to drive: wire or http")
		wireAddr = fs.String("wire-addr", "", "binary protocol host:port (default: config host, port 8081)")
		conns    = fs.Int("conns", 4, "concurrent connections")
		pipeline = fs.Int("pipeline", 16, "in-flight requests per wire connection")
		duration = fs.Duration("duration", 5*time.Second, "measurement length")
		mix      = fs.String("mix", "uniform", "query mix: uniform or hotspot (25% of queries to one corner)")
		seed     = fs.Int64("seed", 1, "query-stream seed")
		jsonPath = fs.String("json", "", "also write a machine-readable summary (QPS, counts, percentiles, latency histogram) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *proto != "wire" && *proto != "http" {
		return fmt.Errorf("bench: unknown -proto %q (want wire or http)", *proto)
	}
	if *mix != "uniform" && *mix != "hotspot" {
		return fmt.Errorf("bench: unknown -mix %q (want uniform or hotspot)", *mix)
	}
	if *conns < 1 || *pipeline < 1 {
		return fmt.Errorf("bench: -conns and -pipeline must be positive")
	}

	// Discover the topology so the query stream targets usable endpoints.
	var cfg server.ConfigResponse
	if _, err := getJSON(httpClient(*timeout), *addr+"/v1/config", &cfg); err != nil {
		return fmt.Errorf("bench: discovering config: %w", err)
	}
	widths, err := parseWidths(cfg.Mesh)
	if err != nil {
		return err
	}
	good, err := goodEndpoints(widths, cfg)
	if err != nil {
		return err
	}
	if len(good) < 2 {
		return fmt.Errorf("bench: only %d usable endpoints", len(good))
	}
	target := *wireAddr
	if *proto == "wire" && target == "" {
		if target, err = defaultWireAddr(*addr); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "bench: %s %s, %s plane, %d endpoints, %s mix, %d conns",
		*proto, cfg.Mesh, cfg.RouteSource, len(good), *mix, *conns)
	if *proto == "wire" {
		fmt.Fprintf(stdout, " x %d pipelined against %s", *pipeline, target)
	}
	fmt.Fprintf(stdout, ", %v\n", *duration)

	deadline := time.Now().Add(*duration)
	results := make([]benchResult, *conns)
	var wg sync.WaitGroup
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			stream := queryStream{good: good, hotspot: *mix == "hotspot", rng: rng}
			if *proto == "wire" {
				results[i] = benchWireConn(target, *timeout, *pipeline, deadline, stream)
			} else {
				results[i] = benchHTTPConn(*addr, *timeout, deadline, stream)
			}
		}(i)
	}
	wg.Wait()

	var total benchResult
	for i := range results {
		r := &results[i]
		if r.err != nil && total.err == nil {
			total.err = fmt.Errorf("conn %d: %w", i, r.err)
		}
		total.responses += r.responses
		total.found += r.found
		total.rejected += r.rejected
		total.samples = append(total.samples, r.samples...)
	}
	if total.err != nil {
		return total.err
	}
	qps := float64(total.responses) / duration.Seconds()
	fmt.Fprintf(stdout, "bench: %d responses in %v = %.0f qps (%d found, %d rejected)\n",
		total.responses, *duration, qps, total.found, total.rejected)
	sort.Slice(total.samples, func(a, b int) bool { return total.samples[a] < total.samples[b] })
	if n := len(total.samples); n > 0 {
		pct := func(p float64) time.Duration { return total.samples[min(n-1, int(p*float64(n)))] }
		fmt.Fprintf(stdout, "bench: latency p50 %v  p90 %v  p99 %v  max %v (%d samples)\n",
			pct(0.50), pct(0.90), pct(0.99), total.samples[n-1], n)
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, *proto, *mix, cfg, *conns, *duration, qps, &total); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bench: summary written to %s\n", *jsonPath)
	}
	return nil
}

// benchSummary is the -json report: enough to diff runs (or feed a plotter)
// without re-parsing the human output.
type benchSummary struct {
	Proto       string  `json:"proto"`
	Mesh        string  `json:"mesh"`
	RouteSource string  `json:"route_source"`
	Mix         string  `json:"mix"`
	Conns       int     `json:"conns"`
	DurationSec float64 `json:"duration_seconds"`
	Responses   int64   `json:"responses"`
	Found       int64   `json:"found"`
	Rejected    int64   `json:"rejected"`
	QPS         float64 `json:"qps"`
	// Latency percentiles in microseconds over the (capped) sample set.
	LatencyUS map[string]float64 `json:"latency_us"`
	// Histogram over exponentially growing bounds. Buckets[i] counts
	// samples <= BoundsUS[i]; the final bucket is +Inf.
	HistBoundsUS []float64 `json:"hist_bounds_us"`
	HistCounts   []int64   `json:"hist_counts"`
	Samples      int       `json:"samples"`
}

// writeBenchJSON renders the run summary; total.samples must be sorted.
func writeBenchJSON(path, proto, mix string, cfg server.ConfigResponse, conns int, d time.Duration, qps float64, total *benchResult) error {
	n := len(total.samples)
	s := benchSummary{
		Proto:       proto,
		Mesh:        cfg.Mesh,
		RouteSource: cfg.RouteSource,
		Mix:         mix,
		Conns:       conns,
		DurationSec: d.Seconds(),
		Responses:   total.responses,
		Found:       total.found,
		Rejected:    total.rejected,
		QPS:         qps,
		LatencyUS:   map[string]float64{},
		Samples:     n,
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	if n > 0 {
		pct := func(p float64) float64 { return us(total.samples[min(n-1, int(p*float64(n)))]) }
		s.LatencyUS["p50"] = pct(0.50)
		s.LatencyUS["p90"] = pct(0.90)
		s.LatencyUS["p99"] = pct(0.99)
		s.LatencyUS["max"] = us(total.samples[n-1])
	}
	// 2x-growing bounds from 10us to ~160ms, then +Inf.
	for b := 10.0; b <= 200_000; b *= 2 {
		s.HistBoundsUS = append(s.HistBoundsUS, b)
	}
	s.HistCounts = make([]int64, len(s.HistBoundsUS)+1)
	for _, d := range total.samples {
		v := us(d)
		i := sort.SearchFloat64s(s.HistBoundsUS, v)
		s.HistCounts[i]++
	}
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// goodEndpoints enumerates the nodes that can be route endpoints: inside
// the mesh, not faulty, not lambs.
func goodEndpoints(widths []int, cfg server.ConfigResponse) ([]lambmesh.Coord, error) {
	m, err := lambmesh.NewMesh(widths...)
	if err != nil {
		return nil, err
	}
	bad := make(map[string]bool, len(cfg.NodeFaults)+len(cfg.Lambs))
	for _, s := range append(append([]string(nil), cfg.NodeFaults...), cfg.Lambs...) {
		bad[s] = true
	}
	var good []lambmesh.Coord
	m.ForEachNode(func(c lambmesh.Coord) {
		if !bad[c.String()] {
			good = append(good, c.Clone())
		}
	})
	return good, nil
}

// defaultWireAddr derives host:8081 from the HTTP base URL.
func defaultWireAddr(base string) (string, error) {
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("bench: cannot derive -wire-addr from %q; pass it explicitly", base)
	}
	host := u.Hostname()
	if host == "" {
		host = "localhost"
	}
	return host + ":8081", nil
}

// queryStream produces the (src, dst) sequence for one connection.
type queryStream struct {
	good    []lambmesh.Coord
	hotspot bool
	rng     *rand.Rand
}

func (q *queryStream) next() (src, dst lambmesh.Coord) {
	src = q.good[q.rng.Intn(len(q.good))]
	if q.hotspot && q.rng.Intn(4) == 0 {
		return src, q.good[len(q.good)-1]
	}
	return src, q.good[q.rng.Intn(len(q.good))]
}

// benchWireConn drives one pipelined wire connection closed-loop: it keeps
// depth requests in flight, then drains. Responses arrive in request
// order, so send timestamps queue in a ring.
func benchWireConn(target string, timeout time.Duration, depth int, deadline time.Time, stream queryStream) (r benchResult) {
	c, err := wire.Dial(target, timeout)
	if err != nil {
		r.err = err
		return r
	}
	defer c.Close()

	sent := make([]time.Time, 0, depth)
	var ans wire.Answer
	send := func() error {
		src, dst := stream.next()
		if err := c.Send(src, dst); err != nil {
			return err
		}
		sent = append(sent, time.Now())
		return nil
	}
	recv := func() error {
		if err := c.Recv(&ans); err != nil {
			return err
		}
		r.responses++
		if len(r.samples) < sampleCap {
			r.samples = append(r.samples, time.Since(sent[0]))
		}
		sent = sent[1:]
		if ans.Code == wire.CodeFound {
			r.found++
		} else {
			r.rejected++
		}
		return nil
	}
	for i := 0; i < depth; i++ {
		if r.err = send(); r.err != nil {
			return r
		}
	}
	if r.err = c.Flush(); r.err != nil {
		return r
	}
	for time.Now().Before(deadline) {
		if r.err = recv(); r.err != nil {
			return r
		}
		if r.err = send(); r.err != nil {
			return r
		}
		if r.err = c.Flush(); r.err != nil {
			return r
		}
	}
	for len(sent) > 0 {
		if r.err = recv(); r.err != nil {
			return r
		}
	}
	return r
}

// benchHTTPConn drives one HTTP/JSON connection closed-loop (depth 1; the
// protocol has no pipelining).
func benchHTTPConn(base string, timeout time.Duration, deadline time.Time, stream queryStream) (r benchResult) {
	client := httpClient(timeout)
	var resp server.RouteResponse
	for time.Now().Before(deadline) {
		src, dst := stream.next()
		start := time.Now()
		if _, err := postJSON(client, base+"/v1/route", server.RouteRequest{
			Src: src.String(), Dst: dst.String(),
		}, &resp); err != nil {
			r.err = err
			return r
		}
		r.responses++
		if len(r.samples) < sampleCap {
			r.samples = append(r.samples, time.Since(start))
		}
		if resp.Found {
			r.found++
		} else {
			r.rejected++
		}
	}
	return r
}
