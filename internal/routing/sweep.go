package routing

import "lambmesh/internal/mesh"

// ReachableSetSweep computes, in O(d N) time, the set of nodes reachable
// from any node of `from` by one pi-ordered round. It implements the
// "spanning tree" alternative the paper mentions in footnote 7: because a
// dimension-ordered route corrects one dimension at a time, the reachable
// set after correcting dimensions pi[0..t] is obtained from the previous
// set by a fault-aware sweep along dimension pi[t] of every line — no
// per-pair queries. Nodes in `from` that are faulty contribute nothing.
//
// For k rounds, iterate: feed the result back in with the next round's
// ordering. This is the O(k d^2 f N)-per-partition path that beats the
// matrix method when f is large relative to N.
//
// Meshes only: on a torus the oracle's minimal-direction convention makes
// per-dimension reachability depend on distance, which a sweep cannot
// capture; the generic SEC/DEC path covers tori instead.
func (o *Oracle) ReachableSetSweep(pi Order, from []bool) []bool {
	m := o.m
	if m.Torus() {
		panic("routing: ReachableSetSweep is defined for meshes, not tori")
	}
	n := m.Nodes()
	cur := make([]bool, n)
	// Seed with the good members of from.
	idx := int64(0)
	m.ForEachNode(func(c mesh.Coord) {
		if from[idx] && !o.f.NodeFaulty(c) {
			cur[idx] = true
		}
		idx++
	})
	for _, dim := range pi {
		o.sweepDim(dim, cur)
	}
	return cur
}

// ReachKSetSweep is the k-round version from a single source.
func (o *Oracle) ReachKSetSweep(orders MultiOrder, v mesh.Coord) []bool {
	return o.ReachKSetSweepInto(orders, v, make([]bool, o.m.Nodes()))
}

// ReachKSetSweepInto is ReachKSetSweep writing into the caller-provided
// buffer buf (length Nodes()), which is cleared first and returned. Sweeps
// never mark faulty nodes and the seed is a good node, so the per-round
// good-member reseeding of ReachableSetSweep is a no-op here and every round
// can sweep the one buffer in place — the hot loop of the footnote-7
// reachability path allocates nothing.
func (o *Oracle) ReachKSetSweepInto(orders MultiOrder, v mesh.Coord, buf []bool) []bool {
	if o.m.Torus() {
		panic("routing: ReachKSetSweepInto is defined for meshes, not tori")
	}
	clear(buf)
	if o.f.NodeFaulty(v) {
		return buf
	}
	buf[o.m.Index(v)] = true
	for _, pi := range orders {
		for _, dim := range pi {
			o.sweepDim(dim, buf)
		}
	}
	return buf
}

// sweepDim propagates reachability along one dimension of every line, in
// place: a node is reachable if it was already, or if its predecessor on the
// line is and the connecting link and the node itself are good. Both
// directions are swept. In-place is sound because each line's passes read
// and write only that line's entries of out, exactly as the passes would
// over a copied buffer.
func (o *Oracle) sweepDim(dim int, out []bool) {
	m := o.m
	width := m.Width(dim)
	stride := int64(1)
	for i := 0; i < dim; i++ {
		stride *= int64(m.Width(i))
	}
	// Enumerate lines: iterate all nodes with coordinate dim == 0.
	line := make([]int64, width)
	c := make(mesh.Coord, m.Dims())
	var walk func(d int)
	walk = func(d int) {
		if d == m.Dims() {
			base := m.Index(c)
			for x := 0; x < width; x++ {
				line[x] = base + int64(x)*stride
			}
			o.sweepLine(dim, c, line, out)
			return
		}
		if d == dim {
			c[d] = 0
			walk(d + 1)
			return
		}
		for v := 0; v < m.Width(d); v++ {
			c[d] = v
			walk(d + 1)
		}
		c[d] = 0
	}
	walk(0)
}

// sweepLine performs the +/- passes over one line. c has coordinate dim
// fixed to 0 and identifies the line's profile. Fault positions come as
// sorted slices and are consumed with two-pointer walks — no per-line
// allocation, so a full sweep is a tight O(N + faults-on-lines) pass.
func (o *Oracle) sweepLine(dim int, c mesh.Coord, line []int64, out []bool) {
	width := len(line)
	p := o.m.ProfileIndex(c, dim)
	nodeF := o.nodeIdx[dim][p]
	posF := o.posLink[dim][p]
	negF := o.negLink[dim][p]

	// + direction: carry into x needs the +link with tail x-1 and node x.
	carry := false
	ni, pi := 0, 0
	for x := 0; x < width; x++ {
		if ni < len(nodeF) && nodeF[ni] == x {
			ni++
			carry = false
			continue
		}
		if carry {
			out[line[x]] = true
		}
		if out[line[x]] {
			carry = true
		}
		if pi < len(posF) && posF[pi] == x {
			pi++
			carry = false
		}
	}
	// - direction: carry into x needs the -link with tail x+1.
	carry = false
	ni, gi := len(nodeF)-1, len(negF)-1
	for x := width - 1; x >= 0; x-- {
		if ni >= 0 && nodeF[ni] == x {
			ni--
			carry = false
			continue
		}
		if carry {
			out[line[x]] = true
		}
		if out[line[x]] {
			carry = true
		}
		if gi >= 0 && negF[gi] == x {
			gi--
			carry = false
		}
	}
}
