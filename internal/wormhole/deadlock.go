package wormhole

import (
	"fmt"

	"lambmesh/internal/mesh"
)

// ChannelDependencies builds the channel dependency graph of Dally & Seitz
// [8] for a workload: vertices are virtual channels (link, VC) and there is
// an edge from each hop's channel to the next hop's channel of the same
// message (a worm holding the first may wait on the second). The workload
// is statically deadlock-free if this graph is acyclic.
//
// The paper's discipline — round t on virtual channel t, dimension-ordered
// within a round — makes the graph acyclic for ANY traffic: within a round,
// dimension order gives a topological order; between rounds, the VC number
// strictly increases. FindDependencyCycle machine-checks this.
type ChannelDependencies struct {
	m     *mesh.Mesh
	nodes []vcKey
	index map[vcKey]int
	adj   [][]int
}

// NewChannelDependencies builds the graph from a set of routed messages.
func NewChannelDependencies(m *mesh.Mesh, msgs []*Message) *ChannelDependencies {
	cd := &ChannelDependencies{m: m, index: make(map[vcKey]int)}
	id := func(h Hop) int {
		k := vcKey{from: m.Index(h.Link.From), dim: h.Link.Dim, dir: h.Link.Dir, vc: h.VC}
		if i, ok := cd.index[k]; ok {
			return i
		}
		i := len(cd.nodes)
		cd.index[k] = i
		cd.nodes = append(cd.nodes, k)
		cd.adj = append(cd.adj, nil)
		return i
	}
	seen := make(map[[2]int]bool)
	for _, msg := range msgs {
		for i := 0; i+1 < len(msg.Hops); i++ {
			a, b := id(msg.Hops[i]), id(msg.Hops[i+1])
			if a == b || seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			cd.adj[a] = append(cd.adj[a], b)
		}
	}
	return cd
}

// Channels returns the number of distinct virtual channels used.
func (cd *ChannelDependencies) Channels() int { return len(cd.nodes) }

// FindCycle returns a dependency cycle as a human-readable description, or
// ok=false if the graph is acyclic (statically deadlock-free for any
// message lengths and buffer sizes).
func (cd *ChannelDependencies) FindCycle() (string, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(cd.nodes))
	parent := make([]int, len(cd.nodes))
	for i := range parent {
		parent[i] = -1
	}
	var cycleAt, cycleTo int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		for _, w := range cd.adj[v] {
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case gray:
				cycleAt, cycleTo = v, w
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := range cd.nodes {
		if color[v] == white && dfs(v) {
			// Reconstruct the cycle cycleTo -> ... -> cycleAt -> cycleTo.
			var chain []int
			for u := cycleAt; u != -1 && u != cycleTo; u = parent[u] {
				chain = append(chain, u)
			}
			chain = append(chain, cycleTo)
			s := ""
			for i := len(chain) - 1; i >= 0; i-- {
				k := cd.nodes[chain[i]]
				s += fmt.Sprintf("%v.vc%d -> ", mesh.Link{From: cd.m.CoordOf(k.from), Dim: k.dim, Dir: k.dir}, k.vc)
			}
			k := cd.nodes[cycleTo]
			s += fmt.Sprintf("%v.vc%d", mesh.Link{From: cd.m.CoordOf(k.from), Dim: k.dim, Dir: k.dir}, k.vc)
			return s, true
		}
	}
	return "", false
}
