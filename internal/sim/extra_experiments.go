package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"lambmesh/internal/blockfault"
	"lambmesh/internal/core"
	"lambmesh/internal/hardness"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func init() {
	extraRegistry = append(extraRegistry,
		Experiment{ID: "abl-blockfault", Title: "baseline: lambs vs inactivated nodes, and turn counts (Section 1 open question)", Weight: 2, Run: runBlockfault},
		Experiment{ID: "worm", Title: "wormhole traffic: 2 VCs deadlock-free, 1 VC deadlocks (Section 1 requirements)", Run: runWorm},
		Experiment{ID: "hardness", Title: "NP-hardness reduction sanity (Section 9)", Run: runHardness},
		Experiment{ID: "ext-linkfaults", Title: "extension: mixed node and directed-link faults (Definition 2.4)", Weight: 2, Run: runLinkFaults},
		Experiment{ID: "ext-reconfig", Title: "extension: roll-back/reconfigure generations with persistent lambs (Section 1/7)", Run: runReconfig},
		Experiment{ID: "abl-sptree", Title: "ablation: matrix R^(k) vs footnote-7 spanning-tree sweep", Weight: 5, Run: runSptree},
		Experiment{ID: "ext-congestion", Title: "extension: intermediate-node choice and congestion (Section 2.1 heuristic)", Run: runCongestion},
		Experiment{ID: "ext-torus", Title: "extension: torus vs mesh lamb counts at equal faults (Section 7)", Weight: 2, Run: runTorusCompare},
	)
}

// runTorusCompare quantifies what the Section 7 torus extension buys: the
// same random fault sets need fewer lambs on a torus than on a mesh,
// because wrap-around links give boundary nodes a second way out. The
// torus path uses the generic SEC/DEC machinery.
func runTorusCompare(cfg Config) *Table {
	trials := scaledTrials(cfg, 2)
	if trials > 30 {
		trials = 30 // the generic path is O(N^2)
	}
	t := &Table{ID: "ext-torus",
		Title:   fmt.Sprintf("average lambs, mesh vs torus, 12x12, same fault draws (%d trials/point)", trials),
		Paper:   "Section 7: the development generalizes to tori; wrap links can only help",
		Columns: []string{"faults", "mesh avg lambs", "torus avg lambs"},
	}
	orders := routing.UniformAscending(2, 2)
	for _, faults := range []int{4, 8, 14} {
		var meshL, torusL Agg
		var mu sync.Mutex
		ForEachTrial(cfg, trials, func(_ int, rng *rand.Rand) {
			mm := mesh.MustNew(12, 12)
			fm := mesh.RandomNodeFaults(mm, faults, rng)
			resM, err := core.Lamb1(fm, orders)
			if err != nil {
				panic(err)
			}
			tm, err := mesh.NewTorus(12, 12)
			if err != nil {
				panic(err)
			}
			ft := mesh.NewFaultSet(tm)
			for _, c := range fm.NodeFaults() {
				ft.AddNode(c)
			}
			resT, err := core.TorusLamb(ft, orders)
			if err != nil {
				panic(err)
			}
			mu.Lock()
			meshL.Add(float64(resM.NumLambs()))
			torusL.Add(float64(resT.NumLambs()))
			mu.Unlock()
		})
		t.AddRow(fmt.Sprint(faults), F(meshL.Mean()), F(torusL.Mean()))
	}
	return t
}

// runCongestion compares the paper's suggested intermediate-choice
// heuristic — shortest route, ties broken randomly — against a
// deterministic first-best choice that funnels every message through the
// same corner of its routing rectangle. Random tie-breaking spreads load
// and should reduce tail latency under the same traffic.
func runCongestion(cfg Config) *Table {
	m := mesh.MustNew(16, 16)
	fs := mesh.RandomNodeFaults(m, 8, rand.New(rand.NewSource(cfg.Seed)))
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(fs, orders)
	if err != nil {
		panic(err)
	}
	o := routing.NewOracle(fs)

	runPolicy := func(randomTies bool) (wormhole.SummaryStats, float64) {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		var tieRng *rand.Rand
		if randomTies {
			tieRng = rand.New(rand.NewSource(cfg.Seed + 2))
		}
		// Same (src, dst, length, inject) stream for both policies: draw
		// the workload with rng, route with tieRng.
		lambIdx := make(map[int64]struct{})
		for _, c := range res.Lambs {
			lambIdx[m.Index(c)] = struct{}{}
		}
		var survivors []mesh.Coord
		m.ForEachNode(func(c mesh.Coord) {
			if fs.NodeFaulty(c) {
				return
			}
			if _, ok := lambIdx[m.Index(c)]; ok {
				return
			}
			survivors = append(survivors, c.Clone())
		})
		var msgs []*wormhole.Message
		for id := 0; id < 200; id++ {
			src := survivors[rng.Intn(len(survivors))]
			dst := survivors[rng.Intn(len(survivors))]
			for dst.Equal(src) {
				dst = survivors[rng.Intn(len(survivors))]
			}
			length := 4 + rng.Intn(13)
			injectAt := rng.Intn(80)
			msg, err := wormhole.RouteMessage(o, orders, src, dst, id, length, injectAt, 2, tieRng)
			if err != nil {
				panic(err)
			}
			msgs = append(msgs, msg)
		}
		n, err := wormhole.NewNetwork(fs, wormhole.DefaultConfig(), msgs)
		if err != nil {
			panic(err)
		}
		if err := n.Run(); err != nil {
			panic(err)
		}
		_, maxUtil := n.LinkUtilization()
		return wormhole.Summarize(n), maxUtil
	}

	det, detUtil := runPolicy(false)
	rnd, rndUtil := runPolicy(true)
	t := &Table{ID: "ext-congestion",
		Title:   "200 messages on M_2(16): deterministic vs randomized intermediate choice",
		Paper:   "Section 2.1: \"choose routes of shortest length, breaking ties randomly\" — randomization spreads load",
		Columns: []string{"policy", "delivered", "cycles", "avg latency", "max latency", "hottest link util"},
	}
	t.AddRow("first-best (deterministic)", fmt.Sprint(det.Delivered), fmt.Sprint(det.Cycles),
		F(det.AvgLatency), fmt.Sprint(det.MaxLatency), fmt.Sprintf("%.2f", detUtil))
	t.AddRow("shortest + random ties (paper)", fmt.Sprint(rnd.Delivered), fmt.Sprint(rnd.Cycles),
		F(rnd.AvgLatency), fmt.Sprint(rnd.MaxLatency), fmt.Sprintf("%.2f", rndUtil))
	return t
}

// runSptree times the two ways of computing R^(k) (footnote 7): matrix
// products are O(k d^3 f^3) and win at small f; the per-representative
// sweep is O(k d^2 f N) and wins once f is large relative to N.
func runSptree(cfg Config) *Table {
	trials := scaledTrials(cfg, 5)
	m := mesh.MustNew(16, 16, 16)
	orders := routing.UniformAscending(3, 2)
	t := &Table{ID: "abl-sptree",
		Title:   fmt.Sprintf("Lamb1 time on M_3(16): matrix vs sweep reachability (%d trials/point)", trials),
		Paper:   "footnote 7 predicts the sweep wins for f large vs N; with 64-bit packed matrices the crossover sits far beyond these fault rates (an honest constant-factor deviation)",
		Columns: []string{"faults", "matrix sec", "sweep sec", "same lamb count"},
	}
	for _, faults := range []int{40, 150, 400, 900} {
		var tm, ts Agg
		same := true
		var mu sync.Mutex
		ForEachTrial(cfg, trials, func(_ int, rng *rand.Rand) {
			fs := mesh.RandomNodeFaults(m, faults, rng)
			t0 := time.Now()
			a, err := core.Lamb1(fs, orders)
			if err != nil {
				panic(err)
			}
			d0 := time.Since(t0).Seconds()
			t1 := time.Now()
			b, err := core.Lamb1(fs, orders, core.WithSweepReachability())
			if err != nil {
				panic(err)
			}
			d1 := time.Since(t1).Seconds()
			mu.Lock()
			tm.Add(d0)
			ts.Add(d1)
			if a.NumLambs() != b.NumLambs() {
				same = false
			}
			mu.Unlock()
		})
		t.AddRow(fmt.Sprint(faults),
			fmt.Sprintf("%.4f", tm.Mean()),
			fmt.Sprintf("%.4f", ts.Mean()),
			fmt.Sprint(same))
	}
	return t
}

// runLinkFaults exercises the full Definition 2.4 fault model, which the
// paper's own simulations leave out: half the faults are nodes, half are
// one-directional links. Lamb counts stay modest and verification holds.
func runLinkFaults(cfg Config) *Table {
	trials := scaledTrials(cfg, 2)
	m := mesh.MustNew(32, 32)
	orders := routing.UniformAscending(2, 2)
	t := &Table{ID: "ext-linkfaults",
		Title:   fmt.Sprintf("lambs with mixed node+link faults on M_2(32) (%d trials/point)", trials),
		Paper:   "the algorithms handle F = (F_N, F_L) throughout; the paper simulates F_L = empty",
		Columns: []string{"total fault%", "node faults", "link faults", "avg lambs", "max lambs", "verified"},
	}
	for _, pct := range []float64{1.0, 2.0, 3.0} {
		total := int(math.Round(float64(m.Nodes()) * pct / 100))
		nNodes := total / 2
		nLinks := total - nNodes
		var lambs Agg
		verified := true
		var mu sync.Mutex
		ForEachTrial(cfg, trials, func(_ int, rng *rand.Rand) {
			fs := mesh.RandomNodeFaults(m, nNodes, rng)
			mesh.RandomLinkFaults(fs, nLinks, rng)
			res, err := core.Lamb1(fs, orders)
			if err != nil {
				panic(err)
			}
			ok := core.VerifyLambSet(fs, orders, res.Lambs) == nil
			mu.Lock()
			lambs.Add(float64(res.NumLambs()))
			if !ok {
				verified = false
			}
			mu.Unlock()
		})
		t.AddRow(
			fmt.Sprintf("%.1f", pct),
			fmt.Sprint(nNodes), fmt.Sprint(nLinks),
			F(lambs.Mean()), F(lambs.Max()),
			fmt.Sprint(verified),
		)
	}
	return t
}

// runReconfig walks the roll-back/reconfigure loop of Section 1: faults
// arrive in batches; each generation recomputes a verified lamb set that
// keeps all previous (still-good) lambs.
func runReconfig(cfg Config) *Table {
	m := mesh.MustNew(16, 16, 16)
	orders := routing.UniformAscending(3, 2)
	rec, err := core.NewReconfigurer(m, orders, true)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{ID: "ext-reconfig",
		Title:   "fault batches arriving over time on M_3(16), persistent lambs",
		Paper:   "Section 1: reconfiguration reruns the lamb algorithm on the grown fault set",
		Columns: []string{"generation", "total faults", "lambs", "lambs kept from previous", "verified"},
	}
	prev := map[int64]bool{}
	for gen := 1; gen <= 5; gen++ {
		var batch []mesh.Coord
		for i := 0; i < 80; i++ {
			batch = append(batch, m.CoordOf(rng.Int63n(m.Nodes())))
		}
		res, err := rec.AddFaults(batch, nil)
		if err != nil {
			panic(err)
		}
		kept := 0
		cur := map[int64]bool{}
		for _, l := range res.Lambs {
			idx := m.Index(l)
			cur[idx] = true
			if prev[idx] {
				kept++
			}
		}
		ok := core.VerifyLambSet(rec.Faults(), orders, res.Lambs) == nil
		t.AddRow(fmt.Sprint(gen), fmt.Sprint(rec.Faults().Count()),
			fmt.Sprint(res.NumLambs()), fmt.Sprintf("%d/%d", kept, len(prev)),
			fmt.Sprint(ok))
		prev = cur
	}
	return t
}

// runBlockfault answers the paper's open question empirically on M_2(32):
// how many good nodes does the rectangular-fault-block scheme inactivate,
// versus how many lambs our approach sacrifices — and what do ring detours
// cost in turns versus the k*d-1 bound of dimension-ordered rounds.
func runBlockfault(cfg Config) *Table {
	trials := scaledTrials(cfg, 2)
	m := mesh.MustNew(32, 32)
	orders := routing.UniformAscending(2, 2)
	t := &Table{ID: "abl-blockfault",
		Title:   fmt.Sprintf("lambs vs fault-block inactivation on M_2(32) (%d trials/point)", trials),
		Paper:   "the paper leaves inactivated-vs-lambs open; turns: ring routing can take many, 2-round DOR at most 3",
		Columns: []string{"fault%", "avg lambs", "avg inactivated", "avg ring turns", "max ring turns", "DOR turn bound"},
	}
	for _, pct := range []float64{0.5, 1.0, 2.0, 3.0} {
		faults := int(math.Round(float64(m.Nodes()) * pct / 100))
		var lambs, inact, turns Agg
		var maxTurns int
		var mu sync.Mutex
		ForEachTrial(cfg, trials, func(_ int, rng *rand.Rand) {
			fs := mesh.RandomNodeFaults(m, faults, rng)
			res, err := core.Lamb1(fs, orders)
			if err != nil {
				panic(err)
			}
			mod, err := blockfault.Build(fs)
			if err != nil {
				panic(err)
			}
			var active []mesh.Coord
			m.ForEachNode(func(c mesh.Coord) {
				if !mod.Blocked(c) {
					active = append(active, c.Clone())
				}
			})
			var localTurns []int
			for pair := 0; pair < 30; pair++ {
				src := active[rng.Intn(len(active))]
				dst := active[rng.Intn(len(active))]
				p, err := mod.RouteXY(src, dst)
				if err != nil {
					continue // region touching an edge; skip the pair
				}
				localTurns = append(localTurns, routing.CountTurns(p))
			}
			mu.Lock()
			lambs.Add(float64(res.NumLambs()))
			inact.Add(float64(mod.Inactivated))
			for _, tn := range localTurns {
				turns.Add(float64(tn))
				if tn > maxTurns {
					maxTurns = tn
				}
			}
			mu.Unlock()
		})
		t.AddRow(
			fmt.Sprintf("%.1f", pct),
			F(lambs.Mean()),
			F(inact.Mean()),
			F(turns.Mean()),
			fmt.Sprint(maxTurns),
			"3",
		)
	}
	return t
}

// runWorm demonstrates the wormhole requirements of Section 1: the same
// two-round traffic deadlocks when both rounds share one virtual channel
// and flows cleanly with one VC per round, on a faulty mesh with lambs.
func runWorm(cfg Config) *Table {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := mesh.MustNew(16, 16)
	fs := mesh.RandomNodeFaults(m, 8, rng)
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(fs, orders)
	if err != nil {
		panic(err)
	}
	o := routing.NewOracle(fs)
	msgs, err := wormhole.GenerateTraffic(o, orders, res.Lambs, wormhole.TrafficSpec{
		Messages: 120, MinFlits: 4, MaxFlits: 16, InjectWindow: 60,
	}, 2, rng)
	if err != nil {
		panic(err)
	}
	n2, err := wormhole.NewNetwork(fs, wormhole.DefaultConfig(), msgs)
	if err != nil {
		panic(err)
	}
	if err := n2.Run(); err != nil {
		panic(err)
	}
	s2 := wormhole.Summarize(n2)

	// The adversarial 4-worm ring under 1 VC (the deterministic deadlock).
	ringCfg := wormhole.Config{VirtualChannels: 1, BufferDepth: 1, StallCycles: 300, MaxCycles: 100000}
	free := mesh.NewFaultSet(mesh.MustNew(3, 3))
	ring := ringMessages(free.Mesh(), 1)
	n1, err := wormhole.NewNetwork(free, ringCfg, ring)
	if err != nil {
		panic(err)
	}
	if err := n1.Run(); err != nil {
		panic(err)
	}

	t := &Table{ID: "worm",
		Title:   "flit-level wormhole simulation: the virtual-channel discipline at work",
		Paper:   "k rounds on k VCs is deadlock-free (Section 1/2); fewer VCs can deadlock",
		Columns: []string{"scenario", "messages", "delivered", "deadlock", "cycles", "avg latency", "avg turns", "max turns"},
	}
	t.AddRow("M_2(16), 8 faults, lambs, 2 VCs", fmt.Sprint(s2.Messages), fmt.Sprint(s2.Delivered),
		fmt.Sprint(s2.Deadlocked), fmt.Sprint(s2.Cycles), F(s2.AvgLatency), F(s2.AvgTurns), fmt.Sprint(s2.MaxTurns))
	s1 := wormhole.Summarize(n1)
	t.AddRow("3x3 adversarial ring, 1 VC", fmt.Sprint(s1.Messages), fmt.Sprint(s1.Delivered),
		fmt.Sprint(s1.Deadlocked), fmt.Sprint(s1.Cycles), F(s1.AvgLatency), F(s1.AvgTurns), fmt.Sprint(s1.MaxTurns))
	return t
}

// ringMessages rebuilds the 4-worm cyclic workload used in the wormhole
// tests (duplicated here to keep packages decoupled from test code).
func ringMessages(m *mesh.Mesh, vcs int) []*wormhole.Message {
	orders := routing.UniformAscending(2, 2)
	mk := func(id int, src, via, dst mesh.Coord) *wormhole.Message {
		r := &routing.Route{
			Vias: []mesh.Coord{via},
			Path: routing.PathK(m, orders, src, dst, []mesh.Coord{via}),
		}
		msg, err := wormhole.MessageFromRoute(m, orders, r, src, dst, id, 12, 0, vcs)
		if err != nil {
			panic(err)
		}
		return msg
	}
	return []*wormhole.Message{
		mk(0, mesh.C(0, 0), mesh.C(2, 0), mesh.C(2, 2)),
		mk(1, mesh.C(2, 0), mesh.C(2, 2), mesh.C(0, 2)),
		mk(2, mesh.C(2, 2), mesh.C(0, 2), mesh.C(0, 0)),
		mk(3, mesh.C(0, 2), mesh.C(0, 0), mesh.C(2, 0)),
	}
}

// runHardness machine-checks the Section 9 reduction on a small graph: a
// cover encodes to a valid lamb set, a non-cover does not, and Lamb1's
// output decodes back to a cover.
func runHardness(Config) *Table {
	c, err := hardness.Build([][]int{{1}, {0}}, 0)
	if err != nil {
		panic(err)
	}
	orders := routing.UniformAscending(3, 2)
	t := &Table{ID: "hardness",
		Title:   "vertex cover <-> lamb set on the Section 9 construction (single-edge graph)",
		Paper:   "Theorem 9.1 / 9.4: (3,2)-lamb is NP-hard; covers and lamb sets interconvert",
		Columns: []string{"check", "result"},
	}
	coverLambs := c.LambSetFromCover([]bool{false, true, false})
	ok := core.VerifyLambSet(c.Faults, orders, coverLambs) == nil
	t.AddRow("cover {u1} encodes to a valid lamb set", fmt.Sprint(ok))
	bad := core.VerifyLambSet(c.Faults, orders, c.LambSetFromCover([]bool{false, false, false})) != nil
	t.AddRow("empty cover encodes to an invalid lamb set", fmt.Sprint(bad))
	res, err := core.Lamb1(c.Faults, orders)
	if err != nil {
		panic(err)
	}
	dec := c.CoverFromLambSet(res.Lambs)
	t.AddRow("Lamb1 output decodes to a vertex cover", fmt.Sprint(c.IsVertexCover(dec)))
	t.AddRow("mesh", c.Mesh.String())
	t.AddRow("faults in construction", fmt.Sprint(c.Faults.NumNodeFaults()))
	t.AddRow("Lamb1 lamb count", fmt.Sprint(res.NumLambs()))
	return t
}
