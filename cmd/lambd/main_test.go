package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lambmesh/internal/server"
)

// startDaemon builds a server via the same path cmdServe uses and exposes
// it over httptest, so the client subcommands run against the real wire.
func startDaemon(t *testing.T, meshSpec string, loadPath string) (*server.Server, string) {
	t.Helper()
	return startDaemonSource(t, meshSpec, loadPath, "")
}

func startDaemonSource(t *testing.T, meshSpec, loadPath, routeSource string) (*server.Server, string) {
	t.Helper()
	s, err := newServerFromFlags(meshSpec, 2, false, loadPath, 0, routeSource)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

func runCmd(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestRouteSubcommand(t *testing.T) {
	_, url := startDaemon(t, "8x8", "")
	out, errOut, code := runCmd(t, "route", "-addr", url, "-src", "0,0", "-dst", "7,7")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "14 hops") || !strings.Contains(out, "generation 0") {
		t.Errorf("route output: %q", out)
	}
	if !strings.Contains(out, "(0,0)") || !strings.Contains(out, "(7,7)") {
		t.Errorf("route output missing path: %q", out)
	}
	out, _, code = runCmd(t, "route", "-addr", url, "-src", "0,0", "-dst", "7,7", "-json")
	if code != 0 || !strings.Contains(out, `"found":true`) {
		t.Errorf("json route output (%d): %q", code, out)
	}
}

func TestRouteSubcommandCachePlane(t *testing.T) {
	_, url := startDaemonSource(t, "8x8", "", server.RouteSourceCache)
	runCmd(t, "route", "-addr", url, "-src", "0,0", "-dst", "7,7")
	out, _, code := runCmd(t, "route", "-addr", url, "-src", "0,0", "-dst", "7,7", "-json")
	if code != 0 || !strings.Contains(out, `"cached":true`) {
		t.Errorf("json route output on cache plane (%d): %q", code, out)
	}
}

func TestRouteSubcommandErrors(t *testing.T) {
	_, url := startDaemon(t, "8x8", "")
	if _, errOut, code := runCmd(t, "route", "-addr", url, "-src", "0,0"); code != 1 ||
		!strings.Contains(errOut, "-src and -dst are required") {
		t.Errorf("missing dst: exit %d, %q", code, errOut)
	}
	// A malformed coordinate is rejected by the server with HTTP 400,
	// which the client surfaces as an error.
	if _, errOut, code := runCmd(t, "route", "-addr", url, "-src", "zap", "-dst", "0,0"); code != 1 ||
		!strings.Contains(errOut, "server:") {
		t.Errorf("bad src: exit %d, %q", code, errOut)
	}
	// An out-of-mesh coordinate is a graceful found=false answer.
	out, _, code := runCmd(t, "route", "-addr", url, "-src", "9,9", "-dst", "0,0")
	if code != 0 || !strings.Contains(out, "no route") || !strings.Contains(out, "outside mesh") {
		t.Errorf("out-of-mesh: exit %d, %q", code, out)
	}
}

func TestFaultsConfigMetricsSubcommands(t *testing.T) {
	s, url := startDaemon(t, "8x8", "")
	out, errOut, code := runCmd(t, "faults", "-addr", url,
		"-nodes", "(3,3);(4,4)", "-links", "(1,1),0,+1")
	if code != 0 {
		t.Fatalf("faults exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "accepted 3 faults") {
		t.Errorf("faults output: %q", out)
	}
	waitGen(t, s, 1)

	out, _, code = runCmd(t, "config", "-addr", url)
	if code != 0 || !strings.Contains(out, "mesh 8x8") ||
		!strings.Contains(out, "generation 1") ||
		!strings.Contains(out, "faults: 2 nodes, 1 links") {
		t.Errorf("config output (%d): %q", code, out)
	}
	out, _, code = runCmd(t, "config", "-addr", url, "-json")
	if code != 0 || !strings.Contains(out, `"mesh":"8x8"`) {
		t.Errorf("config -json output (%d): %q", code, out)
	}

	out, _, code = runCmd(t, "metrics", "-addr", url)
	if code != 0 || !strings.Contains(out, "lambd_fault_reports_total 1") ||
		!strings.Contains(out, "lambd_recomputes_total 1") {
		t.Errorf("metrics output (%d): %q", code, out)
	}
}

func TestFaultsFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faults.txt")
	content := "mesh 8x8\nnode 2,2\nnode 5,5\nlink 1,1 0 +1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, url := startDaemon(t, "8x8", "")
	out, errOut, code := runCmd(t, "faults", "-addr", url, "-file", path)
	if code != 0 {
		t.Fatalf("faults -file exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "accepted 3 faults") {
		t.Errorf("faults -file output: %q", out)
	}
	e := waitGen(t, s, 1)
	if e.Faults.NumNodeFaults() != 2 || e.Faults.NumLinkFaults() != 1 {
		t.Errorf("daemon faults after file report: %d nodes, %d links",
			e.Faults.NumNodeFaults(), e.Faults.NumLinkFaults())
	}
}

func TestServeLoadSeedsFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.txt")
	if err := os.WriteFile(path, []byte("mesh 8x8\nnode 4,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := startDaemon(t, "ignored", path)
	e := s.Epoch()
	if e.Generation != 1 || e.Faults.NumNodeFaults() != 1 {
		t.Errorf("seeded daemon: generation %d, %d faults", e.Generation, e.Faults.NumNodeFaults())
	}
}

func TestBuildFaultReport(t *testing.T) {
	r, err := buildFaultReport("(1,2); (3,4)", "(0,0),1,-; (2,2),0,+1", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 2 || len(r.Links) != 2 {
		t.Fatalf("report: %+v", r)
	}
	if r.Links[0] != (server.LinkReport{From: "(0,0)", Dim: 1, Dir: -1}) {
		t.Errorf("link 0: %+v", r.Links[0])
	}
	for _, bad := range []struct{ nodes, links string }{
		{"junk", ""},
		{"", "(1,1)"},
		{"", "(1,1),x,+"},
		{"", "(1,1),0,up"},
		{"", "1,1,0,+"},
	} {
		if _, err := buildFaultReport(bad.nodes, bad.links, ""); err == nil {
			t.Errorf("buildFaultReport(%q, %q) should fail", bad.nodes, bad.links)
		}
	}
	if _, err := buildFaultReport("", "", "/does/not/exist"); err == nil {
		t.Error("missing fault file should fail")
	}
}

func TestUnknownSubcommandAndUsage(t *testing.T) {
	_, errOut, code := runCmd(t, "bogus")
	if code != 2 || !strings.Contains(errOut, "unknown subcommand") {
		t.Errorf("bogus subcommand: exit %d, %q", code, errOut)
	}
	if _, errOut, code = runCmd(t); code != 2 || !strings.Contains(errOut, "usage:") {
		t.Errorf("no args: exit %d, %q", code, errOut)
	}
	if out, _, code := runCmd(t, "help"); code != 0 || !strings.Contains(out, "subcommands:") {
		t.Errorf("help: exit %d, %q", code, out)
	}
}

func TestParseWidths(t *testing.T) {
	got, err := parseWidths("16x16x8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseWidths: %v %v", got, err)
	}
	for _, bad := range []string{"", "ax3", "8x"} {
		if _, err := parseWidths(bad); err == nil {
			t.Errorf("parseWidths(%q) should fail", bad)
		}
	}
}

// waitGen polls until the daemon's epoch reaches gen.
func waitGen(t *testing.T, s *server.Server, gen uint64) *server.Epoch {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if e := s.Epoch(); e.Generation >= gen {
			return e
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("epoch stuck at generation %d, want %d", s.Epoch().Generation, gen)
	return nil
}
