package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	if got := Clamp(3); got != 3 {
		t.Errorf("Clamp(3) = %d", got)
	}
	if got := Clamp(1); got != 1 {
		t.Errorf("Clamp(1) = %d", got)
	}
	for _, n := range []int{0, -1, -100} {
		if got := Clamp(n); got != runtime.NumCPU() {
			t.Errorf("Clamp(%d) = %d, want NumCPU=%d", n, got, runtime.NumCPU())
		}
	}
}

// Do must execute every index exactly once, for any worker count.
func TestDoCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			counts := make([]atomic.Int32, n)
			Do(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// Blocks must partition [0,n) exactly: every index in one block, no overlap.
func TestBlocksPartitionExact(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 101} {
			counts := make([]atomic.Int32, n)
			Blocks(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad block [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

// With workers <= 1 both helpers must run inline on the calling goroutine —
// callers rely on this for the serial fallback.
func TestInlineWhenSerial(t *testing.T) {
	var gid [2]int
	probe := func(slot int) { gid[slot]++ }
	Do(1, 4, func(int) { probe(0) })
	Blocks(1, 4, func(lo, hi int) { probe(1) })
	if gid[0] != 4 || gid[1] != 1 {
		t.Errorf("inline execution counts = %v", gid)
	}
}
