// Command benchcheck validates the shape of BENCH_lamb.json, the perf
// trajectory file scripts/bench.sh emits, and enforces the checked-in
// per-benchmark allocation budgets. CI runs `scripts/bench.sh --check`
// (which execs this) so the bench harness cannot rot silently and so an
// allocs/op regression on a hot path fails the build instead of landing
// quietly.
//
// Budgets live in scripts/benchcheck/budgets.json: a ceiling on
// allocs_per_op at workers=1 for each recorded benchmark. After a
// deliberate change in allocation behaviour, regenerate them from a fresh
// BENCH_lamb.json with:
//
//	go run ./scripts/benchcheck -write
//
// which records ceil(1.25 x observed) per benchmark — headroom for run-to-
// run noise, tight enough that reintroducing a per-iteration allocation in
// a steady-state loop (typically a >2x jump) trips the check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type benchEntry struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type benchFile struct {
	Schema     string       `json:"schema"`
	Date       string       `json:"date"`
	GoVersion  string       `json:"go"`
	NumCPU     int          `json:"num_cpu"`
	Gomaxprocs int          `json:"gomaxprocs"`
	Benchtime  string       `json:"benchtime"`
	Benchmarks []benchEntry `json:"benchmarks"`
	Baseline   []benchEntry `json:"baseline,omitempty"` // pre-optimization rows, kept for before/after comparison
	// SpeedupSkipped explains an empty speedup map (single-CPU recorder);
	// its presence and the map's emptiness must agree.
	SpeedupSkipped string             `json:"speedup_skipped,omitempty"`
	Speedup        map[string]float64 `json:"speedup"`
}

// requiredBenchmarks are the hot-path benchmarks the issue tracks; each must
// appear at workers=1, and (when the recording machine had >1 CPU) at
// workers=NumCPU too.
var requiredBenchmarks = []string{
	"BenchmarkFig17Trial",
	"BenchmarkFig18Trial",
	"BenchmarkBitmatMul",
	"BenchmarkSec5LambSet",
	"BenchmarkWormholeRun",
	"BenchmarkTrafficEngine",
	"BenchmarkClassTableQuery",
	"BenchmarkWireRoundTrip",
	"BenchmarkIncrementalAddFaults/delta=1",
	"BenchmarkIncrementalAddFaults/delta=4",
	"BenchmarkIncrementalAddFaults/delta=16",
	"BenchmarkIncrementalAddFaults/full-delta=1",
	"BenchmarkIncrementalAddFaults/full-delta=4",
	"BenchmarkIncrementalAddFaults/full-delta=16",
	"BenchmarkClassTableSwapQuery/cold",
	"BenchmarkClassTableSwapQuery/warm",
	"BenchmarkCampaignTrial",
	"BenchmarkCampaignRun",
}

// budgetFile is the checked-in allocation budget table: for each benchmark,
// the maximum admissible allocs_per_op at workers=1.
type budgetFile struct {
	Schema  string             `json:"schema"`
	Budgets map[string]float64 `json:"budgets"`
}

const budgetSchema = "lambmesh-alloc-budget/v1"

func main() {
	file := flag.String("file", "BENCH_lamb.json", "bench JSON file to validate")
	budget := flag.String("budget", "scripts/benchcheck/budgets.json", "allocation budget table")
	write := flag.Bool("write", false, "regenerate the budget table from -file instead of checking against it")
	flag.Parse()
	if *write {
		if err := writeBudgets(*file, *budget); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: wrote %s from %s\n", *budget, *file)
		return
	}
	if err := check(*file, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %s OK\n", *file)
}

func check(path, budgetPath string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("%s: not valid JSON: %v", path, err)
	}
	if bf.Schema != "lambmesh-bench/v1" {
		return fmt.Errorf("%s: schema %q, want lambmesh-bench/v1", path, bf.Schema)
	}
	if bf.NumCPU < 1 {
		return fmt.Errorf("%s: num_cpu %d", path, bf.NumCPU)
	}
	if bf.Gomaxprocs < 1 {
		return fmt.Errorf("%s: missing gomaxprocs (re-run scripts/bench.sh)", path)
	}
	if bf.Date == "" || bf.GoVersion == "" {
		return fmt.Errorf("%s: missing date or go version", path)
	}
	seen := map[string]map[int]bool{}
	for i, b := range bf.Benchmarks {
		if b.Name == "" || b.Workers < 1 || b.NsPerOp <= 0 {
			return fmt.Errorf("%s: benchmarks[%d] malformed: %+v", path, i, b)
		}
		if seen[b.Name] == nil {
			seen[b.Name] = map[int]bool{}
		}
		if seen[b.Name][b.Workers] {
			return fmt.Errorf("%s: duplicate entry %s workers=%d", path, b.Name, b.Workers)
		}
		seen[b.Name][b.Workers] = true
	}
	for _, name := range requiredBenchmarks {
		if !seen[name][1] {
			return fmt.Errorf("%s: missing %s at workers=1", path, name)
		}
		if bf.NumCPU > 1 && !seen[name][bf.NumCPU] {
			return fmt.Errorf("%s: missing %s at workers=%d (NumCPU)", path, name, bf.NumCPU)
		}
	}
	if bf.NumCPU > 1 && len(bf.Speedup) == 0 {
		return fmt.Errorf("%s: num_cpu %d but no speedup map", path, bf.NumCPU)
	}
	// A single-CPU recording must say so explicitly — an empty speedup map
	// without the marker is indistinguishable from a broken parallel pass.
	if bf.NumCPU == 1 {
		if bf.SpeedupSkipped == "" {
			return fmt.Errorf("%s: num_cpu 1 but no speedup_skipped marker (re-run scripts/bench.sh)", path)
		}
		if len(bf.Speedup) != 0 {
			return fmt.Errorf("%s: num_cpu 1 yet speedup map has %d entries", path, len(bf.Speedup))
		}
	} else if bf.SpeedupSkipped != "" {
		return fmt.Errorf("%s: speedup_skipped set on a %d-CPU recording", path, bf.NumCPU)
	}
	return checkBudgets(path, budgetPath, bf)
}

// checkBudgets enforces the allocation ceilings: every workers=1 entry must
// have a budget, and must stay at or under it. Both directions fail — an
// over-budget entry is a regression, a missing budget means the table was
// not regenerated after adding a benchmark.
func checkBudgets(path, budgetPath string, bf benchFile) error {
	raw, err := os.ReadFile(budgetPath)
	if err != nil {
		return fmt.Errorf("alloc budget table: %v (regenerate with `go run ./scripts/benchcheck -write`)", err)
	}
	var budgets budgetFile
	if err := json.Unmarshal(raw, &budgets); err != nil {
		return fmt.Errorf("%s: not valid JSON: %v", budgetPath, err)
	}
	if budgets.Schema != budgetSchema {
		return fmt.Errorf("%s: schema %q, want %s", budgetPath, budgets.Schema, budgetSchema)
	}
	for _, b := range bf.Benchmarks {
		if b.Workers != 1 {
			continue
		}
		ceil, ok := budgets.Budgets[b.Name]
		if !ok {
			return fmt.Errorf("%s: no alloc budget for %s — regenerate %s with `go run ./scripts/benchcheck -write`", path, b.Name, budgetPath)
		}
		if b.AllocsPerOp > ceil {
			return fmt.Errorf("%s: %s allocates %.0f/op, over the budget of %.0f — a regression, or regenerate %s after a deliberate change", path, b.Name, b.AllocsPerOp, ceil, budgetPath)
		}
	}
	return nil
}

// writeBudgets regenerates the budget table from a bench file, giving each
// workers=1 entry 25% headroom (and a floor of 1 so zero-alloc benchmarks
// tolerate a stray allocation from the harness itself).
func writeBudgets(path, budgetPath string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("%s: not valid JSON: %v", path, err)
	}
	out := budgetFile{Schema: budgetSchema, Budgets: map[string]float64{}}
	for _, b := range bf.Benchmarks {
		if b.Workers != 1 {
			continue
		}
		ceil := math.Ceil(b.AllocsPerOp * 1.25)
		if ceil < 1 {
			ceil = 1
		}
		out.Budgets[b.Name] = ceil
	}
	if len(out.Budgets) == 0 {
		return fmt.Errorf("%s: no workers=1 entries to budget", path)
	}
	names := make([]string, 0, len(out.Budgets))
	for n := range out.Budgets {
		names = append(names, n)
	}
	sort.Strings(names)
	// Marshal by hand to keep the table ordered and diff-friendly.
	buf := fmt.Sprintf("{\n  \"schema\": %q,\n  \"budgets\": {\n", budgetSchema)
	for i, n := range names {
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		buf += fmt.Sprintf("    %q: %.0f%s\n", n, out.Budgets[n], comma)
	}
	buf += "  }\n}\n"
	return os.WriteFile(budgetPath, []byte(buf), 0o644)
}
