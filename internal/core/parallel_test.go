package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// lambBytes serializes a result's lamb set so runs can be compared
// byte-for-byte, the determinism guarantee WithWorkers documents.
func lambBytes(r *Result) []byte {
	var b bytes.Buffer
	for _, c := range r.Lambs {
		fmt.Fprintln(&b, c)
	}
	fmt.Fprintln(&b, r.Stats)
	return b.Bytes()
}

// Lamb2 (and Lamb1, and the sweep path) must emit byte-identical lamb sets
// for workers in {1, 2, NumCPU} — parallelism may only change wall-clock.
func TestWorkersByteIdenticalLambSets(t *testing.T) {
	m := mesh.MustNew(14, 14)
	rng := rand.New(rand.NewSource(31))
	f := mesh.RandomNodeFaults(m, 16, rng)
	orders := routing.UniformAscending(2, 2)
	workerCounts := []int{1, 2, runtime.NumCPU()}

	algos := map[string]func(workers int) (*Result, error){
		"lamb1": func(w int) (*Result, error) {
			return Lamb1(f, orders, WithWorkers(w))
		},
		"lamb1-sweep": func(w int) (*Result, error) {
			return Lamb1(f, orders, WithWorkers(w), WithSweepReachability())
		},
		"lamb2": func(w int) (*Result, error) {
			return Lamb2(f, orders, ApproxWVC, WithWorkers(w))
		},
		"exact": func(w int) (*Result, error) {
			return ExactLamb(f, orders, WithWorkers(w))
		},
	}
	for name, run := range algos {
		var base []byte
		for _, w := range workerCounts {
			res, err := run(w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			got := lambBytes(res)
			if base == nil {
				base = got
				continue
			}
			if !bytes.Equal(got, base) {
				t.Errorf("%s: workers=%d output differs from workers=1:\n%s\nvs\n%s",
					name, w, got, base)
			}
		}
	}
}

// The Reconfigurer's Workers knob must not change the evolving lamb sets.
func TestReconfigurerWorkersDeterministic(t *testing.T) {
	m := mesh.MustNew(12, 12)
	orders := routing.UniformAscending(2, 2)
	batches := [][]mesh.Coord{
		{mesh.C(3, 3), mesh.C(4, 4)},
		{mesh.C(8, 2)},
		{mesh.C(6, 6), mesh.C(6, 7), mesh.C(7, 6)},
	}
	run := func(workers int) []byte {
		rec, err := NewReconfigurer(m, orders, true)
		if err != nil {
			t.Fatal(err)
		}
		rec.Workers = workers
		var b bytes.Buffer
		for _, batch := range batches {
			res, err := rec.AddFaults(batch, nil)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(lambBytes(res))
		}
		return b.Bytes()
	}
	base := run(1)
	for _, w := range []int{2, 0} {
		if got := run(w); !bytes.Equal(got, base) {
			t.Errorf("Reconfigurer workers=%d diverged from workers=1", w)
		}
	}
}
