// Package reach implements Find-Reachability (Section 6.2 of Ho &
// Stockmeyer, IPDPS 2002): given SES and DES partitions for each routing
// round, it computes the k-round Boolean reachability matrix
//
//	R^(k) = R_1 I_1 R_2 I_2 ... I_{k-1} R_k
//
// where R_t(i,j) says whether the representative of the t-th round's i-th
// SES can 1-round-reach the representative of its j-th DES, and I_t(j,i)
// says whether the t-th round's j-th DES intersects the (t+1)-st round's
// i-th SES. By Lemma 4.1 and (the generalization of) Lemma 5.1,
// R^(k)(i,j) = 1 iff every node of SES S_{1,i} can (k,F,pi)-reach every node
// of DES D_{k,j}.
//
// Everything is O(poly(d, k, f)) — independent of the mesh size.
package reach

import (
	"fmt"

	"lambmesh/internal/bitmat"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/partition"
	"lambmesh/internal/routing"
)

// Reachability carries the partitions and matrices of Find-Reachability.
// Sigma[0] and Delta[k-1] are the partitions the WVC reduction works with.
type Reachability struct {
	Orders routing.MultiOrder
	Oracle *routing.Oracle
	// Sigma[t] / Delta[t] are the SES / DES partitions for round t.
	Sigma []*partition.Partition
	Delta []*partition.Partition
	// R[t] is the 1-round reachability matrix of round t
	// (|Sigma[t]| x |Delta[t]|).
	R []*bitmat.Matrix
	// I[t] is the intersection matrix between Delta[t] and Sigma[t+1]
	// (|Delta[t]| x |Sigma[t+1]|), for t = 0..k-2.
	I []*bitmat.Matrix
	// RK is the k-round product R^(k) (|Sigma[0]| x |Delta[k-1]|).
	RK *bitmat.Matrix
}

// Compute runs Find-Reachability for fault set f and the k-round ordering
// on all CPUs. Identical per-round orderings share partitions and matrices,
// as the paper notes (R_1 = R_2 = ... and I_1 = I_2 = ... for a uniform
// ordering).
func Compute(f *mesh.FaultSet, orders routing.MultiOrder) (*Reachability, error) {
	return ComputeWorkers(f, orders, 0)
}

// ComputeWorkers is Compute with an explicit worker-pool size (<= 0 means
// NumCPU). Three layers parallelize: distinct rounds of a non-uniform
// ordering build their partitions and R_t concurrently, each R_t and I_t
// fill is row-parallel (the routing.Oracle is read-only after NewOracle, so
// concurrent ReachOne queries are safe), and the R^(k) chain product is
// row-block parallel. Every parallel loop writes disjoint matrix rows, so
// the result is bit-identical for every worker count.
func ComputeWorkers(f *mesh.FaultSet, orders routing.MultiOrder, workers int) (*Reachability, error) {
	if err := orders.Validate(f.Mesh().Dims()); err != nil {
		return nil, err
	}
	workers = par.Clamp(workers)
	o := routing.NewOracle(f)
	k := orders.Rounds()
	rc := &Reachability{
		Orders: orders,
		Oracle: o,
		Sigma:  make([]*partition.Partition, k),
		Delta:  make([]*partition.Partition, k),
		R:      make([]*bitmat.Matrix, k),
	}

	type roundData struct {
		round int // first round using this ordering
		sigma *partition.Partition
		delta *partition.Partition
		r     *bitmat.Matrix
		err   error
	}
	cache := make(map[string]*roundData)
	var distinct []*roundData // first-appearance order
	for t := 0; t < k; t++ {
		key := orders[t].String()
		if _, ok := cache[key]; !ok {
			rd := &roundData{round: t}
			cache[key] = rd
			distinct = append(distinct, rd)
		}
	}
	par.Do(workers, len(distinct), func(i int) {
		rd := distinct[i]
		pi := orders[rd.round]
		sigma, err := partition.SES(f, pi)
		if err != nil {
			rd.err = err
			return
		}
		delta, err := partition.DES(f, pi)
		if err != nil {
			rd.err = err
			return
		}
		rd.sigma = sigma
		rd.delta = delta
		rd.r = oneRoundMatrix(o, pi, sigma, delta, workers)
	})
	for _, rd := range distinct {
		if rd.err != nil {
			return nil, rd.err
		}
	}
	for t := 0; t < k; t++ {
		rd := cache[orders[t].String()]
		rc.Sigma[t] = rd.sigma
		rc.Delta[t] = rd.delta
		rc.R[t] = rd.r
	}

	rc.I = make([]*bitmat.Matrix, k-1)
	iidx := make(map[[2]string]int) // pair key -> index into idistinct
	var idistinct []int             // first round t using each distinct pair
	iof := make([]int, k-1)
	for t := 0; t < k-1; t++ {
		key := [2]string{orders[t].String(), orders[t+1].String()}
		di, ok := iidx[key]
		if !ok {
			di = len(idistinct)
			iidx[key] = di
			idistinct = append(idistinct, t)
		}
		iof[t] = di
	}
	ims := make([]*bitmat.Matrix, len(idistinct))
	par.Do(workers, len(idistinct), func(i int) {
		t := idistinct[i]
		ims[i] = intersectionMatrix(rc.Delta[t], rc.Sigma[t+1], workers)
	})
	for t := 0; t < k-1; t++ {
		rc.I[t] = ims[iof[t]]
	}

	// R^(k) = R_1 I_1 R_2 ... I_{k-1} R_k.
	chain := make([]*bitmat.Matrix, 0, 2*k-1)
	chain = append(chain, rc.R[0])
	for t := 0; t < k-1; t++ {
		chain = append(chain, rc.I[t], rc.R[t+1])
	}
	rc.RK = bitmat.MulChainParallel(workers, chain...)
	return rc, nil
}

// oneRoundMatrix fills R_t by querying the oracle on representatives
// (Lemma 4.1), one row of SESs per worker at a time.
func oneRoundMatrix(o *routing.Oracle, pi routing.Order, sigma, delta *partition.Partition, workers int) *bitmat.Matrix {
	r := bitmat.New(sigma.Len(), delta.Len())
	par.Do(workers, sigma.Len(), func(i int) {
		s := sigma.Sets[i]
		for j, d := range delta.Sets {
			if o.ReachOne(pi, s.Rep, d.Rep) {
				r.Set(i, j)
			}
		}
	})
	return r
}

// intersectionMatrix fills I_t: I(j,i) = 1 iff D_j and S_i share a node.
// Each test is O(d) on the rectangular abbreviations; rows are filled in
// parallel.
func intersectionMatrix(delta, sigma *partition.Partition, workers int) *bitmat.Matrix {
	im := bitmat.New(delta.Len(), sigma.Len())
	par.Do(workers, delta.Len(), func(j int) {
		d := delta.Sets[j]
		for i, s := range sigma.Sets {
			if d.Rect.Intersects(s.Rect) {
				im.Set(j, i)
			}
		}
	})
	return im
}

// ComputeWithSweep is the footnote-7 alternative to Compute: identical
// partitions and R^(k) semantics, but each row of R^(k) is filled by
// growing the k-round reachable set from the SES representative with the
// O(dN)-per-round sweep, instead of by matrix products. Total time
// O(|Sigma| k d N) = O(k d^2 f N): for f large relative to N this beats the
// O(k d^3 f^3) matrix path. The per-round R and I matrices are not
// materialized (left nil). Meshes only. Runs on all CPUs.
func ComputeWithSweep(f *mesh.FaultSet, orders routing.MultiOrder) (*Reachability, error) {
	return ComputeWithSweepWorkers(f, orders, 0)
}

// ComputeWithSweepWorkers is ComputeWithSweep with an explicit worker-pool
// size (<= 0 means NumCPU): each SES representative's k-round sweep is an
// independent read-only traversal of the oracle filling its own row of
// R^(k), so rows are distributed over the pool with no effect on the
// result.
func ComputeWithSweepWorkers(f *mesh.FaultSet, orders routing.MultiOrder, workers int) (*Reachability, error) {
	if err := orders.Validate(f.Mesh().Dims()); err != nil {
		return nil, err
	}
	if f.Mesh().Torus() {
		return nil, fmt.Errorf("reach: the sweep method requires a mesh")
	}
	o := routing.NewOracle(f)
	k := orders.Rounds()
	rc := &Reachability{
		Orders: orders,
		Oracle: o,
		Sigma:  make([]*partition.Partition, k),
		Delta:  make([]*partition.Partition, k),
	}
	sigma, err := partition.SES(f, orders[0])
	if err != nil {
		return nil, err
	}
	delta, err := partition.DES(f, orders[k-1])
	if err != nil {
		return nil, err
	}
	for t := 0; t < k; t++ {
		rc.Sigma[t] = sigma // only Sigma[0] and Delta[k-1] are meaningful here
		rc.Delta[t] = delta
	}
	m := f.Mesh()
	rk := bitmat.New(sigma.Len(), delta.Len())
	par.Do(workers, sigma.Len(), func(i int) {
		set := o.ReachKSetSweep(orders, sigma.Sets[i].Rep)
		for j, d := range delta.Sets {
			if set[m.Index(d.Rep)] {
				rk.Set(i, j)
			}
		}
	})
	rc.RK = rk
	return rc, nil
}

// ReferenceRK recomputes R^(k) by the O(N^2) spanning-tree method the paper
// describes as the straightforward alternative (Section 4): a k-round
// reachable set is grown from each SES representative. Tests use it to
// cross-check the matrix-product result on small meshes.
func ReferenceRK(o *routing.Oracle, orders routing.MultiOrder, sigma, delta *partition.Partition) *bitmat.Matrix {
	m := o.Mesh()
	rk := bitmat.New(sigma.Len(), delta.Len())
	for i, s := range sigma.Sets {
		set := o.ReachKSet(orders, s.Rep)
		for j, d := range delta.Sets {
			if set[m.Index(d.Rep)] {
				rk.Set(i, j)
			}
		}
	}
	return rk
}
