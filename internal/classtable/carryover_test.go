package classtable

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// lookupAll answers every good (src,dst) pair and returns the results in
// scan order, Via cloned out of the scratch.
func lookupAll(t *testing.T, tab *Table) []Result {
	t.Helper()
	m := tab.Mesh()
	var q Scratch
	out := make([]Result, 0, m.Nodes()*m.Nodes())
	for si := int64(0); si < m.Nodes(); si++ {
		for di := int64(0); di < m.Nodes(); di++ {
			out = append(out, tab.Lookup(m.CoordOf(si), m.CoordOf(di), &q).Clone())
		}
	}
	return out
}

func sameResults(t *testing.T, got, want []Result, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results != %d", ctx, len(got), len(want))
	}
	for n := range got {
		g, w := got[n], want[n]
		if g.Found != w.Found || g.Code != w.Code || g.NVias != w.NVias ||
			g.Hops != w.Hops || g.Turns != w.Turns {
			t.Fatalf("%s: result %d = %+v, want %+v", ctx, n, g, w)
		}
		if (g.Via == nil) != (w.Via == nil) || (g.Via != nil && !g.Via.Equal(w.Via)) {
			t.Fatalf("%s: result %d via %v, want %v", ctx, n, g.Via, w.Via)
		}
	}
}

// The carry-over pin: a table warm-started from the previous epoch answers
// every query byte-identically to a cold table on the same fault set — over
// randomized fault growth with node and link faults — while actually
// migrating slots (WarmSlots > 0 once the previous table saw traffic).
func TestNewFromMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	orders := routing.UniformAscending(2, 2)
	for trial := 0; trial < 4; trial++ {
		m := mesh.MustNew(8, 8)
		f := mesh.NewFaultSet(m)
		var prev *Table
		for gen := 0; gen < 4; gen++ {
			// Grow the fault set by a small random delta.
			for i := 0; i <= rng.Intn(2); i++ {
				if rng.Intn(3) == 0 {
					c := m.CoordOf(rng.Int63n(m.Nodes()))
					dim := rng.Intn(2)
					dir := 1 - 2*rng.Intn(2)
					if _, ok := m.Neighbor(c, dim, dir); ok {
						f.AddLink(mesh.Link{From: c, Dim: dim, Dir: dir})
					}
				} else {
					f.AddNode(m.CoordOf(rng.Int63n(m.Nodes())))
				}
			}
			warm, err := NewFrom(f, orders, 1, prev)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := New(f, orders, 1)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, lookupAll(t, warm), lookupAll(t, cold), "gen")
			if prev != nil {
				if ws := warm.Stats().WarmSlots; ws == 0 {
					t.Fatalf("trial %d gen %d: no slots carried over from a fully-exercised table", trial, gen)
				}
			}
			// Exercise the warm table so the next generation has hit counts
			// and filled slots to migrate; it becomes the next prev.
			prev = warm
		}
	}
}

// The warm-hit counters: queries against migrated/prefilled slots count as
// warm hits, and WarmSlots + on-demand fills reconcile with FilledSlots.
func TestNewFromWarmHitAccounting(t *testing.T) {
	m := mesh.MustNew(8, 8)
	orders := routing.UniformAscending(2, 2)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(3, 3))
	prev, err := New(f, orders, 1)
	if err != nil {
		t.Fatal(err)
	}
	lookupAll(t, prev) // fill every reachable slot
	f.AddNodes(mesh.C(6, 1))
	warm, err := NewFrom(f, orders, 1, prev)
	if err != nil {
		t.Fatal(err)
	}
	before := warm.Stats()
	if before.WarmSlots == 0 || before.FilledSlots != int(before.WarmSlots) {
		t.Fatalf("after build: %+v", before)
	}
	if before.WarmHits != 0 || before.ColdFills != 0 {
		t.Fatalf("no queries ran yet: %+v", before)
	}
	lookupAll(t, warm)
	after := warm.Stats()
	if after.WarmHits == 0 {
		t.Fatal("prefilled slots should serve warm hits")
	}
	if after.ColdFills != int64(after.FilledSlots)-after.WarmSlots {
		t.Fatalf("cold fills %d != filled %d - warm %d",
			after.ColdFills, after.FilledSlots, after.WarmSlots)
	}
}

// Degradation: nil prev, mismatched mesh, and mismatched orders all produce
// a plain cold table (and never fail).
func TestNewFromDegradesToNew(t *testing.T) {
	orders := routing.UniformAscending(2, 2)
	f := mesh.NewFaultSet(mesh.MustNew(8, 8))
	f.AddNodes(mesh.C(2, 2))

	tab, err := NewFrom(f, orders, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stats().WarmSlots != 0 {
		t.Fatal("nil prev cannot warm anything")
	}

	otherMesh := mesh.NewFaultSet(mesh.MustNew(6, 6))
	prevSmall, err := New(otherMesh, orders, 1)
	if err != nil {
		t.Fatal(err)
	}
	lookupAll(t, prevSmall)
	tab, err = NewFrom(f, orders, 1, prevSmall)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stats().WarmSlots != 0 {
		t.Fatal("mesh mismatch must degrade to a cold table")
	}

	prevYX, err := New(f, routing.MultiOrder{{1, 0}, {0, 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err = NewFrom(f, orders, 1, prevYX)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stats().WarmSlots != 0 {
		t.Fatal("order mismatch must degrade to a cold table")
	}
}

// The previous table stays fully usable after NewFrom — the epoch swap
// keeps serving queries from it until the new epoch publishes.
func TestNewFromLeavesPrevUsable(t *testing.T) {
	m := mesh.MustNew(8, 8)
	orders := routing.UniformAscending(2, 2)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(4, 4))
	prev, err := New(f, orders, 1)
	if err != nil {
		t.Fatal(err)
	}
	baseline := lookupAll(t, prev)
	f.AddNodes(mesh.C(1, 6))
	if _, err := NewFrom(f, orders, 1, prev); err != nil {
		t.Fatal(err)
	}
	sameResults(t, lookupAll(t, prev), baseline, "prev after NewFrom")
}
