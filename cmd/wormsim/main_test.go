package main

import "testing"

func TestParseWidths(t *testing.T) {
	got, err := parseWidths("16x16")
	if err != nil || len(got) != 2 || got[0] != 16 || got[1] != 16 {
		t.Fatalf("parseWidths: %v %v", got, err)
	}
	got, err = parseWidths("8x4x2")
	if err != nil || len(got) != 3 || got[2] != 2 {
		t.Fatalf("parseWidths 3D: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "8x", "x8", "8y8", "a"} {
		if _, err := parseWidths(bad); err == nil {
			t.Errorf("parseWidths(%q) should fail", bad)
		}
	}
}
