// Command lambd runs the lambmesh route control plane: a daemon that owns
// the roll-back/reconfigure loop (paper Section 1) and serves route
// queries over HTTP/JSON while fault reports stream in. It also bundles a
// small client for each endpoint.
//
// Usage:
//
//	lambd serve  -addr :8080 -wire-addr :8081 -mesh 16x16 -k 2 [-keep-lambs] [-load faults.txt] [-workers N] [-route-source classtable|cache] [-pprof-addr localhost:6060]
//	lambd route  -addr http://host:8080 -src 0,0 -dst 5,5
//	lambd faults -addr http://host:8080 [-nodes "(3,3);(4,4)"] [-links "(1,1),0,+1"] [-file faults.txt]
//	lambd config -addr http://host:8080
//	lambd metrics -addr http://host:8080
//	lambd bench  -addr http://host:8080 [-proto wire|http] [-conns N] [-pipeline D] [-duration 10s] [-mix uniform|hotspot] [-json out.json]
//
// Every client subcommand honors -timeout and exits non-zero when the
// daemon is unreachable or answers an error status.
//
// Fault files use the lambmesh fault format (lambmesh.WriteFaults); the
// "faults" subcommand's -file reports a file's faults to a running daemon,
// while serve's -load seeds the daemon with them at startup.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // serve's -pprof-addr listener
	"os"
	"strconv"
	"strings"
	"time"

	"lambmesh"
	"lambmesh/internal/server"
	"lambmesh/internal/wire"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "serve":
		err = cmdServe(rest, stdout, stderr)
	case "route":
		err = cmdRoute(rest, stdout)
	case "faults":
		err = cmdFaults(rest, stdout)
	case "config":
		err = cmdConfig(rest, stdout)
	case "metrics":
		err = cmdMetrics(rest, stdout)
	case "bench":
		err = cmdBench(rest, stdout)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "lambd: unknown subcommand %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "lambd:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: lambd <subcommand> [flags]

subcommands:
  serve    run the route control plane daemon
  route    query a running daemon for a k-round route
  faults   report newly detected faults to a running daemon
  config   show a running daemon's live epoch
  metrics  dump a running daemon's /metrics page
  bench    closed-loop load generator for the HTTP or binary route protocol

run 'lambd <subcommand> -h' for flags.`)
}

// newServerFromFlags assembles the daemon from serve's flag values.
// Factored out of cmdServe so tests can build (and close) a server
// without binding a listener.
func newServerFromFlags(meshSpec string, k int, keepLambs bool, loadPath string, workers int, routeSource string) (*server.Server, error) {
	var initial *lambmesh.FaultSet
	var m *lambmesh.Mesh
	if loadPath != "" {
		fh, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		initial, err = lambmesh.ReadFaults(fh)
		fh.Close()
		if err != nil {
			return nil, err
		}
		m = initial.Mesh()
	} else {
		widths, err := parseWidths(meshSpec)
		if err != nil {
			return nil, err
		}
		m, err = lambmesh.NewMesh(widths...)
		if err != nil {
			return nil, err
		}
	}
	return server.New(server.Config{
		Mesh:          m,
		Orders:        lambmesh.UniformAscending(m.Dims(), k),
		KeepLambs:     keepLambs,
		InitialFaults: initial,
		Workers:       workers,
		RouteSource:   routeSource,
	})
}

func cmdServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		wireAddr  = fs.String("wire-addr", ":8081", "binary route protocol listen address (empty disables)")
		meshSpec  = fs.String("mesh", "16x16", "mesh widths, e.g. 16x16 or 32x32x32")
		k         = fs.Int("k", 2, "routing rounds (virtual channels)")
		keepLambs = fs.Bool("keep-lambs", false, "lamb sets only grow across generations")
		load      = fs.String("load", "", "seed faults from a lambmesh fault file (overrides -mesh)")
		workers   = fs.Int("workers", 0, "recompute worker pool size; 0 = all CPUs (shrinks the stale-epoch window)")
		source    = fs.String("route-source", "", "route data plane: classtable, cache, or empty for auto")
		pprofAddr = fs.String("pprof-addr", "", "net/http/pprof listen address, e.g. localhost:6060 (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := newServerFromFlags(*meshSpec, *k, *keepLambs, *load, *workers, *source)
	if err != nil {
		return err
	}
	defer s.Close()
	s.PublishExpvar()
	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux at import;
		// serve that mux on its own listener so profiles stay off the
		// public API port.
		l, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		defer l.Close()
		go http.Serve(l, nil)
		fmt.Fprintf(stdout, "lambd: pprof on http://%s/debug/pprof/\n", l.Addr())
	}
	if *wireAddr != "" {
		l, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			return err
		}
		defer l.Close()
		go wire.Serve(l, s.WireBackend())
		fmt.Fprintf(stdout, "lambd: binary route protocol on %s\n", *wireAddr)
	}
	e := s.Epoch()
	fmt.Fprintf(stdout, "lambd: serving %v (k=%d, generation %d, %d faults, %d lambs, %s plane) on %s\n",
		s.Mesh(), *k, e.Generation, e.Faults.Count(), len(e.Lambs), s.RouteSource(), *addr)
	return http.ListenAndServe(*addr, s.Handler())
}

// clientFlags registers the flags every client subcommand shares.
func clientFlags(fs *flag.FlagSet) (addr *string, timeout *time.Duration) {
	addr = fs.String("addr", "http://localhost:8080", "daemon base URL")
	timeout = fs.Duration("timeout", 10*time.Second, "request timeout (0 = none)")
	return addr, timeout
}

func cmdRoute(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	addr, timeout := clientFlags(fs)
	var (
		src     = fs.String("src", "", "source coordinate, e.g. 0,0")
		dst     = fs.String("dst", "", "destination coordinate")
		rawJSON = fs.Bool("json", false, "print the raw JSON response")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *src == "" || *dst == "" {
		return fmt.Errorf("route: -src and -dst are required")
	}
	var resp server.RouteResponse
	raw, err := postJSON(httpClient(*timeout), *addr+"/v1/route", server.RouteRequest{Src: *src, Dst: *dst}, &resp)
	if err != nil {
		return err
	}
	if *rawJSON {
		fmt.Fprintln(stdout, string(raw))
		return nil
	}
	if !resp.Found {
		fmt.Fprintf(stdout, "no route (generation %d): %s\n", resp.Generation, resp.Reason)
		return nil
	}
	cached := ""
	if resp.Cached {
		cached = ", cached"
	}
	fmt.Fprintf(stdout, "%s -> %s: %d hops, %d turns, vias %s (generation %d%s)\n",
		resp.Src, resp.Dst, resp.Hops, resp.Turns, strings.Join(resp.Vias, " "), resp.Generation, cached)
	fmt.Fprintln(stdout, strings.Join(resp.Path, " "))
	return nil
}

func cmdFaults(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	addr, timeout := clientFlags(fs)
	var (
		nodes = fs.String("nodes", "", "semicolon-separated node faults, e.g. \"(3,3);(4,4)\"")
		links = fs.String("links", "", "semicolon-separated link faults as \"(x,y),dim,dir\"")
		file  = fs.String("file", "", "report every fault in a lambmesh fault file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	report, err := buildFaultReport(*nodes, *links, *file)
	if err != nil {
		return err
	}
	if len(report.Nodes)+len(report.Links) == 0 {
		return fmt.Errorf("faults: nothing to report (use -nodes, -links, or -file)")
	}
	var ack server.FaultAck
	if _, err := postJSON(httpClient(*timeout), *addr+"/v1/faults", report, &ack); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "accepted %d faults at generation %d; poll 'lambd config' for the swap\n",
		ack.Accepted, ack.Generation)
	return nil
}

// buildFaultReport merges inline node/link specs and a fault file into one
// wire-format report.
func buildFaultReport(nodes, links, file string) (server.FaultReport, error) {
	var report server.FaultReport
	for _, spec := range splitSpecs(nodes) {
		if _, err := lambmesh.ParseCoord(spec); err != nil {
			return report, fmt.Errorf("node %q: %v", spec, err)
		}
		report.Nodes = append(report.Nodes, spec)
	}
	for _, spec := range splitSpecs(links) {
		lr, err := parseLinkSpec(spec)
		if err != nil {
			return report, err
		}
		report.Links = append(report.Links, lr)
	}
	if file != "" {
		fh, err := os.Open(file)
		if err != nil {
			return report, err
		}
		f, err := lambmesh.ReadFaults(fh)
		fh.Close()
		if err != nil {
			return report, err
		}
		for _, c := range f.SortedNodeFaults() {
			report.Nodes = append(report.Nodes, c.String())
		}
		for _, l := range f.LinkFaults() {
			report.Links = append(report.Links, server.LinkReport{
				From: l.From.String(), Dim: l.Dim, Dir: l.Dir,
			})
		}
	}
	return report, nil
}

// parseLinkSpec parses "(x,y),dim,dir" (dir is +1/-1; "+" and "-" work).
func parseLinkSpec(spec string) (server.LinkReport, error) {
	var lr server.LinkReport
	open := strings.LastIndex(spec, ")")
	if !strings.HasPrefix(spec, "(") || open < 0 {
		return lr, fmt.Errorf("link %q: want \"(x,y),dim,dir\"", spec)
	}
	coord := spec[:open+1]
	if _, err := lambmesh.ParseCoord(coord); err != nil {
		return lr, fmt.Errorf("link %q: %v", spec, err)
	}
	rest := strings.TrimPrefix(spec[open+1:], ",")
	parts := strings.Split(rest, ",")
	if len(parts) != 2 {
		return lr, fmt.Errorf("link %q: want \"(x,y),dim,dir\"", spec)
	}
	dim, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return lr, fmt.Errorf("link %q: bad dimension: %v", spec, err)
	}
	dirStr := strings.TrimSpace(parts[1])
	var dir int
	switch dirStr {
	case "+", "+1", "1":
		dir = 1
	case "-", "-1":
		dir = -1
	default:
		return lr, fmt.Errorf("link %q: bad direction %q", spec, dirStr)
	}
	return server.LinkReport{From: coord, Dim: dim, Dir: dir}, nil
}

func splitSpecs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ";") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func cmdConfig(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("config", flag.ContinueOnError)
	addr, timeout := clientFlags(fs)
	rawJSON := fs.Bool("json", false, "print the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg server.ConfigResponse
	raw, err := getJSON(httpClient(*timeout), *addr+"/v1/config", &cfg)
	if err != nil {
		return err
	}
	if *rawJSON {
		fmt.Fprintln(stdout, string(raw))
		return nil
	}
	kind := "mesh"
	if cfg.Torus {
		kind = "torus"
	}
	fmt.Fprintf(stdout, "%s %s, orders %s, %s plane, generation %d (epoch age %.1fs)\n",
		kind, cfg.Mesh, cfg.Orders, cfg.RouteSource, cfg.Generation, cfg.EpochAgeSeconds)
	fmt.Fprintf(stdout, "faults: %d nodes, %d links; lambs: %d; survivors: %d\n",
		len(cfg.NodeFaults), len(cfg.LinkFaults), len(cfg.Lambs), cfg.Survivors)
	if len(cfg.Lambs) > 0 {
		fmt.Fprintln(stdout, "lambs:", strings.Join(cfg.Lambs, " "))
	}
	if cfg.LastError != "" {
		fmt.Fprintln(stdout, "last recompute error:", cfg.LastError)
	}
	return nil
}

func cmdMetrics(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	addr, timeout := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := httpClient(*timeout).Get(*addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	_, err = io.Copy(stdout, resp.Body)
	return err
}

func parseWidths(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	widths := make([]int, len(parts))
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mesh spec %q: %v", s, err)
		}
		widths[i] = w
	}
	return widths, nil
}

// httpClient builds the client every subcommand queries through; a zero
// timeout means no limit.
func httpClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// postJSON posts v and decodes the response into out, returning the raw
// body. Non-2xx responses surface the server's JSON error message.
func postJSON(c *http.Client, url string, v, out any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	return handleResponse(resp, out)
}

func getJSON(c *http.Client, url string, out any) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return handleResponse(resp, out)
}

func handleResponse(resp *http.Response, out any) ([]byte, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return raw, fmt.Errorf("server: %s (HTTP %d)", eb.Error, resp.StatusCode)
		}
		return raw, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return raw, json.Unmarshal(raw, out)
}
