package classtable

import (
	"encoding/binary"
	"sort"

	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/partition"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// NewFrom builds the class table for fault set f like New, then warm-starts
// its via slots from prev, the previous epoch's table. Fault growth is
// monotone, so most classes survive a small fault delta unchanged; for every
// (SES, DES) class pair whose class rectangles AND reachability rows are
// identical in both epochs, the previous epoch's filled slot is translated
// index-for-index into the new table (provably equal to what a cold fill
// would compute — the identity tests pin this). Surviving pairs that were
// filled before but cannot be safely migrated are eagerly prefilled in
// parallel, hottest first by the previous epoch's per-slot hit counters, so
// the post-swap query burst — issued exactly while traffic is rerouting —
// finds a warm table.
//
// prev may be nil (or a table of a different shape/config): NewFrom then
// degrades to exactly New. The returned table never aliases prev's mutable
// state; prev remains fully usable, which is what the epoch swap needs —
// queries keep landing on the old epoch until the new one is published.
func NewFrom(f *mesh.FaultSet, orders routing.MultiOrder, workers int, prev *Table) (*Table, error) {
	t, err := New(f, orders, workers)
	if err != nil {
		return nil, err
	}
	if prev == nil || t.k != 2 || prev.k != 2 ||
		!sameMesh(t.m, prev.m) || !sameOrders(t.orders, prev.orders) {
		return t, nil
	}
	t.carryOver(prev, par.Clamp(workers))
	return t, nil
}

// carryOver migrates and prefills t's slots from prev. Both tables are k=2
// over the same mesh and ordering; prev's fault set is a subset of t's.
func (t *Table) carryOver(prev *Table, workers int) {
	// Map every new class to its identical old class (by rectangle; a
	// partition set IS its rectangle, Rep being the Lo corner).
	sesMap := matchSets(t.sesSets, prev.sesSets)
	desMap := matchSets(t.desSets, prev.desSets)
	d1Map := matchSets(t.d1Sets, prev.d1Sets)
	s2Map := matchSets(t.s2Sets, prev.s2Sets)

	// Slot translation preserves cell order only if the cell axes map
	// monotonically: cells are enumerated ascending in (des1, ses2), so a
	// strictly increasing d1Map/s2Map maps an ascending old list to an
	// ascending new list. Both maps are restrictions of the refinement
	// old-partition -> new-partition to identical sets, which find emits in
	// the same relative order — verified here so a violation degrades to a
	// cold table instead of corrupting slots.
	if !strictlyIncreasing(d1Map) || !strictlyIncreasing(s2Map) {
		return
	}
	invD1 := invertMap(d1Map, len(prev.d1Sets))
	invS2 := invertMap(s2Map, len(prev.s2Sets))

	// rowOK[i]: new SES i's r1 row equals old SES sesMap[i]'s row under the
	// column correspondence — equal on mapped columns, zero on new columns
	// with no old counterpart AND on old columns with no new counterpart.
	// Only then is the pair's feasible-cell set guaranteed unchanged.
	rowOK := make([]bool, len(t.sesSets))
	for i, iOld := range sesMap {
		rowOK[i] = iOld >= 0 && rowsAgree(
			func(a int) bool { return t.r1.Get(i, a) }, len(t.d1Sets), d1Map,
			func(a int) bool { return prev.r1.Get(int(iOld), a) }, len(prev.d1Sets), invD1,
		)
	}
	colOK := make([]bool, len(t.desSets))
	for j, jOld := range desMap {
		colOK[j] = jOld >= 0 && rowsAgree(
			func(b int) bool { return t.r2.Get(b, j) }, len(t.s2Sets), s2Map,
			func(b int) bool { return prev.r2.Get(b, int(jOld)) }, len(prev.s2Sets), invS2,
		)
	}

	// New cell index by (des1, ses2) — the translation target.
	cellIdx := make(map[int64]int32, len(t.cells))
	for ci := range t.cells {
		c := &t.cells[ci]
		cellIdx[int64(c.des1)<<32|int64(c.ses2)] = int32(ci)
	}

	// Each new class descends from the previous-epoch class containing its
	// representative (monotone fault growth refines classes near the new
	// faults and leaves the rest identical; the representative is good in
	// both epochs, so it classifies in both). The ancestor — not just an
	// identical-rect match — decides warmth: when a hot class splits, its
	// children inherit the demand its traffic will now spread across them.
	sesAnc := make([]int, len(t.sesSets))
	for i := range t.sesSets {
		sesAnc[i] = prev.sesCls.Classify(t.sesSets[i].Rep)
	}
	desAnc := make([]int, len(t.desSets))
	for j := range t.desSets {
		desAnc[j] = prev.desCls.Classify(t.desSets[j].Rep)
	}

	D, Dold := len(t.desSets), len(prev.desSets)
	type refill struct {
		i, j int
		hits uint32
	}
	var refills []refill
	for i := range t.sesSets {
		if sesAnc[i] < 0 {
			continue
		}
		for j := range t.desSets {
			if desAnc[j] < 0 {
				continue
			}
			so := sesAnc[i]*Dold + desAnc[j]
			pOld := prev.slots[so].Load()
			if pOld == nil {
				continue // never demanded last epoch; stay lazy
			}
			oldHits := prev.hits[so].Load()
			// Translate index-for-index only when the pair survived intact:
			// identical rectangles on both sides (the ancestor then IS the
			// identical match) and identical reachability rows.
			if int32(sesAnc[i]) == sesMap[i] && int32(desAnc[j]) == desMap[j] &&
				rowOK[i] && colOK[j] {
				if list, ok := t.translateCells(prev, pOld.cells, invD1, invS2, cellIdx); ok {
					t.slots[i*D+j].Store(&pairVias{cells: list})
					t.hits[i*D+j].Store(oldHits)
					t.warmSlots++
					continue
				}
			}
			if t.rk.Get(i, j) {
				refills = append(refills, refill{i: i, j: j, hits: oldHits})
			}
		}
	}

	// Prefill the rest of the surviving working set, hottest first. par.Do
	// walks indices in order across workers, so the ranking decides which
	// slots are warm soonest; the lists themselves are deterministic.
	sort.Slice(refills, func(a, b int) bool {
		if refills[a].hits != refills[b].hits {
			return refills[a].hits > refills[b].hits
		}
		return refills[a].i*D+refills[a].j < refills[b].i*D+refills[b].j
	})
	par.Do(workers, len(refills), func(n int) {
		r := refills[n]
		t.slots[r.i*D+r.j].Store(&pairVias{cells: t.scanCells(r.i, r.j)})
		t.hits[r.i*D+r.j].Store(r.hits)
	})
	t.warmSlots += int64(len(refills))
	t.filled.Store(t.warmSlots)
}

// translateCells maps an old feasible-cell list into new cell indices. The
// surrounding row/column checks guarantee every entry maps; a miss reports
// !ok and the caller falls back to a fresh fill.
func (t *Table) translateCells(prev *Table, old []int32, invD1, invS2 []int32, cellIdx map[int64]int32) ([]int32, bool) {
	list := make([]int32, len(old))
	for n, co := range old {
		c := &prev.cells[co]
		a, b := invD1[c.des1], invS2[c.ses2]
		if a < 0 || b < 0 {
			return nil, false
		}
		ci, ok := cellIdx[int64(a)<<32|int64(b)]
		if !ok {
			return nil, false
		}
		list[n] = ci
	}
	return list, true
}

// matchSets maps each index of cur to the index in old holding an identical
// rectangle, or -1. Rectangles identify partition sets completely.
func matchSets(cur, old []partition.Set) []int32 {
	idx := make(map[string]int32, len(old))
	var key []byte
	for i := range old {
		idx[string(rectKey(key[:0], old[i].Rect))] = int32(i)
	}
	m := make([]int32, len(cur))
	for i := range cur {
		if o, ok := idx[string(rectKey(key[:0], cur[i].Rect))]; ok {
			m[i] = o
		} else {
			m[i] = -1
		}
	}
	return m
}

func rectKey(dst []byte, r rect.Rect) []byte {
	for _, iv := range r {
		dst = binary.AppendVarint(dst, int64(iv.Lo))
		dst = binary.AppendVarint(dst, int64(iv.Hi))
	}
	return dst
}

// strictlyIncreasing reports whether the defined (>= 0) entries of m are
// strictly increasing in index order.
func strictlyIncreasing(m []int32) bool {
	last := int32(-1)
	for _, v := range m {
		if v < 0 {
			continue
		}
		if v <= last {
			return false
		}
		last = v
	}
	return true
}

// invertMap flips new->old into old->new (-1 where undefined).
func invertMap(m []int32, oldLen int) []int32 {
	inv := make([]int32, oldLen)
	for i := range inv {
		inv[i] = -1
	}
	for i, v := range m {
		if v >= 0 {
			inv[v] = int32(i)
		}
	}
	return inv
}

// rowsAgree compares one new reachability row against one old row under an
// index correspondence: mapped positions must carry equal bits, and
// positions without a counterpart (on either side) must be zero.
func rowsAgree(newBit func(int) bool, newLen int, toOld []int32,
	oldBit func(int) bool, oldLen int, toNew []int32) bool {
	for a := 0; a < newLen; a++ {
		if o := toOld[a]; o >= 0 {
			if newBit(a) != oldBit(int(o)) {
				return false
			}
		} else if newBit(a) {
			return false
		}
	}
	for o := 0; o < oldLen; o++ {
		if toNew[o] < 0 && oldBit(o) {
			return false
		}
	}
	return true
}

func sameMesh(a, b *mesh.Mesh) bool {
	if a == b {
		return true
	}
	if a.Dims() != b.Dims() || a.Torus() != b.Torus() {
		return false
	}
	for d := 0; d < a.Dims(); d++ {
		if a.Width(d) != b.Width(d) {
			return false
		}
	}
	return true
}

func sameOrders(a, b routing.MultiOrder) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
