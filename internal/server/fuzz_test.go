package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// FuzzRouteHandler throws arbitrary bodies at POST /v1/route. The handler's
// contract: every request gets a JSON body and either 200 (well-formed
// query, routable or not) or 400 (malformed body or coordinates) — never a
// panic, a 5xx, or non-JSON output.
func FuzzRouteHandler(f *testing.F) {
	f.Add([]byte(`{"src":"(0,0)","dst":"(3,3)"}`))
	f.Add([]byte(`{"src":"0,0","dst":"7,7"}`))
	f.Add([]byte(`{"src":"(0,0)"}`))
	f.Add([]byte(`{"src":"(9,9,9)","dst":"(0,0)"}`))
	f.Add([]byte(`{"src":42,"dst":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	srv, err := New(Config{
		Mesh:   mesh.MustNew(8, 8),
		Orders: routing.UniformAscending(2, 2),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	h := srv.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/route", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 && rec.Code != 400 {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON response %q for body %q", rec.Body.String(), body)
		}
		if rec.Code == 200 {
			var resp RouteResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body is not a RouteResponse: %v", err)
			}
		}
	})
}
