package routing

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
)

func TestPathXY(t *testing.T) {
	m := mesh.MustNew(4, 4)
	p := Path(m, Ascending(2), mesh.C(0, 0), mesh.C(2, 1))
	want := []mesh.Coord{{0, 0}, {1, 0}, {2, 0}, {2, 1}}
	if len(p) != len(want) {
		t.Fatalf("Path = %v", p)
	}
	for i := range p {
		if !p[i].Equal(want[i]) {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
	if PathLen(p) != 3 {
		t.Errorf("PathLen = %d", PathLen(p))
	}
	if CountTurns(p) != 1 {
		t.Errorf("CountTurns = %d, want 1", CountTurns(p))
	}
}

func TestPathSelf(t *testing.T) {
	m := mesh.MustNew(4, 4)
	p := Path(m, Ascending(2), mesh.C(1, 1), mesh.C(1, 1))
	if len(p) != 1 || CountTurns(p) != 0 || PathLen(p) != 0 {
		t.Errorf("self path = %v", p)
	}
}

func TestPathNegativeDirection(t *testing.T) {
	m := mesh.MustNew(4, 4)
	p := Path(m, Order{1, 0}, mesh.C(3, 3), mesh.C(1, 0))
	// YX order: Y from 3 to 0 first, then X from 3 to 1.
	want := []mesh.Coord{{3, 3}, {3, 2}, {3, 1}, {3, 0}, {2, 0}, {1, 0}}
	for i := range p {
		if !p[i].Equal(want[i]) {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
}

func TestPathTorusWrap(t *testing.T) {
	m, _ := mesh.NewTorus(8, 8)
	p := Path(m, Ascending(2), mesh.C(7, 0), mesh.C(1, 0))
	// Minimal direction wraps + through 0.
	want := []mesh.Coord{{7, 0}, {0, 0}, {1, 0}}
	for i := range p {
		if !p[i].Equal(want[i]) {
			t.Fatalf("torus Path = %v, want %v", p, want)
		}
	}
	// Tie (distance 4 both ways on width 8) goes +.
	p = Path(m, Ascending(2), mesh.C(0, 0), mesh.C(4, 0))
	if !p[1].Equal(mesh.C(1, 0)) {
		t.Errorf("tie should go +, got second node %v", p[1])
	}
}

func TestPathKAndTurnBound(t *testing.T) {
	m := mesh.MustNew(5, 5)
	orders := UniformAscending(2, 2)
	p := PathK(m, orders, mesh.C(0, 0), mesh.C(4, 4), []mesh.Coord{mesh.C(2, 2)})
	// XY to (2,2) then XY to (4,4): (0,0)..(2,0)..(2,2)..(4,2)..(4,4).
	if !p[len(p)-1].Equal(mesh.C(4, 4)) || !p[0].Equal(mesh.C(0, 0)) {
		t.Fatalf("PathK endpoints wrong: %v", p)
	}
	if PathLen(p) != 8 {
		t.Errorf("PathLen = %d, want 8", PathLen(p))
	}
	if got := CountTurns(p); got != 3 {
		t.Errorf("turns = %d, want 3", got)
	}
	// k-round dimension-ordered routes have at most k*d-1 turns.
	if got := CountTurns(p); got > 2*2-1 {
		t.Errorf("turn bound violated: %d", got)
	}
}

func TestChooseRouteOneRound(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	o := NewOracle(f)
	r, ok := ChooseRoute(o, MultiOrder{Ascending(2)}, mesh.C(0, 0), mesh.C(3, 3), nil)
	if !ok || r.Hops() != 6 || len(r.Vias) != 0 {
		t.Errorf("route = %+v, ok = %v", r, ok)
	}
	f.AddNode(mesh.C(2, 0))
	o = NewOracle(f)
	if _, ok := ChooseRoute(o, MultiOrder{Ascending(2)}, mesh.C(0, 0), mesh.C(3, 0), nil); ok {
		t.Error("blocked one-round route should fail")
	}
}

func TestChooseRouteTwoRounds(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(2, 0))
	o := NewOracle(f)
	orders := UniformAscending(2, 2)
	rng := rand.New(rand.NewSource(3))
	r, ok := ChooseRoute(o, orders, mesh.C(0, 0), mesh.C(3, 0), rng)
	if !ok {
		t.Fatal("two-round route should exist")
	}
	// Shortest-feasible detour is L1 distance + 2 = 5 hops.
	if r.Hops() != 5 {
		t.Errorf("Hops = %d, want 5 (path %v)", r.Hops(), r.Path)
	}
	if len(r.Vias) != 1 {
		t.Fatalf("Vias = %v", r.Vias)
	}
	// The route must be fault-free.
	for _, c := range r.Path {
		if f.NodeFaulty(c) {
			t.Errorf("route passes through fault %v", c)
		}
	}
	// Unroutable pair: isolate a corner.
	f2 := mesh.NewFaultSet(m)
	f2.AddNodes(mesh.C(1, 0), mesh.C(0, 1))
	o2 := NewOracle(f2)
	if _, ok := ChooseRoute(o2, orders, mesh.C(0, 0), mesh.C(3, 3), rng); ok {
		t.Error("isolated corner should be unroutable")
	}
}

func TestChooseRouteShortestHeuristic(t *testing.T) {
	// With no faults, the 2-round route should degenerate to the direct
	// XY path length (intermediate on the path).
	m := mesh.MustNew(6, 6)
	o := NewOracle(mesh.NewFaultSet(m))
	orders := UniformAscending(2, 2)
	r, ok := ChooseRoute(o, orders, mesh.C(1, 1), mesh.C(4, 5), nil)
	if !ok {
		t.Fatal("route should exist")
	}
	if r.Hops() != 7 { // L1 distance
		t.Errorf("fault-free 2-round route should be minimal: %d hops", r.Hops())
	}
}

func TestCountTurnsStraightLine(t *testing.T) {
	m := mesh.MustNew(6, 6)
	p := Path(m, Ascending(2), mesh.C(0, 3), mesh.C(5, 3))
	if CountTurns(p) != 0 {
		t.Errorf("straight line has %d turns", CountTurns(p))
	}
}
