package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"time"

	"lambmesh/internal/mesh"
)

// Wire types. Coordinates travel as the paper's "(x,y,z)" strings — the
// same syntax mesh.ParseCoord accepts and the fault-file format of
// internal/mesh/serialize.go uses — so CLI, fault files, and the HTTP API
// all speak one coordinate language.

// RouteRequest is the body of POST /v1/route.
type RouteRequest struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// RouteResponse answers a route query. A well-formed query always gets a
// 200 and one of these; Found=false carries the reason (faulty or lamb
// endpoint, or no fault-free route). Generation says which epoch answered.
type RouteResponse struct {
	Found      bool     `json:"found"`
	Src        string   `json:"src"`
	Dst        string   `json:"dst"`
	Vias       []string `json:"vias,omitempty"`
	Path       []string `json:"path,omitempty"`
	Hops       int      `json:"hops"`
	Turns      int      `json:"turns"`
	Reason     string   `json:"reason,omitempty"`
	Generation uint64   `json:"generation"`
	Cached     bool     `json:"cached"`
}

// LinkReport names one directed link fault on the wire.
type LinkReport struct {
	From string `json:"from"`
	Dim  int    `json:"dim"`
	Dir  int    `json:"dir"`
}

// FaultReport is the body of POST /v1/faults.
type FaultReport struct {
	Nodes []string     `json:"nodes,omitempty"`
	Links []LinkReport `json:"links,omitempty"`
}

// FaultAck acknowledges an accepted fault report. The recompute is
// asynchronous: Generation is the epoch that was live at acceptance, so a
// client can poll /v1/config until generation exceeds it.
type FaultAck struct {
	Accepted   int    `json:"accepted"`
	Generation uint64 `json:"generation"`
}

// ConfigResponse is the body of GET /v1/config: the live epoch.
type ConfigResponse struct {
	Mesh            string       `json:"mesh"`
	Torus           bool         `json:"torus"`
	Orders          string       `json:"orders"`
	RouteSource     string       `json:"route_source"`
	Generation      uint64       `json:"generation"`
	EpochAgeSeconds float64      `json:"epoch_age_seconds"`
	NodeFaults      []string     `json:"node_faults"`
	LinkFaults      []LinkReport `json:"link_faults"`
	Lambs           []string     `json:"lambs"`
	Survivors       int64        `json:"survivors"`
	LastError       string       `json:"last_error,omitempty"`
}

// errorBody is the JSON shape of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/route   route query (RouteRequest -> RouteResponse)
//	POST /v1/faults  fault report (FaultReport -> FaultAck, 202)
//	GET  /v1/config  live epoch (ConfigResponse)
//	GET  /metrics    Prometheus-style text exposition
//	GET  /healthz    liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/route", s.handleRoute)
	mux.HandleFunc("POST /v1/faults", s.handleFaults)
	mux.HandleFunc("GET /v1/config", s.handleConfig)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// expvar's own handler hangs off http.DefaultServeMux, which this
	// daemon never serves; mount it here so /debug/vars works (the lambd
	// map appears once PublishExpvar has run).
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("decoding body: %v", err))
		return
	}
	src, err := mesh.ParseCoord(req.Src)
	if err != nil {
		s.badRequest(w, fmt.Errorf("src: %v", err))
		return
	}
	dst, err := mesh.ParseCoord(req.Dst)
	if err != nil {
		s.badRequest(w, fmt.Errorf("dst: %v", err))
		return
	}
	ans := s.Route(src, dst)
	resp := RouteResponse{
		Found:      ans.Found,
		Src:        coordWire(src),
		Dst:        coordWire(dst),
		Reason:     ans.Reason,
		Generation: ans.Generation,
		Cached:     ans.Cached,
	}
	if ans.Found {
		resp.Vias = coordsWire(ans.Route.Vias)
		resp.Path = coordsWire(ans.Route.Path)
		resp.Hops = ans.Route.Hops()
		resp.Turns = ans.Route.Turns()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	var req FaultReport
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, fmt.Errorf("decoding body: %v", err))
		return
	}
	nodes := make([]mesh.Coord, 0, len(req.Nodes))
	for _, sc := range req.Nodes {
		c, err := mesh.ParseCoord(sc)
		if err != nil {
			s.badRequest(w, fmt.Errorf("node %q: %v", sc, err))
			return
		}
		nodes = append(nodes, c)
	}
	links := make([]mesh.Link, 0, len(req.Links))
	for _, lr := range req.Links {
		c, err := mesh.ParseCoord(lr.From)
		if err != nil {
			s.badRequest(w, fmt.Errorf("link tail %q: %v", lr.From, err))
			return
		}
		links = append(links, mesh.Link{From: c, Dim: lr.Dim, Dir: lr.Dir})
	}
	gen := s.Epoch().Generation
	if err := s.ReportFaults(nodes, links); err != nil {
		s.badRequest(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, FaultAck{
		Accepted:   len(nodes) + len(links),
		Generation: gen,
	})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	e := s.Epoch()
	m := e.Faults.Mesh()
	resp := ConfigResponse{
		Mesh:            meshWire(m),
		Torus:           m.Torus(),
		Orders:          s.orders.String(),
		RouteSource:     s.routeSource,
		Generation:      e.Generation,
		EpochAgeSeconds: e.Age(time.Now()).Seconds(),
		NodeFaults:      coordsWire(e.Faults.SortedNodeFaults()),
		LinkFaults:      make([]LinkReport, 0, e.Faults.NumLinkFaults()),
		Lambs:           coordsWire(e.Lambs),
		Survivors:       e.Faults.GoodNodes() - int64(len(e.Lambs)),
		LastError:       s.LastError(),
	}
	for _, l := range e.Faults.LinkFaults() {
		resp.LinkFaults = append(resp.LinkFaults, LinkReport{
			From: coordWire(l.From), Dim: l.Dim, Dir: l.Dir,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := s.Epoch()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, e.Generation, e.Age(time.Now()), e.cache.len())
	fmt.Fprintf(w, "# HELP lambd_route_source live route data plane\n# TYPE lambd_route_source gauge\n")
	fmt.Fprintf(w, "lambd_route_source{source=%q} 1\n", s.routeSource)
	if e.Table != nil {
		st := e.Table.Stats()
		fmt.Fprintf(w, "# HELP lambd_classtable_classes (SES, DES) classes in the live epoch's table\n# TYPE lambd_classtable_classes gauge\n")
		fmt.Fprintf(w, "lambd_classtable_classes{kind=\"ses\"} %d\n", st.SESs)
		fmt.Fprintf(w, "lambd_classtable_classes{kind=\"des\"} %d\n", st.DESs)
		fmt.Fprintf(w, "# HELP lambd_classtable_cells via cells in the live epoch's table\n# TYPE lambd_classtable_cells gauge\n")
		fmt.Fprintf(w, "lambd_classtable_cells %d\n", st.Cells)
		fmt.Fprintf(w, "# HELP lambd_classtable_bytes approximate table size\n# TYPE lambd_classtable_bytes gauge\n")
		fmt.Fprintf(w, "lambd_classtable_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "# HELP lambd_classtable_warm_slots via slots carried over or prefilled at the last epoch swap\n# TYPE lambd_classtable_warm_slots gauge\n")
		fmt.Fprintf(w, "lambd_classtable_warm_slots %d\n", st.WarmSlots)
		fmt.Fprintf(w, "# HELP lambd_classtable_warm_hits_total pair-lookups served from an already-filled slot\n# TYPE lambd_classtable_warm_hits_total counter\n")
		fmt.Fprintf(w, "lambd_classtable_warm_hits_total %d\n", st.WarmHits)
		fmt.Fprintf(w, "# HELP lambd_classtable_cold_fills_total pair-lookups that paid a first-use fill\n# TYPE lambd_classtable_cold_fills_total counter\n")
		fmt.Fprintf(w, "lambd_classtable_cold_fills_total %d\n", st.ColdFills)
		if total := st.WarmHits + st.ColdFills; total > 0 {
			fmt.Fprintf(w, "# HELP lambd_classtable_warm_hit_ratio share of pair-lookups finding a filled slot\n# TYPE lambd_classtable_warm_hit_ratio gauge\n")
			fmt.Fprintf(w, "lambd_classtable_warm_hit_ratio %g\n", float64(st.WarmHits)/float64(total))
		}
	}
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.metrics.BadRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// coordWire renders a coordinate in the wire syntax ("(x,y)").
func coordWire(c mesh.Coord) string { return c.String() }

func coordsWire(cs []mesh.Coord) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// meshWire renders the topology as the "WxH..." spec the CLIs accept.
func meshWire(m *mesh.Mesh) string {
	dims := make([]string, m.Dims())
	for i := range dims {
		dims[i] = fmt.Sprint(m.Width(i))
	}
	return strings.Join(dims, "x")
}
