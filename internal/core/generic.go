package core

import (
	"fmt"
	"sort"

	"lambmesh/internal/bitmat"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/vcover"
)

// GenericProblem is the topology-agnostic lamb problem of Section 7: "all
// that is needed is a set of nodes and an efficiently computable 'simple
// reachability' relation". Nodes are dense integers 0..NumNodes-1; Reach
// gives 1-round reachability per round and must return false whenever
// either endpoint is faulty.
type GenericProblem struct {
	NumNodes int
	Rounds   int
	Faulty   func(v int) bool
	Reach    func(round, v, w int) bool
	// UniformRounds declares that Reach is identical for every round, so
	// the per-round structures are computed once.
	UniformRounds bool
}

// GenericResult is a lamb set over integer node ids.
type GenericResult struct {
	Lambs []int
	Stats Stats
}

// GenericLamb solves the lamb problem on an arbitrary topology by computing
// the exact SEC/DEC partitions from full reachability profiles (the
// worst-case fallback the paper describes in Section 7), then running the
// same bipartite WVC reduction as Lamb1. Cost is O(k N^2) reachability
// calls, so this suits moderate N — tori, hypercube variants, irregular
// networks — where the rectangular partition algorithm does not apply.
func GenericLamb(p *GenericProblem) (*GenericResult, error) {
	if p.NumNodes <= 0 {
		return nil, fmt.Errorf("core: generic problem needs nodes")
	}
	if p.Rounds <= 0 {
		return nil, fmt.Errorf("core: generic problem needs at least one round")
	}
	var good []int
	for v := 0; v < p.NumNodes; v++ {
		if !p.Faulty(v) {
			good = append(good, v)
		}
	}
	if len(good) == 0 {
		return &GenericResult{}, nil
	}

	type roundData struct {
		secOf, decOf   []int   // node -> class id (good nodes only; -1 otherwise)
		secRep, decRep []int   // class id -> representative node
		secMem, decMem [][]int // class id -> member nodes
		r              *bitmat.Matrix
	}
	buildRound := func(t int) *roundData {
		rd := &roundData{
			secOf: make([]int, p.NumNodes),
			decOf: make([]int, p.NumNodes),
		}
		for v := range rd.secOf {
			rd.secOf[v] = -1
			rd.decOf[v] = -1
		}
		// Group good nodes by source profile and by destination profile.
		secKey := make(map[string]int)
		decKey := make(map[string]int)
		srcProfile := make([]byte, len(good))
		dstProfile := make([][]byte, len(good))
		for gi := range good {
			dstProfile[gi] = make([]byte, len(good))
		}
		for gi, v := range good {
			for gj, w := range good {
				if p.Reach(t, v, w) {
					srcProfile[gj] = 1
				} else {
					srcProfile[gj] = 0
				}
				dstProfile[gj][gi] = srcProfile[gj]
			}
			key := string(srcProfile)
			id, ok := secKey[key]
			if !ok {
				id = len(rd.secRep)
				secKey[key] = id
				rd.secRep = append(rd.secRep, v)
				rd.secMem = append(rd.secMem, nil)
			}
			rd.secOf[v] = id
			rd.secMem[id] = append(rd.secMem[id], v)
		}
		for gj, w := range good {
			key := string(dstProfile[gj])
			id, ok := decKey[key]
			if !ok {
				id = len(rd.decRep)
				decKey[key] = id
				rd.decRep = append(rd.decRep, w)
				rd.decMem = append(rd.decMem, nil)
			}
			rd.decOf[w] = id
			rd.decMem[id] = append(rd.decMem[id], w)
		}
		rd.r = bitmat.New(len(rd.secRep), len(rd.decRep))
		for i, sv := range rd.secRep {
			for j, dw := range rd.decRep {
				if p.Reach(t, sv, dw) {
					rd.r.Set(i, j)
				}
			}
		}
		return rd
	}

	rounds := make([]*roundData, p.Rounds)
	for t := range rounds {
		if p.UniformRounds && t > 0 {
			rounds[t] = rounds[0]
			continue
		}
		rounds[t] = buildRound(t)
	}

	// R^(k) = R_1 I_1 R_2 ... I_{k-1} R_k, with I_t built from co-membership.
	rk := rounds[0].r
	for t := 0; t < p.Rounds-1; t++ {
		im := bitmat.New(len(rounds[t].decRep), len(rounds[t+1].secRep))
		for _, v := range good {
			im.Set(rounds[t].decOf[v], rounds[t+1].secOf[v])
		}
		rk = rk.Mul(im).Mul(rounds[t+1].r)
	}

	first, last := rounds[0], rounds[p.Rounds-1]
	zr := rk.ZeroRows()
	zc := rk.ZeroCols()
	bg := &vcover.Bipartite{
		LeftWeight:  make([]int64, len(zr)),
		RightWeight: make([]int64, len(zc)),
		Edges:       make([][]int, len(zr)),
	}
	for ii, i := range zr {
		bg.LeftWeight[ii] = int64(len(first.secMem[i]))
		for jj, j := range zc {
			if !rk.Get(i, j) {
				bg.Edges[ii] = append(bg.Edges[ii], jj)
			}
		}
	}
	for jj, j := range zc {
		bg.RightWeight[jj] = int64(len(last.decMem[j]))
	}
	cover := vcover.SolveBipartite(bg)

	lambSet := make(map[int]struct{})
	for ii, i := range zr {
		if cover.Left[ii] {
			for _, v := range first.secMem[i] {
				lambSet[v] = struct{}{}
			}
		}
	}
	for jj, j := range zc {
		if cover.Right[jj] {
			for _, v := range last.decMem[j] {
				lambSet[v] = struct{}{}
			}
		}
	}
	out := &GenericResult{
		Stats: Stats{
			NumSES:      len(first.secRep),
			NumDES:      len(last.decRep),
			RelevantSES: len(zr),
			RelevantDES: len(zc),
			CoverWeight: cover.Weight,
		},
	}
	for v := range lambSet {
		out.Lambs = append(out.Lambs, v)
	}
	sort.Ints(out.Lambs)
	return out, nil
}

// TorusLamb runs the generic lamb algorithm on a torus (or any mesh) using
// the dimension-ordered routing oracle as the simple-reachability relation.
// This realizes the torus extension of Section 7. Cost O(k N^2 d log f).
func TorusLamb(f *mesh.FaultSet, orders routing.MultiOrder) (*Result, error) {
	m := f.Mesh()
	if err := orders.Validate(m.Dims()); err != nil {
		return nil, err
	}
	o := routing.NewOracle(f)
	n := int(m.Nodes())
	coords := make([]mesh.Coord, n)
	for v := 0; v < n; v++ {
		coords[v] = m.CoordOf(int64(v))
	}
	uniform := true
	for _, ord := range orders[1:] {
		if !ord.Equal(orders[0]) {
			uniform = false
		}
	}
	gp := &GenericProblem{
		NumNodes:      n,
		Rounds:        orders.Rounds(),
		UniformRounds: uniform,
		Faulty:        func(v int) bool { return f.NodeFaulty(coords[v]) },
		Reach: func(round, v, w int) bool {
			return o.ReachOne(orders[round], coords[v], coords[w])
		},
	}
	gr, err := GenericLamb(gp)
	if err != nil {
		return nil, err
	}
	st := gr.Stats
	st.Faults = f.Count()
	res := &Result{
		Mesh:    m,
		Orders:  orders,
		Stats:   st,
		lambIdx: make(map[int64]struct{}),
	}
	for _, v := range gr.Lambs {
		res.lambIdx[int64(v)] = struct{}{}
		res.Lambs = append(res.Lambs, coords[v])
	}
	return res, nil
}
