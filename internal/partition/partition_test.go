package partition

import (
	"math/rand"
	"sort"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// paperExample builds the 12x12 mesh with the three faults of Figure 2.
func paperExample() *mesh.FaultSet {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10))
	return f
}

// rectSetString canonicalizes a partition for comparison.
func rectSetString(m *mesh.Mesh, p *Partition) []string {
	out := make([]string, 0, len(p.Sets))
	for _, s := range p.Sets {
		out = append(out, s.Rect.StringIn(m))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The worked example of Section 5 / Figure 3: the SES partition has exactly
// nine sets with these shapes.
func TestPaperSESPartition(t *testing.T) {
	f := paperExample()
	p, err := SES(f, routing.Ascending(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 9 {
		t.Fatalf("SES partition size = %d, want 9", p.Len())
	}
	want := []string{
		"(*,0)", "(*,[2,5])", "(*,[7,9])", "(*,11)", // clean rows
		"([0,8],1)", "([10,11],1)", // around fault (9,1)
		"([0,10],6)",            // around fault (11,6)
		"([0,9],10)", "(11,10)", // around fault (10,10)
	}
	sort.Strings(want)
	got := rectSetString(f.Mesh(), p)
	if !equalStrings(got, want) {
		t.Errorf("SES sets = %v\nwant %v", got, want)
	}
	if err := Validate(p, routing.NewOracle(f)); err != nil {
		t.Error(err)
	}
}

// Figure 4: the DES partition has exactly seven sets.
func TestPaperDESPartition(t *testing.T) {
	f := paperExample()
	p, err := DES(f, routing.Ascending(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7 {
		t.Fatalf("DES partition size = %d, want 7", p.Len())
	}
	want := []string{
		"([0,8],*)",
		"(9,0)", "(9,[2,11])",
		"(10,[0,9])", "(10,11)",
		"(11,[0,5])", "(11,[7,11])",
	}
	sort.Strings(want)
	got := rectSetString(f.Mesh(), p)
	if !equalStrings(got, want) {
		t.Errorf("DES sets = %v\nwant %v", got, want)
	}
	if err := Validate(p, routing.NewOracle(f)); err != nil {
		t.Error(err)
	}
}

// The paper's example is in fact the SEC/DEC partition (Remark 4.1), so the
// algorithm achieves the minimum size here.
func TestPaperPartitionIsMinimum(t *testing.T) {
	f := paperExample()
	o := routing.NewOracle(f)
	secs := ExactClasses(o, routing.Ascending(2), Source)
	if len(secs) != 9 {
		t.Errorf("SEC count = %d, want 9", len(secs))
	}
	decs := ExactClasses(o, routing.Ascending(2), Destination)
	if len(decs) != 7 {
		t.Errorf("DEC count = %d, want 7", len(decs))
	}
}

// Diagonal fault placement from Section 6.1: faults at (i,i) for odd i give
// partitions of exactly (2d-1)f+1 sets.
func TestDiagonalTightness2D(t *testing.T) {
	m := mesh.MustNew(9, 9)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(1, 1), mesh.C(3, 3))
	for _, fn := range []func(*mesh.FaultSet, routing.Order) (*Partition, error){SES, DES} {
		p, err := fn(f, routing.Ascending(2))
		if err != nil {
			t.Fatal(err)
		}
		if want := (2*2-1)*2 + 1; p.Len() != want {
			t.Errorf("%v partition size = %d, want %d", p.Kind, p.Len(), want)
		}
	}
}

func TestDiagonalTightness3D(t *testing.T) {
	m := mesh.MustNew(7, 7, 7)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(1, 1, 1), mesh.C(3, 3, 3), mesh.C(5, 5, 5))
	p, err := SES(f, routing.Ascending(3))
	if err != nil {
		t.Fatal(err)
	}
	if want := (2*3-1)*3 + 1; p.Len() != want {
		t.Errorf("partition size = %d, want %d", p.Len(), want)
	}
	if err := Validate(p, routing.NewOracle(f)); err != nil {
		t.Error(err)
	}
}

func TestNoFaults(t *testing.T) {
	m := mesh.MustNew(5, 4, 3)
	f := mesh.NewFaultSet(m)
	p, err := SES(f, routing.Ascending(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Sets[0].Rect.Size() != 60 {
		t.Errorf("fault-free mesh should be one full SES, got %v", p.Sets)
	}
}

func TestAllFaulty1DSlice(t *testing.T) {
	// An entirely faulty row must simply vanish from the partition.
	m := mesh.MustNew(3, 3)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(0, 1), mesh.C(1, 1), mesh.C(2, 1))
	p, err := SES(f, routing.Ascending(2))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range p.Sets {
		total += s.Size()
	}
	if total != 6 {
		t.Errorf("covered %d nodes, want 6", total)
	}
	if err := Validate(p, routing.NewOracle(f)); err != nil {
		t.Error(err)
	}
}

func TestTorusRejected(t *testing.T) {
	m, _ := mesh.NewTorus(4, 4)
	f := mesh.NewFaultSet(m)
	if _, err := SES(f, routing.Ascending(2)); err == nil {
		t.Error("torus should be rejected by the rectangular algorithm")
	}
}

func TestBadOrderRejected(t *testing.T) {
	f := paperExample()
	if _, err := SES(f, routing.Order{0, 0}); err == nil {
		t.Error("invalid ordering should be rejected")
	}
}

// Property test: on random small meshes with random node and link faults,
// both partitions validate, respect the (2d-1)f+1 bound, and are refinements
// of the exact SEC/DEC partitions.
func TestRandomPartitionsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := [][]int{{6, 6}, {5, 7}, {4, 4, 4}, {3, 4, 5}, {2, 2, 2, 2}}
	for trial := 0; trial < 30; trial++ {
		widths := shapes[trial%len(shapes)]
		m := mesh.MustNew(widths...)
		nf := rng.Intn(5)
		f := mesh.RandomNodeFaults(m, nf, rng)
		nl := rng.Intn(3)
		for i := 0; i < nl; i++ {
			for {
				c := m.CoordOf(rng.Int63n(m.Nodes()))
				dim := rng.Intn(m.Dims())
				dir := 1 - 2*rng.Intn(2)
				if _, ok := m.Neighbor(c, dim, dir); ok {
					f.AddLink(mesh.Link{From: c, Dim: dim, Dir: dir})
					break
				}
			}
		}
		// Random ordering.
		pi := routing.Order(rng.Perm(m.Dims()))
		o := routing.NewOracle(f)
		for _, kind := range []Kind{Source, Destination} {
			var p *Partition
			var err error
			if kind == Source {
				p, err = SES(f, pi)
			} else {
				p, err = DES(f, pi)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(p, o); err != nil {
				t.Fatalf("trial %d %v order %v faults %v links %v: %v",
					trial, kind, pi, f.SortedNodeFaults(), f.LinkFaults(), err)
			}
			bound := (2*m.Dims()-1)*f.Count() + 1
			if p.Len() > bound {
				t.Errorf("trial %d: %v partition size %d exceeds bound %d", trial, kind, p.Len(), bound)
			}
			exact := ExactClasses(o, pi, kind)
			if p.Len() < len(exact) {
				t.Errorf("trial %d: %v partition smaller than the exact class count?!", trial, kind)
			}
		}
	}
}

// Representatives must be the min corner of their set (the paper's choice)
// and always good.
func TestRepresentatives(t *testing.T) {
	f := paperExample()
	for _, fn := range []func(*mesh.FaultSet, routing.Order) (*Partition, error){SES, DES} {
		p, err := fn(f, routing.Ascending(2))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range p.Sets {
			if !s.Rep.Equal(s.Rect.MinCorner()) {
				t.Errorf("rep %v is not min corner of %v", s.Rep, s.Rect)
			}
			if f.NodeFaulty(s.Rep) {
				t.Errorf("rep %v is faulty", s.Rep)
			}
		}
	}
}

// DES via link reversal: a one-directional link fault must split DESs on
// the correct side.
func TestDESOneDirectionalLink(t *testing.T) {
	m := mesh.MustNew(5, 5)
	f := mesh.NewFaultSet(m)
	f.AddLink(mesh.Link{From: mesh.C(2, 2), Dim: 1, Dir: 1}) // (2,2)->(2,3) broken
	o := routing.NewOracle(f)
	for _, kind := range []Kind{Source, Destination} {
		var p *Partition
		var err error
		if kind == Source {
			p, err = SES(f, routing.Ascending(2))
		} else {
			p, err = DES(f, routing.Ascending(2))
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(p, o); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestSetSize(t *testing.T) {
	s := Set{Rect: rect.Rect{{Lo: 0, Hi: 3}, {Lo: 2, Hi: 2}}, Rep: mesh.C(0, 2)}
	if s.Size() != 4 {
		t.Errorf("Size = %d", s.Size())
	}
}

func TestKindString(t *testing.T) {
	if Source.String() != "SES" || Destination.String() != "DES" {
		t.Error("Kind.String wrong")
	}
}

// General (non-ascending) orderings produce valid partitions with the same
// size bound; the shapes follow the permuted coordinate roles.
func TestGeneralOrderingShapes(t *testing.T) {
	f := paperExample()
	yx := routing.Order{1, 0}
	p, err := SES(f, yx)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, routing.NewOracle(f)); err != nil {
		t.Fatal(err)
	}
	// For YX-routing the SES partition mirrors the XY DES structure:
	// columns fixed first, so shapes are (c,[l,r]) and ([l,r],*)... in
	// particular it has 7 sets (the mirror of the 7-DES count).
	if p.Len() != 7 {
		t.Errorf("YX SES partition size = %d, want 7", p.Len())
	}
	d, err := DES(f, yx)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 9 {
		t.Errorf("YX DES partition size = %d, want 9", d.Len())
	}
}

// 4D sanity: partitions validate and respect the bound on a hypercube-like
// mesh with several faults.
func Test4DPartition(t *testing.T) {
	m := mesh.MustNew(3, 3, 3, 3)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(1, 1, 1, 1), mesh.C(0, 2, 1, 0), mesh.C(2, 0, 2, 2))
	for _, pi := range []routing.Order{routing.Ascending(4), {3, 1, 0, 2}} {
		p, err := SES(f, pi)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(p, routing.NewOracle(f)); err != nil {
			t.Fatalf("order %v: %v", pi, err)
		}
		if p.Len() > (2*4-1)*3+1 {
			t.Errorf("order %v: %d sets exceed bound", pi, p.Len())
		}
	}
}

// Link-fault-only partitions: a bidirectional break splits both SES and DES
// partitions; a one-directional break splits only the side that uses it.
func TestLinkOnlyPartitionCounts(t *testing.T) {
	m := mesh.MustNew(6, 6)
	f := mesh.NewFaultSet(m)
	f.AddLink(mesh.Link{From: mesh.C(2, 3), Dim: 0, Dir: 1}) // (2,3)->(3,3)
	o := routing.NewOracle(f)
	for _, kind := range []Kind{Source, Destination} {
		var p *Partition
		var err error
		if kind == Source {
			p, err = SES(f, routing.Ascending(2))
		} else {
			p, err = DES(f, routing.Ascending(2))
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(p, o); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if p.Len() < 2 {
			t.Errorf("%v: link fault should split the partition, got %d set(s)", kind, p.Len())
		}
	}
}
