// Command lambsim regenerates the tables and figures of Ho & Stockmeyer
// (IPDPS 2002). Run it with no flags to execute every experiment at the
// default trial count, or select experiments with -exp.
//
// Usage:
//
//	lambsim [-exp id1,id2|all] [-trials n] [-seed s] [-list]
//
// The paper uses 1000 trials per data point (10000 for the Section 3
// rare-lamb check); -trials 1000 reproduces that scale. Heavier experiments
// automatically divide the trial count (shown in each table header).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lambmesh/internal/sim"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		trials  = flag.Int("trials", 100, "baseline trials per data point (paper: 1000)")
		seed    = flag.Int64("seed", 1, "base RNG seed; trial t uses seed+t")
		workers = flag.Int("workers", 0, "trial parallelism (0 = NumCPU)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		format  = flag.String("format", "text", "output format: text | md | csv")
	)
	flag.Parse()
	render := func(t *sim.Table) string { return t.Render() }
	switch *format {
	case "text":
	case "md":
		render = func(t *sim.Table) string { return t.Markdown() }
	case "csv":
		render = func(t *sim.Table) string { return t.CSV() }
	default:
		fmt.Fprintf(os.Stderr, "lambsim: unknown -format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range sim.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := sim.Config{Trials: *trials, Seed: *seed, Workers: *workers}
	var selected []sim.Experiment
	if *expFlag == "all" {
		selected = sim.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := sim.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "lambsim: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tab := e.Run(cfg)
		fmt.Println(render(tab))
		if *format == "text" {
			fmt.Printf("(%s finished in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
}
