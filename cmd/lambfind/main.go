// Command lambfind computes a lamb set for a given mesh and fault set.
//
// Usage:
//
//	lambfind -mesh 32x32x32 [-torus] -k 2 [-algo lamb1|lamb2|exact|generic]
//	         [-faults "(9,1);(11,6);(10,10)" | -fault-file faults.txt | -random 983 -seed 1]
//	         [-workers N] [-verify] [-v]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-repeat N]
//
// The fault file lists one node coordinate per line ("x,y,z"); lines
// starting with '#' are ignored. Output is the lamb set, one coordinate per
// line, preceded by a summary on stderr.
//
// -workers N bounds the worker pool the reachability kernels run on (0, the
// default, means all CPUs). The computed lamb set is bit-identical for every
// worker count; the flag only trades wall-clock time against CPU share. The
// generic/torus path is single-threaded and ignores it.
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the lamb
// computation (inspect with `go tool pprof`). The CPU profile covers only
// the computation, not flag parsing or fault loading; the heap profile is
// written after the computation with a forced GC, so it shows retained
// memory rather than transient garbage. -repeat N runs the computation N
// times through one reused Solver — the steady state the profiles should
// capture (a single run is dominated by one-time buffer growth).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/viz"
)

func main() {
	var (
		meshFlag  = flag.String("mesh", "32x32x32", "mesh widths, e.g. 32x32 or 32x32x32")
		torus     = flag.Bool("torus", false, "use a torus (wrap-around links; generic algorithm)")
		k         = flag.Int("k", 2, "number of routing rounds (virtual channels)")
		algo      = flag.String("algo", "lamb1", "algorithm: lamb1 | lamb2 | exact | generic")
		faultsStr = flag.String("faults", "", "semicolon-separated fault coordinates, e.g. \"(9,1);(11,6)\"")
		faultFile = flag.String("fault-file", "", "file with one fault coordinate per line")
		random    = flag.Int("random", 0, "number of random node faults to draw instead")
		seed      = flag.Int64("seed", 1, "seed for -random")
		workers   = flag.Int("workers", 0, "reachability worker pool size; 0 = all CPUs (result is identical for any value)")
		verify    = flag.Bool("verify", false, "re-verify the lamb set through the SES/DES algebra")
		verbose   = flag.Bool("v", false, "print partition statistics")
		load      = flag.String("load", "", "load mesh+faults from a file in the lambmesh fault format (overrides -mesh)")
		save      = flag.String("save", "", "save the mesh+faults to a file in the lambmesh fault format")
		draw      = flag.Bool("draw", false, "draw the mesh with faults (X) and lambs (L); 2D meshes only")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the lamb computation to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (after the computation, post-GC) to this file")
		repeat    = flag.Int("repeat", 1, "run the computation N times through one Solver (for profiling the steady state)")
	)
	flag.Parse()

	var f *mesh.FaultSet
	if *load != "" {
		fh, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		f, err = mesh.ReadFaults(fh)
		fh.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		m, err := parseMesh(*meshFlag, *torus)
		if err != nil {
			fatal(err)
		}
		f = mesh.NewFaultSet(m)
	}
	m := f.Mesh()
	if err := loadFaults(f, *faultsStr, *faultFile); err != nil {
		fatal(err)
	}
	if *random > 0 {
		rf := mesh.RandomNodeFaults(m, *random, rand.New(rand.NewSource(*seed)))
		for _, c := range rf.NodeFaults() {
			f.AddNode(c)
		}
	}
	if f.Count() == 0 {
		fmt.Fprintln(os.Stderr, "lambfind: no faults given; every good node already reaches every other")
	}

	if *save != "" {
		fh, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := mesh.WriteFaults(fh, f); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
	}

	orders := routing.UniformAscending(m.Dims(), *k)
	if *cpuProf != "" {
		fh, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(fh); err != nil {
			fatal(err)
		}
		defer fh.Close()
	}
	var res *core.Result
	var err error
	s := core.NewSolver()
	for i := 0; i < *repeat || i == 0; i++ {
		res, err = computeLamb(s, f, orders, *algo, *workers)
		if err != nil {
			fatal(err)
		}
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		fh, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "mesh %v, %d node faults, %d link faults, k=%d (%v)\n",
		m, f.NumNodeFaults(), f.NumLinkFaults(), *k, orders)
	fmt.Fprintf(os.Stderr, "lambs: %d (%.4f%% of nodes, %.1f%% of faults), survivors: %d\n",
		res.NumLambs(),
		100*float64(res.NumLambs())/float64(m.Nodes()),
		pct(res.NumLambs(), f.Count()),
		res.Survivors(f))
	if *verbose {
		fmt.Fprintf(os.Stderr, "SESs %d, DESs %d, relevant %d/%d, cover weight %d, proven lower bound %d\n",
			res.Stats.NumSES, res.Stats.NumDES,
			res.Stats.RelevantSES, res.Stats.RelevantDES,
			res.Stats.CoverWeight, res.LowerBound())
	}
	if *verify && !m.Torus() && *algo != "generic" {
		if err := core.VerifyLambSet(f, orders, res.Lambs); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "verification: OK")
	}
	if *draw {
		pic, err := viz.Render(f, res.Lambs, viz.Marks{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lambfind: -draw:", err)
		} else {
			fmt.Fprint(os.Stderr, pic)
		}
	}
	for _, c := range res.Lambs {
		fmt.Println(strings.Trim(c.String(), "()"))
	}
}

// computeLamb dispatches to the selected lamb algorithm, running it through
// the caller's Solver so -repeat profiles the scratch-reuse steady state. The
// torus/generic path has no worker knob (it is single-threaded); everywhere
// else the result is bit-identical for any workers value.
func computeLamb(s *core.Solver, f *mesh.FaultSet, orders routing.MultiOrder, algo string, workers int) (*core.Result, error) {
	switch {
	case f.Mesh().Torus() || algo == "generic":
		return core.TorusLamb(f, orders)
	case algo == "lamb1":
		return s.Lamb1(f, orders, core.WithWorkers(workers))
	case algo == "lamb2":
		return s.Lamb2(f, orders, core.ApproxWVC, core.WithWorkers(workers))
	case algo == "exact":
		return s.ExactLamb(f, orders, core.WithWorkers(workers))
	default:
		return nil, fmt.Errorf("unknown -algo %q", algo)
	}
}

func parseMesh(s string, torus bool) (*mesh.Mesh, error) {
	parts := strings.Split(s, "x")
	widths := make([]int, len(parts))
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mesh spec %q: %v", s, err)
		}
		widths[i] = w
	}
	if torus {
		return mesh.NewTorus(widths...)
	}
	return mesh.New(widths...)
}

func loadFaults(f *mesh.FaultSet, inline, file string) error {
	add := func(spec string) error {
		spec = strings.TrimSpace(spec)
		if spec == "" || strings.HasPrefix(spec, "#") {
			return nil
		}
		c, err := mesh.ParseCoord(spec)
		if err != nil {
			return err
		}
		if !f.Mesh().Contains(c) {
			return fmt.Errorf("fault %v outside mesh %v", c, f.Mesh())
		}
		f.AddNode(c)
		return nil
	}
	for _, spec := range strings.Split(inline, ";") {
		if err := add(spec); err != nil {
			return err
		}
	}
	if file != "" {
		fh, err := os.Open(file)
		if err != nil {
			return err
		}
		defer fh.Close()
		sc := bufio.NewScanner(fh)
		for sc.Scan() {
			if err := add(sc.Text()); err != nil {
				return err
			}
		}
		return sc.Err()
	}
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lambfind:", err)
	os.Exit(1)
}
