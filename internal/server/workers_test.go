package server

import (
	"reflect"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// Config.Workers plumbs into the background recompute; the published epoch
// (lamb set and generation) must be identical for any pool size.
func TestWorkersConfigSameEpoch(t *testing.T) {
	m := mesh.MustNew(12, 12)
	seed := mesh.NewFaultSet(m)
	seed.AddNodes(mesh.C(3, 3), mesh.C(4, 4), mesh.C(9, 2))

	epochFor := func(workers int) *Epoch {
		s, err := New(Config{
			Mesh:          m,
			Orders:        routing.UniformAscending(2, 2),
			InitialFaults: seed,
			Workers:       workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		defer s.Close()
		return s.Epoch()
	}

	base := epochFor(1)
	for _, w := range []int{2, 0} {
		e := epochFor(w)
		if e.Generation != base.Generation {
			t.Errorf("workers=%d: generation %d != %d", w, e.Generation, base.Generation)
		}
		if !reflect.DeepEqual(e.Lambs, base.Lambs) {
			t.Errorf("workers=%d: lamb set %v != %v", w, e.Lambs, base.Lambs)
		}
	}
}
