package campaign

// rng is a small value-type PRNG (splitmix64) used by the campaign trial
// loop. math/rand's rand.New allocates its generator on the heap; a campaign
// seeds a fresh generator per trial (millions of times), so the trial loop
// carries this zero-allocation generator by value instead. The sequence is a
// pure function of the seed, which the per-trial seed contract
// (par.TrialSeed, DESIGN.md §12) derives from (campaign seed, grid point,
// trial index).
type rng struct {
	state uint64
}

// newRNG seeds a generator. Distinct seeds give well-separated sequences
// (splitmix64 is a bijective mix of a Weyl sequence).
func newRNG(seed int64) rng {
	return rng{state: uint64(seed)}
}

// next returns the next 64 uniformly random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform float in [0, 1) with 53 random bits.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform integer in [0, n). n must be positive. Rejection
// sampling keeps the distribution exactly uniform.
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		panic("campaign: intn with non-positive bound")
	}
	max := uint64(1<<63 - 1 - (1<<63-1)%uint64(n))
	v := r.next() >> 1
	for v > max {
		v = r.next() >> 1
	}
	return int64(v % uint64(n))
}
