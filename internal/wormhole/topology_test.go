package wormhole

// The cross-topology x cross-strategy matrix suite: every (topology,
// strategy) pair either builds and carries a randomized workload with the
// usual guarantees — routes avoid faults, channel dependencies stay acyclic,
// delivery or an explicit unreachable report, byte-identical sweeps at any
// worker count — or is rejected with a clear error at build time. The torus
// rows additionally pin the dateline VC discipline (round t owns the VC pair
// {2t, 2t+1}, the high channel engaged at the wrap hop), and the full-mesh
// rows pin the zero-VC direct/one-hop-indirect scheme.

import (
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// topoCase is one row of the support matrix.
type topoCase struct {
	name string
	topo func(t *testing.T) mesh.Topology
	// supported lists the strategies that must build; every other
	// StrategyNames entry must fail with an error.
	supported []string
	vcs       int
	faults    int
	// event is the live-sweep mid-run fault (nil skips the live leg).
	event mesh.Coord
}

func topologyMatrix() []topoCase {
	return []topoCase{
		{
			name:      "mesh",
			topo:      func(t *testing.T) mesh.Topology { return mesh.MustNew(6, 6) },
			supported: []string{"lamb", "ring", "adaptive"},
			vcs:       2, faults: 4,
			event: mesh.C(4, 4),
		},
		{
			name: "torus",
			topo: func(t *testing.T) mesh.Topology {
				tor, err := mesh.NewTorus(6, 6)
				if err != nil {
					t.Fatal(err)
				}
				return tor
			},
			supported: []string{"lamb"},
			vcs:       4, faults: 4, // 2k dateline VC pairs for k=2
			event: mesh.C(4, 4),
		},
		{
			name: "hypercube",
			topo: func(t *testing.T) mesh.Topology {
				h, err := mesh.NewHypercube(4)
				if err != nil {
					t.Fatal(err)
				}
				return h
			},
			supported: []string{"lamb", "adaptive"},
			vcs:       2, faults: 2,
		},
		{
			name: "fullmesh",
			topo: func(t *testing.T) mesh.Topology {
				fm, err := mesh.NewFullMesh(12)
				if err != nil {
					t.Fatal(err)
				}
				return fm
			},
			supported: []string{"direct"},
			vcs:       1, faults: 3,
		},
	}
}

// matrixStrategy builds one supported (topology, strategy) pair over a
// deterministic fault draw.
func matrixStrategy(t *testing.T, tc topoCase, name string, seed int64) (RouteStrategy, StrategyBuilder, *mesh.FaultSet, routing.MultiOrder) {
	t.Helper()
	topo := tc.topo(t)
	f := mesh.RandomNodeFaultsOn(topo, tc.faults, rand.New(rand.NewSource(seed)))
	orders := routing.UniformAscending(topo.Grid().Dims(), 2)
	builder, err := NewStrategyBuilder(name, orders)
	if err != nil {
		t.Fatal(err)
	}
	s, err := builder(f)
	if err != nil {
		t.Fatalf("%s over %v: %v", name, topo, err)
	}
	return s, builder, f, orders
}

func TestTopologyMatrix(t *testing.T) {
	for _, tc := range topologyMatrix() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sup := make(map[string]bool)
			for _, s := range tc.supported {
				sup[s] = true
			}
			for si, name := range StrategyNames() {
				if !sup[name] {
					topo := tc.topo(t)
					f := mesh.NewFaultSetOn(topo)
					builder, err := NewStrategyBuilder(name, routing.UniformAscending(topo.Grid().Dims(), 2))
					if err != nil {
						t.Fatal(err)
					}
					if _, err := builder(f); err == nil {
						t.Errorf("%s on %s: want a build-time rejection, got a strategy", name, tc.name)
					}
					continue
				}
				t.Run(name, func(t *testing.T) {
					checkMatrixWorkload(t, tc, name)
					checkMatrixPairs(t, tc, name)
					checkMatrixSweepDeterminism(t, tc, name, si)
				})
			}
		})
	}
}

// TestRingStrategyTopologyGating: the Boppana–Chalasani construction is
// defined on 2D meshes only; every other topology must be rejected at build
// time with an error naming the offender, before any rectangularization.
func TestRingStrategyTopologyGating(t *testing.T) {
	build := func(topo mesh.Topology) error {
		_, err := NewRingStrategy(mesh.NewFaultSetOn(topo))
		return err
	}
	if err := build(mesh.MustNew(6, 6)); err != nil {
		t.Fatalf("2D mesh rejected: %v", err)
	}
	tor, err := mesh.NewTorus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := mesh.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := mesh.NewFullMesh(8)
	if err != nil {
		t.Fatal(err)
	}
	for name, topo := range map[string]mesh.Topology{
		"3D mesh":   mesh.MustNew(4, 4, 4),
		"torus":     tor,
		"hypercube": hc,
		"fullmesh":  fm,
	} {
		err := build(topo)
		if err == nil {
			t.Errorf("%s: ring strategy built, want rejection", name)
			continue
		}
		if !strings.Contains(err.Error(), "requires a 2D mesh") {
			t.Errorf("%s: error %q does not name the 2D-mesh requirement", name, err)
		}
	}
}

// checkMatrixWorkload draws a workload, runs it through the engine, and
// checks delivery, CDG acyclicity, and per-route properties.
func checkMatrixWorkload(t *testing.T, tc topoCase, name string) {
	t.Helper()
	s, _, f, orders := matrixStrategy(t, tc, name, 41)
	m := f.Mesh()
	msgs, unreachable, err := GenerateStrategyWorkload(s,
		WorkloadSpec{Pattern: PatternUniform, Rate: 0.03, PacketFlits: 4, Cycles: 150},
		tc.vcs, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	if name == "lamb" && unreachable > 0 {
		t.Fatalf("lamb on %s reported %d unreachable packets", tc.name, unreachable)
	}
	if len(msgs) == 0 {
		t.Fatalf("%s on %s: empty workload", name, tc.name)
	}
	cfg := DefaultConfig()
	cfg.VirtualChannels = tc.vcs
	eng, err := NewEngine(f, EngineConfig{
		Net:           cfg,
		WarmupCycles:  50,
		MeasureCycles: 100,
		Nodes:         len(Survivors(f, s.Sacrificed())),
	}, msgs)
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Run()
	if r.Deadlocked {
		t.Fatalf("%s on %s: deadlock at %d VCs", name, tc.name, tc.vcs)
	}
	if r.Delivered != r.Packets {
		t.Fatalf("%s on %s: %d of %d delivered", name, tc.name, r.Delivered, r.Packets)
	}
	if cyc, bad := NewChannelDependencies(m, msgs).FindCycle(); bad {
		t.Fatalf("%s on %s: cyclic channel dependency: %s", name, tc.name, cyc)
	}
	sacrificedAt := make(map[int64]bool)
	for _, l := range s.Sacrificed() {
		sacrificedAt[m.Index(l)] = true
	}
	for _, msg := range msgs {
		checkTopoRoute(t, tc.name, name, f, sacrificedAt, tc.vcs, msg)
		if tc.name == "mesh" || tc.name == "hypercube" {
			if name == "lamb" {
				checkRouteProperties(t, m, f, sacrificedAt, orders, msg)
			}
		}
	}
	checkSourceFIFO(t, m, msgs)
}

// checkTopoRoute walks one route with topology-generic checks (contiguity
// via LinkHead, usable links, fault avoidance) plus the per-topology
// discipline checks the mesh-specific helpers cannot express.
func checkTopoRoute(t *testing.T, topoName, strat string, f *mesh.FaultSet,
	sacrificedAt map[int64]bool, vcs int, msg *Message) {
	t.Helper()
	m := f.Mesh()
	if f.NodeFaulty(msg.Src) || f.NodeFaulty(msg.Dst) {
		t.Fatalf("msg %d: faulty endpoint %v -> %v", msg.ID, msg.Src, msg.Dst)
	}
	if sacrificedAt[m.Index(msg.Src)] || sacrificedAt[m.Index(msg.Dst)] {
		t.Fatalf("msg %d: sacrificed endpoint %v -> %v", msg.ID, msg.Src, msg.Dst)
	}
	if len(msg.Hops) == 0 {
		t.Fatalf("msg %d: empty route", msg.ID)
	}
	cur := msg.Src
	for i, h := range msg.Hops {
		if !h.Link.From.Equal(cur) {
			t.Fatalf("msg %d hop %d: discontinuous route (%v != %v)", msg.ID, i, h.Link.From, cur)
		}
		head, ok := f.Topology().LinkHead(h.Link)
		if !ok {
			t.Fatalf("msg %d hop %d: link %v does not exist on %s", msg.ID, i, h.Link, topoName)
		}
		if !f.Usable(h.Link) {
			t.Fatalf("msg %d hop %d: unusable link %v", msg.ID, i, h.Link)
		}
		if h.VC < 0 || h.VC >= vcs {
			t.Fatalf("msg %d hop %d: VC %d outside [0,%d)", msg.ID, i, h.VC, vcs)
		}
		cur = head
		if f.NodeFaulty(cur) {
			t.Fatalf("msg %d hop %d: route through faulty node %v", msg.ID, i, cur)
		}
	}
	if !cur.Equal(msg.Dst) {
		t.Fatalf("msg %d: route ends at %v, not dst %v", msg.ID, cur, msg.Dst)
	}
	switch {
	case topoName == "torus" && strat == "lamb":
		checkTorusLambRoute(t, m, msg)
	case strat == "direct":
		checkDirectRoute(t, f, msg)
	}
}

// checkTorusLambRoute pins the dateline VC discipline: round t owns the VC
// pair {2t, 2t+1}; within a round the dimensions follow the ascending order;
// within a dimension segment the worm rides the low channel until the wrap
// hop (a coordinate jump across the dateline) and the high channel from the
// wrap on.
func checkTorusLambRoute(t *testing.T, m *mesh.Mesh, msg *Message) {
	t.Helper()
	round, curDim, onHigh := 0, -1, false
	for i, h := range msg.Hops {
		r := h.VC / 2
		if r < round {
			t.Fatalf("torus msg %d hop %d: round regressed (VC %d after round %d)", msg.ID, i, h.VC, round)
		}
		if r > round || h.Link.Dim != curDim {
			// New round or new dimension segment: reset to the low channel.
			if r > round {
				round, curDim = r, h.Link.Dim
			} else {
				if h.Link.Dim < curDim {
					t.Fatalf("torus msg %d hop %d: dimension %d after %d within round %d", msg.ID, i, h.Link.Dim, curDim, round)
				}
				curDim = h.Link.Dim
			}
			onHigh = false
		}
		to, ok := m.Neighbor(h.Link.From, h.Link.Dim, h.Link.Dir)
		if !ok {
			t.Fatalf("torus msg %d hop %d: no neighbor for %v", msg.ID, i, h.Link)
		}
		delta := to[h.Link.Dim] - h.Link.From[h.Link.Dim]
		if delta > 1 || delta < -1 {
			onHigh = true // the wrap hop crosses the dateline
		}
		want := 2 * round
		if onHigh {
			want++
		}
		if h.VC != want {
			t.Fatalf("torus msg %d hop %d: VC %d, want %d (round %d, dateline=%v)", msg.ID, i, h.VC, want, round, onHigh)
		}
	}
}

// checkDirectRoute pins the full-mesh scheme: at most two hops, one VC end
// to end, and any intermediate has a grid index strictly above the source's.
func checkDirectRoute(t *testing.T, f *mesh.FaultSet, msg *Message) {
	t.Helper()
	m := f.Mesh()
	if len(msg.Hops) > 2 {
		t.Fatalf("direct msg %d: %d hops (max 2)", msg.ID, len(msg.Hops))
	}
	for i, h := range msg.Hops {
		if h.VC != msg.Hops[0].VC {
			t.Fatalf("direct msg %d hop %d: VC changed mid-worm", msg.ID, i)
		}
	}
	if len(msg.Hops) == 2 {
		w := msg.Hops[1].Link.From
		if m.Index(w) <= m.Index(msg.Src) {
			t.Fatalf("direct msg %d: intermediate %v not above source %v in index order", msg.ID, w, msg.Src)
		}
	}
}

// checkMatrixPairs: every survivor pair either routes or is explicitly
// reported unreachable; lambs must serve every pair.
func checkMatrixPairs(t *testing.T, tc topoCase, name string) {
	t.Helper()
	s, _, f, _ := matrixStrategy(t, tc, name, 41)
	survivors := Survivors(f, s.Sacrificed())
	rng := rand.New(rand.NewSource(7))
	unreachable := 0
	for _, src := range survivors {
		for _, dst := range survivors {
			if src.Equal(dst) {
				continue
			}
			msg, ok, err := s.Route(src, dst, 0, 4, 0, tc.vcs, rng)
			if err != nil {
				t.Fatalf("%s on %s: Route(%v, %v): %v", name, tc.name, src, dst, err)
			}
			if !ok {
				unreachable++
				continue
			}
			if msg == nil || len(msg.Hops) == 0 {
				t.Fatalf("%s on %s: ok route with no hops %v -> %v", name, tc.name, src, dst)
			}
		}
	}
	if name == "lamb" && unreachable != 0 {
		t.Fatalf("lamb on %s left %d pairs unserved", tc.name, unreachable)
	}
}

// checkMatrixSweepDeterminism: RunSweep is byte-identical at workers 1, 2,
// and NumCPU, static and (where an event is configured) live.
func checkMatrixSweepDeterminism(t *testing.T, tc topoCase, name string, stream int) {
	t.Helper()
	_, builder, f, orders := matrixStrategy(t, tc, name, 41)
	cfg := DefaultConfig()
	cfg.VirtualChannels = tc.vcs
	spec := SweepSpec{
		Rates:          []float64{0.02},
		Trials:         2,
		Pattern:        PatternUniform,
		PacketFlits:    4,
		Warmup:         50,
		Measure:        100,
		Net:            cfg,
		Seed:           11,
		Strategy:       builder,
		StrategyStream: stream,
	}
	run := func(workers int, live bool) []SweepPoint {
		s := spec
		s.Workers = workers
		if live {
			s.Schedule = FaultSchedule{Events: []FaultEvent{{Cycle: 80, Nodes: []mesh.Coord{tc.event}}}}
		}
		pts, err := RunSweep(f, orders, nil, s)
		if err != nil {
			t.Fatalf("%s on %s workers=%d live=%v: %v", name, tc.name, workers, live, err)
		}
		return pts
	}
	lives := []bool{false}
	if tc.event != nil {
		lives = append(lives, true)
	}
	for _, live := range lives {
		one := run(1, live)
		for _, workers := range []int{2, runtime.NumCPU()} {
			if got := run(workers, live); !reflect.DeepEqual(one, got) {
				t.Fatalf("%s on %s live=%v: sweep differs between 1 and %d workers:\n1: %+v\n%d: %+v",
					name, tc.name, live, workers, one, workers, got)
			}
		}
	}
}
