// Package maxflow implements Dinic's maximum-flow algorithm on integer
// capacities. It is the engine behind the exact bipartite weighted vertex
// cover of Section 6.3.1 of Ho & Stockmeyer (IPDPS 2002): solving WVC
// optimally on a bipartite graph with b vertices reduces to max-flow on a
// network with b+2 vertices [Gusfield 1992], and Dinic runs comfortably
// inside the paper's O(b^3) bound.
package maxflow

import "math"

// Inf is a capacity larger than any sum of finite capacities the lamb
// problem produces (node-set sizes are bounded by the mesh size).
const Inf int64 = math.MaxInt64 / 4

// Graph is a flow network under construction. Vertices are dense integers
// 0..n-1; add edges, then call MaxFlow once (per Reset). The zero value is an
// empty 0-vertex network; Reset rebuilds any Graph for a new instance while
// reusing its adjacency and traversal buffers, so a long-lived Graph (one per
// vcover.Scratch, say) stops allocating once it has seen its largest
// instance.
type Graph struct {
	n     int
	heads []edge
	adj   [][]int // adj[v] lists indices into heads

	// Traversal scratch, reused across MaxFlow/ResidualReachable calls.
	level []int
	iter  []int
	queue []int
	seen  []bool
	stack []int
}

type edge struct {
	to  int
	cap int64
}

// New returns an empty flow network with n vertices.
func New(n int) *Graph {
	return new(Graph).Reset(n)
}

// Reset makes g an empty flow network with n vertices, reusing every buffer
// from previous instances. Edge ids from before the Reset are invalid.
func (g *Graph) Reset(n int) *Graph {
	if n < 0 {
		panic("maxflow: negative vertex count")
	}
	g.n = n
	g.heads = g.heads[:0]
	if cap(g.adj) < n {
		g.adj = append(g.adj[:cap(g.adj)], make([][]int, n-cap(g.adj))...)
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	return g
}

// AddEdge adds a directed edge from u to v with the given capacity (and its
// residual reverse edge of capacity 0). It returns the edge id, usable with
// Flow after MaxFlow has run.
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("maxflow: vertex out of range")
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.heads)
	g.heads = append(g.heads, edge{to: v, cap: capacity})
	g.adj[u] = append(g.adj[u], id)
	g.heads = append(g.heads, edge{to: u, cap: 0})
	g.adj[v] = append(g.adj[v], id+1)
	return id
}

// Flow returns the flow pushed through edge id after MaxFlow.
func (g *Graph) Flow(id int) int64 {
	// Residual capacity of the reverse edge equals the flow on the edge.
	return g.heads[id^1].cap
}

// Capacity returns the remaining (residual) capacity of edge id.
func (g *Graph) Capacity(id int) int64 { return g.heads[id].cap }

// MaxFlow computes the maximum s-t flow and mutates the network into its
// residual form. Call at most once per Reset.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	var total int64
	level := growInts(&g.level, g.n)
	iter := growInts(&g.iter, g.n)
	queue := g.queue[:0]
	defer func() { g.queue = queue }()
	for g.bfs(s, t, level, &queue) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, Inf, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

func (g *Graph) bfs(s, t int, level []int, queue *[]int) bool {
	for i := range level {
		level[i] = -1
	}
	// Walk with a head index rather than re-slicing q = q[1:]: advancing the
	// slice base would shrink the retained capacity and force a fresh
	// allocation on every call.
	q := (*queue)[:0]
	level[s] = 0
	q = append(q, s)
	for head := 0; head < len(q); head++ {
		v := q[head]
		for _, id := range g.adj[v] {
			e := g.heads[id]
			if e.cap > 0 && level[e.to] < 0 {
				level[e.to] = level[v] + 1
				q = append(q, e.to)
			}
		}
	}
	*queue = q
	return level[t] >= 0
}

func (g *Graph) dfs(v, t int, f int64, level, iter []int) int64 {
	if v == t {
		return f
	}
	for ; iter[v] < len(g.adj[v]); iter[v]++ {
		id := g.adj[v][iter[v]]
		e := &g.heads[id]
		if e.cap <= 0 || level[e.to] != level[v]+1 {
			continue
		}
		d := g.dfs(e.to, t, min64(f, e.cap), level, iter)
		if d > 0 {
			e.cap -= d
			g.heads[id^1].cap += d
			return d
		}
	}
	return 0
}

// ResidualReachable returns, per vertex, whether it is reachable from s in
// the residual network. After MaxFlow this identifies the source side of a
// minimum cut, which is how the WVC reduction extracts the cover. The
// returned slice is graph-owned scratch: valid until the next
// ResidualReachable or Reset on g.
func (g *Graph) ResidualReachable(s int) []bool {
	if cap(g.seen) < g.n {
		g.seen = make([]bool, g.n)
	}
	seen := g.seen[:g.n]
	clear(seen)
	seen[s] = true
	stack := append(g.stack[:0], s)
	defer func() { g.stack = stack }()
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.adj[v] {
			e := g.heads[id]
			if e.cap > 0 && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

// growInts reslices *buf to n zeroed ints, reallocating only on growth.
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	out := (*buf)[:n]
	clear(out)
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
