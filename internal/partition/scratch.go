package partition

import (
	"fmt"
	"sort"

	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// Scratch owns every buffer a partition computation needs, so repeated
// SES/DES calls stop allocating once the buffers have grown to the
// working-set size — the steady state of a Reconfigurer recomputing on each
// fault epoch, or of a simulation worker running thousands of trials.
//
// Ownership contract: a Partition returned by Scratch.SES/DES references
// arena memory owned by the Scratch. It stays valid until the next Reset
// (which rewinds the arenas for the next computation) or until the arenas
// next grow past it. Callers therefore either consume partitions before the
// next Reset, or call Detach to hand the memory over to the garbage
// collector and keep them alive indefinitely. A Scratch is not safe for
// concurrent use; the zero value is ready to use.
type Scratch struct {
	// Escape arenas: memory referenced by returned Partitions. Rewound by
	// Reset, forgotten by Detach.
	ints  intArena
	ivals ivalArena

	// Partition headers handed out by SES/DES. Recycled like the arenas:
	// Reset rewinds np so headers (and their Sets backing) are reused,
	// Detach forgets them so retained partitions stay valid.
	parts []*Partition
	np    int

	// Per-call temporaries; never referenced after SES/DES returns.
	tmpInts  intArena
	tmpIvals ivalArena
	nodes    []mesh.Coord
	links    []mesh.Link
	widths   []int
	inv      []int
	rev      routing.Order
	levels   []*levelScratch
}

// levelScratch is the reusable state of one recursion depth of
// Find-SES-Partition. Depth t peels working dimension d-1-t; the slice
// returned by findAscending at depth t lives in out and is valid until the
// next call at the same depth — parents consume child results immediately.
type levelScratch struct {
	dirty    map[int]bool
	h        []int
	subNodes []mesh.Coord
	subLinks []mesh.Link
	out      []rect.Rect
	runs     []rect.Interval
	cutAfter map[int]bool // base case only
}

// intArena hands out []int chunks from a reusable block. Chunks allocated
// before a block change stay valid (the old block is simply dropped to the
// collector), so growth never invalidates outstanding data — only Reset
// does, by rewinding the cursor.
type intArena struct {
	buf []int
	off int
}

func (a *intArena) alloc(n int) []int {
	if a.off+n > len(a.buf) {
		size := 2 * len(a.buf)
		if size < 4096 {
			size = 4096
		}
		if size < n {
			size = n
		}
		a.buf = make([]int, size)
		a.off = 0
	}
	out := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

func (a *intArena) reset()  { a.off = 0 }
func (a *intArena) detach() { a.buf, a.off = nil, 0 }

// ivalArena is intArena for rect.Interval chunks (rect backing).
type ivalArena struct {
	buf []rect.Interval
	off int
}

func (a *ivalArena) alloc(n int) []rect.Interval {
	if a.off+n > len(a.buf) {
		size := 2 * len(a.buf)
		if size < 4096 {
			size = 4096
		}
		if size < n {
			size = n
		}
		a.buf = make([]rect.Interval, size)
		a.off = 0
	}
	out := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

func (a *ivalArena) reset()  { a.off = 0 }
func (a *ivalArena) detach() { a.buf, a.off = nil, 0 }

// Reset rewinds the escape arenas. Every Partition previously returned by
// this Scratch becomes invalid; call it at the start of each new
// computation (internal/reach does this once per Compute).
func (s *Scratch) Reset() {
	s.ints.reset()
	s.ivals.reset()
	s.np = 0
}

// Detach hands the escape arenas over to the garbage collector: previously
// returned Partitions stay valid indefinitely, and the next call allocates
// fresh arenas. Used when a caller retains partitions (WithReachability).
func (s *Scratch) Detach() {
	s.ints.detach()
	s.ivals.detach()
	s.parts, s.np = nil, 0
}

// newPartition hands out a recycled Partition header, or a fresh one when
// the pool is exhausted.
func (s *Scratch) newPartition(kind Kind, pi routing.Order) *Partition {
	if s.np < len(s.parts) {
		p := s.parts[s.np]
		s.np++
		p.Kind, p.Order = kind, pi
		p.Sets = p.Sets[:0]
		return p
	}
	p := &Partition{Kind: kind, Order: pi}
	s.parts = append(s.parts, p)
	s.np++
	return p
}

// SES returns an SES partition for fault set f and 1-round ordering pi,
// using (and reusing) the Scratch's buffers. Semantics and output are
// byte-identical to the package-level SES.
func (s *Scratch) SES(f *mesh.FaultSet, pi routing.Order) (*Partition, error) {
	return s.find(f, pi, Source)
}

// DES is the Scratch counterpart of the package-level DES.
func (s *Scratch) DES(f *mesh.FaultSet, pi routing.Order) (*Partition, error) {
	return s.find(f, pi, Destination)
}

func (s *Scratch) level(depth int) *levelScratch {
	for len(s.levels) <= depth {
		s.levels = append(s.levels, &levelScratch{
			dirty:    make(map[int]bool),
			cutAfter: make(map[int]bool),
		})
	}
	return s.levels[depth]
}

func (s *Scratch) find(f *mesh.FaultSet, pi routing.Order, kind Kind) (*Partition, error) {
	m := f.Mesh()
	if m.Torus() {
		return nil, fmt.Errorf("partition: the rectangular partition algorithm requires a mesh, not a torus (use the generic path)")
	}
	if err := pi.Validate(m.Dims()); err != nil {
		return nil, err
	}
	s.tmpInts.reset()
	s.tmpIvals.reset()

	order := pi
	reverseLinks := false
	if kind == Destination {
		// Reverse into a reusable buffer instead of pi.Reverse(): the
		// working order never escapes this call.
		s.rev = s.rev[:0]
		for i := len(pi) - 1; i >= 0; i-- {
			s.rev = append(s.rev, pi[i])
		}
		order = s.rev
		reverseLinks = true
	}

	// Work in a coordinate space permuted so that `order` becomes the
	// ascending ordering: working dimension t is original dimension
	// order[t]. The recursion then always peels the last working dimension,
	// which is the last-corrected one.
	d := m.Dims()
	if cap(s.widths) < d {
		s.widths = make([]int, d)
		s.inv = make([]int, d)
	}
	widths := s.widths[:d]
	inv := s.inv[:d] // inv[original dim] = working dim
	for t := 0; t < d; t++ {
		widths[t] = m.Width(order[t])
	}
	for t, dim := range order {
		inv[dim] = t
	}

	s.nodes = s.nodes[:0]
	for _, c := range f.NodeFaults() {
		s.nodes = append(s.nodes, s.permuteCoord(c, order))
	}
	s.links = s.links[:0]
	for _, l := range f.LinkFaults() {
		wl := mesh.Link{From: s.permuteCoord(l.From, order), Dim: inv[l.Dim], Dir: l.Dir}
		if reverseLinks {
			// Reverse the directed link: new tail is the old head. The
			// permuted coord is already a private copy, so mutate in place.
			wl.From[wl.Dim] += wl.Dir
			wl.Dir = -wl.Dir
		}
		s.links = append(s.links, wl)
	}

	work := s.findAscending(0, widths, s.nodes, s.links)

	p := s.newPartition(kind, pi)
	for _, wr := range work {
		// Permute back to original dimensions (r[original dim j] =
		// wr[inv[j]]) and take the min corner as representative, both out of
		// the escape arenas.
		r := rect.Rect(s.ivals.alloc(d))
		for j := 0; j < d; j++ {
			r[j] = wr[inv[j]]
		}
		rep := mesh.Coord(s.ints.alloc(d))
		for j, iv := range r {
			rep[j] = iv.Lo
		}
		p.Sets = append(p.Sets, Set{Rect: r, Rep: rep})
	}
	return p, nil
}

// permuteCoord maps an original coordinate into working space (out[t] =
// c[order[t]]), backed by the per-call temp arena.
func (s *Scratch) permuteCoord(c mesh.Coord, order routing.Order) mesh.Coord {
	out := mesh.Coord(s.tmpInts.alloc(len(c)))
	for t, dim := range order {
		out[t] = c[dim]
	}
	return out
}

// findAscending is Find-SES-Partition (Figure 11) for the ascending
// ordering, in working coordinates. It returns rectangular sets of shape
// (*,...,*,[l,r],c,...,c) that partition the good nodes. The returned slice
// and its rects are scratch-owned: valid until the next call at the same
// depth (parents consume child results immediately) or, for the rect
// backing, until the temp arena rewinds at the next SES/DES call.
func (s *Scratch) findAscending(depth int, widths []int, nodeFaults []mesh.Coord, linkFaults []mesh.Link) []rect.Rect {
	lv := s.level(depth)
	lv.out = lv.out[:0]
	d := len(widths)
	if d == 1 {
		return s.base1D(lv, widths[0], nodeFaults, linkFaults)
	}
	last := d - 1
	n := widths[last]

	// Step 2(a): H is the set of last-coordinate values whose slice is
	// "dirty". Node faults and links along dimensions < last dirty their
	// own slice; a link along the last dimension spans two slices and
	// dirties both.
	clear(lv.dirty)
	for _, c := range nodeFaults {
		lv.dirty[c[last]] = true
	}
	for _, l := range linkFaults {
		if l.Dim != last {
			lv.dirty[l.From[last]] = true
		} else {
			lv.dirty[l.From[last]] = true
			lv.dirty[l.From[last]+l.Dir] = true
		}
	}
	lv.h = lv.h[:0]
	for c := range lv.dirty {
		lv.h = append(lv.h, c)
	}
	sort.Ints(lv.h)

	// Step 2(b): recurse into each dirty slice with the faults that live
	// wholly inside it (the paper's F/c), then extend each returned set
	// with the fixed last coordinate (Lemma 6.1).
	for _, c := range lv.h {
		lv.subNodes = lv.subNodes[:0]
		for _, v := range nodeFaults {
			if v[last] == c {
				lv.subNodes = append(lv.subNodes, v[:last])
			}
		}
		lv.subLinks = lv.subLinks[:0]
		for _, l := range linkFaults {
			if l.Dim != last && l.From[last] == c {
				lv.subLinks = append(lv.subLinks, mesh.Link{From: l.From[:last], Dim: l.Dim, Dir: l.Dir})
			}
		}
		for _, sub := range s.findAscending(depth+1, widths[:last], lv.subNodes, lv.subLinks) {
			r := rect.Rect(s.tmpIvals.alloc(d))
			copy(r, sub)
			r[last] = rect.Interval{Lo: c, Hi: c}
			lv.out = append(lv.out, r)
		}
	}

	// Steps 2(c)-(d): the clean slice values, grouped into maximal runs,
	// become full-width sets (*,...,*,[l,r]) (Lemma 6.3).
	lv.runs = appendCleanRuns(lv.runs[:0], n, lv.dirty)
	for _, iv := range lv.runs {
		r := rect.Rect(s.tmpIvals.alloc(d))
		for j := 0; j < last; j++ {
			r[j] = rect.Interval{Lo: 0, Hi: widths[j] - 1}
		}
		r[last] = iv
		lv.out = append(lv.out, r)
	}
	return lv.out
}

// base1D is the d=1 base case (step 1 of Figure 11): maximal intervals of
// good nodes containing no node fault and not spanning any faulty link.
func (s *Scratch) base1D(lv *levelScratch, n int, nodeFaults []mesh.Coord, linkFaults []mesh.Link) []rect.Rect {
	clear(lv.dirty) // reused as the faulty-node set at the base
	for _, c := range nodeFaults {
		lv.dirty[c[0]] = true
	}
	// cutAfter[c]: no interval may contain both c and c+1 (a link between
	// them failed in at least one direction).
	clear(lv.cutAfter)
	for _, l := range linkFaults {
		if l.Dir > 0 {
			lv.cutAfter[l.From[0]] = true
		} else {
			lv.cutAfter[l.From[0]-1] = true
		}
	}
	start := -1
	flush := func(end int) {
		if start >= 0 {
			r := rect.Rect(s.tmpIvals.alloc(1))
			r[0] = rect.Interval{Lo: start, Hi: end}
			lv.out = append(lv.out, r)
			start = -1
		}
	}
	for v := 0; v < n; v++ {
		if lv.dirty[v] {
			flush(v - 1)
			continue
		}
		if start < 0 {
			start = v
		}
		if lv.cutAfter[v] {
			flush(v)
		}
	}
	flush(n - 1)
	return lv.out
}

// appendCleanRuns appends the maximal runs of [0,n-1] minus the dirty values
// to dst.
func appendCleanRuns(dst []rect.Interval, n int, dirty map[int]bool) []rect.Interval {
	start := -1
	for v := 0; v < n; v++ {
		if dirty[v] {
			if start >= 0 {
				dst = append(dst, rect.Interval{Lo: start, Hi: v - 1})
				start = -1
			}
			continue
		}
		if start < 0 {
			start = v
		}
	}
	if start >= 0 {
		dst = append(dst, rect.Interval{Lo: start, Hi: n - 1})
	}
	return dst
}
