package wire

import (
	"bytes"
	"testing"
)

// FuzzWireFrame feeds arbitrary bytes to the frame decoder and, when a
// frame parses, re-encodes it and requires the bytes to round-trip
// exactly — the canonical-encoding property that makes the protocol safe
// to proxy and replay. The decoder must never panic or over-read.
func FuzzWireFrame(f *testing.F) {
	// Seed corpus: one well-formed frame of each type, plus near-misses.
	req, _ := AppendRouteReq(nil, []int{0, 0}, []int{7, 7})
	f.Add(req)
	req3, _ := AppendRouteReq(nil, []int{1, 2, 3}, []int{4, 5, 6})
	f.Add(req3)
	resp, _ := AppendRouteResp(nil, &Answer{Code: CodeFound, Hops: 14, Turns: 1, NVias: 1, Gen: 9, Via: []int{3, 4}}, 2)
	f.Add(resp)
	respNo, _ := AppendRouteResp(nil, &Answer{Code: CodeNoRoute, Via: []int{}}, 2)
	f.Add(respNo)
	f.Add(AppendError(nil, "no fault-free route"))
	f.Add([]byte{Magic, Version, TRouteReq, 0, 0, 0, 0, 0})
	f.Add([]byte{Magic, Version, 99, 0, 1, 0, 0, 0, 7})
	f.Add(append(req, resp...)) // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for frames := 0; frames < 16; frames++ {
			typ, payload, next, err := DecodeFrame(rest)
			if err != nil {
				return
			}
			if len(next) >= len(rest) {
				t.Fatal("decoder did not consume input")
			}
			switch typ {
			case TRouteReq:
				src, dst, err := ParseRouteReq(payload, nil, nil)
				if err != nil {
					break
				}
				re, err := AppendRouteReq(nil, src, dst)
				if err != nil {
					t.Fatalf("re-encode of parsed request failed: %v", err)
				}
				if !bytes.Equal(re, rest[:len(rest)-len(next)]) {
					t.Fatalf("request did not round-trip:\n in  %x\n out %x", rest[:len(rest)-len(next)], re)
				}
			case TRouteResp:
				var ans Answer
				if err := ParseRouteResp(payload, &ans); err != nil {
					break
				}
				d := 0
				if len(payload) >= 2 {
					d = int(payload[1])
				}
				re, err := AppendRouteResp(nil, &ans, d)
				if err != nil {
					t.Fatalf("re-encode of parsed response failed: %v", err)
				}
				if !bytes.Equal(re, rest[:len(rest)-len(next)]) {
					t.Fatalf("response did not round-trip:\n in  %x\n out %x", rest[:len(rest)-len(next)], re)
				}
			}
			rest = next
		}
	})
}
