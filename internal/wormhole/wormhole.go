// Package wormhole is a flit-level, cycle-based simulator of wormhole
// routing on faulty meshes — the machine model the lamb method of Ho &
// Stockmeyer (IPDPS 2002) is designed for.
//
// Messages are divided into flits that follow the head flit in a pipeline;
// when the head blocks, the worm stalls in place across several routers
// (Dally & Seitz [8]). Each directed physical link carries one flit per
// cycle and multiplexes a configurable number of virtual channels, each
// with its own small FIFO buffer. Routes are k-round dimension-ordered:
// round t's hops use virtual channel t, which is exactly the discipline
// that makes k-round routing deadlock-free. Running the same traffic with
// fewer virtual channels than rounds demonstrates the deadlocks the scheme
// exists to prevent; the simulator detects them with a stall watchdog.
package wormhole

import (
	"fmt"

	"lambmesh/internal/mesh"
)

// Config sets the router microarchitecture.
type Config struct {
	// VirtualChannels per directed physical link. The paper's Blue Gene
	// constraint is 2 (requirement iii of Section 1).
	VirtualChannels int
	// BufferDepth is the per-VC FIFO capacity in flits.
	BufferDepth int
	// StallCycles without any flit movement before declaring deadlock.
	StallCycles int
	// MaxCycles hard-stops the simulation.
	MaxCycles int
}

// DefaultConfig: 2 VCs, 2-flit buffers, generous watchdog.
func DefaultConfig() Config {
	return Config{VirtualChannels: 2, BufferDepth: 2, StallCycles: 1000, MaxCycles: 1_000_000}
}

// Hop is one link traversal on a message route, with the virtual channel it
// uses (the round number, clamped to the available VCs).
type Hop struct {
	Link mesh.Link
	VC   int
}

// Message is a wormhole packet.
type Message struct {
	ID       int
	Src, Dst mesh.Coord
	Length   int // flits
	InjectAt int // earliest injection cycle
	Hops     []Hop

	// Results, valid after Run.
	Delivered   bool
	DoneCycle   int
	StartCycle  int // cycle the head flit entered the network
	PathTurns   int
	PathHops    int
	remaining   int   // flits still at the source
	ejected     int   // flits consumed at the destination
	buf         []int // flits currently in each hop's buffer
	headHop     int   // furthest hop the head has entered; -1 before injection
	injectedAny bool
	lost        bool // endpoint died mid-run; packet will never deliver

	// hopChan/hopVC are the dense channel and VC ids of each hop,
	// precomputed once in NewNetwork so the per-cycle loops index flat
	// arrays instead of hashing coordinates.
	hopChan []int
	hopVC   []int
}

// Latency returns delivery latency in cycles (delivery - earliest inject).
func (m *Message) Latency() int { return m.DoneCycle - m.InjectAt }

// vcKey identifies one virtual channel of one directed physical link; the
// dependency-graph tooling (deadlock.go) and route validation key on it.
type vcKey struct {
	from int64
	dim  int
	dir  int
	vc   int
}

// Network simulates a set of messages over a faulty mesh.
//
// Channel state is dense: a directed physical channel has the topology's
// ChannelID ((nodeIndex*d + dim)*2 + dirBit on meshes and tori; delta-block
// layout on full meshes) and a virtual channel id chan*VCs + vc, so
// the per-cycle hot loops index flat arrays with ids precomputed per hop —
// no map hashing, no per-cycle clearing (channel occupancy uses a cycle
// stamp). Memory is O(N d VCs), fine for the mesh sizes a flit-level
// simulation can cover anyway.
type Network struct {
	cfg    Config
	m      *mesh.Mesh
	topo   mesh.Topology
	faults *mesh.FaultSet
	msgs   []*Message

	vcOwner   []int // per VC id: owning message ID, or -1
	vcFlits   []int // per VC id: buffered flits
	chanStamp []int // per channel id: last stamp the channel carried a flit
	stamp     int   // current cycle's stamp (starts at 1)
	busy      []int // per channel id: cycles it carried a flit
	vcBusy    []int // per VC id: cycles it carried a flit

	// bindSeen/bindStamp back route validation in bindMessage: a (link,VC)
	// pair is marked with the current bind stamp so reuse within one message
	// is caught without clearing the array between messages.
	bindSeen  []int
	bindStamp int

	// ejectedTotal counts every flit ever consumed at a destination. Unlike
	// per-message ejected counters it is monotone — retransmissions reset a
	// message's counter but not this one — so the live engine's throughput
	// windows stay truthful across mid-run reconfigurations.
	ejectedTotal int

	// Result summary, valid after Run.
	Cycles     int
	Deadlocked bool
	MovesTotal int
}

// NewNetwork creates a simulator over the faulty mesh for the given
// messages. Message routes must already avoid faults (build them with
// RouteMessage); the constructor rejects routes through faults and routes
// that reuse a (link, VC) pair, which would self-deadlock in hardware.
func NewNetwork(f *mesh.FaultSet, cfg Config, msgs []*Message) (*Network, error) {
	if cfg.VirtualChannels < 1 || cfg.BufferDepth < 1 {
		return nil, fmt.Errorf("wormhole: need at least 1 VC and 1-flit buffers")
	}
	if cfg.StallCycles < 1 {
		cfg.StallCycles = 1000
	}
	if cfg.MaxCycles < 1 {
		cfg.MaxCycles = 1_000_000
	}
	numChans := f.Topology().NumChannels()
	n := &Network{
		cfg:       cfg,
		m:         f.Mesh(),
		topo:      f.Topology(),
		faults:    f,
		msgs:      msgs,
		vcOwner:   make([]int, numChans*cfg.VirtualChannels),
		vcFlits:   make([]int, numChans*cfg.VirtualChannels),
		chanStamp: make([]int, numChans),
		busy:      make([]int, numChans),
		vcBusy:    make([]int, numChans*cfg.VirtualChannels),
	}
	for i := range n.vcOwner {
		n.vcOwner[i] = -1
	}
	n.bindSeen = make([]int, numChans*cfg.VirtualChannels)
	for _, msg := range msgs {
		if err := n.bindMessage(msg); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// bindMessage validates msg's route against the current fault set and
// (re)builds its dense per-hop channel ids and runtime state. NewNetwork
// calls it once per message; the live engine calls it again when a rerouted
// worm re-enters the network with fresh hops after a reconfiguration.
func (n *Network) bindMessage(msg *Message) error {
	if msg.Length < 1 {
		return fmt.Errorf("wormhole: message %d has no flits", msg.ID)
	}
	n.bindStamp++
	if cap(msg.hopChan) >= len(msg.Hops) {
		msg.hopChan = msg.hopChan[:len(msg.Hops)]
		msg.hopVC = msg.hopVC[:len(msg.Hops)]
	} else {
		msg.hopChan = make([]int, len(msg.Hops))
		msg.hopVC = make([]int, len(msg.Hops))
	}
	for hi, h := range msg.Hops {
		if h.VC < 0 || h.VC >= n.cfg.VirtualChannels {
			return fmt.Errorf("wormhole: message %d uses VC %d of %d", msg.ID, h.VC, n.cfg.VirtualChannels)
		}
		if !n.faults.Usable(h.Link) {
			return fmt.Errorf("wormhole: message %d routed over unusable link %v", msg.ID, h.Link)
		}
		c := n.chanID(h.Link)
		v := c*n.cfg.VirtualChannels + h.VC
		if n.bindSeen[v] == n.bindStamp {
			return fmt.Errorf("wormhole: message %d reuses link %v on VC %d (self-deadlock)", msg.ID, h.Link, h.VC)
		}
		n.bindSeen[v] = n.bindStamp
		msg.hopChan[hi] = c
		msg.hopVC[hi] = v
	}
	msg.remaining = msg.Length
	msg.ejected = 0
	msg.headHop = -1
	msg.injectedAny = false
	if cap(msg.buf) >= len(msg.Hops) {
		msg.buf = msg.buf[:len(msg.Hops)]
		clear(msg.buf)
	} else {
		msg.buf = make([]int, len(msg.Hops))
	}
	return nil
}

// removeWorm pulls every in-flight flit of m out of the network and frees
// the virtual channels it owns, returning the number of flits dropped. The
// live engine calls this when a new fault kills a worm mid-flight; the
// message's source-side state is untouched so the caller decides between
// retransmission and loss.
func (n *Network) removeWorm(m *Message) int {
	dropped := 0
	for i := range m.Hops {
		if m.buf[i] > 0 {
			n.vcFlits[m.hopVC[i]] -= m.buf[i]
			dropped += m.buf[i]
			m.buf[i] = 0
		}
		if v := m.hopVC[i]; n.vcOwner[v] == m.ID {
			n.vcOwner[v] = -1
		}
	}
	m.headHop = -1
	return dropped
}

// chanID returns the dense id of a directed physical channel (the
// topology's ChannelID; on meshes this is (Index(From)*d + Dim)*2 + dirBit,
// unchanged from the pre-Topology layout).
func (n *Network) chanID(l mesh.Link) int {
	return n.topo.ChannelID(l)
}

// Reset rewinds the network and every message to the pre-Run state, so the
// same workload can run again (the benchmarks measure steady-state cost this
// way). Route-shape fields (PathHops, PathTurns) are properties of the
// routes and survive.
func (n *Network) Reset() {
	for i := range n.vcOwner {
		n.vcOwner[i] = -1
	}
	clear(n.vcFlits)
	clear(n.chanStamp)
	clear(n.busy)
	clear(n.vcBusy)
	n.stamp = 0
	n.ejectedTotal = 0
	n.Cycles, n.Deadlocked, n.MovesTotal = 0, false, 0
	for _, m := range n.msgs {
		m.Delivered = false
		m.DoneCycle = 0
		m.StartCycle = 0
		m.remaining = m.Length
		m.ejected = 0
		clear(m.buf)
		m.headHop = -1
		m.injectedAny = false
		m.lost = false
	}
}

// LinkUtilization returns the mean and maximum fraction of cycles that the
// physical channels touched by the workload spent carrying flits — the
// congestion signal behind the Section 2.1 intermediate-choice heuristic.
func (n *Network) LinkUtilization() (mean, max float64) {
	if n.Cycles == 0 {
		return 0, 0
	}
	var sum float64
	touched := 0
	for _, b := range n.busy {
		if b == 0 {
			continue
		}
		touched++
		u := float64(b) / float64(n.Cycles)
		sum += u
		if u > max {
			max = u
		}
	}
	if touched == 0 {
		return 0, 0
	}
	return sum / float64(touched), max
}

// VCUtilizationInto fills meanPerVC[v] (and maxPerVC[v]) with the mean
// (max) fraction of the last `cycles` cycles that virtual channel v of the
// physical channels touched by the workload spent carrying flits. Both
// slices must have length cfg.VirtualChannels; the caller owns them, so the
// traffic engine's measurement loop stays allocation-free. Channels a VC
// never touched are excluded from its mean, mirroring LinkUtilization.
func (n *Network) VCUtilizationInto(cycles int, meanPerVC, maxPerVC []float64) {
	for v := 0; v < n.cfg.VirtualChannels; v++ {
		meanPerVC[v], maxPerVC[v] = 0, 0
	}
	if cycles <= 0 {
		return
	}
	vcs := n.cfg.VirtualChannels
	for v := 0; v < vcs; v++ {
		sum, touched := 0.0, 0
		for id := v; id < len(n.vcBusy); id += vcs {
			b := n.vcBusy[id]
			if b == 0 {
				continue
			}
			touched++
			u := float64(b) / float64(cycles)
			sum += u
			if u > maxPerVC[v] {
				maxPerVC[v] = u
			}
		}
		if touched > 0 {
			meanPerVC[v] = sum / float64(touched)
		}
	}
}

// Run simulates until every message is delivered, a deadlock is detected,
// or MaxCycles elapse. It returns an error only for malformed setups;
// deadlock is reported via the Deadlocked field (it is an expected outcome
// of under-provisioned configurations).
func (n *Network) Run() error {
	active := len(n.msgs)
	for _, m := range n.msgs {
		if len(m.Hops) == 0 {
			// Degenerate self-delivery: no network involvement.
			m.Delivered = true
			m.DoneCycle = m.InjectAt
			m.StartCycle = m.InjectAt
			active--
		}
	}
	stall := 0
	for cycle := 0; active > 0 && cycle < n.cfg.MaxCycles; cycle++ {
		moves := n.step(cycle)
		n.MovesTotal += moves
		n.Cycles = cycle + 1
		if moves == 0 && n.anyRunnable(cycle) {
			stall++
			if stall >= n.cfg.StallCycles {
				n.Deadlocked = true
				return nil
			}
		} else {
			stall = 0
		}
		for _, m := range n.msgs {
			if !m.Delivered && m.ejected == m.Length {
				m.Delivered = true
				m.DoneCycle = cycle
				active--
			}
		}
	}
	return nil
}

// anyRunnable reports whether some undelivered message has been released
// (so a zero-move cycle indicates contention, not an empty future).
func (n *Network) anyRunnable(cycle int) bool {
	for _, m := range n.msgs {
		if !m.Delivered && len(m.Hops) > 0 && m.InjectAt <= cycle && m.ejected < m.Length {
			return true
		}
	}
	return false
}

// step advances one cycle and returns the number of flit movements.
// Messages are served in an order rotated by cycle for long-run fairness;
// within a message, flits advance head-first so a pipeline compresses and
// refills like hardware.
func (n *Network) step(cycle int) int {
	n.stamp++ // invalidates every channel-occupancy mark from the last cycle
	moves := 0
	count := len(n.msgs)
	for off := 0; off < count; off++ {
		m := n.msgs[(off+cycle)%count]
		if m.Delivered || len(m.Hops) == 0 || m.InjectAt > cycle {
			continue
		}
		moves += n.stepMessage(m, cycle)
	}
	return moves
}

func (n *Network) stepMessage(m *Message, cycle int) int {
	moves := 0
	last := len(m.Hops) - 1

	// Ejection: the destination consumes one flit per cycle.
	if m.buf[last] > 0 {
		m.buf[last]--
		n.vcFlits[m.hopVC[last]]--
		m.ejected++
		n.ejectedTotal++
		moves++
		n.maybeRelease(m, last)
	}

	// Advance in-network flits head-first.
	for i := minInt(m.headHop, last-1); i >= 0; i-- {
		if m.buf[i] == 0 {
			continue
		}
		nv := m.hopVC[i+1]
		owner := n.vcOwner[nv]
		isHead := i == m.headHop
		if isHead {
			if owner != -1 && owner != m.ID {
				continue
			}
		} else if owner != m.ID {
			continue
		}
		nc := m.hopChan[i+1]
		if n.vcFlits[nv] >= n.cfg.BufferDepth || n.chanStamp[nc] == n.stamp {
			continue
		}
		n.vcOwner[nv] = m.ID
		n.vcFlits[nv]++
		m.buf[i+1]++
		m.buf[i]--
		n.vcFlits[m.hopVC[i]]--
		n.chanStamp[nc] = n.stamp
		n.busy[nc]++
		n.vcBusy[nv]++
		if isHead {
			m.headHop = i + 1
		}
		moves++
		n.maybeRelease(m, i)
	}

	// Injection of the next flit from the source into hop 0.
	if m.remaining > 0 {
		v0, c0 := m.hopVC[0], m.hopChan[0]
		owner := n.vcOwner[v0]
		ok := owner == m.ID || (owner == -1 && !m.injectedAny)
		if ok && n.vcFlits[v0] < n.cfg.BufferDepth && n.chanStamp[c0] != n.stamp {
			n.vcOwner[v0] = m.ID
			n.vcFlits[v0]++
			m.buf[0]++
			m.remaining--
			n.chanStamp[c0] = n.stamp
			n.busy[c0]++
			n.vcBusy[v0]++
			if !m.injectedAny {
				m.injectedAny = true
				m.headHop = 0
				m.StartCycle = cycle
			}
			moves++
		}
	}
	return moves
}

// maybeRelease frees the VC at hop i once the tail has passed it: the
// buffer is empty and no more of the message's flits can arrive there.
func (n *Network) maybeRelease(m *Message, i int) {
	if m.buf[i] != 0 {
		return
	}
	if m.remaining > 0 {
		return
	}
	for j := 0; j < i; j++ {
		if m.buf[j] > 0 {
			return
		}
	}
	v := m.hopVC[i]
	if n.vcOwner[v] == m.ID && n.vcFlits[v] == 0 {
		n.vcOwner[v] = -1
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
