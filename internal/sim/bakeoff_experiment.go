package sim

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func init() {
	extraRegistry = append(extraRegistry,
		Experiment{ID: "bakeoff", Title: "baseline bake-off: lamb routing vs Boppana-Chalasani fault rings vs negative-first adaptive, same faults, same traffic", Weight: 10, Run: runBakeoff},
	)
}

// bakeoffRates are the two static load points: one in the linear regime and
// one near the faulty meshes' saturation knee, so the accepted columns read
// as a two-point saturation curve per strategy.
var bakeoffRates = []float64{0.01, 0.04}

// runBakeoff runs the three routing strategies over identical fault draws
// (node-only, link-only, and mixed) on M_2(16) and M_3(8), all with the
// same 2-VC, 8-flit configuration. Static sweeps give the accepted
// throughput and p99 latency at the two load points; a live run with a
// 2-node mid-window fault event gives the recovery latency and lost-packet
// count. The cost columns (VC requirement, nodes the scheme gives up) come
// from the strategy itself. The fault-ring scheme is 2D-only, so its 3D
// rows say so explicitly instead of silently disappearing.
func runBakeoff(cfg Config) *Table {
	trials := scaledTrials(cfg, 10)
	const warmup, measure = 150, 300
	t := &Table{ID: "bakeoff",
		Title: fmt.Sprintf("lamb vs fault rings vs adaptive: 8 faults, uniform 8-flit packets on 2 VCs, 2-node event at cycle %d (%d trials/point)",
			warmup+measure/2, trials),
		Paper: "Section 1: the lamb method sacrifices a few nodes to keep deterministic e-cube routing; the bake-off prices that against rectangular fault rings and a turn-model adaptive router",
		Columns: []string{"mesh", "fault model", "strategy", "vc cost", "gives up",
			fmt.Sprintf("accepted@%g", bakeoffRates[0]), fmt.Sprintf("accepted@%g", bakeoffRates[1]),
			fmt.Sprintf("p99@%g", bakeoffRates[0]), fmt.Sprintf("sat@%g", bakeoffRates[1]),
			"recovery (cyc)", "lost"},
	}
	for _, widths := range [][]int{{16, 16}, {8, 8, 8}} {
		m := mesh.MustNew(widths...)
		orders := routing.UniformAscending(m.Dims(), 2)
		for _, model := range []string{"node", "link", "mixed"} {
			fs := bakeoffFaults(m, model, cfg.Seed)
			event := bakeoffEvent(m, fs, cfg.Seed)
			for si, name := range wormhole.StrategyNames() {
				if name == "direct" {
					continue // full-mesh only; see the topo-compare experiment
				}
				if name == "ring" && m.Dims() != 2 {
					t.AddRow(fmt.Sprint(m), model, name, "n/a (2D only)", "-",
						"-", "-", "-", "-", "-", "-")
					continue
				}
				builder, err := wormhole.NewStrategyBuilder(name, orders)
				if err != nil {
					panic(err)
				}
				strat, err := builder(fs)
				if err != nil {
					panic(err)
				}
				spec := wormhole.SweepSpec{
					Rates:          bakeoffRates,
					Trials:         trials,
					Pattern:        wormhole.PatternUniform,
					PacketFlits:    8,
					Warmup:         warmup,
					Measure:        measure,
					Net:            wormhole.DefaultConfig(),
					Seed:           cfg.Seed,
					Workers:        cfg.Workers,
					Strategy:       builder,
					StrategyStream: si,
				}
				pts, err := wormhole.RunSweep(fs, orders, nil, spec)
				if err != nil {
					panic(err)
				}
				liveSpec := spec
				liveSpec.Rates = bakeoffRates[:1]
				liveSpec.Schedule = wormhole.FaultSchedule{Events: []wormhole.FaultEvent{
					{Cycle: warmup + measure/2, Nodes: event},
				}}
				lpts, err := wormhole.RunSweep(fs, orders, nil, liveSpec)
				if err != nil {
					panic(err)
				}
				t.AddRow(fmt.Sprint(m), model, name,
					fmt.Sprint(strat.MinVCs()), fmt.Sprint(len(strat.Sacrificed())),
					fmt.Sprintf("%.4f", pts[0].AcceptedFlitRate),
					fmt.Sprintf("%.4f", pts[1].AcceptedFlitRate),
					F(pts[0].P99Latency), fmt.Sprint(pts[1].Saturated),
					F(lpts[0].MeanRecoveryLatency), fmt.Sprint(lpts[0].LostPackets))
			}
		}
	}
	return t
}

// bakeoffFaults draws the fault configuration for one (mesh, model) row
// group: 8 node faults, 8 link faults, or 4 of each, as a pure function of
// the config seed so every strategy faces the identical configuration.
func bakeoffFaults(m *mesh.Mesh, model string, seed int64) *mesh.FaultSet {
	switch model {
	case "node":
		return mesh.RandomNodeFaults(m, 8, rand.New(rand.NewSource(seed+1009)))
	case "link":
		fs := mesh.NewFaultSet(m)
		mesh.RandomLinkFaults(fs, 8, rand.New(rand.NewSource(seed+2017)))
		return fs
	default: // mixed
		rng := rand.New(rand.NewSource(seed + 3023))
		fs := mesh.RandomNodeFaults(m, 4, rng)
		mesh.RandomLinkFaults(fs, 4, rng)
		return fs
	}
}

// bakeoffEvent draws the 2 fresh node faults the live run injects
// mid-window, avoiding nodes already faulty in fs.
func bakeoffEvent(m *mesh.Mesh, fs *mesh.FaultSet, seed int64) []mesh.Coord {
	rng := rand.New(rand.NewSource(seed + 7919))
	var nodes []mesh.Coord
	for len(nodes) < 2 {
		c := m.CoordOf(rng.Int63n(m.Nodes()))
		dup := fs.NodeFaulty(c)
		for _, p := range nodes {
			dup = dup || p.Equal(c)
		}
		if !dup {
			nodes = append(nodes, c)
		}
	}
	return nodes
}
