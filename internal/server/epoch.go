// Package server is the route control plane: a long-running service that
// owns a live Reconfigurer (the roll-back/reconfigure loop of Section 1)
// and answers route queries under load while fault reports stream in.
//
// The concurrency model is epoch swapping. An Epoch is an immutable bundle
// {fault set, reachability oracle, lamb set, generation} published behind
// an atomic pointer. Route queries load the current epoch lock-free and
// compute against it; a fault report only enqueues work for a single
// background worker, which recomputes the lamb set (coalescing reports
// that arrive while it runs) and atomically publishes a fresh epoch.
// In-flight and new queries keep serving the previous epoch during the
// recompute — graceful degradation — and every answer carries the
// generation it was computed from, so clients can detect staleness.
package server

import (
	"fmt"
	"time"

	"lambmesh/internal/classtable"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// Epoch is one immutable routing configuration. Everything reachable from
// an Epoch is frozen at publish time: the fault set is a private clone,
// the oracle indexes that clone, and the lamb set is never mutated. The
// per-epoch route cache is the only mutable member, and it is internally
// synchronized; it dies with the epoch, so a swap invalidates it wholesale.
type Epoch struct {
	Faults     *mesh.FaultSet // private snapshot; never mutated after publish
	Oracle     *routing.Oracle
	Lambs      []mesh.Coord
	Generation uint64
	Created    time.Time

	// Table is the class-based O(1) data plane for this epoch's fault set,
	// or nil when the server runs in "cache" mode (or the configuration is
	// outside classtable's supported envelope). When non-nil it is the
	// route source and the cache stays empty.
	Table *classtable.Table

	lambIdx map[int64]struct{}
	cache   *routeCache
}

// newEpoch freezes a configuration: it clones the fault set (the caller's
// copy keeps evolving inside the Reconfigurer), indexes it, and attaches a
// fresh empty route cache. With useTable, the class table is built from the
// snapshot — that cost is paid here, at publish time, so the query path
// never sees a cold table. prev (may be nil) is the outgoing epoch's table:
// its filled via slots are carried over for every class pair the fault
// delta left untouched, so the post-swap query burst finds a warm table.
func newEpoch(f *mesh.FaultSet, lambs []mesh.Coord, gen uint64, now time.Time, orders routing.MultiOrder, workers int, useTable bool, prev *classtable.Table) *Epoch {
	snap := f.Clone()
	e := &Epoch{
		Faults:     snap,
		Oracle:     routing.NewOracle(snap),
		Lambs:      append([]mesh.Coord(nil), lambs...),
		Generation: gen,
		Created:    now,
		lambIdx:    make(map[int64]struct{}, len(lambs)),
		cache:      newRouteCache(),
	}
	if useTable {
		// Support was checked at server construction; an error here would
		// mean a malformed partition, and falling back to the per-pair
		// cache path keeps the epoch serving.
		if tab, err := classtable.NewFrom(snap, orders, workers, prev); err == nil {
			e.Table = tab
		}
	}
	for _, c := range lambs {
		e.lambIdx[snap.Mesh().Index(c)] = struct{}{}
	}
	return e
}

// IsLamb reports whether node c is sacrificed in this epoch.
func (e *Epoch) IsLamb(c mesh.Coord) bool {
	_, ok := e.lambIdx[e.Faults.Mesh().Index(c)]
	return ok
}

// Age returns how long this epoch has been the live configuration.
func (e *Epoch) Age(now time.Time) time.Duration { return now.Sub(e.Created) }

// endpointErr classifies why a node cannot be a route endpoint, or returns
// "" if it can. Lambs forward traffic but never send or receive
// (Definition 2.6), so they are valid intermediates yet invalid endpoints.
func (e *Epoch) endpointErr(role string, c mesh.Coord) string {
	switch {
	case !e.Faults.Mesh().Contains(c):
		return fmt.Sprintf("%s %v outside mesh %v", role, c, e.Faults.Mesh())
	case e.Faults.NodeFaulty(c):
		return fmt.Sprintf("%s %v is faulty", role, c)
	case e.IsLamb(c):
		return fmt.Sprintf("%s %v is a lamb (forwards only)", role, c)
	}
	return ""
}

// route answers a query against this frozen configuration. The first
// return is the route when found; reason explains a found=false answer.
// Route selection is deterministic (no rng), which is what makes the
// per-epoch cache sound.
func (e *Epoch) route(orders routing.MultiOrder, src, dst mesh.Coord) (r *routing.Route, reason string) {
	if msg := e.endpointErr("src", src); msg != "" {
		return nil, msg
	}
	if msg := e.endpointErr("dst", dst); msg != "" {
		return nil, msg
	}
	r, ok := routing.ChooseRouteK(e.Oracle, orders, src, dst, nil)
	if !ok {
		return nil, fmt.Sprintf("no fault-free %d-round route from %v to %v", orders.Rounds(), src, dst)
	}
	return r, ""
}

// tableRoute answers a query from the class table. Answers — including the
// reason strings — are byte-identical to route; only the cost differs
// (O(d log f) classify + O(cells) via selection versus an O(N) scan).
func (e *Epoch) tableRoute(orders routing.MultiOrder, src, dst mesh.Coord, q *classtable.Scratch) (r *routing.Route, reason string) {
	if msg := e.endpointErr("src", src); msg != "" {
		return nil, msg
	}
	if msg := e.endpointErr("dst", dst); msg != "" {
		return nil, msg
	}
	r, code := e.Table.RouteOf(src, dst, q)
	if code != classtable.CodeFound {
		return nil, fmt.Sprintf("no fault-free %d-round route from %v to %v", orders.Rounds(), src, dst)
	}
	return r, ""
}
