package bitmat

import (
	"math/rand"
	"runtime"
	"testing"
)

// benchPair builds two conformant n x n operands at the given density.
func benchPair(n int, density float64, seed int64) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(seed))
	return randomMatrix(n, n, density, rng), randomMatrix(n, n, density, rng)
}

func BenchmarkMulSerial(b *testing.B) {
	a, c := benchPair(1500, 0.2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Mul(c)
	}
}

func BenchmarkMulParallel(b *testing.B) {
	a, c := benchPair(1500, 0.2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulParallel(c, runtime.NumCPU())
	}
}

// The chain benchmarks show the double-buffered scratch pair: allocations
// stay flat as the chain grows, where the naive per-step New did not.
func BenchmarkMulChain3(b *testing.B) {
	a, c := benchPair(800, 0.2, 2)
	d, _ := benchPair(800, 0.2, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulChain(a, c, d)
	}
}

func BenchmarkMulChain7(b *testing.B) {
	a, c := benchPair(800, 0.2, 2)
	d, e := benchPair(800, 0.2, 3)
	f, g := benchPair(800, 0.2, 4)
	h, _ := benchPair(800, 0.2, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulChain(a, c, d, e, f, g, h)
	}
}
