// Package partition implements Find-SES-Partition and Find-DES-Partition
// (Section 6.1 of Ho & Stockmeyer, IPDPS 2002).
//
// Fix a mesh M, a fault set F and a 1-round ordering pi. A source
// equivalent set (SES) is a set S of good nodes such that every two members
// can pi-reach exactly the same destinations; a destination equivalent set
// (DES) is the mirror notion for sources (Definition 4.1). The algorithm
// partitions the good nodes into at most (2d-1)f+1 rectangular SESs (resp.
// DESs) in time O(d^2 f log f) — independent of the mesh size N. This is
// what lets the lamb algorithm scale to meshes with tens of thousands of
// nodes while touching only O(df) objects.
//
// Shapes: SESs come out as (*,...,*,[l,r],c,...,c) and DESs as
// (c,...,c,[l,r],*,...,*) — after undoing the coordinate permutation that
// reduces a general ordering pi to the ascending order.
package partition

import (
	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// Kind distinguishes SES from DES partitions.
type Kind int

const (
	// Source marks an SES partition.
	Source Kind = iota
	// Destination marks a DES partition.
	Destination
)

func (k Kind) String() string {
	if k == Source {
		return "SES"
	}
	return "DES"
}

// Set is one SES or DES: a rectangular set of good nodes plus a
// representative member (Lemma 4.1: reachability of/from any one member
// decides it for all members).
type Set struct {
	Rect rect.Rect
	Rep  mesh.Coord
}

// Size returns the number of nodes in the set.
func (s Set) Size() int64 { return s.Rect.Size() }

// Partition is an SES or DES partition of the good nodes of a faulty mesh.
type Partition struct {
	Kind  Kind
	Order routing.Order
	Sets  []Set
}

// Len returns the number of sets in the partition.
func (p *Partition) Len() int { return len(p.Sets) }

// SES returns an SES partition for fault set f and 1-round ordering pi,
// of size at most B(d,f) <= (2d-1)f+1 (Theorem 6.4). Only meshes are
// supported; for tori use the generic-topology path in package core.
func SES(f *mesh.FaultSet, pi routing.Order) (*Partition, error) {
	return new(Scratch).find(f, pi, Source)
}

// DES returns a DES partition for fault set f and 1-round ordering pi, with
// the same size bound as SES. It exploits the duality of Section 6.1: a set
// is a DES for pi iff it is an SES for the reversed ordering — on the fault
// set with every faulty link's direction reversed, so that one-directional
// link faults are handled exactly.
func DES(f *mesh.FaultSet, pi routing.Order) (*Partition, error) {
	return new(Scratch).find(f, pi, Destination)
}
