package sim

import (
	"math/rand"
	"sync"
	"time"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/routing"
)

// Config controls how experiments run.
type Config struct {
	// Trials per data point. The paper uses 1000 (10000 for the rare-lamb
	// check of Section 3); smaller counts reproduce the same shapes much
	// faster.
	Trials int
	// Seed makes every run reproducible; trial t draws from a generator
	// seeded with par.TrialSeed(Seed, 0, t) (the repo-wide contract,
	// DESIGN.md §12).
	Seed int64
	// Workers bounds trial parallelism; <= 0 means NumCPU.
	Workers int
}

// DefaultConfig runs 100 trials on all CPUs with a fixed seed.
func DefaultConfig() Config { return Config{Trials: 100, Seed: 1, Workers: 0} }

func (c Config) workers() int { return par.Clamp(c.Workers) }

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return 100
}

// ForEachTrial runs fn(trial, rng) for trial = 0..trials-1 on a worker
// pool. Each trial gets its own deterministic RNG, so results do not depend
// on scheduling.
func ForEachTrial(cfg Config, trials int, fn func(trial int, rng *rand.Rand)) {
	ForEachTrialSolver(cfg, trials, func(t int, rng *rand.Rand, _ *core.Solver) {
		fn(t, rng)
	})
}

// ForEachTrialSolver is ForEachTrial handing each worker goroutine one
// long-lived core.Solver, so per-trial lamb computations amortize their
// scratch across the whole run instead of allocating per trial. A Solver is
// confined to its worker (it is not safe for concurrent use); trial results
// stay independent of scheduling because the Solver only carries buffers,
// never results.
func ForEachTrialSolver(cfg Config, trials int, fn func(trial int, rng *rand.Rand, s *core.Solver)) {
	workers := cfg.workers()
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		s := core.NewSolver()
		for t := 0; t < trials; t++ {
			fn(t, rand.New(rand.NewSource(par.TrialSeed(cfg.Seed, 0, t))), s)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := core.NewSolver()
			for t := range next {
				fn(t, rand.New(rand.NewSource(par.TrialSeed(cfg.Seed, 0, t))), s)
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
}

// LambObservation is what one randomized trial of the lamb algorithm
// yields — the quantities Figures 17-26 aggregate.
type LambObservation struct {
	Lambs   int
	SES     int
	DES     int
	Seconds float64
}

// RunLambTrial draws `faults` random node faults on the mesh and runs Lamb1
// with k rounds of ascending (e-cube) ordering, timing just the algorithm
// (fault generation excluded, matching the paper's running-time figure).
// The trial itself is single-threaded (workers=1): ForEachTrial already
// saturates the machine with concurrent trials, so nesting per-trial
// parallelism would only add scheduling noise to the timings.
func RunLambTrial(m *mesh.Mesh, faults, k int, rng *rand.Rand) LambObservation {
	return RunLambTrialSolver(m, faults, k, rng, core.NewSolver())
}

// RunLambTrialSolver is RunLambTrial computing through the caller's Solver —
// the steady-state form the trial pools and benchmarks use, where the same
// Solver serves every trial a worker runs. The observation is identical to
// RunLambTrial's for the same rng stream.
func RunLambTrialSolver(m *mesh.Mesh, faults, k int, rng *rand.Rand, s *core.Solver) LambObservation {
	return RunLambTrialSolverWorkers(m, faults, k, 1, rng, s)
}

// RunLambTrialWorkers is RunLambTrial with an explicit worker-pool size for
// the Lamb1 reachability kernels (<= 0 means NumCPU). The benchmarks use it
// to measure the single-trial hot path at workers=1 vs workers=NumCPU.
func RunLambTrialWorkers(m *mesh.Mesh, faults, k, workers int, rng *rand.Rand) LambObservation {
	return RunLambTrialSolverWorkers(m, faults, k, workers, rng, core.NewSolver())
}

// RunLambTrialSolverWorkers is the fully explicit trial: caller's Solver,
// caller's worker-pool size. Every other Run* form delegates here.
func RunLambTrialSolverWorkers(m *mesh.Mesh, faults, k, workers int, rng *rand.Rand, s *core.Solver) LambObservation {
	fs := mesh.RandomNodeFaults(m, faults, rng)
	start := time.Now()
	res, err := s.Lamb1(fs, routing.UniformAscending(m.Dims(), k), core.WithWorkers(workers))
	if err != nil {
		panic(err) // experiment misconfiguration; inputs are validated upstream
	}
	return LambObservation{
		Lambs:   res.NumLambs(),
		SES:     res.Stats.NumSES,
		DES:     res.Stats.NumDES,
		Seconds: time.Since(start).Seconds(),
	}
}

// PointStats aggregates trial observations at one sweep point.
type PointStats struct {
	Faults  int
	Lambs   Agg
	SES     Agg
	Seconds Agg
}

// RunLambPoint runs cfg.Trials trials at a fixed fault count.
func RunLambPoint(cfg Config, m *mesh.Mesh, faults, k int) *PointStats {
	ps := &PointStats{Faults: faults}
	var mu sync.Mutex
	ForEachTrialSolver(cfg, cfg.trials(), func(_ int, rng *rand.Rand, s *core.Solver) {
		obs := RunLambTrialSolver(m, faults, k, rng, s)
		mu.Lock()
		ps.Lambs.Add(float64(obs.Lambs))
		ps.SES.Add(float64(obs.SES))
		ps.Seconds.Add(obs.Seconds)
		mu.Unlock()
	})
	return ps
}
