package sim

// extraExperiments returns experiments contributed by the baseline,
// wormhole, and hardness integrations (extra_*.go). Kept separate so the
// figure experiments above mirror the paper's Section 8 ordering.
func extraExperiments() []Experiment {
	return extraRegistry
}

// extraRegistry is appended to by init functions in sibling files.
var extraRegistry []Experiment
