package lambmesh

// One benchmark per paper table/figure, measuring the representative unit
// of work that the corresponding experiment aggregates (one randomized
// trial at the figure's heaviest data point), plus micro-benchmarks of the
// algorithmic stages. Full figure regeneration — trial sweeps and series —
// is `go run ./cmd/lambsim`; these benches track the per-trial costs that
// determine those running times.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"lambmesh/internal/analysis"
	"lambmesh/internal/bitmat"
	"lambmesh/internal/blockfault"
	"lambmesh/internal/campaign"
	"lambmesh/internal/classtable"
	"lambmesh/internal/core"
	"lambmesh/internal/hardness"
	"lambmesh/internal/mesh"
	"lambmesh/internal/partition"
	"lambmesh/internal/reach"
	"lambmesh/internal/routing"
	"lambmesh/internal/sim"
	"lambmesh/internal/vcover"
	"lambmesh/internal/wire"
	"lambmesh/internal/wormhole"
)

// benchWorkers returns the worker-pool size the benchmarks run the lamb
// pipeline at. scripts/bench.sh sets LAMBMESH_WORKERS to 1 and to NumCPU to
// record the serial-vs-parallel trajectory in BENCH_lamb.json; unset (or
// <= 0) means all CPUs, the library default.
func benchWorkers() int {
	if s := os.Getenv("LAMBMESH_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return 0
}

func paperFaults12() *mesh.FaultSet {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10))
	return f
}

// BenchmarkTable1Reachability: building R (and R^(2)) for the Section 5
// example — Tables 1 and 2, in the steady state of a reused reach.Scratch.
func BenchmarkTable1Reachability(b *testing.B) {
	f := paperFaults12()
	orders := routing.UniformAscending(2, 2)
	var rs reach.Scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := reach.ComputeScratch(f, orders, benchWorkers(), &rs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec5LambSet: the full Lamb1 pipeline on the worked example,
// through a long-lived Solver (the steady state the allocation budgets in
// scripts/benchcheck police).
func BenchmarkSec5LambSet(b *testing.B) {
	f := paperFaults12()
	orders := routing.UniformAscending(2, 2)
	s := core.NewSolver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lamb1(f, orders, core.WithWorkers(benchWorkers())); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLambTrial measures one randomized trial at a figure's data point,
// at the LAMBMESH_WORKERS pool size (default all CPUs).
func benchLambTrial(b *testing.B, widths []int, faults, k int) {
	b.Helper()
	m := mesh.MustNew(widths...)
	rng := rand.New(rand.NewSource(1))
	s := core.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunLambTrialSolverWorkers(m, faults, k, benchWorkers(), rng, s)
	}
}

// Figure 17: M_2(32) at 3% faults.
func BenchmarkFig17Trial(b *testing.B) { benchLambTrial(b, []int{32, 32}, 31, 2) }

// Figure 18 (and the Figure 26 timing curve for the same mesh): M_3(32) at
// 3% faults — the headline configuration.
func BenchmarkFig18Trial(b *testing.B) { benchLambTrial(b, []int{32, 32, 32}, 983, 2) }

// Figure 19 compares the additional damage of the two meshes above; its
// unit costs are BenchmarkFig17Trial and BenchmarkFig18Trial.
func BenchmarkFig19Trial2D(b *testing.B) { benchLambTrial(b, []int{32, 32}, 31, 2) }

// Figure 20 (and Figure 26's 2D curve): M_2(181) at 3% faults.
func BenchmarkFig20Trial(b *testing.B) { benchLambTrial(b, []int{181, 181}, 983, 2) }

// Figure 21's largest mesh at the largest fault ratio: M_2(128), 3x
// bisection width.
func BenchmarkFig21Trial(b *testing.B) { benchLambTrial(b, []int{128, 128}, 384, 2) }

// Figure 22's largest mesh at the largest ratio: M_3(25), 3x bisection.
func BenchmarkFig22Trial(b *testing.B) { benchLambTrial(b, []int{25, 25, 25}, 1875, 2) }

// Figure 23's largest point: M_2(181), 3% faults.
func BenchmarkFig23Trial(b *testing.B) { benchLambTrial(b, []int{181, 181}, 983, 2) }

// Figure 24's largest point: M_3(32), 3% faults.
func BenchmarkFig24Trial(b *testing.B) { benchLambTrial(b, []int{32, 32, 32}, 983, 2) }

// Figure 25 counts SESs: the partition stage alone at the 3% point.
func BenchmarkFig25Partition(b *testing.B) {
	m := mesh.MustNew(32, 32, 32)
	rng := rand.New(rand.NewSource(1))
	f := mesh.RandomNodeFaults(m, 983, rng)
	var ps partition.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Reset()
		if _, err := ps.SES(f, routing.Ascending(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 26 is the running-time figure itself; its 3D unit is
// BenchmarkFig18Trial and its 2D unit BenchmarkFig20Trial. This bench
// covers the smallest 3D point so the growth in f is visible in one run.
func BenchmarkFig26TrialSmallF(b *testing.B) { benchLambTrial(b, []int{32, 32, 32}, 164, 2) }

// Section 3, one round: the empirical lower bound plus a one-round Lamb1
// at n = f = 32.
func BenchmarkSec3OneTrial(b *testing.B) {
	m := mesh.MustNew(32, 32, 32)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := mesh.RandomNodeFaults(m, 32, rng)
		analysis.OneRoundEmpiricalLowerBound(f)
		if _, err := core.Lamb1(f, routing.UniformAscending(3, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// Section 3, two rounds: one trial of the 10000-trial rare-lamb check.
func BenchmarkSec3TwoTrial(b *testing.B) { benchLambTrial(b, []int{32, 32, 32}, 32, 2) }

// Figure 15: the adversarial family at m = 8 (a 33x33 mesh, 66 faults).
func BenchmarkFig15(b *testing.B) {
	fig, err := analysis.NewFigure15(8)
	if err != nil {
		b.Fatal(err)
	}
	orders := routing.UniformAscending(2, 2)
	s := core.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lamb1(fig.Faults, orders); err != nil {
			b.Fatal(err)
		}
	}
}

// Proposition 6.5: partitioning the adversarial fault set at d=3.
func BenchmarkProp65Partition(b *testing.B) {
	fs, err := analysis.Prop65FaultSet(3, 9, 40)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.SES(fs, routing.Ascending(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// Section 9: building the reduction and solving it with Lamb1.
func BenchmarkHardnessReduction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := hardness.Build([][]int{{1}, {0}}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Lamb1(c.Faults, routing.UniformAscending(3, 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: rounds and solver choice on a fixed instance.
func BenchmarkAblRoundsK1(b *testing.B) { benchLambTrial(b, []int{16, 16, 16}, 123, 1) }
func BenchmarkAblRoundsK2(b *testing.B) { benchLambTrial(b, []int{16, 16, 16}, 123, 2) }
func BenchmarkAblRoundsK3(b *testing.B) { benchLambTrial(b, []int{16, 16, 16}, 123, 3) }

func BenchmarkAblVcoverLamb2Exact(b *testing.B) {
	m := mesh.MustNew(12, 12)
	f := mesh.RandomNodeFaults(m, 8, rand.New(rand.NewSource(2)))
	orders := routing.UniformAscending(2, 2)
	s := core.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lamb2(f, orders, core.ExactWVC); err != nil {
			b.Fatal(err)
		}
	}
}

// Baseline: rectangularization plus 30 ring routes on M_2(32), 3% faults.
func BenchmarkBlockfaultBaseline(b *testing.B) {
	m := mesh.MustNew(32, 32)
	rng := rand.New(rand.NewSource(3))
	f := mesh.RandomNodeFaults(m, 31, rng)
	mod, err := blockfault.Build(f)
	if err != nil {
		b.Fatal(err)
	}
	var active []mesh.Coord
	m.ForEachNode(func(c mesh.Coord) {
		if !mod.Blocked(c) {
			active = append(active, c.Clone())
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pair := 0; pair < 30; pair++ {
			src := active[rng.Intn(len(active))]
			dst := active[rng.Intn(len(active))]
			_, _ = mod.RouteXY(src, dst)
		}
	}
}

// Wormhole: 120 messages of survivor traffic on a faulty 16x16 mesh with
// the 2-VC discipline, cycle-accurate to delivery.
func BenchmarkWormholeTraffic(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := mesh.MustNew(16, 16)
	f := mesh.RandomNodeFaults(m, 8, rng)
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		b.Fatal(err)
	}
	o := routing.NewOracle(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msgs, err := wormhole.GenerateTraffic(o, orders, res.Lambs, wormhole.TrafficSpec{
			Messages: 120, MinFlits: 4, MaxFlits: 16, InjectWindow: 60,
		}, 2, rng)
		if err != nil {
			b.Fatal(err)
		}
		n, err := wormhole.NewNetwork(f, wormhole.DefaultConfig(), msgs)
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Run(); err != nil {
			b.Fatal(err)
		}
		if n.Deadlocked {
			b.Fatal("unexpected deadlock")
		}
	}
}

// BenchmarkWormholeRun: the cycle-accurate simulation alone, with the
// network built once and rewound with Reset between iterations — the
// steady-state cost of the dense channel-state arrays (per-hop channel ids
// precomputed, stamp-based per-cycle occupancy).
func BenchmarkWormholeRun(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := mesh.MustNew(16, 16)
	f := mesh.RandomNodeFaults(m, 8, rng)
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		b.Fatal(err)
	}
	o := routing.NewOracle(f)
	msgs, err := wormhole.GenerateTraffic(o, orders, res.Lambs, wormhole.TrafficSpec{
		Messages: 120, MinFlits: 4, MaxFlits: 16, InjectWindow: 60,
	}, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	n, err := wormhole.NewNetwork(f, wormhole.DefaultConfig(), msgs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Reset()
		if err := n.Run(); err != nil {
			b.Fatal(err)
		}
		if n.Deadlocked {
			b.Fatal("unexpected deadlock")
		}
	}
}

// BenchmarkStrategyRoute: one routed message per op through each bake-off
// strategy on a faulty 16x16 mesh — the per-packet planning cost the
// bakeoff experiment pays (lamb oracle lookups, ring detour construction,
// adaptive two-layer BFS).
func BenchmarkStrategyRoute(b *testing.B) {
	m := mesh.MustNew(16, 16)
	f := mesh.RandomNodeFaults(m, 8, rand.New(rand.NewSource(4)))
	orders := routing.UniformAscending(2, 2)
	for _, name := range wormhole.StrategyNames() {
		b.Run(name, func(b *testing.B) {
			builder, err := wormhole.NewStrategyBuilder(name, orders)
			if err != nil {
				b.Fatal(err)
			}
			s, err := builder(f)
			if err != nil {
				b.Fatal(err)
			}
			survivors := wormhole.Survivors(s.Faults(), s.Sacrificed())
			rng := rand.New(rand.NewSource(9))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := survivors[rng.Intn(len(survivors))]
				dst := survivors[rng.Intn(len(survivors))]
				for dst.Equal(src) {
					dst = survivors[rng.Intn(len(survivors))]
				}
				if _, _, err := s.Route(src, dst, i, 8, 0, 2, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrafficEngine: the open-loop traffic engine's cycle loop —
// warm-up, measurement, and drain over a Bernoulli workload on a faulty
// 16x16 mesh — with the engine built once and rewound with Reset between
// iterations. The budget in scripts/benchcheck holds this at 0 allocs/op:
// all scratch (active list, source queues, latency array) is sized at
// construction.
func BenchmarkTrafficEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := mesh.MustNew(16, 16)
	f := mesh.RandomNodeFaults(m, 8, rng)
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		b.Fatal(err)
	}
	o := routing.NewOracle(f)
	packets, err := wormhole.GenerateWorkload(o, orders, res.Lambs, wormhole.WorkloadSpec{
		Pattern:     wormhole.PatternUniform,
		Rate:        0.02,
		PacketFlits: 8,
		Cycles:      600,
	}, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := wormhole.NewEngine(f, wormhole.EngineConfig{
		Net:           wormhole.DefaultConfig(),
		WarmupCycles:  200,
		MeasureCycles: 400,
		Nodes:         len(wormhole.Survivors(f, res.Lambs)),
	}, packets)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset()
		r := eng.Run()
		if r.Deadlocked || r.Delivered != r.Packets {
			b.Fatalf("unexpected outcome: %+v", r)
		}
	}
}

// Data-plane benchmarks: the class-table query path and the wire codec.

// BenchmarkClassTableQuery: one route lookup through the compressed
// (SES, DES) class table — classify src and dst (O(d log f) binary
// searches), index the class-pair slot, and reconstruct the route shape —
// with a reused Scratch. This is lambd's per-query hot path on the
// class-table plane; the budget in scripts/benchcheck holds it at
// 0 allocs/op (steady state: every via list is materialized by the first
// query that touches its class pair).
func BenchmarkClassTableQuery(b *testing.B) {
	m := mesh.MustNew(32, 32)
	rng := rand.New(rand.NewSource(10))
	f := mesh.RandomNodeFaults(m, 31, rng)
	orders := routing.UniformAscending(2, 2)
	tab, err := classtable.New(f, orders, benchWorkers())
	if err != nil {
		b.Fatal(err)
	}
	var good []mesh.Coord
	m.ForEachNode(func(c mesh.Coord) {
		if !f.NodeFaulty(c) {
			good = append(good, c.Clone())
		}
	})
	// Pre-touch every class pair so the loop measures the steady state,
	// not the one-time lazy fills.
	var q classtable.Scratch
	for _, s := range good {
		for _, d := range good {
			tab.Lookup(s, d, &q)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := good[i%len(good)]
		dst := good[(i*31+17)%len(good)]
		tab.Lookup(src, dst, &q)
	}
}

// BenchmarkWireRoundTrip: encode a route request, decode it, encode the
// response, decode that — the full per-query codec cost on both ends of
// the binary protocol, with every buffer reused. The budget in
// scripts/benchcheck holds this at 0 allocs/op, which is what makes the
// wire server's per-connection loop allocation-free.
func BenchmarkWireRoundTrip(b *testing.B) {
	reqSrc := []int{3, 28}
	reqDst := []int{30, 1}
	ans := wire.Answer{Code: wire.CodeFound, Hops: 54, Turns: 2, NVias: 1, Gen: 9, Via: []int{12, 7}}
	var reqBuf, respBuf []byte
	var src, dst []int
	var got wire.Answer
	roundTrip := func() {
		var err error
		if reqBuf, err = wire.AppendRouteReq(reqBuf[:0], reqSrc, reqDst); err != nil {
			b.Fatal(err)
		}
		_, p, _, err := wire.DecodeFrame(reqBuf)
		if err != nil {
			b.Fatal(err)
		}
		if src, dst, err = wire.ParseRouteReq(p, src, dst); err != nil {
			b.Fatal(err)
		}
		if respBuf, err = wire.AppendRouteResp(respBuf[:0], &ans, len(src)); err != nil {
			b.Fatal(err)
		}
		if _, p, _, err = wire.DecodeFrame(respBuf); err != nil {
			b.Fatal(err)
		}
		if err = wire.ParseRouteResp(p, &got); err != nil {
			b.Fatal(err)
		}
		if got.Hops != ans.Hops {
			b.Fatal("round trip corrupted the answer")
		}
	}
	roundTrip() // warm the reused buffers so b.N=1 still measures steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}

// Micro-benchmarks of the algorithmic stages.

func BenchmarkOracleReachOne(b *testing.B) {
	m := mesh.MustNew(32, 32, 32)
	rng := rand.New(rand.NewSource(5))
	f := mesh.RandomNodeFaults(m, 983, rng)
	o := routing.NewOracle(f)
	pi := routing.Ascending(3)
	v := mesh.C(0, 0, 0)
	w := mesh.C(31, 31, 31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ReachOne(pi, v, w)
	}
}

func BenchmarkBitmatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := bitmat.New(1500, 1500)
	c := bitmat.New(1500, 1500)
	for i := 0; i < 1500; i++ {
		for j := 0; j < 1500; j++ {
			if rng.Float64() < 0.2 {
				a.Set(i, j)
			}
			if rng.Float64() < 0.2 {
				c.Set(i, j)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulParallel(c, benchWorkers())
	}
}

func BenchmarkBipartiteWVC(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := &vcover.Bipartite{
		LeftWeight:  make([]int64, 200),
		RightWeight: make([]int64, 200),
		Edges:       make([][]int, 200),
	}
	for i := range g.LeftWeight {
		g.LeftWeight[i] = int64(1 + rng.Intn(50))
		g.RightWeight[i] = int64(1 + rng.Intn(50))
		for j := 0; j < 200; j++ {
			if rng.Float64() < 0.05 {
				g.Edges[i] = append(g.Edges[i], j)
			}
		}
	}
	var vs vcover.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs.SolveBipartite(g)
	}
}

func BenchmarkVerifyLambSet(b *testing.B) {
	m := mesh.MustNew(32, 32, 32)
	rng := rand.New(rand.NewSource(8))
	f := mesh.RandomNodeFaults(m, 983, rng)
	orders := routing.UniformAscending(3, 2)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.VerifyLambSet(f, orders, res.Lambs); err != nil {
			b.Fatal(err)
		}
	}
}

// Reconfiguration benchmarks: the incremental AddFaults path against the
// full-pipeline baseline, and the post-swap class-table query burst.

// benchAddFaults measures one AddFaults recompute on M_2(32) with a
// 31-fault base configuration (the Figure 17 data point): each iteration
// rebuilds the warm generation outside the timer, then times folding a
// delta-sized fault batch in. With incremental set the patch path runs;
// otherwise IncrementalThreshold is disabled and the same delta recomputes
// from scratch — the two sub-benchmark families are the speedup numerator
// and denominator in EXPERIMENTS.md.
func benchAddFaults(b *testing.B, delta int, incremental bool) {
	b.Helper()
	m := mesh.MustNew(32, 32)
	rng := rand.New(rand.NewSource(17))
	all := mesh.RandomNodeFaults(m, 31+delta, rng).NodeFaults()
	seed, batch := all[:31], all[31:]
	orders := routing.UniformAscending(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rec, err := core.NewReconfigurer(m, orders, false)
		if err != nil {
			b.Fatal(err)
		}
		rec.Workers = benchWorkers()
		if !incremental {
			rec.IncrementalThreshold = 0
		}
		if _, err := rec.AddFaults(seed, nil); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := rec.AddFaults(batch, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkIncrementalAddFaults: delta=N times the incremental patch,
// full-delta=N the full-pipeline recompute of the identical configuration.
func BenchmarkIncrementalAddFaults(b *testing.B) {
	for _, d := range []int{1, 4, 16} {
		d := d
		b.Run(fmt.Sprintf("delta=%d", d), func(b *testing.B) { benchAddFaults(b, d, true) })
	}
	for _, d := range []int{1, 4, 16} {
		d := d
		b.Run(fmt.Sprintf("full-delta=%d", d), func(b *testing.B) { benchAddFaults(b, d, false) })
	}
}

// BenchmarkClassTableSwapQuery: the post-swap query burst — a fixed sweep
// of route lookups issued against a freshly built table, exactly the
// traffic the daemon serves in the seconds after an epoch swap. cold
// builds the new epoch's table with New (every lookup that first touches a
// class pair pays its lazy fill); warm builds it with NewFrom seeded from
// the previous epoch's exercised table, so the sweep lands on migrated and
// prefilled slots. The table build itself is outside the timer on both
// sides — it runs on the apply worker before the swap.
func BenchmarkClassTableSwapQuery(b *testing.B) {
	m := mesh.MustNew(32, 32)
	rng := rand.New(rand.NewSource(10))
	f := mesh.RandomNodeFaults(m, 31, rng)
	orders := routing.UniformAscending(2, 2)
	prev, err := classtable.New(f, orders, benchWorkers())
	if err != nil {
		b.Fatal(err)
	}
	var good []mesh.Coord
	m.ForEachNode(func(c mesh.Coord) {
		if !f.NodeFaulty(c) {
			good = append(good, c.Clone())
		}
	})
	// Exercise the previous epoch so its slots are filled and its hit
	// counters rank the working set.
	var q classtable.Scratch
	for _, s := range good {
		for _, d := range good {
			prev.Lookup(s, d, &q)
		}
	}
	// The next epoch: one more fault, reported mid-mesh.
	extra := good[len(good)/2]
	f2 := mesh.NewFaultSet(m)
	f2.AddNodes(f.NodeFaults()...)
	f2.AddNodes(extra)
	// The post-swap burst: a fixed pseudo-random sweep over surviving
	// endpoints (identical for cold and warm).
	type pair struct{ src, dst mesh.Coord }
	qrng := rand.New(rand.NewSource(11))
	pairs := make([]pair, 0, 4096)
	for len(pairs) < 4096 {
		s := good[qrng.Intn(len(good))]
		d := good[qrng.Intn(len(good))]
		if f2.NodeFaulty(s) || f2.NodeFaulty(d) {
			continue // the extra fault is not an endpoint in either epoch
		}
		pairs = append(pairs, pair{src: s, dst: d})
	}
	for _, mode := range []string{"cold", "warm"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var tab *classtable.Table
				var err error
				if mode == "warm" {
					tab, err = classtable.NewFrom(f2, orders, benchWorkers(), prev)
				} else {
					tab, err = classtable.New(f2, orders, benchWorkers())
				}
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, p := range pairs {
					tab.Lookup(p.src, p.dst, &q)
				}
			}
		})
	}
}

// BenchmarkCampaignTrial: one deterministic campaign trial — seed
// derivation, fault draw, count-only lamb solve, streaming aggregation — on
// a 16x16 mesh with 8 node faults. This is the reliability engine's inner
// loop; budgets.json pins it at zero steady-state allocations.
func BenchmarkCampaignTrial(b *testing.B) {
	tr, err := campaign.NewTrialRunner(campaign.Spec{
		Meshes: [][]int{{16, 16}},
		Models: []campaign.Model{campaign.ModelNode},
		Procs:  []campaign.ProcSpec{{Proc: campaign.ProcFixed, Count: 8}},
		K:      2,
		Trials: 1 << 20,
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the solver scratch to steady state before measuring.
	for t := int64(0); t < 64; t++ {
		if err := tr.Trial(0, t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Trial(0, int64(i)%(1<<20)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignRun: a complete small campaign through the sharded
// scheduler — claim feeding, shard execution, in-order merging — at the
// LAMBMESH_WORKERS pool size. The workers=1 vs workers=NumCPU pair in
// BENCH_lamb.json records the scheduler's trials/sec scaling.
func BenchmarkCampaignRun(b *testing.B) {
	spec := campaign.Spec{
		Meshes:    [][]int{{8, 8}},
		Models:    []campaign.Model{campaign.ModelNode},
		Procs:     []campaign.ProcSpec{{Proc: campaign.ProcFixed, Count: 4}},
		K:         2,
		Trials:    256,
		Seed:      1,
		ShardSize: 32,
		Workers:   benchWorkers(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(context.Background(), spec, campaign.Opts{}); err != nil {
			b.Fatal(err)
		}
	}
}
