package lambmesh_test

import (
	"fmt"

	"lambmesh"
)

// The worked example of the paper's Section 5: a 12x12 mesh with three
// faults needs exactly two lambs.
func ExampleFindLambSet() {
	m, _ := lambmesh.NewMesh(12, 12)
	faults := lambmesh.NewFaultSet(m)
	faults.AddNodes(lambmesh.C(9, 1), lambmesh.C(11, 6), lambmesh.C(10, 10))

	res, _ := lambmesh.FindLambSet(faults, lambmesh.TwoRoundXY())
	fmt.Println(res.Lambs)
	fmt.Println(lambmesh.VerifyLambSet(faults, lambmesh.TwoRoundXY(), res.Lambs))
	// Output:
	// [(11,10) (10,11)]
	// <nil>
}

// Routing between survivors: two rounds of XY, at most three turns.
func ExampleChooseRoute() {
	m, _ := lambmesh.NewMesh(8, 8)
	faults := lambmesh.NewFaultSet(m)
	faults.AddNode(lambmesh.C(4, 0))

	oracle := lambmesh.NewOracle(faults)
	route, ok := lambmesh.ChooseRoute(oracle, lambmesh.TwoRoundXY(),
		lambmesh.C(0, 0), lambmesh.C(7, 0), nil)
	fmt.Println(ok, route.Hops(), "hops,", route.Turns(), "turns")
	// Output:
	// true 9 hops, 2 turns
}

// A torus rescues nodes a mesh cannot (Section 7).
func ExampleFindLambSetTorus() {
	torus, _ := lambmesh.NewTorus(6, 6)
	faults := lambmesh.NewFaultSet(torus)
	faults.AddNodes(lambmesh.C(1, 0), lambmesh.C(0, 1), lambmesh.C(1, 1))

	res, _ := lambmesh.FindLambSetTorus(faults, lambmesh.TwoRoundXY())
	fmt.Println("lambs needed:", res.NumLambs())
	// Output:
	// lambs needed: 0
}

// Keeping lamb sets monotone across fault arrivals (Section 1's
// roll-back/reconfigure loop).
func ExampleReconfigurer() {
	m, _ := lambmesh.NewMesh(12, 12)
	rec, _ := lambmesh.NewReconfigurer(m, lambmesh.TwoRoundXY(), true)

	res, _ := rec.AddFaults([]lambmesh.Coord{
		lambmesh.C(9, 1), lambmesh.C(11, 6), lambmesh.C(10, 10),
	}, nil)
	fmt.Println("generation", rec.Generation(), "lambs", res.Lambs)

	res, _ = rec.AddFaults([]lambmesh.Coord{lambmesh.C(4, 4)}, nil)
	fmt.Println("generation", rec.Generation(), "lambs", res.Lambs)
	// Output:
	// generation 1 lambs [(11,10) (10,11)]
	// generation 2 lambs [(11,10) (10,11)]
}
