// Package campaign is the Monte Carlo reliability campaign engine: it runs
// millions of (draw fault set -> compute lamb set) trials over a grid of
// (mesh size x fault model x fault process) points and streams the results
// into fixed-size aggregates — P(k-round-connected) with Wilson intervals,
// expected lamb count with confidence intervals and quantiles, and measured
// recovery latency. The paper's per-figure experiments (internal/sim) top
// out at thousands of trials; this engine is built like the data plane —
// zero steady-state allocation per trial, shard-parallel over internal/par,
// checkpointed to disk — so campaigns following Safaei & ValadBeigi's
// reliability methodology can run for hours and survive interruption.
//
// Determinism: trial t of grid point g draws every random bit from a
// generator seeded with par.TrialSeed(Seed, g, t), and shard aggregates
// merge in shard order. Everything derived from the seed — every count,
// mean, histogram and interval except the measured recovery wall-times —
// is byte-identical at any worker count and across interrupt/resume.
package campaign

import (
	"context"
	"fmt"
	"io"
	"time"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/routing"
)

// Spec defines a campaign: the grid, the per-point trial budget, and the
// determinism parameters. The same Spec always produces the same results.
type Spec struct {
	Meshes [][]int    `json:"meshes"`
	Models []Model    `json:"models"`
	Procs  []ProcSpec `json:"procs"`
	// Topology selects the network family every grid mesh is built as:
	// "" or "mesh" (rectangular, the default), "torus" (wrap-around links,
	// solved by the generic TorusLamb path), or "hypercube" (every width
	// must be 2). Part of the campaign identity; omitempty keeps the spec
	// keys of pre-topology checkpoints valid. Full meshes are rejected —
	// they have no lamb problem to sample.
	Topology string `json:"topology,omitempty"`
	// K is the number of routing rounds (k-round connectivity target).
	K int `json:"k"`
	// Trials is the per-point trial budget — the quantity that defines the
	// campaign's final result. Stopping early (duration, interrupt) pauses
	// a campaign; it does not redefine it.
	Trials int64 `json:"trials"`
	Seed   int64 `json:"seed"`
	// ShardSize is the scheduler's unit of work and of deterministic
	// merging; 0 means DefaultShardSize. Results are independent of it
	// only in the integer aggregates (Welford merge order follows shards),
	// so it is part of the campaign's identity.
	ShardSize int `json:"shard_size"`
	// Workers sizes the worker pool (<= 0 means NumCPU). Not part of the
	// campaign identity: any value yields byte-identical results.
	Workers int `json:"-"`
}

// DefaultShardSize balances scheduling overhead against the re-run waste on
// resume (incomplete shards are re-run from their seeds).
const DefaultShardSize = 256

func (s *Spec) shardSize() int {
	if s.ShardSize > 0 {
		return s.ShardSize
	}
	return DefaultShardSize
}

// topology canonicalizes the Topology field: "mesh" and "" are the same
// campaign (and the same spec key).
func (s *Spec) topology() string {
	if s.Topology == "mesh" {
		return ""
	}
	return s.Topology
}

// Points returns the number of grid points.
func (s *Spec) Points() int { return len(s.Meshes) * len(s.Models) * len(s.Procs) }

// shardsPerPoint returns the number of shards each point contributes.
func (s *Spec) shardsPerPoint() int64 {
	ss := int64(s.shardSize())
	return (s.Trials + ss - 1) / ss
}

// TotalShards returns the campaign's global shard count.
func (s *Spec) TotalShards() int64 { return int64(s.Points()) * s.shardsPerPoint() }

// Opts are the per-run (non-identity) knobs of a campaign execution.
type Opts struct {
	// Checkpoint is the snapshot path ("" disables checkpointing).
	Checkpoint string
	// Every is the snapshot interval (default 30s when Checkpoint is set).
	Every time.Duration
	// Resume loads Checkpoint and continues from its cursor.
	Resume bool
	// Duration pauses the campaign after roughly this much wall time
	// (0 = none). The in-flight shards drain and the state checkpoints.
	Duration time.Duration
	// Progress receives live trials/sec + ETA lines (nil = silent).
	Progress io.Writer
}

// PointResult pairs one grid point with its aggregate.
type PointResult struct {
	Mesh  []int    `json:"mesh"`
	Model Model    `json:"model"`
	Proc  ProcSpec `json:"proc"`
	Agg   PointAgg `json:"agg"`
}

// Result is a campaign's (possibly partial) outcome.
type Result struct {
	Points []PointResult `json:"points"`
	// Complete reports whether every shard has merged; false after an
	// interrupt or duration pause (resume to continue).
	Complete bool `json:"complete"`
	// TrialsRun counts the trials merged by this run (not ones restored
	// from a checkpoint); Elapsed is this run's wall time.
	TrialsRun int64         `json:"trials_run"`
	Elapsed   time.Duration `json:"elapsed_ns"`
}

// point is the precomputed immutable state of one grid point.
type point struct {
	meshIdx int
	m       *mesh.Mesh
	model   Model
	proc    ProcSpec
	orders  routing.MultiOrder
	samp    *sampler
	// generic routes the trial solve through core.TorusLamb instead of the
	// rectangular count pipeline (tori only; it allocates per trial).
	generic bool
}

// buildGrid validates the spec and precomputes every grid point.
func buildGrid(spec *Spec) ([]*point, []*mesh.Mesh, error) {
	if len(spec.Meshes) == 0 || len(spec.Models) == 0 || len(spec.Procs) == 0 {
		return nil, nil, fmt.Errorf("campaign: empty grid (meshes x models x procs)")
	}
	if spec.K < 1 {
		return nil, nil, fmt.Errorf("campaign: k must be >= 1")
	}
	if spec.Trials < 1 {
		return nil, nil, fmt.Errorf("campaign: trials must be >= 1")
	}
	topo := spec.topology()
	switch topo {
	case "", "torus", "hypercube":
	default:
		return nil, nil, fmt.Errorf("campaign: unsupported topology %q (want mesh, torus, or hypercube)", spec.Topology)
	}
	meshes := make([]*mesh.Mesh, len(spec.Meshes))
	for i, widths := range spec.Meshes {
		var m *mesh.Mesh
		var err error
		switch topo {
		case "torus":
			m, err = mesh.NewTorus(widths...)
		case "hypercube":
			for _, w := range widths {
				if w != 2 {
					return nil, nil, fmt.Errorf("campaign: hypercube needs every width to be 2, got %v", widths)
				}
			}
			m, err = mesh.NewHypercube(len(widths))
		default:
			m, err = mesh.New(widths...)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: mesh %v: %w", widths, err)
		}
		meshes[i] = m
	}
	var pts []*point
	for mi, m := range meshes {
		orders := routing.UniformAscending(m.Dims(), spec.K)
		for _, model := range spec.Models {
			for _, proc := range spec.Procs {
				sites := failureSites(m, model)
				// Cap draws at half the drawable population: it keeps the
				// rejection sampling in drawFaults fast, the mesh
				// non-degenerate, and (via newSampler's tail check) rejects
				// fault processes the cap would misrepresent. Under
				// ModelMixed a capped draw can still exceed what the mesh
				// absorbs — node faults kill incident links — in which case
				// drawFaults stops at saturation.
				maxCount := int(sites / 2)
				if maxCount < 1 {
					maxCount = 1
				}
				samp, err := newSampler(proc, sites, maxCount)
				if err != nil {
					return nil, nil, err
				}
				pts = append(pts, &point{
					meshIdx: mi,
					m:       m,
					model:   model,
					proc:    proc,
					orders:  orders,
					samp:    samp,
					generic: m.Torus(),
				})
			}
		}
	}
	return pts, meshes, nil
}

// failureSites counts the drawable failure sites of a model on m: nodes,
// directed links, or both.
func failureSites(m *mesh.Mesh, model Model) int64 {
	nodes := m.Nodes()
	var links int64
	for d := 0; d < m.Dims(); d++ {
		w := int64(m.Width(d))
		perLine := 2 * (w - 1) // both directions
		if m.Torus() && w > 1 {
			perLine = 2 * w
		}
		links += perLine * (nodes / w)
	}
	switch model {
	case ModelNode:
		return nodes
	case ModelLink:
		return links
	default:
		return nodes + links
	}
}

// worker owns the per-goroutine reusable state: one long-lived Solver, one
// fault set and coordinate scratch per mesh. Nothing in here escapes to the
// merged results except by value.
type worker struct {
	solver *core.Solver
	faults []*mesh.FaultSet
	coord  []mesh.Coord
	head   []mesh.Coord
}

func newWorker(meshes []*mesh.Mesh) *worker {
	w := &worker{
		solver: core.NewSolver(),
		faults: make([]*mesh.FaultSet, len(meshes)),
		coord:  make([]mesh.Coord, len(meshes)),
		head:   make([]mesh.Coord, len(meshes)),
	}
	for i, m := range meshes {
		w.faults[i] = mesh.NewFaultSet(m)
		w.coord[i] = make(mesh.Coord, m.Dims())
		w.head[i] = make(mesh.Coord, m.Dims())
	}
	return w
}

// runTrial executes one deterministic trial: seed, fault draw, count-only
// lamb solve, aggregate. The loop body is allocation-free in steady state
// (pinned by BenchmarkCampaignTrial).
func (w *worker) runTrial(spec *Spec, pts []*point, pointIdx int, trial int64, agg *PointAgg) error {
	pt := pts[pointIdx]
	r := newRNG(par.TrialSeed(spec.Seed, pointIdx, int(trial)))
	count := pt.samp.draw(&r)
	f := w.faults[pt.meshIdx]
	drawFaults(pt.m, f, pt.model, count, &r, w.coord[pt.meshIdx], w.head[pt.meshIdx])
	start := time.Now()
	var lambs int64
	var err error
	if pt.generic {
		// Tori fall outside the rectangular count pipeline; the generic
		// solve materializes the lamb set (and allocates) every trial.
		var res *core.Result
		res, err = core.TorusLamb(f, pt.orders)
		if err == nil {
			lambs = int64(res.NumLambs())
		}
	} else {
		_, lambs, err = w.solver.Lamb1Count(f, pt.orders, 1)
	}
	if err != nil {
		return fmt.Errorf("campaign: point %d trial %d: %w", pointIdx, trial, err)
	}
	secs := time.Since(start).Seconds()
	agg.Trials++
	if lambs == 0 {
		agg.Connected++
	}
	agg.Lambs.Add(float64(lambs))
	agg.LambHist.Add(float64(lambs))
	agg.Faults.Add(float64(f.Count()))
	agg.Recovery.Add(secs)
	return nil
}

// runShard executes one shard (a contiguous block of one point's trials)
// into agg.
func (w *worker) runShard(spec *Spec, pts []*point, shard int64, agg *PointAgg) error {
	agg.reset()
	spp := spec.shardsPerPoint()
	pointIdx := int(shard / spp)
	ss := int64(spec.shardSize())
	lo := (shard % spp) * ss
	hi := lo + ss
	if hi > spec.Trials {
		hi = spec.Trials
	}
	for t := lo; t < hi; t++ {
		if err := w.runTrial(spec, pts, pointIdx, t, agg); err != nil {
			return err
		}
	}
	return nil
}

// shardResult is a completed shard travelling from a worker to the merger.
type shardResult struct {
	shard int64
	agg   PointAgg
	err   error
}

// Run executes (or resumes) a campaign. It returns a partial Result (with
// Complete == false) when ctx is cancelled or opts.Duration elapses; with a
// checkpoint configured the pause is durable and a later Run with
// opts.Resume continues bit-for-bit toward the same final result.
func Run(ctx context.Context, spec Spec, opts Opts) (*Result, error) {
	pts, meshes, err := buildGrid(&spec)
	if err != nil {
		return nil, err
	}
	totalShards := spec.TotalShards()

	// Merged state: the contiguous shard prefix [0, cursor) folded into
	// per-point aggregates.
	aggs := make([]PointAgg, len(pts))
	var cursor int64
	if opts.Resume {
		cp, err := loadCheckpoint(opts.Checkpoint, &spec)
		if err != nil {
			return nil, err
		}
		cursor = cp.Cursor
		copy(aggs, cp.Aggs)
	}

	start := time.Now()
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	every := opts.Every
	if every <= 0 {
		every = 30 * time.Second
	}

	workers := par.Clamp(spec.Workers)
	if remaining := totalShards - cursor; int64(workers) > remaining {
		workers = int(remaining)
	}

	var baseTrials int64
	for i := range aggs {
		baseTrials += aggs[i].Trials
	}

	if workers > 0 {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		results := make(chan shardResult, workers)
		claims := make(chan int64)
		// The claim feeder owns the stop conditions: context, deadline.
		go func() {
			defer close(claims)
			for s := cursor; s < totalShards; s++ {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				select {
				case claims <- s:
				case <-ctx.Done():
					return
				}
			}
		}()
		for i := 0; i < workers; i++ {
			go func() {
				w := newWorker(meshes)
				var res shardResult
				for s := range claims {
					res.shard = s
					res.err = w.runShard(&spec, pts, s, &res.agg)
					results <- res
				}
				results <- shardResult{shard: -1} // worker drained
			}()
		}

		// Merge loop: fold shard results into the contiguous prefix in
		// shard order, checkpoint periodically, report progress.
		pending := make(map[int64]*PointAgg)
		spp := spec.shardsPerPoint()
		lastCp := start
		lastProgress := start
		drained := 0
		var firstErr error
		for drained < workers {
			res := <-results
			if res.shard < 0 {
				drained++
				continue
			}
			if res.err != nil {
				// Keep draining so the feeder and workers shut down
				// cleanly; report the first failure afterwards.
				if firstErr == nil {
					firstErr = res.err
					cancel()
				}
				continue
			}
			a := res.agg
			pending[res.shard] = &a
			for {
				next, ok := pending[cursor]
				if !ok {
					break
				}
				delete(pending, cursor)
				aggs[cursor/spp].Merge(next)
				cursor++
			}
			now := time.Now()
			if opts.Checkpoint != "" && now.Sub(lastCp) >= every && firstErr == nil {
				if err := saveCheckpoint(opts.Checkpoint, &spec, cursor, aggs); err != nil {
					firstErr = err
					cancel()
				}
				lastCp = now
			}
			if opts.Progress != nil && now.Sub(lastProgress) >= time.Second {
				reportProgress(opts.Progress, &spec, aggs, baseTrials, totalShards, cursor, start)
				lastProgress = now
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}

	var trials int64
	for i := range aggs {
		trials += aggs[i].Trials
	}
	res := &Result{
		Complete:  cursor == totalShards,
		TrialsRun: trials - baseTrials,
		Elapsed:   time.Since(start),
	}
	for i, pt := range pts {
		res.Points = append(res.Points, PointResult{
			Mesh:  spec.Meshes[pt.meshIdx],
			Model: pt.model,
			Proc:  pt.proc,
			Agg:   aggs[i],
		})
	}
	if opts.Checkpoint != "" {
		if err := saveCheckpoint(opts.Checkpoint, &spec, cursor, aggs); err != nil {
			return nil, err
		}
	}
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "campaign: %d/%d shards, %d trials in %s (%.0f trials/sec)%s\n",
			cursor, totalShards, res.TrialsRun, res.Elapsed.Round(time.Millisecond),
			float64(res.TrialsRun)/res.Elapsed.Seconds(),
			map[bool]string{true: "", false: " [paused]"}[res.Complete])
	}
	return res, nil
}

// reportProgress emits one live status line: merged trials, trials/sec, ETA.
func reportProgress(w io.Writer, spec *Spec, aggs []PointAgg, baseTrials, totalShards, cursor int64, start time.Time) {
	var trials int64
	for i := range aggs {
		trials += aggs[i].Trials
	}
	ran := trials - baseTrials
	el := time.Since(start).Seconds()
	rate := float64(ran) / el
	remaining := float64((totalShards-cursor)*int64(spec.shardSize()))
	eta := "?"
	if rate > 0 {
		eta = (time.Duration(remaining/rate) * time.Second).String()
	}
	fmt.Fprintf(w, "campaign: shard %d/%d, %d trials, %.0f trials/sec, eta %s\n",
		cursor, totalShards, trials, rate, eta)
}
