package main

import (
	"path/filepath"
	"strings"
	"testing"

	"lambmesh/internal/campaign"
)

func TestParseMeshList(t *testing.T) {
	meshes, err := parseMeshList("8x8, 4x4x4")
	if err != nil {
		t.Fatal(err)
	}
	if len(meshes) != 2 || len(meshes[0]) != 2 || len(meshes[1]) != 3 || meshes[1][0] != 4 {
		t.Fatalf("parsed %v", meshes)
	}
	for _, bad := range []string{"", "8y8", "0x8", "8x", "axb"} {
		if _, err := parseMeshList(bad); err == nil {
			t.Fatalf("parseMeshList(%q) should fail", bad)
		}
	}
}

func TestParseProcList(t *testing.T) {
	procs, err := parseProcList("fixed:3,mtbf:100,1000,weibull:100,1000,1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 3 {
		t.Fatalf("parsed %d specs: %v", len(procs), procs)
	}
	if procs[0].Proc != campaign.ProcFixed || procs[0].Count != 3 {
		t.Fatalf("fixed spec: %+v", procs[0])
	}
	if procs[1].Proc != campaign.ProcMTBF || procs[1].Mission != 100 || procs[1].Theta != 1000 {
		t.Fatalf("mtbf spec: %+v", procs[1])
	}
	if procs[2].Proc != campaign.ProcWeibull || procs[2].Eta != 1000 || procs[2].Beta != 1.5 {
		t.Fatalf("weibull spec: %+v", procs[2])
	}
	for _, bad := range []string{"", "bogus:1", "fixed:x", "mtbf:1", "weibull:1,2", "mtbf:1,2,3"} {
		if _, err := parseProcList(bad); err == nil {
			t.Fatalf("parseProcList(%q) should fail", bad)
		}
	}
}

func TestParseModelList(t *testing.T) {
	models, err := parseModelList("node, mixed")
	if err != nil || len(models) != 2 || models[1] != campaign.ModelMixed {
		t.Fatalf("parsed %v, %v", models, err)
	}
	if _, err := parseModelList("laser"); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := parseModelList(""); err == nil {
		t.Fatal("empty model list should fail")
	}
}

// TestCampaignMain runs the subcommand end to end and checks worker-count
// independence of the rendered output.
func TestCampaignMain(t *testing.T) {
	args := []string{"-mesh", "4x4", "-model", "node", "-process", "fixed:2",
		"-k", "2", "-trials", "64", "-shard", "16", "-format", "csv", "-q"}
	var ref string
	for _, workers := range []string{"1", "3"} {
		var out, errw strings.Builder
		if code := campaignMain(append(args, "-workers", workers), &out, &errw); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr:\n%s", workers, code, errw.String())
		}
		if ref == "" {
			ref = out.String()
			if !strings.Contains(ref, "4x4") {
				t.Fatalf("unexpected output:\n%s", ref)
			}
		} else if out.String() != ref {
			t.Fatalf("workers=%s output differs:\n%s\nvs\n%s", workers, out.String(), ref)
		}
	}
}

// TestCampaignMainResume pauses a campaign with an immediate deadline and
// resumes it, expecting output identical to an uninterrupted run.
func TestCampaignMainResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "c.ckpt")
	base := []string{"-mesh", "4x4", "-model", "mixed", "-process", "fixed:3",
		"-k", "2", "-trials", "48", "-shard", "8", "-format", "csv", "-q"}

	var full strings.Builder
	if code := campaignMain(base, &full, &full); code != 0 {
		t.Fatalf("full run failed:\n%s", full.String())
	}

	var paused, errw strings.Builder
	code := campaignMain(append(base, "-checkpoint", ckpt, "-duration", "1ns"), &paused, &errw)
	if code != 0 {
		t.Fatalf("paused run exit %d:\n%s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "paused") {
		t.Fatalf("paused run should say so on stderr:\n%s", errw.String())
	}

	var resumed strings.Builder
	errw.Reset()
	if code := campaignMain(append(base, "-checkpoint", ckpt, "-resume"), &resumed, &errw); code != 0 {
		t.Fatalf("resume exit %d:\n%s", code, errw.String())
	}
	if resumed.String() != full.String() {
		t.Fatalf("resumed output differs:\n%s\nvs\n%s", resumed.String(), full.String())
	}
}

// TestCampaignMainErrors covers flag and spec error exits.
func TestCampaignMainErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad mesh":    {"-mesh", "zz"},
		"bad model":   {"-model", "zz"},
		"bad process": {"-process", "zz:1"},
		"bad format":  {"-mesh", "4x4", "-trials", "1", "-format", "zz", "-q"},
		"bad flag":    {"-definitely-not-a-flag"},
		"resume without checkpoint": {"-mesh", "4x4", "-trials", "1", "-resume", "-q"},
	} {
		var out, errw strings.Builder
		if code := campaignMain(args, &out, &errw); code == 0 {
			t.Fatalf("%s: expected nonzero exit\nstdout:\n%s", name, out.String())
		}
	}
}
