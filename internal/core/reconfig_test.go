package core

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func TestReconfigurerBasicFlow(t *testing.T) {
	m := mesh.MustNew(12, 12)
	orders := routing.UniformAscending(2, 2)
	r, err := NewReconfigurer(m, orders, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 0 || len(r.Lambs()) != 0 {
		t.Fatal("fresh reconfigurer should be empty")
	}
	// Generation 1: the paper example's faults.
	res, err := r.AddFaults([]mesh.Coord{mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLambs() != 2 || r.Generation() != 1 {
		t.Fatalf("gen1: %v", res.Lambs)
	}
	gen1 := append([]mesh.Coord(nil), r.Lambs()...)

	// Generation 2: a new fault elsewhere; old lambs must persist.
	res2, err := r.AddFaults([]mesh.Coord{mesh.C(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range gen1 {
		if !res2.IsLamb(c) {
			t.Errorf("lamb %v from generation 1 disappeared", c)
		}
	}
	if err := VerifyLambSet(r.Faults(), orders, res2.Lambs); err != nil {
		t.Fatal(err)
	}
}

// A lamb that later fails outright becomes a fault, not a predetermined
// lamb.
func TestReconfigurerLambBecomesFault(t *testing.T) {
	m := mesh.MustNew(12, 12)
	orders := routing.UniformAscending(2, 2)
	r, err := NewReconfigurer(m, orders, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddFaults([]mesh.Coord{mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10)}, nil); err != nil {
		t.Fatal(err)
	}
	// (11,10) was a lamb; now it dies.
	res, err := r.AddFaults([]mesh.Coord{mesh.C(11, 10)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IsLamb(mesh.C(11, 10)) {
		t.Error("a failed node cannot stay a lamb")
	}
	if !r.Faults().NodeFaulty(mesh.C(11, 10)) {
		t.Error("failed lamb should be in the fault set")
	}
	if err := VerifyLambSet(r.Faults(), orders, res.Lambs); err != nil {
		t.Fatal(err)
	}
}

// Monotone lamb sets across many random generations, including link
// faults; without KeepLambs the sets may shrink.
func TestReconfigurerRandomGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := mesh.MustNew(10, 10)
	orders := routing.UniformAscending(2, 2)
	r, err := NewReconfigurer(m, orders, true)
	if err != nil {
		t.Fatal(err)
	}
	prev := map[int64]bool{}
	for gen := 0; gen < 6; gen++ {
		var nodes []mesh.Coord
		for i := 0; i < 2; i++ {
			nodes = append(nodes, m.CoordOf(rng.Int63n(m.Nodes())))
		}
		var links []mesh.Link
		c := m.CoordOf(rng.Int63n(m.Nodes()))
		for dim := 0; dim < 2; dim++ {
			if _, ok := m.Neighbor(c, dim, 1); ok {
				links = append(links, mesh.Link{From: c, Dim: dim, Dir: 1})
				break
			}
		}
		res, err := r.AddFaults(nodes, links)
		if err != nil {
			t.Fatal(err)
		}
		cur := map[int64]bool{}
		for _, l := range res.Lambs {
			cur[m.Index(l)] = true
		}
		for idx := range prev {
			if !cur[idx] && !r.Faults().NodeFaulty(m.CoordOf(idx)) {
				t.Fatalf("gen %d: lamb %v vanished without failing", gen, m.CoordOf(idx))
			}
		}
		prev = cur
		if err := VerifyLambSet(r.Faults(), orders, res.Lambs); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
	}
	if r.Generation() != 6 {
		t.Errorf("Generation = %d", r.Generation())
	}
}

func TestReconfigurerValidation(t *testing.T) {
	m := mesh.MustNew(6, 6)
	if _, err := NewReconfigurer(m, routing.MultiOrder{{0, 0}}, false); err == nil {
		t.Error("bad ordering should fail")
	}
	tor, _ := mesh.NewTorus(4, 4)
	if _, err := NewReconfigurer(tor, routing.UniformAscending(2, 2), false); err == nil {
		t.Error("torus should be rejected")
	}
	r, err := NewReconfigurer(m, routing.UniformAscending(2, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddFaults([]mesh.Coord{mesh.C(99, 0)}, nil); err == nil {
		t.Error("out-of-mesh fault should fail")
	}
}
