package mesh

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFaultRoundTrip(t *testing.T) {
	m := MustNew(12, 12)
	f := NewFaultSet(m)
	f.AddNodes(C(9, 1), C(11, 6), C(10, 10))
	f.AddLink(Link{From: C(3, 4), Dim: 1, Dir: -1})

	var b strings.Builder
	if err := WriteFaults(&b, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFaults(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if g.Mesh().String() != m.String() {
		t.Errorf("mesh %v, want %v", g.Mesh(), m)
	}
	if g.NumNodeFaults() != 3 || g.NumLinkFaults() != 1 {
		t.Errorf("faults %d/%d", g.NumNodeFaults(), g.NumLinkFaults())
	}
	if !g.NodeFaulty(C(11, 6)) || !g.LinkFaulty(Link{From: C(3, 4), Dim: 1, Dir: -1}) {
		t.Error("faults lost in round trip")
	}
}

func TestFaultRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		m := MustNew(5+rng.Intn(4), 4+rng.Intn(4), 3+rng.Intn(3))
		f := RandomNodeFaults(m, rng.Intn(8), rng)
		RandomLinkFaults(f, rng.Intn(5), rng)
		var b strings.Builder
		if err := WriteFaults(&b, f); err != nil {
			t.Fatal(err)
		}
		g, err := ReadFaults(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		if g.Count() != f.Count() {
			t.Fatalf("trial %d: count %d != %d", trial, g.Count(), f.Count())
		}
		for _, c := range f.NodeFaults() {
			if !g.NodeFaulty(c) {
				t.Fatalf("trial %d: lost node %v", trial, c)
			}
		}
		for _, l := range f.LinkFaults() {
			if !g.LinkFaulty(l) {
				t.Fatalf("trial %d: lost link %v", trial, l)
			}
		}
	}
}

func TestReadTorus(t *testing.T) {
	g, err := ReadFaults(strings.NewReader("torus 5x5\nnode 2,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Mesh().Torus() {
		t.Error("torus flag lost")
	}
}

func TestReadFaultsErrors(t *testing.T) {
	bad := []string{
		"",                          // no mesh
		"node 1,1\n",                // node before mesh
		"mesh 4x4\nmesh 4x4\n",      // duplicate mesh
		"mesh ax4\n",                // bad width
		"mesh 4x4\nnode 9,9\n",      // out of range
		"mesh 4x4\nnode nope\n",     // bad coord
		"mesh 4x4\nlink 1,1 5 1\n",  // bad dim
		"mesh 4x4\nlink 1,1 0 2\n",  // bad dir
		"mesh 4x4\nlink 3,1 0 1\n",  // link off the edge
		"mesh 4x4\nwhatever 1\n",    // unknown directive
		"mesh 4x4\nlink 1,1 0\n",    // short link line
		"mesh 4x4\nnode 1,1 2,2\n",  // extra fields
		"mesh 4x4\nlink zz,1 0 1\n", // bad link coord
	}
	for _, s := range bad {
		if _, err := ReadFaults(strings.NewReader(s)); err == nil {
			t.Errorf("ReadFaults(%q) should fail", s)
		}
	}
	// Comments and blanks are fine.
	if _, err := ReadFaults(strings.NewReader("# hi\n\nmesh 4x4\n# c\nnode 1,1\n")); err != nil {
		t.Errorf("comments should parse: %v", err)
	}
}
