package wormhole

import (
	"math/rand"
	"reflect"
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func freeOracle(widths ...int) *routing.Oracle {
	return routing.NewOracle(mesh.NewFaultSet(mesh.MustNew(widths...)))
}

func TestSingleMessagePipelineLatency(t *testing.T) {
	o := freeOracle(6, 6)
	orders := routing.MultiOrder{routing.Ascending(2)}
	msg, err := RouteMessage(o, orders, mesh.C(0, 0), mesh.C(3, 2), 0, 8, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if msg.PathHops != 5 {
		t.Fatalf("hops = %d, want 5", msg.PathHops)
	}
	n, err := NewNetwork(o.Faults(), Config{VirtualChannels: 1, BufferDepth: 2, StallCycles: 100, MaxCycles: 10000}, []*Message{msg})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !msg.Delivered || n.Deadlocked {
		t.Fatalf("message not delivered (deadlock=%v)", n.Deadlocked)
	}
	// Pipelined wormhole: head takes hops cycles to cross, then one flit
	// ejects per cycle: latency = hops + length - 1.
	if want := 5 + 8 - 1; msg.Latency() != want {
		t.Errorf("latency = %d, want %d", msg.Latency(), want)
	}
	// Flit conservation: every flit moves hops+1 times (inject, transfers,
	// eject).
	if want := 8 * (5 + 1); n.MovesTotal != want {
		t.Errorf("MovesTotal = %d, want %d", n.MovesTotal, want)
	}
}

func TestSelfDelivery(t *testing.T) {
	o := freeOracle(4, 4)
	orders := routing.MultiOrder{routing.Ascending(2)}
	msg, err := RouteMessage(o, orders, mesh.C(1, 1), mesh.C(1, 1), 0, 3, 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(o.Faults(), DefaultConfig(), []*Message{msg})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !msg.Delivered || msg.Latency() != 0 {
		t.Errorf("self message: delivered=%v latency=%d", msg.Delivered, msg.Latency())
	}
}

// ringMessages builds the classic 4-worm cyclic workload on a 3x3 mesh:
// with a single virtual channel shared by both rounds the channel
// dependency graph has a cycle and the worms deadlock; with one VC per
// round (the paper's discipline) the same traffic completes.
func ringMessages(t *testing.T, o *routing.Oracle, vcs int) []*Message {
	t.Helper()
	m := o.Mesh()
	orders := routing.UniformAscending(2, 2)
	mk := func(id int, src, via, dst mesh.Coord) *Message {
		r := &routing.Route{
			Vias: []mesh.Coord{via},
			Path: routing.PathK(m, orders, src, dst, []mesh.Coord{via}),
		}
		msg, err := MessageFromRoute(m, orders, r, src, dst, id, 12, 0, vcs)
		if err != nil {
			t.Fatal(err)
		}
		return msg
	}
	return []*Message{
		mk(0, mesh.C(0, 0), mesh.C(2, 0), mesh.C(2, 2)), // row0 then col2
		mk(1, mesh.C(2, 0), mesh.C(2, 2), mesh.C(0, 2)), // col2 then row2
		mk(2, mesh.C(2, 2), mesh.C(0, 2), mesh.C(0, 0)), // row2 then col0
		mk(3, mesh.C(0, 2), mesh.C(0, 0), mesh.C(2, 0)), // col0 then row0
	}
}

func TestDeadlockWithOneVC(t *testing.T) {
	o := freeOracle(3, 3)
	msgs := ringMessages(t, o, 1)
	n, err := NewNetwork(o.Faults(), Config{VirtualChannels: 1, BufferDepth: 1, StallCycles: 200, MaxCycles: 100000}, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Deadlocked {
		t.Error("one shared VC across two rounds should deadlock the 4-worm ring")
	}
}

func TestNoDeadlockWithTwoVCs(t *testing.T) {
	o := freeOracle(3, 3)
	msgs := ringMessages(t, o, 2)
	n, err := NewNetwork(o.Faults(), Config{VirtualChannels: 2, BufferDepth: 1, StallCycles: 200, MaxCycles: 100000}, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Deadlocked {
		t.Fatal("one VC per round must be deadlock-free")
	}
	for _, m := range msgs {
		if !m.Delivered {
			t.Errorf("message %d not delivered", m.ID)
		}
	}
}

// Random survivor traffic on a faulty mesh with a computed lamb set: every
// message routes in two rounds, respects the turn bound, and delivers
// without deadlock under the 2-VC discipline.
func TestRandomSurvivorTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := mesh.MustNew(8, 8)
	f := mesh.RandomNodeFaults(m, 6, rng)
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		t.Fatal(err)
	}
	o := routing.NewOracle(f)
	msgs, err := GenerateTraffic(o, orders, res.Lambs, TrafficSpec{
		Messages: 60, MinFlits: 2, MaxFlits: 10, InjectWindow: 40,
	}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range msgs {
		if msg.PathTurns > 2*2-1 {
			t.Errorf("message %d has %d turns, beyond the k*d-1 bound", msg.ID, msg.PathTurns)
		}
		for _, h := range msg.Hops {
			if !f.Usable(h.Link) {
				t.Errorf("message %d routed over unusable link", msg.ID)
			}
		}
	}
	n, err := NewNetwork(f, DefaultConfig(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Deadlocked {
		t.Fatal("2-VC two-round traffic deadlocked")
	}
	s := Summarize(n)
	if s.Delivered != s.Messages {
		t.Errorf("delivered %d of %d", s.Delivered, s.Messages)
	}
	if s.AvgLatency <= 0 || s.Cycles <= 0 {
		t.Errorf("bad summary %+v", s)
	}
}

// Congestion sanity: two messages sharing one physical link serialize, so
// the second's latency grows.
func TestLinkContention(t *testing.T) {
	o := freeOracle(5, 5)
	orders := routing.MultiOrder{routing.Ascending(2)}
	a, err := RouteMessage(o, orders, mesh.C(0, 2), mesh.C(4, 2), 0, 10, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RouteMessage(o, orders, mesh.C(0, 2), mesh.C(4, 2), 1, 10, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(o.Faults(), DefaultConfig(), []*Message{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Deadlocked || !a.Delivered || !b.Delivered {
		t.Fatal("both messages should deliver")
	}
	solo := 4 + 10 - 1
	if a.Latency() < solo && b.Latency() < solo {
		t.Errorf("contention should delay at least one message: %d, %d", a.Latency(), b.Latency())
	}
	if a.Latency() == solo == (b.Latency() == solo) && a.Latency() == b.Latency() {
		t.Errorf("messages cannot both finish at solo latency: %d, %d", a.Latency(), b.Latency())
	}
}

func TestConfigValidation(t *testing.T) {
	o := freeOracle(3, 3)
	if _, err := NewNetwork(o.Faults(), Config{VirtualChannels: 0, BufferDepth: 1}, nil); err == nil {
		t.Error("0 VCs should fail")
	}
	msg := &Message{ID: 0, Length: 0}
	if _, err := NewNetwork(o.Faults(), DefaultConfig(), []*Message{msg}); err == nil {
		t.Error("0-flit message should fail")
	}
	bad := &Message{ID: 0, Length: 1, Hops: []Hop{{Link: mesh.Link{From: mesh.C(0, 0), Dim: 0, Dir: 1}, VC: 7}}}
	if _, err := NewNetwork(o.Faults(), DefaultConfig(), []*Message{bad}); err == nil {
		t.Error("VC out of range should fail")
	}
}

func TestRouteOverFaultRejected(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(1, 0))
	msg := &Message{ID: 0, Length: 1, Hops: []Hop{{Link: mesh.Link{From: mesh.C(0, 0), Dim: 0, Dir: 1}, VC: 0}}}
	if _, err := NewNetwork(f, DefaultConfig(), []*Message{msg}); err == nil {
		t.Error("route into a faulty node should be rejected")
	}
}

func TestSelfOverlapRejected(t *testing.T) {
	o := freeOracle(4, 4)
	l := mesh.Link{From: mesh.C(0, 0), Dim: 0, Dir: 1}
	msg := &Message{ID: 0, Length: 1, Hops: []Hop{{Link: l, VC: 0}, {Link: l, VC: 0}}}
	if _, err := NewNetwork(o.Faults(), DefaultConfig(), []*Message{msg}); err == nil {
		t.Error("reusing a (link, VC) pair should be rejected")
	}
}

func TestUnroutablePair(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(1, 0), mesh.C(0, 1)) // isolate the corner
	o := routing.NewOracle(f)
	orders := routing.UniformAscending(2, 2)
	if _, err := RouteMessage(o, orders, mesh.C(0, 0), mesh.C(3, 3), 0, 4, 0, 2, nil); err == nil {
		t.Error("unroutable pair should error")
	}
}

// Three-round traffic on three virtual channels: still deadlock-free, with
// the k*d-1 = 5 turn bound.
func TestThreeRoundTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := mesh.MustNew(6, 6)
	f := mesh.RandomNodeFaults(m, 3, rng)
	orders := routing.UniformAscending(2, 3)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		t.Fatal(err)
	}
	o := routing.NewOracle(f)
	msgs, err := GenerateTraffic(o, orders, res.Lambs, TrafficSpec{
		Messages: 30, MinFlits: 2, MaxFlits: 8, InjectWindow: 20,
	}, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range msgs {
		if msg.PathTurns > 3*2-1 {
			t.Errorf("message %d has %d turns, beyond 3-round bound", msg.ID, msg.PathTurns)
		}
	}
	n, err := NewNetwork(f, Config{VirtualChannels: 3, BufferDepth: 2, StallCycles: 1000, MaxCycles: 1000000}, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Deadlocked {
		t.Fatal("3 rounds on 3 VCs deadlocked")
	}
	s := Summarize(n)
	if s.Delivered != s.Messages {
		t.Errorf("delivered %d/%d", s.Delivered, s.Messages)
	}
}

func TestLinkUtilization(t *testing.T) {
	o := freeOracle(6, 6)
	orders := routing.MultiOrder{routing.Ascending(2)}
	msg, err := RouteMessage(o, orders, mesh.C(0, 3), mesh.C(4, 3), 0, 10, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(o.Faults(), DefaultConfig(), []*Message{msg})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	mean, max := n.LinkUtilization()
	if mean <= 0 || max <= 0 || max > 1 || mean > max {
		t.Errorf("utilization mean=%v max=%v", mean, max)
	}
	// Each of the 4 links carries exactly 10 flits.
	wantMax := 10.0 / float64(n.Cycles)
	if diff := max - wantMax; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("max utilization = %v, want %v", max, wantMax)
	}
	// Empty network.
	n2, _ := NewNetwork(o.Faults(), DefaultConfig(), nil)
	if err := n2.Run(); err != nil {
		t.Fatal(err)
	}
	if m1, m2 := n2.LinkUtilization(); m1 != 0 || m2 != 0 {
		t.Error("empty network should have zero utilization")
	}
}

// Deeper per-VC buffers absorb contention: the same congested workload
// completes no slower, and usually faster, with depth 4 than with depth 1.
func TestBufferDepthHelps(t *testing.T) {
	run := func(depth int) int {
		rng := rand.New(rand.NewSource(77))
		o := freeOracle(8, 8)
		orders := routing.UniformAscending(2, 2)
		msgs, err := GenerateTraffic(o, orders, nil, TrafficSpec{
			Messages: 80, MinFlits: 6, MaxFlits: 12,
		}, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNetwork(o.Faults(), Config{
			VirtualChannels: 2, BufferDepth: depth, StallCycles: 2000, MaxCycles: 1000000,
		}, msgs)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if n.Deadlocked {
			t.Fatal("unexpected deadlock")
		}
		return n.Cycles
	}
	shallow := run(1)
	deep := run(4)
	if deep > shallow {
		t.Errorf("deeper buffers slowed the run: depth1=%d cycles, depth4=%d", shallow, deep)
	}
}

// Reset must rewind the network to its pre-Run state: a second Run over the
// same workload reproduces every cycle count and latency exactly.
func TestResetReproducesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := mesh.MustNew(8, 8)
	f := mesh.RandomNodeFaults(m, 6, rng)
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		t.Fatal(err)
	}
	o := routing.NewOracle(f)
	msgs, err := GenerateTraffic(o, orders, res.Lambs, TrafficSpec{
		Messages: 60, MinFlits: 2, MaxFlits: 10, InjectWindow: 40,
	}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(f, DefaultConfig(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	type obs struct {
		cycles, moves int
		deadlocked    bool
		done, start   []int
	}
	snap := func() obs {
		o := obs{cycles: n.Cycles, moves: n.MovesTotal, deadlocked: n.Deadlocked}
		for _, msg := range msgs {
			o.done = append(o.done, msg.DoneCycle)
			o.start = append(o.start, msg.StartCycle)
		}
		return o
	}
	first := snap()
	meanU, maxU := n.LinkUtilization()
	for rerun := 0; rerun < 3; rerun++ {
		n.Reset()
		if n.Cycles != 0 || n.MovesTotal != 0 || n.Deadlocked {
			t.Fatal("Reset left summary fields set")
		}
		for _, msg := range msgs {
			if msg.Delivered || msg.ejected != 0 || msg.remaining != msg.Length {
				t.Fatalf("Reset left message %d mid-flight", msg.ID)
			}
		}
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
		if got := snap(); !reflect.DeepEqual(got, first) {
			t.Fatalf("rerun %d diverged: got %+v want %+v", rerun, got, first)
		}
		if m2, x2 := n.LinkUtilization(); m2 != meanU || x2 != maxU {
			t.Fatalf("rerun %d utilization diverged", rerun)
		}
	}
}
