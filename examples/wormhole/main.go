// Wormhole demonstrates the whole story end to end: faults are rolled into
// a lamb set, survivor traffic is routed with two rounds of dimension-
// ordered routing, and a flit-level simulation shows the traffic flowing
// deadlock-free when each round has its own virtual channel — and
// deadlocking when both rounds share one.
//
//	go run ./examples/wormhole [-messages 200] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"lambmesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func main() {
	messages := flag.Int("messages", 200, "number of messages")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	m, err := lambmesh.NewMesh(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	faults := lambmesh.RandomNodeFaults(m, 10, rng)
	orders := lambmesh.TwoRoundXY()

	res, err := lambmesh.FindLambSet(faults, orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %v, %d faults -> %d lambs, %d survivors\n",
		m, faults.Count(), res.NumLambs(), res.Survivors(faults))

	oracle := lambmesh.NewOracle(faults)
	msgs, err := wormhole.GenerateTraffic(oracle, orders, res.Lambs, wormhole.TrafficSpec{
		Messages: *messages, MinFlits: 4, MaxFlits: 16, InjectWindow: 100,
	}, 2, rng)
	if err != nil {
		log.Fatal(err)
	}

	net, err := wormhole.NewNetwork(faults, wormhole.DefaultConfig(), msgs)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Run(); err != nil {
		log.Fatal(err)
	}
	s := wormhole.Summarize(net)
	fmt.Printf("\n2 virtual channels (one per round):\n")
	fmt.Printf("  delivered %d/%d in %d cycles, deadlock=%v\n", s.Delivered, s.Messages, s.Cycles, s.Deadlocked)
	fmt.Printf("  latency avg %.1f max %d cycles; turns avg %.2f max %d (bound kd-1 = 3)\n",
		s.AvgLatency, s.MaxLatency, s.AvgTurns, s.MaxTurns)

	// The adversarial counterpart: four worms in a ring on one shared VC.
	fmt.Printf("\n1 virtual channel shared by both rounds (adversarial 4-worm ring):\n")
	free := lambmesh.NewFaultSet(mustMesh(3, 3))
	ring := ringMessages(free.Mesh())
	net1, err := wormhole.NewNetwork(free, wormhole.Config{
		VirtualChannels: 1, BufferDepth: 1, StallCycles: 300, MaxCycles: 100000,
	}, ring)
	if err != nil {
		log.Fatal(err)
	}
	if err := net1.Run(); err != nil {
		log.Fatal(err)
	}
	s1 := wormhole.Summarize(net1)
	fmt.Printf("  delivered %d/%d, deadlock=%v after %d cycles\n",
		s1.Delivered, s1.Messages, s1.Deadlocked, s1.Cycles)
	fmt.Println("\nThis is requirement (iii) of Section 1: k rounds need k virtual")
	fmt.Println("channels; with two channels the lamb method gives full connectivity.")
}

func mustMesh(widths ...int) *lambmesh.Mesh {
	m, err := lambmesh.NewMesh(widths...)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func ringMessages(m *lambmesh.Mesh) []*wormhole.Message {
	orders := lambmesh.TwoRoundXY()
	mk := func(id int, src, via, dst lambmesh.Coord) *wormhole.Message {
		r := &routing.Route{
			Vias: []lambmesh.Coord{via},
			Path: routing.PathK(m, orders, src, dst, []lambmesh.Coord{via}),
		}
		msg, err := wormhole.MessageFromRoute(m, orders, r, src, dst, id, 12, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		return msg
	}
	return []*wormhole.Message{
		mk(0, lambmesh.C(0, 0), lambmesh.C(2, 0), lambmesh.C(2, 2)),
		mk(1, lambmesh.C(2, 0), lambmesh.C(2, 2), lambmesh.C(0, 2)),
		mk(2, lambmesh.C(2, 2), lambmesh.C(0, 2), lambmesh.C(0, 0)),
		mk(3, lambmesh.C(0, 2), lambmesh.C(0, 0), lambmesh.C(2, 0)),
	}
}
