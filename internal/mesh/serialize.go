package mesh

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteFaults serializes a fault set in a line-oriented text format:
//
//	mesh 12x12          (or "torus 8x8", "hypercube 4", "fullmesh 12")
//	node 9,1
//	link 1,1 0 +1       (tail coordinate, dimension, direction)
//
// The header carries the topology tag: "mesh"/"torus" take a width list,
// "hypercube" the dimension count d (widths are all 2), "fullmesh" the node
// count N (link directions are then clockwise deltas in [1, N-1]). Blank
// lines and lines starting with '#' are ignored on read. The format is what
// cmd/lambfind's -fault-file consumes and -save emits, so fault
// configurations round-trip between diagnostics runs.
func WriteFaults(w io.Writer, f *FaultSet) error {
	bw := bufio.NewWriter(w)
	m := f.Mesh()
	kind := f.Topology().Tag()
	var shape string
	switch kind {
	case "hypercube":
		shape = strconv.Itoa(m.Dims())
	case "fullmesh":
		shape = strconv.FormatInt(m.Nodes(), 10)
	default:
		dims := make([]string, m.Dims())
		for i := range dims {
			dims[i] = strconv.Itoa(m.Width(i))
		}
		shape = strings.Join(dims, "x")
	}
	fmt.Fprintf(bw, "# lambmesh fault set: %d node faults, %d link faults\n",
		f.NumNodeFaults(), f.NumLinkFaults())
	fmt.Fprintf(bw, "%s %s\n", kind, shape)
	for _, c := range f.SortedNodeFaults() {
		fmt.Fprintf(bw, "node %s\n", strings.Trim(c.String(), "()"))
	}
	for _, l := range f.LinkFaults() {
		fmt.Fprintf(bw, "link %s %d %+d\n", strings.Trim(l.From.String(), "()"), l.Dim, l.Dir)
	}
	return bw.Flush()
}

// ReadFaults parses the WriteFaults format, reconstructing the mesh and its
// fault set.
func ReadFaults(r io.Reader) (*FaultSet, error) {
	sc := bufio.NewScanner(r)
	var f *FaultSet
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "mesh", "torus":
			if f != nil {
				return nil, fmt.Errorf("mesh: line %d: duplicate mesh declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("mesh: line %d: want '%s WxH...'", lineNo, fields[0])
			}
			widths, err := parseWidthList(fields[1])
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: %v", lineNo, err)
			}
			var m *Mesh
			if fields[0] == "torus" {
				m, err = NewTorus(widths...)
			} else {
				m, err = New(widths...)
			}
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: %v", lineNo, err)
			}
			f = NewFaultSet(m)
		case "hypercube":
			if f != nil {
				return nil, fmt.Errorf("mesh: line %d: duplicate mesh declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("mesh: line %d: want 'hypercube d'", lineNo)
			}
			d, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: bad dimension count %q", lineNo, fields[1])
			}
			m, err := NewHypercube(d)
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: %v", lineNo, err)
			}
			f = NewFaultSet(m)
		case "fullmesh":
			if f != nil {
				return nil, fmt.Errorf("mesh: line %d: duplicate mesh declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("mesh: line %d: want 'fullmesh N'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: bad node count %q", lineNo, fields[1])
			}
			fm, err := NewFullMesh(n)
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: %v", lineNo, err)
			}
			f = NewFaultSetOn(fm)
		case "node":
			if f == nil {
				return nil, fmt.Errorf("mesh: line %d: node before mesh declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("mesh: line %d: want 'node x,y,...'", lineNo)
			}
			c, err := ParseCoord(fields[1])
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: %v", lineNo, err)
			}
			if !f.Mesh().Contains(c) {
				return nil, fmt.Errorf("mesh: line %d: node %v outside %v", lineNo, c, f.Mesh())
			}
			f.AddNode(c)
		case "link":
			if f == nil {
				return nil, fmt.Errorf("mesh: line %d: link before mesh declaration", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("mesh: line %d: want 'link x,y dim dir'", lineNo)
			}
			c, err := ParseCoord(fields[1])
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: %v", lineNo, err)
			}
			dim, err := strconv.Atoi(fields[2])
			if err != nil || dim < 0 || dim >= f.Mesh().Dims() {
				return nil, fmt.Errorf("mesh: line %d: bad dimension %q", lineNo, fields[2])
			}
			dir, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("mesh: line %d: bad direction %q", lineNo, fields[3])
			}
			if !f.Mesh().Contains(c) {
				return nil, fmt.Errorf("mesh: line %d: link tail %v outside %v", lineNo, c, f.Mesh())
			}
			l := Link{From: c, Dim: dim, Dir: dir}
			if _, ok := f.Topology().LinkHead(l); !ok {
				return nil, fmt.Errorf("mesh: line %d: link %v dim %d dir %d invalid in %v", lineNo, c, dim, dir, f.Topology())
			}
			f.AddLink(l)
		default:
			return nil, fmt.Errorf("mesh: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("mesh: no mesh declaration found")
	}
	return f, nil
}

func parseWidthList(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	widths := make([]int, len(parts))
	for i, p := range parts {
		w, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad width %q", p)
		}
		widths[i] = w
	}
	return widths, nil
}
