package sim

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/classtable"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/routing"
)

func init() {
	extraRegistry = append(extraRegistry,
		Experiment{ID: "classtable", Title: "class-table compression: route-table memory vs mesh size and fault count against the ((2d-1)f+1)^2 bound", Weight: 3, Run: runClassTable},
	)
}

// runClassTable builds lambd's compressed (SES, DES) route table over
// random fault sets and measures its size: class counts, class pairs
// against the ((2d-1)f+1)^2 worst-case bound, and resident bytes with
// every via slot demanded. The rows with equal f and growing n are the
// point of the design: the class structure depends on the faults, not the
// mesh, so as n grows at fixed f the class counts (and hence memory)
// converge to the f-determined ceiling — faults reach general position —
// while a per-pair cache needs one entry per good (src, dst) pair, the
// quadratically growing "good^2" column.
func runClassTable(cfg Config) *Table {
	trials := scaledTrials(cfg, 3)
	configs := []struct {
		widths []int
		faults int
	}{
		{[]int{32, 32}, 8},
		{[]int{32, 32}, 31},
		{[]int{64, 64}, 31},
		{[]int{128, 128}, 31},
		{[]int{16, 16, 16}, 64},
	}
	orders2 := routing.UniformAscending(2, 2)
	orders3 := routing.UniformAscending(3, 2)

	t := &Table{ID: "classtable",
		Title:   fmt.Sprintf("compressed route-table size, random node faults (%d trials/point)", trials),
		Paper:   "Section 6.1 partitions + Lemma 4.1 class invariance; class pairs <= ((2d-1)f+1)^2 by Theorem 6.4's partition bound",
		Columns: []string{"mesh", "f", "avg SES", "avg DES", "avg pairs", "bound", "good^2", "build KiB", "filled KiB"},
	}
	for _, c := range configs {
		m := mesh.MustNew(c.widths...)
		d := len(c.widths)
		orders := orders2
		if d == 3 {
			orders = orders3
		}
		bound := ((2*d-1)*c.faults + 1) * ((2*d-1)*c.faults + 1)
		good := int(m.Nodes()) - c.faults
		var sumSES, sumDES, sumPairs, sumBuild, sumFilled float64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(par.TrialSeed(cfg.Seed, 0, trial)))
			fs := mesh.RandomNodeFaults(m, c.faults, rng)
			tab, err := classtable.New(fs, orders, cfg.Workers)
			if err != nil {
				panic(err)
			}
			sumBuild += float64(tab.Stats().Bytes)
			fillAllSlots(tab, fs)
			st := tab.Stats()
			sumSES += float64(st.SESs)
			sumDES += float64(st.DESs)
			sumPairs += float64(st.Pairs)
			sumFilled += float64(st.Bytes)
		}
		n := float64(trials)
		t.AddRow(m.String(), fmt.Sprint(c.faults),
			F(sumSES/n), F(sumDES/n), F(sumPairs/n),
			fmt.Sprint(bound), fmt.Sprint(good*good),
			F(sumBuild/n/1024), F(sumFilled/n/1024))
	}
	return t
}

// fillAllSlots demands every class pair's via list through one
// representative lookup per pair, so Stats reports the fully-resident
// table rather than the build-time skeleton.
func fillAllSlots(tab *classtable.Table, fs *mesh.FaultSet) {
	ses, des := tab.Classes()
	repS := make([]mesh.Coord, ses)
	repD := make([]mesh.Coord, des)
	tab.Mesh().ForEachNode(func(c mesh.Coord) {
		if fs.NodeFaulty(c) {
			return
		}
		s, d := tab.ClassOf(c)
		if s >= 0 && repS[s] == nil {
			repS[s] = c.Clone()
		}
		if d >= 0 && repD[d] == nil {
			repD[d] = c.Clone()
		}
	})
	var q classtable.Scratch
	for _, src := range repS {
		for _, dst := range repD {
			if src != nil && dst != nil {
				tab.Lookup(src, dst, &q)
			}
		}
	}
}
