package wormhole

// RouteStrategy abstracts the three fault-tolerant routing contenders of the
// bake-off — the paper's lamb method, the Boppana–Chalasani fault-ring
// baseline, and a negative-first minimal-adaptive scheme — behind one
// interface the workload generator, the live engine, and the sweeps consume.
// A strategy owns a fault configuration, decides which good nodes it
// sacrifices (lambs, inactivated ring nodes, or none), and turns (src, dst)
// pairs into fully scheduled wormhole messages.

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// RouteStrategy is one fault-tolerant routing scheme over one fault
// configuration. Route must be safe for concurrent use; AddFaults requires
// exclusive access (the live engine reconfigures from a single goroutine).
type RouteStrategy interface {
	// Name is the CLI spelling ("lamb", "ring", "adaptive").
	Name() string
	// Faults is the current fault configuration the strategy routes over.
	Faults() *mesh.FaultSet
	// Sacrificed lists the good nodes the strategy removes from the traffic
	// endpoint set (the paper's lambs; the ring scheme's inactivated nodes;
	// empty for adaptive). Routes may still traverse lamb nodes but never
	// ring-inactivated ones — that distinction lives inside Route.
	Sacrificed() []mesh.Coord
	// MinVCs is the number of virtual channels the scheme's deadlock
	// discipline asks for (k rounds for lambs, 2 for fault rings, 1 for
	// negative-first adaptive).
	MinVCs() int
	// Route builds the message for one packet. ok=false means the pair is
	// unreachable under this scheme's discipline (the caller accounts for
	// it); an error is a configuration bug and aborts the run.
	Route(src, dst mesh.Coord, id, length, injectAt, vcs int, rng *rand.Rand) (*Message, bool, error)
	// AddFaults grows the fault configuration mid-run and recomputes the
	// scheme's derived structure (lamb set, ring regions).
	AddFaults(nodes []mesh.Coord, links []mesh.Link) error
}

// StrategyBuilder constructs a strategy over a fault set. Live sweeps call
// it once per cell with a private clone so mid-run events stay cell-local.
type StrategyBuilder func(f *mesh.FaultSet) (RouteStrategy, error)

// StrategyNames lists the accepted -strategy spellings, in flag-help order.
// The position of a name doubles as its sweep seed stream offset
// (SweepSpec.StrategyStream), so the list order is part of the seed
// contract: new strategies are appended, never inserted.
func StrategyNames() []string { return []string{"lamb", "ring", "adaptive", "direct"} }

// StrategyIndex returns the position of a strategy name in StrategyNames.
func StrategyIndex(name string) (int, error) {
	for i, n := range StrategyNames() {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("wormhole: unknown strategy %q (want one of %v)", name, StrategyNames())
}

// NewStrategyBuilder maps a strategy name to its builder. orders
// parameterizes the lamb strategy's k-round discipline and is ignored by
// the ring and adaptive strategies.
func NewStrategyBuilder(name string, orders routing.MultiOrder) (StrategyBuilder, error) {
	switch name {
	case "lamb":
		return func(f *mesh.FaultSet) (RouteStrategy, error) {
			return NewLambStrategy(f, orders)
		}, nil
	case "ring":
		return func(f *mesh.FaultSet) (RouteStrategy, error) {
			return NewRingStrategy(f)
		}, nil
	case "adaptive":
		return func(f *mesh.FaultSet) (RouteStrategy, error) {
			return NewAdaptiveStrategy(f)
		}, nil
	case "direct":
		return func(f *mesh.FaultSet) (RouteStrategy, error) {
			return NewDirectStrategy(f)
		}, nil
	default:
		_, err := StrategyIndex(name)
		return nil, err
	}
}

// LambStrategy is the paper's method as a RouteStrategy: a Reconfigurer
// maintains the lamb set under growing faults, and routes are the k-round
// dimension-ordered routes of RouteMessage (so this path is byte-identical
// to the pre-strategy code for the same rng stream).
type LambStrategy struct {
	rec    *core.Reconfigurer // nil for a static view over a fixed lamb set
	orders routing.MultiOrder
	o      *routing.Oracle
	lambs  []mesh.Coord // static view only; rec.Lambs() otherwise
}

// NewLambStrategy builds the reconfigurable lamb strategy over f. Meshes
// and hypercubes run the rectangular pipeline; tori take the generic
// (TorusLamb) path; full meshes are rejected — the lamb method solves a
// problem the complete network does not have.
func NewLambStrategy(f *mesh.FaultSet, orders routing.MultiOrder) (*LambStrategy, error) {
	var rec *core.Reconfigurer
	var err error
	switch f.Topology().Tag() {
	case "fullmesh":
		return nil, fmt.Errorf("wormhole: lamb strategy does not support the full-mesh topology (use the direct strategy)")
	case "torus":
		rec, err = core.NewGenericReconfigurer(f.Mesh(), orders, true)
	default:
		rec, err = core.NewReconfigurer(f.Mesh(), orders, true)
	}
	if err != nil {
		return nil, err
	}
	rec.Workers = 1 // strategies are built per sweep cell; the sweep parallelizes across cells
	if f.Count() > 0 {
		if _, err := rec.AddFaults(f.NodeFaults(), f.LinkFaults()); err != nil {
			return nil, err
		}
	}
	return &LambStrategy{rec: rec, orders: orders, o: routing.NewOracle(rec.Faults())}, nil
}

// wrapReconfigurer adapts a caller-owned Reconfigurer (the live engine's
// legacy LiveConfig.Reconf path) into a strategy.
func wrapReconfigurer(rec *core.Reconfigurer, orders routing.MultiOrder) *LambStrategy {
	return &LambStrategy{rec: rec, orders: orders, o: routing.NewOracle(rec.Faults())}
}

// lambView is the static strategy over a precomputed lamb set — the shape
// of the legacy GenerateWorkload arguments. AddFaults is rejected.
func lambView(o *routing.Oracle, orders routing.MultiOrder, lambs []mesh.Coord) *LambStrategy {
	return &LambStrategy{orders: orders, o: o, lambs: lambs}
}

func (s *LambStrategy) Name() string           { return "lamb" }
func (s *LambStrategy) Faults() *mesh.FaultSet { return s.o.Faults() }

// MinVCs is k on meshes (one VC per round) and 2k on tori, where each round
// needs a dateline VC pair to break the wrap-around cycles.
func (s *LambStrategy) MinVCs() int {
	if s.o.Faults().Mesh().Torus() {
		return 2 * s.orders.Rounds()
	}
	return s.orders.Rounds()
}

func (s *LambStrategy) Sacrificed() []mesh.Coord {
	if s.rec != nil {
		return s.rec.Lambs()
	}
	return s.lambs
}

func (s *LambStrategy) Route(src, dst mesh.Coord, id, length, injectAt, vcs int, rng *rand.Rand) (*Message, bool, error) {
	msg, err := RouteMessage(s.o, s.orders, src, dst, id, length, injectAt, vcs, rng)
	if err != nil {
		// The lamb-set guarantee makes survivor pairs routable, so a failure
		// here is a configuration bug, not an unreachable pair.
		return nil, false, err
	}
	return msg, true, nil
}

func (s *LambStrategy) AddFaults(nodes []mesh.Coord, links []mesh.Link) error {
	if s.rec == nil {
		return fmt.Errorf("wormhole: static lamb strategy cannot reconfigure")
	}
	if _, err := s.rec.AddFaults(nodes, links); err != nil {
		return err
	}
	s.o = routing.NewOracle(s.rec.Faults())
	return nil
}
