package mesh

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// testTopologies builds one instance of each topology family.
func testTopologies(t *testing.T) map[string]Topology {
	t.Helper()
	tor, err := NewTorus(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := NewFullMesh(9)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Topology{
		"mesh":      MustNew(5, 4),
		"torus":     tor,
		"hypercube": hc,
		"fullmesh":  fm,
	}
}

func TestTopologyNamesMatchTags(t *testing.T) {
	topos := testTopologies(t)
	names := TopologyNames()
	if len(names) != len(topos) {
		t.Fatalf("TopologyNames() = %v, want one per topology family", names)
	}
	for _, name := range names {
		topo, ok := topos[name]
		if !ok {
			t.Fatalf("TopologyNames lists %q, no test topology for it", name)
		}
		if topo.Tag() != name {
			t.Errorf("%q topology has Tag %q", name, topo.Tag())
		}
	}
}

// TestTopologyChannelIDDense: ChannelID is a bijection from the links that
// ForEachLink enumerates onto [0, NumChannels).
func TestTopologyChannelIDDense(t *testing.T) {
	for name, topo := range testTopologies(t) {
		seen := make(map[int]Link)
		m := topo.Grid()
		m.ForEachNode(func(c Coord) {
			topo.ForEachLink(c, func(l Link) {
				head, ok := topo.LinkHead(l)
				if !ok {
					t.Fatalf("%s: ForEachLink yielded invalid link %v", name, l)
				}
				if !m.Contains(head) {
					t.Fatalf("%s: link %v head %v outside grid", name, l, head)
				}
				id := topo.ChannelID(l)
				if id < 0 || id >= topo.NumChannels() {
					t.Fatalf("%s: ChannelID(%v) = %d outside [0,%d)", name, l, id, topo.NumChannels())
				}
				if prev, dup := seen[id]; dup {
					t.Fatalf("%s: ChannelID collision %d: %v and %v", name, id, prev, l)
				}
				seen[id] = Link{From: l.From.Clone(), Dim: l.Dim, Dir: l.Dir}
			})
		})
		// Meshes (including width-2 hypercubes) leave the boundary channel
		// slots empty; tori and full meshes use every slot.
		if (name == "torus" || name == "fullmesh") && len(seen) != topo.NumChannels() {
			t.Errorf("%s: %d links enumerate but NumChannels is %d", name, len(seen), topo.NumChannels())
		}
	}
}

// TestTopologyBasePath: the canonical path connects its endpoints through
// existing links and has length Distance(a, b).
func TestTopologyBasePath(t *testing.T) {
	for name, topo := range testTopologies(t) {
		m := topo.Grid()
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 50; trial++ {
			a := m.CoordOf(rng.Int63n(m.Nodes()))
			b := m.CoordOf(rng.Int63n(m.Nodes()))
			path := topo.BasePath(a, b)
			if len(path) == 0 || !path[0].Equal(a) || !path[len(path)-1].Equal(b) {
				t.Fatalf("%s: BasePath(%v,%v) = %v", name, a, b, path)
			}
			if got, want := len(path)-1, topo.Distance(a, b); got != want {
				t.Fatalf("%s: BasePath(%v,%v) has %d hops, Distance says %d", name, a, b, got, want)
			}
			for i := 1; i < len(path); i++ {
				found := false
				topo.ForEachLink(path[i-1], func(l Link) {
					if head, ok := topo.LinkHead(l); ok && head.Equal(path[i]) {
						found = true
					}
				})
				if !found {
					t.Fatalf("%s: BasePath step %v -> %v has no link", name, path[i-1], path[i])
				}
			}
		}
	}
}

// TestTopologySerializeRoundTrip: a fault set on any topology writes to a
// canonical form that re-parses to the same topology and faults, and a
// second write is byte-identical.
func TestTopologySerializeRoundTrip(t *testing.T) {
	for name, topo := range testTopologies(t) {
		rng := rand.New(rand.NewSource(11))
		f := RandomNodeFaultsOn(topo, 3, rng)
		RandomLinkFaults(f, 2, rng)
		var first bytes.Buffer
		if err := WriteFaults(&first, f); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(first.String(), "\n"+name+" ") {
			t.Fatalf("%s: header tag missing:\n%s", name, first.String())
		}
		g, err := ReadFaults(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", name, err, first.String())
		}
		if g.Topology().Tag() != name {
			t.Fatalf("%s: round trip changed tag to %q", name, g.Topology().Tag())
		}
		if g.Topology().String() != topo.String() {
			t.Fatalf("%s: round trip changed topology to %v", name, g.Topology())
		}
		if g.Count() != f.Count() {
			t.Fatalf("%s: round trip changed fault count %d -> %d", name, f.Count(), g.Count())
		}
		for _, c := range f.NodeFaults() {
			if !g.NodeFaulty(c) {
				t.Fatalf("%s: lost node fault %v", name, c)
			}
		}
		for _, l := range f.LinkFaults() {
			if !g.LinkFaulty(l) {
				t.Fatalf("%s: lost link fault %v", name, l)
			}
		}
		var second bytes.Buffer
		if err := WriteFaults(&second, g); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%s: serialization not canonical:\n%s\nvs\n%s", name, first.String(), second.String())
		}
	}
}

// TestReadFaultsTopologyHeaders pins the topology headers' validation.
func TestReadFaultsTopologyHeaders(t *testing.T) {
	good := map[string]string{
		"hypercube 3\nnode 1,0,1\nlink 0,0,0 2 +1\n": "hypercube",
		"fullmesh 5\nnode 3\nlink 0 0 +4\n":          "fullmesh",
		"torus 4x4\nlink 3,1 0 +1\n":                 "torus", // wrap link
	}
	for in, tag := range good {
		f, err := ReadFaults(strings.NewReader(in))
		if err != nil {
			t.Errorf("ReadFaults(%q): %v", in, err)
			continue
		}
		if f.Topology().Tag() != tag {
			t.Errorf("ReadFaults(%q) tag = %q, want %q", in, f.Topology().Tag(), tag)
		}
	}
	bad := []string{
		"hypercube x\n",             // bad dimension count
		"hypercube 0\n",             // too small
		"fullmesh 2\n",              // below the N >= 3 floor
		"fullmesh 5\nlink 0 0 +5\n", // delta out of [1, N-1]
		"fullmesh 5\nlink 0 0 0\n",  // zero delta
		"fullmesh 5\nlink 0 1 +1\n", // full mesh has one dimension
		"fullmesh 5\nnode 5\n",      // node outside
		"mesh 4x4\nlink 1,1 0 +2\n", // delta dirs are full-mesh only
		"hypercube 3\nfullmesh 5\n", // duplicate declaration
		"fullmesh 5\nmesh 4x4\n",    // duplicate declaration
	}
	for _, in := range bad {
		if _, err := ReadFaults(strings.NewReader(in)); err == nil {
			t.Errorf("ReadFaults(%q) should fail", in)
		}
	}
}

// FuzzTopologySerialize extends FuzzReadFaults' round-trip invariant across
// the topology headers: any accepted input must serialize to a canonical
// form that re-parses to the same topology tag and fault counts.
func FuzzTopologySerialize(f *testing.F) {
	f.Add("mesh 4x4\nnode 1,2\nlink 0,0 1 +1\n")
	f.Add("torus 6x6\nnode 5,5\nlink 5,2 0 +1\nlink 0,3 1 -1\n")
	f.Add("hypercube 4\nnode 1,0,1,0\nlink 0,0,0,0 3 +1\n")
	f.Add("fullmesh 12\nnode 7\nlink 3 0 +8\nlink 11 0 +1\n")
	f.Add("fullmesh 3\nlink 0 0 +2\n")
	f.Add("hypercube 1\nnode 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		fs, err := ReadFaults(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; we fuzz for panics and round-trip
		}
		var first bytes.Buffer
		if err := WriteFaults(&first, fs); err != nil {
			t.Fatalf("WriteFaults on accepted input: %v", err)
		}
		fs2, err := ReadFaults(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, first.String())
		}
		if fs2.Topology().Tag() != fs.Topology().Tag() {
			t.Fatalf("round-trip changed topology %q -> %q", fs.Topology().Tag(), fs2.Topology().Tag())
		}
		if fs2.Topology().String() != fs.Topology().String() {
			t.Fatalf("round-trip changed shape %v -> %v", fs.Topology(), fs2.Topology())
		}
		if fs2.NumNodeFaults() != fs.NumNodeFaults() || fs2.NumLinkFaults() != fs.NumLinkFaults() {
			t.Fatalf("round-trip changed fault counts: %d/%d -> %d/%d",
				fs.NumNodeFaults(), fs.NumLinkFaults(), fs2.NumNodeFaults(), fs2.NumLinkFaults())
		}
		var second bytes.Buffer
		if err := WriteFaults(&second, fs2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not canonical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
	})
}
