package wormhole

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// liveFixture builds a Reconfigurer seeded with random node faults and a
// workload routed around its configuration, ready for NewLiveEngine.
func liveFixture(t *testing.T, widths []int, faults int, rate float64, warmup, measure int,
	seed int64) (*core.Reconfigurer, routing.MultiOrder, []*Message, EngineConfig) {
	t.Helper()
	m := mesh.MustNew(widths...)
	orders := routing.UniformAscending(m.Dims(), 2)
	rec, err := core.NewReconfigurer(m, orders, true)
	if err != nil {
		t.Fatal(err)
	}
	rec.Workers = 1
	f := mesh.RandomNodeFaults(m, faults, rand.New(rand.NewSource(seed)))
	if faults > 0 {
		if _, err := rec.AddFaults(f.NodeFaults(), f.LinkFaults()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := EngineConfig{
		Net:           DefaultConfig(),
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		Nodes:         len(Survivors(rec.Faults(), rec.Lambs())),
	}
	wl := WorkloadSpec{Pattern: PatternUniform, Rate: rate, PacketFlits: 4, Cycles: warmup + measure}
	o := routing.NewOracle(rec.Faults())
	packets, err := GenerateWorkload(o, orders, rec.Lambs(), wl, cfg.Net.VirtualChannels, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return rec, orders, packets, cfg
}

// A fault event in the middle of the measurement window must trigger a
// reconfiguration and yield a finite recovery latency.
func TestLiveEngineMidMeasureEvent(t *testing.T) {
	rec, orders, packets, cfg := liveFixture(t, []int{12, 12}, 3, 0.05, 100, 300, 17)
	survivors := Survivors(rec.Faults(), rec.Lambs())
	ev := FaultEvent{Cycle: 250, Nodes: []mesh.Coord{survivors[len(survivors)/2]}}
	e, err := NewLiveEngine(cfg, LiveConfig{
		Schedule:  FaultSchedule{Events: []FaultEvent{ev}},
		Reconf:    rec,
		Orders:    orders,
		RouteSeed: 99,
	}, packets)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.RunLive()
	if err != nil {
		t.Fatal(err)
	}
	if r.Reconfigurations != 1 {
		t.Fatalf("Reconfigurations = %d, want 1", r.Reconfigurations)
	}
	if len(r.RecoveryEvents) != 1 {
		t.Fatalf("RecoveryEvents = %d, want 1", len(r.RecoveryEvents))
	}
	rev := r.RecoveryEvents[0]
	if rev.Cycle != 250 || rev.NewNodes != 1 {
		t.Errorf("event record = %+v", rev)
	}
	if rev.RecoveryLatency < 0 {
		t.Errorf("recovery latency = %d, want finite (>= 0)", rev.RecoveryLatency)
	}
	if rev.PreRate <= 0 {
		t.Errorf("pre-event accepted rate = %v, traffic should be flowing at cycle 250", rev.PreRate)
	}
	// Killed worms split into retransmissions and endpoint-dead losses.
	if r.DroppedWorms < r.Retransmits {
		t.Errorf("retransmits %d exceed dropped worms %d", r.Retransmits, r.DroppedWorms)
	}
	// Every generated packet is delivered or lost: the run must not strand
	// traffic after the reconfiguration.
	if r.Delivered+r.LostPackets != r.Packets {
		t.Errorf("delivered %d + lost %d != generated %d", r.Delivered, r.LostPackets, r.Packets)
	}
}

// With an empty schedule, a live engine must be byte-identical to a static
// one on the same workload. (Each engine gets its own workload copy from the
// same seed — engines mutate Message state.)
func TestLiveEngineEmptyScheduleMatchesStatic(t *testing.T) {
	rec, orders, livePackets, cfg := liveFixture(t, []int{10, 10}, 3, 0.08, 80, 200, 5)
	_, _, staticPackets, _ := liveFixture(t, []int{10, 10}, 3, 0.08, 80, 200, 5)

	se, err := NewEngine(rec.Faults(), cfg, staticPackets)
	if err != nil {
		t.Fatal(err)
	}
	static := se.Run()

	le, err := NewLiveEngine(cfg, LiveConfig{Reconf: rec, Orders: orders, RouteSeed: 1}, livePackets)
	if err != nil {
		t.Fatal(err)
	}
	live, err := le.RunLive()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(static, live) {
		t.Errorf("empty-schedule live run differs from static:\n%+v\nvs\n%+v", static, live)
	}
	if live.Reconfigurations != 0 || len(live.RecoveryEvents) != 0 {
		t.Errorf("empty schedule produced recovery state: %+v", live)
	}
}

// A multi-event schedule reuses one Reconfigurer (and its solver) across
// events: the generation counter must advance once per applied event.
func TestLiveEngineMultiEventReusesReconfigurer(t *testing.T) {
	rec, orders, packets, cfg := liveFixture(t, []int{12, 12}, 2, 0.05, 100, 400, 23)
	gen0 := rec.Generation()
	survivors := Survivors(rec.Faults(), rec.Lambs())
	sched := FaultSchedule{Events: []FaultEvent{
		{Cycle: 200, Nodes: []mesh.Coord{survivors[3]}},
		{Cycle: 300, Nodes: []mesh.Coord{survivors[len(survivors)/2]}},
		{Cycle: 400, Nodes: []mesh.Coord{survivors[len(survivors)-4]}},
	}}
	e, err := NewLiveEngine(cfg, LiveConfig{Schedule: sched, Reconf: rec, Orders: orders, RouteSeed: 7}, packets)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.RunLive()
	if err != nil {
		t.Fatal(err)
	}
	if r.Reconfigurations != 3 {
		t.Fatalf("Reconfigurations = %d, want 3", r.Reconfigurations)
	}
	if got := rec.Generation() - gen0; got != 3 {
		t.Errorf("Reconfigurer advanced %d generations, want 3 (one per event, same solver)", got)
	}
	if len(r.RecoveryEvents) != 3 {
		t.Errorf("RecoveryEvents = %d, want 3", len(r.RecoveryEvents))
	}
	// Lambs stay monotone under KeepLambs: none of the pre-event lambs may
	// have silently rejoined the survivor set.
	for _, c := range rec.Lambs() {
		if rec.Faults().NodeFaulty(c) {
			t.Errorf("lamb %v is also a fault", c)
		}
	}
}

// Live sweeps must be a pure function of the spec: identical results at any
// worker count. CI runs this under -race, which also pins the mid-run
// recompute (engine + reconfigurer) as data-race-free.
func TestLiveSweepDeterministicAcrossWorkers(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.RandomNodeFaults(m, 2, rand.New(rand.NewSource(4)))
	orders := routing.UniformAscending(m.Dims(), 2)
	run := func(workers int) []SweepPoint {
		spec := SweepSpec{
			Rates:       []float64{0.03, 0.06},
			Trials:      3,
			Pattern:     PatternUniform,
			PacketFlits: 4,
			Warmup:      80,
			Measure:     200,
			Net:         DefaultConfig(),
			Seed:        11,
			Workers:     workers,
			Schedule: FaultSchedule{Events: []FaultEvent{
				{Cycle: 180, Nodes: []mesh.Coord{mesh.C(4, 4)}},
			}},
			MTBF: 500,
		}
		pts, err := RunSweep(f, orders, nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	base := run(1)
	for _, workers := range []int{2, runtime.NumCPU()} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Errorf("live sweep differs between 1 and %d workers:\n%+v\nvs\n%+v", workers, base, got)
		}
	}
	if base[0].Reconfigurations == 0 {
		t.Error("scheduled event did not reconfigure any trial")
	}
}
