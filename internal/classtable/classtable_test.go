package classtable

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// randomFaults builds a reproducible fault set with n node faults and l
// link faults.
func randomFaults(m *mesh.Mesh, n, l int, seed int64) *mesh.FaultSet {
	rng := rand.New(rand.NewSource(seed))
	f := mesh.RandomNodeFaults(m, n, rng)
	if l > 0 {
		mesh.RandomLinkFaults(f, l, rng)
	}
	return f
}

// TestEquivalenceExhaustive is the satellite equivalence suite: on
// randomized 2D and 3D fault sets, the class-table route for every good
// (src,dst) pair is byte-identical to the per-pair route the Oracle +
// ChooseRoute path computes — found/not-found, vias, path, hops, turns.
func TestEquivalenceExhaustive(t *testing.T) {
	cases := []struct {
		widths []int
		nodes  int
		links  int
		k      int
	}{
		{[]int{8, 8}, 0, 0, 2},
		{[]int{8, 8}, 3, 0, 1},
		{[]int{8, 8}, 4, 3, 2},
		{[]int{9, 7}, 6, 2, 2},
		{[]int{5, 5, 5}, 4, 2, 2},
		{[]int{4, 6, 5}, 7, 3, 2},
		{[]int{5, 5, 5}, 5, 0, 1},
	}
	for ci, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("case%d/seed%d", ci, seed), func(t *testing.T) {
				m := mesh.MustNew(tc.widths...)
				f := randomFaults(m, tc.nodes, tc.links, seed)
				orders := routing.UniformAscending(m.Dims(), tc.k)
				tab, err := New(f, orders, 1)
				if err != nil {
					t.Fatal(err)
				}
				o := routing.NewOracle(f)
				var q Scratch
				checkAllPairs(t, tab, o, f, orders, &q)
			})
		}
	}
}

// TestEquivalenceNonUniformOrders covers pi_1 != pi_2: the table must build
// both rounds' partitions and matrices separately.
func TestEquivalenceNonUniformOrders(t *testing.T) {
	m := mesh.MustNew(7, 6)
	f := randomFaults(m, 5, 2, 11)
	orders := routing.MultiOrder{routing.Ascending(2), routing.Descending(2)}
	tab, err := New(f, orders, 1)
	if err != nil {
		t.Fatal(err)
	}
	var q Scratch
	checkAllPairs(t, tab, routing.NewOracle(f), f, orders, &q)
}

// checkAllPairs compares the table against the per-pair reference for
// every (src,dst) pair of the mesh, including faulty endpoints.
func checkAllPairs(t *testing.T, tab *Table, o *routing.Oracle, f *mesh.FaultSet, orders routing.MultiOrder, q *Scratch) {
	t.Helper()
	m := f.Mesh()
	var coords []mesh.Coord
	m.ForEachNode(func(c mesh.Coord) { coords = append(coords, c.Clone()) })
	for _, src := range coords {
		for _, dst := range coords {
			res := tab.Lookup(src, dst, q)
			switch {
			case f.NodeFaulty(src):
				if res.Code != CodeSrcFault {
					t.Fatalf("%v->%v: want CodeSrcFault, got %v", src, dst, res.Code)
				}
				continue
			case f.NodeFaulty(dst):
				if res.Code != CodeDstFault {
					t.Fatalf("%v->%v: want CodeDstFault, got %v", src, dst, res.Code)
				}
				continue
			}
			want, ok := routing.ChooseRoute(o, orders, src, dst, nil)
			if res.Found != ok {
				t.Fatalf("%v->%v: table found=%v, oracle found=%v", src, dst, res.Found, ok)
			}
			if !ok {
				continue
			}
			// Result.Via aliases the scratch; snapshot before reusing q.
			if res.Via != nil {
				res.Via = res.Via.Clone()
			}
			got, code := tab.RouteOf(src, dst, q)
			if code != CodeFound {
				t.Fatalf("%v->%v: RouteOf code %v after Found lookup", src, dst, code)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v->%v: route mismatch\n table: vias=%v path=%v\noracle: vias=%v path=%v",
					src, dst, got.Vias, got.Path, want.Vias, want.Path)
			}
			if res.Hops != want.Hops() || res.Turns != want.Turns() {
				t.Fatalf("%v->%v: compact hops/turns %d/%d, route %d/%d",
					src, dst, res.Hops, res.Turns, want.Hops(), want.Turns())
			}
			if res.NVias == 1 && !res.Via.Equal(want.Vias[0]) {
				t.Fatalf("%v->%v: compact via %v, route via %v", src, dst, res.Via, want.Vias[0])
			}
		}
	}
}

// TestWorkerDeterminism pins that the table is bit-identical no matter how
// many workers built it.
func TestWorkerDeterminism(t *testing.T) {
	m := mesh.MustNew(6, 6, 5)
	f := randomFaults(m, 8, 3, 7)
	orders := routing.UniformAscending(3, 2)
	t1, err := New(f, orders, 1)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := New(f, orders, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if !t1.rk.Equal(tn.rk) {
		t.Fatal("RK differs between worker counts")
	}
	s1, sn := t1.Stats(), tn.Stats()
	s1.Bytes, sn.Bytes = 0, 0 // lazy fill may differ; fixed fields must not
	s1.FilledSlots, sn.FilledSlots = 0, 0
	if s1 != sn {
		t.Fatalf("stats differ: %+v vs %+v", s1, sn)
	}
	var q1, qn Scratch
	m.ForEachNode(func(src mesh.Coord) {
		s := src.Clone()
		m.ForEachNode(func(dst mesh.Coord) {
			a, b := t1.Lookup(s, dst, &q1), tn.Lookup(s, dst, &qn)
			same := a.Found == b.Found && a.Code == b.Code && a.NVias == b.NVias &&
				a.Hops == b.Hops && a.Turns == b.Turns &&
				(a.Via == nil) == (b.Via == nil) && (a.Via == nil || a.Via.Equal(b.Via))
			if !same {
				t.Fatalf("%v->%v: lookup differs between worker counts: %+v vs %+v", s, dst, a, b)
			}
		})
	})
}

// TestConcurrentLookups hammers one table from many goroutines (exercising
// the lazy slot publication under -race) and validates every answer's
// found bit against the oracle.
func TestConcurrentLookups(t *testing.T) {
	m := mesh.MustNew(10, 10)
	f := randomFaults(m, 9, 4, 3)
	orders := routing.UniformAscending(2, 2)
	tab, err := New(f, orders, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := routing.NewOracle(f)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var q Scratch
			for iter := 0; iter < 2000; iter++ {
				src := m.CoordOf(rng.Int63n(m.Nodes()))
				dst := m.CoordOf(rng.Int63n(m.Nodes()))
				if f.NodeFaulty(src) || f.NodeFaulty(dst) {
					continue
				}
				res := tab.Lookup(src, dst, &q)
				_, ok := routing.ChooseRoute(o, orders, src, dst, nil)
				if res.Found != ok {
					t.Errorf("%v->%v: found=%v, oracle=%v", src, dst, res.Found, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestClassifier checks classification against the brute-force scan of the
// partition rects: every good node lands in its containing set, every
// faulty node in none.
func TestClassifier(t *testing.T) {
	for _, widths := range [][]int{{8, 8}, {6, 5, 4}, {12}} {
		m := mesh.MustNew(widths...)
		f := randomFaults(m, 5, 2, 19)
		tab, err := New(f, routing.UniformAscending(m.Dims(), 2), 1)
		if err != nil {
			t.Fatal(err)
		}
		m.ForEachNode(func(c mesh.Coord) {
			ses, des := tab.ClassOf(c)
			wantSes, wantDes := -1, -1
			for i, s := range tab.sesSets {
				if s.Rect.Contains(c) {
					wantSes = i
				}
			}
			for j, s := range tab.desSets {
				if s.Rect.Contains(c) {
					wantDes = j
				}
			}
			if ses != wantSes || des != wantDes {
				t.Fatalf("%v %v: classify (%d,%d), scan (%d,%d)", m, c, ses, des, wantSes, wantDes)
			}
			if f.NodeFaulty(c) != (ses == -1) || f.NodeFaulty(c) != (des == -1) {
				t.Fatalf("%v %v: faulty=%v but classes (%d,%d)", m, c, f.NodeFaulty(c), ses, des)
			}
		})
	}
}

// TestUnsupported pins the fallback contract.
func TestUnsupported(t *testing.T) {
	torus, _ := mesh.NewTorus(8, 8)
	if _, err := New(mesh.NewFaultSet(torus), routing.UniformAscending(2, 2), 1); err != ErrUnsupported {
		t.Fatalf("torus: want ErrUnsupported, got %v", err)
	}
	m := mesh.MustNew(8, 8)
	if _, err := New(mesh.NewFaultSet(m), routing.UniformAscending(2, 3), 1); err != ErrUnsupported {
		t.Fatalf("k=3: want ErrUnsupported, got %v", err)
	}
	if Supported(torus, routing.UniformAscending(2, 2)) || !Supported(m, routing.UniformAscending(2, 2)) {
		t.Fatal("Supported disagrees with New")
	}
}

// TestFaultFree: the empty fault set compresses to a single class pair.
func TestFaultFree(t *testing.T) {
	m := mesh.MustNew(16, 16)
	tab, err := New(mesh.NewFaultSet(m), routing.UniformAscending(2, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Stats()
	if s.SESs != 1 || s.DESs != 1 || s.Pairs != 1 || s.Cells != 1 {
		t.Fatalf("fault-free table not fully compressed: %+v", s)
	}
	var q Scratch
	res := tab.Lookup(mesh.C(3, 4), mesh.C(12, 1), &q)
	if !res.Found || res.Hops != 12 {
		t.Fatalf("fault-free lookup: %+v", res)
	}
}

// TestStatsIndependentOfMeshSize pins the headline claim: the table for a
// fixed fault layout has identical class structure on a 16x16 and a
// 256x256 mesh — the compressed state does not scale with N.
func TestStatsIndependentOfMeshSize(t *testing.T) {
	build := func(n int) Stats {
		m := mesh.MustNew(n, n)
		f := mesh.NewFaultSet(m)
		f.AddNodes(mesh.C(3, 3), mesh.C(5, 2), mesh.C(7, 7))
		tab, err := New(f, routing.UniformAscending(2, 2), 1)
		if err != nil {
			t.Fatal(err)
		}
		return tab.Stats()
	}
	small, large := build(16), build(256)
	if small.SESs != large.SESs || small.DESs != large.DESs || small.Cells != large.Cells {
		t.Fatalf("class structure scales with N: %+v vs %+v", small, large)
	}
}
