package wormhole

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func sweepFixture(t *testing.T) (*mesh.FaultSet, routing.MultiOrder, []mesh.Coord) {
	t.Helper()
	m := mesh.MustNew(8, 8)
	f := mesh.RandomNodeFaults(m, 4, rand.New(rand.NewSource(2)))
	orders := routing.UniformAscending(2, 2)
	res, err := core.Lamb1(f, orders)
	if err != nil {
		t.Fatal(err)
	}
	return f, orders, res.Lambs
}

func smallSweepSpec(workers int) SweepSpec {
	return SweepSpec{
		Rates:       []float64{0.005, 0.02, 0.08},
		Trials:      3,
		Pattern:     PatternUniform,
		PacketFlits: 6,
		Warmup:      100,
		Measure:     250,
		Net:         DefaultConfig(),
		Seed:        42,
		Workers:     workers,
	}
}

// TestSweepDeterministicAcrossWorkers pins the bit-reproducibility
// contract: the sweep's numbers are a function of the seed alone, not of
// the worker count or goroutine scheduling.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	f, orders, lambs := sweepFixture(t)
	var baseline []SweepPoint
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		points, err := RunSweep(f, orders, lambs, smallSweepSpec(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = points
			continue
		}
		if !reflect.DeepEqual(baseline, points) {
			t.Fatalf("sweep diverges at workers=%d:\nbase: %+v\ngot:  %+v", workers, baseline, points)
		}
	}
}

// TestSweepLatencyMonotone checks the physics the acceptance criterion
// asks for: mean latency grows with injection rate, and the top of a wide
// enough sweep saturates.
func TestSweepLatencyMonotone(t *testing.T) {
	f, orders, lambs := sweepFixture(t)
	spec := smallSweepSpec(0)
	spec.Rates = []float64{0.002, 0.01, 0.05, 0.2}
	points, err := RunSweep(f, orders, lambs, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].MeanLatency < points[i-1].MeanLatency {
			t.Fatalf("latency not monotone: %.1f at rate %v after %.1f at rate %v",
				points[i].MeanLatency, points[i].Rate, points[i-1].MeanLatency, points[i-1].Rate)
		}
	}
	if !points[len(points)-1].Saturated {
		t.Fatalf("top rate %v did not saturate: %+v", spec.Rates[len(spec.Rates)-1], points[len(points)-1])
	}
	if points[0].Saturated {
		t.Fatalf("bottom rate %v reported saturated: %+v", spec.Rates[0], points[0])
	}
	for _, p := range points {
		if p.Deadlocked {
			t.Fatalf("deadlock at 2 VCs / 2 rounds: %+v", p)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	f, orders, lambs := sweepFixture(t)
	for _, breakIt := range []func(*SweepSpec){
		func(s *SweepSpec) { s.Rates = nil },
		func(s *SweepSpec) { s.Trials = 0 },
		func(s *SweepSpec) { s.Rates = []float64{0.5, -1} },
		func(s *SweepSpec) { s.Rates = []float64{1.5} },
	} {
		spec := smallSweepSpec(1)
		breakIt(&spec)
		if _, err := RunSweep(f, orders, lambs, spec); err == nil {
			t.Fatalf("RunSweep accepted invalid spec %+v", spec)
		}
	}
}

// TestSweepFaultFreeBaselineFaster sanity-checks the lambs-vs-baseline
// comparison wormsim reports: at equal light load, the fault-free mesh
// cannot be slower than the faulty one by more than noise, and both
// deliver everything.
func TestSweepFaultFreeBaselineFaster(t *testing.T) {
	f, orders, lambs := sweepFixture(t)
	spec := smallSweepSpec(0)
	spec.Rates = []float64{0.01}
	faulty, err := RunSweep(f, orders, lambs, spec)
	if err != nil {
		t.Fatal(err)
	}
	free := mesh.NewFaultSet(f.Mesh())
	baseline, err := RunSweep(free, orders, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	if faulty[0].DeliveredFraction != 1 || baseline[0].DeliveredFraction != 1 {
		t.Fatalf("light load should deliver everything: faulty %+v baseline %+v", faulty[0], baseline[0])
	}
	// Two-round routes around faults take detours; the fault-free mesh
	// routes direct. Latency should reflect that (generous 1.5x slack).
	if baseline[0].MeanLatency > 1.5*faulty[0].MeanLatency {
		t.Fatalf("fault-free latency %.1f far above faulty %.1f", baseline[0].MeanLatency, faulty[0].MeanLatency)
	}
}
