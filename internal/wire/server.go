package wire

import (
	"bufio"
	"errors"
	"io"
	"net"
)

const connBufSize = 64 << 10

// Serve accepts connections on l and answers route requests from b until
// the listener closes. Each connection gets its own goroutine and its own
// reusable buffers, so the per-request path performs no heap allocations.
func Serve(l net.Listener, b Backend) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, b)
	}
}

// serveConn runs one connection's request loop. Responses are written in
// request order; the writer is flushed only when the reader has no more
// buffered input, which batches pipelined responses into few syscalls.
// A protocol violation answers one error frame and closes the connection.
func serveConn(conn net.Conn, b Backend) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)

	d := b.Dims()
	src := make([]int, 0, d)
	dst := make([]int, 0, d)
	var ans Answer
	header := make([]byte, HeaderLen)
	payload := make([]byte, 0, 256)
	out := make([]byte, 0, 256)

	fail := func(msg string) {
		out = AppendError(out[:0], msg)
		bw.Write(out)
		bw.Flush()
	}

	for {
		// About to block on the next header: push out everything pending.
		if br.Buffered() < HeaderLen {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if _, err := io.ReadFull(br, header); err != nil {
			return // EOF (clean close) or a dead peer; nothing to answer
		}
		typ, n, err := parseHeader(header)
		if err != nil {
			fail(err.Error())
			return
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		if typ != TRouteReq {
			fail("wire: expected a route request frame")
			return
		}
		if src, dst, err = ParseRouteReq(payload, src, dst); err != nil {
			fail(err.Error())
			return
		}
		if len(src) != d {
			fail("wire: request dimensionality does not match the mesh")
			return
		}
		b.Query(src, dst, &ans)
		if out, err = AppendRouteResp(out[:0], &ans, d); err != nil {
			fail(err.Error())
			return
		}
		if _, err := bw.Write(out); err != nil {
			return
		}
	}
}
