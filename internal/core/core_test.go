package core

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

func paperExample() *mesh.FaultSet {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10))
	return f
}

// Section 5's headline result: for the 12x12 example the minimum-weight
// vertex cover is {s8, d5} with weight 2, and the lamb set is
// {(11,10), (10,11)}.
func TestPaperLambSet(t *testing.T) {
	f := paperExample()
	res, err := Lamb1(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLambs() != 2 {
		t.Fatalf("lambs = %v, want 2 nodes", res.Lambs)
	}
	if !res.IsLamb(mesh.C(11, 10)) || !res.IsLamb(mesh.C(10, 11)) {
		t.Errorf("lambs = %v, want {(11,10),(10,11)}", res.Lambs)
	}
	if res.Stats.CoverWeight != 2 {
		t.Errorf("cover weight = %d, want 2", res.Stats.CoverWeight)
	}
	if res.Stats.NumSES != 9 || res.Stats.NumDES != 7 {
		t.Errorf("partition sizes = %d/%d, want 9/7", res.Stats.NumSES, res.Stats.NumDES)
	}
	if res.Stats.RelevantSES != 2 || res.Stats.RelevantDES != 3 {
		t.Errorf("relevant = %d/%d, want 2/3 (s3,s8 / d2,d5,d6)", res.Stats.RelevantSES, res.Stats.RelevantDES)
	}
	if res.Survivors(f) != 144-3-2 {
		t.Errorf("survivors = %d", res.Survivors(f))
	}
	if err := VerifyLambSet(f, res.Orders, res.Lambs); err != nil {
		t.Error(err)
	}
	if err := VerifyLambSetBrute(f, res.Orders, res.Lambs); err != nil {
		t.Error(err)
	}
	// This instance is small enough for the exact solver, which confirms
	// the optimum is indeed 2.
	opt, err := ExactLamb(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumLambs() != 2 {
		t.Errorf("exact optimum = %d lambs, want 2", opt.NumLambs())
	}
}

// Dropping any single lamb from a minimal lamb set must break validity
// (exercises the only-if direction of Lemma 5.2 in VerifyLambSet).
func TestVerifyRejectsUndersizedSet(t *testing.T) {
	f := paperExample()
	res, err := Lamb1(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for drop := range res.Lambs {
		partial := make([]mesh.Coord, 0, len(res.Lambs)-1)
		for i, c := range res.Lambs {
			if i != drop {
				partial = append(partial, c)
			}
		}
		if err := VerifyLambSet(f, res.Orders, partial); err == nil {
			t.Errorf("dropping lamb %v should invalidate the set", res.Lambs[drop])
		}
	}
}

func TestVerifyRejectsBadMembers(t *testing.T) {
	f := paperExample()
	orders := routing.UniformAscending(2, 2)
	if err := VerifyLambSet(f, orders, []mesh.Coord{mesh.C(9, 1)}); err == nil {
		t.Error("a faulty node cannot be a lamb")
	}
	if err := VerifyLambSet(f, orders, []mesh.Coord{mesh.C(99, 0)}); err == nil {
		t.Error("out-of-mesh lamb should fail")
	}
	if err := VerifyLambSet(f, orders, []mesh.Coord{mesh.C(0, 0), mesh.C(0, 0)}); err == nil {
		t.Error("duplicate lamb should fail")
	}
}

func TestNoFaultsNoLambs(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	res, err := Lamb1(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLambs() != 0 {
		t.Errorf("fault-free mesh needs no lambs, got %v", res.Lambs)
	}
}

// The Figure 15 family (m=1, n=5): two full fault rows cut the mesh into
// three components. The optimum sacrifices the two outer components (10
// nodes); Lamb1's bipartite reduction is forced to weight (4m-1)n = 15 —
// the 2 - 1/(2m) adversarial gap.
func TestFigure15Nonoptimality(t *testing.T) {
	m := mesh.MustNew(5, 5)
	f := mesh.NewFaultSet(m)
	for x := 0; x < 5; x++ {
		f.AddNodes(mesh.C(x, 1), mesh.C(x, 3))
	}
	orders := routing.UniformAscending(2, 2)
	approx, err := Lamb1(f, orders)
	if err != nil {
		t.Fatal(err)
	}
	if approx.NumLambs() != 15 {
		t.Errorf("Lamb1 = %d lambs, want 15", approx.NumLambs())
	}
	if err := VerifyLambSet(f, orders, approx.Lambs); err != nil {
		t.Error(err)
	}
	exact, err := ExactLamb(f, orders)
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumLambs() != 10 {
		t.Errorf("exact = %d lambs, want 10", exact.NumLambs())
	}
	if err := VerifyLambSetBrute(f, orders, exact.Lambs); err != nil {
		t.Error(err)
	}
	// The proven lower bound can never exceed the optimum.
	if approx.LowerBound() > int64(exact.NumLambs()) {
		t.Errorf("lower bound %d exceeds optimum %d", approx.LowerBound(), exact.NumLambs())
	}
}

// Property test: on random small meshes, Lamb1, Lamb2(approx) and
// Lamb2(exact) all produce valid lamb sets; exact <= others <= 2*exact.
func TestRandomLambAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{{5, 5}, {6, 4}, {4, 4, 3}, {3, 3, 3}}
	for trial := 0; trial < 20; trial++ {
		m := mesh.MustNew(shapes[trial%len(shapes)]...)
		f := mesh.RandomNodeFaults(m, 2+rng.Intn(5), rng)
		k := 1 + rng.Intn(2)
		orders := routing.UniformAscending(m.Dims(), k)

		a1, err := Lamb1(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Lamb2(f, orders, ApproxWVC)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ExactLamb(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		for name, res := range map[string]*Result{"Lamb1": a1, "Lamb2approx": a2, "exact": ex} {
			if err := VerifyLambSet(f, orders, res.Lambs); err != nil {
				t.Fatalf("trial %d %s: %v (faults %v)", trial, name, err, f.SortedNodeFaults())
			}
			if err := VerifyLambSetBrute(f, orders, res.Lambs); err != nil {
				t.Fatalf("trial %d %s (brute): %v", trial, name, err)
			}
		}
		if a1.NumLambs() > 2*ex.NumLambs() {
			t.Errorf("trial %d: Lamb1 %d > 2x optimum %d", trial, a1.NumLambs(), ex.NumLambs())
		}
		if a2.NumLambs() > 2*ex.NumLambs() {
			t.Errorf("trial %d: Lamb2(approx) %d > 2x optimum %d", trial, a2.NumLambs(), ex.NumLambs())
		}
		if ex.NumLambs() > a1.NumLambs() || ex.NumLambs() > a2.NumLambs() {
			t.Errorf("trial %d: exact (%d) larger than approximations (%d, %d)",
				trial, ex.NumLambs(), a1.NumLambs(), a2.NumLambs())
		}
		if a1.LowerBound() > int64(ex.NumLambs()) {
			t.Errorf("trial %d: lower bound %d exceeds optimum %d", trial, a1.LowerBound(), ex.NumLambs())
		}
	}
}

// More rounds can only help (Definition 2.7's monotonicity in k).
func TestMonotoneInRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := mesh.MustNew(5, 5)
	for trial := 0; trial < 10; trial++ {
		f := mesh.RandomNodeFaults(m, 4, rng)
		prev := -1
		for k := 1; k <= 3; k++ {
			res, err := ExactLamb(f, routing.UniformAscending(2, k))
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && res.NumLambs() > prev {
				t.Errorf("trial %d: optimum grew from %d to %d when k increased to %d",
					trial, prev, res.NumLambs(), k)
			}
			prev = res.NumLambs()
		}
	}
}

// Values extension (Section 7): a cheap node should be sacrificed in
// preference to an expensive equivalent choice.
func TestValuesSteerChoice(t *testing.T) {
	f := paperExample()
	m := f.Mesh()
	orders := routing.UniformAscending(2, 2)
	// Default choice is {(11,10),(10,11)} (S8 and D5, weight 1 each). Make
	// those two nodes precious and the alternatives cheap: S3 =
	// ([10,11],1) and D2 = (9,0), total size 3, give them value 0.
	values := map[int64]int64{
		m.Index(mesh.C(11, 10)): 100,
		m.Index(mesh.C(10, 11)): 100,
		m.Index(mesh.C(10, 1)):  0,
		m.Index(mesh.C(11, 1)):  0,
		m.Index(mesh.C(9, 0)):   0,
		m.Index(mesh.C(10, 0)):  0, // D6 = (11,[0,5]) stays expensive
	}
	res, err := Lamb1(f, orders, WithValues(values))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLambSet(f, orders, res.Lambs); err != nil {
		t.Fatal(err)
	}
	if res.IsLamb(mesh.C(11, 10)) && res.IsLamb(mesh.C(10, 11)) {
		t.Errorf("precious nodes were sacrificed anyway: %v", res.Lambs)
	}
}

func TestValuesValidation(t *testing.T) {
	f := paperExample()
	orders := routing.UniformAscending(2, 2)
	if _, err := Lamb1(f, orders, WithValues(map[int64]int64{0: -1})); err == nil {
		t.Error("negative value should be rejected")
	}
	if _, err := Lamb1(f, orders, WithValues(map[int64]int64{1 << 40: 1})); err == nil {
		t.Error("out-of-mesh value key should be rejected")
	}
}

// Predetermined lambs (Section 7): the result contains them and remains a
// valid lamb set.
func TestPredeterminedLambs(t *testing.T) {
	f := paperExample()
	orders := routing.UniformAscending(2, 2)
	pre := []mesh.Coord{mesh.C(0, 0), mesh.C(5, 5)}
	res, err := Lamb1(f, orders, WithPredetermined(pre))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pre {
		if !res.IsLamb(c) {
			t.Errorf("predetermined lamb %v missing from result", c)
		}
	}
	if err := VerifyLambSet(f, orders, res.Lambs); err != nil {
		t.Error(err)
	}
	// A predetermined node that is already in a chosen set must not be
	// double counted.
	res2, err := Lamb1(f, orders, WithPredetermined([]mesh.Coord{mesh.C(11, 10)}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumLambs() != 2 {
		t.Errorf("predetermined overlap should not inflate the set: %v", res2.Lambs)
	}
	if _, err := Lamb1(f, orders, WithPredetermined([]mesh.Coord{mesh.C(9, 1)})); err == nil {
		t.Error("faulty predetermined lamb should be rejected")
	}
}

func TestWithReachability(t *testing.T) {
	f := paperExample()
	res, err := Lamb1(f, routing.UniformAscending(2, 2), WithReachability())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reach == nil || res.Reach.RK == nil {
		t.Error("WithReachability should retain the matrices")
	}
	res2, err := Lamb1(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reach != nil {
		t.Error("Reach should be dropped by default")
	}
}

func TestLamb2ForcedIntersection(t *testing.T) {
	// Build a case where an SES-DES intersection cannot reach itself in one
	// round: k=1 with a fault splitting a row. Nodes (0,0) and (2,0) are in
	// the same... actually with k=1 many pairs fail; just verify validity.
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(1, 0))
	orders := routing.UniformAscending(2, 1)
	res, err := Lamb2(f, orders, ExactWVC)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLambSetBrute(f, orders, res.Lambs); err != nil {
		t.Error(err)
	}
}

func TestLamb2UnknownMode(t *testing.T) {
	f := paperExample()
	if _, err := Lamb2(f, routing.UniformAscending(2, 2), WVCMode(99)); err == nil {
		t.Error("unknown mode should fail")
	}
	if ApproxWVC.String() != "approx2" || ExactWVC.String() != "exact" {
		t.Error("WVCMode.String wrong")
	}
}

// The sweep-based reachability yields exactly the same lamb set as the
// matrix-based default.
func TestSweepOptionSameLambs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		m := mesh.MustNew(9, 9)
		f := mesh.RandomNodeFaults(m, 3+rng.Intn(8), rng)
		orders := routing.UniformAscending(2, 2)
		a, err := Lamb1(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Lamb1(f, orders, WithSweepReachability())
		if err != nil {
			t.Fatal(err)
		}
		if a.NumLambs() != b.NumLambs() {
			t.Fatalf("trial %d: matrix %v vs sweep %v", trial, a.Lambs, b.Lambs)
		}
		for i := range a.Lambs {
			if !a.Lambs[i].Equal(b.Lambs[i]) {
				t.Fatalf("trial %d: lamb sets differ: %v vs %v", trial, a.Lambs, b.Lambs)
			}
		}
	}
}

// A predetermined node with a custom value must count as exactly one
// default unit removed from its set's weight — not its custom value (it is
// no longer in the set at all).
func TestPredeterminedWithValuesWeight(t *testing.T) {
	f := paperExample()
	m := f.Mesh()
	orders := routing.UniformAscending(2, 2)
	// Predetermine (11,10) (= all of S8) with a huge custom value; the
	// remaining instance must behave as if S8 were free (weight 0), so the
	// cover still picks it and D5.
	res, err := Lamb1(f, orders,
		WithPredetermined([]mesh.Coord{mesh.C(11, 10)}),
		WithValues(map[int64]int64{m.Index(mesh.C(11, 10)): 1000}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLambSet(f, orders, res.Lambs); err != nil {
		t.Fatal(err)
	}
	if res.NumLambs() != 2 {
		t.Errorf("lambs = %v, want the usual 2", res.Lambs)
	}
	// The cover weight must not have been distorted by the custom value:
	// S8's residual weight is 0, D5's is 1.
	if res.Stats.CoverWeight != 1 {
		t.Errorf("cover weight = %d, want 1", res.Stats.CoverWeight)
	}
}
