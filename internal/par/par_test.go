package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	if got := Clamp(3); got != 3 {
		t.Errorf("Clamp(3) = %d", got)
	}
	if got := Clamp(1); got != 1 {
		t.Errorf("Clamp(1) = %d", got)
	}
	for _, n := range []int{0, -1, -100} {
		if got := Clamp(n); got != runtime.NumCPU() {
			t.Errorf("Clamp(%d) = %d, want NumCPU=%d", n, got, runtime.NumCPU())
		}
	}
}

// Do must execute every index exactly once, for any worker count.
func TestDoCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			counts := make([]atomic.Int32, n)
			Do(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// Blocks must partition [0,n) exactly: every index in one block, no overlap.
func TestBlocksPartitionExact(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 101} {
			counts := make([]atomic.Int32, n)
			Blocks(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad block [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestTrialSeedDistinct pins the collision-freedom of the seed derivation:
// campaigns run millions of trials per stream, so neighbouring streams must
// not replay each other's seed sequences at any trial offset (the failure
// mode of an affine seed + k*stream + trial map), and a dense sample of
// (stream, trial) pairs must map to pairwise-distinct seeds.
func TestTrialSeedDistinct(t *testing.T) {
	const seed = 42
	// The affine map's exact collision pattern: stream g trial t vs stream
	// g+1 trial t-k for the old multiplier k and nearby offsets.
	for _, k := range []int{1_000_003, 1_000_002, 1_000_004, 1, 2} {
		for trial := k; trial < k+64; trial++ {
			if TrialSeed(seed, 0, trial) == TrialSeed(seed, 1, trial-k) {
				t.Fatalf("streams 0 and 1 collide at trials %d and %d", trial, trial-k)
			}
		}
	}
	seen := make(map[int64][2]int)
	for stream := 0; stream < 64; stream++ {
		for trial := 0; trial < 4096; trial++ {
			s := TrialSeed(seed, stream, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) -> %d",
					prev[0], prev[1], stream, trial, s)
			}
			seen[s] = [2]int{stream, trial}
		}
	}
}

// With workers <= 1 both helpers must run inline on the calling goroutine —
// callers rely on this for the serial fallback.
func TestInlineWhenSerial(t *testing.T) {
	var gid [2]int
	probe := func(slot int) { gid[slot]++ }
	Do(1, 4, func(int) { probe(0) })
	Blocks(1, 4, func(lo, hi int) { probe(1) })
	if gid[0] != 4 || gid[1] != 1 {
		t.Errorf("inline execution counts = %v", gid)
	}
}
