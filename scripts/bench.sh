#!/usr/bin/env bash
# bench.sh — record the lamb pipeline's perf trajectory.
#
# Runs the hot-path benchmarks (Fig17/Fig18 trials, BitmatMul, the Section 5
# pipeline, the wormhole cycle loop, the class-table query path, the wire
# codec, the incremental AddFaults recompute, the post-swap class-table
# query burst, and the reliability-campaign trial loop and sharded
# scheduler) twice — LAMBMESH_WORKERS=1 and
# LAMBMESH_WORKERS=NumCPU — and writes BENCH_lamb.json with ns/op and
# allocs/op per (benchmark, workers) pair plus per-benchmark speedups. On a
# single-CPU machine only the workers=1 pass runs (there is nothing to
# compare against) and a "speedup_skipped" marker records why the speedup
# map is empty. The final benchcheck pass also enforces the allocation
# budgets in scripts/benchcheck/budgets.json; after a deliberate change in
# allocation behaviour, regenerate them with
# `go run ./scripts/benchcheck -write`.
#
# Usage:
#   scripts/bench.sh            # run benchmarks, write BENCH_lamb.json
#   scripts/bench.sh --check    # validate BENCH_lamb.json's shape (CI)
#
# Env:
#   BENCHTIME   -benchtime value per benchmark (default 3x)
#   OUT         output file (default BENCH_lamb.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_lamb.json}"
BENCHTIME="${BENCHTIME:-3x}"
BENCH_RE='^(BenchmarkFig17Trial|BenchmarkFig18Trial|BenchmarkBitmatMul|BenchmarkSec5LambSet|BenchmarkWormholeRun|BenchmarkTrafficEngine|BenchmarkClassTableQuery|BenchmarkWireRoundTrip|BenchmarkIncrementalAddFaults|BenchmarkClassTableSwapQuery|BenchmarkCampaignTrial|BenchmarkCampaignRun)$'

if [ "${1:-}" = "--check" ]; then
    exec go run ./scripts/benchcheck -file "$OUT"
fi

NCPU="$(getconf _NPROCESSORS_ONLN)"
GMP="${GOMAXPROCS:-$NCPU}"
GOVER="$(go env GOVERSION)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# run_pass WORKERS -> appends "name workers ns_per_op allocs_per_op" lines
run_pass() {
    local workers="$1"
    echo "bench.sh: pass workers=$workers (benchtime=$BENCHTIME)" >&2
    LAMBMESH_WORKERS="$workers" go test -run='^$' -count=1 \
        -bench "$BENCH_RE" -benchtime "$BENCHTIME" . |
    awk -v w="$workers" '
        /^Benchmark/ && /ns\/op/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = ""; allocs = "0"
            for (i = 2; i <= NF; i++) {
                if ($i == "ns/op")     ns = $(i-1)
                if ($i == "allocs/op") allocs = $(i-1)
            }
            if (ns != "") print name, w, ns, allocs
        }'
}

# Preserve the "baseline" block across reruns: the rows recorded before the
# allocation-discipline work, kept for before/after comparison. Rows are one
# per line, so a line-range extraction is enough.
BASELINE=""
if [ -f "$OUT" ]; then
    BASELINE="$(sed -n '/^  "baseline": \[$/,/^  \],$/p' "$OUT")"
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
run_pass 1 >"$TMP"
if [ "$NCPU" -gt 1 ]; then
    run_pass "$NCPU" >>"$TMP"
fi

awk -v ncpu="$NCPU" -v gmp="$GMP" -v gover="$GOVER" -v date="$DATE" -v benchtime="$BENCHTIME" '
    { ns[$1 "," $2] = $3; names[$1] = 1; lines[NR] = $0 }
    END {
        printf "{\n"
        printf "  \"schema\": \"lambmesh-bench/v1\",\n"
        printf "  \"date\": \"%s\",\n", date
        printf "  \"go\": \"%s\",\n", gover
        printf "  \"num_cpu\": %d,\n", ncpu
        printf "  \"gomaxprocs\": %d,\n", gmp
        printf "  \"benchtime\": \"%s\",\n", benchtime
        printf "  \"benchmarks\": [\n"
        for (i = 1; i <= NR; i++) {
            split(lines[i], f, " ")
            printf "    {\"name\": \"%s\", \"workers\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
                f[1], f[2], f[3], f[4], (i < NR ? "," : "")
        }
        printf "  ],\n"
        # On a single-CPU machine only the workers=1 pass ran; say so
        # explicitly instead of leaving an ambiguous empty speedup map.
        if (ncpu == 1)
            printf "  \"speedup_skipped\": \"1 CPU: parallel pass not run, nothing to compare\",\n"
        printf "  \"speedup\": {\n"
        n = 0
        for (name in names) if (ncpu > 1 && (name "," 1) in ns && (name "," ncpu) in ns) order[++n] = name
        for (i = 1; i <= n; i++) {
            name = order[i]
            printf "    \"%s\": %.2f%s\n", name, ns[name "," 1] / ns[name "," ncpu], (i < n ? "," : "")
        }
        printf "  }\n"
        printf "}\n"
    }' "$TMP" >"$OUT"

if [ -n "$BASELINE" ]; then
    awk -v b="$BASELINE" '/^  "speedup": \{$/ { print b } { print }' "$OUT" >"$OUT.tmp" && mv "$OUT.tmp" "$OUT"
fi

echo "bench.sh: wrote $OUT (num_cpu=$NCPU)" >&2
go run ./scripts/benchcheck -file "$OUT"
