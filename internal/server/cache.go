package server

import (
	"sync"

	"lambmesh/internal/routing"
)

// routeCache memoizes deterministic route answers within one epoch, keyed
// by (src,dst) linear indices. It is sharded to keep lock contention off
// the query hot path: a shard is picked by a cheap hash of the pair, so
// concurrent queries for different pairs almost never share a lock. The
// cache never invalidates entries — the whole cache is dropped with its
// epoch on swap, which is the only event that changes any answer.
type routeCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 32

type cacheShard struct {
	mu sync.RWMutex
	m  map[pairKey]*cacheEntry
}

type pairKey struct {
	src, dst int64
}

// cacheEntry is immutable once stored: either the found route or the
// reason no route exists.
type cacheEntry struct {
	route  *routing.Route
	reason string
}

func newRouteCache() *routeCache {
	c := &routeCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[pairKey]*cacheEntry)
	}
	return c
}

func (c *routeCache) shard(k pairKey) *cacheShard {
	// Fibonacci-style mix of the pair; shard count is a power of two.
	h := uint64(k.src)*0x9e3779b97f4a7c15 ^ uint64(k.dst)*0xc2b2ae3d27d4eb4f
	return &c.shards[(h>>32)&(cacheShards-1)]
}

func (c *routeCache) get(k pairKey) (*cacheEntry, bool) {
	s := c.shard(k)
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	return e, ok
}

func (c *routeCache) put(k pairKey, e *cacheEntry) {
	s := c.shard(k)
	s.mu.Lock()
	s.m[k] = e
	s.mu.Unlock()
}

// len returns the number of cached pairs (test and metrics helper).
func (c *routeCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
