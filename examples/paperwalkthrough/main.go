// Paperwalkthrough reproduces the worked example of Section 5 of Ho &
// Stockmeyer (IPDPS 2002) end to end: the 12x12 mesh with faults (9,1),
// (11,6), (10,10); the SES partition of Figure 3 (9 sets); the DES
// partition of Figure 4 (7 sets); the one-round reachability matrix of
// Table 1; the two-round matrix R^(2) = RIR of Table 2; and the final lamb
// set {(11,10), (10,11)} found through the weighted-vertex-cover reduction
// of Figure 10.
//
//	go run ./examples/paperwalkthrough
package main

import (
	"fmt"
	"log"
	"sort"

	"lambmesh"
	"lambmesh/internal/bitmat"
	"lambmesh/internal/partition"
)

func main() {
	m, err := lambmesh.NewMesh(12, 12)
	if err != nil {
		log.Fatal(err)
	}
	faults := lambmesh.NewFaultSet(m)
	faults.AddNodes(lambmesh.C(9, 1), lambmesh.C(11, 6), lambmesh.C(10, 10))
	orders := lambmesh.TwoRoundXY()

	res, err := lambmesh.FindLambSet(faults, orders, lambmesh.WithReachability())
	if err != nil {
		log.Fatal(err)
	}
	rc := res.Reach

	sigma := rc.Sigma[0]
	delta := rc.Delta[1]
	rowPerm := permByRep(m, sigma, true)
	colPerm := permByRep(m, delta, false)

	fmt.Println("Figure 3 — SES partition (paper order S1..S9):")
	for i, p := range rowPerm {
		fmt.Printf("  S%d = %s (rep %v, %d nodes)\n",
			i+1, sigma.Sets[p].Rect.StringIn(m), sigma.Sets[p].Rep, sigma.Sets[p].Size())
	}
	fmt.Println("\nFigure 4 — DES partition (paper order D1..D7):")
	for j, p := range colPerm {
		fmt.Printf("  D%d = %s (rep %v, %d nodes)\n",
			j+1, delta.Sets[p].Rect.StringIn(m), delta.Sets[p].Rep, delta.Sets[p].Size())
	}

	fmt.Println("\nTable 1 — one-round reachability matrix R:")
	printMatrix(rc.R[0], rowPerm, colPerm)
	fmt.Println("\nTable 2 — two-round matrix R^(2) = R I R:")
	printMatrix(rc.RK, rowPerm, colPerm)

	fmt.Println("\nRelevant sets (zero rows/columns of R^(2)) feed the bipartite")
	fmt.Println("weighted vertex cover of Figure 10; min-cut solves it exactly.")
	fmt.Printf("cover weight: %d\n", res.Stats.CoverWeight)
	fmt.Printf("lamb set:     %v  (paper: {(11,10), (10,11)})\n", res.Lambs)

	if err := lambmesh.VerifyLambSet(faults, orders, res.Lambs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified against Definition 2.6 via Lemma 5.2")
}

// permByRep orders partition sets the way the paper numbers them: SESs by
// last-coordinate-major representative, DESs by first-coordinate-major.
func permByRep(m *lambmesh.Mesh, p *partition.Partition, rowMajor bool) []int {
	perm := make([]int, p.Len())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ra, rb := p.Sets[perm[a]].Rep, p.Sets[perm[b]].Rep
		if rowMajor {
			return m.Index(ra) < m.Index(rb)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return false
	})
	return perm
}

func printMatrix(mat *bitmat.Matrix, rowPerm, colPerm []int) {
	fmt.Print("      ")
	for j := range colPerm {
		fmt.Printf("D%-2d ", j+1)
	}
	fmt.Println()
	for i, pi := range rowPerm {
		fmt.Printf("  S%-2d ", i+1)
		for _, pj := range colPerm {
			v := 0
			if mat.Get(pi, pj) {
				v = 1
			}
			fmt.Printf("%-3d ", v)
		}
		fmt.Println()
	}
}
