// Package reach implements Find-Reachability (Section 6.2 of Ho &
// Stockmeyer, IPDPS 2002): given SES and DES partitions for each routing
// round, it computes the k-round Boolean reachability matrix
//
//	R^(k) = R_1 I_1 R_2 I_2 ... I_{k-1} R_k
//
// where R_t(i,j) says whether the representative of the t-th round's i-th
// SES can 1-round-reach the representative of its j-th DES, and I_t(j,i)
// says whether the t-th round's j-th DES intersects the (t+1)-st round's
// i-th SES. By Lemma 4.1 and (the generalization of) Lemma 5.1,
// R^(k)(i,j) = 1 iff every node of SES S_{1,i} can (k,F,pi)-reach every node
// of DES D_{k,j}.
//
// Everything is O(poly(d, k, f)) — independent of the mesh size.
package reach

import (
	"fmt"
	"time"

	"lambmesh/internal/bitmat"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/partition"
	"lambmesh/internal/routing"
)

// Reachability carries the partitions and matrices of Find-Reachability.
// Sigma[0] and Delta[k-1] are the partitions the WVC reduction works with.
type Reachability struct {
	Orders routing.MultiOrder
	Oracle *routing.Oracle
	// Sigma[t] / Delta[t] are the SES / DES partitions for round t.
	Sigma []*partition.Partition
	Delta []*partition.Partition
	// R[t] is the 1-round reachability matrix of round t
	// (|Sigma[t]| x |Delta[t]|).
	R []*bitmat.Matrix
	// I[t] is the intersection matrix between Delta[t] and Sigma[t+1]
	// (|Delta[t]| x |Sigma[t+1]|), for t = 0..k-2.
	I []*bitmat.Matrix
	// RK is the k-round product R^(k) (|Sigma[0]| x |Delta[k-1]|).
	RK *bitmat.Matrix
}

// Scratch owns the reusable buffers of a Find-Reachability computation: the
// partition arenas and a pool of bit matrices (R_t, I_t, and the chain
// double-buffer behind R^(k)) recycled across rounds and across calls. In
// steady state a ComputeScratch call allocates only the small Reachability
// header and its slices — the lamb pipeline's per-epoch cost stops scaling
// with allocator traffic.
//
// Ownership contract: a Reachability returned by ComputeScratch (or
// ComputeWithSweepScratch) references scratch-owned memory and stays valid
// only until the next Compute call with the same Scratch. Callers that
// retain one across calls must first call Detach, which hands the current
// buffers over to the garbage collector. A Scratch serializes the rounds it
// builds and is not safe for concurrent use; the zero value is ready.
type Scratch struct {
	// Part holds the SES/DES arenas; exported so callers composing larger
	// pipelines (core.Solver) can Detach or inspect it directly.
	Part partition.Scratch

	// PartitionNanos records how much of the last ComputeScratch (or
	// ComputeWithSweepScratch) call went into building SES/DES partitions,
	// so callers can split recompute latency into phases. Only maintained
	// on the scratch-sharing path (a nil Scratch has nowhere to record it).
	PartitionNanos int64

	pool    []*bitmat.Matrix
	used    int
	chain   [2]*bitmat.Matrix
	chainMs []*bitmat.Matrix
	sweep   [][]bool

	// Steady-state reuse for the shared compute path: the fault-index
	// oracle is rebuilt in place, and the Reachability header (plus its
	// Sigma/Delta/R/I slices) is recycled across calls. Both are forgotten
	// by Detach so retained results stay valid.
	oracle *routing.Oracle
	rcHdr  *Reachability
	// Round/pair dedup working state (replaces the map[string] caches of
	// the scratch-free path; k is tiny, so linear Order comparison wins).
	roundOf []int
	firstR  []int
	iOf     []int
	firstI  []int
}

func (s *Scratch) reset() {
	s.Part.Reset()
	s.used = 0
	s.PartitionNanos = 0
}

// Detach forgets every buffer the Scratch owns, so Reachability values
// previously returned with it stay valid indefinitely. The next call starts
// from fresh allocations.
func (s *Scratch) Detach() {
	s.Part.Detach()
	s.pool, s.used = nil, 0
	s.chain = [2]*bitmat.Matrix{}
	s.chainMs = nil
	s.sweep = nil
	s.oracle = nil
	s.rcHdr = nil
}

// reuseOracle rebuilds the scratch-owned oracle for f (allocating it on
// first use or after Detach).
func (s *Scratch) reuseOracle(f *mesh.FaultSet) *routing.Oracle {
	if s.oracle == nil {
		s.oracle = routing.NewOracle(f)
		return s.oracle
	}
	s.oracle.Rebuild(f)
	return s.oracle
}

// header recycles the scratch-owned Reachability for a k-round computation,
// with every slice resized in place and zeroed.
func (s *Scratch) header(orders routing.MultiOrder, o *routing.Oracle, k int) *Reachability {
	rc := s.rcHdr
	if rc == nil {
		rc = &Reachability{}
		s.rcHdr = rc
	}
	rc.Orders = orders
	rc.Oracle = o
	rc.Sigma = resizeParts(rc.Sigma, k)
	rc.Delta = resizeParts(rc.Delta, k)
	rc.R = resizeMats(rc.R, k)
	rc.I = resizeMats(rc.I, k-1)
	rc.RK = nil
	return rc
}

func resizeParts(p []*partition.Partition, n int) []*partition.Partition {
	if cap(p) < n {
		return make([]*partition.Partition, n)
	}
	p = p[:n]
	for i := range p {
		p[i] = nil
	}
	return p
}

func resizeMats(ms []*bitmat.Matrix, n int) []*bitmat.Matrix {
	if cap(ms) < n {
		return make([]*bitmat.Matrix, n)
	}
	ms = ms[:n]
	for i := range ms {
		ms[i] = nil
	}
	return ms
}

func resizeInts(xs []int, n int) []int {
	if cap(xs) < n {
		return make([]int, n)
	}
	return xs[:n]
}


// mat returns an all-zero rows x cols matrix from the pool, growing the pool
// on first use of each slot.
func (s *Scratch) mat(rows, cols int) *bitmat.Matrix {
	if s.used < len(s.pool) {
		m := s.pool[s.used].Reset(rows, cols)
		s.pool[s.used] = m
		s.used++
		return m
	}
	m := bitmat.New(rows, cols)
	s.pool = append(s.pool, m)
	s.used++
	return m
}

// Compute runs Find-Reachability for fault set f and the k-round ordering
// on all CPUs. Identical per-round orderings share partitions and matrices,
// as the paper notes (R_1 = R_2 = ... and I_1 = I_2 = ... for a uniform
// ordering).
func Compute(f *mesh.FaultSet, orders routing.MultiOrder) (*Reachability, error) {
	return ComputeWorkers(f, orders, 0)
}

// ComputeWorkers is Compute with an explicit worker-pool size (<= 0 means
// NumCPU). Three layers parallelize: distinct rounds of a non-uniform
// ordering build their partitions and R_t concurrently, each R_t and I_t
// fill is row-parallel (the routing.Oracle is read-only after NewOracle, so
// concurrent ReachOne queries are safe), and the R^(k) chain product is
// row-block parallel. Every parallel loop writes disjoint matrix rows, so
// the result is bit-identical for every worker count.
func ComputeWorkers(f *mesh.FaultSet, orders routing.MultiOrder, workers int) (*Reachability, error) {
	return ComputeScratch(f, orders, workers, nil)
}

// ComputeScratch is ComputeWorkers drawing every buffer from s. A nil s
// means "no reuse" and reproduces ComputeWorkers exactly. With a non-nil s
// the distinct rounds of a non-uniform ordering are built serially (they
// share the partition arenas) — the row-parallel matrix fills and the chain
// product keep their full parallelism, and results remain bit-identical to
// the scratch-free path for every worker count.
func ComputeScratch(f *mesh.FaultSet, orders routing.MultiOrder, workers int, s *Scratch) (*Reachability, error) {
	if err := orders.Validate(f.Mesh().Dims()); err != nil {
		return nil, err
	}
	workers = par.Clamp(workers)
	if s != nil {
		return s.compute(f, orders, workers)
	}

	o := routing.NewOracle(f)
	k := orders.Rounds()
	rc := &Reachability{
		Orders: orders,
		Oracle: o,
		Sigma:  make([]*partition.Partition, k),
		Delta:  make([]*partition.Partition, k),
		R:      make([]*bitmat.Matrix, k),
	}

	type roundData struct {
		round int // first round using this ordering
		sigma *partition.Partition
		delta *partition.Partition
		r     *bitmat.Matrix
		err   error
	}
	cache := make(map[string]*roundData)
	var distinct []*roundData // first-appearance order
	for t := 0; t < k; t++ {
		key := orders[t].String()
		if _, ok := cache[key]; !ok {
			rd := &roundData{round: t}
			cache[key] = rd
			distinct = append(distinct, rd)
		}
	}
	// Distinct rounds of a non-uniform ordering build their partitions and
	// R_t concurrently; each has its own partition scratch.
	par.Do(workers, len(distinct), func(i int) {
		rd := distinct[i]
		ps := new(partition.Scratch)
		pi := orders[rd.round]
		sigma, err := ps.SES(f, pi)
		if err != nil {
			rd.err = err
			return
		}
		delta, err := ps.DES(f, pi)
		if err != nil {
			rd.err = err
			return
		}
		rd.sigma = sigma
		rd.delta = delta
		rd.r = bitmat.New(sigma.Len(), delta.Len())
		oneRoundMatrix(rd.r, o, pi, sigma, delta, workers)
	})
	for _, rd := range distinct {
		if rd.err != nil {
			return nil, rd.err
		}
	}
	for t := 0; t < k; t++ {
		rd := cache[orders[t].String()]
		rc.Sigma[t] = rd.sigma
		rc.Delta[t] = rd.delta
		rc.R[t] = rd.r
	}

	rc.I = make([]*bitmat.Matrix, k-1)
	iidx := make(map[[2]string]int) // pair key -> index into idistinct
	var idistinct []int             // first round t using each distinct pair
	iof := make([]int, k-1)
	for t := 0; t < k-1; t++ {
		key := [2]string{orders[t].String(), orders[t+1].String()}
		di, ok := iidx[key]
		if !ok {
			di = len(idistinct)
			iidx[key] = di
			idistinct = append(idistinct, t)
		}
		iof[t] = di
	}
	ims := make([]*bitmat.Matrix, len(idistinct))
	par.Do(workers, len(idistinct), func(i int) {
		t := idistinct[i]
		ims[i] = bitmat.New(rc.Delta[t].Len(), rc.Sigma[t+1].Len())
		intersectionMatrix(ims[i], rc.Delta[t], rc.Sigma[t+1], workers)
	})
	for t := 0; t < k-1; t++ {
		rc.I[t] = ims[iof[t]]
	}

	// R^(k) = R_1 I_1 R_2 ... I_{k-1} R_k.
	chainMs := make([]*bitmat.Matrix, 0, 2*k-1)
	chainMs = append(chainMs, rc.R[0])
	for t := 0; t < k-1; t++ {
		chainMs = append(chainMs, rc.I[t], rc.R[t+1])
	}
	rc.RK = bitmat.MulChainParallel(workers, chainMs...)
	return rc, nil
}

// compute is the scratch-sharing form of ComputeScratch: straight-line,
// serial round construction (rounds share the partition arenas), with every
// buffer — including the oracle's fault index, the Reachability header, and
// the dedup working state — drawn from the Scratch. In steady state the
// whole call performs zero heap allocations at workers=1; results stay
// bit-identical to the scratch-free path at every worker count.
func (s *Scratch) compute(f *mesh.FaultSet, orders routing.MultiOrder, workers int) (*Reachability, error) {
	s.reset()
	o := s.reuseOracle(f)
	k := orders.Rounds()
	rc := s.header(orders, o, k)

	// Deduplicate identical per-round orderings (R_1 = R_2 = ... for a
	// uniform ordering, as the paper notes). k is at most a handful, so a
	// linear scan replaces the string-keyed map of the scratch-free path.
	s.roundOf = resizeInts(s.roundOf, k)
	s.firstR = s.firstR[:0]
	for t := 0; t < k; t++ {
		di := -1
		for j, ft := range s.firstR {
			if orders[t].Equal(orders[ft]) {
				di = j
				break
			}
		}
		if di < 0 {
			di = len(s.firstR)
			s.firstR = append(s.firstR, t)
		}
		s.roundOf[t] = di
	}
	for j, ft := range s.firstR {
		pi := orders[ft]
		partStart := time.Now()
		sigma, err := s.Part.SES(f, pi)
		if err != nil {
			return nil, err
		}
		delta, err := s.Part.DES(f, pi)
		if err != nil {
			return nil, err
		}
		s.PartitionNanos += int64(time.Since(partStart))
		r := s.mat(sigma.Len(), delta.Len())
		oneRoundMatrix(r, o, pi, sigma, delta, workers)
		for t := 0; t < k; t++ {
			if s.roundOf[t] == j {
				rc.Sigma[t] = sigma
				rc.Delta[t] = delta
				rc.R[t] = r
			}
		}
	}

	// Intersection matrices, deduplicated by (ordering_t, ordering_{t+1})
	// pair the same way.
	s.iOf = resizeInts(s.iOf, k-1)
	s.firstI = s.firstI[:0]
	for t := 0; t < k-1; t++ {
		di := -1
		for j, ft := range s.firstI {
			if orders[t].Equal(orders[ft]) && orders[t+1].Equal(orders[ft+1]) {
				di = j
				break
			}
		}
		if di < 0 {
			di = len(s.firstI)
			s.firstI = append(s.firstI, t)
		}
		s.iOf[t] = di
	}
	for j, ft := range s.firstI {
		im := s.mat(rc.Delta[ft].Len(), rc.Sigma[ft+1].Len())
		intersectionMatrix(im, rc.Delta[ft], rc.Sigma[ft+1], workers)
		for t := 0; t < k-1; t++ {
			if s.iOf[t] == j {
				rc.I[t] = im
			}
		}
	}

	// R^(k) = R_1 I_1 R_2 ... I_{k-1} R_k.
	chainMs := s.chainMs[:0]
	chainMs = append(chainMs, rc.R[0])
	for t := 0; t < k-1; t++ {
		chainMs = append(chainMs, rc.I[t], rc.R[t+1])
	}
	s.chainMs = chainMs
	rc.RK = bitmat.MulChainScratch(workers, &s.chain, chainMs...)
	return rc, nil
}

// oneRoundMatrix fills r (all-zero, |sigma| x |delta|) with R_t by querying
// the oracle on representatives (Lemma 4.1), one row of SESs per worker at a
// time.
func oneRoundMatrix(r *bitmat.Matrix, o *routing.Oracle, pi routing.Order, sigma, delta *partition.Partition, workers int) {
	if workers <= 1 {
		// Serial fast path: par.Do's closure escapes and would cost a heap
		// allocation per matrix even when it runs inline.
		for i := range sigma.Sets {
			oneRoundRow(r, o, pi, sigma, delta, i)
		}
		return
	}
	par.Do(workers, sigma.Len(), func(i int) {
		oneRoundRow(r, o, pi, sigma, delta, i)
	})
}

func oneRoundRow(r *bitmat.Matrix, o *routing.Oracle, pi routing.Order, sigma, delta *partition.Partition, i int) {
	s := sigma.Sets[i]
	for j, d := range delta.Sets {
		if o.ReachOne(pi, s.Rep, d.Rep) {
			r.Set(i, j)
		}
	}
}

// intersectionMatrix fills im (all-zero, |delta| x |sigma|) with I_t:
// I(j,i) = 1 iff D_j and S_i share a node. Each test is O(d) on the
// rectangular abbreviations; rows are filled in parallel.
func intersectionMatrix(im *bitmat.Matrix, delta, sigma *partition.Partition, workers int) {
	if workers <= 1 {
		for j := range delta.Sets {
			intersectionRow(im, delta, sigma, j)
		}
		return
	}
	par.Do(workers, delta.Len(), func(j int) {
		intersectionRow(im, delta, sigma, j)
	})
}

func intersectionRow(im *bitmat.Matrix, delta, sigma *partition.Partition, j int) {
	d := delta.Sets[j]
	for i, s := range sigma.Sets {
		if d.Rect.Intersects(s.Rect) {
			im.Set(j, i)
		}
	}
}

// ComputeWithSweep is the footnote-7 alternative to Compute: identical
// partitions and R^(k) semantics, but each row of R^(k) is filled by
// growing the k-round reachable set from the SES representative with the
// O(dN)-per-round sweep, instead of by matrix products. Total time
// O(|Sigma| k d N) = O(k d^2 f N): for f large relative to N this beats the
// O(k d^3 f^3) matrix path. The per-round R and I matrices are not
// materialized (left nil). Meshes only. Runs on all CPUs.
func ComputeWithSweep(f *mesh.FaultSet, orders routing.MultiOrder) (*Reachability, error) {
	return ComputeWithSweepWorkers(f, orders, 0)
}

// ComputeWithSweepWorkers is ComputeWithSweep with an explicit worker-pool
// size (<= 0 means NumCPU): each SES representative's k-round sweep is an
// independent read-only traversal of the oracle filling its own row of
// R^(k), so rows are distributed over the pool with no effect on the
// result.
func ComputeWithSweepWorkers(f *mesh.FaultSet, orders routing.MultiOrder, workers int) (*Reachability, error) {
	return ComputeWithSweepScratch(f, orders, workers, nil)
}

// ComputeWithSweepScratch is the Scratch-drawing form of
// ComputeWithSweepWorkers (nil s means "no reuse"). Each worker block sweeps
// through one reusable node-set buffer, so in steady state the only per-call
// allocations are the Reachability header and the oracle's fault index.
func ComputeWithSweepScratch(f *mesh.FaultSet, orders routing.MultiOrder, workers int, s *Scratch) (*Reachability, error) {
	if err := orders.Validate(f.Mesh().Dims()); err != nil {
		return nil, err
	}
	if f.Mesh().Torus() {
		return nil, fmt.Errorf("reach: the sweep method requires a mesh")
	}
	workers = par.Clamp(workers)
	shared := s != nil
	k := orders.Rounds()
	var o *routing.Oracle
	var rc *Reachability
	ps := new(partition.Scratch)
	if shared {
		s.reset()
		o = s.reuseOracle(f)
		rc = s.header(orders, o, k)
		ps = &s.Part
	} else {
		o = routing.NewOracle(f)
		rc = &Reachability{
			Orders: orders,
			Oracle: o,
			Sigma:  make([]*partition.Partition, k),
			Delta:  make([]*partition.Partition, k),
		}
	}
	partStart := time.Now()
	sigma, err := ps.SES(f, orders[0])
	if err != nil {
		return nil, err
	}
	delta, err := ps.DES(f, orders[k-1])
	if err != nil {
		return nil, err
	}
	if shared {
		s.PartitionNanos = int64(time.Since(partStart))
	}
	for t := 0; t < k; t++ {
		rc.Sigma[t] = sigma // only Sigma[0] and Delta[k-1] are meaningful here
		rc.Delta[t] = delta
	}
	m := f.Mesh()
	var rk *bitmat.Matrix
	if shared {
		rk = s.mat(sigma.Len(), delta.Len())
	} else {
		rk = bitmat.New(sigma.Len(), delta.Len())
	}
	// Rows are distributed in contiguous blocks, one reusable sweep buffer
	// per block (par.Do would not tell us which worker runs an index, so the
	// blocking is computed here). Any blocking yields the same bits: rows are
	// disjoint.
	rows := sigma.Len()
	nb := workers
	if nb > rows {
		nb = rows
	}
	if nb > 0 {
		chunk := (rows + nb - 1) / nb
		if shared {
			for len(s.sweep) < nb {
				s.sweep = append(s.sweep, nil)
			}
		}
		par.Do(workers, nb, func(b int) {
			lo, hi := b*chunk, (b+1)*chunk
			if hi > rows {
				hi = rows
			}
			var buf []bool
			if shared {
				buf = s.sweep[b]
			}
			if len(buf) != int(m.Nodes()) {
				buf = make([]bool, m.Nodes())
				if shared {
					s.sweep[b] = buf
				}
			}
			for i := lo; i < hi; i++ {
				set := o.ReachKSetSweepInto(orders, sigma.Sets[i].Rep, buf)
				for j, d := range delta.Sets {
					if set[m.Index(d.Rep)] {
						rk.Set(i, j)
					}
				}
			}
		})
	}
	rc.RK = rk
	return rc, nil
}

// ReferenceRK recomputes R^(k) by the O(N^2) spanning-tree method the paper
// describes as the straightforward alternative (Section 4): a k-round
// reachable set is grown from each SES representative. Tests use it to
// cross-check the matrix-product result on small meshes.
func ReferenceRK(o *routing.Oracle, orders routing.MultiOrder, sigma, delta *partition.Partition) *bitmat.Matrix {
	m := o.Mesh()
	rk := bitmat.New(sigma.Len(), delta.Len())
	for i, s := range sigma.Sets {
		set := o.ReachKSet(orders, s.Rep)
		for j, d := range delta.Sets {
			if set[m.Index(d.Rep)] {
				rk.Set(i, j)
			}
		}
	}
	return rk
}
