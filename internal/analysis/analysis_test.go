package analysis

import (
	"math"
	"math/rand"
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/partition"
	"lambmesh/internal/routing"
)

// The paper computes the Theorem 3.1 bound for n = f = 32 as 2698.
func TestOneRoundLowerBoundPaperValue(t *testing.T) {
	got := OneRoundLowerBound(32, 32)
	if math.Floor(got) != 2698 {
		t.Errorf("OneRoundLowerBound(32,32) = %v, want floor 2698", got)
	}
	// Monotone growth in f while (n-f)^2/4 > 1, i.e. f <= n-2.
	prev := OneRoundLowerBound(32, 1)
	for f := 2; f <= 30; f++ {
		cur := OneRoundLowerBound(32, f)
		if cur < prev {
			t.Errorf("bound decreased at f=%d", f)
		}
		prev = cur
	}
	// Section 3: as f goes 1 -> n the bound goes ~n^2/4 -> ~n^3/12.
	if low := OneRoundLowerBound(32, 1); math.Abs(low-(32*32/4.0-32*1/4.0+1/12.0-1)) > 1e-9 {
		t.Errorf("f=1 bound = %v", low)
	}
}

func TestPartitionBound(t *testing.T) {
	// d=1: B = f+1.
	if got := PartitionBound([]int{10}, 3); got != 4 {
		t.Errorf("1D bound = %d, want 4", got)
	}
	// Small f: B = (2d-1)f+1.
	if got := PartitionBound([]int{9, 9}, 2); got != 7 {
		t.Errorf("2D bound = %d, want 7", got)
	}
	// M_3(32), f = 983 (3% of 32768): terms min(1966, 32*31)=992,
	// min(1966,31)=31, so B = 992 + 31 + 984 = 2007.
	if got := PartitionBound([]int{32, 32, 32}, 983); got != 2007 {
		t.Errorf("M_3(32) f=983 bound = %d, want 2007", got)
	}
	// The simple bound dominates.
	for _, f := range []int{0, 1, 5, 100, 983} {
		if PartitionBound([]int{32, 32, 32}, f) > SimplePartitionBound(3, f) {
			t.Errorf("B(3,%d) exceeds (2d-1)f+1", f)
		}
	}
}

// The algorithm's partition size never exceeds B(d,f) on random inputs, and
// Proposition 6.5's fault sets meet B(d,f) exactly.
func TestProp65Tightness(t *testing.T) {
	cases := []struct{ d, n, f int }{
		{1, 9, 3},
		{2, 5, 2}, {2, 5, 6}, {2, 9, 4}, {2, 9, 20},
		{3, 3, 1}, {3, 3, 4}, {3, 3, 9}, {3, 5, 12}, {3, 5, 40},
	}
	for _, c := range cases {
		fs, err := Prop65FaultSet(c.d, c.n, c.f)
		if err != nil {
			t.Fatalf("d=%d n=%d f=%d: %v", c.d, c.n, c.f, err)
		}
		if fs.NumNodeFaults() != c.f {
			t.Fatalf("d=%d n=%d f=%d: placed %d faults", c.d, c.n, c.f, fs.NumNodeFaults())
		}
		p, err := partition.SES(fs, routing.Ascending(c.d))
		if err != nil {
			t.Fatal(err)
		}
		want := PartitionBound(fs.Mesh().Widths(), c.f)
		if int64(p.Len()) != want {
			t.Errorf("d=%d n=%d f=%d: partition size %d, want B = %d", c.d, c.n, c.f, p.Len(), want)
		}
		if err := partition.Validate(p, routing.NewOracle(fs)); err != nil {
			t.Errorf("d=%d n=%d f=%d: %v", c.d, c.n, c.f, err)
		}
	}
}

func TestProp65Validation(t *testing.T) {
	if _, err := Prop65FaultSet(2, 4, 1); err == nil {
		t.Error("even n should fail")
	}
	if _, err := Prop65FaultSet(2, 5, 11); err == nil {
		t.Error("f beyond n(n-1)/2 should fail")
	}
}

func TestRandomPartitionRespectsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := mesh.MustNew(7, 7, 7)
		nf := 1 + rng.Intn(30)
		fs := mesh.RandomNodeFaults(m, nf, rng)
		p, err := partition.SES(fs, routing.Ascending(3))
		if err != nil {
			t.Fatal(err)
		}
		if int64(p.Len()) > PartitionBound(m.Widths(), nf) {
			t.Errorf("trial %d: %d sets > B = %d", trial, p.Len(), PartitionBound(m.Widths(), nf))
		}
	}
}

func TestDiagonalFaults(t *testing.T) {
	fs, err := DiagonalFaults(3, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []partition.Kind{partition.Source, partition.Destination} {
		var p *partition.Partition
		if kind == partition.Source {
			p, err = partition.SES(fs, routing.Ascending(3))
		} else {
			p, err = partition.DES(fs, routing.Ascending(3))
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := (2*3-1)*4 + 1; p.Len() != want {
			t.Errorf("%v: %d sets, want %d", kind, p.Len(), want)
		}
	}
	if _, err := DiagonalFaults(2, 5, 3); err == nil {
		t.Error("f > (n-1)/2 should fail")
	}
}

// The Figure 15 family behaves exactly as Section 6.3.1 predicts for
// several m: Lamb1 returns (4m-1)n lambs, the optimum is 2mn.
func TestFigure15Family(t *testing.T) {
	for m := 1; m <= 3; m++ {
		fig, err := NewFigure15(m)
		if err != nil {
			t.Fatal(err)
		}
		orders := routing.UniformAscending(2, 2)
		res, err := core.Lamb1(fig.Faults, orders)
		if err != nil {
			t.Fatal(err)
		}
		if int64(res.NumLambs()) != fig.Lamb1Lambs {
			t.Errorf("m=%d: Lamb1 = %d, want %d", m, res.NumLambs(), fig.Lamb1Lambs)
		}
		if err := core.VerifyLambSet(fig.Faults, orders, res.Lambs); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
		// Ratio approaches 2 from below: 2 - 1/(2m).
		ratio := float64(fig.Lamb1Lambs) / float64(fig.OptimalLambs)
		want := 2 - 1/(2*float64(m))
		if math.Abs(ratio-want) > 1e-9 {
			t.Errorf("m=%d: ratio %v, want %v", m, ratio, want)
		}
	}
	if _, err := NewFigure15(0); err == nil {
		t.Error("m=0 should fail")
	}
}

// The exact solver confirms the Figure 15 optimum for m=1 (checked in core
// tests); here check the optimum claim structurally: sacrificing the two
// outer components is a valid lamb set of size 2mn.
func TestFigure15OptimalSetIsValid(t *testing.T) {
	fig, err := NewFigure15(2) // n=9
	if err != nil {
		t.Fatal(err)
	}
	var lambs []mesh.Coord
	n, m := fig.N, fig.M
	for x := 0; x < n; x++ {
		for y := 0; y < m; y++ {
			lambs = append(lambs, mesh.C(x, y))
		}
		for y := n - m; y < n; y++ {
			lambs = append(lambs, mesh.C(x, y))
		}
	}
	if int64(len(lambs)) != fig.OptimalLambs {
		t.Fatalf("constructed %d lambs, want %d", len(lambs), fig.OptimalLambs)
	}
	if err := core.VerifyLambSet(fig.Faults, routing.UniformAscending(2, 2), lambs); err != nil {
		t.Error(err)
	}
}

// The empirical per-instance bound must always hold against the true
// one-round optimum on small instances, and should exceed the analytic
// expectation on average for larger ones.
func TestOneRoundEmpiricalLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orders := routing.UniformAscending(3, 1)
	for trial := 0; trial < 6; trial++ {
		m := mesh.MustNew(4, 4, 4)
		fs := mesh.RandomNodeFaults(m, 2, rng)
		lb := OneRoundEmpiricalLowerBound(fs)
		res, err := core.ExactLamb(fs, orders)
		if err != nil {
			t.Fatal(err)
		}
		if lb > int64(res.NumLambs()) {
			t.Errorf("trial %d: empirical bound %d exceeds optimum %d (faults %v)",
				trial, lb, res.NumLambs(), fs.SortedNodeFaults())
		}
	}
}

// Sanity on the paper's n = f = 32 scenario: the empirical bound averaged
// over a few trials should comfortably exceed the analytic 2698 (the paper
// observed ~5750).
func TestOneRoundBoundsScale(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := mesh.MustNew(32, 32, 32)
	var sum int64
	const trials = 20
	for i := 0; i < trials; i++ {
		fs := mesh.RandomNodeFaults(m, 32, rng)
		sum += OneRoundEmpiricalLowerBound(fs)
	}
	avg := float64(sum) / trials
	if avg < OneRoundLowerBound(32, 32) {
		t.Errorf("empirical average %v below analytic bound %v", avg, OneRoundLowerBound(32, 32))
	}
	if avg < 4500 || avg > 7500 {
		t.Errorf("empirical average %v far from the paper's ~5750", avg)
	}
}

// The link-fault variant of Proposition 6.5 also meets B(d,f) exactly.
func TestProp65LinkVariant(t *testing.T) {
	cases := []struct{ d, n, f int }{
		{1, 9, 3},
		{2, 5, 2}, {2, 9, 4}, {2, 9, 20},
		{3, 3, 4}, {3, 5, 12},
	}
	for _, c := range cases {
		fs, err := Prop65LinkFaultSet(c.d, c.n, c.f)
		if err != nil {
			t.Fatalf("d=%d n=%d f=%d: %v", c.d, c.n, c.f, err)
		}
		if fs.NumLinkFaults() != c.f || fs.NumNodeFaults() != 0 {
			t.Fatalf("d=%d n=%d f=%d: %d link, %d node faults", c.d, c.n, c.f, fs.NumLinkFaults(), fs.NumNodeFaults())
		}
		p, err := partition.SES(fs, routing.Ascending(c.d))
		if err != nil {
			t.Fatal(err)
		}
		want := PartitionBound(fs.Mesh().Widths(), c.f)
		if int64(p.Len()) != want {
			t.Errorf("d=%d n=%d f=%d: link-variant partition size %d, want B = %d", c.d, c.n, c.f, p.Len(), want)
		}
		if err := partition.Validate(p, routing.NewOracle(fs)); err != nil {
			t.Errorf("d=%d n=%d f=%d: %v", c.d, c.n, c.f, err)
		}
	}
	if _, err := Prop65LinkFaultSet(2, 4, 1); err == nil {
		t.Error("even n should fail")
	}
	if _, err := Prop65LinkFaultSet(1, 5, 3); err == nil {
		t.Error("f beyond the cap should fail")
	}
}
