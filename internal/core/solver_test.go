package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// A Solver reused across sequential fault sets of different sizes must emit
// lamb sets byte-identical to the one-shot functions — scratch reuse changes
// where intermediates live, never what they hold. The sizes both grow and
// shrink so the buffers see regrowth and stale-capacity reuse.
func TestSolverReuseByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	type workload struct {
		m      *mesh.Mesh
		faults int
		k      int
	}
	loads := []workload{
		{mesh.MustNew(10, 10), 5, 2},
		{mesh.MustNew(16, 16), 40, 2},
		{mesh.MustNew(8, 8, 8), 25, 2},
		{mesh.MustNew(12, 12), 3, 3},
	}
	// The exact WVC solver is exponential; keep its instances tiny (still
	// three different sizes, growing then shrinking).
	exactLoads := []workload{
		{mesh.MustNew(10, 10), 4, 2},
		{mesh.MustNew(12, 12), 8, 2},
		{mesh.MustNew(8, 8), 3, 2},
	}
	type algo struct {
		name    string
		loads   []workload
		solver  func(s *Solver, f *mesh.FaultSet, orders routing.MultiOrder) (*Result, error)
		oneShot func(f *mesh.FaultSet, orders routing.MultiOrder) (*Result, error)
	}
	algos := []algo{
		{"lamb1", loads,
			func(s *Solver, f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) { return s.Lamb1(f, o) },
			func(f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) { return Lamb1(f, o) }},
		{"lamb1-sweep", loads,
			func(s *Solver, f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) {
				return s.Lamb1(f, o, WithSweepReachability())
			},
			func(f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) {
				return Lamb1(f, o, WithSweepReachability())
			}},
		{"lamb2", loads,
			func(s *Solver, f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) {
				return s.Lamb2(f, o, ApproxWVC)
			},
			func(f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) { return Lamb2(f, o, ApproxWVC) }},
		{"exact", exactLoads,
			func(s *Solver, f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) { return s.ExactLamb(f, o) },
			func(f *mesh.FaultSet, o routing.MultiOrder) (*Result, error) { return ExactLamb(f, o) }},
	}
	for _, a := range algos {
		s := NewSolver()
		for li, load := range a.loads {
			f := mesh.RandomNodeFaults(load.m, load.faults, rng)
			orders := routing.UniformAscending(load.m.Dims(), load.k)
			want, err := a.oneShot(f, orders)
			if err != nil {
				t.Fatalf("%s load %d one-shot: %v", a.name, li, err)
			}
			got, err := a.solver(s, f, orders)
			if err != nil {
				t.Fatalf("%s load %d solver: %v", a.name, li, err)
			}
			if !bytes.Equal(lambBytes(got), lambBytes(want)) {
				t.Errorf("%s load %d: reused solver diverged from one-shot:\n%s\nvs\n%s",
					a.name, li, lambBytes(got), lambBytes(want))
			}
		}
	}
}

// Results must own their memory: a lamb set computed earlier survives the
// solver being reused for a larger computation, including the retained
// Reachability of WithReachability (kept alive by detaching the scratch).
func TestSolverResultsSurviveReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := NewSolver()
	m := mesh.MustNew(12, 12)
	orders := routing.UniformAscending(2, 2)
	f1 := mesh.RandomNodeFaults(m, 6, rng)
	first, err := s.Lamb1(f1, orders, WithReachability())
	if err != nil {
		t.Fatal(err)
	}
	snap := lambBytes(first)
	if first.Reach == nil || first.Reach.RK == nil {
		t.Fatal("WithReachability returned no reachability")
	}
	rkOnes := first.Reach.RK.Ones()
	sesReps := make([]string, len(first.Reach.Sigma[0].Sets))
	for i, set := range first.Reach.Sigma[0].Sets {
		sesReps[i] = set.Rep.String()
	}

	// Churn the scratch with bigger and then smaller computations.
	for _, n := range []int{60, 4, 35} {
		f := mesh.RandomNodeFaults(mesh.MustNew(16, 16), n, rng)
		if _, err := s.Lamb1(f, routing.UniformAscending(2, 2)); err != nil {
			t.Fatal(err)
		}
	}

	if !bytes.Equal(lambBytes(first), snap) {
		t.Error("first result's lamb set changed after solver reuse")
	}
	if got := first.Reach.RK.Ones(); got != rkOnes {
		t.Errorf("retained RK changed after solver reuse: %d ones, was %d", got, rkOnes)
	}
	for i, set := range first.Reach.Sigma[0].Sets {
		if set.Rep.String() != sesReps[i] {
			t.Errorf("retained SES rep %d changed after solver reuse: %v, was %s", i, set.Rep, sesReps[i])
		}
	}
}

// The Reconfigurer's lazily created internal solver (the lambd recompute
// path) must evolve exactly as a fresh one-shot computation of each epoch's
// cumulative fault set.
func TestReconfigurerSolverMatchesOneShot(t *testing.T) {
	m := mesh.MustNew(12, 12)
	orders := routing.UniformAscending(2, 2)
	rec, err := NewReconfigurer(m, orders, true)
	if err != nil {
		t.Fatal(err)
	}
	cum := mesh.NewFaultSet(m)
	batches := [][]mesh.Coord{
		{mesh.C(3, 3), mesh.C(4, 4)},
		{mesh.C(8, 2), mesh.C(9, 9), mesh.C(1, 10), mesh.C(10, 1)},
		{mesh.C(6, 6)},
		{mesh.C(6, 7), mesh.C(7, 6), mesh.C(2, 2), mesh.C(11, 11), mesh.C(0, 5)},
	}
	for ep, batch := range batches {
		res, err := rec.AddFaults(batch, nil)
		if err != nil {
			t.Fatalf("epoch %d: %v", ep, err)
		}
		for _, c := range batch {
			cum.AddNode(c)
		}
		want, err := Lamb1(cum, orders)
		if err != nil {
			t.Fatalf("epoch %d one-shot: %v", ep, err)
		}
		if !bytes.Equal(lambBytes(res), lambBytes(want)) {
			t.Errorf("epoch %d: Reconfigurer solver diverged from one-shot", ep)
		}
	}
}

// One solver per goroutine is the documented concurrency model; under -race
// this pins that distinct solvers share nothing mutable (they do share the
// fault set and mesh, which are read-only during the computation).
func TestSolversPerGoroutineRaceClean(t *testing.T) {
	m := mesh.MustNew(14, 14)
	f := mesh.RandomNodeFaults(m, 20, rand.New(rand.NewSource(41)))
	orders := routing.UniformAscending(2, 2)
	want, err := Lamb1(f, orders)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := lambBytes(want)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	diverged := make([]bool, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewSolver()
			for i := 0; i < 3; i++ {
				res, err := s.Lamb1(f, orders)
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(lambBytes(res), wantBytes) {
					diverged[g] = true
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		if errs[g] != nil {
			t.Errorf("goroutine %d: %v", g, errs[g])
		}
		if diverged[g] {
			t.Errorf("goroutine %d: lamb set diverged", g)
		}
	}
}
