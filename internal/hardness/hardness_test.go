package hardness

import (
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// checkProperties machine-verifies reachability properties 1-3 of
// Section 9 for a built construction.
func checkProperties(t *testing.T, c *Construction) {
	t.Helper()
	o := routing.NewOracle(c.Faults)
	orders := routing.UniformAscending(3, 2)
	m := c.Mesh

	reach2 := func(v mesh.Coord) []bool { return o.ReachKSet(orders, v) }

	// Property 1: columns of non-adjacent vertices fully 2-reach each
	// other, in both directions.
	for i := 0; i < c.NumVertices; i++ {
		for j := 0; j < c.NumVertices; j++ {
			if i == j || c.HasEdge(i, j) {
				continue
			}
			for _, v := range c.ColumnNodes(i) {
				set := reach2(v)
				for _, w := range c.ColumnNodes(j) {
					if !set[m.Index(w)] {
						t.Fatalf("property 1: %v (col %d) cannot 2-reach %v (col %d)", v, i, w, j)
					}
				}
			}
		}
	}

	// Property 2: non-outlets of adjacent vertices' columns cannot 2-reach
	// each other.
	for i := 0; i < c.NumVertices; i++ {
		for j := 0; j < c.NumVertices; j++ {
			if !c.HasEdge(i, j) {
				continue
			}
			for _, v := range c.ColumnNodes(i) {
				if c.IsOutlet(v) {
					continue
				}
				set := reach2(v)
				for _, w := range c.ColumnNodes(j) {
					if c.IsOutlet(w) {
						continue
					}
					if set[m.Index(w)] {
						t.Fatalf("property 2: %v (col %d) 2-reaches %v (col %d) despite edge", v, i, w, j)
					}
				}
			}
		}
	}

	// Property 3: a column and the external nodes pairwise 2-reach. Check
	// every column node against a sample of externals (corners and mixed),
	// plus external-external pairs.
	externals := []mesh.Coord{
		mesh.C(m.Width(0)-1, 0, 0),
		mesh.C(0, 0, m.Width(2)-1),
		mesh.C(m.Width(0)-1, m.Width(1)-1, m.Width(2)-1),
		mesh.C(2*c.NumVertices, 1, 1),
		mesh.C(1, 2, 2*c.NumVertices),
	}
	for _, e := range externals {
		if !c.IsExternal(e) {
			t.Fatalf("test bug: %v is not external", e)
		}
	}
	for i := 0; i < c.NumVertices; i++ {
		for _, v := range c.ColumnNodes(i) {
			set := reach2(v)
			for _, e := range externals {
				if !set[m.Index(e)] {
					t.Fatalf("property 3: column node %v cannot 2-reach external %v", v, e)
				}
			}
		}
		for _, e := range externals {
			set := reach2(e)
			for _, v := range c.ColumnNodes(i) {
				if !set[m.Index(v)] {
					t.Fatalf("property 3: external %v cannot 2-reach column node %v", e, v)
				}
			}
		}
	}
	for _, e := range externals {
		set := reach2(e)
		for _, e2 := range externals {
			if !set[m.Index(e2)] {
				t.Fatalf("property 3: external %v cannot 2-reach external %v", e, e2)
			}
		}
	}
}

func TestSingleEdgeGraph(t *testing.T) {
	// G = one edge between two vertices (shifted to u_1, u_2).
	c, err := Build([][]int{{1}, {0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVertices != 3 {
		t.Fatalf("NumVertices = %d", c.NumVertices)
	}
	if c.Mesh.Width(1) < 2*c.NumVertices {
		t.Fatalf("mesh too small: %v", c.Mesh)
	}
	checkProperties(t, c)

	orders := routing.UniformAscending(3, 2)
	// A valid cover {u_1} maps to a valid lamb set.
	cover := []bool{false, true, false}
	lambs := c.LambSetFromCover(cover)
	if err := core.VerifyLambSet(c.Faults, orders, lambs); err != nil {
		t.Fatalf("lamb set from cover invalid: %v", err)
	}
	// Decoding it recovers a vertex cover.
	decoded := c.CoverFromLambSet(lambs)
	if !c.IsVertexCover(decoded) {
		t.Fatalf("decoded set %v is not a cover", decoded)
	}
	// The empty cover does not cover the edge, and its lamb set (just the
	// path nodes) must be invalid.
	badLambs := c.LambSetFromCover([]bool{false, false, false})
	if err := core.VerifyLambSet(c.Faults, orders, badLambs); err == nil {
		t.Fatal("path nodes alone should not form a lamb set when an edge is uncovered")
	}
}

func TestTriangleGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c, err := Build([][]int{{1, 2}, {0, 2}, {0, 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkProperties(t, c)
	orders := routing.UniformAscending(3, 2)
	// A triangle needs two covered vertices.
	lambs := c.LambSetFromCover([]bool{false, true, true, false})
	if err := core.VerifyLambSet(c.Faults, orders, lambs); err != nil {
		t.Fatalf("two-vertex cover lamb set invalid: %v", err)
	}
	oneLambs := c.LambSetFromCover([]bool{false, true, false, false})
	if err := core.VerifyLambSet(c.Faults, orders, oneLambs); err == nil {
		t.Fatal("one vertex cannot cover a triangle; lamb set should be invalid")
	}
}

// Lamb1 run on the construction decodes to a vertex cover (the algorithmic
// direction the approximation argument uses).
func TestLamb1DecodesToCover(t *testing.T) {
	c, err := Build([][]int{{1}, {0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	orders := routing.UniformAscending(3, 2)
	res, err := core.Lamb1(c.Faults, orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyLambSet(c.Faults, orders, res.Lambs); err != nil {
		t.Fatal(err)
	}
	decoded := c.CoverFromLambSet(res.Lambs)
	if !c.IsVertexCover(decoded) {
		t.Fatalf("Lamb1's lamb set decodes to a non-cover %v", decoded)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("empty graph should fail")
	}
	if _, err := Build([][]int{{5}}, 0); err == nil {
		t.Error("out-of-range edge should fail")
	}
	if _, err := Build([][]int{{0}}, 0); err == nil {
		t.Error("self-loop should fail")
	}
}

func TestGeometryHelpers(t *testing.T) {
	c, err := Build([][]int{{1}, {0}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Column nodes exist at every level and all are good.
	for i := 0; i < c.NumVertices; i++ {
		col := c.ColumnNodes(i)
		if len(col) != c.Mesh.Width(1) {
			t.Fatalf("column %d has %d nodes", i, len(col))
		}
		for _, v := range col {
			if c.Faults.NodeFaulty(v) {
				t.Fatalf("column node %v is faulty", v)
			}
		}
	}
	// Outlets are exactly the column nodes on their non-edge planes.
	outlets := 0
	for i := 0; i < c.NumVertices; i++ {
		for _, v := range c.ColumnNodes(i) {
			if c.IsOutlet(v) {
				outlets++
			}
		}
	}
	// Two non-edge planes, two outlets each.
	if outlets != 4 {
		t.Errorf("found %d outlets, want 4", outlets)
	}
	// Path nodes are good, internal, non-column.
	for _, p := range c.PathNodes() {
		if c.Faults.NodeFaulty(p) {
			t.Fatalf("path node %v is faulty", p)
		}
		if c.IsExternal(p) {
			t.Fatalf("path node %v is external", p)
		}
		if _, isCol := c.columnOf(p); isCol {
			t.Fatalf("path node %v is a column node", p)
		}
	}
	if !c.IsExternal(mesh.C(2*c.NumVertices, 0, 0)) || c.IsExternal(mesh.C(0, 0, 0)) {
		t.Error("IsExternal wrong")
	}
}
