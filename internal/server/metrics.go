package server

import (
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the server's counter set. All fields are atomics so the
// query path never takes a lock to record an observation. Exposition is
// pull-based: WriteTo renders a Prometheus-style text page for GET
// /metrics, and PublishExpvar mirrors the same numbers under expvar.
type Metrics struct {
	Queries        atomic.Int64 // route queries answered (found or not)
	CacheHits      atomic.Int64 // queries served from the epoch route cache
	RoutesFound    atomic.Int64 // queries answered with a route
	RoutesRejected atomic.Int64 // well-formed queries with no usable route
	BadRequests    atomic.Int64 // malformed HTTP requests
	FaultReports   atomic.Int64 // POST /v1/faults calls accepted
	FaultsAdded    atomic.Int64 // individual faults folded in
	Recomputes     atomic.Int64 // lamb recomputations completed
	RecomputeErrs  atomic.Int64 // recomputations that failed (epoch kept)
	RecomputeNanos atomic.Int64 // total time spent recomputing

	// RecomputesIncremental counts recomputations served by the incremental
	// delta-patch path (a subset of Recomputes).
	RecomputesIncremental atomic.Int64
	// Phase*Nanos are gauges splitting the most recent recompute into
	// pipeline phases: partition maintenance, reachability fill/patch, the
	// vertex-cover tail, and the class-table build/carry-over.
	PhasePartitionNanos atomic.Int64
	PhaseReachNanos     atomic.Int64
	PhaseVCoverNanos    atomic.Int64
	PhaseTableNanos     atomic.Int64

	// routeHops is a histogram of answered route lengths. Bucket i counts
	// routes with hops <= hopBuckets[i]; the last bucket is +Inf.
	routeHops [len(hopBuckets) + 1]atomic.Int64
}

// hopBuckets are the route-length histogram upper bounds (hops).
var hopBuckets = [...]int{0, 2, 4, 8, 16, 32, 64}

// ObserveRoute records one answered route of the given length.
func (m *Metrics) ObserveRoute(hops int) {
	m.RoutesFound.Add(1)
	for i, ub := range hopBuckets {
		if hops <= ub {
			m.routeHops[i].Add(1)
			return
		}
	}
	m.routeHops[len(hopBuckets)].Add(1)
}

// RecomputeLatency returns the mean recompute latency, or 0 if none ran.
func (m *Metrics) RecomputeLatency() time.Duration {
	n := m.Recomputes.Load() + m.RecomputeErrs.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(m.RecomputeNanos.Load() / n)
}

// WriteTo renders the counters in the Prometheus text exposition format.
// The epoch gauges are passed in because they belong to the live epoch,
// not the counter set.
func (m *Metrics) WriteTo(w io.Writer, generation uint64, epochAge time.Duration, cacheSize int) {
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP lambd_%s %s\n# TYPE lambd_%s counter\n", name, help, name)
		fmt.Fprintf(w, "lambd_%s %d\n", name, v)
	}
	g("queries_total", "route queries answered", m.Queries.Load())
	g("cache_hits_total", "queries served from the route cache", m.CacheHits.Load())
	g("routes_found_total", "queries answered with a route", m.RoutesFound.Load())
	g("routes_rejected_total", "queries with no usable route", m.RoutesRejected.Load())
	g("bad_requests_total", "malformed requests", m.BadRequests.Load())
	g("fault_reports_total", "fault reports accepted", m.FaultReports.Load())
	g("faults_added_total", "individual faults folded in", m.FaultsAdded.Load())
	g("recomputes_total", "lamb recomputations completed", m.Recomputes.Load())
	g("recompute_errors_total", "failed recomputations", m.RecomputeErrs.Load())
	g("recomputes_incremental_total", "recomputations served by the incremental patch path", m.RecomputesIncremental.Load())

	fmt.Fprintf(w, "# HELP lambd_recompute_phase_seconds last recompute latency by pipeline phase\n# TYPE lambd_recompute_phase_seconds gauge\n")
	ph := func(name string, v int64) {
		fmt.Fprintf(w, "lambd_recompute_phase_seconds{phase=%q} %g\n", name, time.Duration(v).Seconds())
	}
	ph("partition", m.PhasePartitionNanos.Load())
	ph("reach", m.PhaseReachNanos.Load())
	ph("vcover", m.PhaseVCoverNanos.Load())
	ph("table", m.PhaseTableNanos.Load())

	fmt.Fprintf(w, "# HELP lambd_route_hops route length histogram\n# TYPE lambd_route_hops histogram\n")
	cum := int64(0)
	for i, ub := range hopBuckets {
		cum += m.routeHops[i].Load()
		fmt.Fprintf(w, "lambd_route_hops_bucket{le=\"%d\"} %d\n", ub, cum)
	}
	cum += m.routeHops[len(hopBuckets)].Load()
	fmt.Fprintf(w, "lambd_route_hops_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "lambd_route_hops_count %d\n", cum)

	fmt.Fprintf(w, "# HELP lambd_recompute_seconds_mean mean lamb recompute latency\n# TYPE lambd_recompute_seconds_mean gauge\n")
	fmt.Fprintf(w, "lambd_recompute_seconds_mean %g\n", m.RecomputeLatency().Seconds())
	fmt.Fprintf(w, "# HELP lambd_generation current epoch generation\n# TYPE lambd_generation gauge\n")
	fmt.Fprintf(w, "lambd_generation %d\n", generation)
	fmt.Fprintf(w, "# HELP lambd_epoch_age_seconds age of the live epoch\n# TYPE lambd_epoch_age_seconds gauge\n")
	fmt.Fprintf(w, "lambd_epoch_age_seconds %g\n", epochAge.Seconds())
	fmt.Fprintf(w, "# HELP lambd_route_cache_size cached (src,dst) pairs in the live epoch\n# TYPE lambd_route_cache_size gauge\n")
	fmt.Fprintf(w, "lambd_route_cache_size %d\n", cacheSize)
}

// expvarOnce guards the process-global expvar names: expvar.Publish
// panics on duplicates, so only the first server in a process (in
// practice, the one cmd/lambd starts) is mirrored there.
var expvarOnce sync.Once

// PublishExpvar mirrors the server's metrics under the "lambd" expvar map
// at GET /debug/vars. First caller per process wins.
func (s *Server) PublishExpvar() {
	expvarOnce.Do(func() {
		em := new(expvar.Map)
		iv := func(name string, load func() int64) {
			em.Set(name, expvar.Func(func() any { return load() }))
		}
		iv("queries", s.metrics.Queries.Load)
		iv("cacheHits", s.metrics.CacheHits.Load)
		iv("routesFound", s.metrics.RoutesFound.Load)
		iv("routesRejected", s.metrics.RoutesRejected.Load)
		iv("faultReports", s.metrics.FaultReports.Load)
		iv("faultsAdded", s.metrics.FaultsAdded.Load)
		iv("recomputes", s.metrics.Recomputes.Load)
		iv("recomputeErrors", s.metrics.RecomputeErrs.Load)
		iv("generation", func() int64 { return int64(s.Epoch().Generation) })
		expvar.Publish("lambd", em)
	})
}
