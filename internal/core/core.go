// Package core implements the lamb algorithms — the primary contribution of
// Ho & Stockmeyer, "A New Approach to Fault-Tolerant Wormhole Routing for
// Mesh-Connected Parallel Computers" (IPDPS 2002).
//
// Given a mesh, a fault set F, and a k-round dimension-ordered routing, a
// lamb set is a set of good nodes that are demoted to pure routers (they
// forward traffic but never send or receive), chosen so that all remaining
// good nodes — the survivors — can reach one another in k rounds
// (Definition 2.6). The algorithms here find small lamb sets in time
// polynomial in the number of faults f and independent of the mesh size:
//
//   - Lamb1 (Section 6.3.1): reduce to weighted vertex cover on a bipartite
//     graph of "relevant" SESs and DESs, solve WVC exactly by min-cut, and
//     take the union of the chosen sets. Guaranteed 2-approximation
//     (Lemma 6.6), time O(k d^3 f^3 + |lambs|).
//   - Lamb2 (Section 6.3.2): reduce to WVC on a general graph whose
//     vertices are nonempty SES-DES intersections. With an exact WVC solver
//     the lamb set is optimal (Theorem 6.9 with r = 1, exponential time);
//     with the Bar-Yehuda & Even solver it is a 2-approximation in
//     polynomial time.
//   - GenericLamb: the topology-agnostic variant of Section 7 for any
//     finite node set with a "simple reachability" relation — used for tori
//     and other non-mesh networks (O(k N^2) time).
//
// The Section 7 extensions are supported: per-node values (weights) and a
// predetermined set of nodes that must be lambs.
package core

import (
	"sort"

	"lambmesh/internal/mesh"
	"lambmesh/internal/reach"
	"lambmesh/internal/routing"
)

// Option customizes a lamb computation (the extensions of Section 7).
type Option func(*config)

type config struct {
	values        map[int64]int64
	predetermined []mesh.Coord
	keepReach     bool
	sweep         bool
	workers       int
}

// WithValues assigns integer utilities to nodes (default 1 each). The
// algorithms minimize the total value of the lamb set, so low-value nodes —
// say, nodes with mostly-broken processors — are sacrificed first. The
// paper phrases values as fractions in [0,1]; scale them to integers (e.g.
// good-processor counts) to stay in exact integer arithmetic. Values must
// be >= 0. Keys are mesh linear indices.
func WithValues(values map[int64]int64) Option {
	return func(c *config) { c.values = values }
}

// WithPredetermined forces the given good nodes to be lambs, e.g. to keep a
// new lamb set a superset of the existing one across reconfigurations
// (Section 7). The returned lamb set always contains them.
func WithPredetermined(nodes []mesh.Coord) Option {
	return func(c *config) { c.predetermined = append([]mesh.Coord(nil), nodes...) }
}

// WithReachability keeps the intermediate reach.Reachability on the Result
// for inspection (partitions, matrices). Off by default to save memory.
func WithReachability() Option {
	return func(c *config) { c.keepReach = true }
}

// WithSweepReachability computes R^(k) by the footnote-7 spanning-tree
// sweep (O(k d^2 f N)) instead of matrix products (O(k d^3 f^3)). The lamb
// set found is identical; choose this when the fault count is large
// relative to the mesh size. Meshes only.
func WithSweepReachability() Option {
	return func(c *config) { c.sweep = true }
}

// WithWorkers bounds the worker pool the reachability kernels run on; n <= 0
// (the default) means runtime.NumCPU(). The lamb set and every intermediate
// matrix are bit-identical for any worker count — parallelism only changes
// wall-clock time — so callers may tune this freely (e.g. 1 inside an
// already-parallel trial pool, NumCPU for a latency-sensitive recompute).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// Stats records the intermediate sizes the paper reports in its figures.
type Stats struct {
	Faults      int   // f = |F_N| + |F_L|
	NumSES      int   // |Sigma_1|
	NumDES      int   // |Delta_k|
	RelevantSES int   // rows of R^(k) containing a zero
	RelevantDES int   // columns of R^(k) containing a zero
	CoverWeight int64 // weight of the vertex cover found
}

// Result is a computed lamb set.
type Result struct {
	Mesh   *mesh.Mesh
	Orders routing.MultiOrder
	// Lambs in mesh-index order.
	Lambs []mesh.Coord
	Stats Stats
	// Reach is populated only under WithReachability.
	Reach *reach.Reachability

	lambIdx map[int64]struct{}
}

// NumLambs returns |Lambs|.
func (r *Result) NumLambs() int { return len(r.Lambs) }

// IsLamb reports whether node c was sacrificed.
func (r *Result) IsLamb(c mesh.Coord) bool {
	_, ok := r.lambIdx[r.Mesh.Index(c)]
	return ok
}

// Survivors returns the number of nodes that remain full citizens: neither
// faulty nor lambs.
func (r *Result) Survivors(f *mesh.FaultSet) int64 {
	return f.GoodNodes() - int64(len(r.Lambs))
}

// LowerBound returns a proven lower bound on the minimum lamb-set weight,
// derived from the vertex cover: any lamb set induces a cover of weight at
// most twice its own (proof of Lemma 6.6), so opt >= ceil(CoverWeight/2).
func (r *Result) LowerBound() int64 { return (r.Stats.CoverWeight + 1) / 2 }

// newResult assembles a Result from chosen node sets, deduplicating nodes
// that appear in both a chosen SES and a chosen DES and folding in the
// predetermined lambs.
func newResult(m *mesh.Mesh, orders routing.MultiOrder, cfg *config, st Stats, rc *reach.Reachability, collect func(emit func(mesh.Coord))) *Result {
	r := &Result{
		Mesh:    m,
		Orders:  orders,
		Stats:   st,
		lambIdx: make(map[int64]struct{}),
	}
	if cfg.keepReach {
		r.Reach = rc
	}
	add := func(c mesh.Coord) {
		idx := m.Index(c)
		if _, dup := r.lambIdx[idx]; dup {
			return
		}
		r.lambIdx[idx] = struct{}{}
		r.Lambs = append(r.Lambs, c.Clone())
	}
	for _, c := range cfg.predetermined {
		add(c)
	}
	collect(add)
	sort.Slice(r.Lambs, func(i, j int) bool {
		return m.Index(r.Lambs[i]) < m.Index(r.Lambs[j])
	})
	return r
}

// nodeValue returns the value of node c under cfg (default 1).
func (cfg *config) nodeValue(m *mesh.Mesh, c mesh.Coord) int64 {
	if cfg.values == nil {
		return 1
	}
	if v, ok := cfg.values[m.Index(c)]; ok {
		return v
	}
	return 1
}

// predeterminedIndex returns the predetermined lambs as an index set.
func (cfg *config) predeterminedIndex(m *mesh.Mesh) map[int64]struct{} {
	if len(cfg.predetermined) == 0 {
		return nil
	}
	out := make(map[int64]struct{}, len(cfg.predetermined))
	for _, c := range cfg.predetermined {
		out[m.Index(c)] = struct{}{}
	}
	return out
}

func buildConfig(opts []Option) *config {
	cfg := &config{}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}
