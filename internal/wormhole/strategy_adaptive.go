package wormhole

import (
	"fmt"
	"math"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// AdaptiveStrategy is the minimal-adaptive contender: negative-first
// turn-model routing (all negative-direction hops before any positive-
// direction hop), which is deadlock-free on a single virtual channel for
// any mesh dimensionality — the channel dependency graph orders negative
// channels by decreasing head index and positive channels by increasing
// head index, so no cycle exists. Each packet takes a shortest path under
// that discipline, found by 0-1 BFS over (node, phase) states, with random
// tie-breaks among equally short predecessors; faults simply vanish from
// the adjacency, so the scheme sacrifices no nodes but pays with
// non-minimal (or lost) routes whenever the turn model cannot bend around
// a fault cluster.
type AdaptiveStrategy struct {
	f *mesh.FaultSet
	// neg[n*d+dim] / pos[n*d+dim] hold the neighbor node index reachable
	// from node n along dim in direction -1 / +1 over a usable link, or -1.
	// Rebuilt on AddFaults; read-only during routing, so Route is safe for
	// concurrent use.
	neg, pos []int32
	good     []bool
}

// NewAdaptiveStrategy builds the adjacency tables over f.
func NewAdaptiveStrategy(f *mesh.FaultSet) (*AdaptiveStrategy, error) {
	if tag := f.Topology().Tag(); tag != "mesh" && tag != "hypercube" {
		return nil, fmt.Errorf("wormhole: negative-first adaptive routing requires a mesh, not a %s", tag)
	}
	if f.Mesh().Torus() {
		return nil, fmt.Errorf("wormhole: negative-first adaptive routing requires a mesh, not a torus")
	}
	if f.Mesh().Nodes() > math.MaxInt32 {
		return nil, fmt.Errorf("wormhole: mesh too large for adaptive adjacency tables")
	}
	s := &AdaptiveStrategy{f: f}
	s.rebuild()
	return s, nil
}

func (s *AdaptiveStrategy) rebuild() {
	m := s.f.Mesh()
	n, d := int(m.Nodes()), m.Dims()
	s.neg = make([]int32, n*d)
	s.pos = make([]int32, n*d)
	s.good = make([]bool, n)
	for i := range s.neg {
		s.neg[i], s.pos[i] = -1, -1
	}
	m.ForEachNode(func(c mesh.Coord) {
		idx := m.Index(c)
		if s.f.NodeFaulty(c) {
			return
		}
		s.good[idx] = true
		for dim := 0; dim < d; dim++ {
			for _, dir := range []int{-1, 1} {
				l := mesh.Link{From: c, Dim: dim, Dir: dir}
				nb, ok := m.Neighbor(c, dim, dir)
				if !ok || !s.f.Usable(l) {
					continue
				}
				if dir < 0 {
					s.neg[int(idx)*d+dim] = int32(m.Index(nb))
				} else {
					s.pos[int(idx)*d+dim] = int32(m.Index(nb))
				}
			}
		}
	})
}

func (s *AdaptiveStrategy) Name() string             { return "adaptive" }
func (s *AdaptiveStrategy) Faults() *mesh.FaultSet   { return s.f }
func (s *AdaptiveStrategy) Sacrificed() []mesh.Coord { return nil }
func (s *AdaptiveStrategy) MinVCs() int              { return 1 }

func (s *AdaptiveStrategy) AddFaults(nodes []mesh.Coord, links []mesh.Link) error {
	for _, c := range nodes {
		s.f.AddNode(c)
	}
	for _, l := range links {
		s.f.AddLink(l)
	}
	s.rebuild()
	return nil
}

func (s *AdaptiveStrategy) Route(src, dst mesh.Coord, id, length, injectAt, vcs int, rng *rand.Rand) (*Message, bool, error) {
	if src.Equal(dst) {
		return nil, false, fmt.Errorf("wormhole: zero-hop route %v -> %v", src, dst)
	}
	m := s.f.Mesh()
	if s.f.NodeFaulty(src) || s.f.NodeFaulty(dst) {
		return nil, false, fmt.Errorf("wormhole: faulty endpoint in %v -> %v", src, dst)
	}
	path, ok := s.negativeFirstPath(int(m.Index(src)), int(m.Index(dst)), rng)
	if !ok {
		return nil, false, nil
	}
	// Negative-first needs a single channel; the whole worm rides one VC,
	// drawn uniformly so provisioned channels share load.
	vc := 0
	if vcs > 1 {
		vc = rng.Intn(vcs)
	}
	msg := &Message{
		ID:       id,
		Src:      src.Clone(),
		Dst:      dst.Clone(),
		Length:   length,
		InjectAt: injectAt,
	}
	coords := make([]mesh.Coord, len(path))
	for i, idx := range path {
		coords[i] = m.CoordOf(int64(idx))
	}
	for i := 1; i < len(coords); i++ {
		link, err := linkBetween(m, coords[i-1], coords[i])
		if err != nil {
			return nil, false, err
		}
		msg.Hops = append(msg.Hops, Hop{Link: link, VC: vc})
	}
	msg.PathHops = len(msg.Hops)
	msg.PathTurns = routing.CountTurns(coords)
	return msg, true, nil
}

// negativeFirstPath finds a shortest src -> dst path whose hops are all
// negative-direction first, then all positive-direction. The route graph is
// two layers — layer 0 walks only negative links, layer 1 only positive
// links, with a free transition 0 -> 1 at any node — so two BFS passes
// suffice: one over the negative subgraph from src, then a bucketed
// multi-source pass over the positive subgraph seeded with those distances.
// Returns the node-index path, or ok=false when the turn model cannot
// reach dst.
func (s *AdaptiveStrategy) negativeFirstPath(src, dst int, rng *rand.Rand) ([]int, bool) {
	m := s.f.Mesh()
	d := m.Dims()
	if !s.good[src] || !s.good[dst] {
		return nil, false
	}
	n := len(s.good)
	const inf = int32(math.MaxInt32)
	dist0 := make([]int32, n)
	dist1 := make([]int32, n)
	for i := range dist0 {
		dist0[i], dist1[i] = inf, inf
	}
	dist0[src] = 0
	queue := make([]int, 0, 64)
	queue = append(queue, src)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for dim := 0; dim < d; dim++ {
			if nb := s.neg[v*d+dim]; nb >= 0 && dist0[nb] == inf {
				dist0[nb] = dist0[v] + 1
				queue = append(queue, int(nb))
			}
		}
	}
	// Layer 1: every negatively-reachable node is a source at its layer-0
	// distance; process distances in ascending bucket order (all edge
	// weights are 1, so this is Dijkstra with a bucket queue).
	buckets := make([][]int, n+1)
	for v, dv := range dist0 {
		if dv != inf {
			dist1[v] = dv
			buckets[dv] = append(buckets[dv], v)
		}
	}
	for ds := 0; ds < len(buckets); ds++ {
		for _, v := range buckets[ds] {
			if dist1[v] != int32(ds) {
				continue
			}
			for dim := 0; dim < d; dim++ {
				if nb := s.pos[v*d+dim]; nb >= 0 && int32(ds)+1 < dist1[nb] {
					dist1[nb] = int32(ds) + 1
					buckets[ds+1] = append(buckets[ds+1], int(nb))
				}
			}
		}
	}
	if dist1[dst] == inf {
		return nil, false
	}

	// Backtrack from (dst, layer 1), choosing uniformly among the shortest
	// predecessors at every step; candidates are enumerated in a fixed
	// order so the draw is a pure function of the rng stream. Predecessors
	// are found geometrically (links are directed, so the usable reverse
	// link need not exist) and validated against the forward tables.
	path := []int{dst}
	node, layer := dst, 1
	var cands []int
	for !(node == src && layer == 0) {
		c := m.CoordOf(int64(node))
		cands = cands[:0]
		if layer == 1 {
			ds := dist1[node]
			if dist0[node] == ds {
				// The free layer transition at this node.
				cands = append(cands, node*2)
			}
			for dim := 0; dim < d; dim++ {
				if nb, ok := m.Neighbor(c, dim, -1); ok {
					pre := int(m.Index(nb))
					if s.pos[pre*d+dim] == int32(node) && dist1[pre] == ds-1 {
						cands = append(cands, pre*2+1)
					}
				}
			}
		} else {
			ds := dist0[node]
			for dim := 0; dim < d; dim++ {
				if nb, ok := m.Neighbor(c, dim, 1); ok {
					pre := int(m.Index(nb))
					if s.neg[pre*d+dim] == int32(node) && dist0[pre] == ds-1 {
						cands = append(cands, pre*2)
					}
				}
			}
		}
		pick := cands[0]
		if len(cands) > 1 && rng != nil {
			pick = cands[rng.Intn(len(cands))]
		}
		prev := node
		node, layer = pick/2, pick%2
		if node != prev {
			path = append(path, node)
		}
	}
	// Reverse into src -> dst order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}
