package routing

import (
	"math/rand"

	"lambmesh/internal/mesh"
)

// ChooseRouteK picks a fault-free k-round route for any k >= 1 by dynamic
// programming over rounds: cost_t(u) is the cheapest total hop count of a
// fault-free t-round prefix ending at u, and the intermediates are
// recovered by backtracking (ties broken by rng when non-nil, else by
// lowest node index). Cost is O(k N^2) reachability queries, so this
// complements ChooseRoute (O(N) for k <= 2) for the multi-round
// configurations the simulator explores; the lamb algorithms themselves
// never route.
func ChooseRouteK(o *Oracle, orders MultiOrder, v, w mesh.Coord, rng *rand.Rand) (*Route, bool) {
	k := orders.Rounds()
	if k <= 2 {
		return ChooseRoute(o, orders, v, w, rng)
	}
	m := o.Mesh()
	n := int(m.Nodes())
	const inf = int(^uint(0) >> 2)

	coords := make([]mesh.Coord, n)
	for i := 0; i < n; i++ {
		coords[i] = m.CoordOf(int64(i))
	}
	hopLen := func(a, b mesh.Coord) int {
		if !m.Torus() {
			return a.L1(b)
		}
		total := 0
		for dim := range a {
			d := b[dim] - a[dim]
			if d < 0 {
				d = -d
			}
			if wrap := m.Width(dim) - d; wrap < d {
				d = wrap
			}
			total += d
		}
		return total
	}

	cost := make([][]int, k)   // cost[t][u]: best t+1-round... see below
	choice := make([][]int, k) // predecessor node index
	for t := range cost {
		cost[t] = make([]int, n)
		choice[t] = make([]int, n)
		for u := range cost[t] {
			cost[t][u] = inf
			choice[t][u] = -1
		}
	}
	// Round 1: direct pi_1 reachability from v.
	for u := 0; u < n; u++ {
		if o.ReachOne(orders[0], v, coords[u]) {
			cost[0][u] = hopLen(v, coords[u])
			choice[0][u] = -2 // from the source
		}
	}
	for t := 1; t < k; t++ {
		for u := 0; u < n; u++ {
			for p := 0; p < n; p++ {
				if cost[t-1][p] == inf {
					continue
				}
				if !o.ReachOne(orders[t], coords[p], coords[u]) {
					continue
				}
				c := cost[t-1][p] + hopLen(coords[p], coords[u])
				if c < cost[t][u] || (c == cost[t][u] && rng != nil && rng.Intn(2) == 0) {
					cost[t][u] = c
					choice[t][u] = p
				}
			}
		}
	}
	dst := int(m.Index(w))
	if cost[k-1][dst] == inf {
		return nil, false
	}
	// Backtrack the k-1 intermediates.
	vias := make([]mesh.Coord, k-1)
	cur := dst
	for t := k - 1; t >= 1; t-- {
		cur = choice[t][cur]
		vias[t-1] = coords[cur].Clone()
	}
	return &Route{
		Vias: vias,
		Path: PathK(m, orders, v, w, vias),
	}, true
}
