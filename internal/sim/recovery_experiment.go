package sim

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func init() {
	extraRegistry = append(extraRegistry,
		Experiment{ID: "worm-recovery", Title: "live fault injection: mid-run lamb reconfiguration and recovery latency vs fault-event size", Weight: 10, Run: runWormRecovery},
	)
}

// runWormRecovery measures the online-recovery regime the lamb method
// exists for: traffic is flowing when a batch of new node faults strikes at
// the midpoint of the measurement window, the lamb set is recomputed on the
// fly (monotone, via the Section 7 predetermined-lamb extension), killed
// worms are retransmitted over fresh routes, and the table reports how many
// cycles accepted throughput took to return to its pre-event level — swept
// over the event size on M_2(16) and M_3(8).
func runWormRecovery(cfg Config) *Table {
	trials := scaledTrials(cfg, 10)
	const warmup, measure = 200, 500
	t := &Table{ID: "worm-recovery",
		Title: fmt.Sprintf("mid-run fault events at cycle %d, recovery vs event size, 8 initial faults, uniform 8-flit packets (%d trials/point)",
			warmup+measure/2, trials),
		Paper:   "Section 1: lamb-finding time depends on f, not N, so reconfiguring after faults arrive mid-run is cheap",
		Columns: []string{"mesh", "event size", "reconfigs", "dropped worms", "retransmits", "lost", "accepted rate", "avg recovery (cyc)", "unrecovered"},
	}
	for _, widths := range [][]int{{16, 16}, {8, 8, 8}} {
		m := mesh.MustNew(widths...)
		fs := mesh.RandomNodeFaults(m, 8, rand.New(rand.NewSource(cfg.Seed)))
		orders := routing.UniformAscending(m.Dims(), 2)
		for _, size := range []int{1, 2, 4} {
			// The event's nodes are drawn once per (mesh, size) from the
			// config seed, so the row is a pure function of cfg.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(101*size)))
			var nodes []mesh.Coord
			for len(nodes) < size {
				c := m.CoordOf(rng.Int63n(m.Nodes()))
				dup := fs.NodeFaulty(c)
				for _, p := range nodes {
					dup = dup || p.Equal(c)
				}
				if !dup {
					nodes = append(nodes, c)
				}
			}
			spec := wormhole.SweepSpec{
				Rates:       []float64{0.01},
				Trials:      trials,
				Pattern:     wormhole.PatternUniform,
				PacketFlits: 8,
				Warmup:      warmup,
				Measure:     measure,
				Net:         wormhole.DefaultConfig(),
				Seed:        cfg.Seed,
				Workers:     cfg.Workers,
				Schedule: wormhole.FaultSchedule{Events: []wormhole.FaultEvent{
					{Cycle: warmup + measure/2, Nodes: nodes},
				}},
			}
			pts, err := wormhole.RunSweep(fs, orders, nil, spec)
			if err != nil {
				panic(err)
			}
			p := pts[0]
			t.AddRow(fmt.Sprint(m), fmt.Sprint(size),
				fmt.Sprint(p.Reconfigurations), fmt.Sprint(p.DroppedWorms),
				fmt.Sprint(p.Retransmits), fmt.Sprint(p.LostPackets),
				fmt.Sprintf("%.4f", p.AcceptedFlitRate),
				F(p.MeanRecoveryLatency), fmt.Sprint(p.Unrecovered))
		}
	}
	return t
}
