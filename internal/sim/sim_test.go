package sim

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"lambmesh/internal/mesh"
)

func TestAgg(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Std() != 0 {
		t.Error("empty Agg should be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.Std() != 2 {
		t.Errorf("Std = %v", a.Std())
	}
	if a.Max() != 9 || a.Min() != 2 {
		t.Errorf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	var b Agg
	b.Add(100)
	a.Merge(&b)
	if a.Count != 9 || a.Max() != 100 {
		t.Errorf("Merge wrong: %+v", a)
	}
	var c Agg
	c.Merge(&a)
	if c.Count != 9 {
		t.Error("Merge into empty wrong")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Paper: "ref", Columns: []string{"a", "bbb"}}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"== x: demo ==", "paper: ref", "a", "bbb", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("row length mismatch should panic")
		}
	}()
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("1", "2")
}

// ForEachTrial must be deterministic regardless of worker count.
func TestForEachTrialDeterministic(t *testing.T) {
	run := func(workers int) []int64 {
		out := make([]int64, 16)
		var mu sync.Mutex
		ForEachTrial(Config{Seed: 7, Workers: workers}, 16, func(trial int, rng *rand.Rand) {
			v := rng.Int63()
			mu.Lock()
			out[trial] = v
			mu.Unlock()
		})
		return out
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs between worker counts", i)
		}
	}
}

func TestRunLambPointDeterministic(t *testing.T) {
	m := mesh.MustNew(10, 10)
	cfg := Config{Trials: 8, Seed: 3, Workers: 2}
	p1 := RunLambPoint(cfg, m, 5, 2)
	p2 := RunLambPoint(cfg, m, 5, 2)
	if p1.Lambs.Sum != p2.Lambs.Sum || p1.Lambs.Max() != p2.Lambs.Max() {
		t.Error("same seed should give identical lamb statistics")
	}
	if p1.Lambs.Count != 8 {
		t.Errorf("Count = %d", p1.Lambs.Count)
	}
}

// Every registered experiment must run end to end at a tiny trial count,
// produce a non-empty well-formed table, and be a pure function of the
// config: two runs with the same seed must render identically, at one worker
// and at full parallelism. The heavy trio is skipped here (exercised via the
// CLI) to keep the suite's runtime sane.
func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipping in -short")
	}
	heavy := map[string]bool{"fig24": true, "fig26": true, "sec3one": true}
	// timed experiments report wall-clock measurements; their renders cannot
	// be compared across runs (structure is still checked).
	timed := map[string]bool{"abl-sptree": true, "increconf": true}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			if heavy[e.ID] {
				t.Skip("heavy; exercised via the CLI")
			}
			tab := e.Run(Config{Trials: 5, Seed: 2, Workers: 1})
			if tab == nil || tab.ID != e.ID {
				t.Fatalf("experiment returned bad table: %+v", tab)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tab.Columns))
				}
			}
			if got := tab.Render(); !strings.Contains(got, e.ID) {
				t.Errorf("render missing id:\n%s", got)
			}
			if timed[e.ID] {
				return
			}
			again := e.Run(Config{Trials: 5, Seed: 2, Workers: runtime.NumCPU()})
			if tab.Render() != again.Render() {
				t.Errorf("not deterministic across runs/worker counts:\n%s\nvs\n%s",
					tab.Render(), again.Render())
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig18"); !ok {
		t.Error("Lookup(fig18) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

// One heavier spot check: the 3D headline number. With a handful of trials
// the average lamb count at 3% faults on M_3(32) should land near the
// paper's 67.6 (we allow a generous band).
func TestHeadline3DNumber(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	m := mesh.MustNew(32, 32, 32)
	ps := RunLambPoint(Config{Trials: 5, Seed: 11}, m, 983, 2)
	if ps.Lambs.Mean() < 30 || ps.Lambs.Mean() > 120 {
		t.Errorf("avg lambs at 3%% = %v, expected near the paper's 67.6", ps.Lambs.Mean())
	}
}

func TestScaledTrials(t *testing.T) {
	cfg := Config{Trials: 100}
	if scaledTrials(cfg, 0) != 100 || scaledTrials(cfg, 1) != 100 {
		t.Error("weight <= 1 should not scale")
	}
	if scaledTrials(cfg, 5) != 20 {
		t.Error("weight 5 should divide")
	}
	if scaledTrials(Config{Trials: 10}, 5) != 5 {
		t.Error("floor of 5 trials")
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Paper: "ref", Columns: []string{"a", "b"}}
	tab.AddRow("1", `va"l,ue`)
	md := tab.Markdown()
	for _, want := range []string{"### x: demo", "*paper: ref*", "| a | b |", "|---|---|", "| 1 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
}

// Direct tests for the experiment-builder helpers on tiny meshes: the
// builders must produce one row per configured sweep value with the
// advertised column structure.
func TestSweepExperimentHelper(t *testing.T) {
	run := sweepExperiment("t-sweep", 1, []int{8, 8}, "ref")
	tab := run(Config{Trials: 3, Seed: 6, Workers: 1})
	if tab.ID != "t-sweep" || tab.Paper != "ref" {
		t.Fatalf("table header wrong: %+v", tab)
	}
	if len(tab.Rows) != len(paperFaultPercents) {
		t.Errorf("rows = %d, want one per fault percentage (%d)", len(tab.Rows), len(paperFaultPercents))
	}
	if len(tab.Columns) != 6 {
		t.Errorf("columns = %v", tab.Columns)
	}
}

func TestRatioExperimentHelper(t *testing.T) {
	run := ratioExperiment("t-ratio", 1, [][]int{{6, 6}, {8, 8}})
	tab := run(Config{Trials: 3, Seed: 6, Workers: 1})
	if len(tab.Rows) != len(paperRatios) {
		t.Errorf("rows = %d, want one per ratio (%d)", len(tab.Rows), len(paperRatios))
	}
	if len(tab.Columns) != 3 { // ratio column plus one per mesh
		t.Errorf("columns = %v", tab.Columns)
	}
}

func TestSizeExperimentHelper(t *testing.T) {
	run := sizeExperiment("t-size", 1, 2, []int{6, 8})
	tab := run(Config{Trials: 3, Seed: 6, Workers: 1})
	if len(tab.Rows) != 2 {
		t.Errorf("rows = %d, want one per size", len(tab.Rows))
	}
	if tab.Rows[0][0] != "6" || tab.Rows[1][0] != "8" {
		t.Errorf("size column wrong: %v", tab.Rows)
	}
	if tab.Rows[1][1] != "64" {
		t.Errorf("node count for n=8, d=2 should be 64: %v", tab.Rows[1])
	}
}

// The worm-recovery experiment must report a reconfiguration and sane
// recovery accounting in every row: the scheduled event always introduces
// genuinely new faults.
func TestWormRecoveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e, ok := Lookup("worm-recovery")
	if !ok {
		t.Fatal("worm-recovery missing from the registry")
	}
	tab := e.Run(Config{Trials: 5, Seed: 3, Workers: runtime.NumCPU()})
	if len(tab.Rows) != 6 { // two meshes x three event sizes
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "0" {
			t.Errorf("row %v reports no reconfigurations", row)
		}
		if row[7] == "" {
			t.Errorf("row %v missing recovery latency", row)
		}
	}
}

// Every experiment id promised by DESIGN.md's index exists in the registry.
func TestRegistryCoversDesignIndex(t *testing.T) {
	ids := []string{
		"table1", "table2", "sec5lamb",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
		"sec3one", "sec3two", "fig15", "prop65", "hardness",
		"abl-rounds", "abl-vcover", "abl-blockfault", "abl-sptree", "worm",
		"ext-linkfaults", "ext-reconfig", "ext-congestion", "ext-torus",
		"worm-saturation", "worm-recovery", "classtable", "increconf",
		"bakeoff", "topo-compare",
	}
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q from DESIGN.md missing", id)
		}
	}
	if got := len(Registry()); got != len(ids) {
		t.Errorf("registry has %d experiments, DESIGN.md lists %d", got, len(ids))
	}
}
