package faultring

import (
	"testing"

	"lambmesh/internal/mesh"
)

// validatePath checks a Route result end to end: endpoints, unit steps,
// active nodes only, and no faulty links.
func validatePath(t *testing.T, f *mesh.FaultSet, mod *Model, src, dst mesh.Coord, path []mesh.Coord) {
	t.Helper()
	if len(path) == 0 || !path[0].Equal(src) || !path[len(path)-1].Equal(dst) {
		t.Fatalf("path %v does not span %v -> %v", path, src, dst)
	}
	for i, c := range path {
		if !mod.Active(c) {
			t.Fatalf("path visits blocked node %v (step %d)", c, i)
		}
		if i == 0 {
			continue
		}
		prev := path[i-1]
		if prev.L1(c) != 1 {
			t.Fatalf("non-unit step %v -> %v", prev, c)
		}
		l := linkForStep(prev, c)
		if !f.Usable(l) {
			t.Fatalf("path uses unusable link %v", l)
		}
	}
}

// linkForStep returns the directed link between adjacent nodes a and b.
func linkForStep(a, b mesh.Coord) mesh.Link {
	for dim := range a {
		if b[dim] != a[dim] {
			dir := 1
			if b[dim] < a[dim] {
				dir = -1
			}
			return mesh.Link{From: a.Clone(), Dim: dim, Dir: dir}
		}
	}
	panic("linkForStep: identical coordinates")
}

func TestBuildSingleFault(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(3, 4))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Regions) != 1 || mod.Regions[0].Size() != 1 {
		t.Fatalf("want one 1x1 region, got %v", mod.Regions)
	}
	if len(mod.Inactivated) != 0 || mod.PromotedLinks != 0 {
		t.Fatalf("single fault should sacrifice nothing: %v, %d promoted",
			mod.Inactivated, mod.PromotedLinks)
	}
}

func TestBuildDiagonalMerge(t *testing.T) {
	// Diagonally adjacent faults: their 1-expansions intersect, so the merge
	// rule fuses them into one 2x2 region sacrificing the two off-diagonal
	// good nodes. This is the classical corner rule, subsumed by the merge.
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(3, 3), mesh.C(4, 4))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Regions) != 1 || mod.Regions[0].Size() != 4 {
		t.Fatalf("want one 2x2 region, got %v", mod.Regions)
	}
	if len(mod.Inactivated) != 2 {
		t.Fatalf("want 2 inactivated, got %v", mod.Inactivated)
	}
}

func TestBuildGapMerge(t *testing.T) {
	// Faults two apart share ring nodes, so they merge across the gap.
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(3, 3), mesh.C(3, 5))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Regions) != 1 || mod.Regions[0].Size() != 3 {
		t.Fatalf("want one 1x3 region, got %v", mod.Regions)
	}
	if len(mod.Inactivated) != 1 || !mod.Inactivated[0].Equal(mesh.C(3, 4)) {
		t.Fatalf("want (3,4) inactivated, got %v", mod.Inactivated)
	}
}

func TestBuildSeparateRegions(t *testing.T) {
	m := mesh.MustNew(10, 10)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(1, 1), mesh.C(7, 7))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Regions) != 2 {
		t.Fatalf("want two regions, got %v", mod.Regions)
	}
}

func TestBuildLinkPromotion(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	l := mesh.Link{From: mesh.C(2, 2), Dim: 0, Dir: 1}
	f.AddLink(l)
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if mod.PromotedLinks != 1 {
		t.Fatalf("want 1 promoted link, got %d", mod.PromotedLinks)
	}
	if len(mod.Inactivated) != 1 || !mod.Inactivated[0].Equal(mesh.C(2, 2)) {
		t.Fatalf("want tail (2,2) sacrificed, got %v", mod.Inactivated)
	}

	// A link already dead via a faulty endpoint costs nothing extra.
	f2 := mesh.NewFaultSet(m)
	f2.AddNode(mesh.C(2, 2))
	f2.AddLink(l)
	mod2, err := Build(f2)
	if err != nil {
		t.Fatal(err)
	}
	if mod2.PromotedLinks != 0 || len(mod2.Inactivated) != 0 {
		t.Fatalf("dead-endpoint link should not promote: %d promoted, %v",
			mod2.PromotedLinks, mod2.Inactivated)
	}
}

func TestBuildRejectsNon2D(t *testing.T) {
	if _, err := Build(mesh.NewFaultSet(mesh.MustNew(4, 4, 4))); err == nil {
		t.Fatal("want error for 3D mesh")
	}
	tor, err := mesh.NewTorus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(mesh.NewFaultSet(tor)); err == nil {
		t.Fatal("want error for torus")
	}
}

func TestRouteAroundRegion(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(3, 3), mesh.C(4, 3))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := mesh.C(1, 3), mesh.C(6, 3)
	path, ok, err := mod.Route(src, dst)
	if err != nil || !ok {
		t.Fatalf("route failed: ok=%v err=%v", ok, err)
	}
	validatePath(t, f, mod, src, dst, path)
	// The X-phase detour must ride the +y side of the ring.
	sawNorth := false
	for _, c := range path {
		if c[1] == 4 {
			sawNorth = true
		}
		if c[1] < 3 {
			t.Fatalf("X-phase detour dropped to -y side: %v", path)
		}
	}
	if !sawNorth {
		t.Fatalf("expected +y detour in %v", path)
	}
}

func TestRouteEdgeRegionFallsBack(t *testing.T) {
	// Region touching the -x edge: the Y-phase's preferred -x side does not
	// exist, so the detour flips to the +x side.
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(0, 3), mesh.C(1, 3))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := mesh.C(0, 0), mesh.C(0, 7)
	path, ok, err := mod.Route(src, dst)
	if err != nil || !ok {
		t.Fatalf("route failed: ok=%v err=%v", ok, err)
	}
	validatePath(t, f, mod, src, dst, path)
}

func TestRouteOvershootExitsTowardDst(t *testing.T) {
	// dst's column abuts the region: the X phase must stop on the ring side
	// facing dst instead of crossing and coming back.
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(4, 3), mesh.C(4, 4))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := mesh.C(1, 3), mesh.C(4, 6)
	path, ok, err := mod.Route(src, dst)
	if err != nil || !ok {
		t.Fatalf("route failed: ok=%v err=%v", ok, err)
	}
	validatePath(t, f, mod, src, dst, path)
	src, dst = mesh.C(1, 4), mesh.C(4, 1)
	path, ok, err = mod.Route(src, dst)
	if err != nil || !ok {
		t.Fatalf("reverse route failed: ok=%v err=%v", ok, err)
	}
	validatePath(t, f, mod, src, dst, path)
}

func TestRouteFullBandDisconnects(t *testing.T) {
	// A column of faults spanning the full mesh height cuts the mesh in two:
	// cross-band pairs report ok=false, same-side pairs still route.
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	for y := 0; y < 8; y++ {
		f.AddNode(mesh.C(4, y))
	}
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := mod.Route(mesh.C(2, 2), mesh.C(6, 2)); err != nil || ok {
		t.Fatalf("cross-band pair should be unreachable: ok=%v err=%v", ok, err)
	}
	path, ok, err := mod.Route(mesh.C(1, 1), mesh.C(2, 6))
	if err != nil || !ok {
		t.Fatalf("same-side pair should route: ok=%v err=%v", ok, err)
	}
	validatePath(t, f, mod, mesh.C(1, 1), mesh.C(2, 6), path)
}

func TestRouteBlockedEndpointErrors(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(3, 3))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mod.Route(mesh.C(3, 3), mesh.C(0, 0)); err == nil {
		t.Fatal("want error for blocked src")
	}
	if _, _, err := mod.Route(mesh.C(0, 0), mesh.C(3, 3)); err == nil {
		t.Fatal("want error for blocked dst")
	}
}

func TestRouteAllPairsSmall(t *testing.T) {
	// Every active pair on a modest faulty mesh routes, and every route is
	// valid. No full bands here, so ok must always hold.
	m := mesh.MustNew(7, 7)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(2, 2), mesh.C(3, 2), mesh.C(5, 5), mesh.C(0, 4))
	mod, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	var active []mesh.Coord
	m.ForEachNode(func(c mesh.Coord) {
		if mod.Active(c) {
			active = append(active, c.Clone())
		}
	})
	for _, src := range active {
		for _, dst := range active {
			if src.Equal(dst) {
				continue
			}
			path, ok, err := mod.Route(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("pair %v -> %v unreachable without a full band", src, dst)
			}
			validatePath(t, f, mod, src, dst, path)
		}
	}
}

func TestClass(t *testing.T) {
	cases := []struct {
		src, dst mesh.Coord
		want     int
	}{
		{mesh.C(1, 1), mesh.C(3, 5), ClassWE},
		{mesh.C(3, 1), mesh.C(1, 5), ClassEW},
		{mesh.C(2, 5), mesh.C(2, 1), ClassNS},
		{mesh.C(2, 1), mesh.C(2, 5), ClassSN},
	}
	for _, tc := range cases {
		if got := Class(tc.src, tc.dst); got != tc.want {
			t.Errorf("Class(%v, %v) = %d, want %d", tc.src, tc.dst, got, tc.want)
		}
	}
}
