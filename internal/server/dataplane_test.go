package server

import (
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wire"
)

// TestRouteSourceResolution pins the auto/flag contract.
func TestRouteSourceResolution(t *testing.T) {
	m := mesh.MustNew(6, 6)
	orders := routing.UniformAscending(2, 2)
	s := newTestServer(t, 6, 6)
	if s.RouteSource() != RouteSourceClassTable {
		t.Errorf("auto on a 2D mesh resolved to %q", s.RouteSource())
	}
	if s.Epoch().Table == nil {
		t.Error("classtable server has no table on the live epoch")
	}
	s2 := newSourceServer(t, RouteSourceCache, 6, 6)
	if s2.RouteSource() != RouteSourceCache || s2.Epoch().Table != nil {
		t.Errorf("cache server: source %q, table %v", s2.RouteSource(), s2.Epoch().Table)
	}
	if _, err := New(Config{Mesh: m, Orders: orders, RouteSource: "bogus"}); err == nil {
		t.Error("bogus route source accepted")
	}
	// k=3 is outside the classtable envelope: auto falls back, explicit errors.
	o3 := routing.UniformAscending(2, 3)
	s3, err := New(Config{Mesh: m, Orders: o3})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.RouteSource() != RouteSourceCache {
		t.Errorf("auto with k=3 resolved to %q", s3.RouteSource())
	}
	if _, err := New(Config{Mesh: m, Orders: o3, RouteSource: RouteSourceClassTable}); err == nil {
		t.Error("forced classtable with k=3 accepted")
	}
}

// TestDataPlanesAgree runs the same query stream against a classtable
// server and a cache server with identical fault history and requires
// byte-identical answers (modulo the Cached bit) — the A/B guarantee the
// RouteSource flag exists to demonstrate.
func TestDataPlanesAgree(t *testing.T) {
	m := mesh.MustNew(9, 9)
	rng := rand.New(rand.NewSource(5))
	faults := mesh.RandomNodeFaults(m, 6, rng)
	mesh.RandomLinkFaults(faults, 3, rng)

	build := func(source string) *Server {
		mm := mesh.MustNew(9, 9)
		s, err := New(Config{
			Mesh:          mm,
			Orders:        routing.UniformAscending(2, 2),
			InitialFaults: faults,
			RouteSource:   source,
			Workers:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	ct, cc := build(RouteSourceClassTable), build(RouteSourceCache)

	qrng := rand.New(rand.NewSource(17))
	for i := 0; i < 4000; i++ {
		src := mesh.C(qrng.Intn(9), qrng.Intn(9))
		dst := mesh.C(qrng.Intn(9), qrng.Intn(9))
		a, b := ct.Route(src, dst), cc.Route(src, dst)
		b.Cached = a.Cached
		if a.Found != b.Found || a.Reason != b.Reason || a.Generation != b.Generation {
			t.Fatalf("%v->%v: answers differ:\nclasstable %+v\ncache      %+v", src, dst, a, b)
		}
		if a.Found && !reflect.DeepEqual(a.Route, b.Route) {
			t.Fatalf("%v->%v: routes differ:\nclasstable %+v\ncache      %+v", src, dst, a.Route, b.Route)
		}
	}
}

// TestWireBackendCompact drives routeCompact through both data planes and
// checks it against the full Route answers.
func TestWireBackendCompact(t *testing.T) {
	for _, source := range []string{RouteSourceClassTable, RouteSourceCache} {
		t.Run(source, func(t *testing.T) {
			s := newSourceServer(t, source, 8, 8)
			if err := s.ReportFaults([]mesh.Coord{mesh.C(3, 3), mesh.C(4, 5)}, nil); err != nil {
				t.Fatal(err)
			}
			waitGeneration(t, s, 1)
			b := s.WireBackend()
			if b.Dims() != 2 {
				t.Fatalf("dims = %d", b.Dims())
			}
			var ans wire.Answer
			rng := rand.New(rand.NewSource(2))
			for i := 0; i < 1500; i++ {
				src := mesh.C(rng.Intn(9)-1, rng.Intn(8)) // sometimes out of mesh
				dst := mesh.C(rng.Intn(8), rng.Intn(8))
				b.Query(src, dst, &ans)
				full := s.Route(src, dst)
				if full.Found != (ans.Code == wire.CodeFound) {
					t.Fatalf("%v->%v: compact code %d, full %+v", src, dst, ans.Code, full)
				}
				if !full.Found {
					switch {
					case strings.Contains(full.Reason, "src") && ans.Code != wire.CodeBadSrc:
						t.Fatalf("%v->%v: code %d for reason %q", src, dst, ans.Code, full.Reason)
					case strings.Contains(full.Reason, "no fault-free") && ans.Code != wire.CodeNoRoute:
						t.Fatalf("%v->%v: code %d for reason %q", src, dst, ans.Code, full.Reason)
					}
					continue
				}
				if ans.Hops != full.Route.Hops() || ans.Turns != full.Route.Turns() {
					t.Fatalf("%v->%v: compact %d/%d, full %d/%d",
						src, dst, ans.Hops, ans.Turns, full.Route.Hops(), full.Route.Turns())
				}
				if ans.NVias != len(full.Route.Vias) || len(ans.Via) != ans.NVias*2 {
					t.Fatalf("%v->%v: vias %d/%v vs %v", src, dst, ans.NVias, ans.Via, full.Route.Vias)
				}
				for vi, v := range full.Route.Vias {
					if ans.Via[vi*2] != v[0] || ans.Via[vi*2+1] != v[1] {
						t.Fatalf("%v->%v: via %d = %v, want %v", src, dst, vi, ans.Via, v)
					}
				}
			}
		})
	}
}

// TestWireEndToEnd serves the binary protocol on a real listener and
// queries it with the wire client, pipelined.
func TestWireEndToEnd(t *testing.T) {
	s := newTestServer(t, 8, 8)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go wire.Serve(l, s.WireBackend())

	c, err := wire.Dial(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var ans wire.Answer
	if err := c.Route([]int{0, 0}, []int{7, 7}, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Code != wire.CodeFound || ans.Hops != 14 || ans.NVias != 1 {
		t.Fatalf("corner route: %+v", ans)
	}

	// Pipelined batch: all answers arrive, in order.
	const depth = 64
	for i := 0; i < depth; i++ {
		if err := c.Send([]int{i % 8, 0}, []int{7, i % 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		if err := c.Recv(&ans); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := (7 - i%8) + i%8
		if ans.Code != wire.CodeFound || ans.Hops != want {
			t.Fatalf("pipelined %d: %+v, want %d hops", i, ans, want)
		}
	}

	// Out-of-mesh coordinates answer codes, not errors.
	if err := c.Route([]int{200, 200}, []int{0, 0}, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Code != wire.CodeBadSrc {
		t.Fatalf("out-of-mesh: %+v", ans)
	}

	// A malformed frame (wrong dimensionality) draws an error and closes.
	if err := c.Route([]int{1, 2, 3}, []int{0, 0, 0}, &ans); err == nil {
		t.Fatal("3D request on a 2D mesh succeeded")
	}
}
