module lambmesh

go 1.22
