// Package partition implements Find-SES-Partition and Find-DES-Partition
// (Section 6.1 of Ho & Stockmeyer, IPDPS 2002).
//
// Fix a mesh M, a fault set F and a 1-round ordering pi. A source
// equivalent set (SES) is a set S of good nodes such that every two members
// can pi-reach exactly the same destinations; a destination equivalent set
// (DES) is the mirror notion for sources (Definition 4.1). The algorithm
// partitions the good nodes into at most (2d-1)f+1 rectangular SESs (resp.
// DESs) in time O(d^2 f log f) — independent of the mesh size N. This is
// what lets the lamb algorithm scale to meshes with tens of thousands of
// nodes while touching only O(df) objects.
//
// Shapes: SESs come out as (*,...,*,[l,r],c,...,c) and DESs as
// (c,...,c,[l,r],*,...,*) — after undoing the coordinate permutation that
// reduces a general ordering pi to the ascending order.
package partition

import (
	"fmt"
	"sort"

	"lambmesh/internal/mesh"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
)

// Kind distinguishes SES from DES partitions.
type Kind int

const (
	// Source marks an SES partition.
	Source Kind = iota
	// Destination marks a DES partition.
	Destination
)

func (k Kind) String() string {
	if k == Source {
		return "SES"
	}
	return "DES"
}

// Set is one SES or DES: a rectangular set of good nodes plus a
// representative member (Lemma 4.1: reachability of/from any one member
// decides it for all members).
type Set struct {
	Rect rect.Rect
	Rep  mesh.Coord
}

// Size returns the number of nodes in the set.
func (s Set) Size() int64 { return s.Rect.Size() }

// Partition is an SES or DES partition of the good nodes of a faulty mesh.
type Partition struct {
	Kind  Kind
	Order routing.Order
	Sets  []Set
}

// Len returns the number of sets in the partition.
func (p *Partition) Len() int { return len(p.Sets) }

// SES returns an SES partition for fault set f and 1-round ordering pi,
// of size at most B(d,f) <= (2d-1)f+1 (Theorem 6.4). Only meshes are
// supported; for tori use the generic-topology path in package core.
func SES(f *mesh.FaultSet, pi routing.Order) (*Partition, error) {
	return find(f, pi, Source)
}

// DES returns a DES partition for fault set f and 1-round ordering pi, with
// the same size bound as SES. It exploits the duality of Section 6.1: a set
// is a DES for pi iff it is an SES for the reversed ordering — on the fault
// set with every faulty link's direction reversed, so that one-directional
// link faults are handled exactly.
func DES(f *mesh.FaultSet, pi routing.Order) (*Partition, error) {
	return find(f, pi, Destination)
}

func find(f *mesh.FaultSet, pi routing.Order, kind Kind) (*Partition, error) {
	m := f.Mesh()
	if m.Torus() {
		return nil, fmt.Errorf("partition: the rectangular partition algorithm requires a mesh, not a torus (use the generic path)")
	}
	if err := pi.Validate(m.Dims()); err != nil {
		return nil, err
	}
	order := pi
	reverseLinks := false
	if kind == Destination {
		order = pi.Reverse()
		reverseLinks = true
	}

	// Work in a coordinate space permuted so that `order` becomes the
	// ascending ordering: working dimension t is original dimension
	// order[t]. The recursion then always peels the last working dimension,
	// which is the last-corrected one.
	d := m.Dims()
	widths := make([]int, d)
	for t := 0; t < d; t++ {
		widths[t] = m.Width(order[t])
	}
	inv := make([]int, d) // inv[original dim] = working dim
	for t, dim := range order {
		inv[dim] = t
	}

	nodes := make([]mesh.Coord, 0, f.NumNodeFaults())
	for _, c := range f.NodeFaults() {
		nodes = append(nodes, permuteCoord(c, order))
	}
	links := make([]mesh.Link, 0, f.NumLinkFaults())
	for _, l := range f.LinkFaults() {
		wl := mesh.Link{From: permuteCoord(l.From, order), Dim: inv[l.Dim], Dir: l.Dir}
		if reverseLinks {
			// Reverse the directed link: new tail is the old head.
			wl.From = wl.From.Clone()
			wl.From[wl.Dim] += wl.Dir
			wl.Dir = -wl.Dir
		}
		links = append(links, wl)
	}

	work := findAscending(widths, nodes, links)

	p := &Partition{Kind: kind, Order: pi, Sets: make([]Set, 0, len(work))}
	for _, wr := range work {
		r := wr.Permute(inv) // r[original dim j] = wr[inv[j]]
		p.Sets = append(p.Sets, Set{Rect: r, Rep: r.MinCorner()})
	}
	return p, nil
}

// permuteCoord maps an original coordinate into working space: out[t] =
// c[order[t]].
func permuteCoord(c mesh.Coord, order routing.Order) mesh.Coord {
	out := make(mesh.Coord, len(c))
	for t, dim := range order {
		out[t] = c[dim]
	}
	return out
}

// findAscending is Find-SES-Partition (Figure 11) for the ascending
// ordering, in working coordinates. It returns rectangular sets of shape
// (*,...,*,[l,r],c,...,c) that partition the good nodes.
func findAscending(widths []int, nodeFaults []mesh.Coord, linkFaults []mesh.Link) []rect.Rect {
	d := len(widths)
	if d == 1 {
		return base1D(widths[0], nodeFaults, linkFaults)
	}
	last := d - 1
	n := widths[last]

	// Step 2(a): H is the set of last-coordinate values whose slice is
	// "dirty". Node faults and links along dimensions < last dirty their
	// own slice; a link along the last dimension spans two slices and
	// dirties both.
	dirty := make(map[int]bool)
	for _, c := range nodeFaults {
		dirty[c[last]] = true
	}
	for _, l := range linkFaults {
		if l.Dim != last {
			dirty[l.From[last]] = true
		} else {
			dirty[l.From[last]] = true
			dirty[l.From[last]+l.Dir] = true
		}
	}
	H := make([]int, 0, len(dirty))
	for c := range dirty {
		H = append(H, c)
	}
	sort.Ints(H)

	var out []rect.Rect

	// Step 2(b): recurse into each dirty slice with the faults that live
	// wholly inside it (the paper's F/c), then extend each returned set
	// with the fixed last coordinate (Lemma 6.1).
	for _, c := range H {
		var subNodes []mesh.Coord
		for _, v := range nodeFaults {
			if v[last] == c {
				subNodes = append(subNodes, v[:last])
			}
		}
		var subLinks []mesh.Link
		for _, l := range linkFaults {
			if l.Dim != last && l.From[last] == c {
				subLinks = append(subLinks, mesh.Link{From: l.From[:last], Dim: l.Dim, Dir: l.Dir})
			}
		}
		for _, sub := range findAscending(widths[:last], subNodes, subLinks) {
			r := make(rect.Rect, d)
			copy(r, sub)
			r[last] = rect.Interval{Lo: c, Hi: c}
			out = append(out, r)
		}
	}

	// Steps 2(c)-(d): the clean slice values, grouped into maximal runs,
	// become full-width sets (*,...,*,[l,r]) (Lemma 6.3).
	for _, iv := range cleanRuns(n, dirty) {
		r := make(rect.Rect, d)
		for j := 0; j < last; j++ {
			r[j] = rect.Interval{Lo: 0, Hi: widths[j] - 1}
		}
		r[last] = iv
		out = append(out, r)
	}
	return out
}

// base1D is the d=1 base case (step 1 of Figure 11): maximal intervals of
// good nodes containing no node fault and not spanning any faulty link.
func base1D(n int, nodeFaults []mesh.Coord, linkFaults []mesh.Link) []rect.Rect {
	faulty := make(map[int]bool)
	for _, c := range nodeFaults {
		faulty[c[0]] = true
	}
	// cutAfter[c]: no interval may contain both c and c+1 (a link between
	// them failed in at least one direction).
	cutAfter := make(map[int]bool)
	for _, l := range linkFaults {
		if l.Dir > 0 {
			cutAfter[l.From[0]] = true
		} else {
			cutAfter[l.From[0]-1] = true
		}
	}
	var out []rect.Rect
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, rect.Rect{rect.Interval{Lo: start, Hi: end}})
			start = -1
		}
	}
	for v := 0; v < n; v++ {
		if faulty[v] {
			flush(v - 1)
			continue
		}
		if start < 0 {
			start = v
		}
		if cutAfter[v] {
			flush(v)
		}
	}
	flush(n - 1)
	return out
}

// cleanRuns partitions [0,n-1] minus the dirty values into maximal runs.
func cleanRuns(n int, dirty map[int]bool) []rect.Interval {
	var out []rect.Interval
	start := -1
	for v := 0; v < n; v++ {
		if dirty[v] {
			if start >= 0 {
				out = append(out, rect.Interval{Lo: start, Hi: v - 1})
				start = -1
			}
			continue
		}
		if start < 0 {
			start = v
		}
	}
	if start >= 0 {
		out = append(out, rect.Interval{Lo: start, Hi: n - 1})
	}
	return out
}
