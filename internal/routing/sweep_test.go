package routing

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
)

// The O(dN) sweep must agree exactly with the per-pair oracle on single
// sources, for random meshes, orderings, and node+link faults.
func TestSweepMatchesOracleSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	shapes := [][]int{{7, 6}, {5, 5, 4}, {3, 3, 3, 3}}
	for trial := 0; trial < 20; trial++ {
		m := mesh.MustNew(shapes[trial%len(shapes)]...)
		f := mesh.RandomNodeFaults(m, rng.Intn(6), rng)
		mesh.RandomLinkFaults(f, rng.Intn(4), rng)
		o := NewOracle(f)
		pi := Order(rng.Perm(m.Dims()))
		for src := 0; src < 5; src++ {
			v := m.CoordOf(rng.Int63n(m.Nodes()))
			from := make([]bool, m.Nodes())
			from[m.Index(v)] = true
			got := o.ReachableSetSweep(pi, from)
			want := o.ReachableSetOne(pi, v)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d order %v src %v node %v: sweep %v oracle %v (faults %v links %v)",
						trial, pi, v, m.CoordOf(int64(i)), got[i], want[i],
						f.SortedNodeFaults(), f.LinkFaults())
				}
			}
		}
	}
}

// Set-valued input: sweep(X) must equal the union of sweeps of singletons.
func TestSweepSetIsUnionOfSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := mesh.MustNew(6, 5)
	f := mesh.RandomNodeFaults(m, 4, rng)
	o := NewOracle(f)
	pi := Ascending(2)
	from := make([]bool, m.Nodes())
	var members []mesh.Coord
	for i := 0; i < 4; i++ {
		c := m.CoordOf(rng.Int63n(m.Nodes()))
		from[m.Index(c)] = true
		members = append(members, c)
	}
	got := o.ReachableSetSweep(pi, from)
	want := make([]bool, m.Nodes())
	for _, v := range members {
		for i, b := range o.ReachableSetOne(pi, v) {
			if b {
				want[i] = true
			}
		}
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %v: sweep %v union %v", m.CoordOf(int64(i)), got[i], want[i])
		}
	}
}

// k-round sweep equals the quadratic reference ReachKSet.
func TestReachKSetSweepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	m := mesh.MustNew(5, 4, 3)
	for trial := 0; trial < 8; trial++ {
		f := mesh.RandomNodeFaults(m, 3, rng)
		o := NewOracle(f)
		orders := MultiOrder{
			Order(rng.Perm(3)),
			Order(rng.Perm(3)),
		}
		v := m.CoordOf(rng.Int63n(m.Nodes()))
		got := o.ReachKSetSweep(orders, v)
		want := o.ReachKSet(orders, v)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d node %v: sweep %v reference %v", trial, m.CoordOf(int64(i)), got[i], want[i])
			}
		}
	}
}

func TestSweepFaultySourceEmpty(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(1, 1))
	o := NewOracle(f)
	from := make([]bool, m.Nodes())
	from[m.Index(mesh.C(1, 1))] = true
	got := o.ReachableSetSweep(Ascending(2), from)
	for i, b := range got {
		if b {
			t.Fatalf("faulty source reached %v", m.CoordOf(int64(i)))
		}
	}
}

func TestSweepTorusPanics(t *testing.T) {
	m, _ := mesh.NewTorus(4, 4)
	o := NewOracle(mesh.NewFaultSet(m))
	defer func() {
		if recover() == nil {
			t.Error("torus sweep should panic")
		}
	}()
	o.ReachableSetSweep(Ascending(2), make([]bool, m.Nodes()))
}
