package wormhole

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/faultring"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// RingStrategy is the Boppana–Chalasani baseline as a RouteStrategy:
// faults are rectangularized into ringed regions (internal/faultring) and
// every packet follows the deterministic XY-with-detours path, carried
// entirely on the virtual channel of its f-cube2 message class. With two
// VCs the four classes pair up WE+NS on VC0 and EW+SN on VC1; with one VC
// everything shares channel 0 (the deliberately under-provisioned case).
// 2D meshes only — the classical scheme does not generalize past it here.
type RingStrategy struct {
	f   *mesh.FaultSet
	mod *faultring.Model
}

// NewRingStrategy rectangularizes f and returns the strategy. The
// Boppana–Chalasani construction is defined on 2D meshes only, so every
// other topology is rejected here, by tag, before any rectangularization
// runs: wrap-around links would let a fault region span the dateline,
// higher dimensions have no f-cube2 classes, and full meshes have no rings
// at all.
func NewRingStrategy(f *mesh.FaultSet) (*RingStrategy, error) {
	if tag := f.Topology().Tag(); tag != "mesh" {
		return nil, fmt.Errorf("wormhole: ring strategy requires a 2D mesh, not a %s (%v)", tag, f.Topology())
	}
	if f.Mesh().Dims() != 2 {
		return nil, fmt.Errorf("wormhole: ring strategy requires a 2D mesh, not %v", f.Mesh())
	}
	mod, err := faultring.Build(f)
	if err != nil {
		return nil, err
	}
	return &RingStrategy{f: f, mod: mod}, nil
}

// Model exposes the rectangularized structure (for reporting).
func (s *RingStrategy) Model() *faultring.Model { return s.mod }

func (s *RingStrategy) Name() string             { return "ring" }
func (s *RingStrategy) Faults() *mesh.FaultSet   { return s.f }
func (s *RingStrategy) Sacrificed() []mesh.Coord { return s.mod.Inactivated }
func (s *RingStrategy) MinVCs() int              { return 2 }

// ringVC maps a message class to its virtual channel, clamped to the
// provisioned count.
func ringVC(class, vcs int) int {
	vc := 0
	if class == faultring.ClassEW || class == faultring.ClassSN {
		vc = 1
	}
	if vc >= vcs {
		vc = vcs - 1
	}
	return vc
}

func (s *RingStrategy) Route(src, dst mesh.Coord, id, length, injectAt, vcs int, _ *rand.Rand) (*Message, bool, error) {
	if src.Equal(dst) {
		return nil, false, fmt.Errorf("wormhole: zero-hop route %v -> %v", src, dst)
	}
	path, ok, err := s.mod.Route(src, dst)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	vc := ringVC(faultring.Class(src, dst), vcs)
	msg := &Message{
		ID:       id,
		Src:      src.Clone(),
		Dst:      dst.Clone(),
		Length:   length,
		InjectAt: injectAt,
	}
	m := s.f.Mesh()
	for i := 1; i < len(path); i++ {
		link, err := linkBetween(m, path[i-1], path[i])
		if err != nil {
			return nil, false, err
		}
		msg.Hops = append(msg.Hops, Hop{Link: link, VC: vc})
	}
	msg.PathHops = len(msg.Hops)
	msg.PathTurns = routing.CountTurns(path)
	return msg, true, nil
}

func (s *RingStrategy) AddFaults(nodes []mesh.Coord, links []mesh.Link) error {
	for _, c := range nodes {
		s.f.AddNode(c)
	}
	for _, l := range links {
		s.f.AddLink(l)
	}
	mod, err := faultring.Build(s.f)
	if err != nil {
		return err
	}
	s.mod = mod
	return nil
}
