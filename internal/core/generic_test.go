package core

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// On a plain mesh, the generic path must agree with the rectangular path on
// validity and stay within the 2-approximation of the optimum.
func TestGenericMatchesMeshPath(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		m := mesh.MustNew(5, 5)
		f := mesh.RandomNodeFaults(m, 3+rng.Intn(3), rng)
		orders := routing.UniformAscending(2, 2)
		gen, err := TorusLamb(f, orders) // works on meshes too
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyLambSetBrute(f, orders, gen.Lambs); err != nil {
			t.Fatalf("trial %d: generic result invalid: %v", trial, err)
		}
		ex, err := ExactLamb(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		if gen.NumLambs() > 2*ex.NumLambs() {
			t.Errorf("trial %d: generic %d > 2x optimum %d", trial, gen.NumLambs(), ex.NumLambs())
		}
	}
}

// The paper's 12x12 example through the generic machinery: the SEC/DEC
// partitions are the exact ones (9 and 7) and the lamb set is again optimal.
func TestGenericPaperExample(t *testing.T) {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10))
	res, err := TorusLamb(f, routing.UniformAscending(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumSES != 9 || res.Stats.NumDES != 7 {
		t.Errorf("generic SEC/DEC = %d/%d, want 9/7", res.Stats.NumSES, res.Stats.NumDES)
	}
	if res.NumLambs() != 2 {
		t.Errorf("generic lambs = %v, want 2", res.Lambs)
	}
}

// Torus wrap-around links let routes dodge faults, so a fault pattern that
// forces lambs on the mesh can need none on the torus.
func TestTorusNeedsFewerLambs(t *testing.T) {
	orders := routing.UniformAscending(2, 2)
	build := func(torus bool) *mesh.FaultSet {
		var m *mesh.Mesh
		if torus {
			m2, err := mesh.NewTorus(5, 5)
			if err != nil {
				t.Fatal(err)
			}
			m = m2
		} else {
			m = mesh.MustNew(5, 5)
		}
		f := mesh.NewFaultSet(m)
		// A full column wall except one hole would still leave the mesh
		// connected; instead isolate the corner (0,0) in mesh terms.
		f.AddNodes(mesh.C(1, 0), mesh.C(0, 1), mesh.C(1, 1))
		return f
	}
	meshRes, err := ExactLamb(build(false), orders)
	if err != nil {
		t.Fatal(err)
	}
	torusRes, err := TorusLamb(build(true), orders)
	if err != nil {
		t.Fatal(err)
	}
	if meshRes.NumLambs() == 0 {
		t.Error("isolated corner should force a lamb on the mesh")
	}
	if torusRes.NumLambs() != 0 {
		t.Errorf("torus wrap links should rescue the corner, got lambs %v", torusRes.Lambs)
	}
	if err := VerifyLambSetBrute(build(true), orders, torusRes.Lambs); err != nil {
		t.Error(err)
	}
}

// Random tori: generic lamb sets verify against the brute-force definition.
func TestRandomTorusLambs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		m, err := mesh.NewTorus(5, 5)
		if err != nil {
			t.Fatal(err)
		}
		f := mesh.RandomNodeFaults(m, 2+rng.Intn(4), rng)
		orders := routing.UniformAscending(2, 2)
		res, err := TorusLamb(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyLambSetBrute(f, orders, res.Lambs); err != nil {
			t.Fatalf("trial %d (faults %v): %v", trial, f.SortedNodeFaults(), err)
		}
	}
}

// Hypercubes are meshes with width 2, so the rectangular path applies
// directly (Section 7).
func TestHypercubeLambs(t *testing.T) {
	m, err := mesh.NewCube(4, 2) // Q_4, 16 nodes
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		f := mesh.RandomNodeFaults(m, 1+rng.Intn(3), rng)
		orders := routing.UniformAscending(4, 2)
		res, err := Lamb1(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyLambSetBrute(f, orders, res.Lambs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGenericValidation(t *testing.T) {
	if _, err := GenericLamb(&GenericProblem{NumNodes: 0, Rounds: 1}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := GenericLamb(&GenericProblem{NumNodes: 2, Rounds: 0}); err == nil {
		t.Error("zero rounds should fail")
	}
	// All nodes faulty: empty result.
	res, err := GenericLamb(&GenericProblem{
		NumNodes: 3,
		Rounds:   1,
		Faulty:   func(int) bool { return true },
		Reach:    func(int, int, int) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lambs) != 0 {
		t.Error("all-faulty problem needs no lambs")
	}
}

// A tiny synthetic topology: three nodes in a line where node 1 is faulty,
// one round, reachability only along the line. Nodes 0 and 2 cannot talk,
// so at least one of them must become a lamb; the 2-approximation may
// sacrifice both (cover weight ties do not see the overlap between an SEC
// and a DEC of the same node), but never more.
func TestGenericLineTopology(t *testing.T) {
	adjacentReach := func(_ int, v, w int) bool {
		if v == 1 || w == 1 {
			return false
		}
		return v == w // only self-reach survives the broken middle
	}
	res, err := GenericLamb(&GenericProblem{
		NumNodes: 3,
		Rounds:   1,
		Faulty:   func(v int) bool { return v == 1 },
		Reach:    adjacentReach,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lambs) < 1 || len(res.Lambs) > 2 {
		t.Errorf("lambs = %v, want 1 or 2 of {0,2} (optimum 1, 2-approx bound 2)", res.Lambs)
	}
	for _, v := range res.Lambs {
		if v == 1 {
			t.Errorf("faulty node %d chosen as lamb", v)
		}
	}
}
