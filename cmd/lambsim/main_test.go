package main

import (
	"strings"
	"testing"

	"lambmesh/internal/sim"
)

func sampleTable() *sim.Table {
	t := &sim.Table{ID: "t", Title: "sample", Columns: []string{"a", "b"}}
	t.AddRow("1", "2")
	return t
}

func TestRendererFor(t *testing.T) {
	tab := sampleTable()
	text, err := rendererFor("text")
	if err != nil || !strings.Contains(text(tab), "sample") {
		t.Errorf("text renderer: %v", err)
	}
	md, err := rendererFor("md")
	if err != nil || !strings.Contains(md(tab), "| a | b |") {
		t.Errorf("md renderer (%v): %q", err, md(tab))
	}
	csv, err := rendererFor("csv")
	if err != nil || !strings.Contains(csv(tab), "a,b") {
		t.Errorf("csv renderer (%v): %q", err, csv(tab))
	}
	if _, err := rendererFor("yaml"); err == nil || !strings.Contains(err.Error(), "unknown -format") {
		t.Errorf("unknown format: %v", err)
	}
}

func TestListExperiments(t *testing.T) {
	var b strings.Builder
	listExperiments(&b)
	out := b.String()
	lines := strings.Count(out, "\n")
	if lines != len(sim.Registry()) {
		t.Errorf("listed %d lines, registry has %d", lines, len(sim.Registry()))
	}
	for _, id := range []string{"table1", "fig18", "abl-rounds"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %q:\n%s", id, out)
		}
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) != len(sim.Registry()) {
		t.Fatalf("all: %d experiments, %v", len(all), err)
	}
	got, err := selectExperiments("table1, sec5lamb")
	if err != nil || len(got) != 2 || got[0].ID != "table1" || got[1].ID != "sec5lamb" {
		t.Errorf("pair select: %v %v", got, err)
	}
	if _, err := selectExperiments("nope"); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown id: %v", err)
	}
	if _, err := selectExperiments("table1,nope"); err == nil {
		t.Error("mixed good/bad ids should fail")
	}
}
