package wormhole

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lambmesh/internal/mesh"
)

func TestScheduleRoundTrip(t *testing.T) {
	s := FaultSchedule{Events: []FaultEvent{
		{Cycle: 900, Nodes: []mesh.Coord{mesh.C(7, 7)}},
		{Cycle: 500, Nodes: []mesh.Coord{mesh.C(3, 4), mesh.C(1, 1)},
			Links: []mesh.Link{{From: mesh.C(1, 1), Dim: 0, Dir: 1}}},
		{Cycle: 500, Nodes: []mesh.Coord{mesh.C(3, 4)}}, // same-cycle duplicate
	}}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, buf.String())
	}
	want := FaultSchedule{Events: []FaultEvent{
		{Cycle: 500, Nodes: []mesh.Coord{mesh.C(1, 1), mesh.C(3, 4)},
			Links: []mesh.Link{{From: mesh.C(1, 1), Dim: 0, Dir: 1}}},
		{Cycle: 900, Nodes: []mesh.Coord{mesh.C(7, 7)}},
	}}
	if !reflect.DeepEqual(got.Canonical(), want) {
		t.Errorf("round-trip = %+v, want %+v", got.Canonical(), want)
	}
}

func TestScheduleCanonical(t *testing.T) {
	s := FaultSchedule{Events: []FaultEvent{
		{Cycle: 10}, // empty event: dropped
		{Cycle: 5, Nodes: []mesh.Coord{mesh.C(2, 2), mesh.C(2, 2), mesh.C(0, 1)}},
		{Cycle: 5, Links: []mesh.Link{
			{From: mesh.C(1, 0), Dim: 1, Dir: -1},
			{From: mesh.C(1, 0), Dim: 0, Dir: 1},
			{From: mesh.C(1, 0), Dim: 0, Dir: 1},
		}},
	}}
	c := s.Canonical()
	if len(c.Events) != 1 {
		t.Fatalf("canonical kept %d events, want 1", len(c.Events))
	}
	ev := c.Events[0]
	if ev.Cycle != 5 || len(ev.Nodes) != 2 || len(ev.Links) != 2 {
		t.Errorf("canonical event = %+v", ev)
	}
	if !ev.Nodes[0].Equal(mesh.C(0, 1)) || !ev.Nodes[1].Equal(mesh.C(2, 2)) {
		t.Errorf("nodes not sorted: %v", ev.Nodes)
	}
	if ev.Links[0].Dim != 0 || ev.Links[1].Dim != 1 {
		t.Errorf("links not sorted: %v", ev.Links)
	}
	// Idempotence: canonicalizing a canonical schedule is the identity.
	if !reflect.DeepEqual(c.Canonical(), c) {
		t.Error("Canonical not idempotent")
	}
}

func TestScheduleEmpty(t *testing.T) {
	if !(FaultSchedule{}).Empty() {
		t.Error("zero schedule should be empty")
	}
	if !(FaultSchedule{Events: []FaultEvent{{Cycle: 3}}}).Empty() {
		t.Error("schedule of empty events should be empty")
	}
	if (FaultSchedule{Events: []FaultEvent{{Cycle: 3, Nodes: []mesh.Coord{mesh.C(0, 0)}}}}).Empty() {
		t.Error("schedule with a node fault should not be empty")
	}
}

func TestScheduleValidate(t *testing.T) {
	m := mesh.MustNew(4, 4)
	good := FaultSchedule{Events: []FaultEvent{
		{Cycle: 1, Nodes: []mesh.Coord{mesh.C(3, 3)},
			Links: []mesh.Link{{From: mesh.C(0, 0), Dim: 1, Dir: 1}}},
	}}
	if err := good.Validate(m); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := []FaultSchedule{
		{Events: []FaultEvent{{Cycle: 1, Nodes: []mesh.Coord{mesh.C(4, 0)}}}},                        // out of bounds
		{Events: []FaultEvent{{Cycle: 1, Nodes: []mesh.Coord{mesh.C(1, 1, 1)}}}},                     // wrong dims
		{Events: []FaultEvent{{Cycle: 1, Links: []mesh.Link{{From: mesh.C(3, 3), Dim: 0, Dir: 1}}}}}, // no head
		{Events: []FaultEvent{{Cycle: 1, Links: []mesh.Link{{From: mesh.C(0, 0), Dim: 5, Dir: 1}}}}}, // bad dim
		{Events: []FaultEvent{{Cycle: 1, Links: []mesh.Link{{From: mesh.C(0, 0), Dim: 0, Dir: 2}}}}}, // bad dir
		{Events: []FaultEvent{{Cycle: -1, Nodes: []mesh.Coord{mesh.C(0, 0)}}}},                       // negative cycle
	}
	for i, s := range bad {
		if err := s.Validate(m); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestReadScheduleErrors(t *testing.T) {
	cases := []string{
		"node 1,1\n",              // node before any event
		"link 1,1 0 +1\n",         // link before any event
		"event x\n",               // bad cycle
		"event -2\n",              // negative cycle
		"event 5\nnode\n",         // missing coordinate
		"event 5\nnode a,b\n",     // bad coordinate
		"event 5\nlink 1,1 9 1\n", // dimension outside the coordinate
		"event 5\nlink 1,1 0 0\n", // bad direction
		"event 5\nfoo bar\n",      // unknown directive
	}
	for _, in := range cases {
		if _, err := ReadSchedule(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	s, err := ReadSchedule(strings.NewReader("# only comments\n\n"))
	if err != nil || len(s.Events) != 0 {
		t.Errorf("comment-only input: %v, %+v", err, s)
	}
}

func TestRandomSchedule(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.RandomNodeFaults(m, 4, rand.New(rand.NewSource(3)))
	draw := func() FaultSchedule {
		return RandomSchedule(f, 100, 1000, rand.New(rand.NewSource(9)))
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RandomSchedule not deterministic for a fixed seed")
	}
	if len(a.Events) == 0 {
		t.Fatal("mtbf 100 over 1000 cycles should draw events")
	}
	seen := map[int64]bool{}
	last := -1
	for _, ev := range a.Events {
		if ev.Cycle < last || ev.Cycle >= 1000 {
			t.Errorf("event cycle %d out of order or horizon", ev.Cycle)
		}
		last = ev.Cycle
		if len(ev.Nodes) != 1 || len(ev.Links) != 0 {
			t.Errorf("event %+v is not a single node fault", ev)
		}
		c := ev.Nodes[0]
		if f.NodeFaulty(c) {
			t.Errorf("drew already-faulty node %v", c)
		}
		if seen[m.Index(c)] {
			t.Errorf("node %v struck twice", c)
		}
		seen[m.Index(c)] = true
	}
	if s := RandomSchedule(f, 0, 1000, rand.New(rand.NewSource(1))); len(s.Events) != 0 {
		t.Error("mtbf 0 should disable random injection")
	}
}

// FuzzFaultSchedule checks the schedule-file format's round-trip invariant
// on arbitrary input: whatever ReadSchedule accepts, WriteSchedule must
// serialize to a canonical form that re-parses and re-serializes to
// byte-identical output, and nothing may panic.
func FuzzFaultSchedule(f *testing.F) {
	f.Add("event 500\nnode 3,4\nlink 1,1 0 +1\nevent 900\nnode 7,7\n")
	f.Add("# comment\n\nevent 0\nnode 0,0,0\nlink 2,2,2 2 -1\n")
	f.Add("event 7\nevent 7\nnode 1,2\nnode 1,2\n")
	f.Add("event 10\n")          // empty event: canonicalizes away
	f.Add("node 1,1\nevent 5\n") // node before event: must error
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadSchedule(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; we fuzz for panics and round-trip
		}
		var first bytes.Buffer
		if err := WriteSchedule(&first, s); err != nil {
			t.Fatalf("WriteSchedule on accepted input: %v", err)
		}
		s2, err := ReadSchedule(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteSchedule(&second, s2); err != nil {
			t.Fatalf("WriteSchedule on round-tripped schedule: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not canonical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		if !reflect.DeepEqual(s.Canonical(), s2.Canonical()) {
			t.Fatalf("round-trip changed the schedule:\n%+v\nvs\n%+v", s.Canonical(), s2.Canonical())
		}
	})
}
