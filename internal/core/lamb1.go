package core

import (
	"fmt"
	"time"

	"lambmesh/internal/mesh"
	"lambmesh/internal/reach"
	"lambmesh/internal/rect"
	"lambmesh/internal/routing"
	"lambmesh/internal/vcover"
)

// Lamb1 finds a lamb set by the bipartite reduction of Section 6.3.1:
//
//  1. Find SES/DES partitions and the k-round reachability matrix R^(k)
//     (Find-SES-Partition, Find-DES-Partition, Find-Reachability).
//  2. Build a bipartite graph on the relevant SESs and DESs — those whose
//     row/column of R^(k) contains a zero — with an edge per zero entry and
//     set sizes (or total values) as weights.
//  3. Solve weighted vertex cover exactly by min-cut and return the union
//     of the chosen sets (plus any predetermined lambs).
//
// The result is a valid lamb set of size at most twice the minimum
// (Theorem 6.7); total time O(k d^3 f^3 + |lambs|), independent of N.
//
// Lamb1 is a thin wrapper over a throwaway Solver; callers computing lamb
// sets repeatedly should hold a Solver and call its Lamb1 method, which
// produces byte-identical results without the per-call allocations.
func Lamb1(f *mesh.FaultSet, orders routing.MultiOrder, opts ...Option) (*Result, error) {
	return NewSolver().Lamb1(f, orders, opts...)
}

// Lamb1 is the package-level Lamb1 drawing every intermediate from the
// Solver's scratch. The returned Result owns its memory.
func (s *Solver) Lamb1(f *mesh.FaultSet, orders routing.MultiOrder, opts ...Option) (*Result, error) {
	cfg := buildConfig(opts)
	if err := validateConfig(f, cfg); err != nil {
		return nil, err
	}
	start := time.Now()
	var rc *reach.Reachability
	var err error
	if cfg.sweep {
		rc, err = reach.ComputeWithSweepScratch(f, orders, cfg.workers, &s.rs)
	} else {
		rc, err = reach.ComputeScratch(f, orders, cfg.workers, &s.rs)
	}
	if err != nil {
		return nil, err
	}
	reachElapsed := time.Since(start)
	res, err := s.lamb1FromReach(f, orders, cfg, rc)
	if err != nil {
		return nil, err
	}
	part := time.Duration(s.rs.PartitionNanos)
	s.phases = PhaseTimes{
		Partition: part,
		Reach:     reachElapsed - part,
		VCover:    time.Since(start) - reachElapsed,
		Total:     time.Since(start),
	}
	return res, nil
}

// lamb1FromReach is Lamb1's back half: the WVC reduction over an
// already-computed Reachability. Shared between the full pipeline above and
// the incremental patch path (incremental.go), which assembles rc from
// carried-over partitions and patched matrices — the reduction itself is
// oblivious to where R^(k) came from.
func (s *Solver) lamb1FromReach(f *mesh.FaultSet, orders routing.MultiOrder, cfg *config, rc *reach.Reachability) (*Result, error) {
	sigma := rc.Sigma[0]
	delta := rc.Delta[len(rc.Delta)-1]
	cover, st := s.coverFromReach(f, cfg, rc)
	zr, zc := s.zr, s.zc
	res := newResult(f.Mesh(), orders, cfg, st, rc, func(emit func(mesh.Coord)) {
		for ii, i := range zr {
			if cover.Left[ii] {
				sigma.Sets[i].Rect.ForEach(emit)
			}
		}
		for jj, j := range zc {
			if cover.Right[jj] {
				delta.Sets[j].Rect.ForEach(emit)
			}
		}
	})
	if cfg.keepReach {
		// The retained Reachability references scratch arenas; hand them to
		// the garbage collector so the next call cannot clobber it.
		s.rs.Detach()
	}
	return res, nil
}

// coverFromReach is the WVC reduction proper: build the bipartite graph on
// the relevant SESs/DESs of rc and solve it. Shared by lamb1FromReach and
// Lamb1Count. The chosen sets are indexed by s.zr/s.zc, which stay valid
// until the Solver's next computation.
func (s *Solver) coverFromReach(f *mesh.FaultSet, cfg *config, rc *reach.Reachability) (*vcover.Cover, Stats) {
	sigma := rc.Sigma[0]
	delta := rc.Delta[len(rc.Delta)-1]

	s.zr = rc.RK.AppendZeroRows(s.zr[:0])
	s.zc = rc.RK.AppendZeroCols(s.zc[:0], &s.colCounts)
	zr, zc := s.zr, s.zc

	pre := cfg.predeterminedIndex(f.Mesh())
	bg := &s.bg
	bg.LeftWeight = growInt64s(bg.LeftWeight, len(zr))
	bg.RightWeight = growInt64s(bg.RightWeight, len(zc))
	bg.Edges = growLists(bg.Edges, len(zr))
	for ii, i := range zr {
		bg.LeftWeight[ii] = setWeight(f.Mesh(), sigma.Sets[i].Rect, cfg, pre)
		for jj, j := range zc {
			if !rc.RK.Get(i, j) {
				bg.Edges[ii] = append(bg.Edges[ii], jj)
			}
		}
	}
	for jj, j := range zc {
		bg.RightWeight[jj] = setWeight(f.Mesh(), delta.Sets[j].Rect, cfg, pre)
	}

	cover := s.vs.SolveBipartite(bg)
	return cover, Stats{
		Faults:      f.Count(),
		NumSES:      sigma.Len(),
		NumDES:      delta.Len(),
		RelevantSES: len(zr),
		RelevantDES: len(zc),
		CoverWeight: cover.Weight,
	}
}

// defaultCfg is the option-free configuration Lamb1Count runs with; shared
// and never written.
var defaultCfg config

// Lamb1Count runs the Lamb1 pipeline but returns only the stats and the
// exact number of distinct lamb nodes, without materializing a Result. The
// count comes from rectangle arithmetic: the chosen SESs are pairwise
// disjoint (they come from one partition), as are the chosen DESs, so the
// union size is sum|S| + sum_j (|D_j| - sum_i |D_j n S_i|) — identical to
// Result.NumLambs() on the same inputs. Extension options (node values,
// predetermined lambs) are not supported; use Lamb1 for those. In steady
// state a Solver's Lamb1Count performs zero heap allocations at
// workers <= 1 — the campaign trial loop is built on it.
func (s *Solver) Lamb1Count(f *mesh.FaultSet, orders routing.MultiOrder, workers int) (Stats, int64, error) {
	start := time.Now()
	rc, err := reach.ComputeScratch(f, orders, workers, &s.rs)
	if err != nil {
		return Stats{}, 0, err
	}
	reachElapsed := time.Since(start)
	cover, st := s.coverFromReach(f, &defaultCfg, rc)

	sigma := rc.Sigma[0]
	delta := rc.Delta[len(rc.Delta)-1]
	zr, zc := s.zr, s.zc
	var n int64
	for ii, i := range zr {
		if cover.Left[ii] {
			n += sigma.Sets[i].Rect.Size()
		}
	}
	for jj, j := range zc {
		if !cover.Right[jj] {
			continue
		}
		d := delta.Sets[j].Rect
		n += d.Size()
		for ii, i := range zr {
			if cover.Left[ii] {
				n -= d.IntersectionSize(sigma.Sets[i].Rect)
			}
		}
	}

	part := time.Duration(s.rs.PartitionNanos)
	s.phases = PhaseTimes{
		Partition: part,
		Reach:     reachElapsed - part,
		VCover:    time.Since(start) - reachElapsed,
		Total:     time.Since(start),
	}
	return st, n, nil
}

// setWeight returns the total value of the nodes of r, excluding
// predetermined lambs (which are removed from every set per Section 7).
// With no options this is just the set size, computed in O(d).
func setWeight(m *mesh.Mesh, r rect.Rect, cfg *config, pre map[int64]struct{}) int64 {
	w := r.Size() // default value 1 per node
	for idx, v := range cfg.values {
		if _, isPre := pre[idx]; isPre {
			continue // removed below; its custom value must not count
		}
		if r.Contains(m.CoordOf(idx)) {
			w += v - 1
		}
	}
	// Predetermined nodes are removed from the set; each contributed the
	// default 1 to Size above (their custom values were skipped).
	for idx := range pre {
		if r.Contains(m.CoordOf(idx)) {
			w--
		}
	}
	if w < 0 {
		w = 0
	}
	return w
}

// validateConfig rejects ill-formed extension options.
func validateConfig(f *mesh.FaultSet, cfg *config) error {
	for idx, v := range cfg.values {
		if v < 0 {
			return fmt.Errorf("core: negative value %d for node %v", v, f.Mesh().CoordOf(idx))
		}
		if idx < 0 || idx >= f.Mesh().Nodes() {
			return fmt.Errorf("core: value key %d outside mesh", idx)
		}
	}
	for _, c := range cfg.predetermined {
		if !f.Mesh().Contains(c) {
			return fmt.Errorf("core: predetermined lamb %v outside mesh", c)
		}
		if f.NodeFaulty(c) {
			return fmt.Errorf("core: predetermined lamb %v is faulty", c)
		}
	}
	return nil
}
