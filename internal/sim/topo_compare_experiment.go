package sim

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
	"lambmesh/internal/wormhole"
)

func init() {
	extraRegistry = append(extraRegistry,
		Experiment{ID: "topo-compare", Title: "topology comparison: lamb routing on mesh/torus/hypercube vs VC-free direct routing on a full mesh, 64 nodes each", Weight: 8, Run: runTopoCompare},
	)
}

// topoCompareRates are the two static load points, shared by all four
// topologies so the accepted columns compare like for like.
var topoCompareRates = []float64{0.02, 0.08}

// runTopoCompare prices the four network families against each other on the
// same node count (64), the same uniform 8-flit traffic, and the same number
// of random node faults. Each family runs its natural strategy at its
// minimum VC count: the mesh and hypercube run 2-round lamb routing on 2
// VCs, the torus needs 4 VCs (a dateline pair per round, Section 7), and
// the full mesh runs the VC-free direct/one-hop-indirect scheme on a single
// VC. The channels column shows what each family pays in wiring for its VC
// savings; accepted/p99 show what the extra connectivity buys under load.
func runTopoCompare(cfg Config) *Table {
	trials := scaledTrials(cfg, 8)
	const warmup, measure = 100, 250
	t := &Table{ID: "topo-compare",
		Title: fmt.Sprintf("mesh vs torus vs hypercube vs full mesh: 64 nodes, 4 node faults, uniform 8-flit packets (%d trials/point)", trials),
		Paper: "Section 7: the lamb method generalizes beyond rectangular meshes; the comparison prices each family's VC requirement against its wiring and throughput",
		Columns: []string{"topology", "strategy", "vcs", "channels", "gives up",
			fmt.Sprintf("accepted@%g", topoCompareRates[0]), fmt.Sprintf("accepted@%g", topoCompareRates[1]),
			fmt.Sprintf("p99@%g", topoCompareRates[0]), fmt.Sprintf("sat@%g", topoCompareRates[1]),
			"delivered"},
	}
	cases := []struct {
		build    func() (mesh.Topology, error)
		strategy string
	}{
		{func() (mesh.Topology, error) { return mesh.New(8, 8) }, "lamb"},
		{func() (mesh.Topology, error) { return mesh.NewTorus(8, 8) }, "lamb"},
		{func() (mesh.Topology, error) { return mesh.NewHypercube(6) }, "lamb"},
		{func() (mesh.Topology, error) { return mesh.NewFullMesh(64) }, "direct"},
	}
	for _, tc := range cases {
		topo, err := tc.build()
		if err != nil {
			panic(err)
		}
		m := topo.Grid()
		orders := routing.UniformAscending(m.Dims(), 2)
		fs := mesh.RandomNodeFaultsOn(topo, 4, rand.New(rand.NewSource(cfg.Seed+4051)))
		builder, err := wormhole.NewStrategyBuilder(tc.strategy, orders)
		if err != nil {
			panic(err)
		}
		strat, err := builder(fs)
		if err != nil {
			panic(err)
		}
		si := strategyIndex(tc.strategy)
		net := wormhole.DefaultConfig()
		net.VirtualChannels = strat.MinVCs()
		spec := wormhole.SweepSpec{
			Rates:          topoCompareRates,
			Trials:         trials,
			Pattern:        wormhole.PatternUniform,
			PacketFlits:    8,
			Warmup:         warmup,
			Measure:        measure,
			Net:            net,
			Seed:           cfg.Seed,
			Workers:        cfg.Workers,
			Strategy:       builder,
			StrategyStream: si,
		}
		pts, err := wormhole.RunSweep(fs, orders, nil, spec)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprint(topo), tc.strategy,
			fmt.Sprint(strat.MinVCs()), fmt.Sprint(topo.NumChannels()),
			fmt.Sprint(len(strat.Sacrificed())),
			fmt.Sprintf("%.4f", pts[0].AcceptedFlitRate),
			fmt.Sprintf("%.4f", pts[1].AcceptedFlitRate),
			F(pts[0].P99Latency), fmt.Sprint(pts[1].Saturated),
			fmt.Sprintf("%.4f", pts[0].DeliveredFraction))
	}
	return t
}

// strategyIndex maps a strategy name to its StrategyNames position, the
// sweep seed stream that keeps strategies on disjoint trial seeds.
func strategyIndex(name string) int {
	for i, n := range wormhole.StrategyNames() {
		if n == name {
			return i
		}
	}
	panic("unknown strategy " + name)
}
