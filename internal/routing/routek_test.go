package routing

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
)

func TestChooseRouteKDelegatesToK2(t *testing.T) {
	m := mesh.MustNew(5, 5)
	o := NewOracle(mesh.NewFaultSet(m))
	orders := UniformAscending(2, 2)
	r, ok := ChooseRouteK(o, orders, mesh.C(0, 0), mesh.C(4, 4), nil)
	if !ok || r.Hops() != 8 {
		t.Fatalf("k=2 delegation: %v ok=%v", r, ok)
	}
}

func TestChooseRouteKThreeRounds(t *testing.T) {
	m := mesh.MustNew(5, 5)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(2, 0))
	o := NewOracle(f)
	orders := UniformAscending(2, 3)
	r, ok := ChooseRouteK(o, orders, mesh.C(0, 0), mesh.C(4, 0), nil)
	if !ok {
		t.Fatal("3-round route should exist")
	}
	if len(r.Vias) != 2 {
		t.Fatalf("vias = %v", r.Vias)
	}
	// The route must be fault-free and end correctly.
	for _, c := range r.Path {
		if f.NodeFaulty(c) {
			t.Errorf("path visits fault %v", c)
		}
	}
	if !r.Path[len(r.Path)-1].Equal(mesh.C(4, 0)) {
		t.Errorf("path ends at %v", r.Path[len(r.Path)-1])
	}
	// Shortest detour is distance + 2.
	if r.Hops() != 6 {
		t.Errorf("hops = %d, want 6 (path %v)", r.Hops(), r.Path)
	}
	// Turn bound for k rounds.
	if r.Turns() > 3*2-1 {
		t.Errorf("turns = %d beyond bound", r.Turns())
	}
}

// The DP and the reference ReachK must agree on existence.
func TestChooseRouteKMatchesReachK(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := mesh.MustNew(4, 4)
	for trial := 0; trial < 10; trial++ {
		f := mesh.RandomNodeFaults(m, 3, rng)
		o := NewOracle(f)
		orders := UniformAscending(2, 3)
		for pair := 0; pair < 25; pair++ {
			v := m.CoordOf(rng.Int63n(m.Nodes()))
			w := m.CoordOf(rng.Int63n(m.Nodes()))
			_, ok := ChooseRouteK(o, orders, v, w, rng)
			want := o.ReachK(orders, v, w)
			if ok != want {
				t.Fatalf("trial %d: ChooseRouteK(%v,%v) ok=%v but ReachK=%v", trial, v, w, ok, want)
			}
		}
	}
}

// Each round segment of the returned route must itself be a legal
// fault-free dimension-ordered route.
func TestChooseRouteKSegmentsLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m := mesh.MustNew(5, 4)
	f := mesh.RandomNodeFaults(m, 3, rng)
	o := NewOracle(f)
	orders := UniformAscending(2, 3)
	for pair := 0; pair < 40; pair++ {
		v := m.CoordOf(rng.Int63n(m.Nodes()))
		w := m.CoordOf(rng.Int63n(m.Nodes()))
		r, ok := ChooseRouteK(o, orders, v, w, nil)
		if !ok {
			continue
		}
		stops := append(append([]mesh.Coord{v}, r.Vias...), w)
		for t2 := 0; t2 < 3; t2++ {
			if !o.ReachOne(orders[t2], stops[t2], stops[t2+1]) {
				t.Fatalf("segment %d (%v -> %v) not legal", t2, stops[t2], stops[t2+1])
			}
		}
	}
}

func TestChooseRouteKTorus(t *testing.T) {
	m, err := mesh.NewTorus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(2, 2))
	o := NewOracle(f)
	orders := UniformAscending(2, 3)
	r, ok := ChooseRouteK(o, orders, mesh.C(0, 0), mesh.C(4, 4), nil)
	if !ok {
		t.Fatal("torus route should exist")
	}
	// Wrap-aware shortest: L1 wrapped distance is 1+1 = 2.
	if r.Hops() != 2 {
		t.Errorf("torus hops = %d, want 2 (path %v)", r.Hops(), r.Path)
	}
}

func TestChooseRouteKUnroutable(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(1, 0), mesh.C(0, 1))
	o := NewOracle(f)
	if _, ok := ChooseRouteK(o, UniformAscending(2, 3), mesh.C(0, 0), mesh.C(3, 3), nil); ok {
		t.Error("isolated corner should stay unroutable at any k")
	}
}
