package core

import (
	"fmt"
	"sort"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// Reconfigurer drives the roll-back/reconfigure framework the paper
// sketches in Section 1: when a diagnostic detects new faults, the system
// rolls back to a checkpoint, extends the fault set, and recomputes the
// lamb set assuming static faults and global knowledge. The Reconfigurer
// holds that evolving state. With KeepLambs set, each new lamb set is
// forced to contain the previous one (via the Section 7 predetermined-lamb
// extension), so nodes never oscillate back from lamb to survivor — an
// operational property reconfiguration protocols usually want.
//
// Because fault growth is monotone, successive recomputations share almost
// all of their work: the Reconfigurer keeps the previous generation's
// partitions, classifiers, and one-round matrices warm and patches only
// what the fault delta touches (incremental.go), falling back to the full
// pipeline when the delta exceeds IncrementalThreshold or an option the
// patch path cannot honor is requested. Both paths produce byte-identical
// lamb sets.
type Reconfigurer struct {
	faults *mesh.FaultSet
	orders routing.MultiOrder
	lambs  []mesh.Coord
	// KeepLambs forces monotone lamb sets across generations.
	KeepLambs bool
	// Workers bounds the worker pool each recompute's reachability kernels
	// run on; <= 0 means NumCPU. The lamb set is identical for any value —
	// this only trades recompute latency against CPU share.
	Workers int
	// IncrementalThreshold is the largest fault delta AddFaults will patch
	// incrementally; larger batches (and values <= 0, which disable the
	// incremental path entirely) recompute from scratch. Defaults to
	// DefaultIncrementalThreshold.
	IncrementalThreshold int
	// generation counts completed reconfigurations.
	generation int
	// solver carries the lamb pipeline's scratch across recomputes; created
	// lazily, used only by AddFaults (callers drive a Reconfigurer from one
	// goroutine, e.g. the lambd apply worker).
	solver *Solver
	// inc is the warm incremental state of the previous generation; nil
	// until the first successful recompute (or after an error, which
	// invalidates it).
	inc *incState
	// phases is the phase split of the last AddFaults recompute.
	phases PhaseTimes
	// generic routes every recompute through TorusLamb (the Section 7
	// profile-grouped SEC/DEC fallback) instead of the rectangular mesh
	// pipeline; set by NewGenericReconfigurer for tori.
	generic bool
}

// NewReconfigurer starts with a fault-free mesh and an empty lamb set.
func NewReconfigurer(m *mesh.Mesh, orders routing.MultiOrder, keepLambs bool) (*Reconfigurer, error) {
	if err := orders.Validate(m.Dims()); err != nil {
		return nil, err
	}
	if m.Torus() {
		return nil, fmt.Errorf("core: Reconfigurer uses the mesh algorithms; tori need the generic path")
	}
	return &Reconfigurer{
		faults:               mesh.NewFaultSet(m),
		orders:               orders,
		KeepLambs:            keepLambs,
		IncrementalThreshold: DefaultIncrementalThreshold,
	}, nil
}

// NewGenericReconfigurer is NewReconfigurer for topologies the rectangular
// mesh pipeline cannot handle — tori in particular. Every recompute runs
// the generic O(kN^2) TorusLamb path, and with keepLambs the previous
// generation's still-good lambs are folded back into the result (a superset
// of a valid lamb set is valid: lambs remain routable through, so shrinking
// the endpoint set never breaks pairwise reachability).
func NewGenericReconfigurer(m *mesh.Mesh, orders routing.MultiOrder, keepLambs bool) (*Reconfigurer, error) {
	if err := orders.Validate(m.Dims()); err != nil {
		return nil, err
	}
	return &Reconfigurer{
		faults:    mesh.NewFaultSet(m),
		orders:    orders,
		KeepLambs: keepLambs,
		generic:   true,
	}, nil
}

// Faults returns the accumulated fault set (do not mutate).
func (r *Reconfigurer) Faults() *mesh.FaultSet { return r.faults }

// Lambs returns the current lamb set (do not mutate).
func (r *Reconfigurer) Lambs() []mesh.Coord { return r.lambs }

// Generation returns how many reconfigurations have completed.
func (r *Reconfigurer) Generation() int { return r.generation }

// LastPhases returns the phase split of the most recent AddFaults
// recompute (zero before the first).
func (r *Reconfigurer) LastPhases() PhaseTimes { return r.phases }

// AddFaults folds newly detected faults into the configuration and
// recomputes the lamb set with Lamb1. A node that was a lamb and has now
// failed outright simply moves from the lamb set to the fault set. The
// returned Result reflects the new configuration.
//
// When the genuine delta (faults not already present) is at most
// IncrementalThreshold and warm state from the previous generation exists,
// the recompute patches that state instead of running the full pipeline;
// the lamb set is byte-identical either way.
func (r *Reconfigurer) AddFaults(nodes []mesh.Coord, links []mesh.Link) (*Result, error) {
	if r.generic {
		return r.genericAddFaults(nodes, links)
	}
	// Collect the genuine delta before mutating the fault set: the
	// incremental path re-checks surviving reachability entries against
	// exactly these, and duplicates would only slow that down.
	var dn []mesh.Coord
	var dl []mesh.Link
	for _, c := range nodes {
		if !r.faults.Mesh().Contains(c) {
			return nil, fmt.Errorf("core: new fault %v outside mesh", c)
		}
		if !r.faults.NodeFaulty(c) {
			dn = append(dn, c)
			r.faults.AddNode(c)
		}
	}
	for _, l := range links {
		if !r.faults.LinkFaulty(l) {
			dl = append(dl, l)
			r.faults.AddLink(l) // panics on invalid links, as before
		}
	}
	opts := []Option{WithWorkers(r.Workers)}
	if r.KeepLambs {
		// Previous lambs that just failed are faults now, not lambs.
		var stillGood []mesh.Coord
		for _, c := range r.lambs {
			if !r.faults.NodeFaulty(c) {
				stillGood = append(stillGood, c)
			}
		}
		opts = append(opts, WithPredetermined(stillGood))
	}
	if r.solver == nil {
		r.solver = NewSolver()
	}
	var res *Result
	var err error
	if r.inc != nil && r.IncrementalThreshold > 0 && len(dn)+len(dl) <= r.IncrementalThreshold {
		res, err = r.incrementalSolve(dn, dl, opts)
	} else {
		res, err = r.fullSolve(opts)
	}
	if err != nil {
		r.inc = nil // warm state may be half-patched; rebuild next time
		return nil, err
	}
	r.lambs = res.Lambs
	r.generation++
	return res, nil
}

// genericAddFaults is AddFaults on the generic path: grow the fault set,
// rerun TorusLamb from scratch, and (with KeepLambs) union in the previous
// generation's still-good lambs, re-sorted to mesh-index order.
func (r *Reconfigurer) genericAddFaults(nodes []mesh.Coord, links []mesh.Link) (*Result, error) {
	for _, c := range nodes {
		if !r.faults.Mesh().Contains(c) {
			return nil, fmt.Errorf("core: new fault %v outside mesh", c)
		}
		r.faults.AddNode(c)
	}
	for _, l := range links {
		r.faults.AddLink(l) // panics on invalid links, as before
	}
	res, err := TorusLamb(r.faults, r.orders)
	if err != nil {
		return nil, err
	}
	if r.KeepLambs {
		for _, c := range r.lambs {
			if r.faults.NodeFaulty(c) || res.IsLamb(c) {
				continue
			}
			res.lambIdx[r.faults.Mesh().Index(c)] = struct{}{}
			res.Lambs = append(res.Lambs, c)
		}
		m := r.faults.Mesh()
		sort.Slice(res.Lambs, func(i, j int) bool {
			return m.Index(res.Lambs[i]) < m.Index(res.Lambs[j])
		})
	}
	r.lambs = res.Lambs
	r.generation++
	return res, nil
}
