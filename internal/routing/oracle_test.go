package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lambmesh/internal/mesh"
)

// naiveReachOne is an independent reference: walk the dimension-ordered
// route one hop at a time, checking node and link faults directly against
// the fault set. It must agree with Oracle.ReachOne everywhere.
func naiveReachOne(f *mesh.FaultSet, pi Order, v, w mesh.Coord) bool {
	m := f.Mesh()
	if f.NodeFaulty(v) {
		return false
	}
	cur := v.Clone()
	for _, dim := range pi {
		for cur[dim] != w[dim] {
			dir := 1
			if !m.Torus() {
				if w[dim] < cur[dim] {
					dir = -1
				}
			} else {
				n := m.Width(dim)
				dpos := ((w[dim]-cur[dim])%n + n) % n
				if dpos > n-dpos {
					dir = -1
				}
			}
			l := mesh.Link{From: cur, Dim: dim, Dir: dir}
			if f.LinkFaulty(l) {
				return false
			}
			next, ok := m.Neighbor(cur, dim, dir)
			if !ok {
				return false
			}
			if f.NodeFaulty(next) {
				return false
			}
			cur = next
		}
	}
	return true
}

func TestOrderBasics(t *testing.T) {
	if got := Ascending(3).String(); got != "XYZ" {
		t.Errorf("Ascending(3) = %q", got)
	}
	if got := Descending(3).String(); got != "ZYX" {
		t.Errorf("Descending(3) = %q", got)
	}
	if got := (Order{0, 1, 2, 3}).String(); got != "XYZD3" {
		t.Errorf("4D order = %q", got)
	}
	if !Ascending(3).Reverse().Equal(Descending(3)) {
		t.Error("Reverse of ascending should be descending")
	}
	if err := Ascending(3).Validate(3); err != nil {
		t.Error(err)
	}
	if err := (Order{0, 0, 1}).Validate(3); err == nil {
		t.Error("duplicate dims should fail validation")
	}
	if err := (Order{0, 1}).Validate(3); err == nil {
		t.Error("wrong length should fail validation")
	}
	mo := UniformAscending(3, 2)
	if mo.Rounds() != 2 || mo.String() != "XYZXYZ" {
		t.Errorf("UniformAscending = %v", mo)
	}
	if err := mo.Validate(3); err != nil {
		t.Error(err)
	}
	if err := (MultiOrder{}).Validate(3); err == nil {
		t.Error("zero rounds should fail")
	}
}

// The worked example of Section 2.1: in a 2D mesh, (3,2) is not reachable
// from (0,0) by XY-routing if any of (1,0),(2,0),(3,0),(3,1) is faulty; but
// (0,0) may remain reachable from (3,2), whose XY-route passes through
// (2,2),(1,2),(0,2),(0,1).
func TestSection21Example(t *testing.T) {
	m := mesh.MustNew(4, 3)
	xy := Ascending(2)
	for _, fault := range []mesh.Coord{mesh.C(1, 0), mesh.C(2, 0), mesh.C(3, 0), mesh.C(3, 1)} {
		f := mesh.NewFaultSet(m)
		f.AddNode(fault)
		o := NewOracle(f)
		if o.ReachOne(xy, mesh.C(0, 0), mesh.C(3, 2)) {
			t.Errorf("with fault %v, (0,0) should not XY-reach (3,2)", fault)
		}
	}
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(1, 0), mesh.C(2, 0), mesh.C(3, 0), mesh.C(3, 1))
	o := NewOracle(f)
	if !o.ReachOne(xy, mesh.C(3, 2), mesh.C(0, 0)) {
		t.Error("(3,2) should XY-reach (0,0) around the faults")
	}
}

func TestReachOneSelfAndFaultyEndpoints(t *testing.T) {
	m := mesh.MustNew(5, 5)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(2, 2))
	o := NewOracle(f)
	xy := Ascending(2)
	if !o.ReachOne(xy, mesh.C(1, 1), mesh.C(1, 1)) {
		t.Error("a good node reaches itself")
	}
	if o.ReachOne(xy, mesh.C(2, 2), mesh.C(2, 2)) {
		t.Error("a faulty node reaches nothing")
	}
	if o.ReachOne(xy, mesh.C(0, 0), mesh.C(2, 2)) {
		t.Error("faulty destination is unreachable")
	}
	if o.ReachOne(xy, mesh.C(2, 2), mesh.C(0, 0)) {
		t.Error("faulty source reaches nothing")
	}
}

func TestReachOneLinkFaults(t *testing.T) {
	m := mesh.MustNew(5, 5)
	f := mesh.NewFaultSet(m)
	// Fail the +X link from (1,2) to (2,2) only.
	f.AddLink(mesh.Link{From: mesh.C(1, 2), Dim: 0, Dir: 1})
	o := NewOracle(f)
	xy := Ascending(2)
	if o.ReachOne(xy, mesh.C(0, 2), mesh.C(4, 2)) {
		t.Error("route crosses the faulty +X link")
	}
	if !o.ReachOne(xy, mesh.C(4, 2), mesh.C(0, 2)) {
		t.Error("the -X direction is still good")
	}
	// Routes on other rows are unaffected.
	if !o.ReachOne(xy, mesh.C(0, 1), mesh.C(4, 1)) {
		t.Error("other rows should be unaffected")
	}
	// A YX-route dodges the link by moving Y first.
	yx := Order{1, 0}
	if !o.ReachOne(yx, mesh.C(0, 2), mesh.C(4, 3)) {
		t.Error("YX route should dodge the row-2 link fault")
	}
}

func TestOracleMatchesNaiveRandom2D(t *testing.T) {
	testOracleMatchesNaive(t, mesh.MustNew(7, 6), 6, 3)
}

func TestOracleMatchesNaiveRandom3D(t *testing.T) {
	testOracleMatchesNaive(t, mesh.MustNew(4, 5, 3), 7, 4)
}

func testOracleMatchesNaive(t *testing.T, m *mesh.Mesh, nodeFaults, linkFaults int) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	orders := []Order{Ascending(m.Dims()), Descending(m.Dims())}
	if m.Dims() == 3 {
		orders = append(orders, Order{1, 2, 0}, Order{2, 0, 1})
	}
	for trial := 0; trial < 20; trial++ {
		f := mesh.RandomNodeFaults(m, nodeFaults, rng)
		for i := 0; i < linkFaults; i++ {
			for {
				c := m.CoordOf(rng.Int63n(m.Nodes()))
				dim := rng.Intn(m.Dims())
				dir := 1 - 2*rng.Intn(2)
				if _, ok := m.Neighbor(c, dim, dir); ok {
					f.AddLink(mesh.Link{From: c, Dim: dim, Dir: dir})
					break
				}
			}
		}
		o := NewOracle(f)
		for _, pi := range orders {
			for pair := 0; pair < 200; pair++ {
				v := m.CoordOf(rng.Int63n(m.Nodes()))
				w := m.CoordOf(rng.Int63n(m.Nodes()))
				got := o.ReachOne(pi, v, w)
				want := naiveReachOne(f, pi, v, w)
				if got != want {
					t.Fatalf("trial %d order %v: ReachOne(%v,%v) = %v, naive = %v (faults %v, links %v)",
						trial, pi, v, w, got, want, f.SortedNodeFaults(), f.LinkFaults())
				}
			}
		}
	}
}

func TestOracleMatchesNaiveTorus(t *testing.T) {
	for _, widths := range [][]int{{8, 8}, {7, 5}, {4, 4, 4}} {
		m, err := mesh.NewTorus(widths...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		pi := Ascending(m.Dims())
		for trial := 0; trial < 15; trial++ {
			f := mesh.RandomNodeFaults(m, 4, rng)
			for i := 0; i < 3; i++ {
				c := m.CoordOf(rng.Int63n(m.Nodes()))
				f.AddLink(mesh.Link{From: c, Dim: rng.Intn(m.Dims()), Dir: 1 - 2*rng.Intn(2)})
			}
			o := NewOracle(f)
			for pair := 0; pair < 300; pair++ {
				v := m.CoordOf(rng.Int63n(m.Nodes()))
				w := m.CoordOf(rng.Int63n(m.Nodes()))
				if got, want := o.ReachOne(pi, v, w), naiveReachOne(f, pi, v, w); got != want {
					t.Fatalf("torus %v: ReachOne(%v,%v) = %v, naive = %v", m, v, w, got, want)
				}
			}
		}
	}
}

func TestReachableSetOne(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(2, 0))
	o := NewOracle(f)
	set := o.ReachableSetOne(Ascending(2), mesh.C(0, 0))
	// (0,0) XY-reaches (3,y) only by crossing (2,0) first: blocked.
	if set[m.Index(mesh.C(3, 0))] || set[m.Index(mesh.C(3, 3))] {
		t.Error("nodes beyond the fault in X should be unreachable")
	}
	if !set[m.Index(mesh.C(1, 3))] {
		t.Error("(1,3) should be reachable")
	}
	if set[m.Index(mesh.C(2, 0))] {
		t.Error("the fault itself is unreachable")
	}
}

func TestReachKTwoRounds(t *testing.T) {
	m := mesh.MustNew(4, 4)
	f := mesh.NewFaultSet(m)
	f.AddNode(mesh.C(2, 0))
	o := NewOracle(f)
	two := UniformAscending(2, 2)
	// One round cannot get from (0,0) to (3,0); two rounds can detour
	// through, e.g., (0,1) -> then XY to (3,0)? Round 2 from (0,1): X to
	// (3,1), Y to (3,0). Fault avoided.
	if o.ReachOne(Ascending(2), mesh.C(0, 0), mesh.C(3, 0)) {
		t.Fatal("one round should fail")
	}
	if !o.ReachK(two, mesh.C(0, 0), mesh.C(3, 0)) {
		t.Error("two rounds should succeed")
	}
	// Faulty endpoints are never k-reachable.
	if o.ReachK(two, mesh.C(0, 0), mesh.C(2, 0)) {
		t.Error("faulty destination should fail")
	}
}

// testing/quick property: whenever ReachOne says yes, the materialized path
// is genuinely fault-free, starts at v, ends at w, and each segment moves
// one step; whenever it says no, the path contains a fault or broken link.
func TestReachOneConsistentWithPathQuick(t *testing.T) {
	m := mesh.MustNew(6, 5, 4)
	rng := rand.New(rand.NewSource(222))
	f := mesh.RandomNodeFaults(m, 8, rng)
	mesh.RandomLinkFaults(f, 5, rng)
	o := NewOracle(f)
	pi := Order{2, 0, 1}
	prop := func(a, b, c, d, e, g uint) bool {
		v := mesh.C(int(a%6), int(b%5), int(c%4))
		w := mesh.C(int(d%6), int(e%5), int(g%4))
		path := Path(m, pi, v, w)
		clean := !f.NodeFaulty(path[0])
		for i := 1; i < len(path); i++ {
			if path[i].L1(path[i-1]) != 1 {
				return false // malformed path: fail the property outright
			}
			dim := stepDim(path[i-1], path[i])
			dir := path[i][dim] - path[i-1][dim]
			if f.NodeFaulty(path[i]) || f.LinkFaulty(mesh.Link{From: path[i-1], Dim: dim, Dir: dir}) {
				clean = false
			}
		}
		return o.ReachOne(pi, v, w) == clean
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
