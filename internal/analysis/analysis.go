// Package analysis implements the closed-form bounds and adversarial
// constructions of Ho & Stockmeyer (IPDPS 2002): the one-round lower bound
// of Theorem 3.1, the partition-size bound B(d,f) of Theorem 6.4, the
// tightness construction of Proposition 6.5, the diagonal fault pattern
// that meets (2d-1)f+1 exactly, and the Figure 15 family on which Lamb1 is
// nonoptimal by a factor approaching 2.
package analysis

import (
	"fmt"
	"sort"

	"lambmesh/internal/mesh"
)

// OneRoundLowerBound returns the Theorem 3.1 lower bound on the expected
// minimum lamb-set size for M_3(n) with f <= n random node faults and one
// round of dimension-ordered routing:
//
//	f n^2/4 - f^2 n/4 + f^3/12 - f.
//
// For n = f = 32 this is ~2698.67, the paper's "2698". The point of the
// theorem: even n faults force a constant fraction of an n^2 cross-section
// to be sacrificed, which is why the paper (and this library) default to
// two rounds.
func OneRoundLowerBound(n, f int) float64 {
	fn, nn := float64(f), float64(n)
	return fn*nn*nn/4 - fn*fn*nn/4 + fn*fn*fn/12 - fn
}

// PartitionBound returns B(d,f), the Theorem 6.4 upper bound on the size of
// the SES/DES partitions found by the algorithm for the ascending ordering
// on a mesh with the given widths (paper indexing: widths[0] = n_1):
//
//	B(d,f) = sum_{j=2..d} min{2f, n_d n_{d-1} ... n_{j+1} (n_j - 1)} + f + 1.
func PartitionBound(widths []int, f int) int64 {
	d := len(widths)
	total := int64(f + 1)
	for j := 2; j <= d; j++ {
		// Product of widths above j, times (n_j - 1); by convention the
		// j = d term is n_d - 1.
		prod := int64(widths[j-1] - 1)
		for t := j + 1; t <= d; t++ {
			prod *= int64(widths[t-1])
			if prod > int64(2*f) { // avoid overflow; min caps it anyway
				break
			}
		}
		if int64(2*f) < prod {
			prod = int64(2 * f)
		}
		total += prod
	}
	return total
}

// SimplePartitionBound is the rougher (2d-1)f + 1 bound.
func SimplePartitionBound(d, f int) int64 { return int64((2*d-1)*f + 1) }

// Prop65FaultSet constructs a node fault set of size f on M_d(n) (n odd,
// f <= n^(d-1)(n-1)/2) on which Find-SES-Partition returns a partition of
// exactly B(d,f) sets (Proposition 6.5).
func Prop65FaultSet(d, n, f int) (*mesh.FaultSet, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("analysis: Prop 6.5 needs odd n >= 3, got %d", n)
	}
	maxF := (pow(n, d-1) * int64(n-1)) / 2
	if int64(f) > maxF {
		return nil, fmt.Errorf("analysis: f = %d exceeds n^(d-1)(n-1)/2 = %d", f, maxF)
	}
	m, err := mesh.NewCube(d, n)
	if err != nil {
		return nil, err
	}
	fs := mesh.NewFaultSet(m)
	for _, c := range prop65Coords(d, n, f) {
		fs.AddNode(c)
	}
	return fs, nil
}

// prop65Coords realizes the recursive placement from the proof of
// Proposition 6.5.
func prop65Coords(d, n, f int) []mesh.Coord {
	if f == 0 {
		return nil
	}
	if d == 1 {
		// Faults at 1, 3, ..., 2f-1.
		out := make([]mesh.Coord, f)
		for i := 0; i < f; i++ {
			out[i] = mesh.Coord{2*i + 1}
		}
		return out
	}
	var out []mesh.Coord
	appendSlice := func(c int, sub []mesh.Coord) {
		for _, s := range sub {
			out = append(out, append(s.Clone(), c))
		}
	}
	if 2*f <= n-1 {
		// One fault in each slice 2i-1 for i = 1..f.
		for i := 1; i <= f; i++ {
			appendSlice(2*i-1, prop65Coords(d-1, n, 1))
		}
		return out
	}
	// f = qn + r: r slices get q+1 faults, n-r slices get q, and every odd
	// slice gets at least one. Give the +1 (or the only) faults to the odd
	// slices first.
	q, r := f/n, f%n
	slices := make([]int, 0, n)
	for c := 1; c < n; c += 2 {
		slices = append(slices, c)
	}
	for c := 0; c < n; c += 2 {
		slices = append(slices, c)
	}
	for pos, c := range slices {
		cnt := q
		if pos < r {
			cnt++
		}
		appendSlice(c, prop65Coords(d-1, n, cnt))
	}
	return out
}

// Prop65LinkFaultSet is the link-fault variant of Proposition 6.5: the same
// recursive placement, but each fault is the +direction link whose tail is
// the node the node-variant would have failed (along the dimension whose
// interval it cuts). Find-SES-Partition returns exactly B(d,f) sets for it
// too, since a cut link splits a 1-D interval just as a faulty node does.
func Prop65LinkFaultSet(d, n, f int) (*mesh.FaultSet, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("analysis: Prop 6.5 needs odd n >= 3, got %d", n)
	}
	maxF := (pow(n, d-1) * int64(n-1)) / 2
	if int64(f) > maxF {
		return nil, fmt.Errorf("analysis: f = %d exceeds n^(d-1)(n-1)/2 = %d", f, maxF)
	}
	m, err := mesh.NewCube(d, n)
	if err != nil {
		return nil, err
	}
	fs := mesh.NewFaultSet(m)
	for _, c := range prop65Coords(d, n, f) {
		fs.AddLink(mesh.Link{From: c, Dim: 0, Dir: 1})
	}
	return fs, nil
}

// DiagonalFaults places one fault at (i,i,...,i) for each odd i in
// [1, 2f-1] on M_d(n). For f <= (n-1)/2 and odd n, both the SEC and the DEC
// partitions have exactly (2d-1)f + 1 classes (Section 6.1).
func DiagonalFaults(d, n, f int) (*mesh.FaultSet, error) {
	if 2*f > n-1 {
		return nil, fmt.Errorf("analysis: diagonal pattern needs f <= (n-1)/2")
	}
	m, err := mesh.NewCube(d, n)
	if err != nil {
		return nil, err
	}
	fs := mesh.NewFaultSet(m)
	for i := 1; i <= f; i++ {
		c := make(mesh.Coord, d)
		for t := range c {
			c[t] = 2*i - 1
		}
		fs.AddNode(c)
	}
	return fs, nil
}

// Figure15 is the adversarial family of Section 6.3.1 on which Lamb1 is
// nonoptimal by a factor 2 - 1/(2m): the 2D mesh M_2(n) with n = 4m+1 and
// two full fault rows y = m and y = n-m-1, cutting the mesh into three
// components.
type Figure15 struct {
	Faults *mesh.FaultSet
	M      int // the family parameter
	N      int // mesh width, 4m+1
	// OptimalLambs is the minimum lamb-set size 2mn (sacrifice the two
	// outer components).
	OptimalLambs int64
	// Lamb1Lambs is the size (4m-1)n that the bipartite reduction returns.
	Lamb1Lambs int64
}

// NewFigure15 builds the instance for a given m >= 1.
func NewFigure15(m int) (*Figure15, error) {
	if m < 1 {
		return nil, fmt.Errorf("analysis: Figure 15 needs m >= 1")
	}
	n := 4*m + 1
	msh, err := mesh.NewCube(2, n)
	if err != nil {
		return nil, err
	}
	fs := mesh.NewFaultSet(msh)
	for x := 0; x < n; x++ {
		fs.AddNode(mesh.C(x, m))
		fs.AddNode(mesh.C(x, n-m-1))
	}
	return &Figure15{
		Faults:       fs,
		M:            m,
		N:            n,
		OptimalLambs: int64(2 * m * n),
		Lamb1Lambs:   int64((4*m - 1) * n),
	}, nil
}

// OneRoundEmpiricalLowerBound computes, for a concrete fault set on M_3(n),
// the lower bound on the minimum one-round lamb-set size implied by the
// proof of Theorem 3.1: greedily select faults with pairwise distinct X and
// Z coordinates; for each selected fault u either A(u)\F or B(u)\F must be
// entirely sacrificed, and these sets are pairwise disjoint, so
//
//	lambda >= sum over selected u of min(|A(u)\F|, |B(u)\F|).
//
// (This is the per-instance counterpart of the expectation bound; the paper
// quotes ~5750 as the simulated value for n = f = 32 versus the analytic
// 2698.)
func OneRoundEmpiricalLowerBound(f *mesh.FaultSet) int64 {
	m := f.Mesh()
	if m.Dims() != 3 {
		panic("analysis: one-round bound is defined for 3D meshes")
	}
	n := m.Width(0)
	half := float64(n-1) / 2

	// Count faults inside A(u) and B(u) exactly.
	countAminusF := func(u mesh.Coord) int64 {
		// A(u) = {(x, y, z0): y <= y0, y < (n-1)/2}
		yMax := u[1]
		if float64(yMax) >= half {
			yMax = (n - 1) / 2
			if float64(yMax) >= half {
				yMax--
			}
		}
		size := int64(n) * int64(yMax+1)
		for _, v := range f.NodeFaults() {
			if v[2] == u[2] && v[1] <= yMax {
				size--
			}
		}
		return size
	}
	countBminusF := func(u mesh.Coord) int64 {
		// B(u) = {(x0, y, z): y >= y0, y > (n-1)/2}
		yMin := u[1]
		if float64(yMin) <= half {
			yMin = n / 2
			if float64(yMin) <= half {
				yMin++
			}
		}
		size := int64(n) * int64(n-yMin)
		for _, v := range f.NodeFaults() {
			if v[0] == u[0] && v[1] >= yMin {
				size--
			}
		}
		return size
	}

	seenX := make(map[int]bool)
	seenZ := make(map[int]bool)
	var bound int64
	faults := f.SortedNodeFaults()
	sort.Slice(faults, func(i, j int) bool { return m.Index(faults[i]) < m.Index(faults[j]) })
	for _, u := range faults {
		if seenX[u[0]] || seenZ[u[2]] {
			continue
		}
		seenX[u[0]] = true
		seenZ[u[2]] = true
		a, b := countAminusF(u), countBminusF(u)
		if b < a {
			a = b
		}
		if a > 0 {
			bound += a
		}
	}
	return bound
}

func pow(base int, exp int) int64 {
	out := int64(1)
	for i := 0; i < exp; i++ {
		out *= int64(base)
	}
	return out
}
