// Quickstart: find a lamb set on a small faulty mesh, verify it, and route
// between survivors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lambmesh"
)

func main() {
	// An 8x8 mesh with three faulty nodes. Two of them cut off the corner
	// (0,0): it is still good, but no dimension-ordered route can reach
	// it, so it will become a lamb.
	m, err := lambmesh.NewMesh(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	faults := lambmesh.NewFaultSet(m)
	faults.AddNodes(lambmesh.C(1, 0), lambmesh.C(0, 1), lambmesh.C(5, 2))

	// Two rounds of XY routing — two virtual channels, deadlock-free.
	orders := lambmesh.TwoRoundXY()

	res, err := lambmesh.FindLambSet(faults, orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %v, faults: %d\n", m, faults.Count())
	fmt.Printf("lambs: %v (%d nodes sacrificed, %d survivors)\n",
		res.Lambs, res.NumLambs(), res.Survivors(faults))

	// The library can prove the result correct.
	if err := lambmesh.VerifyLambSet(faults, orders, res.Lambs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: every survivor reaches every survivor in 2 rounds")

	// Route between two survivors: at most k*d-1 = 3 turns, always.
	oracle := lambmesh.NewOracle(faults)
	src, dst := lambmesh.C(2, 0), lambmesh.C(7, 7)
	route, ok := lambmesh.ChooseRoute(oracle, orders, src, dst, nil)
	if !ok {
		log.Fatal("survivors must be routable")
	}
	fmt.Printf("route %v -> %v: %d hops, %d turns, via %v\n",
		src, dst, route.Hops(), route.Turns(), route.Vias)
}
