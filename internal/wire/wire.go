// Package wire is lambd's length-prefixed binary route protocol — the
// serving-layer counterpart of the class-table data plane. HTTP/JSON costs
// a request parse, coordinate string formatting, and a handful of
// allocations per query; this protocol is a fixed 8-byte header plus a
// flat little-endian payload, designed so the server answers a query with
// zero heap allocations once a connection is warm.
//
// Frame layout (all integers little-endian):
//
//	[0]    magic 0xA7
//	[1]    version (1)
//	[2]    type: 1 route request, 2 route response, 3 error
//	[3]    reserved (0)
//	[4:8]  payload length (uint32)
//
// Route request payload:  [u8 d] [d x u16 src] [d x u16 dst]
// Route response payload: [u8 code] [u8 d] [u8 nvias] [u8 reserved]
//
//	[u16 hops] [u16 turns] [u64 generation] [nvias x d x u16 via]
//
// Error payload: UTF-8 message. An error frame is terminal: the server
// closes the connection after sending one.
//
// Clients may pipeline: requests are answered in order, one response per
// request, so a client can keep many frames in flight on one connection.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Protocol constants.
const (
	Magic   = 0xA7
	Version = 1

	TRouteReq  = 1
	TRouteResp = 2
	TError     = 3

	HeaderLen = 8

	// MaxPayload bounds a frame so a corrupt or hostile length prefix
	// cannot make a peer allocate unbounded memory.
	MaxPayload = 1 << 20

	// MaxDims bounds the dimension byte (the protocol encodes d as u8).
	MaxDims = 255

	// MaxCoord bounds a coordinate value (encoded as u16).
	MaxCoord = 1<<16 - 1
)

// Route response codes.
const (
	CodeFound   = 0 // route exists; hops/turns/vias are valid
	CodeNoRoute = 1 // both endpoints usable, but no fault-free route
	CodeBadSrc  = 2 // src outside the mesh, faulty, or a lamb
	CodeBadDst  = 3 // dst outside the mesh, faulty, or a lamb
)

// Answer is one route answer in wire-friendly form. Via is the flattened
// NVias x d intermediate list; implementations reuse its capacity across
// queries, so callers must copy what they need to retain.
type Answer struct {
	Code  uint8
	Hops  int
	Turns int
	NVias int
	Gen   uint64
	Via   []int
}

// Backend answers route queries for a wire server. Query must be safe for
// concurrent use (one call per in-flight connection) and must write its
// entire answer into ans, reusing ans.Via's capacity.
type Backend interface {
	// Dims returns the mesh dimensionality every request must match.
	Dims() int
	// Query answers src -> dst. len(src) == len(dst) == Dims() is
	// guaranteed by the protocol layer; coordinate range checking is the
	// backend's job (out-of-mesh answers CodeBadSrc/CodeBadDst).
	Query(src, dst []int, ans *Answer)
}

// appendHeader appends a frame header for a payload of length n.
func appendHeader(b []byte, typ byte, n int) []byte {
	b = append(b, Magic, Version, typ, 0)
	return binary.LittleEndian.AppendUint32(b, uint32(n))
}

// parseHeader validates an 8-byte header and returns the type and payload
// length.
func parseHeader(h []byte) (typ byte, n int, err error) {
	if h[0] != Magic {
		return 0, 0, fmt.Errorf("wire: bad magic 0x%02x", h[0])
	}
	if h[1] != Version {
		return 0, 0, fmt.Errorf("wire: unsupported version %d", h[1])
	}
	if h[3] != 0 {
		return 0, 0, fmt.Errorf("wire: nonzero reserved byte 0x%02x", h[3])
	}
	n = int(binary.LittleEndian.Uint32(h[4:8]))
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("wire: payload length %d exceeds limit %d", n, MaxPayload)
	}
	switch h[2] {
	case TRouteReq, TRouteResp, TError:
		return h[2], n, nil
	}
	return 0, 0, fmt.Errorf("wire: unknown frame type %d", h[2])
}

// AppendRouteReq appends a route request frame for src -> dst.
func AppendRouteReq(b []byte, src, dst []int) ([]byte, error) {
	d := len(src)
	if d == 0 || d > MaxDims || len(dst) != d {
		return b, fmt.Errorf("wire: bad request dims %d/%d", len(src), len(dst))
	}
	b = appendHeader(b, TRouteReq, 1+4*d)
	b = append(b, byte(d))
	for _, v := range src {
		if v < 0 || v > MaxCoord {
			return b, fmt.Errorf("wire: coordinate %d out of range", v)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(v))
	}
	for _, v := range dst {
		if v < 0 || v > MaxCoord {
			return b, fmt.Errorf("wire: coordinate %d out of range", v)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(v))
	}
	return b, nil
}

// ParseRouteReq decodes a route request payload into src and dst, reusing
// their capacity. The caller has already verified the frame type.
func ParseRouteReq(p []byte, src, dst []int) (s, t []int, err error) {
	if len(p) < 1 {
		return src, dst, fmt.Errorf("wire: empty request payload")
	}
	d := int(p[0])
	if d == 0 || len(p) != 1+4*d {
		return src, dst, fmt.Errorf("wire: request payload length %d does not match d=%d", len(p), d)
	}
	src, dst = src[:0], dst[:0]
	off := 1
	for i := 0; i < d; i++ {
		src = append(src, int(binary.LittleEndian.Uint16(p[off:])))
		off += 2
	}
	for i := 0; i < d; i++ {
		dst = append(dst, int(binary.LittleEndian.Uint16(p[off:])))
		off += 2
	}
	return src, dst, nil
}

// AppendRouteResp appends a route response frame for an answer on a
// d-dimensional mesh.
func AppendRouteResp(b []byte, ans *Answer, d int) ([]byte, error) {
	if d == 0 || d > MaxDims || ans.NVias > 255 || len(ans.Via) != ans.NVias*d {
		return b, fmt.Errorf("wire: bad response shape d=%d nvias=%d len(via)=%d", d, ans.NVias, len(ans.Via))
	}
	if ans.Hops < 0 || ans.Hops > MaxCoord || ans.Turns < 0 || ans.Turns > MaxCoord {
		return b, fmt.Errorf("wire: hops/turns %d/%d out of range", ans.Hops, ans.Turns)
	}
	b = appendHeader(b, TRouteResp, 16+2*len(ans.Via))
	b = append(b, ans.Code, byte(d), byte(ans.NVias), 0)
	b = binary.LittleEndian.AppendUint16(b, uint16(ans.Hops))
	b = binary.LittleEndian.AppendUint16(b, uint16(ans.Turns))
	b = binary.LittleEndian.AppendUint64(b, ans.Gen)
	for _, v := range ans.Via {
		if v < 0 || v > MaxCoord {
			return b, fmt.Errorf("wire: via coordinate %d out of range", v)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(v))
	}
	return b, nil
}

// ParseRouteResp decodes a route response payload into ans, reusing
// ans.Via's capacity.
func ParseRouteResp(p []byte, ans *Answer) error {
	if len(p) < 16 {
		return fmt.Errorf("wire: response payload too short (%d bytes)", len(p))
	}
	d, nvias := int(p[1]), int(p[2])
	if p[3] != 0 {
		return fmt.Errorf("wire: nonzero reserved byte in response")
	}
	if d == 0 || len(p) != 16+2*nvias*d {
		return fmt.Errorf("wire: response payload length %d does not match d=%d nvias=%d", len(p), d, nvias)
	}
	ans.Code = p[0]
	ans.Hops = int(binary.LittleEndian.Uint16(p[4:]))
	ans.Turns = int(binary.LittleEndian.Uint16(p[6:]))
	ans.Gen = binary.LittleEndian.Uint64(p[8:])
	ans.NVias = nvias
	ans.Via = ans.Via[:0]
	off := 16
	for i := 0; i < nvias*d; i++ {
		ans.Via = append(ans.Via, int(binary.LittleEndian.Uint16(p[off:])))
		off += 2
	}
	return nil
}

// AppendError appends an error frame.
func AppendError(b []byte, msg string) []byte {
	if len(msg) > MaxPayload {
		msg = msg[:MaxPayload]
	}
	b = appendHeader(b, TError, len(msg))
	return append(b, msg...)
}

// DecodeFrame splits one frame off the front of b, returning its type,
// payload, and the remaining bytes. It is the slice-based twin of the
// stream reader, used by tests and fuzzing.
func DecodeFrame(b []byte) (typ byte, payload, rest []byte, err error) {
	if len(b) < HeaderLen {
		return 0, nil, b, fmt.Errorf("wire: short header (%d bytes)", len(b))
	}
	typ, n, err := parseHeader(b[:HeaderLen])
	if err != nil {
		return 0, nil, b, err
	}
	if len(b) < HeaderLen+n {
		return 0, nil, b, fmt.Errorf("wire: truncated payload (%d of %d bytes)", len(b)-HeaderLen, n)
	}
	return typ, b[HeaderLen : HeaderLen+n], b[HeaderLen+n:], nil
}
