package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"lambmesh/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/golden/<name>, or rewrites the
// file when the test runs with -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with 'go test -run TestGolden -update ./...'): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenOutputs pins the exact table bytes of each output format on two
// cheap deterministic experiments. Timing lines go to stderr, so stdout is a
// pure function of the flags; any diff is an intentional format change
// (regenerate with -update) or a determinism regression.
func TestGoldenOutputs(t *testing.T) {
	selected, err := selectExperiments("sec5lamb,prop65")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Trials: 3, Seed: 5, Workers: 2}
	for _, format := range []string{"text", "md", "csv"} {
		format := format
		t.Run(format, func(t *testing.T) {
			t.Parallel()
			render, err := rendererFor(format)
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			runExperiments(&out, io.Discard, render, selected, cfg, format)
			checkGolden(t, format+".txt", out.Bytes())
		})
	}
}
