package wormhole

// Saturation sweeps: the open-loop methodology's headline plot is packet
// latency versus injection rate, swept from light load to past saturation.
// Each (rate, trial) cell is an independent engine run with its own
// deterministically seeded rng, so the sweep parallelizes over a worker
// pool with bit-identical results at any worker count.

import (
	"fmt"
	"math/rand"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/routing"
)

// SweepSpec describes an injection-rate saturation sweep.
type SweepSpec struct {
	// Rates are the injection probabilities (packets/node/cycle) to sweep,
	// in the order the results should be reported.
	Rates []float64
	// Trials per rate point; each trial draws an independent workload.
	Trials int
	// Pattern, PacketFlits, HotspotFraction parameterize every workload.
	Pattern         Pattern
	PacketFlits     int
	HotspotFraction float64
	// Warmup/Measure/Drain are the engine phase windows (cycles).
	Warmup, Measure, Drain int
	// Net is the router microarchitecture; Net.VirtualChannels also caps
	// the per-round VC assignment of the generated routes.
	Net Config
	// Seed makes the whole sweep reproducible. Cell (rate i, trial t)
	// derives its rng from Seed, i, and t only, never from scheduling.
	Seed int64
	// Workers bounds the trial-level worker pool; <= 0 means NumCPU.
	Workers int

	// Schedule injects the listed fault events into every cell's run
	// (NewLiveEngine); MTBF additionally draws per-cell random single-node
	// events with the given mean inter-arrival time in cycles (0 disables).
	// Either makes the sweep a live sweep: each cell then carries its own
	// core.Reconfigurer, the lamb set is the Reconfigurer's (the lambs
	// argument of RunSweep is ignored), and results stay deterministic at
	// any worker count. Live sweeps require a mesh (not a torus).
	Schedule FaultSchedule
	MTBF     float64

	// Strategy, when set, routes every cell through the given RouteStrategy
	// builder instead of the legacy lamb arguments (orders and lambs are
	// then ignored except by the builder itself). Static sweeps build one
	// strategy and share it across cells (Route is concurrent-safe); live
	// sweeps build one per cell over a private fault-set clone so mid-run
	// events stay cell-local.
	Strategy StrategyBuilder
	// StrategyStream offsets the per-cell seed stream so sweeps over
	// different strategies draw disjoint trial seeds from the same base
	// Seed: cell (rate ri, trial ti) uses stream
	// StrategyStream*strategyStreamStride + ri. Zero (the lamb position in
	// StrategyNames) preserves the legacy stream assignment exactly.
	StrategyStream int
}

// strategyStreamStride separates the seed streams of different strategies.
// Any sweep with fewer rates than the stride (enforced in RunSweep) cannot
// collide across strategy indices.
const strategyStreamStride = 1 << 20

// Live reports whether the spec injects faults mid-run.
func (s *SweepSpec) Live() bool { return !s.Schedule.Empty() || s.MTBF > 0 }

// SweepPoint aggregates the trials of one rate point.
type SweepPoint struct {
	Rate   float64
	Trials int

	OfferedFlitRate  float64 // mean realized offered load, flits/node/cycle
	AcceptedFlitRate float64 // mean accepted throughput, flits/node/cycle
	MeanLatency      float64 // mean over trials of mean sample latency
	P99Latency       float64 // mean over trials of p99 sample latency
	MaxLatency       int     // max over trials

	DeliveredFraction float64 // delivered sample packets / generated
	Saturated         bool    // any trial saturated
	Deadlocked        bool    // any trial tripped the watchdog

	VCMeanUtil []float64 // mean over trials, per VC

	// Live-fault recovery aggregates, totals over the rate point's trials
	// (all zero for static sweeps).
	Reconfigurations    int
	DroppedWorms        int
	Retransmits         int
	LostPackets         int
	MeanRecoveryLatency float64 // mean over recovered events, cycles
	Unrecovered         int     // events the run ended before recovering from
}

// RunSweep runs Trials independent engine runs at every rate over the given
// faulty mesh and lamb set, fanning the (rate, trial) cells out over the
// worker pool. The oracle is built once and shared (it is safe for
// concurrent reads); each cell generates, routes, and simulates its own
// workload. Results are deterministic for any worker count.
func RunSweep(f *mesh.FaultSet, orders routing.MultiOrder, lambs []mesh.Coord, spec SweepSpec) ([]SweepPoint, error) {
	if len(spec.Rates) == 0 {
		return nil, fmt.Errorf("wormhole: sweep needs at least one rate")
	}
	if spec.Trials < 1 {
		return nil, fmt.Errorf("wormhole: sweep needs at least one trial per rate")
	}
	for _, r := range spec.Rates {
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("wormhole: injection rate %v outside (0, 1]", r)
		}
	}
	if spec.MTBF < 0 {
		return nil, fmt.Errorf("wormhole: negative MTBF %v", spec.MTBF)
	}
	if len(spec.Rates) >= strategyStreamStride {
		return nil, fmt.Errorf("wormhole: %d rates overflow the strategy seed stride", len(spec.Rates))
	}
	if spec.StrategyStream < 0 {
		return nil, fmt.Errorf("wormhole: negative strategy stream %d", spec.StrategyStream)
	}
	live := spec.Live()
	if live {
		if err := spec.Schedule.Validate(f.Mesh()); err != nil {
			return nil, err
		}
	}
	var o *routing.Oracle
	if spec.Strategy == nil {
		o = routing.NewOracle(f)
	}
	var strat RouteStrategy
	if spec.Strategy != nil && !live {
		// One shared strategy for the whole static sweep; Route is
		// concurrent-safe once built.
		var err error
		strat, err = spec.Strategy(f)
		if err != nil {
			return nil, err
		}
	}
	cells := len(spec.Rates) * spec.Trials
	results := make([]EngineResult, cells)
	errs := make([]error, cells)
	par.Do(spec.Workers, cells, func(ci int) {
		ri, ti := ci/spec.Trials, ci%spec.Trials
		// Stream = strategy block + rate index, so every cell's seed is the
		// shared injective map of the repo-wide contract (par.TrialSeed,
		// DESIGN.md) and sweeps over different strategies never replay each
		// other's trial seeds.
		stream := spec.StrategyStream*strategyStreamStride + ri
		rng := rand.New(rand.NewSource(par.TrialSeed(spec.Seed, stream, ti)))
		var res EngineResult
		var err error
		switch {
		case spec.Strategy != nil && live:
			res, err = runStrategyLiveCell(f, spec, spec.Rates[ri], rng)
		case spec.Strategy != nil:
			res, err = runStrategyCell(strat, spec, spec.Rates[ri], rng)
		case live:
			res, err = runLiveCell(f, orders, spec, spec.Rates[ri], rng)
		default:
			res, err = runCell(o, orders, lambs, spec, spec.Rates[ri], rng)
		}
		if err != nil {
			errs[ci] = fmt.Errorf("rate %v trial %d: %w", spec.Rates[ri], ti, err)
			return
		}
		results[ci] = res
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	points := make([]SweepPoint, len(spec.Rates))
	for ri, rate := range spec.Rates {
		p := SweepPoint{Rate: rate, Trials: spec.Trials, VCMeanUtil: make([]float64, spec.Net.VirtualChannels)}
		var samples, delivered int
		var recSum, recN int
		for ti := 0; ti < spec.Trials; ti++ {
			r := results[ri*spec.Trials+ti]
			p.OfferedFlitRate += r.OfferedFlitRate
			p.AcceptedFlitRate += r.AcceptedFlitRate
			p.MeanLatency += r.MeanLatency
			p.P99Latency += float64(r.P99Latency)
			if r.MaxLatency > p.MaxLatency {
				p.MaxLatency = r.MaxLatency
			}
			samples += r.SamplePackets
			delivered += r.SampleDelivered
			p.Saturated = p.Saturated || r.Saturated
			p.Deadlocked = p.Deadlocked || r.Deadlocked
			for v := range p.VCMeanUtil {
				p.VCMeanUtil[v] += r.VCMeanUtil[v]
			}
			p.Reconfigurations += r.Reconfigurations
			p.DroppedWorms += r.DroppedWorms
			p.Retransmits += r.Retransmits
			p.LostPackets += r.LostPackets
			for _, ev := range r.RecoveryEvents {
				if ev.RecoveryLatency < 0 {
					p.Unrecovered++
				} else {
					recSum += ev.RecoveryLatency
					recN++
				}
			}
		}
		if recN > 0 {
			p.MeanRecoveryLatency = float64(recSum) / float64(recN)
		}
		n := float64(spec.Trials)
		p.OfferedFlitRate /= n
		p.AcceptedFlitRate /= n
		p.MeanLatency /= n
		p.P99Latency /= n
		for v := range p.VCMeanUtil {
			p.VCMeanUtil[v] /= n
		}
		if samples > 0 {
			p.DeliveredFraction = float64(delivered) / float64(samples)
		}
		points[ri] = p
	}
	return points, nil
}

// runCell is one (rate, trial) cell: generate, build, run.
func runCell(o *routing.Oracle, orders routing.MultiOrder, lambs []mesh.Coord,
	spec SweepSpec, rate float64, rng *rand.Rand) (EngineResult, error) {
	wl := WorkloadSpec{
		Pattern:         spec.Pattern,
		Rate:            rate,
		PacketFlits:     spec.PacketFlits,
		Cycles:          spec.Warmup + spec.Measure,
		HotspotFraction: spec.HotspotFraction,
	}
	packets, err := GenerateWorkload(o, orders, lambs, wl, spec.Net.VirtualChannels, rng)
	if err != nil {
		return EngineResult{}, err
	}
	nodes := survivorCount(o.Faults(), lambs)
	eng, err := NewEngine(o.Faults(), EngineConfig{
		Net:           spec.Net,
		WarmupCycles:  spec.Warmup,
		MeasureCycles: spec.Measure,
		DrainCycles:   spec.Drain,
		Nodes:         nodes,
	}, packets)
	if err != nil {
		return EngineResult{}, err
	}
	return eng.Run(), nil
}

// runLiveCell is one (rate, trial) cell of a live sweep. Each cell owns a
// core.Reconfigurer seeded with the sweep's initial fault set (so mid-run
// events can evolve it independently of the other cells) and uses the
// Reconfigurer's lamb set for traffic endpoints. The workload draw consumes
// the cell rng exactly as runCell does, so a live sweep with an empty
// schedule and zero MTBF would generate the identical workloads.
func runLiveCell(f *mesh.FaultSet, orders routing.MultiOrder,
	spec SweepSpec, rate float64, rng *rand.Rand) (EngineResult, error) {
	rec, err := core.NewReconfigurer(f.Mesh(), orders, true)
	if err != nil {
		return EngineResult{}, err
	}
	rec.Workers = 1 // the sweep already parallelizes across cells
	if f.Count() > 0 {
		if _, err := rec.AddFaults(f.NodeFaults(), f.LinkFaults()); err != nil {
			return EngineResult{}, err
		}
	}
	o := routing.NewOracle(rec.Faults())
	wl := WorkloadSpec{
		Pattern:         spec.Pattern,
		Rate:            rate,
		PacketFlits:     spec.PacketFlits,
		Cycles:          spec.Warmup + spec.Measure,
		HotspotFraction: spec.HotspotFraction,
	}
	packets, err := GenerateWorkload(o, orders, rec.Lambs(), wl, spec.Net.VirtualChannels, rng)
	if err != nil {
		return EngineResult{}, err
	}
	sched := spec.Schedule
	if spec.MTBF > 0 {
		random := RandomSchedule(rec.Faults(), spec.MTBF, spec.Warmup+spec.Measure, rng)
		merged := FaultSchedule{Events: append(append([]FaultEvent(nil), sched.Events...), random.Events...)}
		sched = merged
	}
	nodes := survivorCount(rec.Faults(), rec.Lambs())
	eng, err := NewLiveEngine(EngineConfig{
		Net:           spec.Net,
		WarmupCycles:  spec.Warmup,
		MeasureCycles: spec.Measure,
		DrainCycles:   spec.Drain,
		Nodes:         nodes,
	}, LiveConfig{
		Schedule:  sched,
		Reconf:    rec,
		Orders:    orders,
		RouteSeed: rng.Int63(),
	}, packets)
	if err != nil {
		return EngineResult{}, err
	}
	return eng.RunLive()
}

// runStrategyCell is one (rate, trial) cell routed through a shared
// strategy. The workload draw consumes the cell rng exactly as runCell
// does for the lamb strategy.
func runStrategyCell(s RouteStrategy, spec SweepSpec, rate float64, rng *rand.Rand) (EngineResult, error) {
	wl := WorkloadSpec{
		Pattern:         spec.Pattern,
		Rate:            rate,
		PacketFlits:     spec.PacketFlits,
		Cycles:          spec.Warmup + spec.Measure,
		HotspotFraction: spec.HotspotFraction,
	}
	packets, _, err := GenerateStrategyWorkload(s, wl, spec.Net.VirtualChannels, rng)
	if err != nil {
		return EngineResult{}, err
	}
	nodes := survivorCount(s.Faults(), s.Sacrificed())
	eng, err := NewEngine(s.Faults(), EngineConfig{
		Net:           spec.Net,
		WarmupCycles:  spec.Warmup,
		MeasureCycles: spec.Measure,
		DrainCycles:   spec.Drain,
		Nodes:         nodes,
	}, packets)
	if err != nil {
		return EngineResult{}, err
	}
	return eng.Run(), nil
}

// runStrategyLiveCell is one (rate, trial) cell of a strategy live sweep.
// Each cell builds its own strategy over a private clone of the initial
// fault set, so mid-run events evolve it independently of the other cells.
func runStrategyLiveCell(f *mesh.FaultSet, spec SweepSpec, rate float64, rng *rand.Rand) (EngineResult, error) {
	s, err := spec.Strategy(f.Clone())
	if err != nil {
		return EngineResult{}, err
	}
	wl := WorkloadSpec{
		Pattern:         spec.Pattern,
		Rate:            rate,
		PacketFlits:     spec.PacketFlits,
		Cycles:          spec.Warmup + spec.Measure,
		HotspotFraction: spec.HotspotFraction,
	}
	packets, _, err := GenerateStrategyWorkload(s, wl, spec.Net.VirtualChannels, rng)
	if err != nil {
		return EngineResult{}, err
	}
	sched := spec.Schedule
	if spec.MTBF > 0 {
		random := RandomSchedule(s.Faults(), spec.MTBF, spec.Warmup+spec.Measure, rng)
		merged := FaultSchedule{Events: append(append([]FaultEvent(nil), sched.Events...), random.Events...)}
		sched = merged
	}
	nodes := survivorCount(s.Faults(), s.Sacrificed())
	eng, err := NewLiveEngine(EngineConfig{
		Net:           spec.Net,
		WarmupCycles:  spec.Warmup,
		MeasureCycles: spec.Measure,
		DrainCycles:   spec.Drain,
		Nodes:         nodes,
	}, LiveConfig{
		Schedule:  sched,
		Strategy:  s,
		RouteSeed: rng.Int63(),
	}, packets)
	if err != nil {
		return EngineResult{}, err
	}
	return eng.RunLive()
}

// survivorCount avoids materializing the survivor list per cell.
func survivorCount(f *mesh.FaultSet, lambs []mesh.Coord) int {
	n := int(f.Mesh().Nodes()) - f.NumNodeFaults()
	seen := make(map[int64]struct{}, len(lambs))
	m := f.Mesh()
	for _, c := range lambs {
		idx := m.Index(c)
		if _, dup := seen[idx]; dup || f.NodeFaulty(c) {
			continue
		}
		seen[idx] = struct{}{}
		n--
	}
	return n
}
