package core

import (
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// TestLamb1CountMatchesLamb1 pins the rectangle-arithmetic lamb count to the
// materialized result across randomized fault sets, mesh shapes, and round
// counts, reusing one Solver throughout so scratch reuse is exercised too.
func TestLamb1CountMatchesLamb1(t *testing.T) {
	shapes := [][]int{{8, 8}, {6, 7, 5}, {16, 4}, {4, 4, 4}}
	s := NewSolver()
	check := NewSolver()
	rng := rand.New(rand.NewSource(42))
	for _, widths := range shapes {
		m := mesh.MustNew(widths...)
		for trial := 0; trial < 25; trial++ {
			faults := 1 + rng.Intn(int(m.Nodes()/4))
			f := mesh.RandomNodeFaults(m, faults, rng)
			if rng.Intn(2) == 0 {
				mesh.RandomLinkFaults(f, rng.Intn(4), rng)
			}
			k := 1 + rng.Intn(3)
			orders := routing.UniformAscending(m.Dims(), k)
			st, n, err := s.Lamb1Count(f, orders, 1)
			if err != nil {
				t.Fatalf("Lamb1Count(%v, %d faults, k=%d): %v", widths, faults, k, err)
			}
			res, err := check.Lamb1(f, orders)
			if err != nil {
				t.Fatalf("Lamb1: %v", err)
			}
			if int(n) != res.NumLambs() {
				t.Fatalf("%v faults=%d k=%d: Lamb1Count=%d, Lamb1 NumLambs=%d", widths, faults, k, n, res.NumLambs())
			}
			if st != res.Stats {
				t.Fatalf("%v faults=%d k=%d: stats mismatch: count=%+v full=%+v", widths, faults, k, st, res.Stats)
			}
		}
	}
}

// TestLamb1CountNonUniform exercises the dedup path with distinct per-round
// orderings.
func TestLamb1CountNonUniform(t *testing.T) {
	m := mesh.MustNew(8, 8)
	rng := rand.New(rand.NewSource(7))
	s := NewSolver()
	orders := routing.MultiOrder{routing.Order{0, 1}, routing.Order{1, 0}, routing.Order{0, 1}}
	for trial := 0; trial < 10; trial++ {
		f := mesh.RandomNodeFaults(m, 1+rng.Intn(12), rng)
		_, n, err := s.Lamb1Count(f, orders, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Lamb1(f, orders)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != res.NumLambs() {
			t.Fatalf("trial %d: count=%d want %d", trial, n, res.NumLambs())
		}
	}
}
