package wormhole

import (
	"math/rand"
	"reflect"
	"testing"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// engineFixture computes a lamb set for a random fault draw and generates
// an open-loop workload over it.
type engineFixture struct {
	f     *mesh.FaultSet
	lambs []mesh.Coord
	o     *routing.Oracle
}

func newEngineFixture(t *testing.T, m *mesh.Mesh, faults int, seed int64) engineFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := mesh.RandomNodeFaults(m, faults, rng)
	res, err := core.Lamb1(f, routing.UniformAscending(m.Dims(), 2))
	if err != nil {
		t.Fatalf("Lamb1: %v", err)
	}
	return engineFixture{f: f, lambs: res.Lambs, o: routing.NewOracle(f)}
}

func (fx engineFixture) workload(t *testing.T, spec WorkloadSpec, vcs int, seed int64) []*Message {
	t.Helper()
	msgs, err := GenerateWorkload(fx.o, routing.UniformAscending(fx.f.Mesh().Dims(), 2), fx.lambs,
		spec, vcs, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	return msgs
}

func TestEngineLowLoadDeliversEverything(t *testing.T) {
	m := mesh.MustNew(8, 8)
	fx := newEngineFixture(t, m, 3, 1)
	msgs := fx.workload(t, WorkloadSpec{Pattern: PatternUniform, Rate: 0.01, PacketFlits: 8, Cycles: 600}, 2, 7)
	eng, err := NewEngine(fx.f, EngineConfig{
		Net:           DefaultConfig(),
		WarmupCycles:  200,
		MeasureCycles: 400,
		Nodes:         len(Survivors(fx.f, fx.lambs)),
	}, msgs)
	if err != nil {
		t.Fatal(err)
	}
	r := eng.Run()
	if r.Deadlocked {
		t.Fatal("deadlock at 2 VCs / 2 rounds")
	}
	if r.Delivered != r.Packets {
		t.Fatalf("delivered %d of %d at light load", r.Delivered, r.Packets)
	}
	if r.Saturated {
		t.Fatalf("light load reported saturated: %+v", r)
	}
	if r.SampleDelivered != r.SamplePackets {
		t.Fatalf("sample delivered %d of %d", r.SampleDelivered, r.SamplePackets)
	}
	if r.MeanLatency <= 0 || r.P99Latency < int(r.MeanLatency) || r.MaxLatency < r.P99Latency {
		t.Fatalf("latency stats inconsistent: mean %.1f p99 %d max %d", r.MeanLatency, r.P99Latency, r.MaxLatency)
	}
	// Accepted should track offered at light load.
	if r.AcceptedFlitRate < 0.8*r.OfferedFlitRate {
		t.Fatalf("accepted %.4f far below offered %.4f at light load", r.AcceptedFlitRate, r.OfferedFlitRate)
	}
}

func TestEngineSaturatesUnderOverload(t *testing.T) {
	m := mesh.MustNew(8, 8)
	fx := newEngineFixture(t, m, 3, 1)
	light := engineRunAtRate(t, fx, 0.005)
	heavy := engineRunAtRate(t, fx, 0.2)
	if !heavy.Saturated {
		t.Fatalf("rate 0.2 should saturate an 8x8 mesh: %+v", heavy)
	}
	if heavy.AcceptedFlitRate >= heavy.OfferedFlitRate {
		t.Fatalf("accepted %.4f not below offered %.4f past saturation", heavy.AcceptedFlitRate, heavy.OfferedFlitRate)
	}
	if light.MeanLatency >= heavy.MeanLatency {
		t.Fatalf("latency should grow with load: light %.1f heavy %.1f", light.MeanLatency, heavy.MeanLatency)
	}
	// Throughput past saturation still exceeds light-load throughput.
	if heavy.AcceptedFlitRate <= light.AcceptedFlitRate {
		t.Fatalf("saturated throughput %.4f below light-load %.4f", heavy.AcceptedFlitRate, light.AcceptedFlitRate)
	}
}

func engineRunAtRate(t *testing.T, fx engineFixture, rate float64) EngineResult {
	t.Helper()
	msgs := fx.workload(t, WorkloadSpec{Pattern: PatternUniform, Rate: rate, PacketFlits: 8, Cycles: 450}, 2, 11)
	eng, err := NewEngine(fx.f, EngineConfig{
		Net:           DefaultConfig(),
		WarmupCycles:  150,
		MeasureCycles: 300,
		DrainCycles:   600,
		Nodes:         len(Survivors(fx.f, fx.lambs)),
	}, msgs)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}

func TestEngineResetReproducesRun(t *testing.T) {
	m := mesh.MustNew(8, 8)
	fx := newEngineFixture(t, m, 4, 3)
	msgs := fx.workload(t, WorkloadSpec{Pattern: PatternTranspose, Rate: 0.03, PacketFlits: 6, Cycles: 300}, 2, 5)
	eng, err := NewEngine(fx.f, EngineConfig{
		Net:           DefaultConfig(),
		WarmupCycles:  100,
		MeasureCycles: 200,
		Nodes:         len(Survivors(fx.f, fx.lambs)),
	}, msgs)
	if err != nil {
		t.Fatal(err)
	}
	first := eng.Run()
	// The result aliases engine-owned slices; snapshot before re-running.
	firstVCMean := append([]float64(nil), first.VCMeanUtil...)
	firstVCMax := append([]float64(nil), first.VCMaxUtil...)
	first.VCMeanUtil, first.VCMaxUtil = firstVCMean, firstVCMax

	eng.Reset()
	second := eng.Run()
	second.VCMeanUtil = append([]float64(nil), second.VCMeanUtil...)
	second.VCMaxUtil = append([]float64(nil), second.VCMaxUtil...)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("Reset+Run diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// The randomized route-property suite lives in strategy_test.go
// (TestStrategyRouteProperties), parameterized over every RouteStrategy;
// the helpers below are shared with it.

func checkRouteProperties(t *testing.T, m *mesh.Mesh, f *mesh.FaultSet,
	lambAt map[int64]bool, orders routing.MultiOrder, msg *Message) {
	t.Helper()
	if f.NodeFaulty(msg.Src) || f.NodeFaulty(msg.Dst) {
		t.Fatalf("msg %d: faulty endpoint %v -> %v", msg.ID, msg.Src, msg.Dst)
	}
	if lambAt[m.Index(msg.Src)] || lambAt[m.Index(msg.Dst)] {
		t.Fatalf("msg %d: lamb as endpoint %v -> %v (lambs carry no traffic of their own)", msg.ID, msg.Src, msg.Dst)
	}
	if len(msg.Hops) == 0 {
		t.Fatalf("msg %d: empty route", msg.ID)
	}
	if !msg.Hops[0].Link.From.Equal(msg.Src) {
		t.Fatalf("msg %d: route starts at %v, not src %v", msg.ID, msg.Hops[0].Link.From, msg.Src)
	}
	cur := msg.Src
	prevRound := 0
	prevPos := -1 // position in the round's dimension order
	for i, h := range msg.Hops {
		if !h.Link.From.Equal(cur) {
			t.Fatalf("msg %d hop %d: discontinuous route (%v != %v)", msg.ID, i, h.Link.From, cur)
		}
		if !f.Usable(h.Link) {
			t.Fatalf("msg %d hop %d: unusable link %v", msg.ID, i, h.Link)
		}
		if f.NodeFaulty(h.Link.From) {
			t.Fatalf("msg %d hop %d: route through faulty node %v", msg.ID, i, h.Link.From)
		}
		round := h.VC // with vcs == rounds, the VC is the round index
		if round < prevRound {
			t.Fatalf("msg %d hop %d: round went backwards (%d after %d)", msg.ID, i, round, prevRound)
		}
		if round != prevRound {
			prevPos = -1 // new round restarts its dimension order
		}
		pos := -1
		for p, dim := range orders[round] {
			if dim == h.Link.Dim {
				pos = p
			}
		}
		if pos < 0 {
			t.Fatalf("msg %d hop %d: dim %d not in order %v", msg.ID, i, h.Link.Dim, orders[round])
		}
		if pos < prevPos {
			t.Fatalf("msg %d hop %d: dimension order violated in round %d (%v)", msg.ID, i, round, orders[round])
		}
		prevRound, prevPos = round, pos
		cur = h.Link.To(m)
		if f.NodeFaulty(cur) {
			t.Fatalf("msg %d hop %d: route through faulty node %v", msg.ID, i, cur)
		}
	}
	if !cur.Equal(msg.Dst) {
		t.Fatalf("msg %d: route ends at %v, not dst %v", msg.ID, cur, msg.Dst)
	}
}

// checkSourceFIFO verifies per-node injection order: a node's packets enter
// the network in generation order, never overlapping at the source.
func checkSourceFIFO(t *testing.T, m *mesh.Mesh, msgs []*Message) {
	t.Helper()
	lastStart := make(map[int64]int)
	lastInject := make(map[int64]int)
	for _, msg := range msgs { // generation order
		v := m.Index(msg.Src)
		if prev, ok := lastInject[v]; ok && msg.InjectAt < prev {
			t.Fatalf("node %v: generation order broken (%d after %d)", msg.Src, msg.InjectAt, prev)
		}
		if prev, ok := lastStart[v]; ok && msg.StartCycle <= prev {
			t.Fatalf("node %v: msg %d started at %d, not after predecessor's %d",
				msg.Src, msg.ID, msg.StartCycle, prev)
		}
		lastStart[v] = msg.StartCycle
		lastInject[v] = msg.InjectAt
	}
}

func TestPatternDestinations(t *testing.T) {
	m := mesh.MustNew(8, 8)
	f := mesh.NewFaultSet(m) // fault-free: nominal pattern destinations hold exactly
	o := routing.NewOracle(f)
	orders := routing.UniformAscending(2, 2)

	msgs, err := GenerateWorkload(o, orders, nil,
		WorkloadSpec{Pattern: PatternTranspose, Rate: 0.05, PacketFlits: 4, Cycles: 100},
		2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range msgs {
		want := mesh.C(msg.Src[1], msg.Src[0])
		if msg.Src[0] == msg.Src[1] { // diagonal nodes fall back to uniform
			if msg.Dst.Equal(msg.Src) {
				t.Fatalf("transpose: self-addressed packet at %v", msg.Src)
			}
			continue
		}
		if !msg.Dst.Equal(want) {
			t.Fatalf("transpose: %v -> %v, want %v", msg.Src, msg.Dst, want)
		}
	}

	msgs, err = GenerateWorkload(o, orders, nil,
		WorkloadSpec{Pattern: PatternBitComplement, Rate: 0.05, PacketFlits: 4, Cycles: 100},
		2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range msgs {
		want := mesh.C(7-msg.Src[0], 7-msg.Src[1])
		if !msg.Dst.Equal(want) {
			t.Fatalf("bitcomp: %v -> %v, want %v", msg.Src, msg.Dst, want)
		}
	}

	msgs, err = GenerateWorkload(o, orders, nil,
		WorkloadSpec{Pattern: PatternHotspot, Rate: 0.1, PacketFlits: 4, Cycles: 200},
		2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	hot := hotspotNode(m, Survivors(f, nil))
	hits := 0
	for _, msg := range msgs {
		if msg.Dst.Equal(hot) {
			hits++
		}
	}
	frac := float64(hits) / float64(len(msgs))
	if frac < 0.1 || frac > 0.35 {
		t.Fatalf("hotspot fraction %.2f outside [0.1, 0.35] (%d/%d to %v)", frac, hits, len(msgs), hot)
	}
}

func TestParsePattern(t *testing.T) {
	for _, name := range PatternNames() {
		p, err := ParsePattern(name)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("Pattern round-trip: %q -> %v -> %q", name, p, p.String())
		}
	}
	if _, err := ParsePattern("zipf"); err == nil {
		t.Fatal("ParsePattern should reject unknown names")
	}
}

func TestGenerateWorkloadValidation(t *testing.T) {
	m := mesh.MustNew(6, 6)
	f := mesh.NewFaultSet(m)
	o := routing.NewOracle(f)
	orders := routing.UniformAscending(2, 2)
	rng := rand.New(rand.NewSource(1))
	bad := []WorkloadSpec{
		{Pattern: PatternUniform, Rate: 0, PacketFlits: 4, Cycles: 10},
		{Pattern: PatternUniform, Rate: -0.1, PacketFlits: 4, Cycles: 10},
		{Pattern: PatternUniform, Rate: 1.5, PacketFlits: 4, Cycles: 10},
		{Pattern: PatternUniform, Rate: 0.1, PacketFlits: 0, Cycles: 10},
		{Pattern: PatternUniform, Rate: 0.1, PacketFlits: 4, Cycles: 0},
	}
	for _, spec := range bad {
		if _, err := GenerateWorkload(o, orders, nil, spec, 2, rng); err == nil {
			t.Fatalf("GenerateWorkload accepted invalid spec %+v", spec)
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	m := mesh.MustNew(6, 6)
	f := mesh.NewFaultSet(m)
	o := routing.NewOracle(f)
	orders := routing.UniformAscending(2, 2)
	msgs, err := GenerateWorkload(o, orders, nil,
		WorkloadSpec{Pattern: PatternUniform, Rate: 0.05, PacketFlits: 4, Cycles: 60},
		2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ok := EngineConfig{Net: DefaultConfig(), WarmupCycles: 20, MeasureCycles: 40, Nodes: 36}
	if _, err := NewEngine(f, ok, msgs); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, cfg := range []EngineConfig{
		{Net: DefaultConfig(), WarmupCycles: -1, MeasureCycles: 40, Nodes: 36},
		{Net: DefaultConfig(), WarmupCycles: 20, MeasureCycles: 0, Nodes: 36},
		{Net: DefaultConfig(), WarmupCycles: 20, MeasureCycles: 40, Nodes: 0},
		{Net: DefaultConfig(), WarmupCycles: 20, MeasureCycles: 10, Nodes: 36}, // horizon too short for the workload
	} {
		if _, err := NewEngine(f, cfg, msgs); err == nil {
			t.Fatalf("NewEngine accepted invalid config %+v", cfg)
		}
	}
}
