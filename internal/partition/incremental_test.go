package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// samePartition compares two partitions for byte identity: same kind and
// order, and the same sets — rectangles AND representatives — in the same
// emitted order. The incremental finder promises exactly this, not just
// set equality.
func samePartition(a, b *Partition) error {
	if a.Kind != b.Kind {
		return fmt.Errorf("kind %v != %v", a.Kind, b.Kind)
	}
	if !a.Order.Equal(b.Order) {
		return fmt.Errorf("order %v != %v", a.Order, b.Order)
	}
	if len(a.Sets) != len(b.Sets) {
		return fmt.Errorf("len %d != %d", len(a.Sets), len(b.Sets))
	}
	for i := range a.Sets {
		if a.Sets[i].Rect.String() != b.Sets[i].Rect.String() {
			return fmt.Errorf("set %d rect %v != %v", i, a.Sets[i].Rect, b.Sets[i].Rect)
		}
		if !a.Sets[i].Rep.Equal(b.Sets[i].Rep) {
			return fmt.Errorf("set %d rep %v != %v", i, a.Sets[i].Rep, b.Sets[i].Rep)
		}
	}
	return nil
}

// randomGrowth yields a random sequence of fault deltas (nodes and links)
// on m, never repeating a fault.
func randomGrowth(m *mesh.Mesh, rng *rand.Rand, steps, maxDelta int) [][2]any {
	f := mesh.NewFaultSet(m) // dedup tracker only
	var seq [][2]any
	for s := 0; s < steps; s++ {
		var dn []mesh.Coord
		var dl []mesh.Link
		n := 1 + rng.Intn(maxDelta)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 { // link fault
				for tries := 0; tries < 50; tries++ {
					c := m.CoordOf(rng.Int63n(m.Nodes()))
					dim := rng.Intn(m.Dims())
					dir := 1 - 2*rng.Intn(2)
					l := mesh.Link{From: c, Dim: dim, Dir: dir}
					if _, ok := m.Neighbor(c, dim, dir); ok && !f.LinkFaulty(l) {
						f.AddLink(l)
						dl = append(dl, l)
						break
					}
				}
			} else {
				for tries := 0; tries < 50; tries++ {
					c := m.CoordOf(rng.Int63n(m.Nodes()))
					if !f.NodeFaulty(c) {
						f.AddNode(c)
						dn = append(dn, c)
						break
					}
				}
			}
		}
		seq = append(seq, [2]any{dn, dl})
	}
	return seq
}

// The core identity pin: across randomized fault-growth sequences on 2D and
// 3D meshes with mixed node and link faults and random orderings, every
// Update result is byte-identical to a from-scratch SES/DES call on the
// accumulated fault set.
func TestIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{{6, 6}, {5, 7}, {12, 12}, {4, 4, 4}, {3, 4, 5}, {9}}
	for trial := 0; trial < 24; trial++ {
		widths := shapes[trial%len(shapes)]
		m := mesh.MustNew(widths...)
		pi := routing.Order(rng.Perm(m.Dims()))
		for _, kind := range []Kind{Source, Destination} {
			inc, err := NewIncremental(m, pi, kind)
			if err != nil {
				t.Fatal(err)
			}
			f := mesh.NewFaultSet(m)
			for step, delta := range randomGrowth(m, rng, 6, 3) {
				dn := delta[0].([]mesh.Coord)
				dl := delta[1].([]mesh.Link)
				for _, c := range dn {
					f.AddNode(c)
				}
				for _, l := range dl {
					f.AddLink(l)
				}
				got := inc.Update(dn, dl)
				var want *Partition
				if kind == Source {
					want, err = SES(f, pi)
				} else {
					want, err = DES(f, pi)
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := samePartition(got, want); err != nil {
					t.Fatalf("trial %d step %d %v order %v shape %v: %v\nfaults %v links %v",
						trial, step, kind, pi, widths, err, f.SortedNodeFaults(), f.LinkFaults())
				}
			}
		}
	}
}

// Previously returned partitions must stay valid after later Updates (the
// incremental lamb pipeline diffs epoch N against N+1).
func TestIncrementalResultsStayValid(t *testing.T) {
	m := mesh.MustNew(8, 8)
	inc, err := NewIncremental(m, routing.Ascending(2), Source)
	if err != nil {
		t.Fatal(err)
	}
	p1 := inc.Update([]mesh.Coord{mesh.C(3, 3)}, nil)
	snapshot := make([]Set, len(p1.Sets))
	copy(snapshot, p1.Sets)
	rects := make([]string, len(p1.Sets))
	for i, s := range p1.Sets {
		rects[i] = s.Rect.StringIn(m)
	}
	_ = inc.Update([]mesh.Coord{mesh.C(5, 1), mesh.C(0, 7)}, nil)
	_ = inc.Update(nil, []mesh.Link{{From: mesh.C(2, 2), Dim: 1, Dir: 1}})
	for i, s := range p1.Sets {
		if s.Rect.StringIn(m) != rects[i] {
			t.Fatalf("set %d mutated by later Update: %v != %v", i, s.Rect.StringIn(m), rects[i])
		}
		if !s.Rep.Equal(snapshot[i].Rep) {
			t.Fatalf("rep %d mutated by later Update", i)
		}
	}
}

// An empty delta is a legal no-op Update returning the current partition.
func TestIncrementalEmptyDelta(t *testing.T) {
	m := mesh.MustNew(6, 6)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(2, 4))
	inc, err := NewIncremental(m, routing.Ascending(2), Source)
	if err != nil {
		t.Fatal(err)
	}
	inc.Update([]mesh.Coord{mesh.C(2, 4)}, nil)
	got := inc.Update(nil, nil)
	want, err := SES(f, routing.Ascending(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := samePartition(got, want); err != nil {
		t.Fatal(err)
	}
}

// Torus meshes are rejected like the from-scratch finder rejects them.
func TestIncrementalTorusRejected(t *testing.T) {
	m, _ := mesh.NewTorus(4, 4)
	if _, err := NewIncremental(m, routing.Ascending(2), Source); err == nil {
		t.Error("torus should be rejected")
	}
	if _, err := NewIncremental(mesh.MustNew(4, 4), routing.Order{0, 0}, Source); err == nil {
		t.Error("invalid ordering should be rejected")
	}
}
