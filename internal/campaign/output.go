package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"lambmesh/internal/sim"
)

// MeshName formats a widths slice the way the campaign reports it ("8x8").
func MeshName(widths []int) string {
	parts := make([]string, len(widths))
	for i, w := range widths {
		parts[i] = fmt.Sprint(w)
	}
	return strings.Join(parts, "x")
}

// Table renders the campaign result as a sim.Table (one row per grid
// point). The default columns are all derived from the seed and therefore
// byte-identical across worker counts and interrupt/resume; timing adds the
// measured recovery-latency columns, which are wall-clock and excluded from
// that guarantee (DESIGN.md §12).
func (r *Result) Table(timing bool) *sim.Table {
	cols := []string{
		"mesh", "model", "process", "trials",
		"P(conn)", "wilson95", "E[lambs]", "ci95",
		"p50", "p95", "p99", "E[faults]",
	}
	if timing {
		cols = append(cols, "rec_ms", "rec_ci_ms")
	}
	title := "reliability campaign"
	if !r.Complete {
		title += " (paused)"
	}
	t := &sim.Table{
		ID:      "campaign",
		Title:   title,
		Columns: cols,
	}
	for _, p := range r.Points {
		a := &p.Agg
		lo, hi := Wilson(a.Connected, a.Trials)
		pconn := 0.0
		if a.Trials > 0 {
			pconn = float64(a.Connected) / float64(a.Trials)
		}
		row := []string{
			MeshName(p.Mesh),
			p.Model.String(),
			p.Proc.String(),
			fmt.Sprint(a.Trials),
			fmt.Sprintf("%.4f", pconn),
			fmt.Sprintf("[%.4f,%.4f]", lo, hi),
			sim.F(a.Lambs.Mean),
			sim.F(a.Lambs.CI95()),
			sim.F(a.LambHist.Quantile(0.50)),
			sim.F(a.LambHist.Quantile(0.95)),
			sim.F(a.LambHist.Quantile(0.99)),
			sim.F(a.Faults.Mean),
		}
		if timing {
			row = append(row,
				sim.F(a.Recovery.Mean*1e3),
				sim.F(a.Recovery.CI95()*1e3))
		}
		t.AddRow(row...)
	}
	return t
}

// Render formats the result in the requested format: "table" (aligned
// monospace), "csv", or "json". JSON always carries the full aggregates
// (including recovery); for the deterministic formats timing gates the
// recovery columns.
func (r *Result) Render(format string, timing bool) (string, error) {
	switch format {
	case "", "table":
		return r.Table(timing).Render(), nil
	case "csv":
		return r.Table(timing).CSV(), nil
	case "json":
		raw, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return "", fmt.Errorf("campaign: render json: %w", err)
		}
		return string(raw) + "\n", nil
	}
	return "", fmt.Errorf("campaign: unknown format %q (table, csv, json)", format)
}
