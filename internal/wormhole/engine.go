package wormhole

// This file is the traffic engine: it runs an open-loop injection workload
// through the flit-level Network in the standard interconnect-evaluation
// shape (Dally & Seitz): a warm-up window the statistics ignore, a
// measurement window whose packets are the sample, and a drain phase that
// lets the sample finish. Packets wait in per-node source queues — a
// node's next worm cannot start entering the network until its previous
// one has fully left the source — so above saturation the queueing delay
// shows up in packet latency exactly as it would in hardware.
//
// The cycle loop preserves the allocation discipline of the Network: the
// engine pre-sizes its active list, source queues, and latency scratch at
// construction, so Reset+Run in a loop performs zero allocations.

import (
	"fmt"
	"sort"

	"lambmesh/internal/mesh"
)

// EngineConfig parameterizes one open-loop run.
type EngineConfig struct {
	// Net is the router microarchitecture (VCs, buffers, watchdog).
	Net Config
	// WarmupCycles precede the measurement window; packets injected during
	// warm-up are simulated but not sampled.
	WarmupCycles int
	// MeasureCycles is the measurement window. The workload's injection
	// horizon must equal WarmupCycles+MeasureCycles.
	MeasureCycles int
	// DrainCycles bounds the drain phase after the injection horizon;
	// <= 0 means 4x MeasureCycles. An overloaded network hits this bound
	// with sample packets undelivered, which Result.Saturated reports.
	DrainCycles int
	// Nodes is the number of traffic-generating endpoints (survivors),
	// used to normalize per-node rates.
	Nodes int
}

// EngineResult summarizes one run. The VC utilization slices are owned by
// the Engine and are overwritten by the next Run.
type EngineResult struct {
	Cycles     int
	Deadlocked bool

	Packets   int // generated
	Delivered int // delivered by the end of the run (any phase)

	SamplePackets   int // injected during the measurement window
	SampleDelivered int

	// OfferedFlitRate is the realized offered load in the measurement
	// window, in flits per node per cycle; AcceptedFlitRate is what the
	// network actually ejected in that window. Accepted tracking offered
	// is the pre-saturation regime; accepted flat-lining below offered is
	// saturation.
	OfferedFlitRate  float64
	AcceptedFlitRate float64

	// Latency statistics over delivered sample packets, in cycles from
	// generation (source-queueing time included) to tail ejection.
	MeanLatency float64
	P99Latency  int
	MaxLatency  int

	// Saturated reports that the run ended with undelivered sample packets
	// or with accepted throughput more than 5% below offered. Packets lost
	// to mid-run faults are excluded from both checks.
	Saturated bool

	// Per-VC mean/max utilization of touched channels over the whole run.
	VCMeanUtil []float64
	VCMaxUtil  []float64

	// Recovery metrics, populated only by live runs (NewLiveEngine); all
	// zero for a static engine or an empty fault schedule.
	Reconfigurations int             // fault events that changed the configuration
	DroppedWorms     int             // in-flight worms killed by new faults
	DroppedFlits     int             // flits in flight when their worm was killed
	Retransmits      int             // killed worms re-queued on a new route
	ReroutedPending  int             // queued packets rerouted before release
	LostPackets      int             // packets whose endpoint died (never delivered)
	RecoveryEvents   []EventRecovery // per applied event, in application order
}

// Engine drives a pre-generated workload (GenerateWorkload) through a
// Network with source queueing and phase-windowed statistics. Construct
// with NewEngine; one engine is single-goroutine (parallelize across
// engines, one per trial, as RunSweep does).
type Engine struct {
	net     *Network
	cfg     EngineConfig
	packets []*Message

	queueOf [][]*Message // per node index: packets in injection order
	nodes   []int        // node indexes with nonempty queues, ascending
	qhead   []int        // per node index: next packet to release

	active    []*Message // released, undelivered
	latencies []int      // sample latency scratch
	vcMean    []float64
	vcMax     []float64

	// lastReleased tracks, per node, the worm most recently released from
	// its injection port. The next packet may release only once that worm
	// has fully left the source — or once a mid-run fault killed it, which
	// frees the port (the live engine clears the entry).
	lastReleased []*Message

	samplePackets int
	offeredFlits  int // flits generated inside the measurement window
	maxFlits      int // longest packet, for the saturation noise floor

	// live holds mid-run fault-injection state (nil for static engines).
	live *liveState
}

// NewEngine validates the workload against the faulty mesh (via NewNetwork)
// and builds the per-node source queues. Packets must be survivor-to-
// survivor (no zero-hop self-deliveries) and are queued per source in
// InjectAt order.
func NewEngine(f *mesh.FaultSet, cfg EngineConfig, packets []*Message) (*Engine, error) {
	if cfg.WarmupCycles < 0 || cfg.MeasureCycles < 1 {
		return nil, fmt.Errorf("wormhole: engine needs a nonnegative warm-up and a positive measurement window")
	}
	if cfg.DrainCycles <= 0 {
		cfg.DrainCycles = 4 * cfg.MeasureCycles
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("wormhole: engine needs the endpoint count for rate normalization")
	}
	net, err := NewNetwork(f, cfg.Net, packets)
	if err != nil {
		return nil, err
	}
	m := f.Mesh()
	e := &Engine{
		net:          net,
		cfg:          cfg,
		packets:      packets,
		queueOf:      make([][]*Message, m.Nodes()),
		qhead:        make([]int, m.Nodes()),
		active:       make([]*Message, 0, len(packets)),
		latencies:    make([]int, 0, len(packets)),
		vcMean:       make([]float64, cfg.Net.VirtualChannels),
		vcMax:        make([]float64, cfg.Net.VirtualChannels),
		lastReleased: make([]*Message, m.Nodes()),
	}
	horizon := cfg.WarmupCycles + cfg.MeasureCycles
	for _, p := range packets {
		if len(p.Hops) == 0 {
			return nil, fmt.Errorf("wormhole: packet %d is a zero-hop self-delivery", p.ID)
		}
		if p.InjectAt < 0 || p.InjectAt >= horizon {
			return nil, fmt.Errorf("wormhole: packet %d injects at cycle %d outside the horizon %d", p.ID, p.InjectAt, horizon)
		}
		v := m.Index(p.Src)
		if q := e.queueOf[v]; len(q) > 0 && q[len(q)-1].InjectAt > p.InjectAt {
			return nil, fmt.Errorf("wormhole: packets of node %v out of injection order", p.Src)
		}
		e.queueOf[v] = append(e.queueOf[v], p)
		if p.InjectAt >= cfg.WarmupCycles {
			e.samplePackets++
			e.offeredFlits += p.Length
		}
		if p.Length > e.maxFlits {
			e.maxFlits = p.Length
		}
	}
	for v, q := range e.queueOf {
		if len(q) > 0 {
			e.nodes = append(e.nodes, v)
		}
	}
	return e, nil
}

// Reset rewinds the engine and its network so the same workload can run
// again; the benchmarks measure the steady-state cycle loop this way. Live
// engines are single-run: a mid-run reconfiguration rewrites routes and
// queues in ways Reset does not undo.
func (e *Engine) Reset() {
	e.net.Reset()
	clear(e.qhead)
	clear(e.lastReleased)
	e.active = e.active[:0]
	e.latencies = e.latencies[:0]
}

// Run executes warm-up, measurement, and drain, and returns the summary.
// The loop allocates nothing; all scratch was sized in NewEngine. For a
// live engine Run panics on reconfiguration errors; use RunLive to get
// them as errors.
func (e *Engine) Run() EngineResult {
	r, err := e.run(e.live)
	if err != nil {
		panic(err)
	}
	return r
}

// RunLive is Run for engines built with NewLiveEngine: reconfiguration
// failures (a lamb recompute or reroute that cannot succeed) surface as
// errors instead of panics.
func (e *Engine) RunLive() (EngineResult, error) {
	return e.run(e.live)
}

func (e *Engine) run(live *liveState) (EngineResult, error) {
	n := e.net
	horizon := e.cfg.WarmupCycles + e.cfg.MeasureCycles
	limit := horizon + e.cfg.DrainCycles
	if limit > n.cfg.MaxCycles {
		limit = n.cfg.MaxCycles
	}
	undelivered := len(e.packets)
	ejectedAtWarmup, ejectedAtMeasureEnd := 0, -1
	stall := 0
	cycle := 0
	for ; undelivered > 0 && cycle < limit; cycle++ {
		// Mid-run fault events strike at the start of their cycle, before
		// any release or flit movement.
		if live != nil {
			if err := live.applyDue(e, cycle, &undelivered); err != nil {
				return EngineResult{}, err
			}
		}

		// Release: a node's next packet enters the network once its
		// generation time has come and the previous worm has fully left
		// the source (single injection port per node).
		for _, v := range e.nodes {
			q := e.queueOf[v]
			h := e.qhead[v]
			for h < len(q) && q[h].InjectAt <= cycle &&
				(e.lastReleased[v] == nil || e.lastReleased[v].remaining == 0) {
				e.active = append(e.active, q[h])
				e.lastReleased[v] = q[h]
				h++
			}
			e.qhead[v] = h
		}

		// One network cycle over the active worms, rotation for fairness.
		n.stamp++
		moves := 0
		count := len(e.active)
		for off := 0; off < count; off++ {
			moves += n.stepMessage(e.active[(off+cycle)%count], cycle)
		}
		n.MovesTotal += moves
		n.Cycles = cycle + 1

		// Deliveries: compact the active list in place.
		w := 0
		for _, p := range e.active {
			if p.ejected == p.Length {
				p.Delivered = true
				p.DoneCycle = cycle
				undelivered--
				if p.InjectAt >= e.cfg.WarmupCycles {
					e.latencies = append(e.latencies, p.Latency())
				}
				continue
			}
			e.active[w] = p
			w++
		}
		e.active = e.active[:w]

		if moves == 0 && len(e.active) > 0 {
			if stall++; stall >= n.cfg.StallCycles {
				n.Deadlocked = true
				cycle++
				break
			}
		} else {
			stall = 0
		}

		if live != nil {
			live.endCycle(e, cycle)
		}

		if cycle == e.cfg.WarmupCycles-1 {
			ejectedAtWarmup = n.ejectedTotal
		}
		if cycle == horizon-1 {
			ejectedAtMeasureEnd = n.ejectedTotal
		}
	}
	if ejectedAtMeasureEnd < 0 { // run ended inside the window (deadlock/limit)
		ejectedAtMeasureEnd = n.ejectedTotal
	}
	return e.summarize(cycle, ejectedAtMeasureEnd-ejectedAtWarmup, live), nil
}

func (e *Engine) summarize(cycles, windowFlits int, live *liveState) EngineResult {
	r := EngineResult{
		Cycles:        cycles,
		Deadlocked:    e.net.Deadlocked,
		Packets:       len(e.packets),
		SamplePackets: e.samplePackets,
		VCMeanUtil:    e.vcMean,
		VCMaxUtil:     e.vcMax,
	}
	for _, p := range e.packets {
		if p.Delivered {
			r.Delivered++
		}
	}
	norm := float64(e.cfg.Nodes) * float64(e.cfg.MeasureCycles)
	r.OfferedFlitRate = float64(e.offeredFlits) / norm
	r.AcceptedFlitRate = float64(windowFlits) / norm

	r.SampleDelivered = len(e.latencies)
	if r.SampleDelivered > 0 {
		sum := 0
		for _, l := range e.latencies {
			sum += l
		}
		r.MeanLatency = float64(sum) / float64(r.SampleDelivered)
		sort.Ints(e.latencies)
		r.MaxLatency = e.latencies[r.SampleDelivered-1]
		idx := (99*r.SampleDelivered + 99) / 100 // ceil(0.99 n)
		if idx > r.SampleDelivered {
			idx = r.SampleDelivered
		}
		r.P99Latency = e.latencies[idx-1]
	}
	// Saturation: the drain phase could not flush the sample, or accepted
	// throughput sits measurably below offered. The absolute guard (a few
	// packets' worth of flits) keeps window-boundary noise at light loads —
	// a worm half-ejected when the window closes — from reading as
	// saturation. Packets lost to mid-run faults were never deliverable and
	// are excluded from both checks.
	offered, sampleLost := e.offeredFlits, 0
	if live != nil {
		offered -= live.lostSampleFlits
		sampleLost = live.sampleLost
		r.Reconfigurations = live.reconfigs
		r.DroppedWorms = live.droppedWorms
		r.DroppedFlits = live.droppedFlits
		r.Retransmits = live.retransmits
		r.ReroutedPending = live.reroutedPending
		r.LostPackets = live.lostPackets
		r.RecoveryEvents = live.events
	}
	deficit := float64(offered - windowFlits)
	r.Saturated = r.SampleDelivered < r.SamplePackets-sampleLost ||
		(deficit > 0.05*float64(offered) && deficit > 4*float64(e.maxFlits))
	e.net.VCUtilizationInto(cycles, e.vcMean, e.vcMax)
	return r
}
