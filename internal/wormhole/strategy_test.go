package wormhole

// The strategy-agnostic property suite: every RouteStrategy implementation
// must carry a randomized workload with the same guarantees — routes avoid
// faults and sacrificed nodes, channel dependencies stay acyclic, per-node
// injection is FIFO, and sweeps are byte-identical at any worker count —
// plus per-strategy discipline checks (dimension order for lambs, uniform
// class VCs for rings, negative-first ordering for adaptive). This suite is
// what makes the bake-off numbers comparable: a contender that wins by
// cheating on correctness fails here first.

import (
	"math/rand"
	"reflect"
	"testing"

	"lambmesh/internal/faultring"
	"lambmesh/internal/mesh"
	"lambmesh/internal/par"
	"lambmesh/internal/routing"
)

// strategyUnderTest builds a strategy over a random fault draw.
func strategyUnderTest(t *testing.T, name string, m *mesh.Mesh, faults int, seed int64) RouteStrategy {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := mesh.RandomNodeFaults(m, faults, rng)
	builder, err := NewStrategyBuilder(name, routing.UniformAscending(m.Dims(), 2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := builder(f)
	if err != nil {
		t.Fatalf("%s over %v with %d faults: %v", name, m, faults, err)
	}
	return s
}

func TestStrategyRouteProperties(t *testing.T) {
	type cfg struct {
		widths []int
		faults int
		seed   int64
	}
	var cases []cfg
	for i := 0; i < 6; i++ {
		cases = append(cases,
			cfg{widths: []int{5 + i, 10 - i}, faults: 2 + i, seed: int64(100 + i)},
			cfg{widths: []int{4, 4, 4}, faults: 2 * i, seed: int64(200 + i)},
		)
	}
	for _, name := range StrategyNames() {
		if name == "direct" {
			continue // full-mesh only; covered by TestTopologyMatrix
		}
		t.Run(name, func(t *testing.T) {
			for _, c := range cases {
				m := mesh.MustNew(c.widths...)
				if name == "ring" && m.Dims() != 2 {
					continue // the classical scheme is 2D-only
				}
				s := strategyUnderTest(t, name, m, c.faults, c.seed)
				msgs, unreachable, err := GenerateStrategyWorkload(s,
					WorkloadSpec{Pattern: PatternUniform, Rate: 0.02, PacketFlits: 5, Cycles: 150},
					2, rand.New(rand.NewSource(c.seed+1)))
				if err != nil {
					t.Fatalf("%v faults=%d: %v", m, c.faults, err)
				}
				if unreachable > 0 && name == "lamb" {
					t.Fatalf("%v faults=%d: lamb reported %d unreachable packets", m, c.faults, unreachable)
				}
				if len(msgs) == 0 {
					continue
				}
				f := s.Faults()
				eng, err := NewEngine(f, EngineConfig{
					Net:           DefaultConfig(),
					WarmupCycles:  50,
					MeasureCycles: 100,
					Nodes:         len(Survivors(f, s.Sacrificed())),
				}, msgs)
				if err != nil {
					t.Fatalf("%v faults=%d: %v", m, c.faults, err)
				}
				r := eng.Run()
				if r.Deadlocked {
					t.Fatalf("%s %v faults=%d: deadlock at 2 VCs", name, m, c.faults)
				}
				if r.Delivered != r.Packets {
					t.Fatalf("%s %v faults=%d: %d of %d delivered", name, m, c.faults, r.Delivered, r.Packets)
				}
				// No workload may induce a cyclic channel dependency: the
				// static Dally–Seitz criterion, checked per drawn workload.
				if cyc, bad := NewChannelDependencies(m, msgs).FindCycle(); bad {
					t.Fatalf("%s %v faults=%d: cyclic channel dependency: %s", name, m, c.faults, cyc)
				}
				sacrificedAt := make(map[int64]bool)
				for _, l := range s.Sacrificed() {
					sacrificedAt[m.Index(l)] = true
				}
				for _, msg := range msgs {
					checkStrategyRoute(t, name, m, f, sacrificedAt, msg)
				}
				checkSourceFIFO(t, m, msgs)
			}
		})
	}
}

// checkStrategyRoute dispatches the shared and per-strategy route checks.
func checkStrategyRoute(t *testing.T, name string, m *mesh.Mesh, f *mesh.FaultSet,
	sacrificedAt map[int64]bool, msg *Message) {
	t.Helper()
	switch name {
	case "lamb":
		// Full legacy discipline: round monotonicity and per-round
		// dimension order on top of the common checks.
		checkRouteProperties(t, m, f, sacrificedAt, routing.UniformAscending(m.Dims(), 2), msg)
		return
	case "ring":
		// The whole worm rides its message class's VC.
		wantVC := 0
		switch faultring.Class(msg.Src, msg.Dst) {
		case faultring.ClassEW, faultring.ClassSN:
			wantVC = 1
		}
		for i, h := range msg.Hops {
			if h.VC != wantVC {
				t.Fatalf("ring msg %d hop %d: VC %d, want class VC %d", msg.ID, i, h.VC, wantVC)
			}
		}
	case "adaptive":
		// Negative-first: no negative hop after any positive hop, and a
		// single VC end to end.
		seenPositive := false
		for i, h := range msg.Hops {
			if h.Link.Dir > 0 {
				seenPositive = true
			} else if seenPositive {
				t.Fatalf("adaptive msg %d hop %d: negative hop after positive prefix", msg.ID, i)
			}
			if h.VC != msg.Hops[0].VC {
				t.Fatalf("adaptive msg %d hop %d: VC changed mid-worm", msg.ID, i)
			}
		}
	}
	// Common checks for non-lamb strategies: survivor endpoints, contiguity,
	// usable links, and — stricter than lambs — no sacrificed node anywhere
	// on the path (a ring-inactivated node does not even route through).
	if f.NodeFaulty(msg.Src) || f.NodeFaulty(msg.Dst) {
		t.Fatalf("%s msg %d: faulty endpoint %v -> %v", name, msg.ID, msg.Src, msg.Dst)
	}
	if sacrificedAt[m.Index(msg.Src)] || sacrificedAt[m.Index(msg.Dst)] {
		t.Fatalf("%s msg %d: sacrificed endpoint %v -> %v", name, msg.ID, msg.Src, msg.Dst)
	}
	if len(msg.Hops) == 0 {
		t.Fatalf("%s msg %d: empty route", name, msg.ID)
	}
	if !msg.Hops[0].Link.From.Equal(msg.Src) {
		t.Fatalf("%s msg %d: route starts at %v, not src %v", name, msg.ID, msg.Hops[0].Link.From, msg.Src)
	}
	cur := msg.Src
	for i, h := range msg.Hops {
		if !h.Link.From.Equal(cur) {
			t.Fatalf("%s msg %d hop %d: discontinuous route (%v != %v)", name, msg.ID, i, h.Link.From, cur)
		}
		if !f.Usable(h.Link) {
			t.Fatalf("%s msg %d hop %d: unusable link %v", name, msg.ID, i, h.Link)
		}
		cur = h.Link.To(m)
		if f.NodeFaulty(cur) {
			t.Fatalf("%s msg %d hop %d: route through faulty node %v", name, msg.ID, i, cur)
		}
		if sacrificedAt[m.Index(cur)] && i < len(msg.Hops)-1 {
			t.Fatalf("%s msg %d hop %d: route through sacrificed node %v", name, msg.ID, i, cur)
		}
	}
	if !cur.Equal(msg.Dst) {
		t.Fatalf("%s msg %d: route ends at %v, not dst %v", name, msg.ID, cur, msg.Dst)
	}
}

// TestStrategyAllPairsServedOrReported: every survivor pair either gets a
// valid route or is explicitly reported unreachable (ok=false, no error).
// Lambs must serve every pair; the ring scheme must agree exactly with
// connectivity over its active subgraph.
func TestStrategyAllPairsServedOrReported(t *testing.T) {
	m := mesh.MustNew(8, 8)
	for _, name := range StrategyNames() {
		if name == "direct" {
			continue // full-mesh only; covered by TestTopologyMatrix
		}
		s := strategyUnderTest(t, name, m, 5, 42)
		f := s.Faults()
		survivors := Survivors(f, s.Sacrificed())
		rng := rand.New(rand.NewSource(7))
		unreachable := 0
		for _, src := range survivors {
			for _, dst := range survivors {
				if src.Equal(dst) {
					continue
				}
				msg, ok, err := s.Route(src, dst, 0, 4, 0, 2, rng)
				if err != nil {
					t.Fatalf("%s: Route(%v, %v): %v", name, src, dst, err)
				}
				if !ok {
					unreachable++
					continue
				}
				if msg == nil || len(msg.Hops) == 0 {
					t.Fatalf("%s: ok route with no hops %v -> %v", name, src, dst)
				}
			}
		}
		if name == "lamb" && unreachable != 0 {
			t.Fatalf("lamb left %d pairs unserved", unreachable)
		}
	}
}

// TestGenerateStrategyWorkloadReportsUnreachable exercises the redraw/skip
// path with a strategy that refuses one source outright: its packets are
// skipped and counted, everyone else's flow normally, and IDs stay dense.
func TestGenerateStrategyWorkloadReportsUnreachable(t *testing.T) {
	m := mesh.MustNew(6, 6)
	inner := strategyUnderTest(t, "adaptive", m, 0, 1)
	bad := inner.Faults().Mesh().CoordOf(0)
	s := &unreachableSrcStrategy{RouteStrategy: inner, bad: bad}
	msgs, unreachable, err := GenerateStrategyWorkload(s,
		WorkloadSpec{Pattern: PatternUniform, Rate: 0.2, PacketFlits: 4, Cycles: 60},
		2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if unreachable == 0 {
		t.Fatal("expected unreachable packets from the refused source")
	}
	for i, msg := range msgs {
		if msg.ID != i {
			t.Fatalf("IDs not dense after skips: msgs[%d].ID = %d", i, msg.ID)
		}
		if msg.Src.Equal(bad) {
			t.Fatalf("refused source still generated packet %d", msg.ID)
		}
	}
}

type unreachableSrcStrategy struct {
	RouteStrategy
	bad mesh.Coord
}

func (s *unreachableSrcStrategy) Route(src, dst mesh.Coord, id, length, injectAt, vcs int, rng *rand.Rand) (*Message, bool, error) {
	if src.Equal(s.bad) {
		return nil, false, nil
	}
	return s.RouteStrategy.Route(src, dst, id, length, injectAt, vcs, rng)
}

// TestStrategySweepWorkerDeterminism: RunSweep through every strategy is
// byte-identical at any worker count, static and live. Runs under -race in
// CI, which also exercises the shared-strategy concurrent Route path.
func TestStrategySweepWorkerDeterminism(t *testing.T) {
	m := mesh.MustNew(8, 8)
	rng := rand.New(rand.NewSource(9))
	f := mesh.RandomNodeFaults(m, 3, rng)
	orders := routing.UniformAscending(2, 2)
	for si, name := range StrategyNames() {
		if name == "direct" {
			continue // full-mesh only; covered by TestTopologyMatrix
		}
		builder, err := NewStrategyBuilder(name, orders)
		if err != nil {
			t.Fatal(err)
		}
		spec := SweepSpec{
			Rates:          []float64{0.02, 0.05},
			Trials:         3,
			Pattern:        PatternUniform,
			PacketFlits:    4,
			Warmup:         50,
			Measure:        100,
			Net:            DefaultConfig(),
			Seed:           11,
			Strategy:       builder,
			StrategyStream: si,
		}
		run := func(workers int, live bool) []SweepPoint {
			s := spec
			s.Workers = workers
			if live {
				s.Rates = []float64{0.02}
				s.Schedule = FaultSchedule{Events: []FaultEvent{{Cycle: 80, Nodes: []mesh.Coord{mesh.C(6, 6)}}}}
			}
			pts, err := RunSweep(f, orders, nil, s)
			if err != nil {
				t.Fatalf("%s workers=%d live=%v: %v", name, workers, live, err)
			}
			return pts
		}
		for _, live := range []bool{false, true} {
			one := run(1, live)
			four := run(4, live)
			if !reflect.DeepEqual(one, four) {
				t.Fatalf("%s live=%v: sweep differs across worker counts:\n1: %+v\n4: %+v",
					name, live, one, four)
			}
		}
	}
}

// TestSweepStrategyStreamSeparation is the seed-fold regression test: cells
// of sweeps at different StrategyStream values must draw disjoint trial
// seeds (2 strategies x 2 rates), while re-running the same stream
// reproduces results exactly.
func TestSweepStrategyStreamSeparation(t *testing.T) {
	m := mesh.MustNew(8, 8)
	rng := rand.New(rand.NewSource(5))
	f := mesh.RandomNodeFaults(m, 3, rng)
	orders := routing.UniformAscending(2, 2)
	builder, err := NewStrategyBuilder("adaptive", orders)
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{
		Rates:       []float64{0.02, 0.05},
		Trials:      2,
		Pattern:     PatternUniform,
		PacketFlits: 4,
		Warmup:      50,
		Measure:     100,
		Net:         DefaultConfig(),
		Seed:        11,
		Workers:     1,
		Strategy:    builder,
	}
	at := func(stream int) []SweepPoint {
		s := spec
		s.StrategyStream = stream
		pts, err := RunSweep(f, orders, nil, s)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	s0, s1 := at(0), at(1)
	if reflect.DeepEqual(s0, s1) {
		t.Fatal("streams 0 and 1 produced identical sweeps: strategy axis not folded into seeds")
	}
	if again := at(0); !reflect.DeepEqual(s0, again) {
		t.Fatal("re-running stream 0 diverged")
	}
	// And directly: the derived seeds of a 2-strategy x 2-rate x 2-trial
	// grid are pairwise distinct.
	seen := make(map[int64][3]int)
	for stream := 0; stream < 2; stream++ {
		for ri := 0; ri < 2; ri++ {
			for ti := 0; ti < 2; ti++ {
				seed := par.TrialSeed(11, stream*strategyStreamStride+ri, ti)
				if prev, dup := seen[seed]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v both derive %d", stream, ri, ti, prev, seed)
				}
				seen[seed] = [3]int{stream, ri, ti}
			}
		}
	}
}

// TestLiveStrategyReconfiguration: a live run through the ring and adaptive
// strategies absorbs a scheduled fault, reroutes or loses the affected
// traffic, and reproduces itself exactly when re-run.
func TestLiveStrategyReconfiguration(t *testing.T) {
	m := mesh.MustNew(8, 8)
	for _, name := range []string{"ring", "adaptive"} {
		run := func() EngineResult {
			s := strategyUnderTest(t, name, m, 2, 21)
			msgs, _, err := GenerateStrategyWorkload(s,
				WorkloadSpec{Pattern: PatternUniform, Rate: 0.05, PacketFlits: 4, Cycles: 300},
				2, rand.New(rand.NewSource(13)))
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewLiveEngine(EngineConfig{
				Net:           DefaultConfig(),
				WarmupCycles:  100,
				MeasureCycles: 200,
				Nodes:         len(Survivors(s.Faults(), s.Sacrificed())),
			}, LiveConfig{
				Schedule: FaultSchedule{Events: []FaultEvent{
					{Cycle: 150, Nodes: []mesh.Coord{mesh.C(4, 4), mesh.C(5, 4)}},
				}},
				Strategy:  s,
				RouteSeed: 99,
			}, msgs)
			if err != nil {
				t.Fatal(err)
			}
			r, err := eng.RunLive()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return r
		}
		first := run()
		if first.Reconfigurations == 0 {
			t.Fatalf("%s: scheduled event did not reconfigure", name)
		}
		if first.Deadlocked {
			t.Fatalf("%s: live run deadlocked", name)
		}
		first.VCMeanUtil = append([]float64(nil), first.VCMeanUtil...)
		first.VCMaxUtil = append([]float64(nil), first.VCMaxUtil...)
		second := run()
		second.VCMeanUtil = append([]float64(nil), second.VCMeanUtil...)
		second.VCMaxUtil = append([]float64(nil), second.VCMaxUtil...)
		first.RecoveryEvents, second.RecoveryEvents = nil, nil // RecomputeTime is wall clock
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: live run not reproducible:\nfirst:  %+v\nsecond: %+v", name, first, second)
		}
	}
}
