package campaign

// TrialRunner exposes the engine's inner trial loop — one worker's
// long-lived solver and scratch over a spec's grid — for embedding and for
// the repo's benchmarks (BenchmarkCampaignTrial pins the loop at zero
// steady-state allocations). It runs trials serially; Run is the
// scheduler that shards them across workers.
type TrialRunner struct {
	spec Spec
	pts  []*point
	w    *worker
	// Agg accumulates every trial run so far.
	Agg PointAgg
}

// NewTrialRunner validates spec and builds the grid and worker state.
func NewTrialRunner(spec Spec) (*TrialRunner, error) {
	pts, meshes, err := buildGrid(&spec)
	if err != nil {
		return nil, err
	}
	return &TrialRunner{spec: spec, pts: pts, w: newWorker(meshes)}, nil
}

// Points returns the grid size; pointIdx arguments must be below it.
func (tr *TrialRunner) Points() int { return len(tr.pts) }

// Trial runs one deterministic trial of grid point pointIdx into Agg. The
// same (spec.Seed, pointIdx, trial) always yields the same outcome.
func (tr *TrialRunner) Trial(pointIdx int, trial int64) error {
	return tr.w.runTrial(&tr.spec, tr.pts, pointIdx, trial, &tr.Agg)
}
