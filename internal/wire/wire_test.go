package wire

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"
)

func TestRouteReqRoundTrip(t *testing.T) {
	cases := [][2][]int{
		{{0, 0}, {7, 7}},
		{{1}, {11}},
		{{3, 0, 65535}, {0, 65535, 2}},
	}
	for _, c := range cases {
		buf, err := AppendRouteReq(nil, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		typ, p, rest, err := DecodeFrame(buf)
		if err != nil || typ != TRouteReq || len(rest) != 0 {
			t.Fatalf("decode: typ=%d rest=%d err=%v", typ, len(rest), err)
		}
		src, dst, err := ParseRouteReq(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(src, c[0]) || !reflect.DeepEqual(dst, c[1]) {
			t.Fatalf("round trip: %v->%v became %v->%v", c[0], c[1], src, dst)
		}
	}
	// Rejections.
	if _, err := AppendRouteReq(nil, []int{1, 2}, []int{3}); err == nil {
		t.Error("mismatched dims accepted")
	}
	if _, err := AppendRouteReq(nil, []int{-1}, []int{0}); err == nil {
		t.Error("negative coordinate accepted")
	}
	if _, err := AppendRouteReq(nil, []int{1 << 16}, []int{0}); err == nil {
		t.Error("oversize coordinate accepted")
	}
	if _, err := AppendRouteReq(nil, nil, nil); err == nil {
		t.Error("zero-dimensional request accepted")
	}
}

func TestRouteRespRoundTrip(t *testing.T) {
	cases := []Answer{
		{Code: CodeFound, Hops: 14, Turns: 1, NVias: 1, Gen: 7, Via: []int{3, 4}},
		{Code: CodeNoRoute, Gen: 1 << 60, Via: nil},
		{Code: CodeFound, Hops: 9, Turns: 2, NVias: 2, Via: []int{1, 2, 3, 4}},
	}
	for _, want := range cases {
		d := 2
		buf, err := AppendRouteResp(nil, &want, d)
		if err != nil {
			t.Fatal(err)
		}
		typ, p, _, err := DecodeFrame(buf)
		if err != nil || typ != TRouteResp {
			t.Fatalf("decode: typ=%d err=%v", typ, err)
		}
		var got Answer
		if err := ParseRouteResp(p, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: %+v became %+v", want, got)
		}
	}
	bad := Answer{NVias: 1, Via: []int{1}} // len(Via) != NVias*d for d=2
	if _, err := AppendRouteResp(nil, &bad, 2); err == nil {
		t.Error("inconsistent via length accepted")
	}
}

func TestHeaderValidation(t *testing.T) {
	good, _ := AppendRouteReq(nil, []int{1, 2}, []int{3, 4})
	for name, mut := range map[string]func([]byte){
		"magic":    func(b []byte) { b[0] = 0x00 },
		"version":  func(b []byte) { b[1] = 9 },
		"type":     func(b []byte) { b[2] = 77 },
		"reserved": func(b []byte) { b[3] = 1 },
		"length":   func(b []byte) { b[4] = 0xFF; b[5] = 0xFF; b[6] = 0xFF; b[7] = 0x7F },
	} {
		b := append([]byte(nil), good...)
		mut(b)
		if _, _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s corruption accepted", name)
		}
	}
	if _, _, _, err := DecodeFrame(good[:HeaderLen-1]); err == nil {
		t.Error("short header accepted")
	}
	if _, _, _, err := DecodeFrame(good[:len(good)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

// echoBackend answers every query with a fixed shape derived from the
// request, so the test can validate request plumbing.
type echoBackend struct{ d int }

func (e echoBackend) Dims() int { return e.d }
func (e echoBackend) Query(src, dst []int, ans *Answer) {
	ans.Code = CodeFound
	ans.Hops = src[0] + dst[0]
	ans.Turns = 0
	ans.Gen = 42
	ans.NVias = 1
	ans.Via = append(ans.Via[:0], src...)
}

func TestServeProtocolErrors(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, echoBackend{d: 2})

	// A garbage header draws an error frame, then the connection closes.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET / HTTP/1.1\r\n"))
	c := NewClient(conn)
	var ans Answer
	if err := c.Recv(&ans); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("garbage header: %v", err)
	}

	// A response frame sent to the server is a protocol error too.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	frame, _ := AppendRouteResp(nil, &Answer{Code: CodeFound, NVias: 0, Via: []int{}}, 2)
	conn2.Write(frame)
	c2 := NewClient(conn2)
	if err := c2.Recv(&ans); err == nil || !strings.Contains(err.Error(), "route request") {
		t.Fatalf("response-to-server: %v", err)
	}
}

func TestErrorFrameTruncation(t *testing.T) {
	msg := strings.Repeat("x", MaxPayload+10)
	b := AppendError(nil, msg)
	_, p, _, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != MaxPayload || !bytes.Equal(p, []byte(msg[:MaxPayload])) {
		t.Fatalf("error payload len %d", len(p))
	}
}
