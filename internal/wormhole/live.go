package wormhole

// Live fault injection: the engine absorbs a FaultSchedule mid-simulation.
// At the start of a scheduled cycle the new faults are folded into a
// core.Reconfigurer (which recomputes the lamb set with the Section 7
// predetermined-lamb extension, so lambs stay monotone), worms whose path
// crosses a newly-dead node or link are killed — their in-flight flits
// dropped and counted — and the affected traffic is rerouted through the
// new configuration: killed worms with live endpoints are re-queued at
// their source for retransmission, queued-but-unreleased packets get fresh
// routes in place, and packets whose source or destination died (outright
// fault or freshly sacrificed lamb) are counted as lost. The run then
// continues, and per-event recovery latency is measured as the number of
// cycles until accepted throughput returns to its pre-event mean.
//
// Everything here runs only at reconfiguration events; the per-cycle cost
// added to a live run is one counter read and a ring-buffer push, and a
// static engine (live == nil) pays nothing, preserving the 0 allocs/op
// cycle-loop discipline.

import (
	"fmt"
	"math/rand"
	"time"

	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/routing"
)

// LiveConfig parameterizes mid-run fault injection for NewLiveEngine.
type LiveConfig struct {
	// Schedule lists the fault events; it is canonicalized and validated
	// against the mesh at construction.
	Schedule FaultSchedule
	// Strategy owns the evolving routing configuration: its fault set must
	// already hold the faults the workload was routed around, and the
	// engine mutates it (AddFaults) as events apply. When nil, the legacy
	// Reconf+Orders pair below is wrapped into a lamb strategy, preserving
	// the original behavior bit for bit.
	Strategy RouteStrategy
	// Reconf owns the evolving fault/lamb configuration (legacy lamb path;
	// ignored when Strategy is set). The engine shares its fault set, so
	// the Reconfigurer must already hold the faults the workload was routed
	// around, and must not be mutated elsewhere during the run. KeepLambs
	// should be set: a survivor that silently becomes a lamb mid-run loses
	// its queued traffic.
	Reconf *core.Reconfigurer
	// Orders is the k-round dimension ordering used to reroute traffic
	// (the same MultiOrder the workload was generated with; legacy lamb
	// path only).
	Orders routing.MultiOrder
	// RouteSeed seeds the rng used for rerouting draws, keeping live runs
	// a pure function of (workload, schedule, RouteSeed).
	RouteSeed int64
	// RecoveryWindow is the width in cycles of the throughput window used
	// for recovery detection; <= 0 means 32.
	RecoveryWindow int
	// RecoveryFraction is the fraction of the pre-event accepted rate that
	// counts as recovered; <= 0 means 0.9.
	RecoveryFraction float64
}

// EventRecovery records the impact of one applied fault event.
type EventRecovery struct {
	// Cycle the event was applied at.
	Cycle int
	// NewNodes/NewLinks count the genuinely new faults (already-faulty
	// elements in the event are ignored).
	NewNodes int
	NewLinks int
	// Killed is the number of in-flight worms removed from the network.
	Killed int
	// Lost is the number of packets (in flight or queued) whose source or
	// destination died with the event.
	Lost int
	// PreRate is the accepted flit rate (flits/cycle, network-wide) over
	// the RecoveryWindow cycles before the event.
	PreRate float64
	// RecoveryLatency is the number of cycles after the event until the
	// windowed accepted rate first reached RecoveryFraction*PreRate again;
	// 0 if PreRate was zero (nothing to recover), -1 if the run ended
	// before recovery.
	RecoveryLatency int
	// RecomputeTime is the wall-clock cost of the lamb recomputation this
	// event triggered — the host-side reconfiguration stall, as opposed to
	// RecoveryLatency's in-network cycles. Excluded from golden outputs
	// (wormsim prints only deterministic fields); EXPERIMENTS.md uses it to
	// compare incremental against full recomputes.
	RecomputeTime time.Duration
}

// liveState is the engine's mid-run fault-injection machinery.
type liveState struct {
	cfg      LiveConfig
	sched    FaultSchedule // canonical
	next     int           // next schedule event to apply
	strat    RouteStrategy
	routeRng *rand.Rand
	// isSacrificed densely flags the strategy's sacrificed nodes (lambs,
	// ring-inactivated) for the current configuration.
	isSacrificed []bool

	// ring holds the last window per-cycle ejected-flit counts.
	ring        []int
	ringPos     int
	ringLen     int
	prevEjected int
	window      int
	fraction    float64

	pending []pendingRecovery
	events  []EventRecovery

	reconfigs       int
	droppedWorms    int
	droppedFlits    int
	retransmits     int
	reroutedPending int
	lostPackets     int
	sampleLost      int // lost packets generated inside the measurement window
	lostSampleFlits int
}

type pendingRecovery struct {
	idx     int // index into events
	cycle   int // application cycle
	preRate float64
}

// NewLiveEngine builds an Engine whose run absorbs the scheduled faults.
// The packets must have been routed around the strategy's current fault
// set (the engine validates them against it); the strategy evolves as
// events apply.
func NewLiveEngine(cfg EngineConfig, lc LiveConfig, packets []*Message) (*Engine, error) {
	strat := lc.Strategy
	if strat == nil {
		if lc.Reconf == nil {
			return nil, fmt.Errorf("wormhole: live engine needs a Strategy or a Reconfigurer")
		}
		if err := lc.Orders.Validate(lc.Reconf.Faults().Mesh().Dims()); err != nil {
			return nil, err
		}
		strat = wrapReconfigurer(lc.Reconf, lc.Orders)
	}
	f := strat.Faults()
	if err := lc.Schedule.Validate(f.Mesh()); err != nil {
		return nil, err
	}
	e, err := NewEngine(f, cfg, packets)
	if err != nil {
		return nil, err
	}
	window := lc.RecoveryWindow
	if window <= 0 {
		window = 32
	}
	fraction := lc.RecoveryFraction
	if fraction <= 0 {
		fraction = 0.9
	}
	live := &liveState{
		cfg:          lc,
		sched:        lc.Schedule.Canonical(),
		strat:        strat,
		routeRng:     rand.New(rand.NewSource(lc.RouteSeed)),
		isSacrificed: make([]bool, f.Mesh().Nodes()),
		ring:         make([]int, window),
		window:       window,
		fraction:     fraction,
	}
	for _, c := range strat.Sacrificed() {
		live.isSacrificed[f.Mesh().Index(c)] = true
	}
	e.live = live
	return e, nil
}

// applyDue applies every schedule event whose cycle has come.
func (l *liveState) applyDue(e *Engine, cycle int, undelivered *int) error {
	for l.next < len(l.sched.Events) && l.sched.Events[l.next].Cycle <= cycle {
		ev := l.sched.Events[l.next]
		l.next++
		if err := l.applyEvent(e, ev, cycle, undelivered); err != nil {
			return err
		}
	}
	return nil
}

// dead reports whether c can no longer be a traffic endpoint: it failed
// outright or was sacrificed by the strategy (lamb, ring-inactivated).
func (l *liveState) dead(f *mesh.FaultSet, c mesh.Coord) bool {
	return f.NodeFaulty(c) || l.isSacrificed[f.Mesh().Index(c)]
}

// routeBroken reports whether any of msg's hops from `from` onward crosses
// the (updated) fault set.
func routeBroken(f *mesh.FaultSet, msg *Message, from int) bool {
	for i := from; i < len(msg.Hops); i++ {
		if !f.Usable(msg.Hops[i].Link) {
			return true
		}
	}
	return false
}

// reroute draws a fresh route for msg through the current configuration and
// grafts it onto the message, rebinding its dense state. ok=false means the
// pair is unreachable under the strategy's new configuration (the caller
// accounts the packet as lost); an error aborts the run.
func (l *liveState) reroute(e *Engine, msg *Message) (bool, error) {
	vcs := e.cfg.Net.VirtualChannels
	m := l.strat.Faults().Mesh()
	for attempt := 0; ; attempt++ {
		fresh, ok, err := l.strat.Route(msg.Src, msg.Dst,
			msg.ID, msg.Length, msg.InjectAt, vcs, l.routeRng)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		if !hasVCReuse(m, fresh) {
			msg.Hops = fresh.Hops
			msg.PathHops = fresh.PathHops
			msg.PathTurns = fresh.PathTurns
			break
		}
		if attempt >= 50 {
			return false, fmt.Errorf("wormhole: could not redraw a self-overlap-free route for packet %d", msg.ID)
		}
	}
	msg.Delivered = false
	msg.DoneCycle = 0
	msg.StartCycle = 0
	return true, e.net.bindMessage(msg)
}

// applyEvent folds one fault event into the configuration and repairs the
// traffic state: kill, reroute, requeue, and account.
func (l *liveState) applyEvent(e *Engine, ev FaultEvent, cycle int, undelivered *int) error {
	f := l.strat.Faults()
	m := f.Mesh()

	// Only genuinely new faults trigger a reconfiguration.
	var newNodes []mesh.Coord
	for _, c := range ev.Nodes {
		if !f.NodeFaulty(c) {
			newNodes = append(newNodes, c)
		}
	}
	var newLinks []mesh.Link
	for _, lk := range ev.Links {
		if !f.LinkFaulty(lk) {
			newLinks = append(newLinks, lk)
		}
	}
	if len(newNodes) == 0 && len(newLinks) == 0 {
		return nil
	}

	recomputeStart := time.Now()
	if err := l.strat.AddFaults(newNodes, newLinks); err != nil {
		return fmt.Errorf("wormhole: reconfiguration at cycle %d: %w", cycle, err)
	}
	recomputeTime := time.Since(recomputeStart)
	l.reconfigs++
	f = l.strat.Faults()
	clear(l.isSacrificed)
	for _, c := range l.strat.Sacrificed() {
		l.isSacrificed[m.Index(c)] = true
	}

	killed, lost := 0, 0
	markLost := func(p *Message) {
		p.lost = true
		p.remaining = 0
		*undelivered = *undelivered - 1
		lost++
		l.lostPackets++
		if p.InjectAt >= e.cfg.WarmupCycles {
			l.sampleLost++
			l.lostSampleFlits += p.Length
		}
	}

	// Active worms: kill any whose remaining path crosses the new faults or
	// whose endpoints died. The tail position bounds the relevant hops — a
	// fault behind the tail no longer matters to this worm.
	w := 0
	for _, p := range e.active {
		tail := 0
		if p.remaining == 0 {
			for tail < len(p.Hops) && p.buf[tail] == 0 {
				tail++
			}
		}
		endpointDead := l.dead(f, p.Src) || l.dead(f, p.Dst)
		if !endpointDead && !routeBroken(f, p, tail) {
			e.active[w] = p
			w++
			continue
		}
		l.droppedFlits += e.net.removeWorm(p)
		l.droppedWorms++
		killed++
		if v := m.Index(p.Src); e.lastReleased[v] == p {
			e.lastReleased[v] = nil // the injection port is free again
		}
		if endpointDead {
			markLost(p)
			continue
		}
		// Retransmission: fresh route, back of the source queue; latency
		// keeps accruing from the original generation time. A pair the new
		// configuration cannot serve (strategy-dependent) is lost instead.
		ok, err := l.reroute(e, p)
		if err != nil {
			return err
		}
		if !ok {
			markLost(p)
			continue
		}
		e.queueOf[m.Index(p.Src)] = append(e.queueOf[m.Index(p.Src)], p)
		l.retransmits++
	}
	e.active = e.active[:w]

	// Queued, unreleased packets: drop the dead-endpoint ones, reroute the
	// broken ones in place.
	for _, v := range e.nodes {
		q := e.queueOf[v]
		w := e.qhead[v]
		for h := e.qhead[v]; h < len(q); h++ {
			p := q[h]
			if l.dead(f, p.Src) || l.dead(f, p.Dst) {
				markLost(p)
				continue
			}
			if routeBroken(f, p, 0) {
				ok, err := l.reroute(e, p)
				if err != nil {
					return err
				}
				if !ok {
					markLost(p)
					continue
				}
				l.reroutedPending++
			}
			q[w] = p
			w++
		}
		e.queueOf[v] = q[:w]
	}

	rate := l.windowedRate(l.ringLen)
	l.events = append(l.events, EventRecovery{
		Cycle:           cycle,
		NewNodes:        len(newNodes),
		NewLinks:        len(newLinks),
		Killed:          killed,
		Lost:            lost,
		PreRate:         rate,
		RecoveryLatency: -1,
		RecomputeTime:   recomputeTime,
	})
	if rate == 0 {
		// Nothing was flowing before the event; recovery is trivially
		// immediate.
		l.events[len(l.events)-1].RecoveryLatency = 0
	} else {
		l.pending = append(l.pending, pendingRecovery{
			idx:     len(l.events) - 1,
			cycle:   cycle,
			preRate: rate,
		})
	}
	return nil
}

// windowedRate returns the mean ejected flits per cycle over the last k
// recorded cycles (k <= window; 0 yields 0).
func (l *liveState) windowedRate(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > l.ringLen {
		k = l.ringLen
	}
	sum := 0
	pos := l.ringPos
	for i := 0; i < k; i++ {
		pos--
		if pos < 0 {
			pos = l.window - 1
		}
		sum += l.ring[pos]
	}
	return float64(sum) / float64(k)
}

// endCycle records the cycle's accepted flits and resolves pending
// recoveries whose windowed rate is back to the pre-event level.
func (l *liveState) endCycle(e *Engine, cycle int) {
	delta := e.net.ejectedTotal - l.prevEjected
	l.prevEjected = e.net.ejectedTotal
	l.ring[l.ringPos] = delta
	l.ringPos++
	if l.ringPos == l.window {
		l.ringPos = 0
	}
	if l.ringLen < l.window {
		l.ringLen++
	}
	if len(l.pending) == 0 {
		return
	}
	w := 0
	for _, p := range l.pending {
		age := cycle - p.cycle + 1
		if l.windowedRate(age) >= l.fraction*p.preRate {
			l.events[p.idx].RecoveryLatency = cycle - p.cycle
			continue
		}
		l.pending[w] = p
		w++
	}
	l.pending = l.pending[:w]
}
