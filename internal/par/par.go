// Package par is the shared worker-pool helper behind every parallel kernel
// in the lamb pipeline (bitmat products, reach matrix fills, sweep rows, sim
// trials). It exists so the "how many workers" question is answered in
// exactly one place: Clamp maps the conventional knob value (<= 0 means "all
// CPUs") to an effective count, and Do/Blocks fan a loop out over that many
// goroutines.
//
// Determinism contract: Do and Blocks only change *which goroutine* executes
// an index, never the set of indices executed, so any loop whose iterations
// write disjoint outputs (e.g. one matrix row each) produces bit-identical
// results for every worker count. All parallel kernels in this repository
// are written in that style.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp returns the effective worker count for knob value n: n itself when
// positive, else runtime.NumCPU(). Every Workers knob in the repository
// (core.WithWorkers, sim.Config.Workers, server.Config.Workers, the -workers
// flags) routes through this one clamp so the conventions cannot drift.
func Clamp(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Do runs fn(i) for every i in [0, n), fanning out over up to `workers`
// goroutines (clamped via Clamp and capped at n). Indices are handed out
// dynamically from an atomic counter, so uneven per-index costs balance
// well. With one effective worker the loop runs inline on the caller's
// goroutine. Do returns after every call has finished. fn must not panic
// across goroutines it does not own; iterations must write disjoint data.
func Do(workers, n int, fn func(i int)) {
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Blocks splits [0, n) into up to `workers` contiguous half-open blocks and
// runs fn(lo, hi) for each concurrently. Use it when fn amortizes per-call
// setup over a range (e.g. row blocks of a matrix product). With one
// effective worker fn(0, n) runs inline. Blocks returns after every call has
// finished.
func Blocks(workers, n int, fn func(lo, hi int)) {
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// TrialSeed derives the deterministic RNG seed of one Monte Carlo trial.
// Every stochastic layer in the repository (sim experiments, wormhole
// sweeps, campaign shards) seeds trial t of stream s with
// TrialSeed(seed, s, t), so a trial's randomness is a pure function of
// (base seed, stream, trial) — independent of worker count and scheduling.
//
// The derivation mixes a per-stream base (seed plus stream strides of the
// golden gamma) through the splitmix64 finalizer, adds the trial index, and
// finalizes again. Within a stream every trial budget gets distinct seeds —
// the finalizer is a 64-bit bijection and the trial offset an exact add —
// and across streams the mixed bases leave no arithmetic structure for
// collisions, unlike an affine map seed + k*stream + trial whose adjacent
// streams replay each other's tails once trial counts reach k. Streams
// index the outer grid dimension (a sweep's rate index, a campaign's grid
// point); single-stream callers pass stream 0.
func TrialSeed(seed int64, stream, trial int) int64 {
	base := mix64(uint64(seed) + 0x9e3779b97f4a7c15*uint64(int64(stream)))
	return int64(mix64(base + uint64(int64(trial))))
}

// mix64 is the splitmix64 finalizer, a bijection on 64-bit words.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
