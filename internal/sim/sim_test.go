package sim

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"lambmesh/internal/mesh"
)

func TestAgg(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Std() != 0 {
		t.Error("empty Agg should be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.Std() != 2 {
		t.Errorf("Std = %v", a.Std())
	}
	if a.Max() != 9 || a.Min() != 2 {
		t.Errorf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	var b Agg
	b.Add(100)
	a.Merge(&b)
	if a.Count != 9 || a.Max() != 100 {
		t.Errorf("Merge wrong: %+v", a)
	}
	var c Agg
	c.Merge(&a)
	if c.Count != 9 {
		t.Error("Merge into empty wrong")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Paper: "ref", Columns: []string{"a", "bbb"}}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"== x: demo ==", "paper: ref", "a", "bbb", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("row length mismatch should panic")
		}
	}()
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("1", "2")
}

// ForEachTrial must be deterministic regardless of worker count.
func TestForEachTrialDeterministic(t *testing.T) {
	run := func(workers int) []int64 {
		out := make([]int64, 16)
		var mu sync.Mutex
		ForEachTrial(Config{Seed: 7, Workers: workers}, 16, func(trial int, rng *rand.Rand) {
			v := rng.Int63()
			mu.Lock()
			out[trial] = v
			mu.Unlock()
		})
		return out
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs between worker counts", i)
		}
	}
}

func TestRunLambPointDeterministic(t *testing.T) {
	m := mesh.MustNew(10, 10)
	cfg := Config{Trials: 8, Seed: 3, Workers: 2}
	p1 := RunLambPoint(cfg, m, 5, 2)
	p2 := RunLambPoint(cfg, m, 5, 2)
	if p1.Lambs.Sum != p2.Lambs.Sum || p1.Lambs.Max() != p2.Lambs.Max() {
		t.Error("same seed should give identical lamb statistics")
	}
	if p1.Lambs.Count != 8 {
		t.Errorf("Count = %d", p1.Lambs.Count)
	}
}

// Every registered experiment must run end to end at a tiny trial count and
// produce a non-empty, well-formed table.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipping in -short")
	}
	cfg := Config{Trials: 5, Seed: 2, Workers: 2}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.ID == "fig24" || e.ID == "fig26" || e.ID == "sec3one" {
			continue // exercised by TestHeavyExperimentSpot below and the CLI
		}
		tab := e.Run(cfg)
		if tab == nil || tab.ID != e.ID {
			t.Fatalf("experiment %q returned bad table", e.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %q produced no rows", e.ID)
		}
		if got := tab.Render(); !strings.Contains(got, e.ID) {
			t.Errorf("experiment %q render missing id", e.ID)
		}
	}
	if _, ok := Lookup("fig18"); !ok {
		t.Error("Lookup(fig18) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

// One heavier spot check: the 3D headline number. With a handful of trials
// the average lamb count at 3% faults on M_3(32) should land near the
// paper's 67.6 (we allow a generous band).
func TestHeadline3DNumber(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	m := mesh.MustNew(32, 32, 32)
	ps := RunLambPoint(Config{Trials: 5, Seed: 11}, m, 983, 2)
	if ps.Lambs.Mean() < 30 || ps.Lambs.Mean() > 120 {
		t.Errorf("avg lambs at 3%% = %v, expected near the paper's 67.6", ps.Lambs.Mean())
	}
}

func TestScaledTrials(t *testing.T) {
	cfg := Config{Trials: 100}
	if scaledTrials(cfg, 0) != 100 || scaledTrials(cfg, 1) != 100 {
		t.Error("weight <= 1 should not scale")
	}
	if scaledTrials(cfg, 5) != 20 {
		t.Error("weight 5 should divide")
	}
	if scaledTrials(Config{Trials: 10}, 5) != 5 {
		t.Error("floor of 5 trials")
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Paper: "ref", Columns: []string{"a", "b"}}
	tab.AddRow("1", `va"l,ue`)
	md := tab.Markdown()
	for _, want := range []string{"### x: demo", "*paper: ref*", "| a | b |", "|---|---|", "| 1 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
}

// Experiments must be deterministic under a fixed config (same seed, any
// worker count). Checked on the cheap deterministic-by-construction ones.
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"table1", "table2", "sec5lamb", "fig15", "prop65", "hardness", "worm", "ext-congestion"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		a := e.Run(Config{Trials: 5, Seed: 9, Workers: 1})
		b := e.Run(Config{Trials: 5, Seed: 9, Workers: 3})
		if a.Render() != b.Render() {
			t.Errorf("experiment %q not deterministic:\n%s\nvs\n%s", id, a.Render(), b.Render())
		}
	}
}

// Every experiment id promised by DESIGN.md's index exists in the registry.
func TestRegistryCoversDesignIndex(t *testing.T) {
	ids := []string{
		"table1", "table2", "sec5lamb",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
		"sec3one", "sec3two", "fig15", "prop65", "hardness",
		"abl-rounds", "abl-vcover", "abl-blockfault", "abl-sptree", "worm",
		"ext-linkfaults", "ext-reconfig", "ext-congestion", "ext-torus",
		"worm-saturation",
	}
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q from DESIGN.md missing", id)
		}
	}
	if got := len(Registry()); got != len(ids) {
		t.Errorf("registry has %d experiments, DESIGN.md lists %d", got, len(ids))
	}
}
