// Package routing implements deterministic dimension-ordered (e-cube style)
// wormhole routes on meshes and tori, and a fault-avoidance reachability
// oracle (Definitions 2.2–2.5 of Ho & Stockmeyer, IPDPS 2002).
//
// A 1-round ordering is a permutation pi of the dimensions; the pi-route
// from v to w corrects each coordinate fully, one dimension at a time, in
// the order given by pi. A k-round routing applies k (possibly different)
// orderings in sequence with free choice of the k-1 intermediate nodes; each
// round is assumed to run on its own virtual channel, which makes the whole
// scheme deadlock-free.
//
// The Oracle answers "can v (F,pi)-reach w?" in O(d log f) time after an
// O(d f log f) index build, independent of the mesh size N. This is the
// primitive underneath the SES/DES reachability matrices of Section 6.2.
package routing

import "fmt"

// Order is a 1-round dimension ordering: a permutation of {0,...,d-1}. The
// route corrects dimension Order[0] first, then Order[1], and so on. The
// paper's XY-routing is Order{0,1}; XYZ-routing is Order{0,1,2}.
type Order []int

// Ascending returns the ascending ordering (0,1,...,d-1) — the e-cube
// ordering generalized to meshes (XY in 2D, XYZ in 3D).
func Ascending(d int) Order {
	o := make(Order, d)
	for i := range o {
		o[i] = i
	}
	return o
}

// Descending returns (d-1,...,1,0). A set is a DES for the ascending
// ordering iff it is an SES for the descending ordering (Section 6.1).
func Descending(d int) Order {
	o := make(Order, d)
	for i := range o {
		o[i] = d - 1 - i
	}
	return o
}

// Reverse returns the ordering that corrects dimensions in the opposite
// sequence.
func (o Order) Reverse() Order {
	r := make(Order, len(o))
	for i, v := range o {
		r[len(o)-1-i] = v
	}
	return r
}

// Validate checks that o is a permutation of {0,...,d-1}.
func (o Order) Validate(d int) error {
	if len(o) != d {
		return fmt.Errorf("routing: ordering %v has %d entries; mesh has %d dimensions", o, len(o), d)
	}
	// A bitmask tracks the dimensions seen, so validation on realistic
	// (d <= 64) meshes costs no allocation; trial loops validate millions
	// of times.
	if d <= 64 {
		var seen uint64
		for _, v := range o {
			if v < 0 || v >= d || seen&(1<<uint(v)) != 0 {
				return fmt.Errorf("routing: ordering %v is not a permutation of 0..%d", o, d-1)
			}
			seen |= 1 << uint(v)
		}
		return nil
	}
	seen := make([]bool, d)
	for _, v := range o {
		if v < 0 || v >= d || seen[v] {
			return fmt.Errorf("routing: ordering %v is not a permutation of 0..%d", o, d-1)
		}
		seen[v] = true
	}
	return nil
}

// Equal reports whether two orderings are identical.
func (o Order) Equal(p Order) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// String names dimensions X, Y, Z, then D3, D4, ... like the paper.
func (o Order) String() string {
	names := []string{"X", "Y", "Z"}
	s := ""
	for _, v := range o {
		if v < len(names) {
			s += names[v]
		} else {
			s += fmt.Sprintf("D%d", v)
		}
	}
	return s
}

// MultiOrder is a k-round ordering (pi_1, ..., pi_k) per Definition 2.3.
type MultiOrder []Order

// Uniform returns the pi-ordered k-round routing (pi, pi, ..., pi).
func Uniform(o Order, k int) MultiOrder {
	m := make(MultiOrder, k)
	for i := range m {
		m[i] = o
	}
	return m
}

// UniformAscending returns k rounds of the ascending (e-cube) ordering —
// the configuration used in all of the paper's examples and simulations.
func UniformAscending(d, k int) MultiOrder {
	return Uniform(Ascending(d), k)
}

// Rounds returns k.
func (mo MultiOrder) Rounds() int { return len(mo) }

// Validate checks every round's ordering.
func (mo MultiOrder) Validate(d int) error {
	if len(mo) == 0 {
		return fmt.Errorf("routing: need at least one round")
	}
	for i, o := range mo {
		if err := o.Validate(d); err != nil {
			return fmt.Errorf("round %d: %w", i+1, err)
		}
	}
	return nil
}

// String renders, e.g., "XYZXYZ" for two rounds of XYZ.
func (mo MultiOrder) String() string {
	s := ""
	for _, o := range mo {
		s += o.String()
	}
	return s
}
