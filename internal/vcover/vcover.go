// Package vcover solves weighted vertex cover (WVC) problems — the
// combinatorial core that lamb minimization reduces to (Section 6.3 of Ho &
// Stockmeyer, IPDPS 2002).
//
// Three solvers are provided, matching the paper's toolbox:
//
//   - SolveBipartite: exact minimum-weight vertex cover on a bipartite
//     graph via max-flow/min-cut [Gusfield 1992], polynomial time. Used by
//     Lamb1 (Section 6.3.1).
//   - Approx2: the Bar-Yehuda & Even linear-time 2-approximation for
//     general graphs [BYE 1981]. Used by Lamb2 as the fast option
//     (Section 6.3.2).
//   - SolveExact: branch-and-bound exact WVC for general graphs,
//     exponential time, usable for the small instances in Corollary 6.10
//     and in tests.
package vcover

import (
	"fmt"
	"sort"

	"lambmesh/internal/maxflow"
)

// Bipartite is a vertex-weighted bipartite graph with p left vertices and q
// right vertices. Weights must be positive for vertices incident to edges.
type Bipartite struct {
	LeftWeight  []int64
	RightWeight []int64
	// Edges[i] lists the right neighbors of left vertex i.
	Edges [][]int
}

// Cover is a vertex cover of a Bipartite: which left and right vertices are
// chosen, plus the total weight.
type Cover struct {
	Left   []bool
	Right  []bool
	Weight int64
}

// Scratch owns the reusable state of repeated vertex-cover solves: the flow
// network behind SolveBipartite and the edge-list/weight buffers behind
// Approx2. Covers and picks returned through a Scratch reference
// scratch-owned memory and are valid until the next call on the same
// Scratch; the package-level functions wrap a throwaway Scratch and so keep
// their caller-owns-result contracts. Not safe for concurrent use; the zero
// value is ready.
type Scratch struct {
	fg        maxflow.Graph
	cover     Cover
	remaining []int64
	pick      []bool
	edges     [][2]int
}

// SolveBipartite returns a minimum-weight vertex cover of g, exactly, via
// min-cut: source->left_i with capacity w(left_i), right_j->sink with
// capacity w(right_j), and infinite-capacity edges across. A left vertex is
// in the cover iff its source edge is cut (unreachable in the residual
// graph); a right vertex iff its sink edge is cut (reachable).
func SolveBipartite(g *Bipartite) *Cover {
	return new(Scratch).SolveBipartite(g)
}

// SolveBipartite is the package-level SolveBipartite drawing the flow
// network and the Cover from s. The Cover is valid until the next call on s.
func (s *Scratch) SolveBipartite(g *Bipartite) *Cover {
	p, q := len(g.LeftWeight), len(g.RightWeight)
	fg := s.fg.Reset(p + q + 2)
	src, sink := p+q, p+q+1
	for i, w := range g.LeftWeight {
		if w < 0 {
			panic(fmt.Sprintf("vcover: negative weight on left %d", i))
		}
		fg.AddEdge(src, i, w)
	}
	for j, w := range g.RightWeight {
		if w < 0 {
			panic(fmt.Sprintf("vcover: negative weight on right %d", j))
		}
		fg.AddEdge(p+j, sink, w)
	}
	for i, ns := range g.Edges {
		for _, j := range ns {
			fg.AddEdge(i, p+j, maxflow.Inf)
		}
	}
	fg.MaxFlow(src, sink)
	reach := fg.ResidualReachable(src)
	c := &s.cover
	c.Left = growBools(c.Left, p)
	c.Right = growBools(c.Right, q)
	c.Weight = 0
	for i := 0; i < p; i++ {
		if !reach[i] {
			c.Left[i] = true
			c.Weight += g.LeftWeight[i]
		}
	}
	for j := 0; j < q; j++ {
		if reach[p+j] {
			c.Right[j] = true
			c.Weight += g.RightWeight[j]
		}
	}
	return c
}

// Validate reports an error if c is not a vertex cover of g.
func (g *Bipartite) Validate(c *Cover) error {
	for i, ns := range g.Edges {
		for _, j := range ns {
			if !c.Left[i] && !c.Right[j] {
				return fmt.Errorf("vcover: edge (left %d, right %d) uncovered", i, j)
			}
		}
	}
	return nil
}

// General is a vertex-weighted undirected graph given by an adjacency list.
// Edges may appear in either or both endpoint lists; duplicates are
// harmless.
type General struct {
	Weight []int64
	Adj    [][]int
}

// edgeList returns each undirected edge once as an ordered pair.
func (g *General) edgeList() [][2]int {
	return g.appendEdgeList(nil)
}

// appendEdgeList appends each undirected edge once, ordered and sorted, to
// dst and returns it — sort-and-dedup on a reusable buffer, replacing the
// per-call map a seen-set would cost.
func (g *General) appendEdgeList(dst [][2]int) [][2]int {
	base := len(dst)
	for u, ns := range g.Adj {
		for _, v := range ns {
			if u == v {
				panic("vcover: self-loop cannot be covered meaningfully")
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			dst = append(dst, [2]int{a, b})
		}
	}
	added := dst[base:]
	sort.Slice(added, func(i, j int) bool {
		if added[i][0] != added[j][0] {
			return added[i][0] < added[j][0]
		}
		return added[i][1] < added[j][1]
	})
	out := added[:0]
	for _, e := range added {
		if len(out) == 0 || e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return dst[:base+len(out)]
}

// ValidateGeneral reports an error if pick is not a vertex cover of g.
func (g *General) ValidateGeneral(pick []bool) error {
	for _, e := range g.edgeList() {
		if !pick[e[0]] && !pick[e[1]] {
			return fmt.Errorf("vcover: edge (%d,%d) uncovered", e[0], e[1])
		}
	}
	return nil
}

// WeightOf sums the weights of the picked vertices.
func (g *General) WeightOf(pick []bool) int64 {
	var w int64
	for v, p := range pick {
		if p {
			w += g.Weight[v]
		}
	}
	return w
}

// Approx2 returns a vertex cover of weight at most twice the minimum, by
// the Bar-Yehuda & Even local-ratio rule: for each edge, pay the smaller
// remaining weight of its endpoints against both; vertices whose weight
// reaches zero enter the cover. Runs in time linear in the number of edges.
func Approx2(g *General) []bool {
	return new(Scratch).Approx2(g)
}

// Approx2 is the package-level Approx2 drawing every buffer from s. The
// returned pick slice is valid until the next call on s.
func (s *Scratch) Approx2(g *General) []bool {
	s.remaining = append(s.remaining[:0], g.Weight...)
	remaining := s.remaining
	s.pick = growBools(s.pick, len(g.Weight))
	pick := s.pick
	s.edges = g.appendEdgeList(s.edges[:0])
	for _, e := range s.edges {
		u, v := e[0], e[1]
		if pick[u] || pick[v] {
			continue
		}
		m := remaining[u]
		if remaining[v] < m {
			m = remaining[v]
		}
		remaining[u] -= m
		remaining[v] -= m
		if remaining[u] == 0 {
			pick[u] = true
		}
		if remaining[v] == 0 && !pick[u] {
			pick[v] = true
		}
	}
	return pick
}

// SolveExact returns a minimum-weight vertex cover of g by branch and
// bound: repeatedly pick an uncovered edge and branch on including either
// endpoint. Exponential in the worst case; intended for instances with at
// most a few dozen relevant vertices (Corollary 6.10 territory).
func SolveExact(g *General) []bool {
	edges := g.edgeList()
	n := len(g.Weight)
	best := make([]bool, n)
	// Start from the trivial cover of all endpoint vertices.
	for _, e := range edges {
		best[e[0]] = true
		best[e[1]] = true
	}
	bestW := g.WeightOf(best)
	cur := make([]bool, n)
	var rec func(ei int, curW int64)
	rec = func(ei int, curW int64) {
		if curW >= bestW {
			return
		}
		// Find the next uncovered edge.
		for ei < len(edges) && (cur[edges[ei][0]] || cur[edges[ei][1]]) {
			ei++
		}
		if ei == len(edges) {
			bestW = curW
			copy(best, cur)
			return
		}
		u, v := edges[ei][0], edges[ei][1]
		cur[u] = true
		rec(ei+1, curW+g.Weight[u])
		cur[u] = false
		cur[v] = true
		rec(ei+1, curW+g.Weight[v])
		cur[v] = false
	}
	rec(0, 0)
	return best
}

// growBools reslices b to n zeroed bools, reallocating only on growth.
func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}
