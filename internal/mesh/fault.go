package mesh

import (
	"fmt"
	"math/rand"
	"sort"
)

// Link identifies the directed link <From, To> where To is one step from
// From along dimension Dim in direction Dir (+1 or -1). Storing the step
// rather than the endpoint keeps links valid under sub-mesh slicing.
type Link struct {
	From Coord
	Dim  int
	Dir  int // +1 or -1
}

// To returns the head node of the link within mesh m.
func (l Link) To(m *Mesh) Coord {
	to, ok := m.Neighbor(l.From, l.Dim, l.Dir)
	if !ok {
		panic(fmt.Sprintf("mesh: link %v has no head in %v", l, m))
	}
	return to
}

func (l Link) String() string {
	arrow := "+"
	if l.Dir < 0 {
		arrow = "-"
	}
	return fmt.Sprintf("<%v,dim%d%s>", l.From, l.Dim, arrow)
}

// FaultSet is a fault set F = (F_N, F_L) per Definition 2.4: a set of faulty
// nodes and a set of faulty directed links. A faulty node implicitly makes
// all its incident links unusable; those links are not listed in F_L.
type FaultSet struct {
	m     *Mesh
	topo  Topology           // the topology links are validated against; m == topo.Grid()
	nodes map[int64]struct{} // keyed by linear index
	order []Coord            // insertion order, for deterministic iteration
	links map[linkKey]struct{}
	lord  []Link
}

type linkKey struct {
	from int64
	dim  int
	dir  int
}

// NewFaultSet returns an empty fault set for mesh m (the topology is the
// mesh itself).
func NewFaultSet(m *Mesh) *FaultSet { return NewFaultSetOn(m) }

// NewFaultSetOn returns an empty fault set over an arbitrary topology.
// Nodes are addressed on t.Grid(); links are validated with t.LinkHead.
func NewFaultSetOn(t Topology) *FaultSet {
	return &FaultSet{
		m:     t.Grid(),
		topo:  t,
		nodes: make(map[int64]struct{}),
		links: make(map[linkKey]struct{}),
	}
}

// Mesh returns the coordinate grid the fault set addresses nodes on.
func (f *FaultSet) Mesh() *Mesh { return f.m }

// Topology returns the topology the fault set belongs to. For fault sets
// built with NewFaultSet this is the mesh itself.
func (f *FaultSet) Topology() Topology { return f.topo }

// LinkHead returns the head node of l under the fault set's topology,
// panicking if l is not a valid link.
func (f *FaultSet) LinkHead(l Link) Coord {
	head, ok := f.topo.LinkHead(l)
	if !ok {
		panic(fmt.Sprintf("mesh: link %v invalid in %v", l, f.topo))
	}
	return head
}

// Reset empties the fault set in place, retaining map buckets and the
// insertion-order backing arrays so a long-running trial loop can redraw
// faults without allocating. Slices previously returned by NodeFaults or
// LinkFaults are invalidated: later Add calls overwrite their contents.
func (f *FaultSet) Reset() {
	clear(f.nodes)
	clear(f.links)
	f.order = f.order[:0]
	f.lord = f.lord[:0]
}

// AddNode marks node c faulty. Adding a node twice is a no-op. The
// coordinate is copied, so callers may pass a reused scratch Coord.
func (f *FaultSet) AddNode(c Coord) {
	if !f.m.Contains(c) {
		panic(fmt.Sprintf("mesh: fault %v outside %v", c, f.m))
	}
	idx := f.m.Index(c)
	if _, ok := f.nodes[idx]; ok {
		return
	}
	f.nodes[idx] = struct{}{}
	// Reuse a retained slot from a previous generation (see Reset) when one
	// with the right arity is available.
	if n := len(f.order); n < cap(f.order) {
		f.order = f.order[:n+1]
		if len(f.order[n]) == len(c) {
			copy(f.order[n], c)
			return
		}
		f.order[n] = c.Clone()
		return
	}
	f.order = append(f.order, c.Clone())
}

// AddNodes marks every coordinate in cs faulty.
func (f *FaultSet) AddNodes(cs ...Coord) {
	for _, c := range cs {
		f.AddNode(c)
	}
}

// AddLink marks the directed link l faulty. To fail a link in both
// directions, add both orientations.
func (f *FaultSet) AddLink(l Link) {
	if !f.m.Contains(l.From) {
		panic(fmt.Sprintf("mesh: link tail %v outside %v", l.From, f.m))
	}
	if _, ok := f.topo.LinkHead(l); !ok {
		panic(fmt.Sprintf("mesh: link %v invalid in %v", l, f.topo))
	}
	k := linkKey{f.m.Index(l.From), l.Dim, l.Dir}
	if _, ok := f.links[k]; ok {
		return
	}
	f.links[k] = struct{}{}
	if n := len(f.lord); n < cap(f.lord) {
		f.lord = f.lord[:n+1]
		if len(f.lord[n].From) == len(l.From) {
			copy(f.lord[n].From, l.From)
			f.lord[n].Dim, f.lord[n].Dir = l.Dim, l.Dir
			return
		}
		f.lord[n] = Link{From: l.From.Clone(), Dim: l.Dim, Dir: l.Dir}
		return
	}
	f.lord = append(f.lord, Link{From: l.From.Clone(), Dim: l.Dim, Dir: l.Dir})
}

// NodeFaulty reports whether node c is in F_N.
func (f *FaultSet) NodeFaulty(c Coord) bool {
	_, ok := f.nodes[f.m.Index(c)]
	return ok
}

// LinkFaulty reports whether the directed link l is in F_L. It does not
// consider links incident to faulty nodes; use Usable for that.
func (f *FaultSet) LinkFaulty(l Link) bool {
	_, ok := f.links[linkKey{f.m.Index(l.From), l.Dim, l.Dir}]
	return ok
}

// Usable reports whether the directed link l can carry traffic: the link is
// not in F_L and neither endpoint is in F_N.
func (f *FaultSet) Usable(l Link) bool {
	if f.LinkFaulty(l) || f.NodeFaulty(l.From) {
		return false
	}
	return !f.NodeFaulty(f.LinkHead(l))
}

// NumNodeFaults returns |F_N|.
func (f *FaultSet) NumNodeFaults() int { return len(f.nodes) }

// NumLinkFaults returns |F_L|.
func (f *FaultSet) NumLinkFaults() int { return len(f.links) }

// Count returns f = |F_N| + |F_L|, the total number of faults.
func (f *FaultSet) Count() int { return len(f.nodes) + len(f.links) }

// NodeFaults returns the faulty nodes in insertion order. The slice is
// shared; do not modify it.
func (f *FaultSet) NodeFaults() []Coord { return f.order }

// LinkFaults returns the faulty links in insertion order. The slice is
// shared; do not modify it.
func (f *FaultSet) LinkFaults() []Link { return f.lord }

// GoodNodes returns the number of nonfaulty nodes.
func (f *FaultSet) GoodNodes() int64 { return f.m.Nodes() - int64(len(f.nodes)) }

// Clone returns an independent copy of the fault set (over the same
// topology).
func (f *FaultSet) Clone() *FaultSet {
	out := NewFaultSetOn(f.topo)
	for _, c := range f.order {
		out.AddNode(c)
	}
	for _, l := range f.lord {
		out.AddLink(l)
	}
	return out
}

// SliceNodes returns F/c restricted to node faults (the paper's F_N/c): the
// node faults whose coordinate in dimension dim equals c, projected into the
// (d-1)-dimensional sub-mesh that drops dimension dim.
func (f *FaultSet) SliceNodes(dim, c int) []Coord {
	var out []Coord
	for _, v := range f.order {
		if v[dim] != c {
			continue
		}
		out = append(out, dropDim(v, dim))
	}
	return out
}

func dropDim(c Coord, dim int) Coord {
	out := make(Coord, 0, len(c)-1)
	for i, v := range c {
		if i != dim {
			out = append(out, v)
		}
	}
	return out
}

// RandomNodeFaults returns a fault set with exactly count distinct node
// faults chosen uniformly at random (the paper's simulation fault model,
// Section 8). The rng makes trials reproducible.
func RandomNodeFaults(m *Mesh, count int, rng *rand.Rand) *FaultSet {
	return RandomNodeFaultsOn(m, count, rng)
}

// RandomNodeFaultsOn is RandomNodeFaults over an arbitrary topology.
func RandomNodeFaultsOn(t Topology, count int, rng *rand.Rand) *FaultSet {
	m := t.Grid()
	if int64(count) > m.Nodes() {
		panic(fmt.Sprintf("mesh: %d faults exceed %d nodes", count, m.Nodes()))
	}
	f := NewFaultSetOn(t)
	seen := make(map[int64]struct{}, count)
	for len(seen) < count {
		idx := rng.Int63n(m.Nodes())
		if _, dup := seen[idx]; dup {
			continue
		}
		seen[idx] = struct{}{}
		f.AddNode(m.CoordOf(idx))
	}
	return f
}

// RandomLinkFaults adds exactly count distinct random directed link faults
// to f (links incident to already-faulty nodes are skipped, since they are
// implicitly dead). The paper's definitions and algorithms handle link
// faults throughout even though its simulations use node faults only.
func RandomLinkFaults(f *FaultSet, count int, rng *rand.Rand) {
	m := f.m
	if fm, ok := f.topo.(*FullMesh); ok {
		// Full meshes draw a random ordered pair (tail, delta) instead of a
		// grid direction; the grid path below would only ever hit delta 1.
		for added := 0; added < count; {
			c := m.CoordOf(rng.Int63n(m.Nodes()))
			delta := 1 + rng.Intn(int(fm.Nodes())-1)
			l := Link{From: c, Dim: 0, Dir: delta}
			if f.NodeFaulty(c) || f.NodeFaulty(f.LinkHead(l)) || f.LinkFaulty(l) {
				continue
			}
			f.AddLink(l)
			added++
		}
		return
	}
	for added := 0; added < count; {
		c := m.CoordOf(rng.Int63n(m.Nodes()))
		dim := rng.Intn(m.Dims())
		dir := 1 - 2*rng.Intn(2)
		head, ok := m.Neighbor(c, dim, dir)
		if !ok {
			continue
		}
		if f.NodeFaulty(c) || f.NodeFaulty(head) {
			continue
		}
		l := Link{From: c, Dim: dim, Dir: dir}
		if f.LinkFaulty(l) {
			continue
		}
		f.AddLink(l)
		added++
	}
}

// SortedNodeFaults returns the faulty nodes sorted lexicographically with
// the most significant coordinate last (index order). Useful for
// deterministic output.
func (f *FaultSet) SortedNodeFaults() []Coord {
	out := make([]Coord, len(f.order))
	for i, c := range f.order {
		out[i] = c.Clone()
	}
	sort.Slice(out, func(i, j int) bool {
		return f.m.Index(out[i]) < f.m.Index(out[j])
	})
	return out
}
