package lambmesh

import (
	"math/rand"
	"strings"
	"testing"
)

// The full public workflow on the paper's 12x12 example.
func TestPublicAPIWorkflow(t *testing.T) {
	m, err := NewMesh(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultSet(m)
	f.AddNodes(C(9, 1), C(11, 6), C(10, 10))

	res, err := FindLambSet(f, TwoRoundXY())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLambs() != 2 || !res.IsLamb(C(11, 10)) || !res.IsLamb(C(10, 11)) {
		t.Fatalf("lambs = %v, want {(11,10),(10,11)}", res.Lambs)
	}
	if err := VerifyLambSet(f, TwoRoundXY(), res.Lambs); err != nil {
		t.Fatal(err)
	}

	// Routing between survivors always succeeds in two rounds.
	o := NewOracle(f)
	r, ok := ChooseRoute(o, TwoRoundXY(), C(0, 0), C(11, 11), nil)
	if !ok {
		t.Fatal("survivors must be routable")
	}
	if r.Turns() > 3 {
		t.Errorf("two-round 2D route has %d turns, bound is 3", r.Turns())
	}

	// The optimal solver agrees on this instance.
	opt, err := FindOptimalLambSet(f, TwoRoundXY())
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumLambs() != 2 {
		t.Errorf("optimal = %d", opt.NumLambs())
	}
}

func TestPublicHelpers(t *testing.T) {
	if Ascending(3).String() != "XYZ" {
		t.Error("Ascending wrong")
	}
	if TwoRoundXYZ().String() != "XYZXYZ" {
		t.Error("TwoRoundXYZ wrong")
	}
	if Uniform(Ascending(2), 3).Rounds() != 3 {
		t.Error("Uniform wrong")
	}
	c, err := ParseCoord("(3,4)")
	if err != nil || !c.Equal(C(3, 4)) {
		t.Error("ParseCoord wrong")
	}
	m, err := NewCube(2, 8)
	if err != nil || m.Nodes() != 64 {
		t.Error("NewCube wrong")
	}
	tor, err := NewTorus(5, 5)
	if err != nil || !tor.Torus() {
		t.Error("NewTorus wrong")
	}
	rng := rand.New(rand.NewSource(1))
	f := RandomNodeFaults(m, 5, rng)
	if f.NumNodeFaults() != 5 {
		t.Error("RandomNodeFaults wrong")
	}
}

func TestPublicOptions(t *testing.T) {
	m, _ := NewMesh(12, 12)
	f := NewFaultSet(m)
	f.AddNodes(C(9, 1), C(11, 6), C(10, 10))
	res, err := FindLambSet(f, TwoRoundXY(),
		WithPredetermined([]Coord{C(0, 0)}),
		WithReachability(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsLamb(C(0, 0)) {
		t.Error("predetermined lamb missing")
	}
	if res.Reach == nil {
		t.Error("reachability not retained")
	}
	res2, err := FindLambSetGeneral(f, TwoRoundXY(), ApproxWVC)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLambSet(f, TwoRoundXY(), res2.Lambs); err != nil {
		t.Error(err)
	}
}

func TestPublicTorusAndGeneric(t *testing.T) {
	tor, _ := NewTorus(5, 5)
	f := NewFaultSet(tor)
	f.AddNodes(C(1, 0), C(0, 1), C(1, 1))
	res, err := FindLambSetTorus(f, TwoRoundXY())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLambs() != 0 {
		t.Errorf("torus should rescue the corner, lambs = %v", res.Lambs)
	}
	gen, err := FindLambSetGeneric(&GenericProblem{
		NumNodes: 2,
		Rounds:   1,
		Faulty:   func(int) bool { return false },
		Reach:    func(_, v, w int) bool { return true },
	})
	if err != nil || len(gen.Lambs) != 0 {
		t.Errorf("trivial generic problem: %v %v", gen, err)
	}
}

func TestPublicSweepAndReconfigurer(t *testing.T) {
	m, _ := NewMesh(10, 10)
	f := NewFaultSet(m)
	f.AddNodes(C(1, 0), C(0, 1))
	a, err := FindLambSet(f, TwoRoundXY())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindLambSet(f, TwoRoundXY(), WithSweepReachability())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLambs() != b.NumLambs() {
		t.Error("sweep and matrix paths disagree")
	}
	rec, err := NewReconfigurer(m, TwoRoundXY(), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.AddFaults([]Coord{C(1, 0), C(0, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLambs() != 1 || !res.IsLamb(C(0, 0)) {
		t.Errorf("reconfigurer lambs = %v", res.Lambs)
	}
	if err := VerifyLambSet(rec.Faults(), TwoRoundXY(), res.Lambs); err != nil {
		t.Error(err)
	}
}

func TestPublicValues(t *testing.T) {
	m, _ := NewMesh(10, 10)
	f := NewFaultSet(m)
	f.AddNodes(C(1, 0), C(0, 1)) // corner (0,0) cut off
	// Make the corner infinitely precious; it still must be sacrificed
	// (it is the only choice), proving values never break correctness.
	res, err := FindLambSet(f, TwoRoundXY(), WithValues(map[int64]int64{m.Index(C(0, 0)): 1000}))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLambSet(f, TwoRoundXY(), res.Lambs); err != nil {
		t.Error(err)
	}
}

func TestPublicFaultSerialization(t *testing.T) {
	m, _ := NewMesh(12, 12)
	f := NewFaultSet(m)
	f.AddNodes(C(9, 1), C(11, 6))
	f.AddLink(Link{From: C(3, 4), Dim: 1, Dir: -1})

	var b strings.Builder
	if err := WriteFaults(&b, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFaults(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round-trip: %v\nserialized:\n%s", err, b.String())
	}
	if got.Mesh().String() != m.String() {
		t.Errorf("mesh %v != %v", got.Mesh(), m)
	}
	if got.NumNodeFaults() != 2 || !got.NodeFaulty(C(9, 1)) || !got.NodeFaulty(C(11, 6)) {
		t.Errorf("node faults: %v", got.SortedNodeFaults())
	}
	if got.NumLinkFaults() != 1 || !got.LinkFaulty(Link{From: C(3, 4), Dim: 1, Dir: -1}) {
		t.Errorf("link faults: %v", got.LinkFaults())
	}
	if _, err := ReadFaults(strings.NewReader("node 1,1\n")); err == nil {
		t.Error("faults before a mesh declaration should fail")
	}
}
