package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"lambmesh/internal/analysis"
	"lambmesh/internal/core"
	"lambmesh/internal/mesh"
	"lambmesh/internal/reach"
	"lambmesh/internal/routing"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	// Weight divides cfg.Trials for expensive experiments so the whole
	// suite stays tractable on one core; 0 means 1.
	Weight int
	Run    func(cfg Config) *Table
}

// Registry returns every experiment, in paper order. Additional experiments
// (baseline comparison, wormhole traffic, NP-hardness reduction) are
// registered by their packages' sibling files.
func Registry() []Experiment {
	exps := []Experiment{
		{ID: "table1", Title: "one-round reachability matrix R on the 12x12 example (Table 1)", Run: runTable1},
		{ID: "table2", Title: "two-round matrix R^(2) = RIR on the 12x12 example (Table 2)", Run: runTable2},
		{ID: "sec5lamb", Title: "lamb set for the 12x12 example (Section 5)", Run: runSec5Lamb},
		{ID: "fig17", Title: "lambs vs fault % on M_2(32) (Figure 17)", Run: sweepExperiment("fig17", 1, []int{32, 32}, "avg 9.59 lambs at 3% (0.937% of nodes)")},
		{ID: "fig18", Title: "lambs vs fault % on M_3(32) (Figure 18)", Weight: 5, Run: sweepExperiment("fig18", 5, []int{32, 32, 32}, "avg 67.6 lambs at 3% (0.206% of nodes)")},
		{ID: "fig19", Title: "additional damage (lambs/faults), 2D vs 3D (Figure 19)", Weight: 5, Run: runFig19},
		{ID: "fig20", Title: "lambs vs fault % on M_2(181) (Figure 20)", Weight: 2, Run: sweepExperiment("fig20", 2, []int{181, 181}, "2D at N~32768 needs far more lambs than 3D (compare Figure 18)")},
		{ID: "fig21", Title: "% lambs vs faults/bisection-width, 2D n=32,64,128 (Figure 21)", Weight: 3, Run: ratioExperiment("fig21", 3, [][]int{{32, 32}, {64, 64}, {128, 128}})},
		{ID: "fig22", Title: "% lambs vs faults/bisection-width, 3D n=10,16,25 (Figure 22)", Weight: 3, Run: ratioExperiment("fig22", 3, [][]int{{10, 10, 10}, {16, 16, 16}, {25, 25, 25}})},
		{ID: "fig23", Title: "% lambs vs mesh size, 2D, 3% faults (Figure 23)", Weight: 3, Run: sizeExperiment("fig23", 3, 2, []int{32, 45, 64, 91, 128, 181})},
		{ID: "fig24", Title: "% lambs vs mesh size, 3D, 3% faults (Figure 24)", Weight: 5, Run: sizeExperiment("fig24", 5, 3, []int{10, 13, 16, 20, 25, 32})},
		{ID: "fig25", Title: "number of SESs vs fault %% on M_3(32), with Theorem 6.4 bound (Figure 25)", Weight: 5, Run: runFig25},
		{ID: "fig26", Title: "running time vs fault %%, M_3(32) and M_2(181) (Figure 26)", Weight: 5, Run: runFig26},
		{ID: "sec3one", Title: "one round is not enough: lower bounds at n=f=32 (Section 3, Theorem 3.1)", Run: runSec3One},
		{ID: "sec3two", Title: "two rounds almost never need lambs at f=32 on M_3(32) (Section 3)", Run: runSec3Two},
		{ID: "fig15", Title: "Lamb1 nonoptimality family, ratio -> 2 (Figure 15)", Run: runFig15},
		{ID: "prop65", Title: "fault sets meeting the partition bound B(d,f) exactly (Proposition 6.5)", Run: runProp65},
		{ID: "abl-rounds", Title: "ablation: lamb count vs number of rounds k", Weight: 2, Run: runAblRounds},
		{ID: "abl-vcover", Title: "ablation: Lamb1 vs Lamb2(approx) vs Lamb2(exact)", Run: runAblVcover},
	}
	return append(exps, extraExperiments()...)
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func scaledTrials(cfg Config, weight int) int {
	if weight <= 1 {
		return cfg.trials()
	}
	t := cfg.trials() / weight
	if t < 5 {
		t = 5
	}
	return t
}

// paperFaultPercents are the x values of Figures 17-20 and 25-26.
var paperFaultPercents = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}

func paperExampleFaults() *mesh.FaultSet {
	m := mesh.MustNew(12, 12)
	f := mesh.NewFaultSet(m)
	f.AddNodes(mesh.C(9, 1), mesh.C(11, 6), mesh.C(10, 10))
	return f
}

// paperMatrixTable renders a reachability matrix with rows/columns ordered
// the way the paper numbers S_1..S_p (last-dimension-major representatives)
// and D_1..D_q (first-dimension-major).
func paperMatrixTable(id, title, paper string, rc *reach.Reachability, two bool) *Table {
	m := rc.Oracle.Mesh()
	sigma := rc.Sigma[0]
	delta := rc.Delta[len(rc.Delta)-1]
	rows := make([]int, sigma.Len())
	for i := range rows {
		rows[i] = i
	}
	sort.Slice(rows, func(a, b int) bool {
		return m.Index(sigma.Sets[rows[a]].Rep) < m.Index(sigma.Sets[rows[b]].Rep)
	})
	cols := make([]int, delta.Len())
	for j := range cols {
		cols[j] = j
	}
	sort.Slice(cols, func(a, b int) bool {
		ra, rb := delta.Sets[cols[a]].Rep, delta.Sets[cols[b]].Rep
		for i := range ra {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return false
	})
	mat := rc.R[0]
	if two {
		mat = rc.RK
	}
	t := &Table{ID: id, Title: title, Paper: paper,
		Columns: append([]string{"SES \\ DES"}, func() []string {
			out := make([]string, len(cols))
			for j := range cols {
				out[j] = fmt.Sprintf("D%d", j+1)
			}
			return out
		}()...),
	}
	for ii, i := range rows {
		row := []string{fmt.Sprintf("S%d %s", ii+1, sigma.Sets[i].Rect.StringIn(m))}
		for _, j := range cols {
			if mat.Get(i, j) {
				row = append(row, "1")
			} else {
				row = append(row, "0")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func runTable1(Config) *Table {
	rc, err := reach.Compute(paperExampleFaults(), routing.UniformAscending(2, 2))
	if err != nil {
		panic(err)
	}
	return paperMatrixTable("table1", "one-round reachability matrix R (9 SESs x 7 DESs)",
		"Table 1 of the paper; must match bit for bit", rc, false)
}

func runTable2(Config) *Table {
	rc, err := reach.Compute(paperExampleFaults(), routing.UniformAscending(2, 2))
	if err != nil {
		panic(err)
	}
	return paperMatrixTable("table2", "two-round matrix R^(2) = R I R",
		"Table 2 of the paper; zeros at (S3,D5), (S8,D2), (S8,D6)", rc, true)
}

func runSec5Lamb(Config) *Table {
	f := paperExampleFaults()
	res, err := core.Lamb1(f, routing.UniformAscending(2, 2))
	if err != nil {
		panic(err)
	}
	t := &Table{ID: "sec5lamb", Title: "lamb set for the 12x12 example",
		Paper:   "minimum cover {s8,d5}, weight 2, lambs {(11,10),(10,11)}",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("SESs", fmt.Sprint(res.Stats.NumSES))
	t.AddRow("DESs", fmt.Sprint(res.Stats.NumDES))
	t.AddRow("relevant SESs", fmt.Sprint(res.Stats.RelevantSES))
	t.AddRow("relevant DESs", fmt.Sprint(res.Stats.RelevantDES))
	t.AddRow("cover weight", fmt.Sprint(res.Stats.CoverWeight))
	t.AddRow("lambs", fmt.Sprint(res.Lambs))
	return t
}

// sweepExperiment builds a Figure 17/18/20 style experiment: max and
// average lamb counts per fault percentage.
func sweepExperiment(id string, weight int, widths []int, paper string) func(Config) *Table {
	return func(cfg Config) *Table {
		m := mesh.MustNew(widths...)
		trials := scaledTrials(cfg, weight)
		t := &Table{ID: id, Title: fmt.Sprintf("lambs vs fault %% on %v (%d trials/point)", m, trials),
			Paper:   paper,
			Columns: []string{"fault%", "faults", "avg lambs", "max lambs", "avg %nodes", "avg damage%"},
		}
		for _, pct := range paperFaultPercents {
			faults := int(math.Round(float64(m.Nodes()) * pct / 100))
			ps := RunLambPoint(Config{Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers}, m, faults, 2)
			t.AddRow(
				fmt.Sprintf("%.1f", pct),
				fmt.Sprint(faults),
				F(ps.Lambs.Mean()),
				F(ps.Lambs.Max()),
				fmt.Sprintf("%.3f", 100*ps.Lambs.Mean()/float64(m.Nodes())),
				fmt.Sprintf("%.1f", 100*ps.Lambs.Mean()/float64(faults)),
			)
		}
		return t
	}
}

func runFig19(cfg Config) *Table {
	trials := scaledTrials(cfg, 5)
	t := &Table{ID: "fig19", Title: fmt.Sprintf("average additional damage (lambs/faults %%), 2D vs 3D (%d trials/point)", trials),
		Paper:   "at 3%: 2D 30.9%, 3D 6.88%; 3D is far cheaper",
		Columns: []string{"fault%", "2D M_2(32) damage%", "3D M_3(32) damage%"},
	}
	m2 := mesh.MustNew(32, 32)
	m3 := mesh.MustNew(32, 32, 32)
	c := Config{Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers}
	for _, pct := range paperFaultPercents {
		f2 := int(math.Round(float64(m2.Nodes()) * pct / 100))
		f3 := int(math.Round(float64(m3.Nodes()) * pct / 100))
		p2 := RunLambPoint(c, m2, f2, 2)
		p3 := RunLambPoint(c, m3, f3, 2)
		t.AddRow(
			fmt.Sprintf("%.1f", pct),
			fmt.Sprintf("%.1f", 100*p2.Lambs.Mean()/float64(f2)),
			fmt.Sprintf("%.2f", 100*p3.Lambs.Mean()/float64(f3)),
		)
	}
	return t
}

var paperRatios = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}

// ratioExperiment builds Figures 21/22: average percentage of lambs versus
// the ratio of faults to the bisection width, for meshes of several sizes.
func ratioExperiment(id string, weight int, meshes [][]int) func(Config) *Table {
	return func(cfg Config) *Table {
		trials := scaledTrials(cfg, weight)
		cols := []string{"faults/bisection"}
		ms := make([]*mesh.Mesh, len(meshes))
		for i, w := range meshes {
			ms[i] = mesh.MustNew(w...)
			cols = append(cols, fmt.Sprintf("%v avg%%lambs", ms[i]))
		}
		t := &Table{ID: id,
			Title:   fmt.Sprintf("%% lambs vs faults/bisection-width (%d trials/point)", trials),
			Paper:   "small %lambs up to ratio ~1, degrading beyond; worse for smaller meshes",
			Columns: cols,
		}
		c := Config{Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers}
		for _, ratio := range paperRatios {
			row := []string{fmt.Sprintf("%.1f", ratio)}
			for _, m := range ms {
				faults := int(math.Round(ratio * float64(m.BisectionWidth())))
				ps := RunLambPoint(c, m, faults, 2)
				row = append(row, fmt.Sprintf("%.3f", 100*ps.Lambs.Mean()/float64(m.Nodes())))
			}
			t.AddRow(row...)
		}
		return t
	}
}

// sizeExperiment builds Figures 23/24: average percentage of lambs versus
// mesh size at a fixed 3% fault rate.
func sizeExperiment(id string, weight, d int, ns []int) func(Config) *Table {
	return func(cfg Config) *Table {
		trials := scaledTrials(cfg, weight)
		t := &Table{ID: id,
			Title:   fmt.Sprintf("%% lambs vs mesh size, %dD, 3%% faults (%d trials/point)", d, trials),
			Paper:   "percentage of lambs increases with mesh size (ratio faults/bisection grows)",
			Columns: []string{"n", "N", "faults", "avg lambs", "avg %nodes"},
		}
		c := Config{Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers}
		for _, n := range ns {
			m, err := mesh.NewCube(d, n)
			if err != nil {
				panic(err)
			}
			faults := int(math.Round(float64(m.Nodes()) * 0.03))
			ps := RunLambPoint(c, m, faults, 2)
			t.AddRow(
				fmt.Sprint(n),
				fmt.Sprint(m.Nodes()),
				fmt.Sprint(faults),
				F(ps.Lambs.Mean()),
				fmt.Sprintf("%.3f", 100*ps.Lambs.Mean()/float64(m.Nodes())),
			)
		}
		return t
	}
}

func runFig25(cfg Config) *Table {
	trials := scaledTrials(cfg, 5)
	m := mesh.MustNew(32, 32, 32)
	t := &Table{ID: "fig25",
		Title:   fmt.Sprintf("SES count vs fault %% on M_3(32) (%d trials/point)", trials),
		Paper:   "avg/max SES well under the Theorem 6.4 bound, which beats 5f+1",
		Columns: []string{"fault%", "faults", "avg SES", "max SES", "bound B(d,f)", "5f+1"},
	}
	c := Config{Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers}
	for _, pct := range paperFaultPercents {
		faults := int(math.Round(float64(m.Nodes()) * pct / 100))
		ps := RunLambPoint(c, m, faults, 2)
		t.AddRow(
			fmt.Sprintf("%.1f", pct),
			fmt.Sprint(faults),
			F(ps.SES.Mean()),
			F(ps.SES.Max()),
			fmt.Sprint(analysis.PartitionBound(m.Widths(), faults)),
			fmt.Sprint(analysis.SimplePartitionBound(3, faults)),
		)
	}
	return t
}

func runFig26(cfg Config) *Table {
	trials := scaledTrials(cfg, 5)
	t := &Table{ID: "fig26",
		Title:   fmt.Sprintf("average Lamb1 running time (seconds) vs fault %% (%d trials/point)", trials),
		Paper:   "shape: polynomial growth in f; absolute times are hardware-bound (paper used a 133MHz workstation)",
		Columns: []string{"fault%", "M_3(32) sec", "M_2(181) sec"},
	}
	m3 := mesh.MustNew(32, 32, 32)
	m2 := mesh.MustNew(181, 181)
	c := Config{Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers}
	for _, pct := range paperFaultPercents {
		f3 := int(math.Round(float64(m3.Nodes()) * pct / 100))
		f2 := int(math.Round(float64(m2.Nodes()) * pct / 100))
		p3 := RunLambPoint(c, m3, f3, 2)
		p2 := RunLambPoint(c, m2, f2, 2)
		t.AddRow(
			fmt.Sprintf("%.1f", pct),
			fmt.Sprintf("%.4f", p3.Seconds.Mean()),
			fmt.Sprintf("%.4f", p2.Seconds.Mean()),
		)
	}
	return t
}

func runSec3One(cfg Config) *Table {
	trials := cfg.trials()
	m := mesh.MustNew(32, 32, 32)
	var empirical, oneRoundLambs, lowerBounds Agg
	var mu sync.Mutex
	ForEachTrial(cfg, trials, func(_ int, rng *rand.Rand) {
		fs := mesh.RandomNodeFaults(m, 32, rng)
		lb := analysis.OneRoundEmpiricalLowerBound(fs)
		res, err := core.Lamb1(fs, routing.UniformAscending(3, 1))
		if err != nil {
			panic(err)
		}
		mu.Lock()
		empirical.Add(float64(lb))
		oneRoundLambs.Add(float64(res.NumLambs()))
		lowerBounds.Add(float64(res.LowerBound()))
		mu.Unlock()
	})
	t := &Table{ID: "sec3one",
		Title:   fmt.Sprintf("one round of routing at n=f=32 on M_3(32) (%d trials)", trials),
		Paper:   "Theorem 3.1 bound 2698; simulated lower bound ~5750: a constant fraction of a cross-section dies",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("Theorem 3.1 expected lower bound", F(analysis.OneRoundLowerBound(32, 32)))
	t.AddRow("avg empirical lower bound (Thm 3.1 structure)", F(empirical.Mean()))
	t.AddRow("avg WVC-derived lower bound", F(lowerBounds.Mean()))
	t.AddRow("avg Lamb1 one-round lamb set (upper bound)", F(oneRoundLambs.Mean()))
	return t
}

func runSec3Two(cfg Config) *Table {
	// The paper uses 10000 trials; scale from the configured count.
	trials := cfg.trials() * 10
	m := mesh.MustNew(32, 32, 32)
	var needing, totalLambs int
	var mu sync.Mutex
	ForEachTrial(cfg, trials, func(_ int, rng *rand.Rand) {
		obs := RunLambTrial(m, 32, 2, rng)
		mu.Lock()
		if obs.Lambs > 0 {
			needing++
		}
		totalLambs += obs.Lambs
		mu.Unlock()
	})
	t := &Table{ID: "sec3two",
		Title:   fmt.Sprintf("two rounds at f=32 on M_3(32): how often are lambs needed? (%d trials)", trials),
		Paper:   "5 of 10000 trials needed one lamb; the rest none",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("trials", fmt.Sprint(trials))
	t.AddRow("trials needing >=1 lamb", fmt.Sprint(needing))
	t.AddRow("fraction", fmt.Sprintf("%.5f", float64(needing)/float64(trials)))
	t.AddRow("total lambs across all trials", fmt.Sprint(totalLambs))
	return t
}

func runFig15(Config) *Table {
	t := &Table{ID: "fig15",
		Title:   "the Figure 15 adversarial family: Lamb1 vs optimum",
		Paper:   "ratio (4m-1)/(2m) = 2 - 1/(2m) -> 2",
		Columns: []string{"m", "n", "Lamb1 lambs", "optimal lambs", "ratio"},
	}
	for m := 1; m <= 4; m++ {
		fig, err := analysis.NewFigure15(m)
		if err != nil {
			panic(err)
		}
		res, err := core.Lamb1(fig.Faults, routing.UniformAscending(2, 2))
		if err != nil {
			panic(err)
		}
		t.AddRow(
			fmt.Sprint(m),
			fmt.Sprint(fig.N),
			fmt.Sprint(res.NumLambs()),
			fmt.Sprint(fig.OptimalLambs),
			fmt.Sprintf("%.3f", float64(res.NumLambs())/float64(fig.OptimalLambs)),
		)
	}
	return t
}

func runProp65(Config) *Table {
	t := &Table{ID: "prop65",
		Title:   "Proposition 6.5: adversarial fault sets meet the partition bound exactly",
		Paper:   "partition size equals B(d,f) for the constructed fault sets",
		Columns: []string{"d", "n", "f", "partition size", "B(d,f)"},
	}
	cases := []struct{ d, n, f int }{
		{2, 9, 3}, {2, 9, 12}, {2, 33, 10},
		{3, 5, 4}, {3, 5, 30}, {3, 9, 40},
	}
	for _, c := range cases {
		fs, err := analysis.Prop65FaultSet(c.d, c.n, c.f)
		if err != nil {
			panic(err)
		}
		rc, err := reach.Compute(fs, routing.UniformAscending(c.d, 1))
		if err != nil {
			panic(err)
		}
		t.AddRow(
			fmt.Sprint(c.d), fmt.Sprint(c.n), fmt.Sprint(c.f),
			fmt.Sprint(rc.Sigma[0].Len()),
			fmt.Sprint(analysis.PartitionBound(fs.Mesh().Widths(), c.f)),
		)
	}
	return t
}

func runAblRounds(cfg Config) *Table {
	trials := scaledTrials(cfg, 2)
	t := &Table{ID: "abl-rounds",
		Title:   fmt.Sprintf("ablation: average lambs vs number of rounds k (3%% faults, %d trials)", trials),
		Paper:   "k=1 is catastrophic (Section 3); k=2 suffices; k=3 buys little",
		Columns: []string{"mesh", "k=1 avg lambs", "k=2 avg lambs", "k=3 avg lambs"},
	}
	c := Config{Trials: trials, Seed: cfg.Seed, Workers: cfg.Workers}
	for _, widths := range [][]int{{32, 32}, {16, 16, 16}} {
		m := mesh.MustNew(widths...)
		faults := int(math.Round(float64(m.Nodes()) * 0.03))
		row := []string{m.String()}
		for k := 1; k <= 3; k++ {
			ps := RunLambPoint(c, m, faults, k)
			row = append(row, F(ps.Lambs.Mean()))
		}
		t.AddRow(row...)
	}
	return t
}

func runAblVcover(cfg Config) *Table {
	trials := cfg.trials()
	if trials > 50 {
		trials = 50 // the exact solver is exponential
	}
	m := mesh.MustNew(12, 12)
	t := &Table{ID: "abl-vcover",
		Title:   fmt.Sprintf("ablation: reduction/solver choice on M_2(12) (%d trials/point)", trials),
		Paper:   "Lamb1 and Lamb2 are 2-approximations; Lamb2+exact is optimal (Theorem 6.9)",
		Columns: []string{"faults", "Lamb1 avg", "Lamb2(approx) avg", "Lamb2(exact)=opt avg", "Lamb1/opt"},
	}
	orders := routing.UniformAscending(2, 2)
	for _, faults := range []int{4, 8, 12} {
		var a1, a2, ex Agg
		var mu sync.Mutex
		ForEachTrial(Config{Seed: cfg.Seed, Workers: cfg.Workers}, trials, func(_ int, rng *rand.Rand) {
			fs := mesh.RandomNodeFaults(m, faults, rng)
			r1, err := core.Lamb1(fs, orders)
			if err != nil {
				panic(err)
			}
			r2, err := core.Lamb2(fs, orders, core.ApproxWVC)
			if err != nil {
				panic(err)
			}
			re, err := core.Lamb2(fs, orders, core.ExactWVC)
			if err != nil {
				panic(err)
			}
			mu.Lock()
			a1.Add(float64(r1.NumLambs()))
			a2.Add(float64(r2.NumLambs()))
			ex.Add(float64(re.NumLambs()))
			mu.Unlock()
		})
		ratio := "n/a"
		if ex.Mean() > 0 {
			ratio = fmt.Sprintf("%.3f", a1.Mean()/ex.Mean())
		}
		t.AddRow(fmt.Sprint(faults), F(a1.Mean()), F(a2.Mean()), F(ex.Mean()), ratio)
	}
	return t
}
