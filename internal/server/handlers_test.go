package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func startHTTP(t *testing.T, widths ...int) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, widths...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestHTTPRoute(t *testing.T) {
	// Pinned to the cache plane: the final assertion is about Cached.
	s := newSourceServer(t, RouteSourceCache, 8, 8)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp := postJSON(t, ts.URL+"/v1/route", RouteRequest{Src: "(0,0)", Dst: "(7,7)"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	rr := decode[RouteResponse](t, resp)
	if !rr.Found || rr.Hops != 14 || rr.Generation != 0 {
		t.Errorf("route response: %+v", rr)
	}
	if len(rr.Path) != 15 || rr.Path[0] != "(0,0)" || rr.Path[14] != "(7,7)" {
		t.Errorf("path: %v", rr.Path)
	}
	if len(rr.Vias) != 1 { // 2-round route has one handoff point
		t.Errorf("vias: %v", rr.Vias)
	}
	// Second hit is served from the cache and says so.
	rr = decode[RouteResponse](t, postJSON(t, ts.URL+"/v1/route", RouteRequest{Src: "(0,0)", Dst: "(7,7)"}))
	if !rr.Cached {
		t.Errorf("expected cached answer: %+v", rr)
	}
}

func TestHTTPRouteBadRequests(t *testing.T) {
	s, ts := startHTTP(t, 8, 8)
	for _, body := range []string{`{`, `{"src":"nope","dst":"(0,0)"}`, `{"src":"(0,0)","dst":""}`} {
		resp, err := http.Post(ts.URL+"/v1/route", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		eb := decode[errorBody](t, resp)
		if resp.StatusCode != http.StatusBadRequest || eb.Error == "" {
			t.Errorf("body %q: status %d, error %q", body, resp.StatusCode, eb.Error)
		}
	}
	if got := s.Metrics().BadRequests.Load(); got != 3 {
		t.Errorf("bad requests = %d, want 3", got)
	}
	// Out-of-mesh endpoints parse, so they are a 200 with found=false.
	rr := decode[RouteResponse](t, postJSON(t, ts.URL+"/v1/route", RouteRequest{Src: "(9,9)", Dst: "(0,0)"}))
	if rr.Found || !strings.Contains(rr.Reason, "outside mesh") {
		t.Errorf("out-of-mesh: %+v", rr)
	}
}

func TestHTTPFaultsAndConfig(t *testing.T) {
	s, ts := startHTTP(t, 8, 8)
	resp := postJSON(t, ts.URL+"/v1/faults", FaultReport{
		Nodes: []string{"(3,3)"},
		Links: []LinkReport{{From: "(1,1)", Dim: 1, Dir: -1}},
	})
	ack := decode[FaultAck](t, resp)
	if resp.StatusCode != http.StatusAccepted || ack.Accepted != 2 || ack.Generation != 0 {
		t.Fatalf("ack: status %d, %+v", resp.StatusCode, ack)
	}
	waitGeneration(t, s, 1)

	cresp, err := http.Get(ts.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	cfg := decode[ConfigResponse](t, cresp)
	if cfg.Mesh != "8x8" || cfg.Torus || cfg.Generation != 1 {
		t.Errorf("config: %+v", cfg)
	}
	if len(cfg.NodeFaults) != 1 || cfg.NodeFaults[0] != "(3,3)" {
		t.Errorf("node faults: %v", cfg.NodeFaults)
	}
	if len(cfg.LinkFaults) != 1 || cfg.LinkFaults[0] != (LinkReport{From: "(1,1)", Dim: 1, Dir: -1}) {
		t.Errorf("link faults: %v", cfg.LinkFaults)
	}
	wantSurvivors := int64(64-1) - int64(len(cfg.Lambs))
	if cfg.Survivors != wantSurvivors {
		t.Errorf("survivors = %d, want %d", cfg.Survivors, wantSurvivors)
	}

	// Invalid reports come back as a 400 with a JSON error.
	resp = postJSON(t, ts.URL+"/v1/faults", FaultReport{Nodes: []string{"(42,42)"}})
	eb := decode[errorBody](t, resp)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(eb.Error, "outside mesh") {
		t.Errorf("invalid fault: status %d, %+v", resp.StatusCode, eb)
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	s, ts := startHTTP(t, 8, 8)
	decode[RouteResponse](t, postJSON(t, ts.URL+"/v1/route", RouteRequest{Src: "(0,0)", Dst: "(3,3)"}))
	decode[FaultAck](t, postJSON(t, ts.URL+"/v1/faults", FaultReport{Nodes: []string{"(5,5)"}}))
	waitGeneration(t, s, 1)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"lambd_queries_total 1",
		"lambd_routes_found_total 1",
		"lambd_fault_reports_total 1",
		"lambd_recomputes_total 1",
		"lambd_generation 1",
		"lambd_route_hops_bucket{le=\"8\"} 1",
		"lambd_route_hops_count 1",
		"lambd_epoch_age_seconds",
		"lambd_recompute_seconds_mean",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, page)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hresp.StatusCode)
	}

	// expvar is mounted on the daemon's own mux, not DefaultServeMux.
	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status %d", vresp.StatusCode)
	}
}
