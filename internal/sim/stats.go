// Package sim is the experiment harness that regenerates every table and
// figure of Ho & Stockmeyer (IPDPS 2002). Each experiment draws random
// fault sets (deterministically seeded per trial), runs the lamb algorithm,
// and aggregates the statistics the paper plots: lamb counts, SES counts,
// additional damage, percentages of the mesh, and running time.
//
// Trials run in parallel on a bounded worker pool; a trial's RNG is seeded
// with seed+trial so results are independent of scheduling and worker
// count.
package sim

import (
	"fmt"
	"math"
	"strings"
)

// Agg accumulates a scalar observation across trials.
type Agg struct {
	Count    int
	Sum, Sq  float64
	MinV     float64
	MaxV     float64
	anything bool
}

// Add records one observation.
func (a *Agg) Add(x float64) {
	a.Count++
	a.Sum += x
	a.Sq += x * x
	if !a.anything || x < a.MinV {
		a.MinV = x
	}
	if !a.anything || x > a.MaxV {
		a.MaxV = x
	}
	a.anything = true
}

// Mean returns the sample mean (0 with no observations).
func (a *Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Max returns the largest observation (0 with none).
func (a *Agg) Max() float64 { return a.MaxV }

// Min returns the smallest observation (0 with none).
func (a *Agg) Min() float64 { return a.MinV }

// Std returns the population standard deviation.
func (a *Agg) Std() float64 {
	if a.Count == 0 {
		return 0
	}
	m := a.Mean()
	v := a.Sq/float64(a.Count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Merge folds another aggregate into a.
func (a *Agg) Merge(b *Agg) {
	if b.Count == 0 {
		return
	}
	if !a.anything {
		*a = *b
		return
	}
	a.Count += b.Count
	a.Sum += b.Sum
	a.Sq += b.Sq
	if b.MinV < a.MinV {
		a.MinV = b.MinV
	}
	if b.MaxV > a.MaxV {
		a.MaxV = b.MaxV
	}
}

// Table is a rendered experiment result: the rows/series a paper figure or
// table reports.
type Table struct {
	ID      string
	Title   string
	Paper   string // the values or shape the paper reports, for comparison
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("sim: row has %d cells, table %q has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with sensible precision for table cells.
func F(x float64) string {
	switch {
	case x == math.Trunc(x) && math.Abs(x) < 1e15:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3g", x)
	}
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "*paper: %s*\n\n", t.Paper)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes), with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
